// Continuous-batching serving benchmark (complements Figure 10's static
// batches with the online, iteration-level-scheduling setting of Orca that
// the paper's §5 serving discussion references). A staggered stream of
// JSON-Schema requests flows through a bounded-capacity engine; the grammar
// backend is the only variable. Slow per-step mask generation inflates every
// co-scheduled request's latency, so the gap compounds with load.
#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"

namespace {
using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
}  // namespace

int main() {
  PrintHeader(
      "Continuous batching: staggered request stream, capacity 8\n"
      "(online-serving complement to Figure 10; JSON-Schema task)");
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.05, .seed = 11});
  auto tasks = datasets::GenerateSchemaTasks(16, 47);

  struct Config {
    const char* name;
    baselines::EngineKind kind;
    bool constrained;
  };
  const Config configs[] = {
      {"unconstrained", baselines::EngineKind::kXGrammar, false},
      {"SGLang (w/ XGrammar)", baselines::EngineKind::kXGrammar, true},
      {"vLLM (w/ Outlines-CFG)", baselines::EngineKind::kOutlinesCfg, true},
      {"llama.cpp", baselines::EngineKind::kLlamaCpp, true},
  };

  PrintRow({"engine", "makespan (ms)", "tok/s", "mean TTFT (ms)",
            "mean compl. (ms)"},
           22);
  for (const Config& config : configs) {
    // One factory per task (schemas differ); decoders are per-request.
    std::vector<std::unique_ptr<baselines::DecoderFactory>> factories;
    std::vector<engine::ContinuousRequest> stream;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      engine::ContinuousRequest request;
      if (config.constrained) {
        factories.push_back(std::make_unique<baselines::DecoderFactory>(
            config.kind, info));
        factories.back()->PrepareSchema(tasks[i].schema);
        request.request.decoder = factories.back()->NewDecoder();
      }
      request.request.target_text = tasks[i].canonical_answer.Dump();
      request.request.seed = i + 1;
      request.arrival_step = static_cast<std::int64_t>(i) * 2;  // staggered
      stream.push_back(std::move(request));
    }

    engine::EngineOptions options;
    options.schedule = config.constrained ? engine::GrammarSchedule::kOverlap
                                          : engine::GrammarSchedule::kNone;
    options.max_new_tokens = MaxSteps();
    engine::ServingEngine eng(options, llm);
    engine::ContinuousResult result = eng.RunContinuous(stream, 8);

    double ttft_sum = 0.0;
    double completion_sum = 0.0;
    for (const auto& r : result.requests) {
      ttft_sum += r.ttft_ms;
      completion_sum += r.completion_ms;
    }
    auto n = static_cast<double>(result.requests.size());
    PrintRow({config.name, Fmt(result.makespan_ms, 1),
              Fmt(result.ThroughputTokensPerSec(), 0), Fmt(ttft_sum / n, 2),
              Fmt(completion_sum / n, 1)},
             22);
  }
  return 0;
}
