// Table 3: ablation of the optimization techniques, per-token mask
// generation latency on the CFG (unconstrained JSON) task.
//
// Paper reference (ms/token): PDA baseline 65.776; +node merging 38.280
// (1.7x); +adaptive token mask cache 0.154 (248.6x); +rule inlining 0.035
// (4.4x); +context expansion 0.018 (1.9x).
// Expected shape: the cache is the dominant step; merging, inlining and
// context expansion each contribute a further constant factor.
#include "baselines/xgrammar_decoder.h"
#include "bench/bench_common.h"
#include "cache/mask_generator.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT

// Brute-force decoder: PDA execution over the whole (sorted) vocabulary.
double MeasureBruteForce(std::shared_ptr<const pda::CompiledGrammar> pda,
                         const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
                         const std::vector<std::string>& documents,
                         std::int32_t max_steps) {
  const tokenizer::TokenTrie& trie = GetTrie(info);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  StatAccumulator stat;
  for (const std::string& doc : documents) {
    if (static_cast<std::int32_t>(stat.Count()) >= max_steps) break;
    matcher::GrammarMatcher matcher(pda);
    for (std::int32_t token : tokenizer::GreedyTokenize(trie, doc)) {
      if (static_cast<std::int32_t>(stat.Count()) >= max_steps) break;
      Timer timer;
      cache::FillBitmaskBruteForce(&matcher, *info, &mask);
      stat.Add(timer.ElapsedMicros());
      if (!matcher.AcceptString(info->TokenBytes(token))) break;
    }
  }
  return stat.Mean();
}

double MeasureCached(std::shared_ptr<const pda::CompiledGrammar> pda,
                     const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
                     const std::vector<std::string>& documents,
                     std::int32_t max_steps) {
  auto mask_cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  baselines::XGrammarDecoder decoder(mask_cache);
  return MeasureMaskGenUs(&decoder, info, documents, max_steps);
}

}  // namespace

int main() {
  PrintHeader(
      "Table 3: optimization ablation, CFG (unconstrained JSON), us/token\n"
      "paper (ms): 65.776 -> 38.280 (1.7x) -> 0.154 (248.6x) -> 0.035 (4.4x)\n"
      "            -> 0.018 (1.9x)");
  auto info = GetTokenizer();
  grammar::Grammar json_cfg = grammar::BuiltinJsonGrammar();
  auto documents = datasets::GenerateJsonDocuments(4, 4321);
  std::int32_t steps = MaxSteps();

  struct RowSpec {
    const char* label;
    pda::CompileOptions options;
    bool cached;
  };
  std::vector<RowSpec> rows;
  rows.push_back({"PDA Baseline", pda::CompileOptions::AllDisabled(), false});
  {
    pda::CompileOptions o = pda::CompileOptions::AllDisabled();
    o.node_merging = true;
    rows.push_back({"+ Node merging", o, false});
    rows.push_back({"+ Adaptive token mask cache", o, true});
    o.rule_inlining = true;
    rows.push_back({"+ Rule inlining", o, true});
    o.context_expansion = true;
    rows.push_back({"+ Context expansion", o, true});
  }

  PrintRow({"configuration", "us/token", "speedup"}, 32);
  double previous = 0.0;
  for (const RowSpec& row : rows) {
    auto pda = pda::CompiledGrammar::Compile(json_cfg, row.options);
    double us =
        row.cached
            ? MeasureCached(pda, info, documents, steps)
            : MeasureBruteForce(pda, info, documents, std::min(steps, 12));
    std::string speedup =
        previous > 0.0 ? (Fmt(previous / us, 1) + "x") : "-";
    PrintRow({row.label, Fmt(us, 2), speedup}, 32);
    previous = us;
  }
  return 0;
}
