// Table 3 (grammar-optimizer ablation): cumulative per-pass on/off rows over
// the four fig09 tasks.
//
// Row 0 compiles with every grammar-optimizer pass off (normalization only);
// each subsequent row enables one more pass in standard pipeline order
// (eps-elim, unit-collapse, inline, atom-merge, fsa-minimize, dead-compact).
// Node merging and context expansion stay ON in every row so the grammar
// optimizer is the single variable. Per row and task this reports:
//   * build_ms        grammar+PDA compile plus adaptive-cache build, wall ms
//   * artifact_bytes  serialized engine artifact (PDA + mask cache) size
//   * us_per_token    steady-state mask generation latency
//   * mask_mismatches mask bits differing from the row-0 build along a
//                     shared decode path — any nonzero value is a
//                     correctness bug, and CI gates on it
// The fully-optimized row also carries the per-pass PassStats attribution
// (rules/exprs/arena-bytes before/after and wall µs per pass).
//
// Emits BENCH_ablation.json (override with XGR_BENCH_JSON). Knobs:
// XGR_VOCAB, XGR_BENCH_STEPS, XGR_BENCH_WARMUP (see bench_common.h).
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "bench/bench_common.h"
#include "cache/adaptive_cache.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "json/json.h"
#include "serialize/serialize.h"
#include "support/timer.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT

struct TaskSpec {
  std::string name;
  grammar::Grammar cfg;
  std::vector<std::string> documents;
};

struct RowSpec {
  const char* label;
  pda::CompileOptions options;
};

// The cumulative ladder: every row keeps node merging / context expansion on.
std::vector<RowSpec> BuildRows() {
  std::vector<RowSpec> rows;
  pda::CompileOptions o;
  o.rule_inlining = false;
  o.optimizer = grammar::OptimizerOptions::AllDisabled();
  rows.push_back({"unoptimized", o});
  o.optimizer.epsilon_elimination = true;
  rows.push_back({"+ eps-elim", o});
  o.optimizer.unit_rule_collapse = true;
  rows.push_back({"+ unit-collapse", o});
  o.rule_inlining = true;  // the top-level toggle drives optimizer.rule_inlining
  rows.push_back({"+ inline", o});
  o.optimizer.atom_merging = true;
  rows.push_back({"+ atom-merge", o});
  o.optimizer.fsa_minimization = true;
  rows.push_back({"+ fsa-minimize", o});
  o.optimizer.dead_rule_elimination = true;
  rows.push_back({"+ dead-compact", o});
  return rows;
}

struct RowResult {
  double build_ms = 0.0;
  double cache_build_ms = 0.0;
  std::size_t artifact_bytes = 0;
  double us_per_token = 0.0;
  std::int64_t mask_mismatches = 0;
  std::shared_ptr<const cache::AdaptiveTokenMaskCache> cache;
  std::vector<grammar::PassStats> pass_stats;
};

// Walks `documents`' token paths once, filling masks from both caches at
// every step and counting differing bits. Language-preserving optimization
// means this must come back 0.
std::int64_t CountMaskMismatches(
    const std::shared_ptr<const cache::AdaptiveTokenMaskCache>& a,
    const std::shared_ptr<const cache::AdaptiveTokenMaskCache>& b,
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
    const std::vector<std::string>& documents, std::int32_t max_steps) {
  const tokenizer::TokenTrie& trie = GetTrie(info);
  baselines::XGrammarDecoder da(a);
  baselines::XGrammarDecoder db(b);
  DynamicBitset mask_a(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset mask_b(static_cast<std::size_t>(info->VocabSize()));
  std::int64_t mismatches = 0;
  std::int32_t steps = 0;
  for (const std::string& doc : documents) {
    if (steps >= max_steps) break;
    da.Reset();
    db.Reset();
    for (std::int32_t token : tokenizer::GreedyTokenize(trie, doc)) {
      if (steps >= max_steps) break;
      da.FillNextTokenBitmask(&mask_a);
      db.FillNextTokenBitmask(&mask_b);
      ++steps;
      for (std::int32_t id = 0; id < info->VocabSize(); ++id) {
        if (mask_a.Test(static_cast<std::size_t>(id)) !=
            mask_b.Test(static_cast<std::size_t>(id))) {
          ++mismatches;
        }
      }
      if (!da.AcceptToken(token) || !db.AcceptToken(token)) break;
    }
  }
  return mismatches;
}

RowResult MeasureRow(const TaskSpec& task, const pda::CompileOptions& options,
                     const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
                     std::int32_t max_steps,
                     const std::shared_ptr<const cache::AdaptiveTokenMaskCache>&
                         baseline_cache) {
  RowResult out;
  Timer build_timer;
  auto pda = pda::CompiledGrammar::Compile(task.cfg, options);
  Timer cache_timer;
  out.cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  out.cache_build_ms = cache_timer.ElapsedSeconds() * 1e3;
  out.build_ms = build_timer.ElapsedSeconds() * 1e3;
  out.artifact_bytes = serialize::SerializeEngineArtifact(*out.cache).size();
  out.pass_stats = pda->PassStats();

  baselines::XGrammarDecoder decoder(out.cache);
  for (std::int32_t lap = 0; lap < WarmupLaps(); ++lap) {
    MeasureMaskGen(&decoder, info, task.documents, max_steps);
  }
  out.us_per_token =
      MeasureMaskGen(&decoder, info, task.documents, max_steps).mean_us;
  if (baseline_cache != nullptr) {
    out.mask_mismatches = CountMaskMismatches(baseline_cache, out.cache, info,
                                              task.documents, max_steps);
  }
  return out;
}

json::Value PassStatsJson(const std::vector<grammar::PassStats>& stats) {
  json::Array rows;
  for (const grammar::PassStats& s : stats) {
    json::Object row;
    row["pass"] = s.name;
    row["rules_before"] = static_cast<std::int64_t>(s.rules_before);
    row["rules_after"] = static_cast<std::int64_t>(s.rules_after);
    row["exprs_before"] = static_cast<std::int64_t>(s.exprs_before);
    row["exprs_after"] = static_cast<std::int64_t>(s.exprs_after);
    row["arena_bytes_before"] = s.arena_bytes_before;
    row["arena_bytes_after"] = s.arena_bytes_after;
    row["wall_us"] = s.wall_us;
    row["changed"] = s.changed;
    rows.push_back(json::Value(std::move(row)));
  }
  return json::Value(std::move(rows));
}

}  // namespace

int main() {
  PrintHeader(
      "Table 3 (optimizer ablation): cumulative grammar passes per fig09 task\n"
      "per row: compile+cache build ms, artifact bytes, mask us/token,\n"
      "mask bits differing vs the unoptimized build (must be 0)");
  auto info = GetTokenizer();
  std::int32_t steps = MaxSteps();

  std::vector<TaskSpec> tasks;
  {
    TaskSpec t;
    t.name = "JSON Schema";
    auto schema_tasks = datasets::GenerateSchemaTasks(1, 97);
    t.cfg = grammar::JsonSchemaToGrammar(schema_tasks[0].schema);
    t.documents = {schema_tasks[0].canonical_answer.Dump()};
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "CFG (Unconstrained JSON)";
    t.cfg = grammar::BuiltinJsonGrammar();
    t.documents = datasets::GenerateJsonDocuments(4, 1234);
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "CFG (XML)";
    t.cfg = grammar::BuiltinXmlGrammar();
    t.documents = datasets::GenerateXmlDocuments(4, 555);
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "CFG (Python DSL)";
    t.cfg = grammar::BuiltinPythonDslGrammar();
    t.documents = datasets::GeneratePythonPrograms(4, 777);
    tasks.push_back(std::move(t));
  }

  const std::vector<RowSpec> rows = BuildRows();
  json::Array task_results;
  for (const TaskSpec& task : tasks) {
    std::printf("\n-- %s --\n", task.name.c_str());
    PrintRow({"configuration", "build_ms", "artifact_kB", "us/token",
              "mask_diff"},
             18);
    std::shared_ptr<const cache::AdaptiveTokenMaskCache> baseline;
    json::Array row_results;
    for (const RowSpec& row : rows) {
      RowResult r = MeasureRow(task, row.options, info, steps, baseline);
      if (baseline == nullptr) baseline = r.cache;
      PrintRow({row.label, Fmt(r.build_ms, 1),
                Fmt(static_cast<double>(r.artifact_bytes) / 1024.0, 1),
                Fmt(r.us_per_token, 2),
                std::to_string(r.mask_mismatches)},
               18);
      json::Object row_json;
      row_json["config"] = row.label;
      row_json["build_ms"] = r.build_ms;
      row_json["cache_build_ms"] = r.cache_build_ms;
      row_json["artifact_bytes"] = static_cast<std::int64_t>(r.artifact_bytes);
      row_json["us_per_token"] = r.us_per_token;
      row_json["mask_mismatches"] = r.mask_mismatches;
      if (&row == &rows.back()) {
        row_json["pass_stats"] = PassStatsJson(r.pass_stats);
      }
      row_results.push_back(json::Value(std::move(row_json)));
    }
    json::Object task_json;
    task_json["task"] = task.name;
    task_json["rows"] = json::Value(std::move(row_results));
    task_results.push_back(json::Value(std::move(task_json)));
  }

  json::Object doc;
  doc["bench"] = "table3_optimizer_ablation";
  doc["vocab"] = VocabSize();
  doc["max_steps"] = steps;
  doc["warmup_laps"] = WarmupLaps();
  doc["results"] = json::Value(std::move(task_results));
  const char* json_path = std::getenv("XGR_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_ablation.json";
  std::ofstream out(path);
  out << json::Value(std::move(doc)).Dump(2) << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
