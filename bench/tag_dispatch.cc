// Tag-dispatch composition benchmark: the agentic function-calling regime the
// composite decoder exists for, against the monolithic
// BuildStructuralTagGrammar path. Three sections:
//
//   1. compile — preprocessing time vs toolset size: the monolithic build
//      (one grammar + mask cache over the whole toolset) against the
//      dispatch plan build, cold (every per-tag artifact compiled) and warm
//      (same service: every per-tag compile is a registry hit, so only the
//      per-config tables are rebuilt). The acceptance claim: dispatch warm
//      cost grows sublinearly vs the monolithic build because tool artifacts
//      are content-addressed and shared.
//   2. free_text — per-token mask cost in the free-text segment vs toolset
//      size, plus allocations per token (the dispatch free segment must be
//      allocation-free in steady state — a CI gate).
//   3. session — a simulated multi-request agent session over one
//      CompileService: requests use overlapping tool subsets; per-tag
//      artifacts must be shared across requests (shared_artifact_hits > 0 is
//      a CI gate) and every transcript must decode correctly.
//
// Emits BENCH_tag_dispatch.json (override with XGR_BENCH_JSON). Knobs:
// XGR_VOCAB, XGR_TOOLS (largest toolset, default 32), XGR_SESSION_REQUESTS
// (default 12), XGR_BENCH_STEPS.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/tag_dispatch_decoder.h"
#include "baselines/xgrammar_decoder.h"
#include "bench/bench_common.h"
#include "compose/tag_dispatch.h"
#include "grammar/structural_tag.h"
#include "json/json.h"
#include "pda/compiled_grammar.h"
#include "runtime/compile_service.h"
#include "support/alloc_hook.h"
#include "support/timer.h"
#include "tokenizer/token_trie.h"

namespace {
using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT

grammar::StructuralTag MakeTool(int index) {
  grammar::StructuralTag tag;
  tag.begin = "<function=tool_" + std::to_string(index) + ">";
  tag.schema_text =
      R"({"type":"object","properties":{"arg_)" + std::to_string(index) +
      R"(":{"type":"string"},"count":{"type":"integer"}},)"
      R"("required":["arg_)" + std::to_string(index) +
      R"("],"additionalProperties":false})";
  tag.end = "</function>";
  return tag;
}

compose::TagDispatchConfig MakeConfig(int num_tools, int first = 0) {
  compose::TagDispatchConfig config;
  for (int i = 0; i < num_tools; ++i) config.tags.push_back(MakeTool(first + i));
  config.triggers = {"<function="};
  return config;
}

std::string MakeCall(int index) {
  return "<function=tool_" + std::to_string(index) + ">" + R"({"arg_)" +
         std::to_string(index) + R"(":"value"})" + "</function>";
}

grammar::StructuralTagOptions MonolithicOptions() { return {}; }

const std::vector<std::string>& ProseDocuments() {
  static const std::vector<std::string> docs = {
      "The assistant considered the request carefully and explained the plan "
      "in plain language before doing anything else. ",
      "Numbers like 1024 and names like Turing appear in ordinary prose, and "
      "none of them should cost more than a table lookup to validate. ",
      "Long free-form reasoning is the common case in agent transcripts; the "
      "tool call itself is a few dozen tokens at the very end. ",
  };
  return docs;
}

struct CompileRow {
  int tools = 0;
  double monolithic_ms = 0.0;
  double dispatch_cold_ms = 0.0;
  double dispatch_warm_ms = 0.0;
  std::int64_t warm_prefetch_hits = 0;
};

struct FreeTextRow {
  int tools = 0;
  MaskGenMeasurement monolithic;
  MaskGenMeasurement dispatch;
};

}  // namespace

int main() {
  AllocCountFn() = &xgr::support::AllocHookCount;
  auto info = GetTokenizer();
  const tokenizer::TokenTrie& trie = GetTrie(info);
  const int max_tools = EnvInt("XGR_TOOLS", 32);
  const int session_requests = EnvInt("XGR_SESSION_REQUESTS", 12);

  std::vector<int> sizes{2, 8, max_tools};
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  sizes.erase(std::remove_if(sizes.begin(), sizes.end(),
                             [&](int n) { return n > max_tools; }),
              sizes.end());

  PrintHeader("Tag-dispatch composition: compile time, free-text mask cost, "
              "agent-session artifact reuse");

  // --- 1. Compile time vs toolset size --------------------------------------
  std::vector<CompileRow> compile_rows;
  PrintRow({"tools", "monolithic ms", "dispatch cold ms", "dispatch warm ms"});
  for (int n : sizes) {
    CompileRow row;
    row.tools = n;
    compose::TagDispatchConfig config = MakeConfig(n);
    {
      Timer timer;
      grammar::Grammar g = grammar::BuildStructuralTagGrammar(
          config.tags, config.triggers, MonolithicOptions());
      auto pda = pda::CompiledGrammar::Compile(g);
      auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
      row.monolithic_ms = timer.ElapsedMicros() / 1e3;
    }
    runtime::CompileService service(info, {});
    {
      Timer timer;
      auto plan = compose::TagDispatchPlan::Build(config, &service);
      row.dispatch_cold_ms = timer.ElapsedMicros() / 1e3;
    }
    {
      Timer timer;
      auto plan = compose::TagDispatchPlan::Build(config, &service);
      row.dispatch_warm_ms = timer.ElapsedMicros() / 1e3;
      row.warm_prefetch_hits = plan->BuildStats().prefetch_hits;
    }
    PrintRow({std::to_string(n), Fmt(row.monolithic_ms), Fmt(row.dispatch_cold_ms),
              Fmt(row.dispatch_warm_ms)});
    compile_rows.push_back(row);
  }

  // --- 2. Free-text mask cost vs toolset size -------------------------------
  std::vector<FreeTextRow> free_rows;
  std::printf("\nFree-text segment (prose, no tool calls):\n");
  PrintRow({"tools", "monolithic us/tok", "dispatch us/tok", "mono allocs/tok",
            "disp allocs/tok"});
  for (int n : sizes) {
    FreeTextRow row;
    row.tools = n;
    compose::TagDispatchConfig config = MakeConfig(n);
    {
      grammar::Grammar g = grammar::BuildStructuralTagGrammar(
          config.tags, config.triggers, MonolithicOptions());
      auto pda = pda::CompiledGrammar::Compile(g);
      auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
      baselines::XGrammarDecoder decoder(cache);
      MeasureMaskGen(&decoder, info, ProseDocuments(), MaxSteps());  // warm-up
      row.monolithic = MeasureMaskGen(&decoder, info, ProseDocuments(), MaxSteps());
    }
    {
      runtime::CompileService service(info, {});
      auto plan = compose::TagDispatchPlan::Build(config, &service);
      baselines::TagDispatchDecoder decoder(plan);
      MeasureMaskGen(&decoder, info, ProseDocuments(), MaxSteps());  // warm-up
      row.dispatch = MeasureMaskGen(&decoder, info, ProseDocuments(), MaxSteps());
    }
    PrintRow({std::to_string(n), Fmt(row.monolithic.mean_us, 2),
              Fmt(row.dispatch.mean_us, 2), Fmt(row.monolithic.allocs_per_token, 2),
              Fmt(row.dispatch.allocs_per_token, 2)});
    free_rows.push_back(row);
  }

  // --- 3. Simulated agent session -------------------------------------------
  // One service; each request builds a plan over an overlapping subset of
  // the tool universe (as a router would per conversation turn), decodes a
  // transcript with a call, and moves on. After the first few requests,
  // every per-tag compile must be a registry hit.
  runtime::CompileService session_service(info, {});
  std::vector<double> plan_ms;
  std::int64_t session_dispatches = 0;
  std::int64_t session_prefetch_hits = 0;
  bool transcripts_ok = true;
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (int r = 0; r < session_requests; ++r) {
    // Window of 4 tools sliding by 2: adjacent requests share half their
    // toolset, like consecutive turns of one agent conversation.
    int first = (r * 2) % std::max(1, max_tools - 3);
    compose::TagDispatchConfig config = MakeConfig(4, first);
    Timer timer;
    auto plan = compose::TagDispatchPlan::Build(config, &session_service);
    plan_ms.push_back(timer.ElapsedMicros() / 1e3);
    session_prefetch_hits += plan->BuildStats().prefetch_hits;
    baselines::TagDispatchDecoder decoder(plan);
    const std::string transcript =
        "Let me call the tool. " + MakeCall(first + 1) + " Done.";
    for (std::int32_t token : tokenizer::GreedyTokenize(trie, transcript)) {
      decoder.FillNextTokenBitmask(&mask);
      if (!mask.Test(static_cast<std::size_t>(token)) ||
          !decoder.AcceptToken(token)) {
        transcripts_ok = false;
        break;
      }
    }
    session_dispatches += decoder.Matcher().Stats().dispatches;
  }
  runtime::CompileServiceStats session_stats = session_service.Stats();
  // Median over the warm requests only (the first build is the cold outlier
  // the reuse story is about excluding).
  double plan_ms_median_rest = 0.0;
  if (plan_ms.size() > 1) {
    std::vector<double> rest(plan_ms.begin() + 1, plan_ms.end());
    std::sort(rest.begin(), rest.end());
    plan_ms_median_rest = rest[rest.size() / 2];
  }
  std::printf("\nAgent session (%d requests, 4-tool windows over %d tools):\n",
              session_requests, max_tools);
  std::printf("  plan build first / median rest : %.1f / %.1f ms\n", plan_ms[0],
              plan_ms_median_rest);
  std::printf("  shared artifact hits           : %lld (compiled %lld of %lld submits)\n",
              static_cast<long long>(session_stats.registry_hits),
              static_cast<long long>(session_stats.compiled),
              static_cast<long long>(session_stats.submitted));
  std::printf("  dispatches                     : %lld, transcripts %s\n",
              static_cast<long long>(session_dispatches),
              transcripts_ok ? "ok" : "FAILED");

  // --- JSON -------------------------------------------------------------------
  json::Array compile_json;
  for (const CompileRow& row : compile_rows) {
    json::Object o;
    o["tools"] = row.tools;
    o["monolithic_ms"] = row.monolithic_ms;
    o["dispatch_cold_ms"] = row.dispatch_cold_ms;
    o["dispatch_warm_ms"] = row.dispatch_warm_ms;
    o["warm_prefetch_hits"] = row.warm_prefetch_hits;
    compile_json.push_back(json::Value(std::move(o)));
  }
  json::Array free_json;
  for (const FreeTextRow& row : free_rows) {
    json::Object o;
    o["tools"] = row.tools;
    o["monolithic_us_per_token"] = row.monolithic.mean_us;
    o["dispatch_us_per_token"] = row.dispatch.mean_us;
    o["monolithic_allocs_per_token"] = row.monolithic.allocs_per_token;
    o["dispatch_allocs_per_token"] = row.dispatch.allocs_per_token;
    free_json.push_back(json::Value(std::move(o)));
  }
  json::Object session;
  session["requests"] = session_requests;
  session["tools_universe"] = max_tools;
  session["shared_artifact_hits"] = session_stats.registry_hits;
  session["compiled"] = session_stats.compiled;
  session["submitted"] = session_stats.submitted;
  session["dispatches"] = session_dispatches;
  session["plan_build_ms_first"] = plan_ms.empty() ? 0.0 : plan_ms[0];
  session["plan_build_ms_median_rest"] = plan_ms_median_rest;
  session["transcripts_ok"] = transcripts_ok;

  json::Object doc;
  doc["benchmark"] = "tag_dispatch";
  doc["vocab_size"] = info->VocabSize();
  doc["compile"] = json::Value(std::move(compile_json));
  doc["free_text"] = json::Value(std::move(free_json));
  doc["session"] = json::Value(std::move(session));

  const char* json_path = std::getenv("XGR_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_tag_dispatch.json";
  std::ofstream out(path);
  out << json::Value(std::move(doc)).Dump(2) << "\n";
  if (out) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  return transcripts_ok ? 0 : 1;
}
