// Table 2: TPOT (ms) with and without XGrammar on the MLC-style engine,
// Llama-3.1-8B, batch sizes 1 and 16.
//
// Paper reference: JSON Schema 6.2/6.3 (b1) and 9.0/9.2 (b16);
//                  CFG JSON    6.3/6.3 (b1) and 9.0/9.1 (b16).
// Expected shape: enabling XGrammar changes TPOT by ~1-3% — the overlapped
// mask generation hides behind the forward pass (§3.5).
#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "grammar/grammar.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;

}  // namespace

int main() {
  PrintHeader(
      "Table 2: MLC-style engine TPOT (ms) with/without XGrammar\n"
      "paper: JSON-Schema b1 6.2->6.3, b16 9.0->9.2; CFG b1 6.3->6.3, b16 9.0->9.1");
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.05, .seed = 29});
  auto tasks = datasets::GenerateSchemaTasks(1, 31);
  grammar::Grammar json_cfg = grammar::BuiltinJsonGrammar();
  std::string cfg_target = datasets::GenerateJsonDocuments(1, 7, 3)[0];
  std::int32_t max_tokens = std::min<std::int32_t>(MaxSteps(), 16);

  PrintRow({"task", "batch", "TPOT w/o XGrammar", "TPOT w/ XGrammar"}, 22);
  for (bool schema_task : {true, false}) {
    for (std::int32_t batch : {1, 16}) {
      std::string target =
          schema_task ? tasks[0].canonical_answer.Dump() : cfg_target;
      auto run = [&](bool constrained) {
        EngineOptions options;
        options.profile = engine::ModelProfile::Llama31_8B_H100();
        options.schedule =
            constrained ? GrammarSchedule::kOverlap : GrammarSchedule::kNone;
        options.max_new_tokens = max_tokens;
        engine::ServingEngine eng(options, llm);
        DecoderFactory factory(EngineKind::kXGrammar, info);
        if (constrained) {
          if (schema_task) {
            factory.PrepareSchema(tasks[0].schema);
          } else {
            factory.PrepareGrammar(json_cfg);
          }
        }
        std::vector<EngineRequest> requests(static_cast<std::size_t>(batch));
        for (std::size_t i = 0; i < requests.size(); ++i) {
          if (constrained) requests[i].decoder = factory.NewDecoder();
          requests[i].target_text = target;
          requests[i].seed = i + 1;
        }
        return eng.RunBatch(requests).TpotMs();
      };
      PrintRow({schema_task ? "JSON Schema" : "CFG (JSON)", std::to_string(batch),
                Fmt(run(false), 2), Fmt(run(true), 2)},
               22);
    }
  }
  return 0;
}
