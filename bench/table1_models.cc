// Table 1: end-to-end TPOT (ms) across models on the JSON Schema task,
// SGLang+Outlines vs SGLang+XGrammar.
//
// Paper reference: Llama-3.1-8B 44.2 -> 6.8; DeepSeek-V2-Lite-16B-MOE
// 15.8 -> 4.8. Expected shape: XGrammar beats Outlines on both models and
// lands at the model's unconstrained step time. (The absolute Outlines gap
// is smaller here: our reimplementation of its strategy is compiled C++,
// while the measured system pays Python-interpreter overhead per step —
// see EXPERIMENTS.md.)
#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;

double Run(const engine::ModelProfile& profile, EngineKind kind,
           GrammarSchedule schedule,
           const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
           const engine::MockLlm& llm, const datasets::SchemaTask& task,
           std::int32_t max_tokens) {
  DecoderFactory factory(kind, info);
  factory.PrepareSchema(task.schema);
  EngineOptions options;
  options.profile = profile;
  options.schedule = schedule;
  options.max_new_tokens = max_tokens;
  engine::ServingEngine eng(options, llm);
  EngineRequest request;
  request.decoder = factory.NewDecoder();
  request.target_text = task.canonical_answer.Dump();
  return eng.RunBatch({request}).TpotMs();
}

}  // namespace

int main() {
  PrintHeader(
      "Table 1: end-to-end TPOT (ms) per model, JSON Schema task\n"
      "paper: Llama-3.1-8B  SGLang+Outlines 44.2 -> SGLang+XGrammar 6.8\n"
      "       DeepSeek-V2-Lite 16B MOE      15.8 ->                 4.8");
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.05, .seed = 17});
  auto tasks = datasets::GenerateSchemaTasks(1, 23);
  std::int32_t max_tokens = std::min<std::int32_t>(MaxSteps(), 24);

  PrintRow({"model", "SGLang+Outlines", "SGLang+XGrammar"}, 36);
  for (const engine::ModelProfile& profile :
       {engine::ModelProfile::Llama31_8B_H100(),
        engine::ModelProfile::DeepSeekV2Lite_H100()}) {
    std::vector<std::string> row{profile.name};
    row.push_back(Fmt(Run(profile, EngineKind::kOutlines, GrammarSchedule::kSerial,
                          info, llm, tasks[0], max_tokens), 1));
    row.push_back(Fmt(Run(profile, EngineKind::kXGrammar, GrammarSchedule::kOverlap,
                          info, llm, tasks[0], max_tokens), 1));
    PrintRow(row, 36);
  }
  return 0;
}
