// Deployment-path benchmark (Appendix C): loading a serialized engine
// artifact versus rebuilding the compiled grammar + token-mask cache from
// source. On weak clients (browser/WASM, phones) the build cost dominates
// TTFT; shipping the artifact moves it offline.
#include <string>

#include "bench/bench_common.h"
#include "cache/adaptive_cache.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "pda/compiled_grammar.h"
#include "serialize/serialize.h"
#include "support/timer.h"

namespace {
using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
}  // namespace

int main() {
  PrintHeader(
      "Serialized engine artifacts: build-from-source vs load (ms)\n"
      "(deployment path for the Appendix C browser/mobile targets)");
  auto info = GetTokenizer();

  struct Task {
    const char* name;
    grammar::Grammar grammar;
  };
  std::vector<Task> tasks;
  tasks.push_back({"JSON (CFG)", grammar::BuiltinJsonGrammar()});
  tasks.push_back({"JSON Schema", grammar::JsonSchemaTextToGrammar(R"({
      "type":"object",
      "properties":{"name":{"type":"string"},"age":{"type":"integer"},
                    "tags":{"type":"array","items":{"type":"string"}}},
      "required":["name"],"additionalProperties":false})")});
  tasks.push_back({"XML", grammar::BuiltinXmlGrammar()});
  tasks.push_back({"SQL", grammar::BuiltinSqlGrammar()});

  PrintRow({"grammar", "build (ms)", "serialize (ms)", "artifact (KB)",
            "load (ms)", "speedup"},
           16);
  for (Task& task : tasks) {
    Timer build_timer;
    auto pda = pda::CompiledGrammar::Compile(task.grammar);
    auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
    double build_ms = build_timer.ElapsedMicros() / 1000.0;

    Timer save_timer;
    std::string artifact = serialize::SerializeEngineArtifact(*cache);
    double save_ms = save_timer.ElapsedMicros() / 1000.0;

    Timer load_timer;
    auto loaded = serialize::DeserializeEngineArtifact(artifact, info);
    double load_ms = load_timer.ElapsedMicros() / 1000.0;

    PrintRow({task.name, Fmt(build_ms, 2), Fmt(save_ms, 2),
              Fmt(static_cast<double>(artifact.size()) / 1024.0, 1),
              Fmt(load_ms, 2), Fmt(build_ms / load_ms, 1) + "x"},
             16);
  }
  return 0;
}
