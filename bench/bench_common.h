// Shared utilities for the per-table / per-figure benchmark harnesses.
//
// Environment knobs (printed in every header):
//   XGR_VOCAB        vocabulary size (default 32000; the paper uses the 128k
//                    Llama-3.1 vocabulary — set XGR_VOCAB=128000 to match;
//                    smaller vocabularies preserve every ordering, only the
//                    absolute baseline costs shrink proportionally)
//   XGR_BENCH_STEPS  max decode steps measured per configuration
//   XGR_BENCH_WARMUP warm-up laps before the measured lap (default 1; the
//                    paper's regime is long steady-state generations)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/constrained_decoder.h"
#include "cache/mask_generator.h"
#include "support/timer.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::benchutil {

inline std::int32_t EnvInt(const char* name, std::int32_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline std::int32_t VocabSize() { return EnvInt("XGR_VOCAB", 32000); }
inline std::int32_t MaxSteps() { return EnvInt("XGR_BENCH_STEPS", 48); }
inline std::int32_t WarmupLaps() { return EnvInt("XGR_BENCH_WARMUP", 1); }

// One synthetic tokenizer per size, cached for the process.
inline std::shared_ptr<const tokenizer::TokenizerInfo> GetTokenizer(
    std::int32_t size = VocabSize()) {
  static std::map<std::int32_t, std::shared_ptr<const tokenizer::TokenizerInfo>> cache;
  auto it = cache.find(size);
  if (it != cache.end()) return it->second;
  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = size, .seed = 2024}));
  cache.emplace(size, info);
  return info;
}

inline const tokenizer::TokenTrie& GetTrie(
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info) {
  static std::map<const tokenizer::TokenizerInfo*, std::unique_ptr<tokenizer::TokenTrie>>
      cache;
  auto it = cache.find(info.get());
  if (it == cache.end()) {
    it = cache.emplace(info.get(), std::make_unique<tokenizer::TokenTrie>(*info)).first;
  }
  return *it->second;
}

// Optional allocation-counter hook. A bench main that includes
// support/alloc_hook.h (counting operator new; one TU per binary) registers
// it here — `AllocCountFn() = &xgr::support::AllocHookCount;` — and
// MeasureMaskGen then reports heap allocations per token alongside latency.
// Without a hook, allocs_per_token stays at -1 ("not measured").
inline std::int64_t (*&AllocCountFn())() {
  static std::int64_t (*fn)() = nullptr;
  return fn;
}

struct MaskGenMeasurement {
  double mean_us = 0.0;
  std::int64_t steps = 0;
  double allocs_per_token = -1.0;  // operator-new calls per mask; -1 = no hook
  // Context-dependent checking attribution, per token over the measured lap
  // (engines exposing cache::MaskGenStats only; -1 = not measured): tokens
  // resolved, sub-trie bytes attempted, and tokens rejected via subtree
  // cut-off. See MaskGenStats for exact counter semantics.
  double ctx_tokens_checked = -1.0;
  double ctx_bytes_checked = -1.0;
  double ctx_tokens_pruned = -1.0;
};

// Measures mean per-token mask-generation latency (µs) — and, when an alloc
// hook is registered, allocations per token — by driving `decoder` along the
// token paths of `documents` (greedy tokenization), timing only
// FillNextTokenBitmask. Means are over at most `max_steps` steps.
inline MaskGenMeasurement MeasureMaskGen(
    baselines::ConstrainedDecoder* decoder,
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
    const std::vector<std::string>& documents, std::int32_t max_steps) {
  const tokenizer::TokenTrie& trie = GetTrie(info);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  StatAccumulator stat;
  std::int64_t (*alloc_now)() = AllocCountFn();
  std::int64_t allocs = 0;
  const cache::MaskGenStats* mask_stats = decoder->MaskStats();
  cache::MaskGenStats stats_before;
  if (mask_stats != nullptr) stats_before = *mask_stats;
  for (const std::string& doc : documents) {
    if (static_cast<std::int32_t>(stat.Count()) >= max_steps) break;
    decoder->Reset();
    for (std::int32_t token : tokenizer::GreedyTokenize(trie, doc)) {
      if (static_cast<std::int32_t>(stat.Count()) >= max_steps) break;
      std::int64_t allocs_before = alloc_now != nullptr ? alloc_now() : 0;
      Timer timer;
      decoder->FillNextTokenBitmask(&mask);
      stat.Add(timer.ElapsedMicros());
      if (alloc_now != nullptr) allocs += alloc_now() - allocs_before;
      if (!decoder->AcceptToken(token)) break;  // defensive
    }
  }
  MaskGenMeasurement out;
  out.mean_us = stat.Mean();
  out.steps = static_cast<std::int64_t>(stat.Count());
  if (alloc_now != nullptr && out.steps > 0) {
    out.allocs_per_token = static_cast<double>(allocs) / static_cast<double>(out.steps);
  }
  if (mask_stats != nullptr && out.steps > 0) {
    auto per_token = [&](std::int64_t now, std::int64_t before) {
      return static_cast<double>(now - before) / static_cast<double>(out.steps);
    };
    out.ctx_tokens_checked = per_token(mask_stats->runtime_tokens_checked,
                                       stats_before.runtime_tokens_checked);
    out.ctx_bytes_checked =
        per_token(mask_stats->ctx_bytes_checked, stats_before.ctx_bytes_checked);
    out.ctx_tokens_pruned =
        per_token(mask_stats->ctx_tokens_pruned, stats_before.ctx_tokens_pruned);
  }
  return out;
}

inline double MeasureMaskGenUs(
    baselines::ConstrainedDecoder* decoder,
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
    const std::vector<std::string>& documents, std::int32_t max_steps) {
  return MeasureMaskGen(decoder, info, documents, max_steps).mean_us;
}

// --- Table printing ---------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("vocab=%d  max_steps=%d  (paper hardware: see EXPERIMENTS.md)\n",
              VocabSize(), MaxSteps());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 22) {
  for (const std::string& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(double value, int digits = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace xgr::benchutil
