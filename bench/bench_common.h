// Shared utilities for the per-table / per-figure benchmark harnesses.
//
// Environment knobs (printed in every header):
//   XGR_VOCAB        vocabulary size (default 32000; the paper uses the 128k
//                    Llama-3.1 vocabulary — set XGR_VOCAB=128000 to match;
//                    smaller vocabularies preserve every ordering, only the
//                    absolute baseline costs shrink proportionally)
//   XGR_BENCH_STEPS  max decode steps measured per configuration
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/constrained_decoder.h"
#include "support/timer.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::benchutil {

inline std::int32_t EnvInt(const char* name, std::int32_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline std::int32_t VocabSize() { return EnvInt("XGR_VOCAB", 32000); }
inline std::int32_t MaxSteps() { return EnvInt("XGR_BENCH_STEPS", 48); }

// One synthetic tokenizer per size, cached for the process.
inline std::shared_ptr<const tokenizer::TokenizerInfo> GetTokenizer(
    std::int32_t size = VocabSize()) {
  static std::map<std::int32_t, std::shared_ptr<const tokenizer::TokenizerInfo>> cache;
  auto it = cache.find(size);
  if (it != cache.end()) return it->second;
  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = size, .seed = 2024}));
  cache.emplace(size, info);
  return info;
}

inline const tokenizer::TokenTrie& GetTrie(
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info) {
  static std::map<const tokenizer::TokenizerInfo*, std::unique_ptr<tokenizer::TokenTrie>>
      cache;
  auto it = cache.find(info.get());
  if (it == cache.end()) {
    it = cache.emplace(info.get(), std::make_unique<tokenizer::TokenTrie>(*info)).first;
  }
  return *it->second;
}

// Measures mean per-token mask-generation latency (µs) by driving `decoder`
// along the token paths of `documents` (greedy tokenization), timing only
// FillNextTokenBitmask. Returns the mean over at most `max_steps` steps.
inline double MeasureMaskGenUs(
    baselines::ConstrainedDecoder* decoder,
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
    const std::vector<std::string>& documents, std::int32_t max_steps) {
  const tokenizer::TokenTrie& trie = GetTrie(info);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  StatAccumulator stat;
  for (const std::string& doc : documents) {
    if (static_cast<std::int32_t>(stat.Count()) >= max_steps) break;
    decoder->Reset();
    for (std::int32_t token : tokenizer::GreedyTokenize(trie, doc)) {
      if (static_cast<std::int32_t>(stat.Count()) >= max_steps) break;
      Timer timer;
      decoder->FillNextTokenBitmask(&mask);
      stat.Add(timer.ElapsedMicros());
      if (!decoder->AcceptToken(token)) break;  // defensive
    }
  }
  return stat.Mean();
}

// --- Table printing ---------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("vocab=%d  max_steps=%d  (paper hardware: see EXPERIMENTS.md)\n",
              VocabSize(), MaxSteps());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 22) {
  for (const std::string& cell : cells) std::printf("%-*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(double value, int digits = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace xgr::benchutil
