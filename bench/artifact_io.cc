// Zero-copy artifact I/O benchmark (the PR 9 tentpole numbers):
//
//   A. Ready time, 32-schema warm start: mmap-loading flat "XGR3" artifacts
//      (validate + fix up views, no parse) vs the v2 heap deserializer
//      (read + parse + copy every array). Gate: mmap p50 >= 10x faster at
//      full scale (vocab >= 32000); >= 3x at reduced smoke vocabs, where
//      fixed per-load costs compress the ratio.
//      Every loaded artifact's start-state mask is checked bit-identical to
//      the freshly compiled cache (the full decode-walk differential lives
//      in tests/artifact_test.cc).
//   B. Multi-process warm-start storm: N forked reader processes each stand
//      up a CompileService over the same pre-warmed disk cache and submit
//      all 32 schemas. Gate: zero recompiles across every reader — the disk
//      tier alone satisfies the storm, and the mapped pages are shared.
//   C. Registry contention: 8 threads hammering the submit-path registry
//      lookup while the shard count sweeps 1..16. Gate: throughput with the
//      maximum shard count beats the single-mutex registry on a host with
//      >= 8 hardware threads; on a smaller (time-sliced) host the gate is
//      the registry's contended-lock-acquisition telemetry instead, since
//      wall-clock scaling is physically impossible there.
//
// Emits BENCH_artifact_io.json (override with XGR_BENCH_JSON). Knobs:
// XGR_VOCAB, XGR_STORM_SCHEMAS (default 32), XGR_STORM_READERS (default 8),
// XGR_REG_THREADS (default 8), XGR_CACHE_DIR (scratch under the system temp
// dir by default, wiped at start).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "artifact/artifact_reader.h"
#include "artifact/artifact_writer.h"
#include "baselines/xgrammar_decoder.h"
#include "bench/bench_common.h"
#include "cache/adaptive_cache.h"
#include "datasets/workloads.h"
#include "grammar/json_schema.h"
#include "json/json.h"
#include "pda/compiled_grammar.h"
#include "runtime/compile_service.h"
#include "runtime/grammar_registry.h"
#include "serialize/serialize.h"
#include "support/logging.h"
#include "support/timer.h"

namespace {
using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT

namespace fs = std::filesystem;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = p * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::shared_ptr<const cache::AdaptiveTokenMaskCache> CompileTask(
    const datasets::SchemaTask& task,
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info) {
  grammar::Grammar g = grammar::JsonSchemaToGrammar(task.schema);
  auto pda = pda::CompiledGrammar::Compile(g);
  return cache::AdaptiveTokenMaskCache::Build(pda, info);
}

runtime::CompileJob SchemaJob(const datasets::SchemaTask& task) {
  runtime::CompileJob job;
  job.kind = runtime::GrammarKind::kJsonSchema;
  job.source = task.schema.Dump();
  return job;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// --- reader-process mode ------------------------------------------------------
// `artifact_io --reader <cache_dir> <out_path> <schemas> <seed>`: stand up a
// CompileService over the pre-warmed disk cache, submit every schema, wait
// until all are ready, and report "<ready_ms> <builds_started>".
int ReaderMain(const std::string& cache_dir, const std::string& out_path,
               int num_schemas, int seed) {
  auto info = GetTokenizer();
  auto tasks = datasets::GenerateSchemaTasks(num_schemas, seed);

  runtime::CompileServiceOptions options;
  options.num_threads = 4;
  options.registry.disk_dir = cache_dir;
  runtime::CompileService service(info, options);

  Timer timer;
  std::vector<runtime::CompileTicket> tickets;
  tickets.reserve(tasks.size());
  for (const auto& task : tasks) tickets.push_back(service.Submit(SchemaJob(task)));
  for (auto& ticket : tickets) {
    if (!ticket.WaitFor(120.0) ||
        ticket.State() != runtime::CompileState::kReady) {
      std::fprintf(stderr, "reader: ticket did not become ready\n");
      return 3;
    }
  }
  const double ready_ms = timer.ElapsedMillis();
  // `compiled` counts full builds only (registry+disk miss); a warm reader
  // resolves everything as `disk_loads`.
  const auto stats = service.Stats();

  std::ofstream out(out_path);
  out << ready_ms << " " << stats.compiled << " " << stats.disk_loads << "\n";
  if (!out) return 4;
  return stats.compiled == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 6 && std::string(argv[1]) == "--reader") {
    return ReaderMain(argv[2], argv[3], std::atoi(argv[4]),
                      std::atoi(argv[5]));
  }

  PrintHeader(
      "Artifact I/O: zero-copy mmap ready time vs v2 deserialize,\n"
      "multi-process warm-start storm, registry shard-contention scaling");
  auto info = GetTokenizer();
  const int num_schemas = EnvInt("XGR_STORM_SCHEMAS", 32);
  const int num_readers = EnvInt("XGR_STORM_READERS", 8);
  const int reg_threads = EnvInt("XGR_REG_THREADS", 8);
  constexpr int kSchemaSeed = 2025;

  const char* cache_dir_env = std::getenv("XGR_CACHE_DIR");
  const std::string root =
      cache_dir_env != nullptr
          ? std::string(cache_dir_env)
          : (fs::temp_directory_path() / "xgr_bench_artifact_io").string();
  fs::remove_all(root);
  fs::create_directories(root + "/flat");
  fs::create_directories(root + "/v2");

  auto tasks = datasets::GenerateSchemaTasks(num_schemas, kSchemaSeed);

  // --- A. ready time: mmap vs v2 deserialize --------------------------------
  std::printf("\nCompiling %d schemas and writing both artifact formats...\n",
              num_schemas);
  std::vector<std::shared_ptr<const cache::AdaptiveTokenMaskCache>> compiled;
  std::vector<std::string> flat_paths;
  std::vector<std::string> v2_paths;
  std::size_t flat_bytes = 0;
  std::size_t v2_bytes = 0;
  Timer compile_timer;
  for (int i = 0; i < num_schemas; ++i) {
    auto cache = CompileTask(tasks[static_cast<std::size_t>(i)], info);
    const std::string flat = root + "/flat/schema_" + std::to_string(i) + ".xgr3";
    const std::string v2 = root + "/v2/schema_" + std::to_string(i) + ".xgrk";
    artifact::WriteFlatArtifactFile(flat, *cache);
    {
      std::ofstream out(v2, std::ios::binary);
      const std::string bytes = serialize::SerializeEngineArtifact(*cache);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      XGR_CHECK(out.good()) << "failed writing " << v2;
    }
    flat_bytes += fs::file_size(flat);
    v2_bytes += fs::file_size(v2);
    compiled.push_back(std::move(cache));
    flat_paths.push_back(flat);
    v2_paths.push_back(v2);
  }
  const double compile_ms = compile_timer.ElapsedMillis();
  std::printf("  compiled in %.0f ms; flat %.1f MiB, v2 %.1f MiB\n",
              compile_ms, static_cast<double>(flat_bytes) / (1024.0 * 1024.0),
              static_cast<double>(v2_bytes) / (1024.0 * 1024.0));

  std::vector<double> mmap_ms;
  std::vector<double> mmap_verified_ms;
  std::vector<double> deser_ms;
  bool masks_identical = true;
  // The ready path is the trusted reopen (LoadOptions::deep_validate): the
  // first load on this machine runs the O(bytes) checksum and the
  // O(elements) content scans; the Nth process attaching to the same
  // already-verified file does structural validation + pointer fix-up only,
  // and payload pages fault in lazily on first mask use. The fully verified
  // variant is reported too; the corruption matrix in tests/artifact_test.cc
  // covers what each validation tier catches.
  const artifact::LoadOptions ready_options = artifact::TrustedReopen();
  for (int lap = 0; lap < WarmupLaps() + 1; ++lap) {
    const bool measured = lap == WarmupLaps();
    for (int i = 0; i < num_schemas; ++i) {
      auto idx = static_cast<std::size_t>(i);
      Timer t2;
      std::string bytes = ReadFileBytes(v2_paths[idx]);
      auto heap = serialize::DeserializeEngineArtifact(bytes, info);
      if (measured) deser_ms.push_back(t2.ElapsedMillis());

      Timer tv;
      auto verified = artifact::LoadFlatArtifactFile(flat_paths[idx], info);
      if (measured) mmap_verified_ms.push_back(tv.ElapsedMillis());

      Timer t3;
      auto mapped =
          artifact::LoadFlatArtifactFile(flat_paths[idx], info, ready_options);
      if (measured) mmap_ms.push_back(t3.ElapsedMillis());

      if (measured) {
        XGR_CHECK(mapped->IsMapped()) << "flat load did not stay zero-copy";
        // Start-state differential: the mmap-loaded cache masks identically
        // to the freshly compiled one (full decode-walk differential in
        // tests/artifact_test.cc).
        auto vocab = static_cast<std::size_t>(info->VocabSize());
        DynamicBitset mask_fresh(vocab);
        DynamicBitset mask_mapped(vocab);
        baselines::XGrammarDecoder fresh(compiled[idx]);
        baselines::XGrammarDecoder zero_copy(mapped);
        fresh.FillNextTokenBitmask(&mask_fresh);
        zero_copy.FillNextTokenBitmask(&mask_mapped);
        for (std::size_t w = 0; w < mask_fresh.WordCount(); ++w) {
          if (mask_fresh.Data()[w] != mask_mapped.Data()[w]) {
            masks_identical = false;
          }
        }
      }
    }
  }
  const double mmap_p50 = Percentile(mmap_ms, 0.5);
  const double deser_p50 = Percentile(deser_ms, 0.5);
  const double speedup_p50 = mmap_p50 > 0.0 ? deser_p50 / mmap_p50 : 0.0;
  const double speedup_mean =
      Mean(mmap_ms) > 0.0 ? Mean(deser_ms) / Mean(mmap_ms) : 0.0;
  // The 10x floor is the full-scale claim (32k vocab, where the v2 parse
  // has real arrays to chew through). At reduced smoke vocabs the fixed
  // per-load costs — mmap syscall, header validation, the small int32
  // table copies — dominate both paths and compress the ratio, so CI
  // smokes gate at 3x and the committed full-scale JSON carries the 10x.
  const double speedup_floor = info->VocabSize() >= 32000 ? 10.0 : 3.0;
  std::printf("\nReady time per artifact (%d schemas):\n", num_schemas);
  std::printf("  v2 deserialize   p50 %.3f ms  mean %.3f ms\n", deser_p50,
              Mean(deser_ms));
  std::printf("  mmap + checksum  p50 %.3f ms  mean %.3f ms\n",
              Percentile(mmap_verified_ms, 0.5), Mean(mmap_verified_ms));
  std::printf("  mmap ready path  p50 %.3f ms  mean %.3f ms\n", mmap_p50,
              Mean(mmap_ms));
  std::printf("  speedup          p50 %.1fx  mean %.1fx  (gate: >= %.0fx)\n",
              speedup_p50, speedup_mean, speedup_floor);
  std::printf("  masks identical : %s\n", masks_identical ? "yes" : "NO");

  // --- B. multi-process warm-start storm ------------------------------------
  // Pre-warm one disk cache through a service, then fork readers against it.
  const std::string storm_dir = root + "/storm";
  double populate_ms = 0.0;
  {
    runtime::CompileServiceOptions options;
    options.num_threads = 4;
    options.registry.disk_dir = storm_dir;
    runtime::CompileService service(info, options);
    Timer timer;
    std::vector<runtime::CompileTicket> tickets;
    for (const auto& task : tasks) tickets.push_back(service.Submit(SchemaJob(task)));
    for (auto& ticket : tickets) {
      XGR_CHECK(ticket.WaitFor(300.0)) << "cold populate timed out";
      XGR_CHECK(ticket.State() == runtime::CompileState::kReady);
    }
    populate_ms = timer.ElapsedMillis();
  }

  std::printf("\nWarm-start storm: %d reader processes x %d schemas "
              "(cold populate: %.0f ms)\n", num_readers, num_schemas,
              populate_ms);
  std::vector<pid_t> readers;
  std::vector<std::string> reader_outs;
  Timer storm_timer;
  for (int r = 0; r < num_readers; ++r) {
    const std::string out_path = root + "/reader_" + std::to_string(r) + ".txt";
    reader_outs.push_back(out_path);
    pid_t pid = fork();
    XGR_CHECK(pid >= 0) << "fork failed";
    if (pid == 0) {
      const std::string schemas = std::to_string(num_schemas);
      const std::string seed = std::to_string(kSchemaSeed);
      execl(argv[0], argv[0], "--reader", storm_dir.c_str(), out_path.c_str(),
            schemas.c_str(), seed.c_str(), static_cast<char*>(nullptr));
      _exit(127);  // execl only returns on failure
    }
    readers.push_back(pid);
  }
  int reader_failures = 0;
  for (pid_t pid : readers) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++reader_failures;
  }
  const double storm_wall_ms = storm_timer.ElapsedMillis();
  std::vector<double> reader_ready_ms;
  std::int64_t storm_recompiles = 0;
  std::int64_t storm_disk_loads = 0;
  for (const std::string& path : reader_outs) {
    std::ifstream in(path);
    double ready = -1.0;
    std::int64_t compiled_count = -1;
    std::int64_t disk_loads = -1;
    in >> ready >> compiled_count >> disk_loads;
    if (!in || ready < 0.0 || compiled_count < 0) {
      ++reader_failures;
      continue;
    }
    reader_ready_ms.push_back(ready);
    storm_recompiles += compiled_count;
    storm_disk_loads += disk_loads;
  }
  std::printf("  storm wall      : %.0f ms (%d readers concurrent)\n",
              storm_wall_ms, num_readers);
  std::printf("  reader ready    : p50 %.1f ms  max %.1f ms\n",
              Percentile(reader_ready_ms, 0.5),
              reader_ready_ms.empty()
                  ? 0.0
                  : *std::max_element(reader_ready_ms.begin(),
                                      reader_ready_ms.end()));
  std::printf("  recompiles      : %lld (gate: 0)   disk loads: %lld   "
              "reader failures: %d\n",
              static_cast<long long>(storm_recompiles),
              static_cast<long long>(storm_disk_loads), reader_failures);

  // --- C. registry shard-contention scaling ---------------------------------
  // The measured op is the warm submit path: a registry Lookup that hits a
  // resident entry (what CompileService::Submit does for every cache hit).
  // Two readouts per shard count: wall-clock throughput, and the registry's
  // own lock telemetry (contended acquisitions — try_lock misses that had to
  // block). On a host with fewer cores than threads the OS time-slices the
  // workers and wall-clock throughput physically cannot improve with shard
  // count; the contended-acquisition rate still measures the serialization
  // sharding removes, so the gate switches to it there (recorded in JSON).
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool parallel_host =
      hw_threads >= static_cast<unsigned>(reg_threads);
  std::printf("\nRegistry contention: %d threads, Lookup on warm keys "
              "(%u hardware threads)\n", reg_threads, hw_threads);
  const std::vector<std::size_t> shard_counts = {1, 2, 4, 8, 16};
  constexpr int kKeys = 64;
  constexpr std::int64_t kLookupsPerThread = 100'000;
  // Best-of-kReps per config: on a loaded or time-sliced host a single run
  // is +-10% scheduler noise, and the curve shape is the measurement.
  constexpr int kReps = 3;
  std::vector<double> shard_mops;
  std::vector<double> shard_contended_pct;
  for (std::size_t shards : shard_counts) {
    double best_mops = 0.0;
    double best_contended_pct = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      runtime::GrammarRegistryOptions options;
      options.num_shards = shards;
      runtime::GrammarRegistry registry(info, options);
      std::vector<std::string> keys;
      for (int k = 0; k < kKeys; ++k) {
        keys.push_back("schema-key-" + std::to_string(k));
        registry.Insert(keys.back(), compiled[static_cast<std::size_t>(k) %
                                              compiled.size()]);
      }
      std::atomic<bool> go{false};
      std::atomic<std::int64_t> misses{0};
      std::vector<std::thread> threads;
      for (int t = 0; t < reg_threads; ++t) {
        threads.emplace_back([&, t] {
          while (!go.load(std::memory_order_acquire)) {}
          std::int64_t local_misses = 0;
          // Per-thread stride so threads sweep the key space out of phase.
          std::size_t at = static_cast<std::size_t>(t) * 7;
          for (std::int64_t i = 0; i < kLookupsPerThread; ++i) {
            at = (at + 13) % kKeys;
            if (registry.Lookup(keys[at]) == nullptr) ++local_misses;
          }
          misses.fetch_add(local_misses, std::memory_order_relaxed);
        });
      }
      Timer timer;
      go.store(true, std::memory_order_release);
      for (auto& thread : threads) thread.join();
      const double wall_ms = timer.ElapsedMillis();
      XGR_CHECK(misses.load() == 0) << "warm lookup missed";
      const double mops =
          static_cast<double>(kLookupsPerThread) *
          static_cast<double>(reg_threads) / (wall_ms * 1000.0);
      const auto reg_stats = registry.Stats();
      const double contended_pct =
          reg_stats.lock_acquisitions > 0
              ? 100.0 * static_cast<double>(reg_stats.lock_contended) /
                    static_cast<double>(reg_stats.lock_acquisitions)
              : 0.0;
      if (mops > best_mops) {
        best_mops = mops;
        best_contended_pct = contended_pct;
      }
    }
    shard_mops.push_back(best_mops);
    shard_contended_pct.push_back(best_contended_pct);
    std::printf("  %2zu shard%s : %7.2f Mops/s   contended %6.3f%%\n", shards,
                shards == 1 ? " " : "s", best_mops, best_contended_pct);
  }
  const double contention_gain = shard_mops.back() / shard_mops.front();
  bool monotone_within_tolerance = true;
  for (std::size_t i = 1; i < shard_mops.size(); ++i) {
    if (shard_mops[i] < shard_mops[i - 1] * 0.85) {
      monotone_within_tolerance = false;
    }
  }
  std::printf("  16-shard vs single-mutex: %.2fx throughput, contended "
              "%.3f%% -> %.3f%%, monotone within 15%%: %s\n", contention_gain,
              shard_contended_pct.front(), shard_contended_pct.back(),
              monotone_within_tolerance ? "yes" : "no");

  // --- gates ------------------------------------------------------------------
  const bool gate_speedup = speedup_p50 >= speedup_floor;
  const bool gate_masks = masks_identical;
  const bool gate_storm = storm_recompiles == 0 && reader_failures == 0;
  // Parallel host: sharding must win on wall-clock throughput. Time-sliced
  // host (fewer cores than worker threads): the OS serializes the workers,
  // so there is no lock contention to remove (the telemetry confirms it:
  // contended acquisitions stay well under 1%) and no throughput gain is
  // physically possible — the gate instead asserts sharding costs nothing
  // (max shards within noise of the single mutex, negligible contention).
  // Per-point monotonicity is only meaningful with real parallelism; on a
  // time-sliced host it just re-measures scheduler jitter, so it is reported
  // in the JSON but not gated there. JSON records parallel_host so a
  // multi-core rerun enforces the real gate.
  const bool gate_contention =
      parallel_host
          ? contention_gain > 1.0 && monotone_within_tolerance
          : contention_gain >= 0.85 && shard_contended_pct.back() < 1.0;
  std::printf("\nGates: mmap>=10x %s | masks identical %s | storm 0 "
              "recompiles %s | sharding scales %s\n",
              gate_speedup ? "ok" : "FAIL", gate_masks ? "ok" : "FAIL",
              gate_storm ? "ok" : "FAIL", gate_contention ? "ok" : "FAIL");

  // --- JSON -------------------------------------------------------------------
  json::Object ready;
  ready["schemas"] = num_schemas;
  ready["compile_ms_total"] = compile_ms;
  ready["flat_bytes_total"] = static_cast<std::int64_t>(flat_bytes);
  ready["v2_bytes_total"] = static_cast<std::int64_t>(v2_bytes);
  ready["v2_deserialize_ms_p50"] = deser_p50;
  ready["v2_deserialize_ms_mean"] = Mean(deser_ms);
  ready["mmap_verified_ms_p50"] = Percentile(mmap_verified_ms, 0.5);
  ready["mmap_verified_ms_mean"] = Mean(mmap_verified_ms);
  ready["mmap_ms_p50"] = mmap_p50;
  ready["mmap_ms_mean"] = Mean(mmap_ms);
  ready["speedup_p50"] = speedup_p50;
  ready["speedup_mean"] = speedup_mean;
  ready["masks_identical"] = masks_identical;

  json::Object storm;
  storm["readers"] = num_readers;
  storm["populate_ms"] = populate_ms;
  storm["storm_wall_ms"] = storm_wall_ms;
  storm["reader_ready_ms_p50"] = Percentile(reader_ready_ms, 0.5);
  storm["reader_ready_ms_max"] =
      reader_ready_ms.empty()
          ? 0.0
          : *std::max_element(reader_ready_ms.begin(), reader_ready_ms.end());
  storm["recompiles"] = storm_recompiles;
  storm["disk_loads"] = storm_disk_loads;
  storm["reader_failures"] = reader_failures;

  json::Object contention;
  contention["threads"] = reg_threads;
  contention["hardware_threads"] = static_cast<std::int64_t>(hw_threads);
  contention["parallel_host"] = parallel_host;
  contention["keys"] = kKeys;
  contention["lookups_per_thread"] = kLookupsPerThread;
  {
    json::Array curve;
    for (std::size_t i = 0; i < shard_counts.size(); ++i) {
      json::Object point;
      point["shards"] = static_cast<std::int64_t>(shard_counts[i]);
      point["mops_per_s"] = shard_mops[i];
      point["contended_pct"] = shard_contended_pct[i];
      curve.push_back(json::Value(std::move(point)));
    }
    contention["curve"] = json::Value(std::move(curve));
  }
  contention["gain_16_vs_1"] = contention_gain;
  contention["contended_pct_1_shard"] = shard_contended_pct.front();
  contention["contended_pct_max_shards"] = shard_contended_pct.back();
  contention["monotone_within_15pct"] = monotone_within_tolerance;

  json::Object gates;
  gates["speedup_floor"] = speedup_floor;
  gates["mmap_speedup_p50_ge_floor"] = gate_speedup;
  gates["masks_identical"] = gate_masks;
  gates["storm_zero_recompiles"] = gate_storm;
  gates["sharding_beats_single_mutex"] = gate_contention;

  json::Object doc;
  doc["benchmark"] = "artifact_io";
  doc["vocab_size"] = info->VocabSize();
  doc["ready_time"] = json::Value(std::move(ready));
  doc["warm_storm"] = json::Value(std::move(storm));
  doc["contention"] = json::Value(std::move(contention));
  doc["gates"] = json::Value(std::move(gates));

  const char* json_path = std::getenv("XGR_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_artifact_io.json";
  std::ofstream out(path);
  out << json::Value(std::move(doc)).Dump(2) << "\n";
  if (out) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  return gate_speedup && gate_masks && gate_storm && gate_contention ? 0 : 1;
}
