// Grammar-runtime benchmark: the cold-start storm the agentic serving regime
// produces (a stream of distinct, dynamically arriving JSON schemas) driven
// through runtime::CompileService + GrammarRegistry, measuring what the
// subsystem exists to deliver:
//
//   1. admission — while a cold schema compiles, co-scheduled requests'
//      per-token latency under async (deferred) admission stays near their
//      no-cold-compile baseline, where the synchronous front door stalls
//      them for the full build;
//   2. storm — 32 distinct schemas at once: time-to-first-token p50/p99 and
//      registry memory staying under the configured budget (LRU eviction);
//   3. warm start — a fresh service over the same disk tier resolves every
//      schema without recompiling (verified via compiled/disk-hit counters).
//
// Emits machine-readable results to BENCH_compile_service.json (override
// with XGR_BENCH_JSON). Knobs: XGR_VOCAB, XGR_STORM_SCHEMAS (default 32),
// XGR_CACHE_DIR (default: a scratch dir under the system temp directory,
// wiped at startup so every run starts cold).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/mock_llm.h"
#include "engine/serving_engine.h"
#include "json/json.h"
#include "runtime/compile_service.h"
#include "support/timer.h"

namespace {
using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT

namespace fs = std::filesystem;

// Decode-step sleeps are scaled down so the bench finishes in seconds while
// grammar compilation stays real CPU work — exactly the regime that makes a
// synchronous compile stall visible in co-scheduled requests' latency.
//
// Unit note: the engine's simulated clock mixes scaled GPU/prefill/sampling
// waits with *real* wall time for CPU work (mask generation and compile
// stalls alike — see RunContinuous). Compressing GPU time 20x therefore
// makes the compile stall ~20x heavier relative to decode than at real
// scale: the sync-vs-async *contrast* is structural (the stall disappears
// entirely under deferred admission), but the absolute ratios are
// time_scale-dependent and the JSON records the scale used.
constexpr double kTimeScale = 0.05;

runtime::CompileJob SchemaJob(const datasets::SchemaTask& task) {
  runtime::CompileJob job;
  job.kind = runtime::GrammarKind::kJsonSchema;
  job.source = task.schema.Dump();
  return job;
}

// The admission scenario's cold arrival: a deliberately heavy schema (nested
// objects, enums, arrays — an invoice, the shape of real function-calling
// payloads) whose build spans hundreds of decode steps at the bench's time
// scale, so the sync-vs-async difference is unmistakable and does not depend
// on which schema the workload generator happens to produce.
const char* kColdSchema = R"({
  "type": "object",
  "properties": {
    "invoice_id": {"type": "string"},
    "currency": {"enum": ["USD", "EUR", "GBP", "JPY", "CHF"]},
    "status": {"enum": ["draft", "issued", "paid", "void"]},
    "customer": {
      "type": "object",
      "properties": {
        "name": {"type": "string"},
        "email": {"type": "string"},
        "address": {
          "type": "object",
          "properties": {
            "street": {"type": "string"},
            "city": {"type": "string"},
            "zip": {"type": "string"},
            "country": {"enum": ["US", "DE", "FR", "JP", "GB"]}
          },
          "required": ["street", "city", "country"],
          "additionalProperties": false
        }
      },
      "required": ["name", "address"],
      "additionalProperties": false
    },
    "lines": {
      "type": "array",
      "items": {
        "type": "object",
        "properties": {
          "sku": {"type": "string"},
          "description": {"type": "string"},
          "quantity": {"type": "integer"},
          "unit_price": {"type": "number"},
          "discounted": {"type": "boolean"}
        },
        "required": ["sku", "quantity", "unit_price"],
        "additionalProperties": false
      }
    },
    "total": {"type": "number"},
    "notes": {"type": "string"}
  },
  "required": ["invoice_id", "currency", "status", "customer", "lines", "total"],
  "additionalProperties": false
})";

const char* kColdAnswer =
    R"({"invoice_id":"inv-001","currency":"USD","status":"paid",)"
    R"("customer":{"name":"Ada","address":{"street":"1 Main","city":"Zurich",)"
    R"("country":"US"}},"lines":[{"sku":"A1","quantity":2,"unit_price":9.5}],)"
    R"("total":19.0})";

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = p * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

engine::EngineOptions BenchOptions(engine::CompileAdmission admission) {
  engine::EngineOptions options;
  options.time_scale = kTimeScale;
  options.max_new_tokens = 64;
  options.admission = admission;
  return options;
}

// Mean decode latency per token over the given (completed) warm requests.
double WarmMsPerToken(const engine::ContinuousResult& result,
                      std::size_t warm_count) {
  double total_ms = 0.0;
  std::int64_t total_tokens = 0;
  for (std::size_t i = 0; i < warm_count; ++i) {
    total_ms += result.requests[i].completion_ms;
    total_tokens +=
        static_cast<std::int64_t>(result.requests[i].result.token_ids.size());
  }
  return total_tokens == 0 ? 0.0 : total_ms / static_cast<double>(total_tokens);
}

}  // namespace

int main() {
  PrintHeader(
      "Grammar runtime (compile service + registry): async admission vs sync\n"
      "stall, cold-start schema storm under a memory budget, disk warm start");
  auto info = GetTokenizer();
  const int storm_schemas = EnvInt("XGR_STORM_SCHEMAS", 32);

  const char* cache_dir_env = std::getenv("XGR_CACHE_DIR");
  const std::string cache_dir =
      cache_dir_env != nullptr
          ? std::string(cache_dir_env)
          : (fs::temp_directory_path() / "xgr_bench_compile_service").string();
  fs::remove_all(cache_dir);  // every run starts cold

  engine::MockLlm llm(info, {.derail_probability = 0.0, .seed = 11});

  // --- 1. admission: async overlap vs synchronous stall ---------------------
  // Two warm schema-constrained requests decode from step 0; one cold schema
  // arrives at step 2. Baseline omits the cold arrival entirely.
  auto warm_tasks = datasets::GenerateSchemaTasks(2, 71);

  std::vector<runtime::Artifact> warm_artifacts;
  {
    runtime::CompileService warmup(info);
    for (const auto& task : warm_tasks) {
      warm_artifacts.push_back(warmup.Compile(SchemaJob(task)));
    }
  }
  auto make_warm_stream = [&] {
    std::vector<engine::ContinuousRequest> stream;
    for (std::size_t i = 0; i < warm_tasks.size(); ++i) {
      engine::ContinuousRequest r;
      r.request.decoder =
          std::make_shared<baselines::XGrammarDecoder>(warm_artifacts[i]);
      r.request.target_text = warm_tasks[i].canonical_answer.Dump();
      r.request.seed = 31 + i;
      r.arrival_step = 0;
      stream.push_back(std::move(r));
    }
    return stream;
  };

  struct AdmissionRun {
    double warm_ms_per_token = 0.0;
    double cold_compile_wait_ms = 0.0;
    double cold_ttft_ms = 0.0;
  };
  auto run_admission = [&](engine::CompileAdmission admission,
                           bool with_cold) -> AdmissionRun {
    std::vector<engine::ContinuousRequest> stream = make_warm_stream();
    // A fresh service per run: the cold schema must actually compile.
    runtime::CompileService service(info);
    if (with_cold) {
      runtime::CompileJob job;
      job.kind = runtime::GrammarKind::kJsonSchema;
      job.source = kColdSchema;
      engine::ContinuousRequest cold;
      cold.pending_grammar = std::make_shared<runtime::CompileTicket>(
          service.Submit(std::move(job)));
      cold.request.target_text = kColdAnswer;
      cold.request.seed = 97;
      cold.arrival_step = 2;
      stream.push_back(std::move(cold));
    }
    engine::ServingEngine engine(BenchOptions(admission), llm);
    engine::ContinuousResult result = engine.RunContinuous(stream, 4);
    AdmissionRun run;
    run.warm_ms_per_token = WarmMsPerToken(result, warm_tasks.size());
    if (with_cold) {
      const auto& cold_result = result.requests.back();
      run.cold_compile_wait_ms = cold_result.compile_wait_ms;
      run.cold_ttft_ms = cold_result.compile_wait_ms + cold_result.ttft_ms;
    }
    return run;
  };

  AdmissionRun baseline =
      run_admission(engine::CompileAdmission::kDeferred, /*with_cold=*/false);
  AdmissionRun sync_run =
      run_admission(engine::CompileAdmission::kBlocking, /*with_cold=*/true);
  AdmissionRun async_run =
      run_admission(engine::CompileAdmission::kDeferred, /*with_cold=*/true);

  double sync_ratio = baseline.warm_ms_per_token > 0
                          ? sync_run.warm_ms_per_token / baseline.warm_ms_per_token
                          : 0.0;
  double async_ratio = baseline.warm_ms_per_token > 0
                           ? async_run.warm_ms_per_token / baseline.warm_ms_per_token
                           : 0.0;

  std::printf("\nAdmission (2 warm requests + 1 cold schema arriving at step 2):\n");
  PrintRow({"mode", "warm ms/token", "vs baseline", "cold TTFT ms"});
  PrintRow({"no-cold baseline", Fmt(baseline.warm_ms_per_token, 3), "1.00", "-"});
  PrintRow({"sync (blocking)", Fmt(sync_run.warm_ms_per_token, 3),
            Fmt(sync_ratio, 2), Fmt(sync_run.cold_ttft_ms, 1)});
  PrintRow({"async (deferred)", Fmt(async_run.warm_ms_per_token, 3),
            Fmt(async_ratio, 2), Fmt(async_run.cold_ttft_ms, 1)});

  // --- 2. storm: distinct schemas under a memory budget ---------------------
  auto storm_tasks = datasets::GenerateSchemaTasks(storm_schemas, 2025);

  // Budget: enough for a handful of resident artifacts, far below the whole
  // storm — the registry must evict to stay within it.
  std::size_t artifact_bytes = 0;
  {
    runtime::CompileService sizing(info);
    artifact_bytes = sizing.Compile(SchemaJob(storm_tasks[0]))->MemoryBytes();
  }
  const std::size_t budget_bytes = artifact_bytes * 4;

  runtime::CompileServiceOptions storm_options;
  storm_options.num_threads = 4;
  storm_options.registry.memory_budget_bytes = budget_bytes;
  storm_options.registry.disk_dir = cache_dir;

  std::vector<double> storm_ttft_ms;
  std::vector<double> storm_wait_ms;
  runtime::CompileServiceStats storm_stats;
  runtime::GrammarRegistryStats storm_registry;
  {
    runtime::CompileService service(info, storm_options);
    std::vector<engine::ContinuousRequest> stream;
    for (int i = 0; i < storm_schemas; ++i) {
      engine::ContinuousRequest r;
      r.pending_grammar = std::make_shared<runtime::CompileTicket>(
          service.Submit(SchemaJob(storm_tasks[static_cast<std::size_t>(i)])));
      r.request.target_text =
          storm_tasks[static_cast<std::size_t>(i)].canonical_answer.Dump();
      r.request.seed = static_cast<std::uint64_t>(i) * 13 + 7;
      r.arrival_step = 0;
      stream.push_back(std::move(r));
    }
    engine::ServingEngine engine(
        BenchOptions(engine::CompileAdmission::kDeferred), llm);
    engine::ContinuousResult result = engine.RunContinuous(stream, 8);
    for (const auto& r : result.requests) {
      storm_ttft_ms.push_back(r.compile_wait_ms + r.ttft_ms);
      storm_wait_ms.push_back(r.compile_wait_ms);
    }
    storm_stats = service.Stats();
    storm_registry = service.Registry().Stats();
  }
  bool storm_within_budget = storm_registry.peak_memory_bytes <= budget_bytes;

  std::printf("\nStorm (%d distinct schemas, batch 8, budget %.2f MB):\n",
              storm_schemas, static_cast<double>(budget_bytes) / 1e6);
  std::printf("  TTFT p50 / p99            : %.1f / %.1f ms (compile wait p50 %.1f)\n",
              Percentile(storm_ttft_ms, 0.50), Percentile(storm_ttft_ms, 0.99),
              Percentile(storm_wait_ms, 0.50));
  std::printf("  registry peak / budget    : %.2f / %.2f MB (%s), evictions %lld\n",
              static_cast<double>(storm_registry.peak_memory_bytes) / 1e6,
              static_cast<double>(budget_bytes) / 1e6,
              storm_within_budget ? "within budget" : "OVER BUDGET",
              static_cast<long long>(storm_registry.evictions));
  std::printf("  builds / coalesced / hits : %lld / %lld / %lld\n",
              static_cast<long long>(storm_stats.compiled),
              static_cast<long long>(storm_stats.coalesced),
              static_cast<long long>(storm_stats.registry_hits));

  // --- 3. warm start: a new process over the same disk tier -----------------
  std::vector<double> warm_ready_ms;
  runtime::CompileServiceStats warm_stats;
  runtime::GrammarRegistryStats warm_registry;
  {
    runtime::CompileService service(info, storm_options);
    for (const auto& task : storm_tasks) {
      Timer timer;
      runtime::Artifact artifact = service.Compile(SchemaJob(task));
      warm_ready_ms.push_back(timer.ElapsedMicros() / 1e3);
      XGR_CHECK(artifact != nullptr);
    }
    warm_stats = service.Stats();
    warm_registry = service.Registry().Stats();
  }
  bool warm_skipped_all = warm_stats.compiled == 0;

  std::printf("\nWarm start (fresh service, same disk tier):\n");
  std::printf("  ready p50 / p99           : %.1f / %.1f ms\n",
              Percentile(warm_ready_ms, 0.50), Percentile(warm_ready_ms, 0.99));
  std::printf("  recompiled / disk hits    : %lld / %lld (%s)\n",
              static_cast<long long>(warm_stats.compiled),
              static_cast<long long>(warm_registry.disk_hits),
              warm_skipped_all ? "all loads, no recompilation"
                               : "UNEXPECTED RECOMPILES");

  // --- JSON -----------------------------------------------------------------
  json::Object admission;
  admission["baseline_warm_ms_per_token"] = baseline.warm_ms_per_token;
  admission["sync_warm_ms_per_token"] = sync_run.warm_ms_per_token;
  admission["async_warm_ms_per_token"] = async_run.warm_ms_per_token;
  admission["sync_vs_baseline"] = sync_ratio;
  admission["async_vs_baseline"] = async_ratio;
  admission["async_within_2x"] = async_ratio <= 2.0;
  admission["cold_ttft_ms_sync"] = sync_run.cold_ttft_ms;
  admission["cold_ttft_ms_async"] = async_run.cold_ttft_ms;
  admission["cold_compile_wait_ms_async"] = async_run.cold_compile_wait_ms;

  json::Object storm;
  storm["schemas"] = storm_schemas;
  storm["max_batch"] = 8;
  storm["memory_budget_bytes"] = static_cast<std::int64_t>(budget_bytes);
  storm["registry_peak_bytes"] =
      static_cast<std::int64_t>(storm_registry.peak_memory_bytes);
  storm["registry_resident_bytes"] =
      static_cast<std::int64_t>(storm_registry.memory_bytes);
  storm["within_budget"] = storm_within_budget;
  storm["evictions"] = storm_registry.evictions;
  storm["compiled"] = storm_stats.compiled;
  storm["disk_writes"] = storm_registry.disk_writes;
  storm["ttft_ms_p50"] = Percentile(storm_ttft_ms, 0.50);
  storm["ttft_ms_p99"] = Percentile(storm_ttft_ms, 0.99);
  storm["compile_wait_ms_p50"] = Percentile(storm_wait_ms, 0.50);
  storm["compile_wait_ms_p99"] = Percentile(storm_wait_ms, 0.99);

  json::Object warm_start;
  warm_start["compiled"] = warm_stats.compiled;
  warm_start["disk_loads"] = warm_stats.disk_loads;
  warm_start["disk_hits"] = warm_registry.disk_hits;
  warm_start["registry_hits"] = warm_stats.registry_hits;
  warm_start["skipped_recompilation"] = warm_skipped_all;
  warm_start["ready_ms_p50"] = Percentile(warm_ready_ms, 0.50);
  warm_start["ready_ms_p99"] = Percentile(warm_ready_ms, 0.99);

  json::Object doc;
  doc["benchmark"] = "compile_service";
  doc["vocab_size"] = info->VocabSize();
  doc["time_scale"] = kTimeScale;
  doc["admission"] = json::Value(std::move(admission));
  doc["storm"] = json::Value(std::move(storm));
  doc["warm_start"] = json::Value(std::move(warm_start));

  const char* json_path = std::getenv("XGR_BENCH_JSON");
  std::string path =
      json_path != nullptr ? json_path : "BENCH_compile_service.json";
  std::ofstream out(path);
  out << json::Value(std::move(doc)).Dump(2) << "\n";
  if (out) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  return 0;
}
