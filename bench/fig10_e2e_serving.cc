// Figure 10: end-to-end serving TPOT (ms/token) vs batch size on Llama-3.1-8B,
// JSON Schema and CFG (unconstrained JSON) tasks.
//
// Paper reference (H100, batch 1/16/32):
//   JSON Schema: llama.cpp 187/790/1432, vLLM+Outlines 11/93/164,
//                SGLang+XGrammar 7/10/12, XGrammar engine 6/9/12
//   CFG (JSON):  llama.cpp 185/736/1252, vLLM+Outlines 137/2311/timeout,
//                SGLang+XGrammar 7/10/13, XGrammar engine 6/9/12
// Expected shape: baselines degrade sharply with batch size (serial CPU
// grammar work multiplies), XGrammar stays at the unconstrained step time.
#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "grammar/grammar.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;

struct EngineConfig {
  std::string label;
  EngineKind kind;
  GrammarSchedule schedule;
  std::int32_t max_batch;  // skip larger batches (paper: API timeout marks)
};

double RunConfig(const EngineConfig& config, bool schema_task,
                 const json::Value& schema, const grammar::Grammar& cfg,
                 const std::string& target,
                 const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
                 const engine::MockLlm& llm, std::int32_t batch,
                 std::int32_t max_tokens) {
  DecoderFactory factory(config.kind, info);
  if (schema_task) {
    factory.PrepareSchema(schema);
  } else {
    factory.PrepareGrammar(cfg);
  }
  EngineOptions options;
  options.profile = engine::ModelProfile::Llama31_8B_H100();
  options.schedule = config.schedule;
  options.max_new_tokens = max_tokens;
  engine::ServingEngine eng(options, llm);
  std::vector<EngineRequest> requests(static_cast<std::size_t>(batch));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].decoder = factory.NewDecoder();
    requests[i].target_text = target;
    requests[i].seed = i + 1;
  }
  return eng.RunBatch(requests).TpotMs();
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 10: end-to-end TPOT (ms/token) vs batch size, Llama-3.1-8B\n"
      "paper JSON-Schema: llama.cpp 187/790/1432; vLLM+Outlines 11/93/164;\n"
      "                   SGLang+XGrammar 7/10/12; XGrammar engine 6/9/12\n"
      "paper CFG-JSON:    llama.cpp 185/736/1252; vLLM+Outlines 137/2311/x;\n"
      "                   SGLang+XGrammar 7/10/13; XGrammar engine 6/9/12");
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.05, .seed = 3});
  std::int32_t max_tokens = std::min<std::int32_t>(MaxSteps(), 16);
  const std::vector<std::int32_t> batches{1, 16, 32};

  auto schema_tasks = datasets::GenerateSchemaTasks(1, 41);
  grammar::Grammar json_cfg = grammar::BuiltinJsonGrammar();
  std::string cfg_target = datasets::GenerateJsonDocuments(1, 99, 3)[0];

  for (bool schema_task : {true, false}) {
    std::printf("\n--- %s ---\n",
                schema_task ? "JSON Schema" : "Context-free Grammar (JSON)");
    std::vector<EngineConfig> configs;
    configs.push_back({"llama.cpp", EngineKind::kLlamaCpp, GrammarSchedule::kSerial, 32});
    configs.push_back({"vLLM (w/ Outlines)",
                       schema_task ? EngineKind::kOutlines : EngineKind::kOutlinesCfg,
                       GrammarSchedule::kSerial, schema_task ? 32 : 16});
    configs.push_back(
        {"SGLang (w/ XGrammar)", EngineKind::kXGrammar, GrammarSchedule::kOverlap, 32});
    configs.push_back(
        {"XGrammar Engine", EngineKind::kXGrammar, GrammarSchedule::kOverlap, 32});

    PrintRow({"engine", "batch=1", "batch=16", "batch=32"}, 24);
    PrintRow({"(no grammar)", "", "", ""}, 24);
    {
      std::vector<std::string> row{"  unconstrained"};
      for (std::int32_t batch : batches) {
        EngineOptions options;
        options.profile = engine::ModelProfile::Llama31_8B_H100();
        options.schedule = GrammarSchedule::kNone;
        options.max_new_tokens = max_tokens;
        engine::ServingEngine eng(options, llm);
        std::vector<EngineRequest> requests(static_cast<std::size_t>(batch));
        for (std::size_t i = 0; i < requests.size(); ++i) {
          requests[i].target_text =
              schema_task ? schema_tasks[0].canonical_answer.Dump() : cfg_target;
          requests[i].seed = i + 1;
        }
        row.push_back(Fmt(eng.RunBatch(requests).TpotMs(), 1));
      }
      PrintRow(row, 24);
    }
    for (const EngineConfig& config : configs) {
      std::vector<std::string> row{config.label};
      for (std::int32_t batch : batches) {
        if (batch > config.max_batch) {
          row.push_back("timeout");  // mirrors the paper's missing bar
          continue;
        }
        double tpot = RunConfig(
            config, schema_task, schema_tasks[0].schema, json_cfg,
            schema_task ? schema_tasks[0].canonical_answer.Dump() : cfg_target,
            info, llm, batch, max_tokens);
        row.push_back(Fmt(tpot, 1));
      }
      PrintRow(row, 24);
    }
  }
  return 0;
}
