// Figure 10: end-to-end serving TPOT (ms/token) vs batch size on Llama-3.1-8B,
// JSON Schema and CFG (unconstrained JSON) tasks.
//
// Paper reference (H100, batch 1/16/32):
//   JSON Schema: llama.cpp 187/790/1432, vLLM+Outlines 11/93/164,
//                SGLang+XGrammar 7/10/12, XGrammar engine 6/9/12
//   CFG (JSON):  llama.cpp 185/736/1252, vLLM+Outlines 137/2311/timeout,
//                SGLang+XGrammar 7/10/13, XGrammar engine 6/9/12
// Expected shape: baselines degrade sharply with batch size (serial CPU
// grammar work multiplies), XGrammar stays at the unconstrained step time.
//
// Second section (committed as BENCH_e2e_serving.json): batch-scale numbers
// at batch 64/128/256 on the dense-logits decode path — per-step grammar
// overhead, overlap-hidden fraction, throughput, and steady-state
// allocations per decode step (gated at zero in Release CI).
//
// Environment knobs for the second section:
//   XGR_E2E_BATCHES     comma list of batch sizes      (default "64,128,256")
//   XGR_E2E_TIME_SCALE  simulated-GPU time scale        (default 1.0;
//                       CI smoke uses 0.05 to compress the forward pass)
//   XGR_BENCH_JSON      output path        (default ./BENCH_e2e_serving.json)
#include <fstream>

#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "grammar/grammar.h"
#include "json/json.h"
#include "support/alloc_hook.h"
#include "support/string_utils.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;

struct EngineConfig {
  std::string label;
  EngineKind kind;
  GrammarSchedule schedule;
  std::int32_t max_batch;  // skip larger batches (paper: API timeout marks)
};

double RunConfig(const EngineConfig& config, bool schema_task,
                 const json::Value& schema, const grammar::Grammar& cfg,
                 const std::string& target,
                 const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
                 const engine::MockLlm& llm, std::int32_t batch,
                 std::int32_t max_tokens) {
  DecoderFactory factory(config.kind, info);
  if (schema_task) {
    factory.PrepareSchema(schema);
  } else {
    factory.PrepareGrammar(cfg);
  }
  EngineOptions options;
  options.profile = engine::ModelProfile::Llama31_8B_H100();
  options.schedule = config.schedule;
  options.max_new_tokens = max_tokens;
  engine::ServingEngine eng(options, llm);
  std::vector<EngineRequest> requests(static_cast<std::size_t>(batch));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].decoder = factory.NewDecoder();
    requests[i].target_text = target;
    requests[i].seed = i + 1;
  }
  return eng.RunBatch(requests).TpotMs();
}

// --- Batch-scale e2e section (BENCH_e2e_serving.json) -----------------------

std::uint64_t CountAllocs() {
  return static_cast<std::uint64_t>(support::AllocHookCount());
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

std::vector<std::int32_t> E2eBatches() {
  const char* value = std::getenv("XGR_E2E_BATCHES");
  std::string spec = value != nullptr ? value : "64,128,256";
  std::vector<std::int32_t> batches;
  for (const std::string& part : SplitString(spec, ',')) {
    std::int32_t b = std::atoi(part.c_str());
    if (b > 0) batches.push_back(b);
  }
  return batches;
}

// One slot of a batch-scale workload: a prepared factory plus the document
// its decoders are driven toward.
struct Slot {
  std::shared_ptr<DecoderFactory> factory;
  std::string target;
};

// json_schema: 8 distinct schemas; cfg_python: the Python-DSL grammar over 8
// programs (mask-heavy — this is where cost-aware sharding and overlap pay);
// mixed: alternating slots, the LPT planner's target case (one expensive
// python mask next to a crowd of cheap schema masks).
std::vector<Slot> BuildSlots(
    const std::string& task,
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info) {
  std::vector<Slot> schema_slots;
  for (const auto& t : datasets::GenerateSchemaTasks(8, 41)) {
    auto factory = std::make_shared<DecoderFactory>(EngineKind::kXGrammar, info);
    factory->PrepareSchema(t.schema);
    schema_slots.push_back({std::move(factory), t.canonical_answer.Dump()});
  }
  std::vector<Slot> python_slots;
  {
    auto factory = std::make_shared<DecoderFactory>(EngineKind::kXGrammar, info);
    factory->PrepareGrammar(grammar::BuiltinPythonDslGrammar());
    for (const std::string& program : datasets::GeneratePythonPrograms(8, 777)) {
      python_slots.push_back({factory, program});
    }
  }
  if (task == "json_schema") return schema_slots;
  if (task == "cfg_python") return python_slots;
  std::vector<Slot> mixed;
  for (std::size_t i = 0; i < 8; ++i) {
    mixed.push_back(i % 2 == 0 ? schema_slots[i] : python_slots[i]);
  }
  return mixed;
}

struct E2eRow {
  double tpot_ms = 0.0;
  double tokens_per_s = 0.0;
  double mask_ms_per_step = 0.0;
  double gpu_ms_per_step = 0.0;
  double overhead_ms_per_step = 0.0;  // grammar time NOT hidden by the GPU
  double hidden_fraction = 0.0;
  double allocs_per_step = -1.0;
  std::int64_t decode_steps = 0;
  std::int64_t total_tokens = 0;
};

E2eRow RunE2e(const std::vector<Slot>& slots, GrammarSchedule schedule,
              bool constrained, std::int32_t batch, double time_scale,
              const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
              const engine::MockLlm& llm, std::int32_t max_tokens) {
  EngineOptions options;
  options.profile = engine::ModelProfile::Llama31_8B_H100();
  options.schedule = schedule;
  options.max_new_tokens = max_tokens;
  options.time_scale = time_scale;
  options.dense_logits = true;  // full logits row + fused SIMD kernel
  options.alloc_count_fn = &CountAllocs;
  engine::ServingEngine eng(options, llm);
  std::vector<EngineRequest> requests(static_cast<std::size_t>(batch));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Slot& slot = slots[i % slots.size()];
    if (constrained) requests[i].decoder = slot.factory->NewDecoder();
    requests[i].target_text = slot.target;
    requests[i].seed = i + 1;
  }
  // Warm-up laps bring every lazy structure (adaptive mask caches, matcher
  // stacks, planner buffers) to steady state; the measured lap is the
  // serving regime the JSON gates describe.
  engine::BatchResult result;
  for (std::int32_t lap = 0; lap <= WarmupLaps(); ++lap) {
    result = eng.RunBatch(requests);
  }
  E2eRow row;
  row.tpot_ms = result.TpotMs();
  row.decode_steps = result.decode_steps;
  row.total_tokens = result.total_tokens;
  if (result.decode_wall_ms > 0.0) {
    row.tokens_per_s = static_cast<double>(result.total_tokens) /
                       (result.decode_wall_ms / 1000.0);
  }
  if (result.decode_steps > 0) {
    double steps = static_cast<double>(result.decode_steps);
    row.mask_ms_per_step = result.mask_wall_ms / steps;
    row.gpu_ms_per_step = result.gpu_wall_ms / steps;
    row.overhead_ms_per_step = result.exposed_overhead_ms / steps;
  }
  row.hidden_fraction = result.OverlapHiddenFraction();
  if (result.steady_steps > 0) {
    row.allocs_per_step = static_cast<double>(result.steady_allocs) /
                          static_cast<double>(result.steady_steps);
  }
  return row;
}

json::Object RowJson(const E2eRow& row) {
  json::Object obj;
  obj["tpot_ms"] = row.tpot_ms;
  obj["tokens_per_s"] = row.tokens_per_s;
  obj["mask_ms_per_step"] = row.mask_ms_per_step;
  obj["gpu_ms_per_step"] = row.gpu_ms_per_step;
  obj["grammar_overhead_ms_per_step"] = row.overhead_ms_per_step;
  obj["overlap_hidden_fraction"] = row.hidden_fraction;
  obj["allocs_per_step"] = row.allocs_per_step;
  obj["decode_steps"] = row.decode_steps;
  obj["total_tokens"] = row.total_tokens;
  return obj;
}

int RunE2eSection() {
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.05, .seed = 3});
  const double time_scale = EnvDouble("XGR_E2E_TIME_SCALE", 1.0);
  const std::vector<std::int32_t> batches = E2eBatches();
  std::int32_t max_tokens = std::min<std::int32_t>(MaxSteps(), 16);

  std::printf(
      "\n--- Batch-scale e2e (dense logits + fused mask/softmax/sample) ---\n");
  std::printf("time_scale=%.3f  batches=", time_scale);
  for (std::int32_t b : batches) std::printf("%d ", b);
  std::printf("\n");
  PrintRow({"task", "batch", "sched", "tpot ms", "tok/s", "mask ms", "exposed ms",
            "hidden", "allocs/step"},
           12);

  json::Array results;
  for (const std::string& task : {std::string("json_schema"),
                                  std::string("cfg_python"),
                                  std::string("mixed")}) {
    std::vector<Slot> slots = BuildSlots(task, info);
    for (std::int32_t batch : batches) {
      json::Object entry;
      entry["task"] = task;
      entry["batch"] = batch;
      json::Object configs;
      E2eRow unconstrained = RunE2e(slots, GrammarSchedule::kNone, false, batch,
                                    time_scale, info, llm, max_tokens);
      E2eRow serial = RunE2e(slots, GrammarSchedule::kSerial, true, batch,
                             time_scale, info, llm, max_tokens);
      E2eRow overlap = RunE2e(slots, GrammarSchedule::kOverlap, true, batch,
                              time_scale, info, llm, max_tokens);
      for (const auto& [label, row] :
           {std::pair<const char*, const E2eRow&>{"unconstrained", unconstrained},
            {"serial", serial},
            {"overlap", overlap}}) {
        configs[label] = json::Value(RowJson(row));
        PrintRow({task, std::to_string(batch), label, Fmt(row.tpot_ms, 2),
                  Fmt(row.tokens_per_s, 0), Fmt(row.mask_ms_per_step, 3),
                  Fmt(row.overhead_ms_per_step, 3), Fmt(row.hidden_fraction, 3),
                  Fmt(row.allocs_per_step, 2)},
                 12);
      }
      entry["configs"] = json::Value(std::move(configs));
      results.push_back(json::Value(std::move(entry)));
    }
  }

  json::Object doc;
  doc["bench"] = "fig10_e2e_serving";
  doc["vocab"] = VocabSize();
  doc["time_scale"] = time_scale;
  doc["max_new_tokens"] = max_tokens;
  doc["warmup_laps"] = WarmupLaps();
  doc["dense_logits"] = true;
  doc["results"] = json::Value(std::move(results));
  const char* json_path = std::getenv("XGR_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_e2e_serving.json";
  std::ofstream out(path);
  out << json::Value(std::move(doc)).Dump(2) << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 10: end-to-end TPOT (ms/token) vs batch size, Llama-3.1-8B\n"
      "paper JSON-Schema: llama.cpp 187/790/1432; vLLM+Outlines 11/93/164;\n"
      "                   SGLang+XGrammar 7/10/12; XGrammar engine 6/9/12\n"
      "paper CFG-JSON:    llama.cpp 185/736/1252; vLLM+Outlines 137/2311/x;\n"
      "                   SGLang+XGrammar 7/10/13; XGrammar engine 6/9/12");
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.05, .seed = 3});
  std::int32_t max_tokens = std::min<std::int32_t>(MaxSteps(), 16);
  const std::vector<std::int32_t> batches{1, 16, 32};

  auto schema_tasks = datasets::GenerateSchemaTasks(1, 41);
  grammar::Grammar json_cfg = grammar::BuiltinJsonGrammar();
  std::string cfg_target = datasets::GenerateJsonDocuments(1, 99, 3)[0];

  for (bool schema_task : {true, false}) {
    std::printf("\n--- %s ---\n",
                schema_task ? "JSON Schema" : "Context-free Grammar (JSON)");
    std::vector<EngineConfig> configs;
    configs.push_back({"llama.cpp", EngineKind::kLlamaCpp, GrammarSchedule::kSerial, 32});
    configs.push_back({"vLLM (w/ Outlines)",
                       schema_task ? EngineKind::kOutlines : EngineKind::kOutlinesCfg,
                       GrammarSchedule::kSerial, schema_task ? 32 : 16});
    configs.push_back(
        {"SGLang (w/ XGrammar)", EngineKind::kXGrammar, GrammarSchedule::kOverlap, 32});
    configs.push_back(
        {"XGrammar Engine", EngineKind::kXGrammar, GrammarSchedule::kOverlap, 32});

    PrintRow({"engine", "batch=1", "batch=16", "batch=32"}, 24);
    PrintRow({"(no grammar)", "", "", ""}, 24);
    {
      std::vector<std::string> row{"  unconstrained"};
      for (std::int32_t batch : batches) {
        EngineOptions options;
        options.profile = engine::ModelProfile::Llama31_8B_H100();
        options.schedule = GrammarSchedule::kNone;
        options.max_new_tokens = max_tokens;
        engine::ServingEngine eng(options, llm);
        std::vector<EngineRequest> requests(static_cast<std::size_t>(batch));
        for (std::size_t i = 0; i < requests.size(); ++i) {
          requests[i].target_text =
              schema_task ? schema_tasks[0].canonical_answer.Dump() : cfg_target;
          requests[i].seed = i + 1;
        }
        row.push_back(Fmt(eng.RunBatch(requests).TpotMs(), 1));
      }
      PrintRow(row, 24);
    }
    for (const EngineConfig& config : configs) {
      std::vector<std::string> row{config.label};
      for (std::int32_t batch : batches) {
        if (batch > config.max_batch) {
          row.push_back("timeout");  // mirrors the paper's missing bar
          continue;
        }
        double tpot = RunConfig(
            config, schema_task, schema_tasks[0].schema, json_cfg,
            schema_task ? schema_tasks[0].canonical_answer.Dump() : cfg_target,
            info, llm, batch, max_tokens);
        row.push_back(Fmt(tpot, 1));
      }
      PrintRow(row, 24);
    }
  }
  return RunE2eSection();
}
