// In-text statistics of §3.1–§3.3, measured on the unconstrained-JSON
// grammar:
//   * context-dependent tokens are a small minority (paper: 1134 of 128k,
//     <1%, at the worst node) and context expansion removes ~90% of them
//     (1134 -> 120);
//   * adaptive storage shrinks the cache versus per-node bitsets
//     (paper: 160 MB -> 0.46 MB, ~0.2%);
//   * sorted-order prefix rollback leaves only ~30% of vocabulary bytes to
//     re-check during preprocessing.
#include <thread>

#include "bench/bench_common.h"
#include "cache/adaptive_cache.h"
#include "cache/grammar_compiler.h"
#include "grammar/grammar.h"

namespace {
using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
}  // namespace

int main() {
  PrintHeader(
      "Cache statistics (paper SS3.1-3.3): ctx-dependent tokens, context\n"
      "expansion effect, adaptive-storage memory, prefix-rollback savings");
  auto info = GetTokenizer();
  grammar::Grammar json_cfg = grammar::BuiltinJsonGrammar();

  auto build = [&](bool context_expansion, bool adaptive_storage) {
    pda::CompileOptions options;
    options.context_expansion = context_expansion;
    auto pda = pda::CompiledGrammar::Compile(json_cfg, options);
    cache::AdaptiveCacheOptions cache_options;
    cache_options.adaptive_storage = adaptive_storage;
    return cache::AdaptiveTokenMaskCache::Build(pda, info, cache_options);
  };

  auto with_expansion = build(true, true);
  auto without_expansion = build(false, true);

  const auto& stats_on = with_expansion->Stats();
  const auto& stats_off = without_expansion->Stats();

  std::printf("\nContext-dependent tokens (max over automaton nodes):\n");
  std::printf("  without context expansion : %lld of %d (paper: 1134 of 128k)\n",
              static_cast<long long>(stats_off.max_ctx_dependent_per_node),
              info->VocabSize());
  std::printf("  with    context expansion : %lld (paper: 120, ~90%% reduction)\n",
              static_cast<long long>(stats_on.max_ctx_dependent_per_node));
  if (stats_off.max_ctx_dependent_per_node > 0) {
    std::printf("  measured reduction        : %.1f%%\n",
                100.0 * (1.0 - static_cast<double>(stats_on.max_ctx_dependent_per_node) /
                                   static_cast<double>(stats_off.max_ctx_dependent_per_node)));
  }

  std::printf("\nAdaptive storage memory (paper: 160 MB -> 0.46 MB):\n");
  std::printf("  all-bitset equivalent     : %.2f MB\n",
              static_cast<double>(stats_on.full_bitset_bytes) / 1e6);
  std::printf("  adaptive storage          : %.3f MB (%.2f%% of bitset)\n",
              static_cast<double>(stats_on.memory_bytes) / 1e6,
              100.0 * static_cast<double>(stats_on.memory_bytes) /
                  static_cast<double>(stats_on.full_bitset_bytes));
  std::printf("  storage kinds (accept-heavy/reject-heavy/bitset): %lld/%lld/%lld\n",
              static_cast<long long>(stats_on.storage_kind_counts[0]),
              static_cast<long long>(stats_on.storage_kind_counts[1]),
              static_cast<long long>(stats_on.storage_kind_counts[2]));

  std::printf("\nTrie-pruned vocabulary walk during preprocessing (paper SS3.3\n"
              "quotes ~30%% of bytes for the flat sorted-prefix walk; the DFS\n"
              "attempts each unique (prefix, byte) once):\n");
  std::printf("  bytes checked / total     : %lld / %lld = %.1f%%\n",
              static_cast<long long>(stats_on.bytes_checked),
              static_cast<long long>(stats_on.bytes_total),
              100.0 * static_cast<double>(stats_on.bytes_checked) /
                  static_cast<double>(stats_on.bytes_total));
  std::printf("  subtree cut-offs          : %lld (tokens pruned: %lld of %lld"
              " = %.1f%%)\n",
              static_cast<long long>(stats_on.subtree_cutoffs),
              static_cast<long long>(stats_on.tokens_pruned),
              static_cast<long long>(stats_on.tokens_classified),
              100.0 * static_cast<double>(stats_on.tokens_pruned) /
                  static_cast<double>(stats_on.tokens_classified));

  std::printf("\nClassification totals (with expansion): accepted=%lld rejected=%lld"
              " ctx-dependent=%lld, build=%.3fs, nodes=%lld\n",
              static_cast<long long>(stats_on.ci_accepted),
              static_cast<long long>(stats_on.ci_rejected),
              static_cast<long long>(stats_on.context_dependent),
              stats_on.build_seconds, static_cast<long long>(stats_on.nodes));

  // GrammarCompiler stats honesty: callers that block behind an in-flight
  // build are coalesced waits, not hits — a serving dashboard reading only
  // "hits" would mistake convoy stalls for cache locality. Reproduce both
  // regimes: a 6-thread same-key storm (one miss, the rest mostly waits),
  // then sequential re-requests (true hits).
  std::printf("\nGrammarCompiler front-door stats (hit vs coalesced-wait split):\n");
  cache::GrammarCompiler compiler(info);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&] { compiler.CompileBuiltinJson(); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int i = 0; i < 4; ++i) compiler.CompileBuiltinJson();
  cache::GrammarCompilerStats cstats = compiler.Stats();
  std::printf("  storm of 6 same-key threads + 4 sequential re-requests:\n");
  std::printf("  misses                    : %lld (one real build)\n",
              static_cast<long long>(cstats.misses));
  std::printf("  coalesced waits           : %lld (blocked behind the build)\n",
              static_cast<long long>(cstats.coalesced_waits));
  std::printf("  hits                      : %lld (artifact already built)\n",
              static_cast<long long>(cstats.hits));
  std::printf("  compile seconds           : %.3f\n", cstats.compile_seconds);
  return 0;
}
