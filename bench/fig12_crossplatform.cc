// Figure 12 (Appendix C): on-device deployment profiles — structured
// generation with XGrammar vs unstructured, TTFT and TPOT.
//
// Paper reference: M3 Max (Llama-3.1-8B-q4): TTFT 1531.9 vs 1365.1 ms,
//   TPOT 31.9 vs 29.7 ms. iPhone 14 Pro Max (Qwen-2.5-0.5B-q4): TTFT 1179.1
//   vs 955.5 ms, TPOT 48.1 vs 47.3 ms.
// Expected shape: structured generation costs at most a few percent on both
// TTFT (grammar preprocessing overlaps prefill) and TPOT (mask generation
// overlaps the forward pass), even on weak client hardware.
//
// Cross-platform artifact deployment (the v3 flat format's home turf): the
// grammar is compiled ONCE (a build server), shipped as a flat "XGR3"
// artifact, and each device mmaps it — on-device ready time drops from a
// full compile to validation, which the "structured, shipped artifact" rows
// measure. A device with a different tokenizer must refuse the artifact at
// load (vocabulary pin), exercised at the end. Emits
// BENCH_fig12_crossplatform.json.
#include <fstream>
#include <memory>
#include <string>

#include "artifact/artifact_reader.h"
#include "artifact/artifact_writer.h"
#include "baselines/factory.h"
#include "baselines/xgrammar_decoder.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "json/json.h"
#include "support/status.h"
#include "support/timer.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;

}  // namespace

int main() {
  PrintHeader(
      "Figure 12: on-device structured vs unstructured generation\n"
      "paper: M3 Max TTFT 1531.9/1365.1, TPOT 31.9/29.7;\n"
      "       iPhone TTFT 1179.1/955.5, TPOT 48.1/47.3");
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.0, .seed = 9});
  auto tasks = datasets::GenerateSchemaTasks(1, 19);
  std::int32_t max_tokens = std::min<std::int32_t>(MaxSteps(), 24);

  // "Build server": compile once, publish the flat artifact the devices pull.
  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(tasks[0].schema);
  const double compile_seconds = factory.PreprocessSeconds();
  const std::string artifact_path = "fig12_schema.xgr3";
  artifact::WriteFlatArtifactFile(artifact_path, *factory.MaskCache());

  enum class Mode { kUnstructured, kStructuredCompile, kStructuredArtifact };
  json::Array rows;
  double artifact_ready_ms = 0.0;
  PrintRow({"device", "mode", "TTFT (ms)", "TPOT (ms)"}, 34);
  for (const engine::ModelProfile& profile :
       {engine::ModelProfile::Llama31_8B_M3Max(),
        engine::ModelProfile::Qwen25_05B_iPhone()}) {
    for (Mode mode : {Mode::kStructuredCompile, Mode::kStructuredArtifact,
                      Mode::kUnstructured}) {
      EngineOptions options;
      options.profile = profile;
      options.schedule = mode == Mode::kUnstructured ? GrammarSchedule::kNone
                                                     : GrammarSchedule::kOverlap;
      options.max_new_tokens = max_tokens;
      engine::ServingEngine eng(options, llm);
      EngineRequest request;
      const char* mode_name = "unstructured";
      if (mode == Mode::kStructuredCompile) {
        mode_name = "structured, on-device compile";
        request.decoder = factory.NewDecoder();
      } else if (mode == Mode::kStructuredArtifact) {
        mode_name = "structured, shipped artifact";
        // The on-device ready cost is the mmap load (validation + fix-up),
        // charged to TTFT exactly like a fresh compile would be.
        Timer timer;
        auto mapped = artifact::LoadFlatArtifactFile(artifact_path, info);
        artifact_ready_ms = timer.ElapsedMillis();
        request.decoder = std::make_shared<baselines::XGrammarDecoder>(
            mapped, artifact_ready_ms / 1e3);
      }
      request.target_text = tasks[0].canonical_answer.Dump();
      request.prompt_tokens = 139;
      auto result = eng.RunBatch({request});
      PrintRow({profile.name, mode_name, Fmt(result.ttft_ms, 1),
                Fmt(result.TpotMs(), 1)},
               34);
      json::Object row;
      row["device"] = profile.name;
      row["mode"] = mode_name;
      row["ttft_ms"] = result.ttft_ms;
      row["tpot_ms"] = result.TpotMs();
      rows.push_back(json::Value(std::move(row)));
    }
  }
  std::printf("\nartifact deployment: compile-once %.1f ms, on-device mmap "
              "ready %.3f ms\n", compile_seconds * 1e3, artifact_ready_ms);

  // Vocabulary pin: a device whose tokenizer differs from the artifact's
  // must reject it at load, not mask incorrectly at runtime.
  bool mismatch_rejected = false;
  try {
    artifact::LoadFlatArtifactFile(artifact_path,
                                   GetTokenizer(VocabSize() + 517));
  } catch (const StatusError& e) {
    mismatch_rejected = e.code() == StatusCode::kCorruptArtifact;
  }
  std::printf("tokenizer-mismatch load rejected: %s\n",
              mismatch_rejected ? "yes" : "NO");
  std::remove(artifact_path.c_str());

  json::Object artifact_obj;
  artifact_obj["compile_once_ms"] = compile_seconds * 1e3;
  artifact_obj["mmap_ready_ms"] = artifact_ready_ms;
  artifact_obj["tokenizer_mismatch_rejected"] = mismatch_rejected;

  json::Object doc;
  doc["benchmark"] = "fig12_crossplatform";
  doc["vocab_size"] = info->VocabSize();
  doc["rows"] = json::Value(std::move(rows));
  doc["artifact_deployment"] = json::Value(std::move(artifact_obj));

  const char* json_path = std::getenv("XGR_BENCH_JSON");
  std::string path =
      json_path != nullptr ? json_path : "BENCH_fig12_crossplatform.json";
  std::ofstream out(path);
  out << json::Value(std::move(doc)).Dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());
  return mismatch_rejected ? 0 : 1;
}
