// Figure 12 (Appendix C): on-device deployment profiles — structured
// generation with XGrammar vs unstructured, TTFT and TPOT.
//
// Paper reference: M3 Max (Llama-3.1-8B-q4): TTFT 1531.9 vs 1365.1 ms,
//   TPOT 31.9 vs 29.7 ms. iPhone 14 Pro Max (Qwen-2.5-0.5B-q4): TTFT 1179.1
//   vs 955.5 ms, TPOT 48.1 vs 47.3 ms.
// Expected shape: structured generation costs at most a few percent on both
// TTFT (grammar preprocessing overlaps prefill) and TPOT (mask generation
// overlaps the forward pass), even on weak client hardware.
#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;

}  // namespace

int main() {
  PrintHeader(
      "Figure 12: on-device structured vs unstructured generation\n"
      "paper: M3 Max TTFT 1531.9/1365.1, TPOT 31.9/29.7;\n"
      "       iPhone TTFT 1179.1/955.5, TPOT 48.1/47.3");
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.0, .seed = 9});
  auto tasks = datasets::GenerateSchemaTasks(1, 19);
  std::int32_t max_tokens = std::min<std::int32_t>(MaxSteps(), 24);

  PrintRow({"device", "mode", "TTFT (ms)", "TPOT (ms)"}, 40);
  for (const engine::ModelProfile& profile :
       {engine::ModelProfile::Llama31_8B_M3Max(),
        engine::ModelProfile::Qwen25_05B_iPhone()}) {
    for (bool structured : {true, false}) {
      EngineOptions options;
      options.profile = profile;
      options.schedule =
          structured ? GrammarSchedule::kOverlap : GrammarSchedule::kNone;
      options.max_new_tokens = max_tokens;
      engine::ServingEngine eng(options, llm);
      EngineRequest request;
      if (structured) {
        DecoderFactory factory(EngineKind::kXGrammar, info);
        factory.PrepareSchema(tasks[0].schema);
        request.decoder = factory.NewDecoder();
      }
      request.target_text = tasks[0].canonical_answer.Dump();
      request.prompt_tokens = 139;
      auto result = eng.RunBatch({request});
      PrintRow({profile.name, structured ? "structured w/ XGrammar" : "unstructured",
                Fmt(result.ttft_ms, 1), Fmt(result.TpotMs(), 1)},
               40);
    }
  }
  return 0;
}
