// Figure 9: per-token mask generation latency (µs/token) across four tasks
// (JSON Schema, CFG JSON, CFG XML, CFG Python-DSL) and four engines.
//
// Paper reference values (Llama-3.1-8B vocab, Ryzen 9 7950X):
//   JSON Schema : XGrammar 36, Outlines 125, llama.cpp 7069, lmfe 6147
//   CFG JSON    : XGrammar 36, Outlines-CFG 4711, llama.cpp 9353, lmfe n/a
//   CFG XML     : XGrammar 52, Outlines-CFG 382126, llama.cpp 18231, lmfe n/a
//   CFG Python  : XGrammar 191, Outlines-CFG 427285, llama.cpp 42577, lmfe n/a
// Expected shape: XGrammar lowest by 1-2+ orders of magnitude; regex engines
// fast only on JSON Schema; the CFG columns blow up for all baselines.
#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"

namespace {

using namespace xgr;           // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;

struct TaskSpec {
  std::string name;
  bool schema_task;                    // true: JSON-Schema; false: raw grammar
  json::Value schema;                  // schema_task only
  grammar::Grammar cfg;                // !schema_task only
  std::vector<std::string> documents;  // drive path
};

double RunEngine(EngineKind kind, const TaskSpec& task,
                 const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
                 std::int32_t max_steps) {
  DecoderFactory factory(kind, info);
  if (task.schema_task) {
    factory.PrepareSchema(task.schema);
  } else {
    factory.PrepareGrammar(task.cfg);
  }
  auto decoder = factory.NewDecoder();
  return MeasureMaskGenUs(decoder.get(), info, task.documents, max_steps);
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 9: per-token mask generation latency (us/token)\n"
      "paper: JSON-Schema 36/125/7069/6147; CFG-JSON 36/4711/9353/-;\n"
      "       CFG-XML 52/382126/18231/-; CFG-Python 191/427285/42577/-");
  auto info = GetTokenizer();
  std::int32_t steps = MaxSteps();

  std::vector<TaskSpec> tasks;
  {
    TaskSpec t;
    t.name = "JSON Schema";
    t.schema_task = true;
    auto schema_tasks = datasets::GenerateSchemaTasks(1, 97);
    t.schema = schema_tasks[0].schema;
    t.documents = {schema_tasks[0].canonical_answer.Dump()};
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "CFG (Unconstrained JSON)";
    t.schema_task = false;
    t.cfg = grammar::BuiltinJsonGrammar();
    t.documents = datasets::GenerateJsonDocuments(4, 1234);
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "CFG (XML)";
    t.schema_task = false;
    t.cfg = grammar::BuiltinXmlGrammar();
    t.documents = datasets::GenerateXmlDocuments(4, 555);
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "CFG (Python DSL)";
    t.schema_task = false;
    t.cfg = grammar::BuiltinPythonDslGrammar();
    t.documents = datasets::GeneratePythonPrograms(4, 777);
    tasks.push_back(std::move(t));
  }

  PrintRow({"task", "XGrammar", "Outlines", "llama.cpp", "lm-format-enf"}, 26);
  for (const TaskSpec& task : tasks) {
    std::vector<std::string> row{task.name};
    // XGrammar.
    row.push_back(Fmt(RunEngine(EngineKind::kXGrammar, task, info, steps), 1));
    // Outlines: regex path for schemas, CFG scan otherwise. The CFG scan is
    // extremely slow; cap its measured steps.
    if (task.schema_task) {
      row.push_back(Fmt(RunEngine(EngineKind::kOutlines, task, info, steps), 1));
    } else {
      row.push_back(
          Fmt(RunEngine(EngineKind::kOutlinesCfg, task, info, std::min(steps, 8)), 1));
    }
    // llama.cpp-grammar: full-vocab trie scan; cap steps.
    row.push_back(
        Fmt(RunEngine(EngineKind::kLlamaCpp, task, info, std::min(steps, 12)), 1));
    // lm-format-enforcer: regex only.
    if (task.schema_task) {
      row.push_back(
          Fmt(RunEngine(EngineKind::kLmFormatEnforcer, task, info, std::min(steps, 12)), 1));
    } else {
      row.push_back("n/a (no CFG)");
    }
    PrintRow(row, 26);
  }
  return 0;
}
