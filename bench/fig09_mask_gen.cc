// Figure 9: per-token mask generation latency (µs/token) across four tasks
// (JSON Schema, CFG JSON, CFG XML, CFG Python-DSL) and four engines.
//
// Paper reference values (Llama-3.1-8B vocab, Ryzen 9 7950X):
//   JSON Schema : XGrammar 36, Outlines 125, llama.cpp 7069, lmfe 6147
//   CFG JSON    : XGrammar 36, Outlines-CFG 4711, llama.cpp 9353, lmfe n/a
//   CFG XML     : XGrammar 52, Outlines-CFG 382126, llama.cpp 18231, lmfe n/a
//   CFG Python  : XGrammar 191, Outlines-CFG 427285, llama.cpp 42577, lmfe n/a
// Expected shape: XGrammar lowest by 1-2+ orders of magnitude; regex engines
// fast only on JSON Schema; the CFG columns blow up for all baselines.
#include <fstream>

#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "json/json.h"
#include "support/alloc_hook.h"

namespace {

using namespace xgr;           // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;

struct TaskSpec {
  std::string name;
  bool schema_task;                    // true: JSON-Schema; false: raw grammar
  json::Value schema;                  // schema_task only
  grammar::Grammar cfg;                // !schema_task only
  std::vector<std::string> documents;  // drive path
};

MaskGenMeasurement RunEngine(EngineKind kind, const TaskSpec& task,
                             const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
                             std::int32_t max_steps) {
  DecoderFactory factory(kind, info);
  if (task.schema_task) {
    factory.PrepareSchema(task.schema);
  } else {
    factory.PrepareGrammar(task.cfg);
  }
  auto decoder = factory.NewDecoder();
  if (kind == EngineKind::kXGrammar) {
    // Warm-up laps (XGR_BENCH_WARMUP, default 1) over the same documents:
    // the paper's regime is long steady-state generations, and XGrammar's
    // decode hot path is allocation-free only once its workspace buffers
    // have grown, the stack pool has interned the walk's frames, and the
    // closure/ctx memo tables are populated. Each lap replays the exact
    // state sequence, so the measured lap reports steady-state latency and
    // allocation counts; XGR_BENCH_WARMUP=0 measures the cold path instead.
    // The baselines' costs are structural full-vocab scans, orders of
    // magnitude above any warm-up effect; they are measured as-is.
    for (std::int32_t lap = 0; lap < WarmupLaps(); ++lap) {
      MeasureMaskGen(decoder.get(), info, task.documents, max_steps);
    }
  }
  return MeasureMaskGen(decoder.get(), info, task.documents, max_steps);
}

json::Value MeasurementJson(const MaskGenMeasurement& m) {
  json::Object entry;
  entry["us_per_token"] = m.mean_us;
  entry["steps"] = m.steps;
  entry["allocs_per_token"] = m.allocs_per_token;
  // Ctx-checking attribution (per token, measured lap); engines without
  // cache::MaskGenStats (the baselines) omit the fields.
  if (m.ctx_tokens_checked >= 0) {
    entry["ctx_tokens_checked"] = m.ctx_tokens_checked;
    entry["ctx_bytes_checked"] = m.ctx_bytes_checked;
    entry["ctx_tokens_pruned"] = m.ctx_tokens_pruned;
  }
  return json::Value(std::move(entry));
}

}  // namespace

int main() {
  // Counts heap allocations inside FillNextTokenBitmask (alloc_hook.h is
  // included by this TU, replacing operator new for the whole binary).
  AllocCountFn() = &xgr::support::AllocHookCount;
  PrintHeader(
      "Figure 9: per-token mask generation latency (us/token)\n"
      "paper: JSON-Schema 36/125/7069/6147; CFG-JSON 36/4711/9353/-;\n"
      "       CFG-XML 52/382126/18231/-; CFG-Python 191/427285/42577/-");
  auto info = GetTokenizer();
  std::int32_t steps = MaxSteps();

  std::vector<TaskSpec> tasks;
  {
    TaskSpec t;
    t.name = "JSON Schema";
    t.schema_task = true;
    auto schema_tasks = datasets::GenerateSchemaTasks(1, 97);
    t.schema = schema_tasks[0].schema;
    t.documents = {schema_tasks[0].canonical_answer.Dump()};
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "CFG (Unconstrained JSON)";
    t.schema_task = false;
    t.cfg = grammar::BuiltinJsonGrammar();
    t.documents = datasets::GenerateJsonDocuments(4, 1234);
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "CFG (XML)";
    t.schema_task = false;
    t.cfg = grammar::BuiltinXmlGrammar();
    t.documents = datasets::GenerateXmlDocuments(4, 555);
    tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "CFG (Python DSL)";
    t.schema_task = false;
    t.cfg = grammar::BuiltinPythonDslGrammar();
    t.documents = datasets::GeneratePythonPrograms(4, 777);
    tasks.push_back(std::move(t));
  }

  PrintRow({"task", "XGrammar", "Outlines", "llama.cpp", "lm-format-enf"}, 26);
  json::Array task_results;
  for (const TaskSpec& task : tasks) {
    std::vector<std::string> row{task.name};
    json::Object engines;
    // XGrammar.
    MaskGenMeasurement xgrammar = RunEngine(EngineKind::kXGrammar, task, info, steps);
    row.push_back(Fmt(xgrammar.mean_us, 1));
    engines["XGrammar"] = MeasurementJson(xgrammar);
    // Outlines: regex path for schemas, CFG scan otherwise. The CFG scan is
    // extremely slow; cap its measured steps.
    if (task.schema_task) {
      MaskGenMeasurement outlines = RunEngine(EngineKind::kOutlines, task, info, steps);
      row.push_back(Fmt(outlines.mean_us, 1));
      engines["Outlines"] = MeasurementJson(outlines);
    } else {
      MaskGenMeasurement outlines =
          RunEngine(EngineKind::kOutlinesCfg, task, info, std::min(steps, 8));
      row.push_back(Fmt(outlines.mean_us, 1));
      engines["Outlines-CFG"] = MeasurementJson(outlines);
    }
    // llama.cpp-grammar: full-vocab trie scan; cap steps.
    MaskGenMeasurement llamacpp =
        RunEngine(EngineKind::kLlamaCpp, task, info, std::min(steps, 12));
    row.push_back(Fmt(llamacpp.mean_us, 1));
    engines["llama.cpp"] = MeasurementJson(llamacpp);
    // lm-format-enforcer: regex only.
    if (task.schema_task) {
      MaskGenMeasurement lmfe =
          RunEngine(EngineKind::kLmFormatEnforcer, task, info, std::min(steps, 12));
      row.push_back(Fmt(lmfe.mean_us, 1));
      engines["lm-format-enforcer"] = MeasurementJson(lmfe);
    } else {
      row.push_back("n/a (no CFG)");
    }
    PrintRow(row, 26);
    json::Object task_json;
    task_json["task"] = task.name;
    task_json["engines"] = json::Value(std::move(engines));
    task_results.push_back(json::Value(std::move(task_json)));
  }

  // Machine-readable results: µs/token and allocation counters per task and
  // engine. Path override: XGR_BENCH_JSON (default ./BENCH_mask_gen.json).
  json::Object doc;
  doc["bench"] = "fig09_mask_gen";
  doc["vocab"] = VocabSize();
  doc["max_steps"] = steps;
  doc["warmup_laps"] = WarmupLaps();
  doc["results"] = json::Value(std::move(task_results));
  const char* json_path = std::getenv("XGR_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_mask_gen.json";
  std::ofstream out(path);
  out << json::Value(std::move(doc)).Dump(2) << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
