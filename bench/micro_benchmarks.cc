// Google-benchmark microbenchmarks for the engine's hot primitives:
// persistent-stack interning and closure, byte stepping, mask generation
// (cached vs brute force), Algorithm-1 mask merging, and bitset operations.
#include <benchmark/benchmark.h>

#include "baselines/xgrammar_decoder.h"
#include "cache/mask_generator.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/dynamic_bitset.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"

namespace {

using namespace xgr;  // NOLINT

std::shared_ptr<const tokenizer::TokenizerInfo> BenchTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 2024}));
  return info;
}

std::shared_ptr<const pda::CompiledGrammar> BenchPda() {
  static auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  return pda;
}

std::shared_ptr<const cache::AdaptiveTokenMaskCache> BenchCache() {
  static auto cache = cache::AdaptiveTokenMaskCache::Build(BenchPda(), BenchTokenizer());
  return cache;
}

const std::string& BenchDocument() {
  static std::string doc = datasets::GenerateJsonDocuments(1, 5, 3)[0];
  return doc;
}

void BM_PersistentStackIntern(benchmark::State& state) {
  matcher::PersistentStackPool pool;
  std::int32_t parent = matcher::PersistentStackPool::kNoParent;
  std::int64_t i = 0;
  for (auto _ : state) {
    std::int32_t id = pool.Intern(parent, static_cast<std::int32_t>(i % 64));
    benchmark::DoNotOptimize(id);
    if (++i % 64 == 0) parent = matcher::PersistentStackPool::kNoParent;
    if (i % 8 == 0) parent = id;
  }
}
BENCHMARK(BM_PersistentStackIntern);

void BM_MatcherAcceptByte(benchmark::State& state) {
  auto pda = BenchPda();
  const std::string& doc = BenchDocument();
  for (auto _ : state) {
    matcher::GrammarMatcher matcher(pda);
    for (char c : doc) {
      bool ok = matcher.AcceptByte(static_cast<std::uint8_t>(c));
      benchmark::DoNotOptimize(ok);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_MatcherAcceptByte);

void BM_MatcherRollback(benchmark::State& state) {
  auto pda = BenchPda();
  const std::string& doc = BenchDocument();
  matcher::GrammarMatcher matcher(pda);
  for (char c : doc) matcher.AcceptByte(static_cast<std::uint8_t>(c));
  std::int32_t depth = matcher.NumConsumedBytes();
  for (auto _ : state) {
    matcher.RollbackToDepth(depth - 4);
    for (std::int32_t i = depth - 4; i < depth; ++i) {
      matcher.AcceptByte(static_cast<std::uint8_t>(doc[static_cast<std::size_t>(i)]));
    }
  }
}
BENCHMARK(BM_MatcherRollback);

void BM_MatcherFork(benchmark::State& state) {
  // §3.3 branch cost: forking mid-document vs. rebuilding a matcher and
  // replaying the prefix (BM_MatcherForkVsReplay). The gap is what makes
  // per-branch grammar state viable for tree decoding.
  auto pda = BenchPda();
  const std::string& doc = BenchDocument();
  matcher::GrammarMatcher matcher(pda);
  for (std::size_t i = 0; i < doc.size() / 2; ++i) {
    matcher.AcceptByte(static_cast<std::uint8_t>(doc[i]));
  }
  for (auto _ : state) {
    matcher::GrammarMatcher fork = matcher.Fork();
    benchmark::DoNotOptimize(fork.NumConsumedBytes());
  }
}
BENCHMARK(BM_MatcherFork);

void BM_MatcherForkVsReplay(benchmark::State& state) {
  auto pda = BenchPda();
  const std::string& doc = BenchDocument();
  for (auto _ : state) {
    matcher::GrammarMatcher fresh(pda);
    for (std::size_t i = 0; i < doc.size() / 2; ++i) {
      fresh.AcceptByte(static_cast<std::uint8_t>(doc[i]));
    }
    benchmark::DoNotOptimize(fresh.NumConsumedBytes());
  }
}
BENCHMARK(BM_MatcherForkVsReplay);

void BM_JumpForwardProbe(benchmark::State& state) {
  // Appendix B: the forced-continuation probe runs every decode step when
  // jump-forward decoding is enabled.
  auto pda = BenchPda();
  matcher::GrammarMatcher matcher(pda);
  matcher.AcceptString("{\"key\":");
  for (auto _ : state) {
    std::string forced = matcher.FindJumpForwardString();
    benchmark::DoNotOptimize(forced);
  }
}
BENCHMARK(BM_JumpForwardProbe);

void BM_CachedMaskGeneration(benchmark::State& state) {
  auto info = BenchTokenizer();
  baselines::XGrammarDecoder decoder(BenchCache());
  // Park the matcher mid-document (inside an object, after a key).
  decoder.Matcher().AcceptString("{\"key\":");
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (auto _ : state) {
    decoder.FillNextTokenBitmask(&mask);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_CachedMaskGeneration);

void BM_CachedMaskGenerationInString(benchmark::State& state) {
  auto info = BenchTokenizer();
  baselines::XGrammarDecoder decoder(BenchCache());
  decoder.Matcher().AcceptString("{\"key\":\"par");
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (auto _ : state) {
    decoder.FillNextTokenBitmask(&mask);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_CachedMaskGenerationInString);

void BM_BruteForceMaskGeneration(benchmark::State& state) {
  auto info = BenchTokenizer();
  auto pda = BenchPda();
  matcher::GrammarMatcher matcher(pda);
  matcher.AcceptString("{\"key\":");
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (auto _ : state) {
    cache::FillBitmaskBruteForce(&matcher, *info, &mask);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_BruteForceMaskGeneration);

void BM_BitsetIntersect(benchmark::State& state) {
  DynamicBitset a(128000, true);
  DynamicBitset b(128000);
  for (std::size_t i = 0; i < b.Size(); i += 3) b.Set(i);
  for (auto _ : state) {
    a |= b;
    a &= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_BitsetIntersect);

void BM_GreedyTokenize(benchmark::State& state) {
  auto info = BenchTokenizer();
  tokenizer::TokenTrie trie(*info);
  const std::string& doc = BenchDocument();
  for (auto _ : state) {
    auto ids = tokenizer::GreedyTokenize(trie, doc);
    benchmark::DoNotOptimize(ids);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_GreedyTokenize);

}  // namespace

BENCHMARK_MAIN();
