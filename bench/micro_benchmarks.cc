// Google-benchmark microbenchmarks for the engine's hot primitives:
// persistent-stack interning and closure, byte stepping, mask generation
// (cached vs brute force), Algorithm-1 mask merging, and bitset operations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iterator>

#include "baselines/xgrammar_decoder.h"
#include "cache/ctx_trie_dfs.h"
#include "cache/mask_generator.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/dynamic_bitset.h"
#include "support/string_utils.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"

namespace {

using namespace xgr;  // NOLINT

std::shared_ptr<const tokenizer::TokenizerInfo> BenchTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 16000, .seed = 2024}));
  return info;
}

std::shared_ptr<const pda::CompiledGrammar> BenchPda() {
  static auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  return pda;
}

std::shared_ptr<const cache::AdaptiveTokenMaskCache> BenchCache() {
  static auto cache = cache::AdaptiveTokenMaskCache::Build(BenchPda(), BenchTokenizer());
  return cache;
}

const std::string& BenchDocument() {
  static std::string doc = datasets::GenerateJsonDocuments(1, 5, 3)[0];
  return doc;
}

void BM_PersistentStackIntern(benchmark::State& state) {
  matcher::PersistentStackPool pool;
  std::int32_t parent = matcher::PersistentStackPool::kNoParent;
  std::int64_t i = 0;
  for (auto _ : state) {
    std::int32_t id = pool.Intern(parent, static_cast<std::int32_t>(i % 64));
    benchmark::DoNotOptimize(id);
    if (++i % 64 == 0) parent = matcher::PersistentStackPool::kNoParent;
    if (i % 8 == 0) parent = id;
  }
}
BENCHMARK(BM_PersistentStackIntern);

void BM_MatcherAcceptByte(benchmark::State& state) {
  auto pda = BenchPda();
  const std::string& doc = BenchDocument();
  for (auto _ : state) {
    matcher::GrammarMatcher matcher(pda);
    for (char c : doc) {
      bool ok = matcher.AcceptByte(static_cast<std::uint8_t>(c));
      benchmark::DoNotOptimize(ok);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_MatcherAcceptByte);

void BM_MatcherRollback(benchmark::State& state) {
  auto pda = BenchPda();
  const std::string& doc = BenchDocument();
  matcher::GrammarMatcher matcher(pda);
  for (char c : doc) matcher.AcceptByte(static_cast<std::uint8_t>(c));
  std::int32_t depth = matcher.NumConsumedBytes();
  for (auto _ : state) {
    matcher.RollbackToDepth(depth - 4);
    for (std::int32_t i = depth - 4; i < depth; ++i) {
      matcher.AcceptByte(static_cast<std::uint8_t>(doc[static_cast<std::size_t>(i)]));
    }
  }
}
BENCHMARK(BM_MatcherRollback);

void BM_MatcherFork(benchmark::State& state) {
  // §3.3 branch cost: forking mid-document vs. rebuilding a matcher and
  // replaying the prefix (BM_MatcherForkVsReplay). The gap is what makes
  // per-branch grammar state viable for tree decoding.
  auto pda = BenchPda();
  const std::string& doc = BenchDocument();
  matcher::GrammarMatcher matcher(pda);
  for (std::size_t i = 0; i < doc.size() / 2; ++i) {
    matcher.AcceptByte(static_cast<std::uint8_t>(doc[i]));
  }
  for (auto _ : state) {
    matcher::GrammarMatcher fork = matcher.Fork();
    benchmark::DoNotOptimize(fork.NumConsumedBytes());
  }
}
BENCHMARK(BM_MatcherFork);

void BM_MatcherForkVsReplay(benchmark::State& state) {
  auto pda = BenchPda();
  const std::string& doc = BenchDocument();
  for (auto _ : state) {
    matcher::GrammarMatcher fresh(pda);
    for (std::size_t i = 0; i < doc.size() / 2; ++i) {
      fresh.AcceptByte(static_cast<std::uint8_t>(doc[i]));
    }
    benchmark::DoNotOptimize(fresh.NumConsumedBytes());
  }
}
BENCHMARK(BM_MatcherForkVsReplay);

void BM_JumpForwardProbe(benchmark::State& state) {
  // Appendix B: the forced-continuation probe runs every decode step when
  // jump-forward decoding is enabled.
  auto pda = BenchPda();
  matcher::GrammarMatcher matcher(pda);
  matcher.AcceptString("{\"key\":");
  for (auto _ : state) {
    std::string forced = matcher.FindJumpForwardString();
    benchmark::DoNotOptimize(forced);
  }
}
BENCHMARK(BM_JumpForwardProbe);

void BM_CachedMaskGeneration(benchmark::State& state) {
  auto info = BenchTokenizer();
  baselines::XGrammarDecoder decoder(BenchCache());
  // Park the matcher mid-document (inside an object, after a key).
  decoder.Matcher().AcceptString("{\"key\":");
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (auto _ : state) {
    decoder.FillNextTokenBitmask(&mask);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_CachedMaskGeneration);

void BM_CachedMaskGenerationInString(benchmark::State& state) {
  auto info = BenchTokenizer();
  baselines::XGrammarDecoder decoder(BenchCache());
  decoder.Matcher().AcceptString("{\"key\":\"par");
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (auto _ : state) {
    decoder.FillNextTokenBitmask(&mask);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_CachedMaskGenerationInString);

void BM_BruteForceMaskGeneration(benchmark::State& state) {
  auto info = BenchTokenizer();
  auto pda = BenchPda();
  matcher::GrammarMatcher matcher(pda);
  matcher.AcceptString("{\"key\":");
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (auto _ : state) {
    cache::FillBitmaskBruteForce(&matcher, *info, &mask);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_BruteForceMaskGeneration);

// --- Algorithm-1 merge kernels ----------------------------------------------
// The same merge workload — K accept-heavy stacks (rejected lists) plus one
// reject-heavy stack (accepted list) over a 128k vocabulary — implemented the
// pre-refactor way (sorted-list set algebra, allocating a temporary per
// union/intersection) and the current way (word-level batches into reusable
// scratch bitsets). The gap is the point of the PR's merge rework.

constexpr std::size_t kMergeVocab = 128000;

std::vector<std::int32_t> SyntheticIdList(std::size_t count, std::uint64_t stride,
                                          std::uint64_t offset) {
  std::vector<std::int32_t> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ids.push_back(static_cast<std::int32_t>((offset + i * stride) % kMergeVocab));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

struct MergeWorkload {
  std::vector<std::vector<std::int32_t>> rejected;  // per accept-heavy stack
  std::vector<std::int32_t> accepted;               // reject-heavy stack
  DynamicBitset accepted_bits;                      // kBitset-storage stack
};

const MergeWorkload& SyntheticMergeWorkload() {
  static MergeWorkload w = [] {
    MergeWorkload out;
    for (std::uint64_t k = 0; k < 3; ++k) {
      out.rejected.push_back(SyntheticIdList(4000, 17 + k, 13 * k));
    }
    out.accepted = SyntheticIdList(600, 97, 5);
    out.accepted_bits = DynamicBitset(kMergeVocab);
    for (std::size_t i = 0; i < kMergeVocab; i += 3) out.accepted_bits.Set(i);
    return out;
  }();
  return w;
}

void BM_MaskMergeSortedLists(benchmark::State& state) {
  const MergeWorkload& w = SyntheticMergeWorkload();
  DynamicBitset mask(kMergeVocab);
  for (auto _ : state) {
    std::vector<std::int32_t> partial_rej = w.rejected[0];
    for (std::size_t k = 1; k < w.rejected.size(); ++k) {
      std::vector<std::int32_t> next;
      std::set_intersection(partial_rej.begin(), partial_rej.end(),
                            w.rejected[k].begin(), w.rejected[k].end(),
                            std::back_inserter(next));
      partial_rej = std::move(next);
    }
    // Pre-refactor handling of bitset-storage entries: materialize the whole
    // bitset into an index list, then sorted-union it in.
    std::vector<std::int32_t> bitset_ids = w.accepted_bits.ToIndexList();
    std::vector<std::int32_t> partial_acc;
    std::set_union(w.accepted.begin(), w.accepted.end(), bitset_ids.begin(),
                   bitset_ids.end(), std::back_inserter(partial_acc));
    std::vector<std::int32_t> final_rej;
    std::set_difference(partial_rej.begin(), partial_rej.end(),
                        partial_acc.begin(), partial_acc.end(),
                        std::back_inserter(final_rej));
    mask.SetAll();
    for (std::int32_t id : final_rej) mask.Reset(static_cast<std::size_t>(id));
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_MaskMergeSortedLists);

void BM_MaskMergeWordLevel(benchmark::State& state) {
  const MergeWorkload& w = SyntheticMergeWorkload();
  DynamicBitset mask(kMergeVocab);
  DynamicBitset rejected(kMergeVocab);
  DynamicBitset entry(kMergeVocab);
  DynamicBitset accepted(kMergeVocab);
  for (auto _ : state) {
    accepted.ResetAll();
    accepted.SetBatch(w.accepted);
    accepted.OrWith(w.accepted_bits);  // bitset-storage entry: word-wise OR
    rejected.ResetAll();
    rejected.SetBatch(w.rejected[0]);
    for (std::size_t k = 1; k < w.rejected.size(); ++k) {
      entry.ResetAll();
      entry.SetBatch(w.rejected[k]);
      rejected.AndWith(entry);
    }
    mask.CopyFrom(rejected);
    mask.FlipAll();
    mask.OrWith(accepted);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_MaskMergeWordLevel);

void BM_MultiStackMaskGeneration(benchmark::State& state) {
  // End-to-end Algorithm 1: an ambiguous grammar keeps two stacks alive, so
  // every FillNextTokenBitmask runs the multi-stack merge path.
  static auto pda = pda::CompiledGrammar::Compile(
      grammar::ParseEbnfOrThrow(R"(
        root ::= item*
        item ::= "aa" "x" | "a" "a" "y"
      )"),
      pda::CompileOptions::AllDisabled());
  static auto cache = cache::AdaptiveTokenMaskCache::Build(pda, BenchTokenizer());
  auto info = BenchTokenizer();
  cache::MaskGenerator generator(cache);
  matcher::GrammarMatcher matcher(pda);
  matcher.AcceptString("aa");
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (auto _ : state) {
    generator.FillNextTokenBitmask(&matcher, &mask);
    benchmark::DoNotOptimize(mask);
  }
  state.SetLabel("merges=" + std::to_string(generator.Stats().merges));
}
BENCHMARK(BM_MultiStackMaskGeneration);

// --- Context-dependent checking kernels --------------------------------------
// The same wide workload — every sorted vocabulary token (16k ids, heavy
// shared prefixes) checked against one mid-document stack — implemented the
// pre-refactor way (flat lexicographic loop: rollback to the common prefix
// with the previous token, re-attempting the failing byte once per following
// token that shares it) and the current way (stackless DFS over a
// PrefixTrieSlice: each unique (prefix, byte) attempted once, a failing byte
// cutting off its whole subtree). The gap is the point of the PR's
// trie-pruned ctx checking; per-stack result memoization (MaskGenerator's
// ctx memo) then removes even the DFS from recurring steady-state checks.

struct CtxCheckFixture {
  std::shared_ptr<const pda::CompiledGrammar> pda;
  matcher::GrammarMatcher runtime;
  std::int32_t stack_id;
  tokenizer::PrefixTrieSlice trie;

  explicit CtxCheckFixture(const char* prefix) : pda(BenchPda()), runtime(pda) {
    runtime.AcceptString(prefix);
    stack_id = runtime.MaskStacks().front();
    trie = tokenizer::PrefixTrieSlice::Build(*BenchTokenizer(),
                                             BenchTokenizer()->SortedTokenIds());
  }
};

// In-string: almost every byte is legal, so the walk is accept-heavy and the
// trie's win is walking each shared prefix once.
CtxCheckFixture& InStringFixture() {
  static CtxCheckFixture fixture("{\"key\":\"par");
  return fixture;
}
// Object-key position: only '"', '}' and whitespace may start a token, so
// almost every token fails on its first byte — the flat list re-attempts that
// byte once per token while the DFS cuts off each first-byte subtree whole.
CtxCheckFixture& RejectHeavyFixture() {
  static CtxCheckFixture fixture("{");
  return fixture;
}

void RunCtxCheckFlatList(benchmark::State& state, CtxCheckFixture& f) {
  auto info = BenchTokenizer();
  const std::vector<std::int32_t>& tokens = info->SortedTokenIds();
  matcher::GrammarMatcher scratch(f.pda, f.runtime.PoolShared(), f.stack_id);
  std::vector<std::int32_t> accepted;
  for (auto _ : state) {
    accepted.clear();
    scratch.Reseed(f.stack_id);
    std::string_view previous;
    for (std::int32_t token_id : tokens) {
      const std::string& token = info->TokenBytes(token_id);
      auto common = static_cast<std::int32_t>(
          xgr::CommonPrefixLength(previous, token));
      scratch.RollbackToDepth(std::min(common, scratch.NumConsumedBytes()));
      bool ok = true;
      for (std::size_t j = static_cast<std::size_t>(scratch.NumConsumedBytes());
           j < token.size(); ++j) {
        if (!scratch.AcceptByte(static_cast<std::uint8_t>(token[j]))) {
          ok = false;
          break;
        }
      }
      if (ok) accepted.push_back(token_id);
      previous = token;
    }
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tokens.size()));
}

void RunCtxCheckTrieDfs(benchmark::State& state, CtxCheckFixture& f) {
  auto info = BenchTokenizer();
  const std::vector<std::int32_t>& tokens = info->SortedTokenIds();
  matcher::GrammarMatcher scratch(f.pda, f.runtime.PoolShared(), f.stack_id);
  std::vector<std::int32_t> accepted;
  cache::CtxDfsCounters counters;
  for (auto _ : state) {
    accepted.clear();
    scratch.Reseed(f.stack_id);
    cache::CtxTrieDfs(
        f.trie, &scratch, &counters,
        [&](std::int32_t pos) {
          for (std::int32_t t = f.trie.TokenBegin(pos);
               t < f.trie.TerminalTokenEnd(pos); ++t) {
            accepted.push_back(tokens[static_cast<std::size_t>(t)]);
          }
        },
        [](std::int32_t) {});
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tokens.size()));
  state.SetLabel("cutoffs=" + std::to_string(counters.subtree_cutoffs /
                                             std::max<std::int64_t>(
                                                 1, state.iterations())));
}

void BM_CtxCheckFlatList_InString(benchmark::State& state) {
  RunCtxCheckFlatList(state, InStringFixture());
}
BENCHMARK(BM_CtxCheckFlatList_InString);

void BM_CtxCheckTrieDfs_InString(benchmark::State& state) {
  RunCtxCheckTrieDfs(state, InStringFixture());
}
BENCHMARK(BM_CtxCheckTrieDfs_InString);

void BM_CtxCheckFlatList_RejectHeavy(benchmark::State& state) {
  RunCtxCheckFlatList(state, RejectHeavyFixture());
}
BENCHMARK(BM_CtxCheckFlatList_RejectHeavy);

void BM_CtxCheckTrieDfs_RejectHeavy(benchmark::State& state) {
  RunCtxCheckTrieDfs(state, RejectHeavyFixture());
}
BENCHMARK(BM_CtxCheckTrieDfs_RejectHeavy);

void BM_BitsetIntersect(benchmark::State& state) {
  DynamicBitset a(128000, true);
  DynamicBitset b(128000);
  for (std::size_t i = 0; i < b.Size(); i += 3) b.Set(i);
  for (auto _ : state) {
    a |= b;
    a &= b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_BitsetIntersect);

void BM_GreedyTokenize(benchmark::State& state) {
  auto info = BenchTokenizer();
  tokenizer::TokenTrie trie(*info);
  const std::string& doc = BenchDocument();
  for (auto _ : state) {
    auto ids = tokenizer::GreedyTokenize(trie, doc);
    benchmark::DoNotOptimize(ids);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_GreedyTokenize);

}  // namespace

BENCHMARK_MAIN();
