// Ablation of the adaptive storage format (Figure 5 / §3.1): for each builtin
// grammar, build the token-mask cache with the adaptive accept-heavy /
// reject-heavy / bitset selection versus the bitset-only strawman, and
// compare memory, build time and runtime mask-generation latency. DESIGN.md
// calls the storage format out as a key design choice; this bench isolates
// its contribution (the paper folds it into the §3.1 memory numbers).
#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "bench/bench_common.h"
#include "cache/adaptive_cache.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "pda/compiled_grammar.h"

namespace {
using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT

struct Task {
  const char* name;
  grammar::Grammar grammar;
  std::vector<std::string> documents;
};

}  // namespace

int main() {
  PrintHeader(
      "Ablation: adaptive token-mask storage (Fig. 5) vs bitset-only.\n"
      "paper SS3.1: adaptive storage cuts JSON cache memory to ~0.2%");
  auto info = GetTokenizer();

  std::vector<Task> tasks;
  tasks.push_back({"JSON", grammar::BuiltinJsonGrammar(),
                   datasets::GenerateJsonDocuments(8, 11)});
  tasks.push_back({"XML", grammar::BuiltinXmlGrammar(),
                   datasets::GenerateXmlDocuments(8, 12)});
  tasks.push_back({"Python DSL", grammar::BuiltinPythonDslGrammar(),
                   datasets::GeneratePythonPrograms(8, 13)});
  tasks.push_back({"SQL", grammar::BuiltinSqlGrammar(), {}});

  PrintRow({"grammar", "storage", "memory (MB)", "vs bitset", "build (s)",
            "mask gen (us)"},
           14);
  for (Task& task : tasks) {
    auto pda = pda::CompiledGrammar::Compile(task.grammar);
    double bitset_mb = 0.0;
    for (bool adaptive : {false, true}) {
      cache::AdaptiveCacheOptions options;
      options.adaptive_storage = adaptive;
      auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info, options);
      double mb = static_cast<double>(cache->MemoryBytes()) / (1024.0 * 1024.0);
      if (!adaptive) bitset_mb = mb;
      double mask_us = 0.0;
      if (!task.documents.empty()) {
        baselines::XGrammarDecoder decoder(cache);
        mask_us = MeasureMaskGenUs(&decoder, info, task.documents, MaxSteps());
      }
      const auto& stats = cache->Stats();
      PrintRow({task.name, adaptive ? "adaptive" : "bitset-only", Fmt(mb, 3),
                adaptive ? Fmt(100.0 * mb / bitset_mb, 1) + "%" : "100%",
                Fmt(stats.build_seconds, 3),
                task.documents.empty() ? "-" : Fmt(mask_us, 2)},
               14);
    }
    // Storage-kind distribution for the adaptive build.
    cache::AdaptiveCacheOptions options;
    auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info, options);
    const auto& stats = cache->Stats();
    std::printf(
        "  %-12s accept-heavy=%lld reject-heavy=%lld bitset=%lld "
        "(max ctx-dep/node=%lld)\n\n",
        task.name, static_cast<long long>(stats.storage_kind_counts[0]),
        static_cast<long long>(stats.storage_kind_counts[1]),
        static_cast<long long>(stats.storage_kind_counts[2]),
        static_cast<long long>(stats.max_ctx_dependent_per_node));
  }
  return 0;
}
