// Fault-storm benchmark: the 32-schema cold-start storm of
// bench/compile_service.cc re-run under deterministic injected faults —
// ~1% compile failures, ~5% transient disk-tier I/O errors, and one
// permanently-poisoned hot schema submitted repeatedly — to prove the
// fault-tolerance layer's serving-facing properties:
//
//   1. zero wedged requests — every request reaches a terminal outcome
//      (completed, or dropped with a structured StatusCode + error);
//   2. zero leaked builds/tickets — the service's inflight table is empty
//      once the storm drains;
//   3. healthy tenants stay healthy — completed requests' TTFT p99 and
//      goodput stay within a stated margin of the fault-free run;
//   4. the poisoned schema settles into O(1) steady-state rejection — no
//      build is ever started for it again and rejection latency is µs-scale.
//
// All faults come from seeded fault points (support/fault_point.h): the
// fire pattern is a pure function of the seeds below, so the numbers are
// reproducible run to run. Emits BENCH_fault_storm.json (override with
// XGR_BENCH_JSON). Knobs: XGR_VOCAB, XGR_STORM_SCHEMAS (default 32),
// XGR_CACHE_DIR (default: scratch under the system temp dir, wiped cold).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/mock_llm.h"
#include "engine/serving_engine.h"
#include "json/json.h"
#include "runtime/compile_service.h"
#include "support/fault_point.h"
#include "support/logging.h"
#include "support/status.h"
#include "support/timer.h"

namespace {
using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT

namespace fs = std::filesystem;
namespace fault = support::fault;

// Same scale as bench/compile_service.cc: decode-step sleeps compressed so
// the storm finishes in seconds while compilation (and injected fault
// handling) stays real CPU work.
constexpr double kTimeScale = 0.05;

// The hot schema that is permanently broken: a deterministic parse failure
// (kInvalidGrammar), so the quarantine trips on the FIRST build and every
// later submit must be rejected O(1) from the failure memo.
const char* kPoisonSchema = R"({"type": "object", "properties": {)";

runtime::CompileJob SchemaJob(const datasets::SchemaTask& task) {
  runtime::CompileJob job;
  job.kind = runtime::GrammarKind::kJsonSchema;
  job.source = task.schema.Dump();
  return job;
}

runtime::CompileJob PoisonJob() {
  runtime::CompileJob job;
  job.kind = runtime::GrammarKind::kJsonSchema;
  job.source = kPoisonSchema;
  return job;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = p * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct StormOutcome {
  int completed = 0;
  int dropped = 0;       // terminal failure with a structured code
  int wedged = 0;        // neither completed nor classified: must be zero
  std::int64_t healthy_tokens = 0;
  double makespan_ms = 0.0;
  std::vector<double> healthy_ttft_ms;
  runtime::CompileServiceStats service_stats;
  runtime::GrammarRegistryStats registry_stats;
  double goodput_tok_per_s() const {
    return makespan_ms <= 0.0
               ? 0.0
               : static_cast<double>(healthy_tokens) / (makespan_ms / 1000.0);
  }
};

// Runs the storm: `tasks` healthy schemas arriving over the first steps,
// plus (when poison_submissions > 0) that many requests for the permanently
// broken hot schema interleaved through the stream.
StormOutcome RunStorm(const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
                      engine::MockLlm& llm,
                      const std::vector<datasets::SchemaTask>& tasks,
                      const std::string& disk_dir, int poison_submissions) {
  runtime::CompileServiceOptions options;
  options.num_threads = 4;
  options.registry.disk_dir = disk_dir;
  runtime::CompileService service(info, options);

  StormOutcome outcome;
  std::size_t healthy_count = tasks.size();
  {
    // When the storm includes the broken hot schema, build (and fail, and
    // quarantine) it FIRST, before any healthy job is queued: the later
    // submits then exercise the O(1) memo rejection path mid-storm, and the
    // blocking wait can't let healthy builds drain before the measured run
    // starts (which would skew TTFT vs the fault-free reference).
    std::shared_ptr<runtime::CompileTicket> poison_first;
    if (poison_submissions > 0) {
      poison_first = std::make_shared<runtime::CompileTicket>(
          service.Submit(PoisonJob()));
      poison_first->WaitFor(60.0);
    }

    std::vector<engine::ContinuousRequest> stream;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      engine::ContinuousRequest r;
      r.pending_grammar = std::make_shared<runtime::CompileTicket>(
          service.Submit(SchemaJob(tasks[i])));
      r.request.target_text = tasks[i].canonical_answer.Dump();
      r.request.seed = static_cast<std::uint64_t>(i) * 13 + 7;
      r.arrival_step = static_cast<std::int64_t>(i % 8);
      stream.push_back(std::move(r));
    }
    if (poison_submissions > 0) {
      engine::ContinuousRequest hot;
      hot.pending_grammar = std::move(poison_first);
      hot.request.target_text = "{}";
      hot.arrival_step = 0;
      stream.push_back(std::move(hot));
      for (int i = 1; i < poison_submissions; ++i) {
        engine::ContinuousRequest repeat;
        repeat.pending_grammar = std::make_shared<runtime::CompileTicket>(
            service.Submit(PoisonJob()));
        repeat.request.target_text = "{}";
        repeat.arrival_step = i % 8;
        stream.push_back(std::move(repeat));
      }
    }

    engine::EngineOptions engine_options;
    engine_options.time_scale = kTimeScale;
    engine_options.max_new_tokens = 64;
    engine_options.admission = engine::CompileAdmission::kDeferred;
    // Safety net: a wedged build must surface as a classified deadline drop,
    // never as a hung storm (simulated ms; far above any healthy build).
    engine_options.compile_deadline_ms = 60'000.0;
    engine::ServingEngine engine(engine_options, llm);
    engine::ContinuousResult result = engine.RunContinuous(stream, 8);

    outcome.makespan_ms = result.makespan_ms;
    for (std::size_t i = 0; i < result.requests.size(); ++i) {
      const engine::ContinuousRequestResult& r = result.requests[i];
      const bool finished = r.status == StatusCode::kOk &&
                            !r.result.output_text.empty();
      const bool classified_drop = r.status != StatusCode::kOk;
      if (finished) {
        ++outcome.completed;
        if (i < healthy_count) {
          outcome.healthy_tokens +=
              static_cast<std::int64_t>(r.result.token_ids.size());
          outcome.healthy_ttft_ms.push_back(r.compile_wait_ms + r.ttft_ms);
        }
      } else if (classified_drop) {
        ++outcome.dropped;
        XGR_CHECK(!r.error.empty()) << "classified drop without an error";
      } else {
        ++outcome.wedged;  // unreachable if the layer holds its contract
      }
    }
    // Stream destruction releases every ticket (RAII interest drop).
  }
  outcome.service_stats = service.Stats();
  outcome.registry_stats = service.Registry().Stats();

  // Poisoned steady state: after the storm, the hot schema must be rejected
  // O(1) — zero new builds, µs-scale latency, the memoized error served.
  if (poison_submissions > 0) {
    const std::int64_t builds_before = outcome.service_stats.builds_started;
    constexpr int kProbes = 100;
    Timer timer;
    for (int i = 0; i < kProbes; ++i) {
      runtime::CompileTicket rejected = service.Submit(PoisonJob());
      XGR_CHECK(rejected.State() == runtime::CompileState::kFailed);
      XGR_CHECK(rejected.Code() == StatusCode::kPoisoned);
    }
    const double total_us = timer.ElapsedMicros();
    outcome.service_stats = service.Stats();
    std::printf("  poisoned steady state     : %d rejects, %.1f us each, "
                "builds started %+lld\n",
                kProbes, total_us / kProbes,
                static_cast<long long>(outcome.service_stats.builds_started -
                                       builds_before));
  }
  return outcome;
}

}  // namespace

int main() {
  PrintHeader(
      "Fault storm: the 32-schema cold-start storm under injected compile\n"
      "failures, transient disk errors, and a permanently-poisoned hot schema");
  auto info = GetTokenizer();
  const int storm_schemas = EnvInt("XGR_STORM_SCHEMAS", 32);

  const char* cache_dir_env = std::getenv("XGR_CACHE_DIR");
  const std::string cache_root =
      cache_dir_env != nullptr
          ? std::string(cache_dir_env)
          : (fs::temp_directory_path() / "xgr_bench_fault_storm").string();
  fs::remove_all(cache_root);

  engine::MockLlm llm(info, {.derail_probability = 0.0, .seed = 11});
  auto tasks = datasets::GenerateSchemaTasks(storm_schemas, 2025);

  // Unmeasured warmup lap: the first storm in a process pays one-time
  // per-tokenizer setup that later storms don't, which would make the
  // faulted run look *faster* than the reference. Warm first, then compare
  // warm-vs-warm.
  RunStorm(info, llm, tasks, cache_root + "/warmup", /*poison=*/0);

  // --- fault-free reference run ---------------------------------------------
  std::printf("\nFault-free reference storm (%d schemas, batch 8):\n",
              storm_schemas);
  StormOutcome clean =
      RunStorm(info, llm, tasks, cache_root + "/clean", /*poison=*/0);
  std::printf("  completed / dropped       : %d / %d\n", clean.completed,
              clean.dropped);
  std::printf("  healthy TTFT p50 / p99    : %.1f / %.1f ms\n",
              Percentile(clean.healthy_ttft_ms, 0.50),
              Percentile(clean.healthy_ttft_ms, 0.99));
  std::printf("  goodput                   : %.0f tok/s\n",
              clean.goodput_tok_per_s());

  // --- faulted run -----------------------------------------------------------
  // ~1% of builds throw a transient internal failure; ~5% of disk reads and
  // writes fail transiently (retried with backoff); one hot schema is
  // permanently broken and submitted six times through the storm.
  {
    fault::FaultRule compile_fault;
    compile_fault.action = fault::FaultAction::kThrow;
    compile_fault.code = StatusCode::kInternal;
    compile_fault.message = "injected transient compile failure";
    compile_fault.probability = 0.01;
    compile_fault.seed = 0x5eed0001;
    fault::Arm("compile.before_build", compile_fault);

    fault::FaultRule read_fault;
    read_fault.action = fault::FaultAction::kFail;
    read_fault.probability = 0.05;
    read_fault.seed = 0x5eed0002;
    fault::Arm("registry.disk.read", read_fault);

    fault::FaultRule write_fault;
    write_fault.action = fault::FaultAction::kFail;
    write_fault.probability = 0.05;
    write_fault.seed = 0x5eed0003;
    fault::Arm("registry.disk.write_short", write_fault);
  }
  constexpr int kPoisonSubmissions = 6;
  std::printf("\nFaulted storm (1%% compile faults, 5%% disk faults, "
              "%d poisoned submits):\n", kPoisonSubmissions);
  StormOutcome faulted = RunStorm(info, llm, tasks, cache_root + "/faulted",
                                  kPoisonSubmissions);
  const fault::SiteStats compile_site = fault::Stats("compile.before_build");
  const fault::SiteStats read_site = fault::Stats("registry.disk.read");
  const fault::SiteStats write_site = fault::Stats("registry.disk.write_short");
  fault::DisarmAll();

  std::printf("  completed / dropped / wedged : %d / %d / %d\n",
              faulted.completed, faulted.dropped, faulted.wedged);
  std::printf("  healthy TTFT p50 / p99    : %.1f / %.1f ms\n",
              Percentile(faulted.healthy_ttft_ms, 0.50),
              Percentile(faulted.healthy_ttft_ms, 0.99));
  std::printf("  goodput                   : %.0f tok/s\n",
              faulted.goodput_tok_per_s());
  std::printf("  injected fires            : compile %lld/%lld, disk read "
              "%lld/%lld, disk write %lld/%lld\n",
              static_cast<long long>(compile_site.fires),
              static_cast<long long>(compile_site.hits),
              static_cast<long long>(read_site.fires),
              static_cast<long long>(read_site.hits),
              static_cast<long long>(write_site.fires),
              static_cast<long long>(write_site.hits));
  std::printf("  disk retries / exhausted  : %lld / %lld\n",
              static_cast<long long>(faulted.registry_stats.disk_retries),
              static_cast<long long>(
                  faulted.registry_stats.disk_retry_exhausted));
  std::printf("  quarantine rejects        : %lld\n",
              static_cast<long long>(
                  faulted.service_stats.quarantine_rejects));

  // --- gates ------------------------------------------------------------------
  const bool zero_wedged = faulted.wedged == 0 && clean.wedged == 0;
  const bool zero_leaked = faulted.service_stats.inflight == 0 &&
                           clean.service_stats.inflight == 0;
  const double clean_p99 = Percentile(clean.healthy_ttft_ms, 0.99);
  const double faulted_p99 = Percentile(faulted.healthy_ttft_ms, 0.99);
  const double ttft_p99_ratio = clean_p99 > 0.0 ? faulted_p99 / clean_p99 : 0.0;
  const double goodput_ratio =
      clean.goodput_tok_per_s() > 0.0
          ? faulted.goodput_tok_per_s() / clean.goodput_tok_per_s()
          : 0.0;
  // Stated margins: healthy-tenant p99 TTFT within 5x of fault-free, goodput
  // within 2x (>= 0.5 of fault-free) — the storm drops at most a few percent
  // of requests and disk retries add only ms-scale backoff.
  const bool ttft_bounded = ttft_p99_ratio <= 5.0;
  const bool goodput_within_margin = goodput_ratio >= 0.5;
  const bool poison_o1 = faulted.service_stats.quarantine_rejects >= 100;

  std::printf("\nGates: wedged=%s leaked=%s ttft_p99 %.2fx (<=5x: %s) "
              "goodput %.2fx (>=0.5x: %s) poison O(1)=%s\n",
              zero_wedged ? "0 ok" : "FAIL", zero_leaked ? "0 ok" : "FAIL",
              ttft_p99_ratio, ttft_bounded ? "ok" : "FAIL", goodput_ratio,
              goodput_within_margin ? "ok" : "FAIL",
              poison_o1 ? "ok" : "FAIL");

  // --- JSON -------------------------------------------------------------------
  auto storm_json = [](const StormOutcome& o) {
    json::Object obj;
    obj["completed"] = o.completed;
    obj["dropped"] = o.dropped;
    obj["wedged"] = o.wedged;
    obj["healthy_tokens"] = o.healthy_tokens;
    obj["makespan_ms"] = o.makespan_ms;
    obj["goodput_tok_per_s"] = o.goodput_tok_per_s();
    obj["healthy_ttft_ms_p50"] = Percentile(o.healthy_ttft_ms, 0.50);
    obj["healthy_ttft_ms_p99"] = Percentile(o.healthy_ttft_ms, 0.99);
    obj["builds_started"] = o.service_stats.builds_started;
    obj["failed"] = o.service_stats.failed;
    obj["quarantine_rejects"] = o.service_stats.quarantine_rejects;
    obj["inflight_after"] = o.service_stats.inflight;
    obj["disk_retries"] = o.registry_stats.disk_retries;
    obj["disk_retry_exhausted"] = o.registry_stats.disk_retry_exhausted;
    return obj;
  };

  json::Object faults;
  faults["compile_failure_probability"] = 0.01;
  faults["disk_failure_probability"] = 0.05;
  faults["poison_submissions"] = kPoisonSubmissions;
  faults["compile_fires"] = compile_site.fires;
  faults["compile_hits"] = compile_site.hits;
  faults["disk_read_fires"] = read_site.fires;
  faults["disk_write_fires"] = write_site.fires;

  json::Object gates;
  gates["zero_wedged"] = zero_wedged;
  gates["zero_leaked"] = zero_leaked;
  gates["ttft_p99_ratio"] = ttft_p99_ratio;
  gates["ttft_p99_bounded_5x"] = ttft_bounded;
  gates["goodput_ratio"] = goodput_ratio;
  gates["goodput_within_margin"] = goodput_within_margin;
  gates["poison_steady_state_o1"] = poison_o1;

  json::Object doc;
  doc["benchmark"] = "fault_storm";
  doc["vocab_size"] = info->VocabSize();
  doc["time_scale"] = kTimeScale;
  doc["schemas"] = storm_schemas;
  doc["fault_free"] = json::Value(storm_json(clean));
  doc["faulted"] = json::Value(storm_json(faulted));
  doc["faults"] = json::Value(std::move(faults));
  doc["gates"] = json::Value(std::move(gates));

  const char* json_path = std::getenv("XGR_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_fault_storm.json";
  std::ofstream out(path);
  out << json::Value(std::move(doc)).Dump(2) << "\n";
  if (out) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  const bool all_gates = zero_wedged && zero_leaked && ttft_bounded &&
                         goodput_within_margin && poison_o1;
  return all_gates ? 0 : 1;
}
