// Table 4: syntactic correctness of structured-generation tasks with and
// without XGrammar.
//
// Paper reference: function calling 62% -> 100%; XML code generation
// 80% -> 100%. Expected shape: without constraints the mock model sometimes
// derails into prose (exactly the failure mode the paper describes) and the
// output fails to parse; with constraints correctness is 100% by
// construction.
#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;

}  // namespace

int main() {
  PrintHeader(
      "Table 4: syntactic correctness w/o vs w/ XGrammar\n"
      "paper: function calling 62% -> 100%; XML generation 80% -> 100%");
  auto info = GetTokenizer();
  const int num_tasks = EnvInt("XGR_TASKS", 25);

  // --- Function calling (JSON Schema) --------------------------------------
  {
    engine::MockLlm llm(info, {.derail_probability = 0.012, .seed = 71});
    auto tasks = datasets::GenerateSchemaTasks(num_tasks, 61);
    int valid_without = 0;
    int valid_with = 0;
    for (int i = 0; i < num_tasks; ++i) {
      const auto& task = tasks[static_cast<std::size_t>(i)];
      DecoderFactory factory(EngineKind::kXGrammar, info);
      factory.PrepareSchema(task.schema);
      auto pda_for_check = factory.MaskCache()->PdaShared();
      for (bool constrained : {false, true}) {
        EngineOptions options;
        options.schedule =
            constrained ? GrammarSchedule::kOverlap : GrammarSchedule::kNone;
        options.time_scale = 0.0;  // accuracy only; no GPU simulation needed
        options.max_new_tokens = 256;
        engine::ServingEngine eng(options, llm);
        EngineRequest request;
        if (constrained) request.decoder = factory.NewDecoder();
        request.target_text = task.canonical_answer.Dump();
        request.seed = static_cast<std::uint64_t>(i) * 31 + 7;
        auto result = eng.RunBatch({request});
        // Correct = complete, schema-conforming JSON.
        matcher::GrammarMatcher checker(pda_for_check);
        bool ok = result.requests[0].finished_by_eos &&
                  checker.AcceptString(result.requests[0].output_text) &&
                  checker.CanTerminate();
        if (constrained) {
          valid_with += ok ? 1 : 0;
        } else {
          valid_without += ok ? 1 : 0;
        }
      }
    }
    PrintRow({"Function calling",
              Fmt(100.0 * valid_without / num_tasks, 0) + "%",
              Fmt(100.0 * valid_with / num_tasks, 0) + "%"},
             28);
  }

  // --- XML code generation ---------------------------------------------------
  {
    engine::MockLlm llm(info, {.derail_probability = 0.006, .seed = 72});
    auto xml_grammar = grammar::BuiltinXmlGrammar();
    auto pda = pda::CompiledGrammar::Compile(xml_grammar);
    auto docs = datasets::GenerateXmlDocuments(num_tasks, 62, 2);
    DecoderFactory factory(EngineKind::kXGrammar, info);
    factory.PrepareGrammar(xml_grammar);
    int valid_without = 0;
    int valid_with = 0;
    for (int i = 0; i < num_tasks; ++i) {
      for (bool constrained : {false, true}) {
        EngineOptions options;
        options.schedule =
            constrained ? GrammarSchedule::kOverlap : GrammarSchedule::kNone;
        options.time_scale = 0.0;
        options.max_new_tokens = 320;
        engine::ServingEngine eng(options, llm);
        EngineRequest request;
        if (constrained) request.decoder = factory.NewDecoder();
        request.target_text = docs[static_cast<std::size_t>(i)];
        request.seed = static_cast<std::uint64_t>(i) * 17 + 3;
        auto result = eng.RunBatch({request});
        matcher::GrammarMatcher checker(pda);
        bool ok = result.requests[0].finished_by_eos &&
                  checker.AcceptString(result.requests[0].output_text) &&
                  checker.CanTerminate();
        if (constrained) {
          valid_with += ok ? 1 : 0;
        } else {
          valid_without += ok ? 1 : 0;
        }
      }
    }
    PrintRow({"XML code generation",
              Fmt(100.0 * valid_without / num_tasks, 0) + "%",
              Fmt(100.0 * valid_with / num_tasks, 0) + "%"},
             28);
  }
  return 0;
}
