// Figure 11 (Appendix B) + speculative decoding: jump-forward decoding on the
// JSON Schema task, batch 1, RTX-4090-class profile, plus the transactional
// multi-token verify/commit protocol driving grammar-constrained speculative
// decoding in the same engine.
//
// Paper reference (ms/token): Outlines 44.2 -> 31.5 with jump-forward;
// XGrammar 6.8 -> 5.4 with jump-forward.
// Expected shape: jump-forward lowers TPOT for both engines (forced spans of
// the schema cost no decode steps); XGrammar+jump-forward is the fastest;
// speculative admission multiplies tokens/step further (committed draft
// prefix + 1 correction token + jump-forwarded spans per step) with zero
// steady-state allocations; a single k-token VerifyTokenDraft transaction is
// measurably cheaper than the k mask fills the sequential protocol pays.
//
// Emits BENCH_jumpforward.json (override with XGR_BENCH_JSON). Knobs:
// XGR_VOCAB, XGR_BENCH_STEPS, XGR_BENCH_WARMUP, XGR_SPEC_DRAFT (draft length
// k, default 6), XGR_SPEC_STEPS (spec-dec max_new_tokens, default 96).
#include <algorithm>
#include <fstream>

#include "baselines/factory.h"
#include "baselines/constrained_decoder.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "json/json.h"
#include "support/alloc_hook.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;

std::uint64_t CountAllocs() {
  return static_cast<std::uint64_t>(support::AllocHookCount());
}

// --- Section 1: jump-forward on/off, per engine ------------------------------

struct JumpForwardRun {
  double tpot_ms = 0.0;
  std::int32_t jump_tokens = 0;
  std::int32_t retokenized_tokens = 0;
  std::int64_t decode_steps = 0;
};

JumpForwardRun RunJumpForward(
    EngineKind kind, bool jump_forward,
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
    const engine::MockLlm& llm, const datasets::SchemaTask& task) {
  DecoderFactory factory(kind, info);
  factory.PrepareSchema(task.schema);
  EngineOptions options;
  options.profile = engine::ModelProfile::Llama31_8B_RTX4090();
  options.schedule = kind == EngineKind::kXGrammar ? GrammarSchedule::kOverlap
                                                   : GrammarSchedule::kSerial;
  options.jump_forward = jump_forward;
  options.max_new_tokens = MaxSteps();
  engine::ServingEngine eng(options, llm);
  EngineRequest request;
  request.decoder = factory.NewDecoder();
  request.target_text = task.canonical_answer.Dump();
  engine::BatchResult batch = eng.RunBatch({request});
  JumpForwardRun run;
  run.tpot_ms = batch.TpotMs();
  run.jump_tokens = batch.requests[0].jump_forward_tokens;
  run.retokenized_tokens = batch.requests[0].retokenized_tokens;
  run.decode_steps = batch.decode_steps;
  return run;
}

// --- Section 2: speculative admission (engine e2e) ---------------------------

struct SpecRun {
  double noise = 0.0;
  std::int32_t draft_tokens = 0;
  double tpot_ms = 0.0;
  double acceptance_rate = 0.0;  // committed / drafted
  double tokens_per_step = 0.0;  // total tokens (incl. jump-forward) / steps
  std::int64_t drafted = 0;
  std::int64_t committed = 0;
  std::int64_t spec_steps = 0;
  std::int64_t jump_tokens = 0;
  std::int64_t total_tokens = 0;
  std::int64_t decode_steps = 0;
  double allocs_per_step = -1.0;  // steady-state; -1 = not measured
};

SpecRun RunSpeculative(double noise, std::int32_t draft_tokens,
                       bool jump_forward,
                       const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
                       const engine::MockLlm& llm,
                       const datasets::SchemaTask& task) {
  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(task.schema);
  EngineOptions options;
  options.profile = engine::ModelProfile::Llama31_8B_RTX4090();
  options.schedule = GrammarSchedule::kOverlap;
  options.jump_forward = jump_forward;
  options.max_new_tokens = EnvInt("XGR_SPEC_STEPS", 96);
  options.alloc_count_fn = &CountAllocs;
  options.speculation.enabled = true;
  options.speculation.draft_tokens = draft_tokens;
  options.speculation.draft_noise = noise;
  engine::ServingEngine eng(options, llm);
  EngineRequest request;
  request.decoder = factory.NewDecoder();
  request.target_text = task.canonical_answer.Dump();
  // Warm-up run: the zero-allocation guarantee (like the batch decode path)
  // holds for steady-state decoding over warmed decoders — lazy scratch,
  // matcher pools, and the adaptive mask cache populate on the first pass.
  eng.RunBatch({request});
  engine::BatchResult batch = eng.RunBatch({request});
  const engine::RequestResult& r = batch.requests[0];
  SpecRun run;
  run.noise = noise;
  run.draft_tokens = draft_tokens;
  run.tpot_ms = batch.TpotMs();
  run.drafted = r.drafted_tokens;
  run.committed = r.draft_committed_tokens;
  run.spec_steps = r.spec_steps;
  run.jump_tokens = r.jump_forward_tokens;
  run.total_tokens = batch.total_tokens;
  run.decode_steps = batch.decode_steps;
  run.acceptance_rate =
      run.drafted > 0
          ? static_cast<double>(run.committed) / static_cast<double>(run.drafted)
          : 0.0;
  run.tokens_per_step =
      run.decode_steps > 0
          ? static_cast<double>(run.total_tokens) /
                static_cast<double>(run.decode_steps)
          : 0.0;
  if (batch.steady_allocs >= 0 && batch.steady_steps > 0) {
    run.allocs_per_step = static_cast<double>(batch.steady_allocs) /
                          static_cast<double>(batch.steady_steps);
  }
  return run;
}

// --- Section 3: verify micro (one transaction vs k sequential fills) ---------

struct VerifyMicro {
  double verify_us = 0.0;      // VerifyDraft(k) + CommitDraft(0)
  double sequential_us = 0.0;  // k x (FillNextTokenBitmask + AcceptToken) + rollback
  std::int64_t transactions = 0;
  double speedup = 0.0;
};

VerifyMicro RunVerifyMicro(
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
    const datasets::SchemaTask& task, std::int32_t k) {
  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(task.schema);
  const tokenizer::TokenTrie& trie = GetTrie(info);
  std::vector<std::int32_t> tokens =
      tokenizer::GreedyTokenize(trie, task.canonical_answer.Dump());
  auto verify_ptr = factory.NewDecoder();
  auto sequential_ptr = factory.NewDecoder();
  baselines::ConstrainedDecoder& verify_decoder = *verify_ptr;
  baselines::ConstrainedDecoder& sequential_decoder = *sequential_ptr;
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  baselines::DraftVerifyResult result;
  StatAccumulator verify_stat;
  StatAccumulator sequential_stat;

  // One lap = walk the document; at each position run one measured
  // transaction over the next k true tokens, abort it, then advance by one
  // token. Warm-up laps populate the memo tables and workspaces on both
  // decoders so the measured lap compares steady states.
  auto lap = [&](bool measured) {
    verify_decoder.Reset();
    sequential_decoder.Reset();
    for (std::size_t position = 0; position + 1 < tokens.size(); ++position) {
      const std::int32_t chunk = static_cast<std::int32_t>(
          std::min<std::size_t>(static_cast<std::size_t>(k),
                                tokens.size() - position));
      {
        Timer timer;
        verify_decoder.VerifyDraft(tokens.data() + position, chunk, &result,
                                   nullptr);
        bool ok = verify_decoder.CommitDraft(0);
        if (measured) verify_stat.Add(timer.ElapsedMicros());
        if (!ok || result.accepted != chunk) return false;
      }
      {
        Timer timer;
        std::int32_t accepted = 0;
        for (std::int32_t i = 0; i < chunk; ++i) {
          sequential_decoder.FillNextTokenBitmask(&mask);
          if (!sequential_decoder.AcceptToken(
                  tokens[position + static_cast<std::size_t>(i)])) {
            break;
          }
          ++accepted;
        }
        bool ok = sequential_decoder.RollbackTokens(accepted);
        if (measured) sequential_stat.Add(timer.ElapsedMicros());
        if (!ok || accepted != chunk) return false;
      }
      if (!verify_decoder.AcceptToken(tokens[position]) ||
          !sequential_decoder.AcceptToken(tokens[position])) {
        return false;
      }
    }
    return true;
  };
  for (std::int32_t warm = 0; warm < std::max(WarmupLaps(), 1); ++warm) {
    if (!lap(false)) return {};
  }
  if (!lap(true)) return {};

  VerifyMicro micro;
  micro.verify_us = verify_stat.Mean();
  micro.sequential_us = sequential_stat.Mean();
  micro.transactions = static_cast<std::int64_t>(verify_stat.Count());
  micro.speedup =
      micro.verify_us > 0.0 ? micro.sequential_us / micro.verify_us : 0.0;
  return micro;
}

// --- Section 4: verify/sequential identity audit -----------------------------

struct IdentityAudit {
  std::int64_t transactions = 0;
  std::int64_t accepted_mismatches = 0;
  std::int64_t mask_mismatches = 0;
};

IdentityAudit RunIdentityAudit(
    const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
    const datasets::SchemaTask& task, std::int32_t k) {
  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(task.schema);
  const tokenizer::TokenTrie& trie = GetTrie(info);
  std::vector<std::int32_t> tokens =
      tokenizer::GreedyTokenize(trie, task.canonical_answer.Dump());
  auto verify_ptr = factory.NewDecoder();
  auto oracle_ptr = factory.NewDecoder();
  baselines::ConstrainedDecoder& verify_decoder = *verify_ptr;
  baselines::ConstrainedDecoder& oracle = *oracle_ptr;
  DynamicBitset verify_mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset oracle_mask(static_cast<std::size_t>(info->VocabSize()));
  std::vector<std::int32_t> draft(static_cast<std::size_t>(k));
  Rng rng(101);
  IdentityAudit audit;

  for (std::size_t position = 0; position + 1 < tokens.size(); ++position) {
    const std::int32_t chunk = static_cast<std::int32_t>(std::min<std::size_t>(
        static_cast<std::size_t>(k), tokens.size() - position));
    for (std::int32_t i = 0; i < chunk; ++i) {
      std::int32_t token = tokens[position + static_cast<std::size_t>(i)];
      if (rng.NextBool(0.25)) {
        token = static_cast<std::int32_t>(
            rng.NextBounded(static_cast<std::uint64_t>(info->VocabSize())));
      }
      draft[static_cast<std::size_t>(i)] = token;
    }
    ++audit.transactions;
    baselines::DraftVerifyResult result;
    verify_decoder.VerifyDraft(draft.data(), chunk, &result, &verify_mask);
    // The oracle is the exact per-token protocol the transaction replaces.
    std::int32_t oracle_accepted = 0;
    for (std::int32_t i = 0; i < chunk; ++i) {
      oracle.FillNextTokenBitmask(&oracle_mask);
      const std::int32_t token = draft[static_cast<std::size_t>(i)];
      if (token < 0 || static_cast<std::size_t>(token) >= oracle_mask.Size() ||
          !oracle_mask.Test(static_cast<std::size_t>(token)) ||
          token == info->EosId() || !oracle.AcceptToken(token)) {
        break;
      }
      ++oracle_accepted;
    }
    if (oracle_accepted == chunk) oracle.FillNextTokenBitmask(&oracle_mask);
    if (result.accepted != oracle_accepted) ++audit.accepted_mismatches;
    if (!(verify_mask == oracle_mask)) ++audit.mask_mismatches;
    // Abort both transactions and advance one true token in lockstep.
    verify_decoder.CommitDraft(0);
    oracle.RollbackTokens(oracle_accepted);
    verify_decoder.AcceptToken(tokens[position]);
    oracle.AcceptToken(tokens[position]);
  }
  return audit;
}

}  // namespace

int main() {
  AllocCountFn() = &xgr::support::AllocHookCount;
  PrintHeader(
      "Figure 11: jump-forward decoding + speculative verify/commit, JSON "
      "Schema, batch 1\npaper: Outlines 44.2 -> 31.5 w/ JF; XGrammar 6.8 -> "
      "5.4 w/ JF (ms/token)");
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto tasks = datasets::GenerateSchemaTasks(1, 83);
  const datasets::SchemaTask& task = tasks[0];
  const std::int32_t draft_k = EnvInt("XGR_SPEC_DRAFT", 6);

  // Section 1: jump-forward on/off per engine.
  PrintRow({"engine", "w/o jump-forward", "w/ jump-forward", "jump tokens"}, 24);
  json::Array jf_rows;
  for (EngineKind kind : {EngineKind::kOutlines, EngineKind::kXGrammar}) {
    JumpForwardRun off = RunJumpForward(kind, false, info, llm, task);
    JumpForwardRun on = RunJumpForward(kind, true, info, llm, task);
    PrintRow({baselines::EngineKindName(kind), Fmt(off.tpot_ms, 1),
              Fmt(on.tpot_ms, 1), std::to_string(on.jump_tokens)},
             24);
    json::Object row;
    row["engine"] = baselines::EngineKindName(kind);
    row["tpot_ms_no_jf"] = off.tpot_ms;
    row["tpot_ms_jf"] = on.tpot_ms;
    row["jump_tokens"] = on.jump_tokens;
    row["retokenized_tokens"] = on.retokenized_tokens;
    row["decode_steps_no_jf"] = off.decode_steps;
    row["decode_steps_jf"] = on.decode_steps;
    jf_rows.push_back(json::Value(std::move(row)));
  }

  // Section 2: speculative admission, XGrammar engine, jump-forward fused.
  std::printf("\nspeculative admission (XGrammar + jump-forward, k=%d):\n",
              draft_k);
  PrintRow({"draft noise", "tokens/step", "acceptance", "tpot ms",
            "allocs/step"},
           16);
  json::Array spec_rows;
  for (double noise : {0.0, 0.1, 0.2}) {
    SpecRun run = RunSpeculative(noise, draft_k, true, info, llm, task);
    PrintRow({Fmt(noise, 2), Fmt(run.tokens_per_step, 2),
              Fmt(100.0 * run.acceptance_rate, 1) + "%", Fmt(run.tpot_ms, 2),
              run.allocs_per_step < 0 ? "n/a" : Fmt(run.allocs_per_step, 2)},
             16);
    json::Object row;
    row["draft_noise"] = run.noise;
    row["draft_tokens"] = run.draft_tokens;
    row["tpot_ms"] = run.tpot_ms;
    row["acceptance_rate"] = run.acceptance_rate;
    row["tokens_per_step"] = run.tokens_per_step;
    row["drafted"] = run.drafted;
    row["committed"] = run.committed;
    row["spec_steps"] = run.spec_steps;
    row["jump_tokens"] = run.jump_tokens;
    row["total_tokens"] = run.total_tokens;
    row["decode_steps"] = run.decode_steps;
    row["allocs_per_step"] = run.allocs_per_step;
    spec_rows.push_back(json::Value(std::move(row)));
  }

  // Pure-speculation allocation audit: jump-forward off isolates the
  // verify/commit protocol (the jump-forward path itself builds strings and
  // retokenizes, which predates and is orthogonal to drafting). Gate: zero
  // steady-state allocations per step.
  SpecRun alloc_audit = RunSpeculative(0.1, draft_k, false, info, llm, task);
  std::printf(
      "\npure-spec alloc audit (jump-forward off, noise 0.10): %.2f "
      "allocs/step over %lld steady steps\n",
      alloc_audit.allocs_per_step,
      static_cast<long long>(alloc_audit.decode_steps));

  // Section 3: one verify transaction vs k sequential mask fills.
  VerifyMicro micro = RunVerifyMicro(info, task, draft_k);
  std::printf(
      "\nverify micro (k=%d): one transaction %.2f us vs sequential %.2f us "
      "(%.2fx, %lld transactions)\n",
      draft_k, micro.verify_us, micro.sequential_us, micro.speedup,
      static_cast<long long>(micro.transactions));

  // Section 4: bit-identity audit against the sequential protocol.
  IdentityAudit audit = RunIdentityAudit(info, task, draft_k);
  std::printf(
      "verify identity: %lld transactions, %lld accepted mismatches, %lld "
      "mask mismatches\n",
      static_cast<long long>(audit.transactions),
      static_cast<long long>(audit.accepted_mismatches),
      static_cast<long long>(audit.mask_mismatches));

  json::Object doc;
  doc["bench"] = "fig11_jumpforward";
  doc["vocab"] = VocabSize();
  doc["max_steps"] = MaxSteps();
  doc["warmup_laps"] = WarmupLaps();
  doc["draft_tokens"] = draft_k;
  doc["jump_forward"] = json::Value(std::move(jf_rows));
  doc["speculative"] = json::Value(std::move(spec_rows));
  {
    json::Object a;
    a["draft_noise"] = alloc_audit.noise;
    a["draft_tokens"] = alloc_audit.draft_tokens;
    a["acceptance_rate"] = alloc_audit.acceptance_rate;
    a["tokens_per_step"] = alloc_audit.tokens_per_step;
    a["allocs_per_step"] = alloc_audit.allocs_per_step;
    a["decode_steps"] = alloc_audit.decode_steps;
    doc["spec_alloc_audit"] = json::Value(std::move(a));
  }
  {
    json::Object m;
    m["draft_tokens"] = draft_k;
    m["verify_us"] = micro.verify_us;
    m["sequential_us"] = micro.sequential_us;
    m["speedup"] = micro.speedup;
    m["transactions"] = micro.transactions;
    doc["verify_micro"] = json::Value(std::move(m));
  }
  {
    json::Object a;
    a["transactions"] = audit.transactions;
    a["accepted_mismatches"] = audit.accepted_mismatches;
    a["mask_mismatches"] = audit.mask_mismatches;
    doc["verify_identity"] = json::Value(std::move(a));
  }
  const char* json_path = std::getenv("XGR_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_jumpforward.json";
  std::ofstream out(path);
  out << json::Value(std::move(doc)).Dump(2) << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
