// Figure 11 (Appendix B): jump-forward decoding on the JSON Schema task,
// SGLang engine, batch 1, RTX-4090-class profile.
//
// Paper reference (ms/token): Outlines 44.2 -> 31.5 with jump-forward;
// XGrammar 6.8 -> 5.4 with jump-forward.
// Expected shape: jump-forward lowers TPOT for both engines (forced spans of
// the schema cost no decode steps); XGrammar+jump-forward is the fastest.
#include "baselines/factory.h"
#include "bench/bench_common.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"

namespace {

using namespace xgr;             // NOLINT
using namespace xgr::benchutil;  // NOLINT
using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;

double Run(EngineKind kind, bool jump_forward,
           const std::shared_ptr<const tokenizer::TokenizerInfo>& info,
           const engine::MockLlm& llm, const datasets::SchemaTask& task) {
  DecoderFactory factory(kind, info);
  factory.PrepareSchema(task.schema);
  EngineOptions options;
  options.profile = engine::ModelProfile::Llama31_8B_RTX4090();
  options.schedule = kind == EngineKind::kXGrammar ? GrammarSchedule::kOverlap
                                                   : GrammarSchedule::kSerial;
  options.jump_forward = jump_forward;
  options.max_new_tokens = 48;
  engine::ServingEngine eng(options, llm);
  EngineRequest request;
  request.decoder = factory.NewDecoder();
  request.target_text = task.canonical_answer.Dump();
  return eng.RunBatch({request}).TpotMs();
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 11: jump-forward decoding, JSON Schema, batch 1 (ms/token)\n"
      "paper: Outlines 44.2 -> 31.5 w/ JF; XGrammar 6.8 -> 5.4 w/ JF");
  auto info = GetTokenizer();
  engine::MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto tasks = datasets::GenerateSchemaTasks(1, 83);

  PrintRow({"engine", "w/o jump-forward", "w/ jump-forward"}, 24);
  for (EngineKind kind : {EngineKind::kOutlines, EngineKind::kXGrammar}) {
    PrintRow({baselines::EngineKindName(kind),
              Fmt(Run(kind, false, info, llm, tasks[0]), 1),
              Fmt(Run(kind, true, info, llm, tasks[0]), 1)},
             24);
  }
  return 0;
}
