// Tests for the continuous-batching serving mode (iteration-level
// scheduling): admission respects arrival steps and capacity, every request
// completes with grammar-valid output, metrics are internally consistent,
// and the mode agrees with static batching on what it generates.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "json/json.h"
#include "runtime/compile_service.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr::engine {
namespace {

using baselines::DecoderFactory;
using baselines::EngineKind;

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2500, 19}));
  return info;
}

ContinuousRequest MakeArrival(std::shared_ptr<baselines::ConstrainedDecoder> decoder,
                              std::string target, std::int64_t arrival_step,
                              std::uint64_t seed = 1) {
  ContinuousRequest r;
  r.request.decoder = std::move(decoder);
  r.request.target_text = std::move(target);
  r.request.seed = seed;
  r.arrival_step = arrival_step;
  return r;
}

EngineOptions FastOptions() {
  EngineOptions options;
  options.time_scale = 0.0;
  options.max_new_tokens = 200;
  return options;
}

TEST(ContinuousBatching, AllRequestsCompleteWithValidOutput) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto tasks = datasets::GenerateSchemaTasks(6, 31);

  std::vector<ContinuousRequest> stream;
  std::vector<std::unique_ptr<DecoderFactory>> factories;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    factories.push_back(
        std::make_unique<DecoderFactory>(EngineKind::kXGrammar, info));
    factories.back()->PrepareSchema(tasks[i].schema);
    stream.push_back(MakeArrival(factories.back()->NewDecoder(),
                                 tasks[i].canonical_answer.Dump(),
                                 static_cast<std::int64_t>(i) * 3,
                                 static_cast<std::uint64_t>(i) + 1));
  }

  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result = engine.RunContinuous(stream, /*max_batch_size=*/3);

  ASSERT_EQ(result.requests.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const ContinuousRequestResult& r = result.requests[i];
    EXPECT_EQ(r.result.output_text, tasks[i].canonical_answer.Dump());
    EXPECT_TRUE(r.result.finished_by_eos);
    EXPECT_TRUE(json::IsValid(r.result.output_text));
  }
  EXPECT_GT(result.total_tokens, 0);
  EXPECT_GT(result.makespan_ms, 0.0);
  EXPECT_GT(result.ThroughputTokensPerSec(), 0.0);
}

TEST(ContinuousBatching, AdmissionRespectsArrivalSteps) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});

  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeArrival(nullptr, "[1,2,3]", 0));
  stream.push_back(MakeArrival(nullptr, "[4,5,6]", 7));
  stream.push_back(MakeArrival(nullptr, "[7,8,9]", 50));  // after idle gap

  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result = engine.RunContinuous(stream, 8);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const ContinuousRequestResult& r = result.requests[i];
    EXPECT_GE(r.admitted_step, stream[i].arrival_step) << i;
    EXPECT_GE(r.first_token_step, r.admitted_step) << i;
    EXPECT_GE(r.finish_step, r.first_token_step) << i;
    EXPECT_EQ(r.result.output_text, stream[i].request.target_text);
  }
  // The third request arrived long after the first two finished; the engine
  // must have idled up to its arrival step.
  EXPECT_GE(result.requests[2].admitted_step, 50);
}

TEST(ContinuousBatching, CapacityBoundsConcurrency) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});

  // Five simultaneous arrivals, capacity 2: later requests must be admitted
  // strictly after earlier ones finish (FIFO within equal arrival steps).
  std::vector<ContinuousRequest> stream;
  for (int i = 0; i < 5; ++i) {
    stream.push_back(MakeArrival(nullptr, "[1,2,3,4,5]", 0,
                                 static_cast<std::uint64_t>(i) + 1));
  }
  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result = engine.RunContinuous(stream, 2);

  std::vector<std::int64_t> admissions;
  for (const auto& r : result.requests) admissions.push_back(r.admitted_step);
  std::vector<std::int64_t> sorted = admissions;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(admissions, sorted);        // FIFO admission
  EXPECT_EQ(sorted[0], 0);
  EXPECT_EQ(sorted[1], 0);              // two slots fill immediately
  EXPECT_GT(sorted[2], 0);              // the rest wait for capacity
  // No more than two requests can ever overlap: request k+2 is admitted at
  // or after request k finished.
  std::vector<std::int64_t> finishes;
  for (const auto& r : result.requests) finishes.push_back(r.finish_step);
  std::sort(finishes.begin(), finishes.end());
  for (std::size_t k = 0; k + 2 < sorted.size(); ++k) {
    EXPECT_GE(sorted[k + 2], finishes[k]);
  }
}

TEST(ContinuousBatching, MatchesStaticBatchOutputs) {
  // With simultaneous arrival and capacity >= n, continuous batching
  // degenerates to the static batch: identical outputs per request.
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.1, .seed = 6});
  auto tasks = datasets::GenerateSchemaTasks(1, 33);

  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(tasks[0].schema);

  EngineOptions options = FastOptions();
  ServingEngine engine(options, llm);

  std::vector<EngineRequest> batch;
  std::vector<ContinuousRequest> stream;
  for (int i = 0; i < 3; ++i) {
    EngineRequest r;
    r.decoder = factory.NewDecoder();
    r.target_text = tasks[0].canonical_answer.Dump();
    r.seed = static_cast<std::uint64_t>(i) * 17 + 3;
    batch.push_back(r);
    ContinuousRequest c;
    c.request.decoder = factory.NewDecoder();
    c.request.target_text = r.target_text;
    c.request.seed = r.seed;
    c.arrival_step = 0;
    stream.push_back(c);
  }
  BatchResult static_result = engine.RunBatch(batch);
  ContinuousResult continuous_result = engine.RunContinuous(stream, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(continuous_result.requests[static_cast<std::size_t>(i)].result.output_text,
              static_result.requests[static_cast<std::size_t>(i)].output_text)
        << i;
  }
}

TEST(ContinuousBatching, JumpForwardWorksPerSlot) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  const char* schema_text = R"({"type":"object",
    "properties":{"very_long_property_name_here":{"type":"integer"}},
    "required":["very_long_property_name_here"],"additionalProperties":false})";
  json::ParseResult schema = json::Parse(schema_text);
  ASSERT_TRUE(schema.ok());
  json::Value answer(json::Object{{"very_long_property_name_here", json::Value(9)}});

  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(*schema.value);

  EngineOptions options = FastOptions();
  options.jump_forward = true;
  ServingEngine engine(options, llm);
  std::vector<ContinuousRequest> stream = {
      MakeArrival(factory.NewDecoder(), answer.Dump(), 0),
      MakeArrival(factory.NewDecoder(), answer.Dump(), 2, 7),
  };
  ContinuousResult result = engine.RunContinuous(stream, 2);
  for (const auto& r : result.requests) {
    EXPECT_EQ(r.result.output_text, answer.Dump());
    EXPECT_GT(r.result.jump_forward_tokens, 0);
  }
  // Forced spans cost no decode steps: fewer iterations than emitted tokens.
  EXPECT_LT(result.decode_steps, result.total_tokens);
}

// --- async grammar admission (runtime::CompileService integration) ----------

runtime::CompileJob SchemaJob(const json::Value& schema) {
  runtime::CompileJob job;
  job.kind = runtime::GrammarKind::kJsonSchema;
  job.source = schema.Dump();
  return job;
}

ContinuousRequest MakeAsyncArrival(std::shared_ptr<runtime::CompileTicket> ticket,
                                   std::string target, std::int64_t arrival_step,
                                   std::uint64_t seed = 1) {
  ContinuousRequest r;
  r.pending_grammar = std::move(ticket);
  r.request.target_text = std::move(target);
  r.request.seed = seed;
  r.arrival_step = arrival_step;
  return r;
}

TEST(ContinuousBatching, DeferredAdmissionOverlapsCompileWithDecode) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto tasks = datasets::GenerateSchemaTasks(1, 41);

  runtime::CompileService service(info);
  auto ticket = std::make_shared<runtime::CompileTicket>(
      service.Submit(SchemaJob(tasks[0].schema)));

  // A warm unconstrained request decodes from step 0; the cold request's
  // schema compiles on the service's workers meanwhile.
  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeArrival(nullptr, "[1,2,3,4,5,6,7,8]", 0));
  stream.push_back(MakeAsyncArrival(ticket, tasks[0].canonical_answer.Dump(), 0, 7));

  EngineOptions options = FastOptions();
  options.admission = CompileAdmission::kDeferred;
  ServingEngine engine(options, llm);
  ContinuousResult result = engine.RunContinuous(stream, 4);

  // Both complete with their intended outputs.
  EXPECT_EQ(result.requests[0].result.output_text, "[1,2,3,4,5,6,7,8]");
  EXPECT_EQ(result.requests[1].result.output_text,
            tasks[0].canonical_answer.Dump());
  EXPECT_TRUE(json::IsValid(result.requests[1].result.output_text));
  EXPECT_FALSE(result.requests[1].grammar_failed);

  // The warm request was never stalled: its first token landed on step 0
  // even though the cold grammar (a multi-ms build vs µs decode steps at
  // time_scale 0) was still compiling.
  EXPECT_EQ(result.requests[0].first_token_step, 0);
  // The cold request joined strictly after its grammar finished — and paid
  // its compile wait out-of-batch (recorded, non-negative).
  EXPECT_GE(result.requests[1].admitted_step, 0);
  EXPECT_GE(result.requests[1].compile_wait_ms, 0.0);
  EXPECT_GE(result.requests[1].first_token_step,
            result.requests[1].admitted_step);
}

TEST(ContinuousBatching, BlockingAdmissionAlsoCompletesButAdmitsAtArrival) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto tasks = datasets::GenerateSchemaTasks(1, 43);

  runtime::CompileService service(info);
  auto ticket = std::make_shared<runtime::CompileTicket>(
      service.Submit(SchemaJob(tasks[0].schema)));

  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeArrival(nullptr, "[9,8,7]", 0));
  stream.push_back(MakeAsyncArrival(ticket, tasks[0].canonical_answer.Dump(), 2, 7));

  EngineOptions options = FastOptions();
  options.admission = CompileAdmission::kBlocking;
  ServingEngine engine(options, llm);
  ContinuousResult result = engine.RunContinuous(stream, 4);

  EXPECT_EQ(result.requests[1].result.output_text,
            tasks[0].canonical_answer.Dump());
  EXPECT_FALSE(result.requests[1].grammar_failed);
  // Blocking admission joins exactly at the arrival step: the loop stalls
  // for the build instead of letting the request wait out-of-batch.
  EXPECT_EQ(result.requests[1].admitted_step, 2);
}

TEST(ContinuousBatching, AsyncAdmissionAloneInStreamCompletes) {
  // No warm request to keep the loop busy: the engine must idle-wait on the
  // compile (without spinning forever) and then decode normally.
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto tasks = datasets::GenerateSchemaTasks(1, 47);

  runtime::CompileService service(info);
  auto ticket = std::make_shared<runtime::CompileTicket>(
      service.Submit(SchemaJob(tasks[0].schema)));

  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result = engine.RunContinuous(
      {MakeAsyncArrival(ticket, tasks[0].canonical_answer.Dump(), 0)}, 2);
  EXPECT_EQ(result.requests[0].result.output_text,
            tasks[0].canonical_answer.Dump());
  EXPECT_GE(result.requests[0].compile_wait_ms, 0.0);
}

TEST(ContinuousBatching, CompileWaitDoesNotStarveLaterArrivals) {
  // Head-of-line request is stuck compiling; a request with a *later*
  // arrival step and a ready decoder must still be admitted and decode
  // while the compile runs — the step counter advances during compile-only
  // waits.
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto tasks = datasets::GenerateSchemaTasks(1, 53);

  runtime::CompileService service(info);
  auto ticket = std::make_shared<runtime::CompileTicket>(
      service.Submit(SchemaJob(tasks[0].schema)));

  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeAsyncArrival(ticket, tasks[0].canonical_answer.Dump(), 0));
  stream.push_back(MakeArrival(nullptr, "[5,6,7]", 3, 9));

  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result = engine.RunContinuous(stream, 2);

  EXPECT_EQ(result.requests[0].result.output_text,
            tasks[0].canonical_answer.Dump());
  EXPECT_EQ(result.requests[1].result.output_text, "[5,6,7]");
  // The later arrival overtook the compiling head (multi-ms build vs µs
  // steps at time_scale 0): it was admitted no later than the compiling
  // request.
  EXPECT_LE(result.requests[1].admitted_step, result.requests[0].admitted_step);
}

TEST(ContinuousBatching, FailedCompileDropsRequestWithoutHanging) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});

  runtime::CompileService service(info);
  runtime::CompileJob bad;
  bad.kind = runtime::GrammarKind::kJsonSchema;
  bad.source = "{\"type\": not json at all";
  auto ticket =
      std::make_shared<runtime::CompileTicket>(service.Submit(std::move(bad)));

  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeArrival(nullptr, "[1,2]", 0));
  stream.push_back(MakeAsyncArrival(ticket, "{\"x\":1}", 0, 5));

  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result = engine.RunContinuous(stream, 4);

  EXPECT_EQ(result.requests[0].result.output_text, "[1,2]");
  EXPECT_TRUE(result.requests[1].grammar_failed);
  EXPECT_TRUE(result.requests[1].result.output_text.empty());
  EXPECT_EQ(result.requests[1].admitted_step, -1);  // never joined the batch
}

TEST(ContinuousBatching, DroppedRequestCarriesCompileErrorAndStatus) {
  // Regression: a dropped request must be diagnosable, not just counted —
  // the compile ticket's structured code and human-readable error have to
  // survive into the ContinuousRequestResult.
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});

  runtime::CompileService service(info);
  runtime::CompileJob bad;
  bad.kind = runtime::GrammarKind::kEbnf;
  bad.source = "root ::= \"unterminated";
  auto ticket =
      std::make_shared<runtime::CompileTicket>(service.Submit(bad));
  ticket->WaitFor(60.0);
  const std::string compile_error = ticket->Error();
  ASSERT_FALSE(compile_error.empty());

  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeArrival(nullptr, "[1,2]", 0));
  stream.push_back(MakeAsyncArrival(ticket, "{\"x\":1}", 0, 5));

  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result = engine.RunContinuous(stream, 4);

  const ContinuousRequestResult& dropped = result.requests[1];
  EXPECT_TRUE(dropped.grammar_failed);
  EXPECT_EQ(dropped.status, StatusCode::kInvalidGrammar);
  EXPECT_EQ(dropped.error, compile_error);  // the message survived verbatim
  // The healthy co-scheduled request is untouched by the drop.
  EXPECT_EQ(result.requests[0].result.output_text, "[1,2]");
  EXPECT_EQ(result.requests[0].status, StatusCode::kOk);
  EXPECT_TRUE(result.requests[0].error.empty());
}

TEST(ContinuousBatching, CompileDeadlineDropsRequestWedgedOnASlowBuild) {
  // A single-worker service busy with a heavy build wedges the request's
  // grammar; the engine's compile deadline (simulated ms, tiny at
  // time_scale 0) must drop the request instead of waiting forever.
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});

  runtime::CompileServiceOptions service_options;
  service_options.num_threads = 1;
  runtime::CompileService service(info, service_options);
  runtime::CompileJob blocker;
  blocker.kind = runtime::GrammarKind::kBuiltinJson;
  runtime::CompileTicket hold = service.Submit(blocker);
  auto tasks = datasets::GenerateSchemaTasks(1, 59);
  auto ticket = std::make_shared<runtime::CompileTicket>(
      service.Submit(SchemaJob(tasks[0].schema)));

  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeArrival(nullptr, "[3,1,4,1,5,9,2,6]", 0));
  stream.push_back(MakeAsyncArrival(ticket, tasks[0].canonical_answer.Dump(), 0, 7));

  EngineOptions options = FastOptions();
  options.compile_deadline_ms = 1e-4;  // expires after any real iteration
  ServingEngine engine(options, llm);
  ContinuousResult result = engine.RunContinuous(stream, 4);

  const ContinuousRequestResult& dropped = result.requests[1];
  EXPECT_EQ(dropped.status, StatusCode::kDeadlineExceeded);
  EXPECT_NE(dropped.error.find("compile deadline"), std::string::npos);
  EXPECT_EQ(dropped.admitted_step, -1);
  EXPECT_GT(dropped.compile_wait_ms, 0.0);
  EXPECT_EQ(result.requests[0].result.output_text, "[3,1,4,1,5,9,2,6]");
}

TEST(ContinuousBatching, RequestDeadlineDropsBeforeAdmissionUnderCapacity) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});

  // Capacity 1: the long head request holds the only slot; the second
  // request's total deadline expires while it queues for capacity.
  std::vector<ContinuousRequest> stream;
  stream.push_back(
      MakeArrival(nullptr, "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]", 0));
  stream.push_back(MakeArrival(nullptr, "[42]", 0, 9));
  stream[1].deadline_ms = 1e-4;  // simulated ms; any real iteration exceeds it

  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result = engine.RunContinuous(stream, 1);

  EXPECT_EQ(result.requests[0].status, StatusCode::kOk);
  const ContinuousRequestResult& expired = result.requests[1];
  EXPECT_EQ(expired.status, StatusCode::kDeadlineExceeded);
  EXPECT_NE(expired.error.find("before admission"), std::string::npos);
  EXPECT_EQ(expired.admitted_step, -1);
  EXPECT_TRUE(expired.result.output_text.empty());
}

TEST(ContinuousBatching, MidDecodeDeadlineKeepsPartialOutput) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});

  const std::string target = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18]";
  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeArrival(nullptr, target, 0));
  stream[0].deadline_ms = 1e-4;  // expires during the first decode iteration

  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result = engine.RunContinuous(stream, 1);

  const ContinuousRequestResult& r = result.requests[0];
  EXPECT_EQ(r.status, StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.error.find("mid-decode"), std::string::npos);
  // The request was admitted, produced at least one token, and keeps its
  // partial output — a prefix of the target, not the whole thing.
  EXPECT_GE(r.admitted_step, 0);
  EXPECT_FALSE(r.result.output_text.empty());
  EXPECT_LT(r.result.output_text.size(), target.size());
  EXPECT_EQ(target.compare(0, r.result.output_text.size(),
                           r.result.output_text),
            0);
  EXPECT_FALSE(r.result.finished_by_eos);
}

// --- tenant-aware admission (multi-tenant serving) --------------------------

TEST(ContinuousBatching, InteractiveClassAdmitsBeforeBatchClass) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});

  // Same arrival step, one slot, batch-class request submitted first: the
  // interactive request must win the slot anyway.
  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeArrival(nullptr, "[1,2,3,4,5,6]", 0));
  stream.back().tenant = "bulk";
  stream.push_back(MakeArrival(nullptr, "[7,8]", 0, 3));
  stream.back().tenant = "live";

  EngineOptions options = FastOptions();
  options.tenant_policies["bulk"].cls = TenantClass::kBatch;
  options.tenant_policies["live"].cls = TenantClass::kInteractive;
  ServingEngine engine(options, llm);
  ContinuousResult result = engine.RunContinuous(stream, 1);

  EXPECT_EQ(result.requests[1].admitted_step, 0);
  EXPECT_GE(result.requests[0].admitted_step, result.requests[1].finish_step);
  EXPECT_EQ(result.requests[0].result.output_text, "[1,2,3,4,5,6]");
  EXPECT_EQ(result.requests[1].result.output_text, "[7,8]");

  // The usage table covers both tenants, sorted by name.
  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_EQ(result.tenants[0].first, "bulk");
  EXPECT_EQ(result.tenants[1].first, "live");
  EXPECT_EQ(result.tenants[0].second.submitted, 1);
  EXPECT_EQ(result.tenants[0].second.completed, 1);
  EXPECT_EQ(result.tenants[1].second.completed, 1);
  EXPECT_GT(result.tenants[0].second.total_tokens, 0);
}

TEST(ContinuousBatching, TenantSlotCapBoundsConcurrencyPerTenant) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});

  // Global capacity 4, but "bulk" may hold one slot at a time: its second
  // request waits for the first even though the batch has room.
  std::vector<ContinuousRequest> stream;
  stream.push_back(MakeArrival(nullptr, "[1,2,3,4,5]", 0));
  stream.back().tenant = "bulk";
  stream.push_back(MakeArrival(nullptr, "[6,7,8,9,10]", 0, 3));
  stream.back().tenant = "bulk";
  stream.push_back(MakeArrival(nullptr, "[11,12]", 0, 5));  // untenanted

  EngineOptions options = FastOptions();
  options.tenant_policies["bulk"].max_slots = 1;
  ServingEngine engine(options, llm);
  ContinuousResult result = engine.RunContinuous(stream, 4);

  EXPECT_EQ(result.requests[0].admitted_step, 0);
  EXPECT_GE(result.requests[1].admitted_step, result.requests[0].finish_step);
  EXPECT_EQ(result.requests[2].admitted_step, 0);  // other tenants unaffected
  for (const auto& r : result.requests) {
    EXPECT_EQ(r.status, StatusCode::kOk);
  }
  auto bulk = std::find_if(result.tenants.begin(), result.tenants.end(),
                           [](const auto& e) { return e.first == "bulk"; });
  ASSERT_NE(bulk, result.tenants.end());
  EXPECT_GT(bulk->second.policy_defers, 0);
}

TEST(ContinuousBatching, MaskHeavyBatchTenantCannotStarveInteractive) {
  // Regression for the cost-aware admission feedback: the measured
  // per-request mask-cost EWMA (the same signal the shard planner consumes)
  // must flow back into admission, so a batch tenant whose requests dominate
  // mask cost is deferred while interactive work runs — and admitted once
  // the interactive tenant drains.
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto tasks = datasets::GenerateSchemaTasks(1, 61);

  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(tasks[0].schema);

  std::vector<ContinuousRequest> stream;
  // Interactive tenant: unconstrained request decoding from step 0.
  stream.push_back(
      MakeArrival(nullptr, "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]", 0));
  stream.back().tenant = "live";
  // Batch tenant: grammar-heavy requests. The first admits at step 0 (no
  // measured cost yet); by the time the second arrives, the first's EWMA
  // holds 100% of the batch's measured mask cost, over the 50% cap.
  stream.push_back(MakeArrival(factory.NewDecoder(),
                               tasks[0].canonical_answer.Dump(), 0, 7));
  stream.back().tenant = "bulk";
  stream.push_back(MakeArrival(factory.NewDecoder(),
                               tasks[0].canonical_answer.Dump(), 2, 8));
  stream.back().tenant = "bulk";

  EngineOptions options = FastOptions();
  options.tenant_policies["bulk"].cls = TenantClass::kBatch;
  options.tenant_policies["bulk"].max_mask_cost_share = 0.5;
  ServingEngine engine(options, llm);
  ContinuousResult result = engine.RunContinuous(stream, 4);

  // Everyone still completes with valid output — deferral, not starvation.
  EXPECT_EQ(result.requests[0].result.output_text,
            "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]");
  EXPECT_EQ(result.requests[1].result.output_text,
            tasks[0].canonical_answer.Dump());
  EXPECT_EQ(result.requests[2].result.output_text,
            tasks[0].canonical_answer.Dump());

  // The interactive request was never held back by the mask-heavy tenant.
  EXPECT_EQ(result.requests[0].admitted_step, 0);
  EXPECT_EQ(result.requests[0].first_token_step, 0);
  // The second bulk request was deferred past its arrival step: it could
  // only join once the interactive tenant drained (cost-share gate releases
  // when no other tenant has active work).
  EXPECT_GE(result.requests[2].admitted_step,
            result.requests[0].finish_step);

  auto bulk = std::find_if(result.tenants.begin(), result.tenants.end(),
                           [](const auto& e) { return e.first == "bulk"; });
  ASSERT_NE(bulk, result.tenants.end());
  EXPECT_GT(bulk->second.policy_defers, 0);
  EXPECT_GT(bulk->second.peak_mask_cost_us, 0.0);
  EXPECT_EQ(bulk->second.completed, 2);
}

TEST(ContinuousBatching, UntenantedRunsLeaveUsageEmpty) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  ServingEngine engine(FastOptions(), llm);
  ContinuousResult result =
      engine.RunContinuous({MakeArrival(nullptr, "[1]", 0)}, 2);
  EXPECT_TRUE(result.tenants.empty());
  EXPECT_EQ(result.requests[0].status, StatusCode::kOk);
}

TEST(ContinuousBatching, RejectsDegenerateArguments) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  ServingEngine engine(FastOptions(), llm);
  EXPECT_THROW(engine.RunContinuous({}, 4), CheckError);
  EXPECT_THROW(
      engine.RunContinuous({MakeArrival(nullptr, "[1]", 0)}, 0), CheckError);
}

}  // namespace
}  // namespace xgr::engine
