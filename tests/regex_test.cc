// Tests for the regex engine: parsing, compilation to byte FSAs/DFAs, and
// full-match semantics over the supported subset.
#include <gtest/gtest.h>

#include "fsa/dfa.h"
#include "regex/regex.h"

namespace xgr::regex {
namespace {

struct MatchCase {
  const char* pattern;
  const char* input;
  bool matches;
};

class RegexMatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(RegexMatchTest, FullMatchSemantics) {
  auto [pattern, input, expected] = GetParam();
  fsa::Dfa dfa = CompileRegexToDfa(pattern);
  EXPECT_EQ(dfa.Accepts(input), expected)
      << "pattern=" << pattern << " input=" << input;
  // The NFA path must agree with the DFA path.
  fsa::Fsa nfa = CompileRegex(pattern);
  EXPECT_EQ(fsa::FsaAccepts(nfa, input), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Literals, RegexMatchTest,
    ::testing::Values(MatchCase{"abc", "abc", true}, MatchCase{"abc", "ab", false},
                      MatchCase{"abc", "abcd", false}, MatchCase{"", "", true},
                      MatchCase{"", "x", false}, MatchCase{"a\\.b", "a.b", true},
                      MatchCase{"a\\.b", "axb", false}));

INSTANTIATE_TEST_SUITE_P(
    Quantifiers, RegexMatchTest,
    ::testing::Values(MatchCase{"a*", "", true}, MatchCase{"a*", "aaaa", true},
                      MatchCase{"a+", "", false}, MatchCase{"a+", "aaa", true},
                      MatchCase{"a?b", "b", true}, MatchCase{"a?b", "ab", true},
                      MatchCase{"a?b", "aab", false},
                      MatchCase{"a{3}", "aaa", true}, MatchCase{"a{3}", "aa", false},
                      MatchCase{"a{2,4}", "aa", true}, MatchCase{"a{2,4}", "aaaa", true},
                      MatchCase{"a{2,4}", "aaaaa", false},
                      MatchCase{"a{2,}", "aaaaaaa", true},
                      MatchCase{"a{2,}", "a", false},
                      MatchCase{"(ab)*", "ababab", true},
                      MatchCase{"(ab)*", "aba", false}));

INSTANTIATE_TEST_SUITE_P(
    Classes, RegexMatchTest,
    ::testing::Values(MatchCase{"[abc]+", "cab", true}, MatchCase{"[abc]+", "cad", false},
                      MatchCase{"[a-z0-9]+", "a0z9", true},
                      MatchCase{"[^a-z]+", "ABZ09", true},
                      MatchCase{"[^a-z]", "m", false},
                      MatchCase{"\\d+", "0123", true}, MatchCase{"\\d+", "12a", false},
                      MatchCase{"\\w+", "az_09", true}, MatchCase{"\\w", "-", false},
                      MatchCase{"\\s", " ", true}, MatchCase{"\\s", "x", false},
                      MatchCase{"\\D", "x", true}, MatchCase{"\\D", "5", false},
                      MatchCase{"[\\d\\s]+", "1 2", true},
                      MatchCase{"[a\\-z]+", "a-z", true},
                      MatchCase{"[]a]+", "]a", true}));

INSTANTIATE_TEST_SUITE_P(
    Alternation, RegexMatchTest,
    ::testing::Values(MatchCase{"cat|dog", "cat", true},
                      MatchCase{"cat|dog", "dog", true},
                      MatchCase{"cat|dog", "cow", false},
                      MatchCase{"(a|b)c", "ac", true}, MatchCase{"(a|b)c", "bc", true},
                      MatchCase{"(a|b)c", "cc", false},
                      MatchCase{"a(b|)c", "ac", true},
                      MatchCase{"(?:x|y)z", "yz", true}));

INSTANTIATE_TEST_SUITE_P(
    AnchorsAndDot, RegexMatchTest,
    ::testing::Values(MatchCase{"^abc$", "abc", true},  // anchors are no-ops
                      MatchCase{".", "x", true}, MatchCase{".", "\n", false},
                      MatchCase{".*", "anything here", true},
                      MatchCase{"a.c", "abc", true}, MatchCase{"a.c", "ac", false}));

INSTANTIATE_TEST_SUITE_P(
    Unicode, RegexMatchTest,
    ::testing::Values(MatchCase{"é+", "éé", true}, MatchCase{"é", "e", false},
                      MatchCase{"[α-ω]+", "αβγ", true},
                      MatchCase{"[α-ω]", "z", false},
                      MatchCase{"\\u00e9", "é", true},
                      MatchCase{"\\u{1F600}", "😀", true},
                      MatchCase{".", "中", true}));

INSTANTIATE_TEST_SUITE_P(
    Escapes, RegexMatchTest,
    ::testing::Values(MatchCase{"\\n", "\n", true}, MatchCase{"\\t", "\t", true},
                      MatchCase{"\\x41", "A", true},
                      MatchCase{"a\\{2\\}", "a{2}", true},
                      MatchCase{"{2}", "{2}", true}  // bare brace: literal
                      ));

class RegexErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RegexErrorTest, ParseFails) {
  RegexParseResult result = ParseRegex(GetParam());
  EXPECT_FALSE(result.ok()) << GetParam();
  EXPECT_FALSE(result.error.empty());
}

INSTANTIATE_TEST_SUITE_P(Cases, RegexErrorTest,
                         ::testing::Values("(", ")", "a)", "[abc", "*a",
                                           "a\\", "[z-a]", "\\x4", "(?:a"));

TEST(RegexLeniency, StackedQuantifiersCollapse) {
  // `a**` parses as (a*)* == a*; some engines reject, we accept.
  fsa::Dfa dfa = CompileRegexToDfa("a**");
  EXPECT_TRUE(dfa.Accepts(""));
  EXPECT_TRUE(dfa.Accepts("aaa"));
  EXPECT_FALSE(dfa.Accepts("b"));
}

TEST(RegexLeniency, InvertedBoundsAreAnError) {
  // `{4,2}` is bounds-shaped but max < min: an error, as in PCRE/Python.
  // (Only non-bounds-shaped braces like `{x}` fall back to literals.)
  RegexParseResult result = ParseRegex("a{4,2}");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("out of order"), std::string::npos);
}

TEST(RegexLeniency, NonNumericBracesAreLiterals) {
  fsa::Dfa dfa = CompileRegexToDfa("a{x}");
  EXPECT_TRUE(dfa.Accepts("a{x}"));
  EXPECT_FALSE(dfa.Accepts("a"));
}

TEST(RegexRanges, NormalizeMergesAndSorts) {
  auto r = NormalizeRanges({{5, 9}, {1, 3}, {4, 4}, {20, 30}}, false);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].lo, 1u);
  EXPECT_EQ(r[0].hi, 9u);
  EXPECT_EQ(r[1].lo, 20u);
  EXPECT_EQ(r[1].hi, 30u);
}

TEST(RegexRanges, NegationComplements) {
  auto r = NormalizeRanges({{'b', 'y'}}, true);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].lo, 0u);
  EXPECT_EQ(r[0].hi, 'a');
  EXPECT_EQ(r[1].lo, 'z');
  EXPECT_EQ(r[1].hi, kMaxCodepoint);
}

TEST(RegexRanges, NegationOfEverythingIsEmpty) {
  auto r = NormalizeRanges({{0, kMaxCodepoint}}, true);
  EXPECT_TRUE(r.empty());
}

TEST(RegexDfa, CanReachAcceptPrunesDeadStates) {
  fsa::Dfa dfa = CompileRegexToDfa("ab|ac");
  std::int32_t s = dfa.Start();
  EXPECT_TRUE(dfa.CanReachAccept(s));
  s = dfa.Next(s, 'a');
  ASSERT_NE(s, fsa::Dfa::kDead);
  EXPECT_TRUE(dfa.CanReachAccept(s));
  EXPECT_EQ(dfa.Next(s, 'x'), fsa::Dfa::kDead);
}

TEST(RegexDfa, JsonStringPattern) {
  // The pattern used throughout the schema converter / baselines.
  fsa::Dfa dfa = CompileRegexToDfa(
      R"("(?:[^"\\\x00-\x1F]|\\["\\/bfnrt]|\\u[0-9a-fA-F]{4})*")");
  EXPECT_TRUE(dfa.Accepts(R"("hello")"));
  EXPECT_TRUE(dfa.Accepts(R"("")"));
  EXPECT_TRUE(dfa.Accepts(R"("a\"b\\c")"));
  EXPECT_TRUE(dfa.Accepts(R"("é")"));
  EXPECT_TRUE(dfa.Accepts("\"caf\xC3\xA9\""));  // raw UTF-8 inside
  EXPECT_FALSE(dfa.Accepts(R"("unterminated)"));
  EXPECT_FALSE(dfa.Accepts("\"ctrl\x01\""));
  EXPECT_FALSE(dfa.Accepts(R"("bad\q")"));
}

TEST(RegexDfa, NumberPattern) {
  fsa::Dfa dfa =
      CompileRegexToDfa(R"(-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?)");
  for (const char* ok : {"0", "-1", "10", "3.25", "-0.5", "1e9", "2E-3", "1.5e+10"}) {
    EXPECT_TRUE(dfa.Accepts(ok)) << ok;
  }
  for (const char* bad : {"01", "1.", ".5", "--1", "1e", "+1", ""}) {
    EXPECT_FALSE(dfa.Accepts(bad)) << bad;
  }
}

}  // namespace
}  // namespace xgr::regex
