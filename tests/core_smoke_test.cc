// End-to-end smoke tests for the core pipeline: grammar parsing, PDA
// compilation, byte matching, cache construction and mask generation.
#include <gtest/gtest.h>

#include "cache/mask_generator.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr {
namespace {

using grammar::BuiltinJsonGrammar;
using matcher::GrammarMatcher;
using pda::CompiledGrammar;
using pda::CompileOptions;

TEST(CoreSmoke, JsonGrammarParses) {
  grammar::Grammar g = BuiltinJsonGrammar();
  EXPECT_GT(g.NumRules(), 5);
  g.Validate();
}

TEST(CoreSmoke, JsonMatcherAcceptsValidDocuments) {
  auto pda = CompiledGrammar::Compile(BuiltinJsonGrammar());
  for (const char* doc :
       {R"({"a": 1, "b": [true, false, null]})", R"([])", R"(42)",
        R"(-3.5e+10)", R"("hello \"world\" é")", R"({"nested": {"x": []}})"}) {
    GrammarMatcher m(pda);
    EXPECT_TRUE(m.AcceptString(doc)) << doc;
    EXPECT_TRUE(m.CanTerminate()) << doc;
  }
}

TEST(CoreSmoke, JsonMatcherRejectsInvalidDocuments) {
  auto pda = CompiledGrammar::Compile(BuiltinJsonGrammar());
  for (const char* doc : {R"({,})", R"([1,])", R"(01)", R"("unterminated)",
                          R"(tru)", R"({"a" 1})"}) {
    GrammarMatcher m(pda);
    bool accepted = m.AcceptString(doc) && m.CanTerminate();
    EXPECT_FALSE(accepted) << doc;
  }
}

TEST(CoreSmoke, MaskMatchesBruteForce) {
  auto pda = CompiledGrammar::Compile(BuiltinJsonGrammar());
  auto vocab = tokenizer::BuildSyntheticVocab({.size = 2000, .seed = 7});
  auto info = std::make_shared<tokenizer::TokenizerInfo>(vocab);
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info, {});

  cache::MaskGenerator gen(cache);
  GrammarMatcher m(pda);
  ASSERT_TRUE(m.AcceptString(R"({"key": [1, 2)"));

  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  gen.FillNextTokenBitmask(&m, &mask);

  DynamicBitset brute(static_cast<std::size_t>(info->VocabSize()));
  cache::FillBitmaskBruteForce(&m, *info, &brute);

  EXPECT_EQ(mask.Count(), brute.Count());
  EXPECT_TRUE(mask == brute);
}

TEST(CoreSmoke, SchemaGrammarRoundTrip) {
  const char* schema = R"({
    "type": "object",
    "properties": {
      "name": {"type": "string"},
      "age": {"type": "integer"},
      "tags": {"type": "array", "items": {"type": "string"}}
    },
    "required": ["name", "age"],
    "additionalProperties": false
  })";
  grammar::Grammar g = grammar::JsonSchemaTextToGrammar(schema);
  auto pda = CompiledGrammar::Compile(g);
  GrammarMatcher m(pda);
  EXPECT_TRUE(m.AcceptString(R"({"age":30,"name":"Ada","tags":["x","y"]})"));
  EXPECT_TRUE(m.CanTerminate());
  GrammarMatcher m2(pda);
  EXPECT_FALSE(m2.AcceptString(R"({"age":"thirty")"));
}

}  // namespace
}  // namespace xgr
