// Batch-scale determinism: RunBatch and RunContinuous must produce
// bit-identical results across mask-team thread counts {1, 4, hardware},
// across kSerial vs kOverlap schedules, and across repeat runs with fixed
// seeds — on both the sparse and the dense-logits decode paths. This is the
// property that makes every future parallelism change reviewable: the
// cost-aware shard plan and the dynamic WorkerTeam claiming may move work
// between threads, but they must never move the OUTPUT.
//
// Also pins down the deterministic LPT shard planner itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "datasets/workloads.h"
#include "engine/mask_shard_planner.h"
#include "engine/serving_engine.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr::engine {
namespace {

using baselines::DecoderFactory;
using baselines::EngineKind;

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2500, 19}));
  return info;
}

// ---------------------------------------------------------------------------
// MaskShardPlanner
// ---------------------------------------------------------------------------

TEST(MaskShardPlanner, CoversEveryRequestExactlyOnce) {
  MaskShardPlanner planner;
  std::vector<float> costs{5.0f, 1.0f, 9.0f, 2.0f, 2.0f, 7.0f, 1.0f};
  planner.Plan(costs.data(), costs.size(), 3);
  ASSERT_EQ(planner.shard_count(), 3u);
  std::vector<int> seen(costs.size(), 0);
  for (std::size_t s = 0; s < planner.shard_count(); ++s) {
    for (std::size_t k = planner.ShardBegin(s); k < planner.ShardEnd(s); ++k) {
      std::int32_t req = planner.Items()[k];
      ASSERT_GE(req, 0);
      ASSERT_LT(req, static_cast<std::int32_t>(costs.size()));
      ++seen[req];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(MaskShardPlanner, IsAPureFunctionOfItsInputs) {
  std::vector<float> costs{3.5f, 3.5f, 0.0f, 12.0f, 1.0f, 1.0f, 1.0f, 8.0f};
  MaskShardPlanner a;
  MaskShardPlanner b;
  a.Plan(costs.data(), costs.size(), 4);
  // Perturb b with unrelated plans first: reused buffers must not leak.
  std::vector<float> other{1.0f, 2.0f};
  b.Plan(other.data(), other.size(), 2);
  b.Plan(costs.data(), costs.size(), 4);
  ASSERT_EQ(a.shard_count(), b.shard_count());
  for (std::size_t s = 0; s < a.shard_count(); ++s) {
    ASSERT_EQ(a.ShardBegin(s), b.ShardBegin(s));
    ASSERT_EQ(a.ShardEnd(s), b.ShardEnd(s));
    for (std::size_t k = a.ShardBegin(s); k < a.ShardEnd(s); ++k) {
      EXPECT_EQ(a.Items()[k], b.Items()[k]);
    }
  }
}

TEST(MaskShardPlanner, LptSplitsOneExpensiveRequestAwayFromTheCheapCrowd) {
  // One CFG-ish request at 100 µs plus 15 cheap 1 µs requests, 4 shards:
  // a naive even split (4 contiguous requests per shard) would put 3 cheap
  // requests behind the expensive one (load 103); LPT isolates it.
  std::vector<float> costs(16, 1.0f);
  costs[5] = 100.0f;
  MaskShardPlanner planner;
  planner.Plan(costs.data(), costs.size(), 4);
  double max_load = 0.0;
  std::size_t expensive_shard = 0;
  for (std::size_t s = 0; s < planner.shard_count(); ++s) {
    max_load = std::max(max_load, planner.ShardLoad(s));
    for (std::size_t k = planner.ShardBegin(s); k < planner.ShardEnd(s); ++k) {
      if (planner.Items()[k] == 5) expensive_shard = s;
    }
  }
  // The expensive request sits alone on its shard; makespan = 100, not 103.
  EXPECT_EQ(planner.ShardEnd(expensive_shard) -
                planner.ShardBegin(expensive_shard),
            1u);
  EXPECT_EQ(max_load, 100.0);
}

TEST(MaskShardPlanner, ClampsShardCountAndHandlesUniformCosts) {
  std::vector<float> costs{2.0f, 2.0f, 2.0f};
  MaskShardPlanner planner;
  planner.Plan(costs.data(), costs.size(), 16);  // clamped to n
  EXPECT_EQ(planner.shard_count(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(planner.ShardEnd(s) - planner.ShardBegin(s), 1u);
  }
  planner.Plan(costs.data(), 0, 4);
  EXPECT_EQ(planner.shard_count(), 1u);
  EXPECT_EQ(planner.ShardBegin(0), planner.ShardEnd(0));
}

// ---------------------------------------------------------------------------
// Engine determinism
// ---------------------------------------------------------------------------

struct Fingerprint {
  std::vector<std::vector<std::int32_t>> tokens;
  std::vector<std::string> texts;
  std::vector<std::int64_t> steps;  // finish/admission bookkeeping
  std::int64_t decode_steps = 0;
  std::int64_t total_tokens = 0;

  bool operator==(const Fingerprint& other) const {
    return tokens == other.tokens && texts == other.texts &&
           steps == other.steps && decode_steps == other.decode_steps &&
           total_tokens == other.total_tokens;
  }
};

struct Harness {
  std::shared_ptr<const tokenizer::TokenizerInfo> info = TestTokenizer();
  std::vector<datasets::SchemaTask> tasks;
  std::vector<std::unique_ptr<DecoderFactory>> factories;

  explicit Harness(int count) : tasks(datasets::GenerateSchemaTasks(count, 77)) {
    for (const auto& task : tasks) {
      factories.push_back(
          std::make_unique<DecoderFactory>(EngineKind::kXGrammar, info));
      factories.back()->PrepareSchema(task.schema);
    }
  }

  EngineOptions Options(GrammarSchedule schedule, std::int32_t mask_threads,
                        bool dense) const {
    EngineOptions options;
    options.time_scale = 0.0;
    options.max_new_tokens = 200;
    options.schedule = schedule;
    options.mask_threads = mask_threads;
    options.dense_logits = dense;
    return options;
  }

  Fingerprint RunBatchOnce(GrammarSchedule schedule, std::int32_t mask_threads,
                           bool dense) const {
    MockLlm llm(info, {.derail_probability = 0.25, .seed = 11});
    ServingEngine engine(Options(schedule, mask_threads, dense), llm);
    std::vector<EngineRequest> requests(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      requests[i].decoder = factories[i]->NewDecoder();
      requests[i].target_text = tasks[i].canonical_answer.Dump();
      requests[i].seed = i + 1;
    }
    BatchResult result = engine.RunBatch(requests);
    Fingerprint fp;
    fp.decode_steps = result.decode_steps;
    fp.total_tokens = result.total_tokens;
    for (const RequestResult& r : result.requests) {
      fp.tokens.push_back(r.token_ids);
      fp.texts.push_back(r.output_text);
      fp.steps.push_back(r.finished_by_eos ? 1 : 0);
    }
    return fp;
  }

  Fingerprint RunContinuousOnce(GrammarSchedule schedule,
                                std::int32_t mask_threads, bool dense) const {
    MockLlm llm(info, {.derail_probability = 0.25, .seed = 11});
    ServingEngine engine(Options(schedule, mask_threads, dense), llm);
    std::vector<ContinuousRequest> stream(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      stream[i].request.decoder = factories[i]->NewDecoder();
      stream[i].request.target_text = tasks[i].canonical_answer.Dump();
      stream[i].request.seed = i + 1;
      stream[i].arrival_step = static_cast<std::int64_t>(i) * 2;
    }
    ContinuousResult result =
        engine.RunContinuous(stream, /*max_batch_size=*/4);
    Fingerprint fp;
    fp.decode_steps = result.decode_steps;
    fp.total_tokens = result.total_tokens;
    for (const ContinuousRequestResult& r : result.requests) {
      fp.tokens.push_back(r.result.token_ids);
      fp.texts.push_back(r.result.output_text);
      fp.steps.push_back(r.admitted_step);
      fp.steps.push_back(r.first_token_step);
      fp.steps.push_back(r.finish_step);
    }
    return fp;
  }
};

TEST(BatchDeterminism, RunBatchIdenticalAcrossThreadCountsSchedulesAndRepeats) {
  Harness harness(6);
  for (bool dense : {false, true}) {
    SCOPED_TRACE(dense ? "dense" : "sparse");
    Fingerprint reference =
        harness.RunBatchOnce(GrammarSchedule::kSerial, 1, dense);
    ASSERT_FALSE(reference.tokens.empty());
    ASSERT_GT(reference.total_tokens, 0);
    for (std::int32_t threads : {1, 4, 0}) {  // 0 = hardware concurrency
      for (GrammarSchedule schedule :
           {GrammarSchedule::kSerial, GrammarSchedule::kOverlap}) {
        SCOPED_TRACE(static_cast<int>(schedule));
        SCOPED_TRACE(threads);
        EXPECT_TRUE(harness.RunBatchOnce(schedule, threads, dense) ==
                    reference);
      }
    }
    // Repeat run with the same configuration: bit-identical again.
    EXPECT_TRUE(harness.RunBatchOnce(GrammarSchedule::kOverlap, 0, dense) ==
                harness.RunBatchOnce(GrammarSchedule::kOverlap, 0, dense));
  }
}

TEST(BatchDeterminism,
     RunContinuousIdenticalAcrossThreadCountsSchedulesAndRepeats) {
  Harness harness(6);
  for (bool dense : {false, true}) {
    SCOPED_TRACE(dense ? "dense" : "sparse");
    Fingerprint reference =
        harness.RunContinuousOnce(GrammarSchedule::kSerial, 1, dense);
    ASSERT_GT(reference.total_tokens, 0);
    for (std::int32_t threads : {1, 4, 0}) {
      for (GrammarSchedule schedule :
           {GrammarSchedule::kSerial, GrammarSchedule::kOverlap}) {
        SCOPED_TRACE(static_cast<int>(schedule));
        SCOPED_TRACE(threads);
        EXPECT_TRUE(harness.RunContinuousOnce(schedule, threads, dense) ==
                    reference);
      }
    }
    EXPECT_TRUE(
        harness.RunContinuousOnce(GrammarSchedule::kOverlap, 0, dense) ==
        harness.RunContinuousOnce(GrammarSchedule::kOverlap, 0, dense));
  }
}

TEST(BatchDeterminism, DenseAndSparsePathsBothProduceValidTargets) {
  // Not bit-identical to each other (different long-tail models), but both
  // must drive every request to its grammar-conforming target under a mask.
  Harness harness(4);
  for (bool dense : {false, true}) {
    SCOPED_TRACE(dense ? "dense" : "sparse");
    MockLlm llm(harness.info, {.derail_probability = 0.0, .seed = 11});
    ServingEngine engine(
        harness.Options(GrammarSchedule::kOverlap, 0, dense), llm);
    std::vector<EngineRequest> requests(harness.tasks.size());
    for (std::size_t i = 0; i < harness.tasks.size(); ++i) {
      requests[i].decoder = harness.factories[i]->NewDecoder();
      requests[i].target_text = harness.tasks[i].canonical_answer.Dump();
      requests[i].seed = i + 1;
    }
    BatchResult result = engine.RunBatch(requests);
    for (std::size_t i = 0; i < harness.tasks.size(); ++i) {
      EXPECT_EQ(result.requests[i].output_text,
                harness.tasks[i].canonical_answer.Dump());
      EXPECT_TRUE(result.requests[i].finished_by_eos);
    }
  }
}

}  // namespace
}  // namespace xgr::engine
