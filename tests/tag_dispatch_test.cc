// Tag-dispatch composition tests. The load-bearing suite is the differential
// one: on any shared config, the composite decoder must accept exactly the
// same byte strings and produce BIT-IDENTICAL per-token masks as an
// XGrammarDecoder over the monolithic BuildStructuralTagGrammar artifact —
// across ambiguous/overlapping/nested trigger sets, multi-invocation
// transcripts, invocation bounds, disabled free text, and UTF-8 (including
// the synthetic vocabulary's sub-UTF8 tokens). Also covered: free-segment
// zero-allocation, dispatch stats, registry sharing across plans, in-tag
// jump-forward, and the C boundary lives in c_api_test.cc.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/tag_dispatch_decoder.h"
#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "compose/tag_dispatch.h"
#include "grammar/structural_tag.h"
#include "pda/compiled_grammar.h"
#include "support/alloc_hook.h"
#include "support/logging.h"
#include "support/rng.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::compose {
namespace {

constexpr const char* kWeatherSchema = R"({
  "type": "object",
  "properties": {
    "city": {"type": "string"},
    "unit": {"enum": ["celsius", "fahrenheit"]}
  },
  "required": ["city", "unit"],
  "additionalProperties": false
})";

constexpr const char* kTimeSchema =
    R"({"type":"object","properties":{"tz":{"type":"string"}},)"
    R"("required":["tz"],"additionalProperties":false})";

constexpr const char* kIntSchema = R"({"type":"integer"})";

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({1600, 17}));
  return info;
}

const tokenizer::TokenTrie& TestTrie() {
  static tokenizer::TokenTrie trie(*TestTokenizer());
  return trie;
}

runtime::CompileService& SharedService() {
  static runtime::CompileService service(TestTokenizer(), {});
  return service;
}

grammar::StructuralTagOptions MonolithicOptions(const TagDispatchConfig& config) {
  grammar::StructuralTagOptions options;
  options.allow_free_text = config.allow_free_text;
  options.max_invocations = config.max_invocations;
  options.require_invocation = config.require_invocation;
  return options;
}

std::shared_ptr<baselines::XGrammarDecoder> MonolithicDecoder(
    const TagDispatchConfig& config) {
  grammar::Grammar g = grammar::BuildStructuralTagGrammar(
      config.tags, config.triggers, MonolithicOptions(config));
  auto pda = pda::CompiledGrammar::Compile(g);
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, TestTokenizer());
  return std::make_shared<baselines::XGrammarDecoder>(cache);
}

std::shared_ptr<baselines::TagDispatchDecoder> DispatchDecoder(
    const TagDispatchConfig& config) {
  auto plan = TagDispatchPlan::Build(config, &SharedService());
  return std::make_shared<baselines::TagDispatchDecoder>(plan);
}

std::vector<std::int32_t> MaskDiff(const DynamicBitset& a, const DynamicBitset& b,
                                   std::size_t limit = 8) {
  std::vector<std::int32_t> diff;
  for (std::size_t i = 0; i < a.Size() && diff.size() < limit; ++i) {
    if (a.Test(i) != b.Test(i)) diff.push_back(static_cast<std::int32_t>(i));
  }
  return diff;
}

std::string DescribeDiff(const tokenizer::TokenizerInfo& info,
                         const DynamicBitset& mono, const DynamicBitset& disp) {
  std::string out;
  for (std::int32_t id : MaskDiff(mono, disp)) {
    out += "  token " + std::to_string(id) + " '" + info.TokenBytes(id) +
           "' mono=" + (mono.Test(static_cast<std::size_t>(id)) ? "1" : "0") +
           " dispatch=" +
           (disp.Test(static_cast<std::size_t>(id)) ? "1" : "0") + "\n";
  }
  return out;
}

// Drives both decoders along `transcript` (greedy tokenization), comparing
// the full mask, CanTerminate, and the per-token accept verdict at every
// step. `expect_accept` = whether the transcript should be accepted end to
// end; on the first divergence-by-design (an illegal transcript) both sides
// must reject the same token.
void DifferentialTranscript(const TagDispatchConfig& config,
                            const std::string& transcript) {
  auto info = TestTokenizer();
  auto mono = MonolithicDecoder(config);
  auto dispatch = DispatchDecoder(config);
  std::vector<std::int32_t> tokens = tokenizer::GreedyTokenize(TestTrie(), transcript);
  DynamicBitset mono_mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset disp_mask(static_cast<std::size_t>(info->VocabSize()));
  for (std::size_t step = 0; step < tokens.size(); ++step) {
    mono->FillNextTokenBitmask(&mono_mask);
    dispatch->FillNextTokenBitmask(&disp_mask);
    ASSERT_EQ(mono_mask, disp_mask)
        << "mask mismatch at step " << step << " of transcript '" << transcript
        << "'\n"
        << DescribeDiff(*info, mono_mask, disp_mask);
    ASSERT_EQ(mono->CanTerminate(), dispatch->CanTerminate())
        << "termination mismatch at step " << step;
    bool mono_ok = mono->AcceptToken(tokens[step]);
    bool disp_ok = dispatch->AcceptToken(tokens[step]);
    ASSERT_EQ(mono_ok, disp_ok)
        << "accept mismatch at step " << step << " token '"
        << info->TokenBytes(tokens[step]) << "'";
    if (!mono_ok) return;  // both rejected: done
  }
  mono->FillNextTokenBitmask(&mono_mask);
  dispatch->FillNextTokenBitmask(&disp_mask);
  EXPECT_EQ(mono_mask, disp_mask) << "final mask mismatch\n"
                                  << DescribeDiff(*info, mono_mask, disp_mask);
  EXPECT_EQ(mono->CanTerminate(), dispatch->CanTerminate());
}

// Seeded random walk: at every step compare masks, then sample a random
// allowed token (mask-guided, so the walk explores tag bodies and
// boundaries) and accept it on both sides.
void DifferentialRandomWalk(const TagDispatchConfig& config, std::uint64_t seed,
                            std::int32_t steps) {
  auto info = TestTokenizer();
  auto mono = MonolithicDecoder(config);
  auto dispatch = DispatchDecoder(config);
  DynamicBitset mono_mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset disp_mask(static_cast<std::size_t>(info->VocabSize()));
  Rng rng(seed);
  for (std::int32_t step = 0; step < steps; ++step) {
    mono->FillNextTokenBitmask(&mono_mask);
    dispatch->FillNextTokenBitmask(&disp_mask);
    ASSERT_EQ(mono_mask, disp_mask)
        << "mask mismatch at random-walk step " << step << " (seed " << seed
        << ")\n"
        << DescribeDiff(*info, mono_mask, disp_mask);
    ASSERT_EQ(mono->CanTerminate(), dispatch->CanTerminate());
    std::vector<std::int32_t> allowed;
    for (std::int64_t id = mono_mask.FindNext(0); id >= 0;
         id = mono_mask.FindNext(static_cast<std::size_t>(id) + 1)) {
      allowed.push_back(static_cast<std::int32_t>(id));
    }
    if (allowed.empty()) break;
    std::int32_t token =
        allowed[static_cast<std::size_t>(rng.Next() % allowed.size())];
    if (token == info->EosId()) break;
    ASSERT_TRUE(mono->AcceptToken(token));
    ASSERT_TRUE(dispatch->AcceptToken(token))
        << "dispatch rejected mask-allowed token '" << info->TokenBytes(token)
        << "' at step " << step;
  }
}

TagDispatchConfig WeatherConfig() {
  TagDispatchConfig config;
  config.tags = {{"<function=get_weather>", kWeatherSchema, "</function>"}};
  config.triggers = {"<function="};
  return config;
}

TagDispatchConfig TwoToolConfig() {
  TagDispatchConfig config;
  config.tags = {{"<function=get_weather>", kWeatherSchema, "</function>"},
                 {"<function=get_time>", kTimeSchema, "</function>"}};
  config.triggers = {"<function="};
  return config;
}

TagDispatchConfig NestedTriggerConfig() {
  TagDispatchConfig config;
  config.tags = {{"<tool_call>", kTimeSchema, "</tool_call>"},
                 {"<toolbox>", kIntSchema, "</toolbox>"}};
  config.triggers = {"<tool", "<tool_call"};
  return config;
}

// {"ab","bc"} over "abc...": the "ab" completion must still enter a tag whose
// begin started one byte later with "b" (the failure-chain alignment case).
TagDispatchConfig OverlappingTriggerConfig() {
  TagDispatchConfig config;
  config.tags = {{"abX", kIntSchema, "Z"}, {"bcY", kIntSchema, "W"}};
  config.triggers = {"ab", "bc"};
  return config;
}

// --- Differential: transcripts ----------------------------------------------

TEST(TagDispatchDifferential, ProseOnly) {
  DifferentialTranscript(WeatherConfig(), "Plain prose, no calls at all.");
}

TEST(TagDispatchDifferential, SingleCompleteCall) {
  DifferentialTranscript(
      WeatherConfig(),
      "Checking. <function=get_weather>"
      R"({"city":"Lima","unit":"celsius"})"
      "</function> Done.");
}

TEST(TagDispatchDifferential, MultiInvocation) {
  const std::string call =
      "<function=get_weather>"
      R"({"city":"Oslo","unit":"celsius"})"
      "</function>";
  DifferentialTranscript(WeatherConfig(),
                         "First: " + call + " then " + call + " end.");
}

TEST(TagDispatchDifferential, TwoToolsDispatchOnBeginMarker) {
  DifferentialTranscript(TwoToolConfig(),
                         "<function=get_time>"
                         R"({"tz":"UTC"})"
                         "</function> and "
                         "<function=get_weather>"
                         R"({"city":"Rio","unit":"celsius"})"
                         "</function>");
}

TEST(TagDispatchDifferential, SchemaViolationRejectedIdentically) {
  DifferentialTranscript(TwoToolConfig(),
                         "<function=get_weather>"
                         R"({"tz":"UTC"})"
                         "</function>");
}

TEST(TagDispatchDifferential, UnicodeProseAndSubUtf8Boundaries) {
  DifferentialTranscript(
      WeatherConfig(),
      "héllo wörld 世界 <function=get_weather>"
      R"({"city":"São Paulo","unit":"celsius"})"
      "</function> 完了");
}

TEST(TagDispatchDifferential, NestedTriggers) {
  DifferentialTranscript(NestedTriggerConfig(),
                         "use <tool_call>"
                         R"({"tz":"UTC"})"
                         "</tool_call> and <toolbox>7</toolbox> done");
}

TEST(TagDispatchDifferential, OverlappingTriggersStraddledAlignment) {
  // "x abcY7W y": the trigger "ab" completes first, but the real tag is
  // "bcY..." starting at the 'b' — the monolithic grammar parses it, so the
  // composite must too.
  DifferentialTranscript(OverlappingTriggerConfig(), "x abcY7W y");
  DifferentialTranscript(OverlappingTriggerConfig(), "x abX7Z y");
}

TEST(TagDispatchDifferential, UnconstrainedJsonBody) {
  TagDispatchConfig config;
  config.tags = {{"<data>", "", "</data>"}};
  config.triggers = {"<data>"};
  DifferentialTranscript(config, "<data>[1,2,{\"k\":null}]</data> ok");
}

TEST(TagDispatchDifferential, MaxInvocationsBound) {
  TagDispatchConfig config = WeatherConfig();
  config.max_invocations = 1;
  const std::string call =
      "<function=get_weather>"
      R"({"city":"Oslo","unit":"celsius"})"
      "</function>";
  DifferentialTranscript(config, call + " extra prose");
  DifferentialTranscript(config, call + call);  // second call must be rejected
}

TEST(TagDispatchDifferential, RequireInvocation) {
  TagDispatchConfig config = WeatherConfig();
  config.require_invocation = true;
  DifferentialTranscript(config, "prose only, EOS must stay masked");
  DifferentialTranscript(config,
                         "<function=get_weather>"
                         R"({"city":"Rio","unit":"celsius"})"
                         "</function>");
}

TEST(TagDispatchDifferential, NoFreeTextMode) {
  TagDispatchConfig config = TwoToolConfig();
  config.allow_free_text = false;
  config.require_invocation = true;
  const std::string call =
      "<function=get_time>"
      R"({"tz":"UTC"})"
      "</function>";
  DifferentialTranscript(config, call);
  DifferentialTranscript(config, call + call);
  DifferentialTranscript(config, "prose " + call);  // must reject identically
}

// --- Differential: seeded random walks --------------------------------------

TEST(TagDispatchDifferential, RandomWalkWeather) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    DifferentialRandomWalk(WeatherConfig(), seed, 48);
  }
}

TEST(TagDispatchDifferential, RandomWalkTwoTools) {
  for (std::uint64_t seed : {7u, 8u}) {
    DifferentialRandomWalk(TwoToolConfig(), seed, 48);
  }
}

TEST(TagDispatchDifferential, RandomWalkOverlappingTriggers) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    DifferentialRandomWalk(OverlappingTriggerConfig(), seed, 40);
  }
}

TEST(TagDispatchDifferential, RandomWalkNestedTriggers) {
  for (std::uint64_t seed : {21u, 22u}) {
    DifferentialRandomWalk(NestedTriggerConfig(), seed, 40);
  }
}

TEST(TagDispatchDifferential, RandomWalkNoFreeText) {
  TagDispatchConfig config = TwoToolConfig();
  config.allow_free_text = false;
  for (std::uint64_t seed : {31u, 32u}) {
    DifferentialRandomWalk(config, seed, 40);
  }
}

TEST(TagDispatchDifferential, RandomWalkBoundedInvocations) {
  TagDispatchConfig config = WeatherConfig();
  config.max_invocations = 2;
  for (std::uint64_t seed : {41u, 42u}) {
    DifferentialRandomWalk(config, seed, 48);
  }
}

// --- Composite-specific behaviour -------------------------------------------

TEST(TagDispatch, Utf8DfaAcceptsExactlyValidSequences) {
  // Boundary-to-boundary walks for representative codepoints.
  auto walk = [](const std::string& bytes) {
    std::uint8_t state = kU8Boundary;
    for (char c : bytes) {
      state = Utf8Next(state, static_cast<std::uint8_t>(c));
      if (state == kU8Reject) return std::string("reject");
    }
    return std::string(state == kU8Boundary ? "accept" : "partial");
  };
  EXPECT_EQ(walk("a"), "accept");
  EXPECT_EQ(walk("é"), "accept");        // C3 A9
  EXPECT_EQ(walk("世"), "accept");       // E4 B8 96
  EXPECT_EQ(walk("\xF0\x9F\x98\x80"), "accept");  // U+1F600
  EXPECT_EQ(walk("\xC3"), "partial");
  EXPECT_EQ(walk("\x80"), "reject");              // stray continuation
  EXPECT_EQ(walk("\xC0\xAF"), "reject");          // overlong
  EXPECT_EQ(walk("\xED\xA0\x80"), "reject");      // surrogate
  EXPECT_EQ(walk("\xF5\x80\x80\x80"), "reject");  // > U+10FFFF lead
  EXPECT_EQ(walk("\xE0\x9F\xBF"), "reject");      // overlong 3-byte
}

TEST(TagDispatch, StatsCountDispatchesAndSegments) {
  auto dispatch = DispatchDecoder(WeatherConfig());
  const std::string transcript =
      "Hi <function=get_weather>"
      R"({"city":"Lima","unit":"celsius"})"
      "</function> bye";
  for (std::int32_t token : tokenizer::GreedyTokenize(TestTrie(), transcript)) {
    ASSERT_TRUE(dispatch->AcceptToken(token));
  }
  const TagDispatchStats& stats = dispatch->Matcher().Stats();
  EXPECT_EQ(stats.dispatches, 1);
  EXPECT_EQ(stats.segment_switches, 2);  // free->tag and tag->free
  EXPECT_GT(stats.free_tokens, 0);
  EXPECT_GT(stats.tag_tokens, 0);
  const TagDispatchStats* merged = dispatch->DispatchStats();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->tags, 1);
  EXPECT_EQ(merged->prefetch_submits, 1);
}

TEST(TagDispatch, FreeTextSteadyStateIsAllocationFree) {
  auto dispatch = DispatchDecoder(WeatherConfig());
  DynamicBitset mask(static_cast<std::size_t>(TestTokenizer()->VocabSize()));
  std::vector<std::int32_t> tokens =
      tokenizer::GreedyTokenize(TestTrie(), "the quick brown fox jumps over");
  // Warm-up lap: sizes every buffer.
  for (std::int32_t token : tokens) {
    dispatch->FillNextTokenBitmask(&mask);
    ASSERT_TRUE(dispatch->AcceptToken(token));
  }
  dispatch->Reset();
  std::int64_t before = support::AllocHookCount();
  for (std::int32_t token : tokens) {
    dispatch->FillNextTokenBitmask(&mask);
    ASSERT_TRUE(dispatch->AcceptToken(token));
  }
  EXPECT_EQ(support::AllocHookCount() - before, 0)
      << "free-text segment allocated on the steady-state path";
}

TEST(TagDispatch, JumpForwardForcesBeginRemainderInsideTag) {
  auto dispatch = DispatchDecoder(WeatherConfig());
  // Enter the tag: accept prose then the begin-marker prefix token by token
  // until a dispatch happened, then ask for the forced continuation.
  const std::string prefix = "<function=get_weather>{\"";
  for (std::int32_t token : tokenizer::GreedyTokenize(TestTrie(), prefix)) {
    ASSERT_TRUE(dispatch->AcceptToken(token));
  }
  // Inside the object, the next forced span is a key start; just assert the
  // jump string is consistent: every byte re-accepted.
  std::string jump = dispatch->FindJumpForwardString();
  if (!jump.empty()) {
    EXPECT_TRUE(dispatch->Matcher().AcceptBytes(jump));
  }
}

TEST(TagDispatch, PlansShareArtifactsThroughRegistry) {
  runtime::CompileService service(TestTokenizer(), {});
  TagDispatchConfig config = TwoToolConfig();
  auto plan_a = TagDispatchPlan::Build(config, &service);
  EXPECT_EQ(plan_a->BuildStats().prefetch_hits, 0);
  // Second plan over an overlapping toolset: both tags resolve from the
  // registry without a compile.
  auto plan_b = TagDispatchPlan::Build(config, &service);
  EXPECT_EQ(plan_b->BuildStats().prefetch_hits, 2);
  EXPECT_EQ(plan_b->BuildStats().prefetch_waits, 0);
  // And the artifacts are literally the same objects.
  EXPECT_EQ(plan_a->TagArtifact(0).get(), plan_b->TagArtifact(0).get());
  EXPECT_EQ(service.Stats().compiled, 2);
}

TEST(TagDispatch, LargeToolsetDispatchesWithoutBlowingTheThreadBudget) {
  // The per-dispatch fan-out is one thread per tag sharing the completed
  // trigger, so the thread budget must scale with the toolset: a 70-tool
  // config used to pass plan build and then throw on the first dispatch.
  TagDispatchConfig config;
  for (int i = 0; i < 70; ++i) {
    config.tags.push_back({"<function=tool_" + std::to_string(i) + ">",
                           kIntSchema, "</function>"});
  }
  config.triggers = {"<function="};
  auto plan = TagDispatchPlan::Build(config, &SharedService());
  baselines::TagDispatchDecoder decoder(plan);
  DynamicBitset mask(static_cast<std::size_t>(TestTokenizer()->VocabSize()));
  const std::string transcript = "go <function=tool_42>7</function> done";
  for (std::int32_t token : tokenizer::GreedyTokenize(TestTrie(), transcript)) {
    decoder.FillNextTokenBitmask(&mask);
    ASSERT_TRUE(mask.Test(static_cast<std::size_t>(token)));
    ASSERT_TRUE(decoder.AcceptToken(token));
  }
  EXPECT_TRUE(decoder.CanTerminate());
  EXPECT_EQ(decoder.Matcher().Stats().dispatches, 1);
}

TEST(TagDispatch, InvalidConfigsThrow) {
  runtime::CompileService& service = SharedService();
  TagDispatchConfig config;
  config.triggers = {"<fn"};
  EXPECT_THROW(TagDispatchPlan::Build(config, &service), xgr::CheckError);
  config.tags = {{"[tool]", "", "[/tool]"}};  // no trigger prefixes it
  EXPECT_THROW(TagDispatchPlan::Build(config, &service), xgr::CheckError);
}

}  // namespace
}  // namespace xgr::compose
