// Differential suite for the transactional multi-token verify/commit
// protocol. The load-bearing property: VerifyDraft(k) + CommitDraft must be
// BIT-IDENTICAL — accepted prefix, divergence mask, and post-state — to k
// sequential FillNextTokenBitmask + Test + AcceptToken calls, on the raw
// GrammarMatcher, the XGrammarDecoder, and the tag-dispatch composite
// (including drafts that cross free-text/trigger boundaries and drafts whose
// tokens split UTF-8 codepoints). Also covered: position-0 rejection, EOS in
// the draft, abort/partial-commit equivalence, and zero allocations on the
// steady-state verify path via the operator-new hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/tag_dispatch_decoder.h"
#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "compose/tag_dispatch.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "grammar/structural_tag.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "runtime/compile_service.h"
#include "support/alloc_hook.h"
#include "support/rng.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::baselines {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({1600, 17}));
  return info;
}

const tokenizer::TokenTrie& TestTrie() {
  static tokenizer::TokenTrie trie(*TestTokenizer());
  return trie;
}

std::shared_ptr<const cache::AdaptiveTokenMaskCache> JsonCache() {
  static auto cache = [] {
    auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
    return cache::AdaptiveTokenMaskCache::Build(pda, TestTokenizer());
  }();
  return cache;
}

runtime::CompileService& SharedService() {
  static runtime::CompileService service(TestTokenizer(), {});
  return service;
}

constexpr const char* kWeatherSchema = R"({
  "type": "object",
  "properties": {
    "city": {"type": "string"},
    "unit": {"enum": ["celsius", "fahrenheit"]}
  },
  "required": ["city", "unit"],
  "additionalProperties": false
})";

std::shared_ptr<TagDispatchDecoder> WeatherDispatchDecoder() {
  compose::TagDispatchConfig config;
  config.tags = {{"<function=get_weather>", kWeatherSchema, "</function>"}};
  config.triggers = {"<function="};
  auto plan = compose::TagDispatchPlan::Build(config, &SharedService());
  return std::make_shared<TagDispatchDecoder>(plan);
}

// The sequential oracle: exactly the per-token protocol VerifyDraft
// replaces. Leaves `decoder` advanced to the accepted prefix and `mask`
// holding the divergence mask (the mask at the post-prefix state).
std::int32_t SequentialVerify(ConstrainedDecoder* decoder,
                              const std::vector<std::int32_t>& draft,
                              DynamicBitset* mask, bool* terminated) {
  const std::int32_t eos = decoder->EosTokenId();
  std::int32_t accepted = 0;
  if (terminated != nullptr) *terminated = false;
  for (std::int32_t token : draft) {
    decoder->FillNextTokenBitmask(mask);
    if (token < 0 || static_cast<std::size_t>(token) >= mask->Size() ||
        !mask->Test(static_cast<std::size_t>(token))) {
      return accepted;
    }
    if (token == eos) {
      if (terminated != nullptr) *terminated = true;
      return accepted;
    }
    EXPECT_TRUE(decoder->AcceptToken(token));
    ++accepted;
  }
  decoder->FillNextTokenBitmask(mask);  // post-prefix mask when exhausted
  return accepted;
}

// Post-state probe: both decoders must produce identical masks along a
// shared mask-guided random continuation — a strong state-identity check
// that needs no access to internals.
void ExpectSameContinuation(ConstrainedDecoder* a, ConstrainedDecoder* b,
                            std::uint64_t seed, std::int32_t steps) {
  auto info = TestTokenizer();
  DynamicBitset mask_a(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset mask_b(static_cast<std::size_t>(info->VocabSize()));
  Rng rng(seed);
  for (std::int32_t step = 0; step < steps; ++step) {
    a->FillNextTokenBitmask(&mask_a);
    b->FillNextTokenBitmask(&mask_b);
    ASSERT_EQ(mask_a, mask_b) << "post-state mask diverged at step " << step;
    ASSERT_EQ(a->CanTerminate(), b->CanTerminate()) << "step " << step;
    std::vector<std::int32_t> allowed;
    for (std::int64_t id = mask_a.FindNext(0); id >= 0;
         id = mask_a.FindNext(static_cast<std::size_t>(id) + 1)) {
      allowed.push_back(static_cast<std::int32_t>(id));
    }
    if (allowed.empty()) break;
    std::int32_t token =
        allowed[static_cast<std::size_t>(rng.Next() % allowed.size())];
    if (token == info->EosId()) break;
    ASSERT_TRUE(a->AcceptToken(token));
    ASSERT_TRUE(b->AcceptToken(token));
  }
}

// Core differential: run VerifyDraft on `native` and the sequential oracle
// on `oracle` (same construction, same already-applied prefix) over `draft`;
// require identical accepted counts, divergence masks, termination flags,
// and post-commit state.
void DifferentialDraft(ConstrainedDecoder* native, ConstrainedDecoder* oracle,
                       const std::vector<std::int32_t>& draft,
                       std::uint64_t probe_seed) {
  auto info = TestTokenizer();
  DynamicBitset native_mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset oracle_mask(static_cast<std::size_t>(info->VocabSize()));

  DraftVerifyResult result;
  native->VerifyDraft(draft.data(), static_cast<std::int32_t>(draft.size()),
                      &result, &native_mask);
  bool oracle_terminated = false;
  std::int32_t oracle_accepted =
      SequentialVerify(oracle, draft, &oracle_mask, &oracle_terminated);

  ASSERT_EQ(result.accepted, oracle_accepted);
  ASSERT_EQ(result.terminated, oracle_terminated);
  ASSERT_EQ(result.exhausted,
            result.accepted == static_cast<std::int32_t>(draft.size()));
  ASSERT_EQ(native_mask, oracle_mask) << "divergence mask mismatch";
  ASSERT_TRUE(native->CommitDraft(result.accepted));
  ExpectSameContinuation(native, oracle, probe_seed, 12);
}

// Builds a draft from the greedy tokenization of `text` continued from
// `position`, flipping tokens to pseudo-random vocabulary ids with
// probability `noise`.
// When `agreed` is non-null it receives the length of the contiguous
// un-flipped prefix — the tokens the "target model" also emits, which is the
// most a correctness-preserving engine may commit.
std::vector<std::int32_t> NoisyDraft(const std::vector<std::int32_t>& tokens,
                                     std::size_t position, std::int32_t k,
                                     double noise, Rng* rng,
                                     std::int32_t* agreed = nullptr) {
  std::vector<std::int32_t> draft;
  bool agreeing = true;
  if (agreed != nullptr) *agreed = 0;
  for (std::int32_t i = 0;
       i < k && position + static_cast<std::size_t>(i) < tokens.size(); ++i) {
    const std::int32_t truth = tokens[position + static_cast<std::size_t>(i)];
    std::int32_t token = truth;
    if (noise > 0.0 && rng->NextBool(noise)) {
      token = static_cast<std::int32_t>(rng->NextBounded(
          static_cast<std::uint64_t>(TestTokenizer()->VocabSize())));
    }
    if (token != truth) agreeing = false;
    if (agreeing && agreed != nullptr) ++*agreed;
    draft.push_back(token);
  }
  return draft;
}

// --- Raw matcher layer ------------------------------------------------------

TEST(MatcherDraftVerify, WalksAndRollsBackLikeSequentialAccepts) {
  auto info = TestTokenizer();
  matcher::GrammarMatcher native(JsonCache()->PdaShared());
  matcher::GrammarMatcher oracle(JsonCache()->PdaShared());

  const std::string doc = datasets::GenerateJsonValue(11, 4).Dump();
  std::vector<std::int32_t> tokens = tokenizer::GreedyTokenize(TestTrie(), doc);
  ASSERT_GE(tokens.size(), 8u);

  Rng rng(5);
  std::size_t position = 0;
  while (position < tokens.size()) {
    std::vector<std::int32_t> draft = NoisyDraft(tokens, position, 5, 0.3, &rng);
    matcher::GrammarMatcher::TokenDraftResult result;
    native.VerifyTokenDraft(*info, draft.data(),
                            static_cast<std::int32_t>(draft.size()), &result);
    // Oracle: AcceptToken semantics, one token at a time.
    std::int32_t expect = 0;
    for (std::int32_t token : draft) {
      if (token == info->EosId() || info->IsSpecial(token)) break;
      if (!oracle.AcceptString(info->TokenBytes(token))) break;
      oracle.PushTokenCheckpoint();
      ++expect;
    }
    ASSERT_EQ(result.accepted, expect);
    ASSERT_EQ(native.NumConsumedBytes(), oracle.NumConsumedBytes());
    ASSERT_EQ(native.CanTerminate(), oracle.CanTerminate());

    // Roll the whole draft back on both sides, then advance one true token —
    // the abort path every mismatched speculation takes.
    native.RollbackTokens(result.accepted);
    oracle.RollbackTokens(expect);
    ASSERT_EQ(native.NumConsumedBytes(), oracle.NumConsumedBytes());
    ASSERT_TRUE(native.AcceptString(info->TokenBytes(tokens[position])));
    native.PushTokenCheckpoint();
    ASSERT_TRUE(oracle.AcceptString(info->TokenBytes(tokens[position])));
    oracle.PushTokenCheckpoint();
    ++position;
  }
  EXPECT_TRUE(native.CanTerminate());
}

TEST(MatcherDraftVerify, AcceptedBytesAndExhaustedReported) {
  auto info = TestTokenizer();
  matcher::GrammarMatcher matcher(JsonCache()->PdaShared());
  std::vector<std::int32_t> tokens =
      tokenizer::GreedyTokenize(TestTrie(), "[1,2,3]");
  matcher::GrammarMatcher::TokenDraftResult result;
  matcher.VerifyTokenDraft(*info, tokens.data(),
                           static_cast<std::int32_t>(tokens.size()), &result);
  EXPECT_EQ(result.accepted, static_cast<std::int32_t>(tokens.size()));
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.accepted_bytes, 7);
  EXPECT_FALSE(result.terminated);
  EXPECT_TRUE(matcher.CanTerminate());
}

TEST(MatcherDraftVerify, EosInDraftStopsWithoutConsuming) {
  auto info = TestTokenizer();
  matcher::GrammarMatcher matcher(JsonCache()->PdaShared());
  std::vector<std::int32_t> tokens = tokenizer::GreedyTokenize(TestTrie(), "42");
  const std::size_t doc_tokens = tokens.size();
  tokens.push_back(info->EosId());
  std::vector<std::int32_t> junk = tokenizer::GreedyTokenize(TestTrie(), "junk");
  tokens.insert(tokens.end(), junk.begin(), junk.end());
  matcher::GrammarMatcher::TokenDraftResult result;
  matcher.VerifyTokenDraft(*info, tokens.data(),
                           static_cast<std::int32_t>(tokens.size()), &result);
  EXPECT_EQ(result.accepted, static_cast<std::int32_t>(doc_tokens));
  EXPECT_TRUE(result.terminated);   // "42" is a complete JSON document
  EXPECT_FALSE(result.exhausted);   // EOS stopped the walk
  EXPECT_EQ(matcher.NumConsumedBytes(), 2);  // EOS consumed nothing
}

// --- XGrammarDecoder --------------------------------------------------------

TEST(DecoderDraftVerify, BitIdenticalToSequentialOnJsonDrafts) {
  const std::string doc = datasets::GenerateJsonValue(29, 5).Dump();
  std::vector<std::int32_t> tokens = tokenizer::GreedyTokenize(TestTrie(), doc);
  Rng rng(17);
  for (double noise : {0.0, 0.25, 0.6}) {
    XGrammarDecoder native(JsonCache());
    XGrammarDecoder oracle(JsonCache());
    std::size_t position = 0;
    int rounds = 0;
    while (position + 6 < tokens.size() && rounds < 8) {
      std::vector<std::int32_t> draft =
          NoisyDraft(tokens, position, 6, noise, &rng);
      DifferentialDraft(&native, &oracle, draft,
                        /*probe_seed=*/rng.Next());
      // DifferentialDraft committed everything accepted and then advanced
      // both decoders along a shared continuation; resync our position by
      // resetting for the next round.
      native.Reset();
      oracle.Reset();
      position += 2;  // vary the starting offset between rounds
      for (std::size_t i = 0; i < position; ++i) {
        ASSERT_TRUE(native.AcceptToken(tokens[i]));
        ASSERT_TRUE(oracle.AcceptToken(tokens[i]));
      }
      ++rounds;
    }
  }
}

TEST(DecoderDraftVerify, RejectionAtPositionZeroLeavesStateUntouched) {
  auto info = TestTokenizer();
  XGrammarDecoder decoder(JsonCache());
  XGrammarDecoder untouched(JsonCache());
  ASSERT_TRUE(decoder.AcceptToken(
      tokenizer::GreedyTokenize(TestTrie(), "[")[0]));
  ASSERT_TRUE(untouched.AcceptToken(
      tokenizer::GreedyTokenize(TestTrie(), "[")[0]));

  // "}" cannot follow "[" in JSON: rejected at position 0.
  std::vector<std::int32_t> bad = tokenizer::GreedyTokenize(TestTrie(), "}");
  DynamicBitset divergence(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset plain(static_cast<std::size_t>(info->VocabSize()));
  DraftVerifyResult result;
  decoder.VerifyDraft(bad.data(), static_cast<std::int32_t>(bad.size()),
                      &result, &divergence);
  EXPECT_EQ(result.accepted, 0);
  EXPECT_FALSE(result.exhausted);
  EXPECT_FALSE(result.terminated);
  untouched.FillNextTokenBitmask(&plain);
  EXPECT_EQ(divergence, plain)
      << "position-0 divergence mask must equal the plain next-token mask";
  ASSERT_TRUE(decoder.CommitDraft(0));
  ExpectSameContinuation(&decoder, &untouched, 99, 10);
}

TEST(DecoderDraftVerify, PartialCommitEqualsSequentialPrefix) {
  const std::string doc = datasets::GenerateJsonValue(3, 4).Dump();
  std::vector<std::int32_t> tokens = tokenizer::GreedyTokenize(TestTrie(), doc);
  ASSERT_GE(tokens.size(), 6u);
  for (std::int32_t keep = 0; keep <= 4; ++keep) {
    XGrammarDecoder native(JsonCache());
    XGrammarDecoder oracle(JsonCache());
    std::vector<std::int32_t> draft(tokens.begin(), tokens.begin() + 6);
    DraftVerifyResult result;
    native.VerifyDraft(draft.data(), 6, &result, nullptr);
    ASSERT_EQ(result.accepted, 6);
    ASSERT_TRUE(native.CommitDraft(keep));
    for (std::int32_t i = 0; i < keep; ++i) {
      ASSERT_TRUE(oracle.AcceptToken(tokens[static_cast<std::size_t>(i)]));
    }
    ExpectSameContinuation(&native, &oracle, 1000 + static_cast<std::uint64_t>(keep), 8);
  }
}

TEST(DecoderDraftVerify, MidUtf8DraftTokens) {
  auto info = TestTokenizer();
  // A JSON string containing multi-byte codepoints; the synthetic vocabulary
  // contains sub-UTF8 byte tokens, so the greedy tokenization splits inside
  // codepoints and draft boundaries land mid-codepoint.
  const std::string doc = "\"caf\xC3\xA9 \xE2\x82\xAC 5\"";
  std::vector<std::int32_t> tokens = tokenizer::GreedyTokenize(TestTrie(), doc);
  ASSERT_GE(tokens.size(), 3u);
  XGrammarDecoder native(JsonCache());
  XGrammarDecoder oracle(JsonCache());
  DifferentialDraft(&native, &oracle, tokens, /*probe_seed=*/7);
  EXPECT_TRUE(native.CanTerminate());
}

TEST(DecoderDraftVerify, DefaultFallbackMatchesNativeOverride) {
  // Drive the BASE class implementation (k mask fills + accepts) on one
  // decoder and the native override on another: the protocol contract is
  // that they are observationally identical.
  const std::string doc = datasets::GenerateJsonValue(51, 4).Dump();
  std::vector<std::int32_t> tokens = tokenizer::GreedyTokenize(TestTrie(), doc);
  Rng rng(23);
  XGrammarDecoder native(JsonCache());
  XGrammarDecoder fallback(JsonCache());
  std::vector<std::int32_t> draft = NoisyDraft(tokens, 0, 6, 0.3, &rng);

  auto info = TestTokenizer();
  DynamicBitset native_mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset fallback_mask(static_cast<std::size_t>(info->VocabSize()));
  DraftVerifyResult native_result;
  DraftVerifyResult fallback_result;
  native.VerifyDraft(draft.data(), static_cast<std::int32_t>(draft.size()),
                     &native_result, &native_mask);
  fallback.ConstrainedDecoder::VerifyDraft(
      draft.data(), static_cast<std::int32_t>(draft.size()), &fallback_result,
      &fallback_mask);
  EXPECT_EQ(native_result.accepted, fallback_result.accepted);
  EXPECT_EQ(native_result.exhausted, fallback_result.exhausted);
  EXPECT_EQ(native_result.terminated, fallback_result.terminated);
  EXPECT_EQ(native_mask, fallback_mask);
  ASSERT_TRUE(native.CommitDraft(native_result.accepted));
  ASSERT_TRUE(fallback.ConstrainedDecoder::CommitDraft(fallback_result.accepted));
  ExpectSameContinuation(&native, &fallback, 41, 10);
}

// --- Tag-dispatch composite -------------------------------------------------

TEST(CompositeDraftVerify, DraftsCrossingTriggerBoundaries) {
  // Transcript spans free text → trigger → tag body → closer → free text;
  // chunked drafts land across every boundary. (The schema grammar emits
  // compact JSON, so the transcript body must not contain separator spaces.)
  const std::string transcript =
      "check: <function=get_weather>"
      R"({"city":"Oslo","unit":"celsius"})"
      "</function> done";
  std::vector<std::int32_t> tokens =
      tokenizer::GreedyTokenize(TestTrie(), transcript);
  auto info = TestTokenizer();
  Rng rng(31);
  for (std::int32_t k : {3, 5, 8}) {
    auto native = WeatherDispatchDecoder();
    std::size_t position = 0;
    while (position < tokens.size()) {
      std::int32_t agreed = 0;
      std::vector<std::int32_t> draft =
          NoisyDraft(tokens, position, k, 0.2, &rng, &agreed);
      // Fresh oracle replaying the committed true prefix: the oracle runs
      // the k-sequential-fills protocol from the identical state, then is
      // discarded (its post-verify state includes flipped tokens the engine
      // would never commit).
      auto oracle = WeatherDispatchDecoder();
      for (std::size_t i = 0; i < position; ++i) {
        ASSERT_TRUE(oracle->AcceptToken(tokens[i]));
      }
      DynamicBitset native_mask(static_cast<std::size_t>(info->VocabSize()));
      DynamicBitset oracle_mask(static_cast<std::size_t>(info->VocabSize()));
      DraftVerifyResult result;
      native->VerifyDraft(draft.data(), static_cast<std::int32_t>(draft.size()),
                          &result, &native_mask);
      bool oracle_terminated = false;
      std::int32_t oracle_accepted =
          SequentialVerify(oracle.get(), draft, &oracle_mask, &oracle_terminated);
      ASSERT_EQ(result.accepted, oracle_accepted)
          << "at position " << position << " k=" << k;
      ASSERT_EQ(result.terminated, oracle_terminated);
      ASSERT_EQ(native_mask, oracle_mask)
          << "divergence mask mismatch at position " << position << " k=" << k;
      // Commit only the model-agreed prefix (true tokens) so the transcript
      // alignment holds — exactly the engine's keep rule.
      const std::int32_t keep = std::min(result.accepted, agreed);
      ASSERT_TRUE(native->CommitDraft(keep));
      position += static_cast<std::size_t>(keep);
      if (keep < static_cast<std::int32_t>(draft.size()) &&
          position < tokens.size()) {
        ASSERT_TRUE(native->AcceptToken(tokens[position]))
            << "correction token rejected at position " << position;
        ++position;
      }
    }
    EXPECT_TRUE(native->CanTerminate());
  }
}

TEST(CompositeDraftVerify, PartialCommitRestoresBoundarySnapshot) {
  // Verify a draft that enters the tag body, then keep only the free-text
  // prefix: the restored state must continue exactly like a decoder that
  // never saw the tag.
  const std::string transcript = "go <function=get_weather>{\"city\":\"";
  std::vector<std::int32_t> tokens =
      tokenizer::GreedyTokenize(TestTrie(), transcript);
  std::vector<std::int32_t> free_prefix =
      tokenizer::GreedyTokenize(TestTrie(), "go ");
  auto native = WeatherDispatchDecoder();
  auto oracle = WeatherDispatchDecoder();
  DraftVerifyResult result;
  native->VerifyDraft(tokens.data(), static_cast<std::int32_t>(tokens.size()),
                      &result, nullptr);
  ASSERT_EQ(result.accepted, static_cast<std::int32_t>(tokens.size()));
  const std::int32_t keep = static_cast<std::int32_t>(free_prefix.size());
  ASSERT_TRUE(native->CommitDraft(keep));
  for (std::int32_t token : free_prefix) {
    ASSERT_TRUE(oracle->AcceptToken(token));
  }
  ExpectSameContinuation(native.get(), oracle.get(), 57, 12);
}

TEST(CompositeDraftVerify, AbortRestoresPreDraftState) {
  const std::string transcript = "x <function=get_weather>{";
  std::vector<std::int32_t> tokens =
      tokenizer::GreedyTokenize(TestTrie(), transcript);
  auto native = WeatherDispatchDecoder();
  auto oracle = WeatherDispatchDecoder();
  DraftVerifyResult result;
  native->VerifyDraft(tokens.data(), static_cast<std::int32_t>(tokens.size()),
                      &result, nullptr);
  ASSERT_GT(result.accepted, 0);
  ASSERT_TRUE(native->CommitDraft(0));
  ExpectSameContinuation(native.get(), oracle.get(), 73, 12);
}

// --- Zero-allocation steady state -------------------------------------------

TEST(DraftVerifyAlloc, SteadyStateVerifyCommitIsAllocationFree) {
  auto info = TestTokenizer();
  const std::string doc = datasets::GenerateJsonValue(77, 5).Dump();
  std::vector<std::int32_t> tokens = tokenizer::GreedyTokenize(TestTrie(), doc);
  ASSERT_GE(tokens.size(), 12u);
  XGrammarDecoder decoder(JsonCache());
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));

  auto run_pass = [&]() {
    std::size_t position = 0;
    DraftVerifyResult result;
    while (position < tokens.size()) {
      const std::int32_t k = static_cast<std::int32_t>(
          std::min<std::size_t>(4, tokens.size() - position));
      decoder.VerifyDraft(tokens.data() + position, k, &result, &mask);
      // Alternate full and partial commits so both the keep-everything and
      // the rollback paths are audited.
      std::int32_t keep = result.accepted;
      if (keep > 1 && position % 3 == 0) keep -= 1;
      ASSERT_TRUE(decoder.CommitDraft(keep));
      position += static_cast<std::size_t>(keep);
      if (keep < k && position < tokens.size()) {
        ASSERT_TRUE(decoder.AcceptToken(tokens[position]));
        ++position;
      }
    }
    decoder.Reset();
  };

  run_pass();  // warm: pool interning, workspace growth, checkpoint capacity
  run_pass();
  std::int64_t before = support::AllocHookCount();
  run_pass();
  std::int64_t allocs = support::AllocHookCount() - before;
  EXPECT_EQ(allocs, 0) << "steady-state verify/commit path allocated";
}

TEST(DraftVerifyAlloc, CompositeFreeTextDraftVerifyIsAllocationFree) {
  // Mirrors TagDispatch.FreeTextSteadyStateIsAllocationFree: the composite's
  // zero-alloc guarantee covers free-text segments (entering a tag body
  // spawns schema matchers, which allocate by design). The draft protocol
  // must not add allocations on top of that guarantee: verify + partial
  // commit + snapshot save/restore all run out of recycled buffers.
  auto info = TestTokenizer();
  std::vector<std::int32_t> tokens =
      tokenizer::GreedyTokenize(TestTrie(), "the quick brown fox jumps over");
  auto decoder = WeatherDispatchDecoder();
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));

  auto run_pass = [&]() {
    std::size_t position = 0;
    DraftVerifyResult result;
    while (position < tokens.size()) {
      const std::int32_t k = static_cast<std::int32_t>(
          std::min<std::size_t>(4, tokens.size() - position));
      decoder->VerifyDraft(tokens.data() + position, k, &result, &mask);
      ASSERT_EQ(result.accepted, k);
      // Alternate full and partial commits so the snapshot-restore path is
      // audited too, not just the keep-everything fast path.
      std::int32_t keep = result.accepted;
      if (keep > 1 && position % 2 == 0) keep -= 1;
      ASSERT_TRUE(decoder->CommitDraft(keep));
      position += static_cast<std::size_t>(keep);
      if (keep < k && position < tokens.size()) {
        ASSERT_TRUE(decoder->AcceptToken(tokens[position]));
        ++position;
      }
    }
    decoder->Reset();
  };

  run_pass();  // warm: snapshot slots, backup buffers, checkpoint capacity
  run_pass();
  std::int64_t before = support::AllocHookCount();
  run_pass();
  std::int64_t allocs = support::AllocHookCount() - before;
  EXPECT_EQ(allocs, 0) << "composite free-text draft verify path allocated";
}

}  // namespace
}  // namespace xgr::baselines
