// Zero-allocation batch decode: after a warm-up run, a full RunBatch at
// batch 64 — cost-aware-sharded mask generation, the persistent sim-GPU
// handoff, dense-logits fused-kernel sampling, and all bookkeeping —
// performs zero heap allocations in steady-state decode steps. Counted via
// the global operator-new hook (alloc_hook.h is included in exactly this
// translation unit of the binary) and enforced through
// EngineOptions::alloc_count_fn / BatchResult::steady_allocs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/factory.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "support/alloc_hook.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr::engine {
namespace {

using baselines::DecoderFactory;
using baselines::EngineKind;

std::uint64_t CountAllocs() {
  return static_cast<std::uint64_t>(support::AllocHookCount());
}

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2500, 19}));
  return info;
}

struct Fixture {
  std::shared_ptr<const tokenizer::TokenizerInfo> info = TestTokenizer();
  std::vector<datasets::SchemaTask> tasks;
  std::vector<std::unique_ptr<DecoderFactory>> factories;
  std::vector<EngineRequest> requests;

  explicit Fixture(std::size_t batch)
      : tasks(datasets::GenerateSchemaTasks(8, 31)) {
    for (const auto& task : tasks) {
      factories.push_back(
          std::make_unique<DecoderFactory>(EngineKind::kXGrammar, info));
      factories.back()->PrepareSchema(task.schema);
    }
    requests.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const std::size_t t = i % tasks.size();
      requests[i].decoder = factories[t]->NewDecoder();
      requests[i].target_text = tasks[t].canonical_answer.Dump();
      requests[i].seed = i + 1;
    }
  }

  EngineOptions Options(bool dense) const {
    EngineOptions options;
    options.time_scale = 0.0;
    options.max_new_tokens = 200;
    options.schedule = GrammarSchedule::kOverlap;
    options.dense_logits = dense;
    options.alloc_count_fn = &CountAllocs;
    return options;
  }
};

TEST(BatchZeroAlloc, DenseBatch64SteadyStepsAllocateNothing) {
  Fixture fixture(64);
  MockLlm llm(fixture.info, {.derail_probability = 0.0, .seed = 5});
  ServingEngine engine(fixture.Options(/*dense=*/true), llm);

  // Warm-up: first decode of each document builds every lazy structure —
  // matcher stacks, adaptive mask-cache entries, per-request scratch.
  BatchResult warm = engine.RunBatch(fixture.requests);
  ASSERT_GT(warm.total_tokens, 0);
  ASSERT_GE(warm.steady_allocs, 0);  // measured, whatever warm-up cost

  // Warm run over the same decoders/documents: zero allocations across
  // every steady-state step (mask fill + fused apply/sample + bookkeeping).
  BatchResult result = engine.RunBatch(fixture.requests);
  ASSERT_GT(result.steady_steps, 0);
  EXPECT_EQ(result.steady_allocs, 0)
      << "batch decode hot path allocated across " << result.steady_steps
      << " steady steps";
  EXPECT_GT(result.total_tokens, 0);
}

TEST(BatchZeroAlloc, SparseBatch64SteadyStepsAllocateNothing) {
  Fixture fixture(64);
  MockLlm llm(fixture.info, {.derail_probability = 0.0, .seed = 5});
  ServingEngine engine(fixture.Options(/*dense=*/false), llm);
  BatchResult warm = engine.RunBatch(fixture.requests);
  ASSERT_GT(warm.total_tokens, 0);
  BatchResult result = engine.RunBatch(fixture.requests);
  ASSERT_GT(result.steady_steps, 0);
  EXPECT_EQ(result.steady_allocs, 0);
}

TEST(BatchZeroAlloc, NotMeasuredWithoutACounter) {
  Fixture fixture(2);
  MockLlm llm(fixture.info, {.derail_probability = 0.0, .seed = 5});
  EngineOptions options = fixture.Options(true);
  options.alloc_count_fn = nullptr;
  ServingEngine engine(options, llm);
  BatchResult result = engine.RunBatch(fixture.requests);
  EXPECT_EQ(result.steady_allocs, -1);
  EXPECT_EQ(result.steady_steps, 0);
}

}  // namespace
}  // namespace xgr::engine
