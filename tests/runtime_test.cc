// Tests for the grammar runtime subsystem (src/runtime): CompileService
// coalescing / priorities / cancellation / callbacks under concurrency, the
// memory-budgeted GrammarRegistry LRU with in-use pinning, and the disk tier
// (atomic writes, load-time validation, corruption fallback).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/compile_service.h"
#include "runtime/grammar_registry.h"
#include "serialize/serialize.h"
#include "support/logging.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr::runtime {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2000, 23}));
  return info;
}

// A fresh, empty temp directory per test (removed on destruction).
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / ("xgr_runtime_test_" + name)).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

CompileJob EbnfJob(const std::string& text) {
  CompileJob job;
  job.kind = GrammarKind::kEbnf;
  job.source = text;
  return job;
}

CompileJob SchemaJob(const std::string& schema) {
  CompileJob job;
  job.kind = GrammarKind::kJsonSchema;
  job.source = schema;
  return job;
}

// A build heavy enough (builtin JSON grammar: ~60 automaton nodes over the
// full vocabulary) to keep a worker busy for many milliseconds — used to
// deterministically hold the single-worker services' queues open while the
// tests shape them. Tiny EBNF grammars compile in microseconds and do NOT
// block reliably.
CompileJob BlockerJob() {
  CompileJob job;
  job.kind = GrammarKind::kBuiltinJson;
  return job;
}

std::vector<CompileJob> DistinctJobs(int count) {
  std::vector<CompileJob> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back(EbnfJob("root ::= \"k" + std::to_string(i) +
                           ":\" [a-z]+ (\",\" [a-z]+)*"));
  }
  return jobs;
}

// --- keys and hashing --------------------------------------------------------

TEST(CompileJobKey, KindsAndRootsDoNotCollide) {
  EXPECT_NE(CompileJobKey(EbnfJob("[0-9]+")),
            CompileJobKey(SchemaJob("[0-9]+")));
  CompileJob by_item = EbnfJob("root ::= item\nitem ::= \"x\"");
  by_item.root_rule = "item";
  CompileJob by_root = EbnfJob("root ::= item\nitem ::= \"x\"");
  EXPECT_NE(CompileJobKey(by_item), CompileJobKey(by_root));
  EXPECT_NE(ContentHash(CompileJobKey(by_item)),
            ContentHash(CompileJobKey(by_root)));
}

// --- CompileService basics ---------------------------------------------------

TEST(CompileService, SubmitResolvesAndRepeatHitsRegistry) {
  CompileService service(TestTokenizer());
  CompileTicket ticket = service.Submit(EbnfJob("root ::= \"a\"+"));
  Artifact first = ticket.Get();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(ticket.State(), CompileState::kReady);

  CompileTicket again = service.Submit(EbnfJob("root ::= \"a\"+"));
  EXPECT_TRUE(again.Ready());  // registry hit: ready at submit time
  EXPECT_EQ(again.Get().get(), first.get());

  CompileServiceStats stats = service.Stats();
  EXPECT_EQ(stats.compiled, 1);
  EXPECT_EQ(stats.registry_hits, 1);
}

TEST(CompileService, FailedBuildReportsThroughTicketAndAllowsRetry) {
  CompileService service(TestTokenizer());
  CompileTicket bad = service.Submit(EbnfJob("root ::= \"unterminated"));
  EXPECT_TRUE(bad.WaitFor(60.0));
  EXPECT_EQ(bad.State(), CompileState::kFailed);
  EXPECT_FALSE(bad.Error().empty());
  EXPECT_THROW(bad.Get(), CheckError);
  EXPECT_EQ(bad.Code(), StatusCode::kInvalidGrammar);
  EXPECT_EQ(service.Stats().failed, 1);
  // The broken key is quarantined, but a corrected source is a different
  // content key and compiles normally.
  Artifact fixed = service.Compile(EbnfJob("root ::= \"terminated\""));
  EXPECT_NE(fixed, nullptr);
}

TEST(CompileService, CallbackFiresOnceWithTheArtifact) {
  CompileService service(TestTokenizer());
  std::atomic<int> calls{0};
  Artifact seen;
  std::mutex seen_mutex;
  CompileTicket ticket =
      service.Submit(EbnfJob("root ::= [0-9]+"), CompilePriority::kNormal,
                     [&](const Artifact& artifact) {
                       std::lock_guard<std::mutex> lock(seen_mutex);
                       seen = artifact;
                       ++calls;
                     });
  Artifact direct = ticket.Get();
  // The callback may run just after Get() unblocks; wait for it.
  while (calls.load() == 0) std::this_thread::yield();
  std::lock_guard<std::mutex> lock(seen_mutex);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen.get(), direct.get());
}

// --- concurrency torture -----------------------------------------------------

TEST(CompileService, TortureOneBuildPerKeyAndBitIdenticalArtifacts) {
  constexpr int kThreads = 8;
  constexpr int kGrammars = 4;
  std::vector<CompileJob> jobs = DistinctJobs(kGrammars);

  CompileServiceOptions options;
  options.num_threads = 3;
  CompileService service(TestTokenizer(), options);

  // N threads × M grammars, interleaved orders, every thread keeps its own
  // artifact pointers.
  std::vector<std::vector<Artifact>> results(
      kThreads, std::vector<Artifact>(kGrammars));
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int g = 0; g < kGrammars; ++g) {
          int index = (g + t) % kGrammars;  // staggered submission order
          results[static_cast<std::size_t>(t)][static_cast<std::size_t>(index)] =
              service.Submit(jobs[static_cast<std::size_t>(index)]).Get();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  // One build per key: every thread got the same shared artifact object.
  for (int g = 0; g < kGrammars; ++g) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(results[static_cast<std::size_t>(t)][static_cast<std::size_t>(g)].get(),
                results[0][static_cast<std::size_t>(g)].get())
          << "thread " << t << " grammar " << g;
    }
  }
  CompileServiceStats stats = service.Stats();
  EXPECT_EQ(stats.compiled, kGrammars);
  EXPECT_EQ(stats.submitted, kThreads * kGrammars);
  EXPECT_EQ(stats.registry_hits + stats.coalesced,
            kThreads * kGrammars - kGrammars);
  EXPECT_EQ(stats.failed, 0);

  // Bit-identical artifacts: an independent service (fresh registry, fresh
  // workers, different thread interleavings) serializes to the same bytes.
  CompileService independent(TestTokenizer(), options);
  for (int g = 0; g < kGrammars; ++g) {
    Artifact redo = independent.Compile(jobs[static_cast<std::size_t>(g)]);
    EXPECT_EQ(serialize::SerializeEngineArtifact(*redo),
              serialize::SerializeEngineArtifact(*results[0][static_cast<std::size_t>(g)]))
        << "grammar " << g;
  }
}

// --- priorities and cancellation --------------------------------------------

// Occupies the single worker until `release` turns true is not possible from
// outside the service API, so instead: submit a blocker, wait until the
// worker picks it up (builds_started == 1), then shape the queue behind it.
TEST(CompileService, PriorityOrdersQueuedBuilds) {
  CompileServiceOptions options;
  options.num_threads = 1;
  CompileService service(TestTokenizer(), options);

  CompileTicket blocker = service.Submit(BlockerJob());
  while (service.Stats().builds_started == 0) std::this_thread::yield();

  // Queued strictly behind the blocker; completion order on one worker
  // equals start order, which must follow priority then FIFO.
  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  auto record = [&](const std::string& name) {
    return [&, name](const Artifact&) {
      std::lock_guard<std::mutex> lock(order_mutex);
      completion_order.push_back(name);
    };
  };
  CompileTicket prefetch = service.Submit(
      EbnfJob("root ::= \"p\" [a-z]+"), CompilePriority::kPrefetch,
      record("prefetch"));
  CompileTicket normal_a = service.Submit(
      EbnfJob("root ::= \"na\" [a-z]+"), CompilePriority::kNormal,
      record("normal_a"));
  CompileTicket interactive = service.Submit(
      EbnfJob("root ::= \"i\" [a-z]+"), CompilePriority::kInteractive,
      record("interactive"));
  CompileTicket normal_b = service.Submit(
      EbnfJob("root ::= \"nb\" [a-z]+"), CompilePriority::kNormal,
      record("normal_b"));

  blocker.Get();
  prefetch.Get();
  normal_a.Get();
  interactive.Get();
  normal_b.Get();
  // Get() unblocks at promise resolution, which precedes the callback; wait
  // for the last callback before asserting on the order.
  for (;;) {
    std::lock_guard<std::mutex> lock(order_mutex);
    if (completion_order.size() == 4) break;
    std::this_thread::yield();
  }
  std::lock_guard<std::mutex> lock(order_mutex);
  EXPECT_EQ(completion_order,
            (std::vector<std::string>{"interactive", "normal_a", "normal_b",
                                      "prefetch"}));
}

TEST(CompileService, CoalescingEscalatesQueuedPriority) {
  CompileServiceOptions options;
  options.num_threads = 1;
  CompileService service(TestTokenizer(), options);

  CompileTicket blocker = service.Submit(BlockerJob());
  while (service.Stats().builds_started == 0) std::this_thread::yield();

  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  auto record = [&](const std::string& name) {
    return [&, name](const Artifact&) {
      std::lock_guard<std::mutex> lock(order_mutex);
      completion_order.push_back(name);
    };
  };
  // A speculative prefetch queues S; normal jobs queue after it; then a
  // request arrives that needs S *now*. The coalesced interactive submit
  // must escalate S ahead of the normal jobs.
  CompileTicket prefetched = service.Submit(
      EbnfJob("root ::= \"s\" [a-z]+"), CompilePriority::kPrefetch,
      record("shared"));
  CompileTicket normal = service.Submit(
      EbnfJob("root ::= \"n\" [a-z]+"), CompilePriority::kNormal,
      record("normal"));
  CompileTicket urgent = service.Submit(EbnfJob("root ::= \"s\" [a-z]+"),
                                        CompilePriority::kInteractive);
  EXPECT_EQ(service.Stats().coalesced, 1);

  blocker.Get();
  urgent.Get();
  normal.Get();
  for (;;) {
    std::lock_guard<std::mutex> lock(order_mutex);
    if (completion_order.size() == 2) break;
    std::this_thread::yield();
  }
  std::lock_guard<std::mutex> lock(order_mutex);
  EXPECT_EQ(completion_order,
            (std::vector<std::string>{"shared", "normal"}));
}

TEST(CompileService, CancelAbandonsQueuedBuildWithoutRunningIt) {
  CompileServiceOptions options;
  options.num_threads = 1;
  CompileService service(TestTokenizer(), options);

  CompileTicket blocker = service.Submit(BlockerJob());
  while (service.Stats().builds_started == 0) std::this_thread::yield();

  CompileTicket doomed = service.Submit(EbnfJob("root ::= \"doomed\""));
  doomed.Cancel();
  EXPECT_EQ(doomed.State(), CompileState::kCancelled);
  EXPECT_THROW(doomed.Get(), CheckError);

  blocker.Get();
  CompileServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.compiled, 1);  // only the blocker was built
}

TEST(CompileService, CoalescedInterestKeepsACancelledSubmissionAlive) {
  CompileServiceOptions options;
  options.num_threads = 1;
  CompileService service(TestTokenizer(), options);

  CompileTicket blocker = service.Submit(BlockerJob());
  while (service.Stats().builds_started == 0) std::this_thread::yield();

  CompileTicket first = service.Submit(EbnfJob("root ::= \"shared\" [a-z]*"));
  CompileTicket second = service.Submit(EbnfJob("root ::= \"shared\" [a-z]*"));
  EXPECT_EQ(service.Stats().coalesced, 1);
  first.Cancel();  // one of two interested parties walks away
  EXPECT_EQ(second.State(), CompileState::kPending);  // build must survive
  Artifact artifact = second.Get();
  EXPECT_NE(artifact, nullptr);
}

TEST(CompileService, DroppingTheOnlyTicketAbandonsTheBuild) {
  CompileServiceOptions options;
  options.num_threads = 1;
  CompileService service(TestTokenizer(), options);

  CompileTicket blocker = service.Submit(BlockerJob());
  while (service.Stats().builds_started == 0) std::this_thread::yield();
  {
    CompileTicket dropped = service.Submit(EbnfJob("root ::= \"dropped\""));
    // Scope exit abandons the only interest in the build (RAII cancel).
  }
  blocker.Get();
  EXPECT_EQ(service.Stats().cancelled, 1);
  EXPECT_EQ(service.Stats().compiled, 1);
}

TEST(CompileService, ShutdownCancelsQueuedBuildsAndResolvesTickets) {
  std::vector<CompileTicket> tickets;
  {
    CompileServiceOptions options;
    options.num_threads = 1;
    CompileService service(TestTokenizer(), options);
    tickets.push_back(service.Submit(BlockerJob()));
    while (service.Stats().builds_started == 0) std::this_thread::yield();
    for (int i = 0; i < 4; ++i) {
      tickets.push_back(
          service.Submit(EbnfJob("root ::= \"q" + std::to_string(i) + "\"")));
    }
    // Destructor: running build completes, queued builds cancel.
  }
  EXPECT_EQ(tickets[0].State(), CompileState::kReady);
  EXPECT_NE(tickets[0].Get(), nullptr);
  for (std::size_t i = 1; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i].State(), CompileState::kCancelled) << i;
  }
}

// --- GrammarRegistry: LRU, budget, pinning ----------------------------------

// Builds a handful of small artifacts through a service and returns them
// with their key hashes.
struct BuiltArtifact {
  std::string key;
  Artifact artifact;
};

std::vector<BuiltArtifact> BuildArtifacts(int count) {
  CompileService service(TestTokenizer());
  std::vector<BuiltArtifact> built;
  for (CompileJob& job : DistinctJobs(count)) {
    BuiltArtifact entry;
    entry.key = CompileJobKey(job);
    entry.artifact = service.Compile(job);
    built.push_back(entry);
  }
  return built;
}

TEST(GrammarRegistry, LruEvictsUnderBudgetAndAccountsMemory) {
  std::vector<BuiltArtifact> built = BuildArtifacts(4);
  // Budget: exactly the two largest artifacts fit, the rest must evict.
  std::size_t budget = 0;
  for (const BuiltArtifact& b : built) {
    budget = std::max(budget, b.artifact->MemoryBytes());
  }
  budget *= 2;

  GrammarRegistryOptions options;
  options.memory_budget_bytes = budget;
  GrammarRegistry registry(TestTokenizer(), options);
  for (const BuiltArtifact& b : built) {
    registry.Insert(b.key, b.artifact);
    EXPECT_LE(registry.MemoryBytes(), budget);  // never rests above budget
  }
  GrammarRegistryStats stats = registry.Stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.peak_memory_bytes, budget);

  // LRU order: the most recently inserted artifacts are the residents.
  EXPECT_TRUE(registry.IsResident(built.back().key));
}

TEST(GrammarRegistry, LookupRefreshesLruOrder) {
  std::vector<BuiltArtifact> built = BuildArtifacts(3);
  std::size_t each = 0;
  for (const BuiltArtifact& b : built) {
    each = std::max(each, b.artifact->MemoryBytes());
  }
  GrammarRegistryOptions options;
  options.memory_budget_bytes = each * 2;
  GrammarRegistry registry(TestTokenizer(), options);

  registry.Insert(built[0].key, built[0].artifact);
  registry.Insert(built[1].key, built[1].artifact);
  ASSERT_NE(registry.Lookup(built[0].key), nullptr);  // 0 becomes MRU
  registry.Insert(built[2].key, built[2].artifact);   // must evict 1, not 0
  EXPECT_TRUE(registry.IsResident(built[0].key));
  EXPECT_FALSE(registry.IsResident(built[1].key));
}

TEST(GrammarRegistry, PinnedArtifactSurvivesEvictionAndResurrects) {
  std::vector<BuiltArtifact> built = BuildArtifacts(3);
  std::size_t largest = 0;
  for (const BuiltArtifact& b : built) {
    largest = std::max(largest, b.artifact->MemoryBytes());
  }
  GrammarRegistryOptions options;
  options.memory_budget_bytes = largest;  // roughly one resident at a time
  GrammarRegistry registry(TestTokenizer(), options);

  // "In use": this shared_ptr is the live request holding the artifact.
  Artifact pinned = built[0].artifact;
  const cache::AdaptiveTokenMaskCache* pinned_raw = pinned.get();
  registry.Insert(built[0].key, built[0].artifact);
  registry.Insert(built[1].key, built[1].artifact);  // evicts 0
  registry.Insert(built[2].key, built[2].artifact);  // evicts 1
  ASSERT_FALSE(registry.IsResident(built[0].key));

  // The live reference kept the artifact fully usable through eviction…
  EXPECT_GT(pinned->MemoryBytes(), 0u);
  EXPECT_GT(pinned->Stats().nodes, 0);

  // …and a later lookup re-adopts the exact same object instead of
  // recompiling or touching disk (no disk tier configured here).
  Artifact resurrected = registry.Lookup(built[0].key);
  ASSERT_NE(resurrected, nullptr);
  EXPECT_EQ(resurrected.get(), pinned_raw);
  EXPECT_EQ(registry.Stats().pin_resurrections, 1);

  // Once the last live reference is gone, the pin expires and the key is a
  // genuine miss.
  registry.Clear();
  pinned = nullptr;
  resurrected = nullptr;
  EXPECT_EQ(registry.Lookup(built[0].key), nullptr);
  EXPECT_GT(registry.Stats().misses, 0);
}

// --- disk tier ---------------------------------------------------------------

TEST(GrammarRegistry, DiskTierRoundTripsAcrossRegistryInstances) {
  TempDir dir("disk_roundtrip");
  std::vector<BuiltArtifact> built = BuildArtifacts(2);

  GrammarRegistryOptions options;
  options.disk_dir = dir.path;
  {
    GrammarRegistry writer(TestTokenizer(), options);
    for (const BuiltArtifact& b : built) writer.Insert(b.key, b.artifact);
    EXPECT_EQ(writer.Stats().disk_writes, 2);
    for (const BuiltArtifact& b : built) {
      EXPECT_TRUE(fs::exists(writer.DiskPath(b.key)));
    }
  }
  // A fresh registry (fresh process, conceptually) warm-starts from disk.
  GrammarRegistry reader(TestTokenizer(), options);
  for (const BuiltArtifact& b : built) {
    Artifact loaded = reader.Lookup(b.key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(serialize::SerializeEngineArtifact(*loaded),
              serialize::SerializeEngineArtifact(*b.artifact));
  }
  EXPECT_EQ(reader.Stats().disk_hits, 2);
  EXPECT_EQ(reader.Stats().misses, 0);
}

TEST(GrammarRegistry, TruncatedDiskFileIsRejectedAndDeleted) {
  TempDir dir("disk_truncated");
  std::vector<BuiltArtifact> built = BuildArtifacts(1);
  GrammarRegistryOptions options;
  options.disk_dir = dir.path;
  {
    GrammarRegistry writer(TestTokenizer(), options);
    writer.Insert(built[0].key, built[0].artifact);
  }
  GrammarRegistry reader(TestTokenizer(), options);
  const std::string path = reader.DiskPath(built[0].key);
  // Truncate to half.
  const auto full_size = static_cast<std::uintmax_t>(fs::file_size(path));
  fs::resize_file(path, full_size / 2);

  EXPECT_EQ(reader.Lookup(built[0].key), nullptr);
  EXPECT_EQ(reader.Stats().disk_rejects, 1);
  EXPECT_FALSE(fs::exists(path));  // the bad file is gone, not re-read
}

TEST(GrammarRegistry, BitFlippedDiskFileIsRejected) {
  TempDir dir("disk_bitflip");
  std::vector<BuiltArtifact> built = BuildArtifacts(1);
  GrammarRegistryOptions options;
  options.disk_dir = dir.path;
  {
    GrammarRegistry writer(TestTokenizer(), options);
    writer.Insert(built[0].key, built[0].artifact);
  }
  GrammarRegistry reader(TestTokenizer(), options);
  const std::string path = reader.DiskPath(built[0].key);
  // Flip one bit deep in the payload (past the envelope header).
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(reader.Lookup(built[0].key), nullptr);
  EXPECT_EQ(reader.Stats().disk_rejects, 1);
}

TEST(GrammarRegistry, FilenameCollisionNeverServesTheWrongGrammar) {
  // Disk files are *named* by a 64-bit FNV-1a hash but *identified* by the
  // full embedded content key. Simulate a filename collision by parking one
  // grammar's artifact at another key's path: the lookup must report a miss
  // (never the wrong grammar's masks) and must leave the file in place for
  // its true owner.
  TempDir dir("disk_collision");
  std::vector<BuiltArtifact> built = BuildArtifacts(2);
  GrammarRegistryOptions options;
  options.disk_dir = dir.path;
  {
    GrammarRegistry writer(TestTokenizer(), options);
    writer.Insert(built[0].key, built[0].artifact);
  }
  GrammarRegistry reader(TestTokenizer(), options);
  // Park key-0's file where key-1's would live.
  fs::rename(reader.DiskPath(built[0].key), reader.DiskPath(built[1].key));

  EXPECT_EQ(reader.Lookup(built[1].key), nullptr);
  EXPECT_EQ(reader.Stats().disk_hits, 0);
  EXPECT_TRUE(fs::exists(reader.DiskPath(built[1].key)));  // left in place
  // The true owner still cannot load it from the colliding name — but a
  // lookup under its own key (now missing on disk) is a clean miss, not a
  // crash or a wrong artifact.
  EXPECT_EQ(reader.Lookup(built[0].key), nullptr);
}

TEST(CompileService, CorruptDiskArtifactFallsBackToRecompile) {
  TempDir dir("service_corrupt");
  CompileJob job = SchemaJob(
      R"({"type":"object","properties":{"v":{"type":"integer"}},
          "required":["v"],"additionalProperties":false})");
  const std::string key = CompileJobKey(job);

  CompileServiceOptions options;
  options.registry.disk_dir = dir.path;
  std::string good_bytes;
  std::string path;
  {
    CompileService service(TestTokenizer(), options);
    Artifact artifact = service.Compile(job);
    good_bytes = serialize::SerializeEngineArtifact(*artifact);
    path = service.Registry().DiskPath(key);
    ASSERT_TRUE(fs::exists(path));
  }
  // Corrupt the persisted artifact between "processes".
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "XGRS garbage that is definitely not a valid envelope";
  }
  CompileService service(TestTokenizer(), options);
  Artifact recompiled = service.Compile(job);
  ASSERT_NE(recompiled, nullptr);
  // Validated reject -> full recompile -> identical artifact, re-persisted.
  EXPECT_EQ(serialize::SerializeEngineArtifact(*recompiled), good_bytes);
  EXPECT_EQ(service.Stats().compiled, 1);
  EXPECT_EQ(service.Registry().Stats().disk_rejects, 1);
  EXPECT_TRUE(fs::exists(path));  // rewritten by the recompile
}

TEST(CompileService, WarmStartFromDiskSkipsRecompilation) {
  TempDir dir("service_warm");
  std::vector<CompileJob> jobs = DistinctJobs(3);
  CompileServiceOptions options;
  options.registry.disk_dir = dir.path;
  {
    CompileService cold(TestTokenizer(), options);
    for (const CompileJob& job : jobs) cold.Compile(job);
    EXPECT_EQ(cold.Stats().compiled, 3);
  }
  CompileService warm(TestTokenizer(), options);
  for (const CompileJob& job : jobs) {
    EXPECT_NE(warm.Compile(job), nullptr);
  }
  EXPECT_EQ(warm.Stats().compiled, 0);  // everything came from the disk tier
  EXPECT_EQ(warm.Stats().disk_loads, 3);
  EXPECT_EQ(warm.Registry().Stats().disk_hits, 3);
}

}  // namespace
}  // namespace xgr::runtime
