// Tests for the regex → grammar converter: direct acceptance, differential
// equivalence against the regex DFA on sampled strings, literal coalescing,
// and error handling.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fsa/dfa.h"
#include "grammar/regex_to_grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "regex/regex.h"
#include "support/logging.h"
#include "support/rng.h"

namespace xgr::grammar {
namespace {

// Full-match through the XGrammar pipeline: pattern → grammar → PDA → matcher.
bool GrammarAccepts(const std::string& pattern, const std::string& input) {
  auto pda = pda::CompiledGrammar::Compile(RegexToGrammar(pattern));
  matcher::GrammarMatcher m(pda);
  return m.AcceptString(input) && m.CanTerminate();
}

TEST(RegexToGrammar, LiteralSequence) {
  EXPECT_TRUE(GrammarAccepts("abc", "abc"));
  EXPECT_FALSE(GrammarAccepts("abc", "ab"));
  EXPECT_FALSE(GrammarAccepts("abc", "abcd"));
  EXPECT_FALSE(GrammarAccepts("abc", ""));
}

TEST(RegexToGrammar, EmptyPatternMatchesEmptyString) {
  EXPECT_TRUE(GrammarAccepts("", ""));
  EXPECT_FALSE(GrammarAccepts("", "x"));
}

TEST(RegexToGrammar, AlternationPrecedence) {
  // '|' binds looser than concatenation: ab|cd = (ab)|(cd).
  EXPECT_TRUE(GrammarAccepts("ab|cd", "ab"));
  EXPECT_TRUE(GrammarAccepts("ab|cd", "cd"));
  EXPECT_FALSE(GrammarAccepts("ab|cd", "ad"));
  EXPECT_FALSE(GrammarAccepts("ab|cd", "abcd"));
}

TEST(RegexToGrammar, Quantifiers) {
  EXPECT_TRUE(GrammarAccepts("a*", ""));
  EXPECT_TRUE(GrammarAccepts("a*", "aaaa"));
  EXPECT_FALSE(GrammarAccepts("a+", ""));
  EXPECT_TRUE(GrammarAccepts("a+", "a"));
  EXPECT_TRUE(GrammarAccepts("a?b", "b"));
  EXPECT_TRUE(GrammarAccepts("a?b", "ab"));
  EXPECT_FALSE(GrammarAccepts("a?b", "aab"));
}

TEST(RegexToGrammar, BoundedRepeats) {
  EXPECT_FALSE(GrammarAccepts("a{2,3}", "a"));
  EXPECT_TRUE(GrammarAccepts("a{2,3}", "aa"));
  EXPECT_TRUE(GrammarAccepts("a{2,3}", "aaa"));
  EXPECT_FALSE(GrammarAccepts("a{2,3}", "aaaa"));
  EXPECT_TRUE(GrammarAccepts("(ab){2}", "abab"));
  EXPECT_FALSE(GrammarAccepts("(ab){2}", "ab"));
}

TEST(RegexToGrammar, NestedQuantifiers) {
  EXPECT_TRUE(GrammarAccepts("(a{1,2}b)*", ""));
  EXPECT_TRUE(GrammarAccepts("(a{1,2}b)*", "abaab"));
  EXPECT_FALSE(GrammarAccepts("(a{1,2}b)*", "aaab"));
}

TEST(RegexToGrammar, CharacterClasses) {
  EXPECT_TRUE(GrammarAccepts("[a-z]+", "hello"));
  EXPECT_FALSE(GrammarAccepts("[a-z]+", "Hello"));
  EXPECT_TRUE(GrammarAccepts("[^0-9]", "x"));
  EXPECT_FALSE(GrammarAccepts("[^0-9]", "5"));
  EXPECT_TRUE(GrammarAccepts(R"(\d+\.\d+)", "3.14"));
  EXPECT_FALSE(GrammarAccepts(R"(\d+\.\d+)", "3."));
}

TEST(RegexToGrammar, DotExcludesNewline) {
  EXPECT_TRUE(GrammarAccepts("a.c", "abc"));
  EXPECT_TRUE(GrammarAccepts("a.c", "a?c"));
  EXPECT_FALSE(GrammarAccepts("a.c", "a\nc"));
}

TEST(RegexToGrammar, UnicodeLiteralsCompileByteLevel) {
  // U+00E9 (é) is two UTF-8 bytes; U+4E16 (世) is three.
  EXPECT_TRUE(GrammarAccepts("café", "café"));
  EXPECT_FALSE(GrammarAccepts("café", "cafe"));
  EXPECT_TRUE(GrammarAccepts("[一-鿿]+", "世界"));
  EXPECT_FALSE(GrammarAccepts("[一-鿿]+", "world"));
}

TEST(RegexToGrammar, PartialUtf8PrefixIsAcceptedByteWise) {
  // Byte-level automata accept token fragments that split a character.
  auto pda = pda::CompiledGrammar::Compile(RegexToGrammar("café"));
  matcher::GrammarMatcher m(pda);
  EXPECT_TRUE(m.AcceptString("caf\xC3"));  // first byte of é
  EXPECT_FALSE(m.CanTerminate());
  EXPECT_TRUE(m.AcceptByte(0xA9));  // second byte completes it
  EXPECT_TRUE(m.CanTerminate());
}

TEST(RegexToGrammar, LiteralRunsAreCoalesced) {
  Grammar g = RegexToGrammar("foobar[0-9]baz");
  // "foobar" and "baz" each become one byte-string expression; together with
  // the class and the sequence wrapper that is 4 expressions.
  int byte_strings = 0;
  for (std::int32_t i = 0; i < g.NumExprs(); ++i) {
    if (g.GetExpr(i).type == ExprType::kByteString) {
      ++byte_strings;
      EXPECT_GT(g.GetExpr(i).bytes.size(), 2u);
    }
  }
  EXPECT_EQ(byte_strings, 2);
}

TEST(RegexToGrammar, AddRegexRuleRejectsDuplicateNames) {
  Grammar g;
  AddRegexRule(&g, "a+", "ident");
  EXPECT_THROW(AddRegexRule(&g, "b+", "ident"), xgr::CheckError);
}

TEST(RegexToGrammar, BadPatternThrows) {
  EXPECT_THROW(RegexToGrammar("a{3,1}"), xgr::CheckError);
  EXPECT_THROW(RegexToGrammar("(unclosed"), xgr::CheckError);
  EXPECT_THROW(RegexToGrammar("[z-a]"), xgr::CheckError);
}

TEST(RegexToGrammar, RuleComposesIntoLargerGrammar) {
  // A regex rule used as a building block of a hand-built CFG: a key-value
  // line "<ident>=<number>" with the pieces coming from patterns.
  Grammar g;
  RuleId ident = AddRegexRule(&g, "[a-z_][a-z0-9_]*", "ident");
  RuleId number = AddRegexRule(&g, "-?[0-9]+", "number");
  ExprId body = g.AddSequence({g.AddRuleRef(ident), g.AddByteString("="),
                               g.AddRuleRef(number)});
  g.SetRootRule(g.AddRule("root", body));
  auto pda = pda::CompiledGrammar::Compile(g);
  matcher::GrammarMatcher m(pda);
  EXPECT_TRUE(m.AcceptString("max_tokens=-42") && m.CanTerminate());
  m.RollbackToDepth(0);
  EXPECT_FALSE(m.AcceptString("9bad=1"));
}

// --- Differential sweep: grammar path vs. regex DFA ------------------------

// Samples a string accepted by `dfa` via a random walk biased to terminate.
std::string SampleAccepted(const fsa::Dfa& dfa, Rng* rng) {
  std::string out;
  std::int32_t state = dfa.Start();
  for (int steps = 0; steps < 64; ++steps) {
    if (dfa.IsAccepting(state) && (out.size() > 8 || rng->NextBounded(3) == 0)) {
      return out;
    }
    // Collect live successor bytes.
    std::vector<std::uint8_t> choices;
    for (int b = 0; b < 256; ++b) {
      std::int32_t next = dfa.Next(state, static_cast<std::uint8_t>(b));
      if (next != fsa::Dfa::kDead && dfa.CanReachAccept(next)) {
        choices.push_back(static_cast<std::uint8_t>(b));
      }
    }
    if (choices.empty()) break;
    std::uint8_t byte = choices[rng->NextBounded(static_cast<std::uint32_t>(choices.size()))];
    out.push_back(static_cast<char>(byte));
    state = dfa.Next(state, byte);
  }
  return out;  // possibly non-accepted when the walk hits the step cap
}

// Mutates `s` to produce a likely-rejected variant.
std::string Mutate(const std::string& s, Rng* rng) {
  std::string out = s;
  switch (rng->NextBounded(3)) {
    case 0:  // flip a byte
      if (!out.empty()) {
        out[rng->NextBounded(static_cast<std::uint32_t>(out.size()))] ^=
            static_cast<char>(1 + rng->NextBounded(255));
      }
      break;
    case 1:  // drop a byte
      if (!out.empty()) {
        out.erase(out.begin() + rng->NextBounded(static_cast<std::uint32_t>(out.size())));
      }
      break;
    default:  // insert a byte
      out.insert(out.begin() + rng->NextBounded(static_cast<std::uint32_t>(out.size()) + 1),
                 static_cast<char>(rng->NextBounded(256)));
      break;
  }
  return out;
}

class RegexGrammarEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(RegexGrammarEquivalence, MatchesDfaOnSampledStrings) {
  const std::string pattern = GetParam();
  fsa::Dfa dfa = regex::CompileRegexToDfa(pattern);
  auto pda = pda::CompiledGrammar::Compile(RegexToGrammar(pattern));
  Rng rng(0x9E3779B9ull ^ pattern.size());
  int accepted_seen = 0;
  for (int iter = 0; iter < 60; ++iter) {
    std::string sample = SampleAccepted(dfa, &rng);
    for (const std::string& input : {sample, Mutate(sample, &rng)}) {
      matcher::GrammarMatcher m(pda);
      bool grammar_ok = m.AcceptString(input) && m.CanTerminate();
      bool dfa_ok = dfa.Accepts(input);
      EXPECT_EQ(grammar_ok, dfa_ok)
          << "pattern=" << pattern << " input=" << input;
      accepted_seen += dfa_ok ? 1 : 0;
    }
  }
  // The sampler must exercise the accepting region, not just rejections.
  EXPECT_GT(accepted_seen, 10) << "sampler starved for " << pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RegexGrammarEquivalence,
    ::testing::Values(
        "[a-z]+", "(ab|cd)*e", "-?[0-9]+(\\.[0-9]+)?", "\"[^\"]*\"",
        "(a|b){2,5}", "[A-Fa-f0-9]{4}", "(foo|bar|baz)(,(foo|bar|baz))*",
        "[ \\t\\n]*[a-z]+[ \\t\\n]*", "a(bc)*d|ef+g?", "x[0-9a-f]{1,8}"));

}  // namespace
}  // namespace xgr::grammar
