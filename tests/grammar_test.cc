// Tests for the grammar layer: EBNF parsing, printing, normalization, rule
// inlining and dead-rule elimination — with matcher-level equivalence checks
// for the transformation passes.
#include <gtest/gtest.h>

#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"

namespace xgr::grammar {
namespace {

bool Accepts(const Grammar& g, const std::string& text) {
  auto pda = pda::CompiledGrammar::Compile(g);
  matcher::GrammarMatcher m(pda);
  return m.AcceptString(text) && m.CanTerminate();
}

TEST(EbnfParser, BasicRule) {
  Grammar g = ParseEbnfOrThrow("root ::= \"hello\"");
  EXPECT_EQ(g.NumRules(), 1);
  EXPECT_TRUE(Accepts(g, "hello"));
  EXPECT_FALSE(Accepts(g, "hell"));
}

TEST(EbnfParser, AlternationAndSequence) {
  Grammar g = ParseEbnfOrThrow(R"(root ::= "a" "b" | "c")");
  EXPECT_TRUE(Accepts(g, "ab"));
  EXPECT_TRUE(Accepts(g, "c"));
  EXPECT_FALSE(Accepts(g, "ac"));
}

TEST(EbnfParser, RepetitionOperators) {
  Grammar g = ParseEbnfOrThrow(R"(root ::= "a"* "b"+ "c"? "d"{2,3})");
  EXPECT_TRUE(Accepts(g, "bdd"));
  EXPECT_TRUE(Accepts(g, "aabbcddd"));
  EXPECT_FALSE(Accepts(g, "add"));      // missing b
  EXPECT_FALSE(Accepts(g, "bd"));       // too few d
  EXPECT_FALSE(Accepts(g, "bdddd"));    // too many d
}

TEST(EbnfParser, ExactAndOpenRepetition) {
  Grammar g = ParseEbnfOrThrow(R"(root ::= "x"{3} "y"{2,})");
  EXPECT_TRUE(Accepts(g, "xxxyy"));
  EXPECT_TRUE(Accepts(g, "xxxyyyyy"));
  EXPECT_FALSE(Accepts(g, "xxyy"));
  EXPECT_FALSE(Accepts(g, "xxxy"));
}

TEST(EbnfParser, CharClasses) {
  Grammar g = ParseEbnfOrThrow(R"(root ::= [a-fA-F0-9]+ "-" [^x-z])");
  EXPECT_TRUE(Accepts(g, "dead-w"));
  EXPECT_FALSE(Accepts(g, "dead-x"));
  EXPECT_FALSE(Accepts(g, "zzzz-a"));
}

TEST(EbnfParser, RecursiveRules) {
  Grammar g = ParseEbnfOrThrow(R"EB(
    root ::= balanced
    balanced ::= "(" balanced ")" | ""
  )EB");
  EXPECT_TRUE(Accepts(g, ""));
  EXPECT_TRUE(Accepts(g, "((()))"));
  EXPECT_FALSE(Accepts(g, "(()"));
}

TEST(EbnfParser, MutualRecursion) {
  Grammar g = ParseEbnfOrThrow(R"(
    root ::= a
    a ::= "x" b | "x"
    b ::= "y" a
  )");
  EXPECT_TRUE(Accepts(g, "x"));
  EXPECT_TRUE(Accepts(g, "xyx"));
  EXPECT_TRUE(Accepts(g, "xyxyx"));
  EXPECT_FALSE(Accepts(g, "xy"));
}

TEST(EbnfParser, CommentsAndEscapes) {
  Grammar g = ParseEbnfOrThrow(
      "# leading comment\n"
      "root ::= \"\\n\" \"\\t\" \"\\x41\" \"\\u00e9\" # trailing\n");
  EXPECT_TRUE(Accepts(g, "\n\tA\xC3\xA9"));
}

TEST(EbnfParser, EmptyAlternative) {
  Grammar g = ParseEbnfOrThrow(R"(root ::= "a" | "")");
  EXPECT_TRUE(Accepts(g, "a"));
  EXPECT_TRUE(Accepts(g, ""));
}

TEST(EbnfParser, EmptyBodyIsEpsilonRule) {
  Grammar g = ParseEbnfOrThrow("root ::=");
  EXPECT_TRUE(Accepts(g, ""));
  EXPECT_FALSE(Accepts(g, "x"));
}

class EbnfErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EbnfErrorTest, Rejected) {
  EbnfParseResult result = ParseEbnf(GetParam());
  EXPECT_FALSE(result.ok) << GetParam();
  EXPECT_FALSE(result.error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EbnfErrorTest,
    ::testing::Values("root ::= undefined_rule",       // dangling reference
                      "::= \"x\"",                     // missing name
                      "root \"x\"",                    // missing ::=
                      "root ::= \"unterminated",       // bad literal
                      "root ::= [unclosed",            // bad class
                      "root ::= (\"a\"",               // missing )
                      "root ::= \"a\" {2,1}",          // inverted bounds
                      "other ::= \"x\"",               // no root rule
                      "root ::= \"a\"\nroot ::= \"b\""  // duplicate definition
                      ));

TEST(EbnfParser, RootRuleNameConfigurable) {
  EbnfParseResult result = ParseEbnf("main ::= \"m\"", "main");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.grammar.GetRule(result.grammar.RootRule()).name, "main");
}

TEST(GrammarPrinter, RoundTripsThroughParser) {
  const char* sources[] = {
      R"(root ::= "a" ("b" | "c")* [x-z]+ "tail"{2,4})",
      R"(root ::= "" | "nested" (("deep" | "deeper") "end")?)",
  };
  for (const char* source : sources) {
    Grammar g1 = ParseEbnfOrThrow(source);
    std::string printed1 = g1.ToString();
    Grammar g2 = ParseEbnfOrThrow(printed1);
    // Printing is a fixpoint after one round trip.
    EXPECT_EQ(g2.ToString(), printed1) << source;
  }
}

TEST(GrammarPrinter, BuiltinGrammarsRoundTrip) {
  for (const Grammar& g :
       {BuiltinJsonGrammar(), BuiltinXmlGrammar(), BuiltinPythonDslGrammar()}) {
    std::string printed = g.ToString();
    Grammar reparsed = ParseEbnfOrThrow(printed);
    EXPECT_EQ(reparsed.ToString(), printed);
  }
}

TEST(GrammarTransform, NormalizeFlattensNesting) {
  Grammar g;
  RuleId r = g.DeclareRule("root");
  ExprId a = g.AddByteString("a");
  ExprId b = g.AddByteString("b");
  ExprId inner_seq = g.AddSequence({a, b});
  ExprId c = g.AddByteString("c");
  ExprId outer = g.AddSequence({inner_seq, c, g.AddEmpty()});
  g.SetRuleBody(r, outer);
  g.SetRootRule(r);
  NormalizeGrammar(&g);
  const Expr& body = g.GetExpr(g.GetRule(r).body);
  ASSERT_EQ(body.type, ExprType::kSequence);
  EXPECT_EQ(body.children.size(), 3u);  // a b c, epsilon dropped
  for (ExprId child : body.children) {
    EXPECT_EQ(g.GetExpr(child).type, ExprType::kByteString);
  }
}

TEST(GrammarTransform, InliningPreservesLanguage) {
  const char* source = R"(
    root ::= item ("," item)*
    item ::= digit digit | letter
    digit ::= [0-9]
    letter ::= [a-z]
  )";
  Grammar original = ParseEbnfOrThrow(source);
  Grammar inlined = ParseEbnfOrThrow(source);
  int count = InlineFragmentRules(&inlined);
  EXPECT_GT(count, 0);
  EXPECT_LT(inlined.NumRules(), original.NumRules());
  for (const char* text : {"12", "a", "12,a,34", "a,b", "", "1", "12,", "1a"}) {
    EXPECT_EQ(Accepts(original, text), Accepts(inlined, text)) << text;
  }
}

TEST(GrammarTransform, InliningRespectsSizeCap) {
  Grammar g = ParseEbnfOrThrow(R"(
    root ::= big big
    big ::= "0123456789012345678901234567890123456789"
  )");
  InlineOptions options;
  options.max_inlinee_atoms = 8;  // "big" is larger than this
  EXPECT_EQ(InlineFragmentRules(&g, options), 0);
  EXPECT_EQ(g.NumRules(), 2);
}

TEST(GrammarTransform, InliningNeverRemovesRoot) {
  Grammar g = ParseEbnfOrThrow("root ::= \"tiny\"");
  InlineFragmentRules(&g);
  EXPECT_EQ(g.NumRules(), 1);
  EXPECT_EQ(g.GetRule(g.RootRule()).name, "root");
}

TEST(GrammarTransform, RemoveUnreachableRules) {
  Grammar g = ParseEbnfOrThrow(R"(
    root ::= used
    used ::= "u"
    orphan ::= "o" other
    other ::= "x"
  )");
  EXPECT_EQ(RemoveUnreachableRules(&g), 2);
  EXPECT_EQ(g.NumRules(), 2);
  EXPECT_EQ(g.FindRule("orphan"), kInvalidRule);
  EXPECT_TRUE(Accepts(g, "u"));
}

TEST(Grammar, ExprSizeCountsAtoms) {
  Grammar g;
  RuleId r = g.DeclareRule("root");
  ExprId body = g.AddSequence({g.AddByteString("abc"), g.AddCharClass({{'a', 'z'}})});
  g.SetRuleBody(r, body);
  g.SetRootRule(r);
  EXPECT_EQ(g.ExprSize(body), 5);  // 3 bytes + 1 class + 1 container
}

TEST(Grammar, ValidateCatchesMissingBody) {
  Grammar g;
  g.DeclareRule("root");
  g.SetRootRule(0);
  EXPECT_THROW(g.Validate(), CheckError);
}

TEST(Grammar, RepeatBoundsChecked) {
  Grammar g;
  ExprId a = g.AddByteString("a");
  EXPECT_THROW(g.AddRepeat(a, -1, 2), CheckError);
  EXPECT_THROW(g.AddRepeat(a, 3, 2), CheckError);
  EXPECT_NO_THROW(g.AddRepeat(a, 2, -1));
}

TEST(BuiltinGrammars, ParseAndValidate) {
  for (Grammar g :
       {BuiltinJsonGrammar(), BuiltinXmlGrammar(), BuiltinPythonDslGrammar()}) {
    g.Validate();
    EXPECT_GT(g.NumRules(), 3);
  }
}

TEST(BuiltinGrammars, XmlAcceptsRepresentativeDocuments) {
  Grammar g = BuiltinXmlGrammar();
  EXPECT_TRUE(Accepts(g, "<a/>"));
  EXPECT_TRUE(Accepts(g, R"(<a b="c">text</a>)"));
  EXPECT_TRUE(Accepts(g, "<a><!-- note --><b/>x &amp; y</a>"));
  EXPECT_TRUE(Accepts(g, "<a>&#x41;&#65;</a>"));
  EXPECT_FALSE(Accepts(g, "<a>"));          // unclosed
  EXPECT_FALSE(Accepts(g, "<a>&bogus;</a>"));  // unknown entity
  EXPECT_FALSE(Accepts(g, "plain text"));
}

TEST(BuiltinGrammars, PythonDslAcceptsRepresentativePrograms) {
  Grammar g = BuiltinPythonDslGrammar();
  EXPECT_TRUE(Accepts(g, "x = 1\n"));
  EXPECT_TRUE(Accepts(g, "if x > 2: y = x * 3\n"));
  EXPECT_TRUE(Accepts(g, "for i in items: total += i\n"));
  EXPECT_TRUE(Accepts(g, "while True: pass\n"));
  EXPECT_TRUE(Accepts(g, "s = \"str\"\nf = 1.5\nb = False\n"));
  EXPECT_TRUE(Accepts(g, "if a == b:\nx = f(1, 2)\ny = items[0]\n"));
  EXPECT_FALSE(Accepts(g, "x = \n"));
  EXPECT_FALSE(Accepts(g, "if : pass\n"));
}

}  // namespace
}  // namespace xgr::grammar
