// Tests for the memoizing GrammarCompiler: hit/miss accounting, artifact
// sharing, per-source isolation, error retry, and thread safety.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/grammar_compiler.h"
#include "support/logging.h"
#include "support/status.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr::cache {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2000, 17}));
  return info;
}

TEST(GrammarCompiler, MemoizesBySource) {
  GrammarCompiler compiler(TestTokenizer());
  auto a = compiler.CompileEbnf("root ::= \"yes\" | \"no\"");
  auto b = compiler.CompileEbnf("root ::= \"yes\" | \"no\"");
  EXPECT_EQ(a.get(), b.get());  // the exact artifact is shared
  EXPECT_EQ(compiler.Stats().hits, 1);  // sequential repeat: a true hit
  EXPECT_EQ(compiler.Stats().coalesced_waits, 0);
  EXPECT_EQ(compiler.Stats().misses, 1);
}

TEST(GrammarCompiler, DistinctSourcesDistinctArtifacts) {
  GrammarCompiler compiler(TestTokenizer());
  auto a = compiler.CompileEbnf("root ::= \"a\"+");
  auto b = compiler.CompileEbnf("root ::= \"b\"+");
  auto c = compiler.CompileRegex("a+");
  auto d = compiler.CompileJsonSchema(R"({"type":"integer"})");
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(c.get(), d.get());
  EXPECT_EQ(compiler.Stats().misses, 4);
  EXPECT_GT(compiler.Stats().compile_seconds, 0.0);
}

TEST(GrammarCompiler, SourceKindsDoNotCollide) {
  // The same text through different frontends must not share a cache slot.
  GrammarCompiler compiler(TestTokenizer());
  auto as_regex = compiler.CompileRegex("[0-9]+");
  auto as_ebnf = compiler.CompileEbnf("root ::= [0-9]+");
  EXPECT_NE(as_regex.get(), as_ebnf.get());
  EXPECT_EQ(compiler.Stats().misses, 2);
}

TEST(GrammarCompiler, RootRuleIsPartOfTheKey) {
  GrammarCompiler compiler(TestTokenizer());
  const char* text = "root ::= item\nitem ::= \"x\"";
  auto by_root = compiler.CompileEbnf(text, "root");
  auto by_item = compiler.CompileEbnf(text, "item");
  EXPECT_NE(by_root.get(), by_item.get());
}

TEST(GrammarCompiler, FailuresPropagateAndAllowRetry) {
  GrammarCompiler compiler(TestTokenizer());
  EXPECT_THROW(compiler.CompileEbnf("root ::= \"unterminated"), CheckError);
  // A deterministic parse failure is negative-cached: the repeat fails again
  // (served from the memo, not recompiled) and a corrected source — a
  // different key — compiles normally.
  EXPECT_THROW(compiler.CompileEbnf("root ::= \"unterminated"), CheckError);
  EXPECT_EQ(compiler.Stats().negative_hits, 1);
  auto fixed = compiler.CompileEbnf("root ::= \"terminated\"");
  EXPECT_NE(fixed, nullptr);
}

TEST(GrammarCompiler, NegativeCacheServesTheOriginalErrorAndClears) {
  GrammarCompiler compiler(TestTokenizer());
  std::string first_error;
  try {
    compiler.CompileEbnf("root ::= \"broken");
  } catch (const CheckError& e) {
    first_error = e.what();
  }
  ASSERT_FALSE(first_error.empty());
  // The cached rejection carries the original diagnostic and a structured
  // kPoisoned code — O(1), no re-parse.
  try {
    compiler.CompileEbnf("root ::= \"broken");
    FAIL() << "expected the negative-cached failure to throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kPoisoned);
    EXPECT_NE(std::string(e.what()).find(first_error), std::string::npos);
  }
  EXPECT_EQ(compiler.Stats().negative_hits, 1);
  // Clear() drops the negative cache too: the source is re-parsed (and
  // fails afresh, as a plain CheckError).
  compiler.Clear();
  EXPECT_THROW(compiler.CompileEbnf("root ::= \"broken"), CheckError);
  EXPECT_EQ(compiler.Stats().negative_hits, 1);
}

TEST(GrammarCompiler, ClearDropsMemo) {
  GrammarCompiler compiler(TestTokenizer());
  auto a = compiler.CompileBuiltinJson();
  compiler.Clear();
  auto b = compiler.CompileBuiltinJson();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(compiler.Stats().misses, 2);
}

TEST(GrammarCompiler, ConcurrentSameKeyCompilesOnce) {
  GrammarCompiler compiler(TestTokenizer());
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const AdaptiveTokenMaskCache>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        results[static_cast<std::size_t>(t)] =
            compiler.CompileJsonSchema(R"({"type":"object","properties":
              {"x":{"type":"integer"}},"required":["x"],
              "additionalProperties":false})");
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<std::size_t>(t)].get(), results[0].get());
  }
  // One build; every other caller either found the finished artifact (hit)
  // or blocked behind the in-flight build (coalesced wait) — the split the
  // stats must not blur (a blocked caller is not a cache hit).
  GrammarCompilerStats stats = compiler.Stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits + stats.coalesced_waits, kThreads - 1);
}

TEST(GrammarCompiler, MidBuildArrivalIsACoalescedWaitNotAHit) {
  // The miss is recorded when the owner installs the in-flight future —
  // *before* the build — so entering right after observing the miss lands
  // mid-build and must be counted as a coalesced wait, not a hit. Whether a
  // given arrival actually lands mid-build is a scheduling race (under
  // heavy machine load the owner can finish first), so the test retries
  // with a fresh key until one does; every attempt, either way, must
  // account the arrival exactly once.
  GrammarCompiler compiler(TestTokenizer());
  bool observed_coalesced = false;
  std::string last_text;
  for (int attempt = 0; attempt < 50 && !observed_coalesced; ++attempt) {
    // A nested JSON-ish grammar: expensive enough (~tens of ms per build)
    // that the mid-build window dwarfs a scheduling quantum even on a
    // heavily loaded box; the leading literal makes each attempt's key
    // fresh.
    last_text = "root ::= \"k" + std::to_string(attempt) +
                ":\" obj\n"
                "obj ::= \"{\" pair (\",\" pair)* \"}\"\n"
                "pair ::= \"\\\"\" [a-z]+ \"\\\"\" \":\" value\n"
                "value ::= num | str | obj | arr\n"
                "arr ::= \"[\" value (\",\" value)* \"]\"\n"
                "num ::= \"-\"? [0-9]+ (\".\" [0-9]+)?\n"
                "str ::= \"\\\"\" [a-z0-9 ]* \"\\\"\"";
    GrammarCompilerStats before = compiler.Stats();
    std::thread owner([&] { compiler.CompileEbnf(last_text); });
    while (compiler.Stats().misses == before.misses) std::this_thread::yield();
    auto shared = compiler.CompileEbnf(last_text);
    owner.join();
    ASSERT_NE(shared, nullptr);
    GrammarCompilerStats now = compiler.Stats();
    EXPECT_EQ(now.misses, before.misses + 1);  // one build per key
    // The arrival is either a wait (landed mid-build) or a hit (the build
    // won the race) — exactly one of the two, never both, never neither.
    EXPECT_EQ((now.coalesced_waits - before.coalesced_waits) +
                  (now.hits - before.hits),
              1);
    observed_coalesced = now.coalesced_waits > before.coalesced_waits;
  }
  EXPECT_TRUE(observed_coalesced)
      << "no arrival landed mid-build in 50 attempts";
  // After the build has completed, a repeat of the same key is a true hit.
  GrammarCompilerStats before_repeat = compiler.Stats();
  compiler.CompileEbnf(last_text);
  GrammarCompilerStats after_repeat = compiler.Stats();
  EXPECT_EQ(after_repeat.hits, before_repeat.hits + 1);
  EXPECT_EQ(after_repeat.coalesced_waits, before_repeat.coalesced_waits);
}

TEST(GrammarCompiler, CompileOptionsAreHonored) {
  pda::CompileOptions options = pda::CompileOptions::AllDisabled();
  GrammarCompiler unoptimized(TestTokenizer(), options);
  GrammarCompiler optimized(TestTokenizer());
  auto a = unoptimized.CompileBuiltinJson();
  auto b = optimized.CompileBuiltinJson();
  EXPECT_FALSE(a->Pda().Options().context_expansion);
  EXPECT_TRUE(b->Pda().Options().context_expansion);
  // Without context expansion, more tokens stay context-dependent.
  EXPECT_GT(a->Stats().context_dependent, b->Stats().context_dependent);
}

}  // namespace
}  // namespace xgr::cache
