// Tests for the memoizing GrammarCompiler: hit/miss accounting, artifact
// sharing, per-source isolation, error retry, and thread safety.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/grammar_compiler.h"
#include "support/logging.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr::cache {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2000, 17}));
  return info;
}

TEST(GrammarCompiler, MemoizesBySource) {
  GrammarCompiler compiler(TestTokenizer());
  auto a = compiler.CompileEbnf("root ::= \"yes\" | \"no\"");
  auto b = compiler.CompileEbnf("root ::= \"yes\" | \"no\"");
  EXPECT_EQ(a.get(), b.get());  // the exact artifact is shared
  EXPECT_EQ(compiler.Stats().hits, 1);
  EXPECT_EQ(compiler.Stats().misses, 1);
}

TEST(GrammarCompiler, DistinctSourcesDistinctArtifacts) {
  GrammarCompiler compiler(TestTokenizer());
  auto a = compiler.CompileEbnf("root ::= \"a\"+");
  auto b = compiler.CompileEbnf("root ::= \"b\"+");
  auto c = compiler.CompileRegex("a+");
  auto d = compiler.CompileJsonSchema(R"({"type":"integer"})");
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(c.get(), d.get());
  EXPECT_EQ(compiler.Stats().misses, 4);
  EXPECT_GT(compiler.Stats().compile_seconds, 0.0);
}

TEST(GrammarCompiler, SourceKindsDoNotCollide) {
  // The same text through different frontends must not share a cache slot.
  GrammarCompiler compiler(TestTokenizer());
  auto as_regex = compiler.CompileRegex("[0-9]+");
  auto as_ebnf = compiler.CompileEbnf("root ::= [0-9]+");
  EXPECT_NE(as_regex.get(), as_ebnf.get());
  EXPECT_EQ(compiler.Stats().misses, 2);
}

TEST(GrammarCompiler, RootRuleIsPartOfTheKey) {
  GrammarCompiler compiler(TestTokenizer());
  const char* text = "root ::= item\nitem ::= \"x\"";
  auto by_root = compiler.CompileEbnf(text, "root");
  auto by_item = compiler.CompileEbnf(text, "item");
  EXPECT_NE(by_root.get(), by_item.get());
}

TEST(GrammarCompiler, FailuresPropagateAndAllowRetry) {
  GrammarCompiler compiler(TestTokenizer());
  EXPECT_THROW(compiler.CompileEbnf("root ::= \"unterminated"), CheckError);
  // The failed key is evicted, so fixing the source works and a repeat of
  // the broken source fails again (not a cached success).
  EXPECT_THROW(compiler.CompileEbnf("root ::= \"unterminated"), CheckError);
  auto fixed = compiler.CompileEbnf("root ::= \"terminated\"");
  EXPECT_NE(fixed, nullptr);
}

TEST(GrammarCompiler, ClearDropsMemo) {
  GrammarCompiler compiler(TestTokenizer());
  auto a = compiler.CompileBuiltinJson();
  compiler.Clear();
  auto b = compiler.CompileBuiltinJson();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(compiler.Stats().misses, 2);
}

TEST(GrammarCompiler, ConcurrentSameKeyCompilesOnce) {
  GrammarCompiler compiler(TestTokenizer());
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const AdaptiveTokenMaskCache>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        results[static_cast<std::size_t>(t)] =
            compiler.CompileJsonSchema(R"({"type":"object","properties":
              {"x":{"type":"integer"}},"required":["x"],
              "additionalProperties":false})");
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<std::size_t>(t)].get(), results[0].get());
  }
  EXPECT_EQ(compiler.Stats().misses, 1);
  EXPECT_EQ(compiler.Stats().hits, kThreads - 1);
}

TEST(GrammarCompiler, CompileOptionsAreHonored) {
  pda::CompileOptions options = pda::CompileOptions::AllDisabled();
  GrammarCompiler unoptimized(TestTokenizer(), options);
  GrammarCompiler optimized(TestTokenizer());
  auto a = unoptimized.CompileBuiltinJson();
  auto b = optimized.CompileBuiltinJson();
  EXPECT_FALSE(a->Pda().Options().context_expansion);
  EXPECT_TRUE(b->Pda().Options().context_expansion);
  // Without context expansion, more tokens stay context-dependent.
  EXPECT_GT(a->Stats().context_dependent, b->Stats().context_dependent);
}

}  // namespace
}  // namespace xgr::cache
