// Tests for the JSON substrate: parsing, serialization, validation.
#include <gtest/gtest.h>

#include "json/json.h"
#include "support/logging.h"

namespace xgr::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Parse("null").value->IsNull());
  EXPECT_EQ(Parse("true").value->AsBool(), true);
  EXPECT_EQ(Parse("false").value->AsBool(), false);
  EXPECT_DOUBLE_EQ(Parse("3.25").value->AsNumber(), 3.25);
  EXPECT_EQ(Parse("-17").value->AsInteger(), -17);
  EXPECT_DOUBLE_EQ(Parse("1e3").value->AsNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(Parse("2E-2").value->AsNumber(), 0.02);
  EXPECT_EQ(Parse("\"hi\"").value->AsString(), "hi");
}

TEST(JsonParse, Containers) {
  auto doc = Parse(R"({"a": [1, 2, {"b": null}], "c": "d"})");
  ASSERT_TRUE(doc.ok());
  const Value& v = *doc.value;
  EXPECT_EQ(v.AsObject().size(), 2u);
  EXPECT_EQ(v.Find("a")->AsArray().size(), 3u);
  EXPECT_TRUE(v.Find("a")->AsArray()[2].Find("b")->IsNull());
  EXPECT_EQ(v.Find("c")->AsString(), "d");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Parse(R"("\n\t\r\b\f\\\/\"")").value->AsString(), "\n\t\r\b\f\\/\"");
  EXPECT_EQ(Parse(R"("A")").value->AsString(), "A");
  EXPECT_EQ(Parse(R"("é")").value->AsString(), "\xC3\xA9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Parse(R"("😀")").value->AsString(), "\xF0\x9F\x98\x80");
}

class JsonInvalidTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonInvalidTest, Rejected) {
  ParseResult result = Parse(GetParam());
  EXPECT_FALSE(result.ok()) << GetParam();
  EXPECT_FALSE(result.error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, JsonInvalidTest,
    ::testing::Values("", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "01", "1.",
                      "1e", "+1", "tru", "nul", "\"unterminated", "\"\\q\"",
                      "\"\\u12G4\"", "[1] extra", "{'a':1}", "\"\\uD800\"",
                      "\"\x01\"", "[1 2]", "{\"a\":1,}"));

class JsonValidTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonValidTest, Accepted) { EXPECT_TRUE(IsValid(GetParam())) << GetParam(); }

INSTANTIATE_TEST_SUITE_P(
    Cases, JsonValidTest,
    ::testing::Values("0", "-0", "0.5", "[[[[]]]]", "{}", "[]", " 1 ",
                      "{\"\":\"\"}", "\"\\u0000\"", "1e+30", "[null,true]",
                      "{\"a\":{\"a\":{\"a\":1}}}"));

TEST(JsonDump, RoundTripsCompact) {
  const char* docs[] = {
      R"({"a":[1,2.5,"x"],"b":null})",
      R"([true,false,[],{}])",
      R"("esc \" \\ \n")",
      R"({"nested":{"deep":[{"k":"v"}]}})",
  };
  for (const char* doc : docs) {
    ParseResult first = Parse(doc);
    ASSERT_TRUE(first.ok()) << doc;
    std::string dumped = first.value->Dump();
    ParseResult second = Parse(dumped);
    ASSERT_TRUE(second.ok()) << dumped;
    EXPECT_TRUE(*first.value == *second.value) << dumped;
    // Dump is a fixpoint: dumping again yields identical bytes.
    EXPECT_EQ(second.value->Dump(), dumped);
  }
}

TEST(JsonDump, PrettyPrint) {
  Value v(Object{{"a", Value(Array{Value(1), Value(2)})}});
  EXPECT_EQ(v.Dump(2), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonDump, ControlCharactersEscaped) {
  Value v(std::string("\x01\x1F"));
  EXPECT_EQ(v.Dump(), "\"\\u0001\\u001F\"");
  EXPECT_TRUE(IsValid(v.Dump()));
}

TEST(JsonValue, IntegerDetection) {
  EXPECT_TRUE(Parse("42").value->IsInteger());
  EXPECT_TRUE(Parse("-7").value->IsInteger());
  EXPECT_TRUE(Parse("2.0").value->IsInteger());
  EXPECT_FALSE(Parse("2.5").value->IsInteger());
  EXPECT_FALSE(Parse("\"2\"").value->IsInteger());
}

TEST(JsonValue, MutationCopiesOnWrite) {
  Value inner(Array{Value(1)});
  Value a(Object{{"k", inner}});
  Value b = a;  // shares structure
  b.MutableObject().at("k").MutableArray().push_back(Value(2));
  EXPECT_EQ(a.Find("k")->AsArray().size(), 1u);
  EXPECT_EQ(b.Find("k")->AsArray().size(), 2u);
}

TEST(JsonParse, DepthLimitEnforced) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Parse(deep).ok());
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(Parse(ok).ok());
}

TEST(JsonValue, TypeMismatchThrows) {
  Value v(3.0);
  EXPECT_THROW(v.AsString(), ::xgr::CheckError);
  EXPECT_THROW(v.AsArray(), ::xgr::CheckError);
  EXPECT_THROW(Value("x").AsNumber(), ::xgr::CheckError);
}

}  // namespace
}  // namespace xgr::json
