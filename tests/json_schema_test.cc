// Tests for the JSON-Schema → grammar converter: every supported keyword,
// plus property tests over the synthetic schema dataset (canonical answers
// accepted, mutations rejected).
#include <gtest/gtest.h>

#include "datasets/workloads.h"
#include "grammar/json_schema.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"

namespace xgr::grammar {
namespace {

bool SchemaAccepts(const std::string& schema_text, const std::string& instance) {
  Grammar g = JsonSchemaTextToGrammar(schema_text);
  auto pda = pda::CompiledGrammar::Compile(g);
  matcher::GrammarMatcher m(pda);
  return m.AcceptString(instance) && m.CanTerminate();
}

TEST(JsonSchema, ScalarTypes) {
  EXPECT_TRUE(SchemaAccepts(R"({"type":"string"})", R"("hi there")"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"string"})", "42"));
  EXPECT_TRUE(SchemaAccepts(R"({"type":"integer"})", "-12"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"integer"})", "1.5"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"integer"})", "01"));
  EXPECT_TRUE(SchemaAccepts(R"({"type":"number"})", "3.25e-2"));
  EXPECT_TRUE(SchemaAccepts(R"({"type":"boolean"})", "true"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"boolean"})", "yes"));
  EXPECT_TRUE(SchemaAccepts(R"({"type":"null"})", "null"));
}

TEST(JsonSchema, StringEscapesAccepted) {
  EXPECT_TRUE(SchemaAccepts(R"({"type":"string"})", R"("a\"b\\cA")"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"string"})", R"("bad\q")"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"string"})", "\"ctrl\x02\""));
  // Raw multi-byte UTF-8 inside strings.
  EXPECT_TRUE(SchemaAccepts(R"({"type":"string"})", "\"caf\xC3\xA9 \xF0\x9F\x98\x80\""));
}

TEST(JsonSchema, EnumAndConst) {
  const char* schema = R"({"enum":["red","green",7,true,null]})";
  EXPECT_TRUE(SchemaAccepts(schema, R"("red")"));
  EXPECT_TRUE(SchemaAccepts(schema, "7"));
  EXPECT_TRUE(SchemaAccepts(schema, "true"));
  EXPECT_TRUE(SchemaAccepts(schema, "null"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("blue")"));
  EXPECT_TRUE(SchemaAccepts(R"({"const":{"k":1}})", R"({"k":1})"));
  EXPECT_FALSE(SchemaAccepts(R"({"const":{"k":1}})", R"({"k":2})"));
}

TEST(JsonSchema, ObjectRequiredProperties) {
  const char* schema = R"({
    "type":"object",
    "properties":{"a":{"type":"integer"},"b":{"type":"string"}},
    "required":["a","b"],
    "additionalProperties": false
  })";
  EXPECT_TRUE(SchemaAccepts(schema, R"({"a":1,"b":"x"})"));
  EXPECT_FALSE(SchemaAccepts(schema, R"({"a":1})"));
  EXPECT_FALSE(SchemaAccepts(schema, R"({"b":"x","a":1})"));  // fixed order
  EXPECT_FALSE(SchemaAccepts(schema, R"({"a":1,"b":"x","c":2})"));
}

TEST(JsonSchema, ObjectOptionalProperties) {
  const char* schema = R"({
    "type":"object",
    "properties":{"a":{"type":"integer"},"b":{"type":"string"},"c":{"type":"boolean"}},
    "required":["b"],
    "additionalProperties": false
  })";
  EXPECT_TRUE(SchemaAccepts(schema, R"({"b":"x"})"));
  EXPECT_TRUE(SchemaAccepts(schema, R"({"a":1,"b":"x"})"));
  EXPECT_TRUE(SchemaAccepts(schema, R"({"b":"x","c":true})"));
  EXPECT_TRUE(SchemaAccepts(schema, R"({"a":1,"b":"x","c":false})"));
  EXPECT_FALSE(SchemaAccepts(schema, R"({"a":1,"c":true})"));  // missing b
  EXPECT_FALSE(SchemaAccepts(schema, R"({"a":1,"b":"x",})"));
}

TEST(JsonSchema, AllOptionalAllowsEmptyObject) {
  const char* schema = R"({
    "type":"object",
    "properties":{"a":{"type":"integer"}},
    "additionalProperties": false
  })";
  EXPECT_TRUE(SchemaAccepts(schema, "{}"));
  EXPECT_TRUE(SchemaAccepts(schema, R"({"a":5})"));
}

TEST(JsonSchema, AdditionalProperties) {
  const char* schema = R"({
    "type":"object",
    "properties":{"id":{"type":"integer"}},
    "required":["id"],
    "additionalProperties": {"type":"string"}
  })";
  EXPECT_TRUE(SchemaAccepts(schema, R"({"id":1})"));
  EXPECT_TRUE(SchemaAccepts(schema, R"({"id":1,"x":"y"})"));
  EXPECT_TRUE(SchemaAccepts(schema, R"({"id":1,"x":"y","z":"w"})"));
  EXPECT_FALSE(SchemaAccepts(schema, R"({"id":1,"x":2})"));  // extra must be string
}

TEST(JsonSchema, EmptyObjectSchema) {
  EXPECT_TRUE(SchemaAccepts(R"({"type":"object","additionalProperties":false})", "{}"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"object","additionalProperties":false})",
                             R"({"a":1})"));
}

TEST(JsonSchema, Arrays) {
  const char* schema = R"({"type":"array","items":{"type":"integer"}})";
  EXPECT_TRUE(SchemaAccepts(schema, "[]"));
  EXPECT_TRUE(SchemaAccepts(schema, "[1]"));
  EXPECT_TRUE(SchemaAccepts(schema, "[1,2,3]"));
  EXPECT_FALSE(SchemaAccepts(schema, R"([1,"x"])"));
  EXPECT_FALSE(SchemaAccepts(schema, "[1,]"));
}

TEST(JsonSchema, ArrayBounds) {
  const char* schema =
      R"({"type":"array","items":{"type":"integer"},"minItems":2,"maxItems":3})";
  EXPECT_FALSE(SchemaAccepts(schema, "[1]"));
  EXPECT_TRUE(SchemaAccepts(schema, "[1,2]"));
  EXPECT_TRUE(SchemaAccepts(schema, "[1,2,3]"));
  EXPECT_FALSE(SchemaAccepts(schema, "[1,2,3,4]"));
}

TEST(JsonSchema, AnyOf) {
  const char* schema = R"({"anyOf":[{"type":"integer"},{"type":"string"}]})";
  EXPECT_TRUE(SchemaAccepts(schema, "3"));
  EXPECT_TRUE(SchemaAccepts(schema, R"("s")"));
  EXPECT_FALSE(SchemaAccepts(schema, "true"));
}

TEST(JsonSchema, TypeArray) {
  const char* schema = R"({"type":["integer","null"]})";
  EXPECT_TRUE(SchemaAccepts(schema, "5"));
  EXPECT_TRUE(SchemaAccepts(schema, "null"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("s")"));
}

TEST(JsonSchema, RefAndRecursion) {
  const char* schema = R"({
    "type":"object",
    "properties":{"value":{"type":"integer"},
                   "next":{"anyOf":[{"$ref":"#/$defs/node"},{"type":"null"}]}},
    "required":["value","next"],
    "additionalProperties": false,
    "$defs":{"node":{
      "type":"object",
      "properties":{"value":{"type":"integer"},
                     "next":{"anyOf":[{"$ref":"#/$defs/node"},{"type":"null"}]}},
      "required":["value","next"],
      "additionalProperties": false}}
  })";
  EXPECT_TRUE(SchemaAccepts(schema, R"({"next":null,"value":1})"));
  EXPECT_TRUE(SchemaAccepts(
      schema, R"({"next":{"next":{"next":null,"value":3},"value":2},"value":1})"));
  EXPECT_FALSE(SchemaAccepts(schema, R"({"next":{},"value":1})"));
}

TEST(JsonSchema, StringPattern) {
  const char* schema = R"({"type":"string","pattern":"[A-Z]{2}-[0-9]{4}"})";
  EXPECT_TRUE(SchemaAccepts(schema, R"("AB-1234")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("ab-1234")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("AB-123")"));
}

TEST(JsonSchema, StringLengthBounds) {
  const char* schema = R"({"type":"string","minLength":2,"maxLength":4})";
  EXPECT_FALSE(SchemaAccepts(schema, R"("a")"));
  EXPECT_TRUE(SchemaAccepts(schema, R"("ab")"));
  EXPECT_TRUE(SchemaAccepts(schema, R"("abcd")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("abcde")"));
}

TEST(JsonSchema, UntypedFallsBackToAnyValue) {
  const char* schema = R"({"type":"object","properties":{"x":{}},
                           "required":["x"],"additionalProperties":false})";
  EXPECT_TRUE(SchemaAccepts(schema, R"({"x":123})"));
  EXPECT_TRUE(SchemaAccepts(schema, R"({"x":{"nested":[1,"two",null]}})"));
  EXPECT_TRUE(SchemaAccepts(schema, R"({"x":[[],{}]})"));
}

TEST(JsonSchema, BooleanSchemas) {
  EXPECT_TRUE(SchemaAccepts("true", R"({"anything":[1,2]})"));
  EXPECT_THROW(JsonSchemaTextToGrammar("false"), CheckError);
}

TEST(JsonSchema, UnsupportedConstructsThrow) {
  EXPECT_THROW(JsonSchemaTextToGrammar(R"({"type":"frob"})"), CheckError);
  EXPECT_THROW(JsonSchemaTextToGrammar(R"({"$ref":"http://remote"})"), CheckError);
  EXPECT_THROW(
      JsonSchemaTextToGrammar(R"({"allOf":[{"type":"integer"},{"type":"number"}]})"),
      CheckError);
  EXPECT_NO_THROW(JsonSchemaTextToGrammar(R"({"allOf":[{"type":"integer"}]})"));
}

TEST(JsonSchema, AllOfMergesObjectSchemas) {
  const char* schema = R"({
    "allOf": [
      {"type":"object","properties":{"a":{"type":"integer"}},"required":["a"]},
      {"type":"object","properties":{"b":{"type":"string"}},"required":["b"],
       "additionalProperties": false}
    ]
  })";
  EXPECT_TRUE(SchemaAccepts(schema, R"({"a":1,"b":"x"})"));
  EXPECT_FALSE(SchemaAccepts(schema, R"({"a":1})"));          // b required
  EXPECT_FALSE(SchemaAccepts(schema, R"({"b":"x"})"));        // a required
  EXPECT_FALSE(SchemaAccepts(schema, R"({"a":1,"b":"x","c":2})"));  // AND of AP
  EXPECT_FALSE(SchemaAccepts(schema, R"({"a":"s","b":"x"})"));
}

TEST(JsonSchema, AllOfRejectsConflictingRedefinition) {
  EXPECT_THROW(JsonSchemaTextToGrammar(R"({
    "allOf": [
      {"type":"object","properties":{"a":{"type":"integer"}}},
      {"type":"object","properties":{"a":{"type":"string"}}}
    ]
  })"),
               CheckError);
}

TEST(JsonSchema, FormatDate) {
  const char* schema = R"({"type":"string","format":"date"})";
  EXPECT_TRUE(SchemaAccepts(schema, R"("2026-06-09")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("2026-13-09")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("2026-06-32")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("26-06-09")"));
}

TEST(JsonSchema, FormatDateTime) {
  const char* schema = R"({"type":"string","format":"date-time"})";
  EXPECT_TRUE(SchemaAccepts(schema, R"("2026-06-09T23:59:01Z")"));
  EXPECT_TRUE(SchemaAccepts(schema, R"("2026-06-09T12:00:00.25+05:30")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("2026-06-09 23:59:01Z")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("2026-06-09T24:00:00Z")"));
}

TEST(JsonSchema, FormatUuid) {
  const char* schema = R"({"type":"string","format":"uuid"})";
  EXPECT_TRUE(SchemaAccepts(schema, R"("123e4567-e89b-12d3-a456-426614174000")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("123e4567e89b12d3a456426614174000")"));
  EXPECT_FALSE(SchemaAccepts(schema, R"("123e4567-e89b-12d3-a456-42661417400g")"));
}

TEST(JsonSchema, FormatEmailAndIpv4) {
  EXPECT_TRUE(SchemaAccepts(R"({"type":"string","format":"email"})",
                            R"("a.b+c@example.co")"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"string","format":"email"})",
                             R"("not an email")"));
  EXPECT_TRUE(SchemaAccepts(R"({"type":"string","format":"ipv4"})",
                            R"("192.168.0.255")"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"string","format":"ipv4"})",
                             R"("192.168.0.256")"));
  EXPECT_FALSE(SchemaAccepts(R"({"type":"string","format":"ipv4"})",
                             R"("192.168.0")"));
}

TEST(JsonSchema, UnknownFormatIsAnnotationOnly) {
  // Per the spec, unrecognized formats do not constrain the value.
  EXPECT_TRUE(SchemaAccepts(R"({"type":"string","format":"color-name"})",
                            R"("chartreuse")"));
}

TEST(JsonSchema, PrefixItemsTuple) {
  const char* schema = R"({
    "type":"array",
    "prefixItems":[{"type":"integer"},{"type":"string"}],
    "items": false
  })";
  EXPECT_TRUE(SchemaAccepts(schema, R"([1,"x"])"));
  EXPECT_FALSE(SchemaAccepts(schema, R"([1])"));        // tuple incomplete
  EXPECT_FALSE(SchemaAccepts(schema, R"([1,"x",2])"));  // items: false
  EXPECT_FALSE(SchemaAccepts(schema, R"(["x",1])"));    // order matters
}

TEST(JsonSchema, PrefixItemsWithTypedExtras) {
  const char* schema = R"({
    "type":"array",
    "prefixItems":[{"type":"string"}],
    "items": {"type":"integer"},
    "maxItems": 3
  })";
  EXPECT_TRUE(SchemaAccepts(schema, R"(["x"])"));
  EXPECT_TRUE(SchemaAccepts(schema, R"(["x",1,2])"));
  EXPECT_FALSE(SchemaAccepts(schema, R"(["x",1,2,3])"));  // maxItems
  EXPECT_FALSE(SchemaAccepts(schema, R"(["x","y"])"));    // extras typed
}

TEST(JsonSchema, PrefixItemsDefaultExtrasAreAnyValue) {
  const char* schema = R"({"type":"array","prefixItems":[{"type":"integer"}]})";
  EXPECT_TRUE(SchemaAccepts(schema, R"([1,{"k":null},"s"])"));
  EXPECT_FALSE(SchemaAccepts(schema, R"(["s"])"));
}

// --- Property tests over the synthetic dataset ------------------------------

class SchemaDatasetTest : public ::testing::TestWithParam<int> {};

TEST_P(SchemaDatasetTest, CanonicalAnswersAccepted) {
  auto tasks = datasets::GenerateSchemaTasks(1, static_cast<std::uint64_t>(GetParam()));
  const auto& task = tasks[0];
  Grammar g = JsonSchemaToGrammar(task.schema);
  auto pda = pda::CompiledGrammar::Compile(g);
  matcher::GrammarMatcher m(pda);
  std::string answer = task.canonical_answer.Dump();
  EXPECT_TRUE(m.AcceptString(answer)) << answer << "\nschema: " << task.schema.Dump();
  EXPECT_TRUE(m.CanTerminate());
}

TEST_P(SchemaDatasetTest, MutatedAnswersRejected) {
  auto tasks = datasets::GenerateSchemaTasks(1, static_cast<std::uint64_t>(GetParam()));
  const auto& task = tasks[0];
  Grammar g = JsonSchemaToGrammar(task.schema);
  auto pda = pda::CompiledGrammar::Compile(g);
  std::string answer = task.canonical_answer.Dump();
  // Structural mutations that must always break acceptance-at-termination.
  std::vector<std::string> mutations;
  mutations.push_back(answer + "}");                 // trailing garbage
  mutations.push_back(answer.substr(0, answer.size() - 1));  // truncated
  mutations.push_back("[" + answer + "]");            // wrapped
  std::string prose = "Sure! " + answer;               // leading prose
  mutations.push_back(prose);
  for (const std::string& mutated : mutations) {
    matcher::GrammarMatcher m(pda);
    bool accepted = m.AcceptString(mutated) && m.CanTerminate();
    EXPECT_FALSE(accepted) << mutated;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaDatasetTest,
                         ::testing::Range(100, 120));

}  // namespace
}  // namespace xgr::grammar
