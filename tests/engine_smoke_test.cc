// Integration tests for the serving-engine simulator: constrained generation
// stays on target, unconstrained generation can derail, jump-forward works.
#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "datasets/workloads.h"
#include "engine/serving_engine.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr {
namespace {

using baselines::DecoderFactory;
using baselines::EngineKind;
using engine::EngineOptions;
using engine::EngineRequest;
using engine::GrammarSchedule;
using engine::MockLlm;
using engine::ServingEngine;

std::shared_ptr<const tokenizer::TokenizerInfo> SmallTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({.size = 3000, .seed = 11}));
  return info;
}

EngineOptions FastOptions() {
  EngineOptions options;
  options.time_scale = 0.01;  // keep simulated GPU waits tiny in tests
  options.max_new_tokens = 96;
  return options;
}

TEST(EngineSmoke, ConstrainedGenerationFollowsTarget) {
  auto info = SmallTokenizer();
  auto tasks = datasets::GenerateSchemaTasks(3, 42);
  // No derailing: masked generation reproduces the target byte-for-byte.
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  EngineOptions options = FastOptions();
  ServingEngine engine(options, llm);

  for (const auto& task : tasks) {
    DecoderFactory factory(EngineKind::kXGrammar, info);
    factory.PrepareSchema(task.schema);
    EngineRequest request;
    request.decoder = factory.NewDecoder();
    request.target_text = task.canonical_answer.Dump();
    auto result = engine.RunBatch({request});
    ASSERT_EQ(result.requests.size(), 1u);
    EXPECT_EQ(result.requests[0].output_text, request.target_text);
    EXPECT_TRUE(result.requests[0].finished_by_eos);
  }
}

TEST(EngineSmoke, ConstrainedGenerationStaysSyntacticallyValidUnderDerail) {
  // Derailments inside free-text positions (string values) cannot be blocked
  // by any grammar mask — the guarantee is syntactic validity, which is what
  // Table 4 measures. The output must remain valid JSON and end via EOS.
  auto info = SmallTokenizer();
  auto tasks = datasets::GenerateSchemaTasks(4, 42);
  MockLlm llm(info, {.derail_probability = 0.3, .seed = 5});
  ServingEngine engine(FastOptions(), llm);

  for (const auto& task : tasks) {
    DecoderFactory factory(EngineKind::kXGrammar, info);
    factory.PrepareSchema(task.schema);
    EngineRequest request;
    request.decoder = factory.NewDecoder();
    request.target_text = task.canonical_answer.Dump();
    auto result = engine.RunBatch({request});
    EXPECT_TRUE(json::IsValid(result.requests[0].output_text))
        << result.requests[0].output_text;
  }
}

TEST(EngineSmoke, UnconstrainedGenerationDerails) {
  auto info = SmallTokenizer();
  auto tasks = datasets::GenerateSchemaTasks(1, 43);
  MockLlm llm(info, {.derail_probability = 0.5, .seed = 6});
  ServingEngine engine(FastOptions(), llm);
  EngineRequest request;
  request.decoder = nullptr;  // unconstrained
  request.target_text = tasks[0].canonical_answer.Dump();
  auto result = engine.RunBatch({request});
  // With 50% per-step derail probability the output should have diverged and
  // be invalid JSON.
  EXPECT_FALSE(json::IsValid(result.requests[0].output_text));
}

TEST(EngineSmoke, JumpForwardProducesSameOutputWithFewerSteps) {
  auto info = SmallTokenizer();
  auto tasks = datasets::GenerateSchemaTasks(1, 44);
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 7});

  auto run = [&](bool jump_forward) {
    DecoderFactory factory(EngineKind::kXGrammar, info);
    factory.PrepareSchema(tasks[0].schema);
    EngineOptions options = FastOptions();
    options.jump_forward = jump_forward;
    ServingEngine engine(options, llm);
    EngineRequest request;
    request.decoder = factory.NewDecoder();
    request.target_text = tasks[0].canonical_answer.Dump();
    return engine.RunBatch({request});
  };

  auto without = run(false);
  auto with = run(true);
  EXPECT_EQ(without.requests[0].output_text, with.requests[0].output_text);
  EXPECT_GT(with.requests[0].jump_forward_tokens, 0);
  EXPECT_LT(with.decode_steps, without.decode_steps);
}

TEST(EngineSmoke, AllEnginesProduceIdenticalOutputs) {
  // Same model, same masks (the engines are semantically equivalent on
  // regex-expressible tasks), same sampler: every engine must generate the
  // identical byte sequence, derailments included.
  auto info = SmallTokenizer();
  auto tasks = datasets::GenerateSchemaTasks(1, 45);
  MockLlm llm(info, {.derail_probability = 0.2, .seed = 8});
  std::string target = tasks[0].canonical_answer.Dump();

  std::string reference;
  for (EngineKind kind : {EngineKind::kXGrammar, EngineKind::kOutlines,
                          EngineKind::kLlamaCpp, EngineKind::kLmFormatEnforcer,
                          EngineKind::kOutlinesCfg}) {
    DecoderFactory factory(kind, info);
    factory.PrepareSchema(tasks[0].schema);
    EngineOptions options = FastOptions();
    options.schedule = kind == EngineKind::kXGrammar ? GrammarSchedule::kOverlap
                                                     : GrammarSchedule::kSerial;
    ServingEngine engine(options, llm);
    EngineRequest request;
    request.decoder = factory.NewDecoder();
    request.target_text = target;
    auto result = engine.RunBatch({request});
    EXPECT_TRUE(json::IsValid(result.requests[0].output_text))
        << baselines::EngineKindName(kind);
    if (reference.empty()) {
      reference = result.requests[0].output_text;
    } else {
      EXPECT_EQ(result.requests[0].output_text, reference)
          << baselines::EngineKindName(kind);
    }
  }
}

}  // namespace
}  // namespace xgr
