// Tests for the flat zero-copy artifact subsystem (src/artifact/): format
// round trips, bit-identical masks from mmap-loaded vs freshly-compiled
// artifacts, the full corruption matrix (truncation, bit flips, misaligned
// offsets, vocab-pin and key mismatches, injected faults), v2/v3 version
// skew, and the sharded registry built on top.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "artifact/artifact_format.h"
#include "artifact/artifact_reader.h"
#include "artifact/artifact_writer.h"
#include "artifact/mapped_file.h"
#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "pda/compiled_grammar.h"
#include "runtime/grammar_registry.h"
#include "serialize/serialize.h"
#include "support/fault_point.h"
#include "support/status.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::artifact {
namespace {

namespace fs = std::filesystem;
namespace fault = xgr::support::fault;

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer(
    std::uint64_t seed = 17) {
  static std::map<std::uint64_t, std::shared_ptr<const tokenizer::TokenizerInfo>>
      cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    it = cache
             .emplace(seed, std::make_shared<tokenizer::TokenizerInfo>(
                                tokenizer::BuildSyntheticVocab({2000, seed})))
             .first;
  }
  return it->second;
}

std::shared_ptr<const cache::AdaptiveTokenMaskCache> BuildCache(
    const grammar::Grammar& g,
    std::shared_ptr<const tokenizer::TokenizerInfo> info = TestTokenizer()) {
  auto compiled = pda::CompiledGrammar::Compile(g);
  return cache::AdaptiveTokenMaskCache::Build(compiled, std::move(info));
}

grammar::Grammar TestSchemaGrammar() {
  return grammar::JsonSchemaTextToGrammar(
      R"({"type":"object","properties":{"id":{"type":"integer"},
          "tags":{"type":"array","items":{"type":"string"}}},
          "required":["id"],"additionalProperties":false})");
}

// Loads flat bytes from a heap copy (keeps the backing alive via shared_ptr).
std::shared_ptr<const cache::AdaptiveTokenMaskCache> LoadBytes(
    std::string bytes,
    std::shared_ptr<const tokenizer::TokenizerInfo> info = TestTokenizer(),
    const LoadOptions& options = {}) {
  auto backing = std::make_shared<std::string>(std::move(bytes));
  return LoadFlatArtifactBytes(backing, *backing, std::move(info), options);
}

// Scratch dir per test, removed on destruction.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("xgr_artifact_test_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// --- format round trips ------------------------------------------------------

TEST(FlatArtifact, RoundTripsByteLevelAndIsDeterministic) {
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  std::string bytes = BuildFlatArtifact(*cache, "the-key");
  ASSERT_EQ(bytes.size() % kSectionAlign, 0u);
  EXPECT_EQ(SniffArtifactFormat(bytes), ArtifactFormat::kFlatV3);
  EXPECT_EQ(PeekContentKey(bytes), "the-key");

  // Independent builds of the same content are bit-identical (the disk tier
  // compares files byte-wise under content addressing).
  EXPECT_EQ(BuildFlatArtifact(*cache, "the-key"), bytes);

  auto loaded = LoadBytes(bytes);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->IsMapped());
  EXPECT_FALSE(cache->IsMapped());
  EXPECT_EQ(loaded->Stats().context_dependent, cache->Stats().context_dependent);
  EXPECT_EQ(loaded->MemoryBytes(), cache->MemoryBytes());
  // The v2 serializer is a complete rendering of the cache contents: a
  // loaded artifact re-serializes to exactly the same envelope.
  EXPECT_EQ(serialize::SerializeEngineArtifact(*loaded),
            serialize::SerializeEngineArtifact(*cache));
}

TEST(FlatArtifact, FileRoundTripThroughMmap) {
  TempDir dir("file_roundtrip");
  const std::string path = dir.path + "/artifact.xgr";
  auto cache = BuildCache(TestSchemaGrammar());
  WriteFlatArtifactFile(path, *cache, "schema-key");

  auto file = MappedFile::Open(path);
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->size() % kSectionAlign, 0u);

  LoadOptions options;
  options.expect_content_key = "schema-key";
  auto loaded = LoadFlatArtifactFile(path, TestTokenizer(), options);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->IsMapped());
  EXPECT_EQ(serialize::SerializeEngineArtifact(*loaded),
            serialize::SerializeEngineArtifact(*cache));
}

// The acceptance-criterion differential: masks from an mmap-loaded artifact
// must be bit-identical to a freshly compiled one, token by token.
TEST(FlatArtifact, MmapLoadedMasksAreBitIdenticalToFreshCompile) {
  TempDir dir("differential");
  const std::string path = dir.path + "/artifact.xgr";
  auto info = TestTokenizer();
  auto fresh = BuildCache(grammar::BuiltinJsonGrammar(), info);
  WriteFlatArtifactFile(path, *fresh);
  auto mapped = LoadFlatArtifactFile(path, info);
  ASSERT_TRUE(mapped->IsMapped());

  baselines::XGrammarDecoder fresh_decoder(fresh);
  baselines::XGrammarDecoder mapped_decoder(mapped);
  DynamicBitset mask_a(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset mask_b(static_cast<std::size_t>(info->VocabSize()));
  const std::string doc = R"({"k":[1,"two",null],"m":{"x":3.5,"y":[true]}})";
  for (char c : doc) {
    fresh_decoder.FillNextTokenBitmask(&mask_a);
    mapped_decoder.FillNextTokenBitmask(&mask_b);
    ASSERT_TRUE(mask_a == mask_b) << "diverged before byte '" << c << "'";
    ASSERT_TRUE(fresh_decoder.Matcher().AcceptByte(static_cast<std::uint8_t>(c)));
    ASSERT_TRUE(mapped_decoder.Matcher().AcceptByte(static_cast<std::uint8_t>(c)));
  }
}

TEST(FlatArtifact, UnkeyedArtifactSkipsKeyCheck) {
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  std::string bytes = BuildFlatArtifact(*cache);
  EXPECT_EQ(PeekContentKey(bytes), "");
  EXPECT_NE(LoadBytes(bytes), nullptr);
}

// --- corruption matrix -------------------------------------------------------

void ExpectCorrupt(const std::string& bytes, const char* what) {
  try {
    LoadBytes(bytes);
    FAIL() << what << ": corrupt artifact was accepted";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), StatusCode::kCorruptArtifact) << what;
  }
}

TEST(FlatArtifactCorruption, TruncationAtEveryBoundaryRejects) {
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  const std::string bytes = BuildFlatArtifact(*cache, "k");
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{64}, std::size_t{127},
        std::size_t{128}, bytes.size() / 2, bytes.size() - 64,
        bytes.size() - 1}) {
    ExpectCorrupt(bytes.substr(0, keep),
                  ("truncated to " + std::to_string(keep)).c_str());
  }
  // Trailing garbage: file_size no longer matches.
  ExpectCorrupt(bytes + std::string(64, 'x'), "trailing garbage");
}

TEST(FlatArtifactCorruption, BitFlipAnywhereRejects) {
  auto cache = BuildCache(TestSchemaGrammar());
  const std::string bytes = BuildFlatArtifact(*cache, "k");
  // Flip one bit in the header, the key, the pda blob, the entry table, and
  // deep in the data region — every region is covered by a checksum.
  for (std::size_t pos : {std::size_t{9}, std::size_t{70}, std::size_t{200},
                          bytes.size() / 3, bytes.size() / 2,
                          bytes.size() - 9}) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x20);
    ExpectCorrupt(flipped, ("bit flip at " + std::to_string(pos)).c_str());
  }
}

TEST(FlatArtifactCorruption, WrongMagicVersionAndEndiannessReject) {
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  const std::string bytes = BuildFlatArtifact(*cache);

  std::string wrong_magic = bytes;
  wrong_magic[3] = '9';
  ExpectCorrupt(wrong_magic, "wrong magic");

  std::string wrong_version = bytes;
  wrong_version[4] = 99;  // version low byte
  ExpectCorrupt(wrong_version, "wrong version");

  std::string wrong_endian = bytes;
  wrong_endian[8] ^= 0xFF;  // endian marker low byte
  ExpectCorrupt(wrong_endian, "wrong endianness");
}

// Misaligned offset table: patch the header field and re-seal the header
// checksum so the *alignment* check (not the checksum) must catch it.
TEST(FlatArtifactCorruption, MisalignedOffsetTableRejects) {
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  std::string bytes = BuildFlatArtifact(*cache, "k");
  FlatHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.entry_table_offset += 4;  // still in range, no longer 64-aligned
  header.header_checksum = HeaderChecksum(header);
  std::memcpy(bytes.data(), &header, sizeof(header));
  // The payload checksum does not cover the header, so the only trap left is
  // offset validation itself.
  ExpectCorrupt(bytes, "misaligned entry table");

  std::memcpy(&header, bytes.data(), sizeof(header));
  header.entry_table_offset = bytes.size() + 64;  // out of range
  header.header_checksum = HeaderChecksum(header);
  std::memcpy(bytes.data(), &header, sizeof(header));
  ExpectCorrupt(bytes, "out-of-range entry table");
}

TEST(FlatArtifactCorruption, VocabularyPinRejectsWrongTokenizer) {
  auto cache = BuildCache(grammar::BuiltinJsonGrammar(), TestTokenizer(17));
  const std::string bytes = BuildFlatArtifact(*cache);
  try {
    LoadBytes(bytes, TestTokenizer(18));
    FAIL() << "wrong tokenizer was accepted";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), StatusCode::kCorruptArtifact);
    EXPECT_NE(std::string(error.what()).find("vocabulary pin"),
              std::string::npos);
  }
}

TEST(FlatArtifactCorruption, ContentKeyMismatchRejects) {
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  const std::string bytes = BuildFlatArtifact(*cache, "owner-key");
  LoadOptions options;
  options.expect_content_key = "other-key";
  auto backing = std::make_shared<std::string>(bytes);
  EXPECT_THROW(LoadFlatArtifactBytes(backing, *backing, TestTokenizer(), options),
               StatusError);
}

TEST(FlatArtifactCorruption, InjectedFaultsAtEveryLoadStageClassify) {
  TempDir dir("fault_sites");
  const std::string path = dir.path + "/artifact.xgr";
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  WriteFlatArtifactFile(path, *cache);
  for (const char* site :
       {"artifact.load.open", "artifact.load.validate", "artifact.load.fixup"}) {
    fault::FaultRule rule;
    rule.action = fault::FaultAction::kFail;
    rule.max_fires = 1;
    fault::ScopedFault armed(site, rule);
    try {
      LoadFlatArtifactFile(path, TestTokenizer());
      FAIL() << site << ": injected fault did not surface";
    } catch (const StatusError& error) {
      EXPECT_EQ(error.code(), StatusCode::kCorruptArtifact) << site;
    }
    // Fault cleared: the same file loads fine (the injection never wrote).
    EXPECT_NE(LoadFlatArtifactFile(path, TestTokenizer()), nullptr) << site;
  }
}

TEST(FlatArtifactCorruption, WriteFaultSurfacesAsInternalAndLeavesNoFile) {
  TempDir dir("write_fault");
  const std::string path = dir.path + "/artifact.xgr";
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kFail;
  rule.max_fires = 1;
  fault::ScopedFault armed("artifact.write", rule);
  try {
    WriteFlatArtifactFile(path, *cache);
    FAIL() << "injected write fault did not surface";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), StatusCode::kInternal);
  }
  EXPECT_FALSE(fs::exists(path));
  int files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 0);  // no stray temp files
  // Fault cleared: the write goes through.
  WriteFlatArtifactFile(path, *cache);
  EXPECT_TRUE(fs::exists(path));
}

// --- version skew ------------------------------------------------------------

TEST(VersionSkew, LegacyV2BytesUnderFlatReaderRejectCleanly) {
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  // A legacy "XGRK" disk file: magic + key length + key + v2 envelope.
  std::string legacy;
  legacy.append("XGRK", 4);
  const std::string key = "legacy-key";
  auto key_len = static_cast<std::uint32_t>(key.size());
  legacy.append(reinterpret_cast<const char*>(&key_len), sizeof(key_len));
  legacy.append(key);
  legacy.append(serialize::SerializeEngineArtifact(*cache));

  EXPECT_EQ(SniffArtifactFormat(legacy), ArtifactFormat::kDiskEnvelope);
  ExpectCorrupt(legacy, "v2 bytes under flat reader");
}

TEST(VersionSkew, FlatBytesUnderV2ReaderRejectCleanly) {
  auto cache = BuildCache(grammar::BuiltinJsonGrammar());
  const std::string flat = BuildFlatArtifact(*cache, "k");
  // The v2 deserializer must reject the flat magic outright — never misread.
  EXPECT_THROW(serialize::DeserializeEngineArtifact(flat, TestTokenizer()),
               CheckError);
}

TEST(VersionSkew, RegistryReadsLegacyV2FilesThroughTheHeapPath) {
  TempDir dir("legacy_coexist");
  auto info = TestTokenizer();
  auto cache = BuildCache(grammar::BuiltinJsonGrammar(), info);
  const std::string key = "grammar:legacy";

  runtime::GrammarRegistryOptions options;
  options.disk_dir = dir.path;
  runtime::GrammarRegistry registry(info, options);

  // Plant a legacy "XGRK" file exactly where the registry will look.
  std::string legacy;
  legacy.append("XGRK", 4);
  auto key_len = static_cast<std::uint32_t>(key.size());
  legacy.append(reinterpret_cast<const char*>(&key_len), sizeof(key_len));
  legacy.append(key);
  legacy.append(serialize::SerializeEngineArtifact(*cache));
  {
    std::ofstream out(registry.DiskPath(key), std::ios::binary);
    out.write(legacy.data(), static_cast<std::streamsize>(legacy.size()));
  }

  runtime::Artifact loaded = registry.Lookup(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_FALSE(loaded->IsMapped());  // heap path, not the mapping
  EXPECT_EQ(registry.Stats().disk_legacy_hits, 1);
  EXPECT_EQ(registry.Stats().disk_mmap_hits, 0);
  EXPECT_EQ(serialize::SerializeEngineArtifact(*loaded),
            serialize::SerializeEngineArtifact(*cache));
}

TEST(VersionSkew, RegistryWritesFlatFilesAndWarmStartsOverMmap) {
  TempDir dir("flat_warm");
  auto info = TestTokenizer();
  auto cache = BuildCache(TestSchemaGrammar(), info);
  const std::string key = "grammar:flat";

  runtime::GrammarRegistryOptions options;
  options.disk_dir = dir.path;
  {
    runtime::GrammarRegistry writer(info, options);
    writer.Insert(key, cache);
  }
  // The persisted file is flat v3 with the key embedded.
  runtime::GrammarRegistry reader(info, options);
  {
    auto file = MappedFile::Open(reader.DiskPath(key));
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(SniffArtifactFormat(file->bytes()), ArtifactFormat::kFlatV3);
    EXPECT_EQ(PeekContentKey(file->bytes()), key);
  }
  runtime::Artifact loaded = reader.Lookup(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->IsMapped());
  EXPECT_EQ(reader.Stats().disk_mmap_hits, 1);
  EXPECT_EQ(reader.Stats().disk_legacy_hits, 0);
}

// --- sharded registry --------------------------------------------------------

std::shared_ptr<const cache::AdaptiveTokenMaskCache> SchemaArtifact(int i) {
  return BuildCache(grammar::JsonSchemaTextToGrammar(
      R"({"type":"object","properties":{"f)" + std::to_string(i) +
      R"(":{"type":"integer"}},"required":["f)" + std::to_string(i) +
      R"("],"additionalProperties":false})"));
}

TEST(ShardedRegistry, AggregatesStatsAcrossShards) {
  runtime::GrammarRegistryOptions options;
  options.num_shards = 4;
  runtime::GrammarRegistry registry(TestTokenizer(), options);
  EXPECT_EQ(registry.NumShards(), 4u);

  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) {
    keys.push_back("schema:" + std::to_string(i));
    registry.Insert(keys.back(), SchemaArtifact(i));
  }
  for (const std::string& key : keys) {
    EXPECT_NE(registry.Lookup(key), nullptr) << key;
    EXPECT_TRUE(registry.IsResident(key)) << key;
  }
  runtime::GrammarRegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.inserts, 12);
  EXPECT_EQ(stats.hits, 12);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_GT(stats.memory_bytes, 0u);

  registry.Clear();
  EXPECT_EQ(registry.MemoryBytes(), 0u);
  for (const std::string& key : keys) EXPECT_FALSE(registry.IsResident(key));
}

TEST(ShardedRegistry, BudgetIsHonoredAcrossShards) {
  // Budget sized for roughly two artifacts total: with 4 shards each gets a
  // quarter, so residency stays bounded no matter which shards keys land in.
  auto probe = SchemaArtifact(0);
  const std::size_t one = probe->MemoryBytes();
  runtime::GrammarRegistryOptions options;
  options.num_shards = 4;
  options.memory_budget_bytes = one * 2;
  runtime::GrammarRegistry registry(TestTokenizer(), options);

  for (int i = 0; i < 16; ++i) {
    registry.Insert("schema:" + std::to_string(i), SchemaArtifact(i));
  }
  runtime::GrammarRegistryStats stats = registry.Stats();
  EXPECT_LE(stats.memory_bytes, options.memory_budget_bytes + 4 * one / 2);
  EXPECT_LE(stats.peak_memory_bytes,
            options.memory_budget_bytes + 4 * one / 2);
  EXPECT_GT(stats.evictions, 0);
}

TEST(ShardedRegistry, EvictionCallbackReportsKeyAndBytes) {
  auto probe = SchemaArtifact(0);
  runtime::GrammarRegistryOptions options;
  options.memory_budget_bytes = probe->MemoryBytes();  // one resident at most
  runtime::GrammarRegistry registry(TestTokenizer(), options);

  std::vector<std::pair<std::string, std::size_t>> evicted;
  registry.SetEvictionCallback(
      [&](const std::string& key, std::size_t bytes) {
        evicted.emplace_back(key, bytes);
      });
  registry.Insert("a", SchemaArtifact(1));
  registry.Insert("b", SchemaArtifact(2));
  ASSERT_GE(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, "a");
  EXPECT_GT(evicted[0].second, 0u);
}

TEST(ShardedRegistry, SingleShardMatchesClassicBehavior) {
  runtime::GrammarRegistryOptions options;  // num_shards defaults to 1
  runtime::GrammarRegistry registry(TestTokenizer(), options);
  EXPECT_EQ(registry.NumShards(), 1u);
  registry.Insert("k", SchemaArtifact(3));
  EXPECT_NE(registry.TryGetResident("k"), nullptr);
  EXPECT_EQ(registry.Lookup("missing"), nullptr);
  runtime::GrammarRegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

// Degrade-to-recompile at the registry level: an injected load fault on a
// good flat file classifies as corruption, deletes the file, and the next
// lookup is a clean miss (the caller recompiles and re-persists).
TEST(ShardedRegistry, InjectedLoadFaultDegradesToRecompile) {
  TempDir dir("fault_degrade");
  auto info = TestTokenizer();
  const std::string key = "grammar:degrade";
  runtime::GrammarRegistryOptions options;
  options.disk_dir = dir.path;
  {
    runtime::GrammarRegistry writer(info, options);
    writer.Insert(key, BuildCache(grammar::BuiltinJsonGrammar(), info));
  }
  runtime::GrammarRegistry reader(info, options);
  {
    fault::FaultRule rule;
    rule.action = fault::FaultAction::kFail;
    rule.max_fires = 1;
    fault::ScopedFault armed("artifact.load.validate", rule);
    EXPECT_EQ(reader.Lookup(key), nullptr);
  }
  EXPECT_EQ(reader.Stats().disk_rejects, 1);
  EXPECT_FALSE(fs::exists(reader.DiskPath(key)));
  // Recompile + reinsert heals the disk tier.
  reader.Insert(key, BuildCache(grammar::BuiltinJsonGrammar(), info));
  EXPECT_TRUE(fs::exists(reader.DiskPath(key)));
}

}  // namespace
}  // namespace xgr::artifact
