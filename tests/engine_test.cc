// Tests for the serving-engine simulator beyond the smoke suite: scheduling
// modes, batching behaviour, jump-forward accounting, sampler semantics and
// the mock LLM's script alignment.
#include <gtest/gtest.h>

#include "baselines/factory.h"
#include "baselines/tag_dispatch_decoder.h"
#include "compose/tag_dispatch.h"
#include "datasets/workloads.h"
#include "engine/sampler.h"
#include "engine/serving_engine.h"
#include "support/utf8.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr::engine {
namespace {

using baselines::DecoderFactory;
using baselines::EngineKind;

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2500, 19}));
  return info;
}

// --- Sampler ----------------------------------------------------------------------

TEST(Sampler, MaskedPicksHighestAllowedBoost) {
  DynamicBitset mask(100);
  mask.Set(10);
  mask.Set(20);
  SparseLogits logits;
  logits.boosted = {{5, 30.0f}, {10, 10.0f}, {20, 20.0f}};  // 5 is masked out
  Rng rng(1);
  EXPECT_EQ(SampleMasked(logits, mask, &rng), 20);
}

TEST(Sampler, MaskedFallsBackToAllowedTokenWhenAllBoostsMasked) {
  DynamicBitset mask(100);
  mask.Set(42);
  SparseLogits logits;
  logits.boosted = {{5, 30.0f}};
  Rng rng(1);
  EXPECT_EQ(SampleMasked(logits, mask, &rng), 42);
}

TEST(Sampler, MaskedThrowsOnEmptyMask) {
  DynamicBitset mask(100);
  SparseLogits logits;
  Rng rng(1);
  EXPECT_THROW(SampleMasked(logits, mask, &rng), CheckError);
}

TEST(Sampler, UnmaskedPicksGlobalArgmax) {
  SparseLogits logits;
  logits.boosted = {{5, 30.0f}, {10, 10.0f}};
  Rng rng(1);
  EXPECT_EQ(SampleUnmasked(logits, 100, &rng), 5);
}

// --- MockLlm ---------------------------------------------------------------------

TEST(MockLlm, FollowsTargetGreedily) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 1});
  auto script = llm.MakeScript(R"({"k":"v"})", 7);
  std::string produced;
  Rng rng(3);
  for (int step = 0; step < 64; ++step) {
    SparseLogits logits = llm.ComputeLogits(&script);
    std::int32_t token = SampleUnmasked(logits, info->VocabSize(), &rng);
    if (token == info->EosId()) break;
    llm.OnTokenSampled(&script, token);
    produced += info->TokenBytes(token);
  }
  EXPECT_EQ(produced, R"({"k":"v"})");
}

TEST(MockLlm, DivergenceIsDetected) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 1});
  auto script = llm.MakeScript("target", 7);
  llm.OnTokenSampled(&script, 0);  // a byte that does not match "t"... (id 0 = NUL byte)
  EXPECT_TRUE(script.diverged);
}

// --- Engine ----------------------------------------------------------------------

EngineRequest MakeRequest(std::shared_ptr<baselines::ConstrainedDecoder> decoder,
                          std::string target, std::uint64_t seed = 1) {
  EngineRequest r;
  r.decoder = std::move(decoder);
  r.target_text = std::move(target);
  r.seed = seed;
  return r;
}

TEST(Engine, TokensPerStepIsOnePerActiveRequest) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 2});
  auto tasks = datasets::GenerateSchemaTasks(1, 5);
  EngineOptions options;
  options.time_scale = 0.0;
  options.max_new_tokens = 200;
  ServingEngine engine(options, llm);
  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(tasks[0].schema);
  std::vector<EngineRequest> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(MakeRequest(factory.NewDecoder(),
                                tasks[0].canonical_answer.Dump(),
                                static_cast<std::uint64_t>(i) + 1));
  }
  auto result = engine.RunBatch(batch);
  // Same target, no derail: every slot generates the same token count, and
  // steps = tokens + 1 (EOS step).
  for (const auto& r : result.requests) {
    EXPECT_EQ(r.token_ids.size(), result.requests[0].token_ids.size());
    EXPECT_TRUE(r.finished_by_eos);
  }
  EXPECT_EQ(result.total_tokens,
            static_cast<std::int64_t>(4 * result.requests[0].token_ids.size()));
}

TEST(Engine, MaxNewTokensCapsGeneration) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 2});
  auto tasks = datasets::GenerateSchemaTasks(1, 6);
  EngineOptions options;
  options.time_scale = 0.0;
  options.max_new_tokens = 3;
  ServingEngine engine(options, llm);
  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(tasks[0].schema);
  auto result =
      engine.RunBatch({MakeRequest(factory.NewDecoder(), tasks[0].canonical_answer.Dump())});
  EXPECT_EQ(result.requests[0].token_ids.size(), 3u);
  EXPECT_FALSE(result.requests[0].finished_by_eos);
}

TEST(Engine, UnconstrainedModeIgnoresGrammar) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 2});
  EngineOptions options;
  options.schedule = GrammarSchedule::kNone;
  options.time_scale = 0.0;
  options.max_new_tokens = 64;
  ServingEngine engine(options, llm);
  auto result = engine.RunBatch({MakeRequest(nullptr, R"([1,2,3])")});
  EXPECT_EQ(result.requests[0].output_text, "[1,2,3]");
  EXPECT_TRUE(result.requests[0].finished_by_eos);
}

TEST(Engine, SerialAndOverlapProduceSameTokens) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.15, .seed = 4});
  auto tasks = datasets::GenerateSchemaTasks(1, 8);
  std::string reference;
  for (GrammarSchedule schedule : {GrammarSchedule::kSerial, GrammarSchedule::kOverlap}) {
    EngineOptions options;
    options.schedule = schedule;
    options.time_scale = 0.0;
    options.max_new_tokens = 128;
    ServingEngine engine(options, llm);
    DecoderFactory factory(EngineKind::kXGrammar, info);
    factory.PrepareSchema(tasks[0].schema);
    auto result = engine.RunBatch(
        {MakeRequest(factory.NewDecoder(), tasks[0].canonical_answer.Dump(), 99)});
    if (reference.empty()) {
      reference = result.requests[0].output_text;
    } else {
      EXPECT_EQ(result.requests[0].output_text, reference);
    }
  }
}

TEST(Engine, JumpForwardTokensAreCounted) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 4});
  // A schema with a long forced literal maximizes jump-forward opportunity.
  const char* schema_text = R"({"type":"object",
    "properties":{"very_long_property_name_here":{"type":"integer"}},
    "required":["very_long_property_name_here"],"additionalProperties":false})";
  json::ParseResult schema = json::Parse(schema_text);
  ASSERT_TRUE(schema.ok());
  json::Value answer(json::Object{{"very_long_property_name_here", json::Value(7)}});

  EngineOptions options;
  options.time_scale = 0.0;
  options.jump_forward = true;
  options.max_new_tokens = 64;
  ServingEngine engine(options, llm);
  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareSchema(*schema.value);
  auto result = engine.RunBatch({MakeRequest(factory.NewDecoder(), answer.Dump())});
  EXPECT_EQ(result.requests[0].output_text, answer.Dump());
  EXPECT_GT(result.requests[0].jump_forward_tokens, 0);
  EXPECT_LT(result.decode_steps,
            static_cast<std::int64_t>(result.requests[0].token_ids.size()));
}

TEST(Engine, JumpForwardRetokenizesAcrossBoundaries) {
  // Appendix B: jump-forward "requires retokenization, which involves
  // rolling back some tokens in the context and then inserting new tokens".
  // With retokenization enabled, the final token sequence must equal the
  // greedy (canonical) tokenization of the output text — the last sampled
  // token and the forced span merge where the tokenizer would merge them.
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 4});
  auto tasks = datasets::GenerateSchemaTasks(4, 21);

  for (const auto& task : tasks) {
    EngineOptions options;
    options.time_scale = 0.0;
    options.jump_forward = true;
    options.jf_retokenize = true;
    options.max_new_tokens = 256;
    ServingEngine engine(options, llm);
    DecoderFactory factory(EngineKind::kXGrammar, info);
    factory.PrepareSchema(task.schema);
    auto result =
        engine.RunBatch({MakeRequest(factory.NewDecoder(), task.canonical_answer.Dump())});
    const RequestResult& r = result.requests[0];
    EXPECT_EQ(r.output_text, task.canonical_answer.Dump());
    EXPECT_EQ(r.token_ids, tokenizer::GreedyTokenize(llm.Trie(), r.output_text))
        << "non-canonical tokenization of " << r.output_text;
  }
}

TEST(Engine, JumpForwardRetokenizationCanBeDisabledForAblation) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 4});
  auto tasks = datasets::GenerateSchemaTasks(4, 21);

  std::int32_t retokenized_on = 0;
  for (bool retokenize : {true, false}) {
    for (const auto& task : tasks) {
      EngineOptions options;
      options.time_scale = 0.0;
      options.jump_forward = true;
      options.jf_retokenize = retokenize;
      options.max_new_tokens = 256;
      ServingEngine engine(options, llm);
      DecoderFactory factory(EngineKind::kXGrammar, info);
      factory.PrepareSchema(task.schema);
      auto result = engine.RunBatch(
          {MakeRequest(factory.NewDecoder(), task.canonical_answer.Dump())});
      const RequestResult& r = result.requests[0];
      // The emitted *text* is identical either way; only token boundaries
      // differ.
      EXPECT_EQ(r.output_text, task.canonical_answer.Dump());
      if (retokenize) {
        retokenized_on += r.retokenized_tokens;
      } else {
        EXPECT_EQ(r.retokenized_tokens, 0);
      }
    }
  }
  // The boundary-merge path actually fired somewhere across the tasks.
  EXPECT_GT(retokenized_on, 0);
}

TEST(Engine, JumpForwardRetokenizationDifferentialOverMultiByteUtf8) {
  // jf_retokenize on/off over targets whose forced spans contain multi-byte
  // UTF-8 — including a char class whose codepoints share one lead byte, so
  // the jump-forward walk is forced PAST the lead byte but stops inside the
  // character. The trimmed jump string (GrammarMatcher::FindJumpForwardString)
  // must keep both modes byte-identical, and with retokenization on the token
  // ids must be the canonical greedy tokenization of the final text.
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 4});

  struct Case {
    const char* ebnf;
    const char* target;
  };
  const Case cases[] = {
      // Forced literals with 2- and 3-byte characters around sampled spans.
      {"root ::= \"cité: \" [a-z]+ \" — fin\"", "cité: lyon — fin"},
      // [à-ö] lives entirely under lead byte 0xC3: the lead is forced, the
      // continuation is not — the jump must stop BEFORE the character.
      {"root ::= \"val\" [à-ö] [à-ö] \"—\" [0-9]", "valéö—7"},
      // Multi-byte characters inside a repeated class.
      {"root ::= \"tag:\" ([é-ü] | [0-9])+ \".\"", "tag:9é8ü."},
  };

  // A case built around a 2-byte character that exists as a single vocab
  // token, with a char class spanning its lead byte: the forced span after
  // the first sampled token ends in the bare lead byte, so an untrimmed
  // jump-forward (the pre-fix behaviour) forces half the character into the
  // context and the canonical-tokenization assertion below catches it.
  std::string crafted_ebnf, crafted_target;
  for (std::int32_t id = 0; id < info->VocabSize(); ++id) {
    if (info->IsSpecial(id)) continue;
    const std::string& bytes = info->TokenBytes(id);
    if (bytes.size() != 2) continue;
    DecodedChar decoded = DecodeUtf8(bytes, 0);
    if (!decoded.ok || decoded.codepoint < 0xC1 || decoded.codepoint > 0xFE) {
      continue;  // need [cp-1, cp+1] to share the 0xC3 lead byte
    }
    std::string lo, hi;
    AppendUtf8(decoded.codepoint - 1, &lo);
    AppendUtf8(decoded.codepoint + 1, &hi);
    crafted_ebnf = "root ::= [a-z] \":x\" [" + lo + "-" + hi + "] \".\"";
    crafted_target = "q:x" + bytes + ".";
    break;
  }
  ASSERT_FALSE(crafted_ebnf.empty())
      << "synthetic vocabulary lost its 2-byte accented tokens";

  std::vector<Case> all_cases(std::begin(cases), std::end(cases));
  all_cases.push_back({crafted_ebnf.c_str(), crafted_target.c_str()});

  for (const Case& c : all_cases) {
    grammar::Grammar g = grammar::ParseEbnfOrThrow(c.ebnf);
    std::string reference_text;
    for (bool retokenize : {true, false}) {
      EngineOptions options;
      options.time_scale = 0.0;
      options.jump_forward = true;
      options.jf_retokenize = retokenize;
      options.max_new_tokens = 128;
      ServingEngine engine(options, llm);
      DecoderFactory factory(EngineKind::kXGrammar, info);
      factory.PrepareGrammar(g);
      auto result =
          engine.RunBatch({MakeRequest(factory.NewDecoder(), c.target)});
      const RequestResult& r = result.requests[0];
      EXPECT_EQ(r.output_text, c.target) << c.ebnf;
      if (reference_text.empty()) {
        reference_text = r.output_text;
      } else {
        EXPECT_EQ(r.output_text, reference_text)
            << "retokenize on/off text diverged for " << c.ebnf;
      }
      if (retokenize) {
        EXPECT_EQ(r.token_ids, tokenizer::GreedyTokenize(llm.Trie(), r.output_text))
            << "non-canonical tokenization of '" << r.output_text << "' for "
            << c.ebnf;
      }
    }
  }
}

TEST(Engine, TagDispatchDecoderAggregatesSegmentStats) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 4});
  runtime::CompileService service(info, {});
  compose::TagDispatchConfig config;
  config.tags = {{"<function=get_time>",
                  R"({"type":"object","properties":{"tz":{"type":"string"}},)"
                  R"("required":["tz"],"additionalProperties":false})",
                  "</function>"}};
  config.triggers = {"<function="};
  auto plan = compose::TagDispatchPlan::Build(config, &service);

  EngineOptions options;
  options.time_scale = 0.0;
  options.max_new_tokens = 96;
  ServingEngine engine(options, llm);
  const std::string target =
      "Sure. <function=get_time>"
      R"({"tz":"UTC"})"
      "</function> Done.";
  auto result = engine.RunBatch(
      {MakeRequest(std::make_shared<baselines::TagDispatchDecoder>(plan), target)});
  EXPECT_EQ(result.requests[0].output_text, target);
  EXPECT_EQ(result.tag_dispatch.decoders, 1);
  EXPECT_EQ(result.tag_dispatch.dispatches, 1);
  EXPECT_EQ(result.tag_dispatch.segment_switches, 2);
  EXPECT_GT(result.tag_dispatch.free_tokens, 0);
  EXPECT_GT(result.tag_dispatch.tag_tokens, 0);
  EXPECT_EQ(result.tag_dispatch.prefetch_submits, 1);
  // Mask stats flow through the same aggregate as the grammar-backed path.
  EXPECT_GT(result.mask_gen.masks_generated, 0);
}

TEST(Engine, TpotReflectsSimulatedGpuTime) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 2});
  EngineOptions options;
  options.schedule = GrammarSchedule::kNone;
  options.profile.decode_base_us = 2000.0;  // 2 ms/step
  options.profile.decode_per_seq_us = 0.0;
  options.profile.sampling_us = 0.0;
  options.max_new_tokens = 10;
  ServingEngine engine(options, llm);
  auto result = engine.RunBatch({MakeRequest(nullptr, "[1,2,3,4,5,6,7,8,9]")});
  // TPOT must be at least the configured step time (sleep granularity may
  // push it slightly above).
  EXPECT_GE(result.TpotMs(), 1.9);
  EXPECT_LT(result.TpotMs(), 10.0);
}

TEST(Engine, BatchResultMetricsConsistent) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 2});
  EngineOptions options;
  options.time_scale = 0.0;
  options.max_new_tokens = 32;
  ServingEngine engine(options, llm);
  DecoderFactory factory(EngineKind::kXGrammar, info);
  auto tasks = datasets::GenerateSchemaTasks(1, 12);
  factory.PrepareSchema(tasks[0].schema);
  auto result = engine.RunBatch(
      {MakeRequest(factory.NewDecoder(), tasks[0].canonical_answer.Dump())});
  std::int64_t counted = 0;
  for (const auto& r : result.requests) {
    counted += static_cast<std::int64_t>(r.token_ids.size());
  }
  EXPECT_EQ(counted, result.total_tokens);
  EXPECT_GE(result.decode_steps, 1);
  EXPECT_GE(result.ttft_ms, 0.0);
  // Mask-generation counters thread from MaskGenStats into the per-batch
  // aggregate: one mask per decode step per request, and the ctx attribution
  // counters stay mutually consistent (pruned tokens are a subset of the
  // checked ones; sub-trie bytes imply checks ran).
  EXPECT_GE(result.mask_gen.masks_generated, result.decode_steps);
  EXPECT_GE(result.mask_gen.ctx_tokens_checked, 0);
  EXPECT_LE(result.mask_gen.ctx_tokens_pruned, result.mask_gen.ctx_tokens_checked);
  EXPECT_LE(result.mask_gen.ctx_subtree_cutoffs, result.mask_gen.ctx_bytes_checked);
}

}  // namespace
}  // namespace xgr::engine
