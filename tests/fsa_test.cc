// Tests for the automaton substrate: construction, epsilon elimination, node
// merging, union, determinization, Hopcroft minimization — including
// language-equivalence property tests on randomly generated automata.
#include <gtest/gtest.h>

#include "fsa/dfa.h"
#include "fsa/fsa.h"
#include "support/logging.h"
#include "support/rng.h"

namespace xgr::fsa {
namespace {

// Builds a small random NFA over alphabet {a, b, c} with epsilon edges.
Fsa RandomNfa(std::uint64_t seed, int num_states) {
  Rng rng(seed);
  Fsa fsa;
  for (int i = 0; i < num_states; ++i) fsa.AddState();
  int num_edges = num_states * 2;
  for (int i = 0; i < num_edges; ++i) {
    auto from = static_cast<std::int32_t>(rng.NextBounded(num_states));
    auto to = static_cast<std::int32_t>(rng.NextBounded(num_states));
    double roll = rng.NextDouble();
    if (roll < 0.25) {
      fsa.AddEpsilonEdge(from, to);
    } else {
      auto c = static_cast<std::uint8_t>('a' + rng.NextBounded(3));
      fsa.AddByteEdge(from, c, c, to);
    }
  }
  fsa.SetStart(0);
  for (int i = 0; i < 2; ++i) {
    fsa.SetAccepting(static_cast<std::int32_t>(rng.NextBounded(num_states)));
  }
  return fsa;
}

// Enumerates all strings over {a,b,c} up to `max_len` and compares acceptance.
void ExpectSameLanguage(const Fsa& a, const Fsa& b, int max_len) {
  std::vector<std::string> frontier{""};
  for (int len = 0; len <= max_len; ++len) {
    std::vector<std::string> next;
    for (const std::string& s : frontier) {
      EXPECT_EQ(FsaAccepts(a, s), FsaAccepts(b, s)) << "string '" << s << "'";
      for (char c : {'a', 'b', 'c'}) next.push_back(s + c);
    }
    frontier = std::move(next);
  }
}

class RandomNfaTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNfaTest, EpsilonEliminationPreservesLanguage) {
  Fsa nfa = RandomNfa(GetParam(), 8);
  std::vector<std::int32_t> roots{nfa.Start()};
  Fsa cleaned = EliminateEpsilon(nfa, &roots);
  cleaned.SetStart(roots[0]);
  ExpectSameLanguage(nfa, cleaned, 5);
  // No epsilon edges remain.
  for (std::int32_t s = 0; s < cleaned.NumStates(); ++s) {
    for (const Edge& e : cleaned.EdgesFrom(s)) {
      EXPECT_NE(e.kind, EdgeKind::kEpsilon);
    }
  }
}

TEST_P(RandomNfaTest, NodeMergingPreservesLanguage) {
  Fsa nfa = RandomNfa(GetParam(), 8);
  std::vector<std::int32_t> roots{nfa.Start()};
  Fsa cleaned = EliminateEpsilon(nfa, &roots);
  cleaned.SetStart(roots[0]);
  std::vector<std::int32_t> roots2{cleaned.Start()};
  Fsa merged = MergeEquivalentNodes(cleaned, &roots2);
  merged.SetStart(roots2[0]);
  EXPECT_LE(merged.NumStates(), cleaned.NumStates());
  ExpectSameLanguage(cleaned, merged, 5);
}

TEST_P(RandomNfaTest, DeterminizationPreservesLanguage) {
  Fsa nfa = RandomNfa(GetParam(), 7);
  Dfa dfa = Determinize(nfa);
  std::vector<std::string> frontier{""};
  for (int len = 0; len <= 5; ++len) {
    std::vector<std::string> next;
    for (const std::string& s : frontier) {
      EXPECT_EQ(dfa.Accepts(s), FsaAccepts(nfa, s)) << "string '" << s << "'";
      for (char c : {'a', 'b', 'c'}) next.push_back(s + c);
    }
    frontier = std::move(next);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNfaTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(Fsa, LiteralPathMatchesExactly) {
  Fsa fsa;
  std::int32_t start = fsa.AddState();
  std::int32_t end = fsa.AddState();
  fsa.AddLiteralPath(start, "abc", end);
  fsa.SetStart(start);
  fsa.SetAccepting(end);
  EXPECT_TRUE(FsaAccepts(fsa, "abc"));
  EXPECT_FALSE(FsaAccepts(fsa, "ab"));
  EXPECT_FALSE(FsaAccepts(fsa, "abcd"));
  EXPECT_TRUE(FsaAcceptsPrefix(fsa, "ab"));
  EXPECT_FALSE(FsaAcceptsPrefix(fsa, "abd"));
}

TEST(Fsa, ByteSeqPath) {
  Fsa fsa;
  std::int32_t start = fsa.AddState();
  std::int32_t end = fsa.AddState();
  fsa.AddByteSeqPath(start, {ByteRange{0x41, 0x5A}, ByteRange{0x30, 0x39}}, end);
  fsa.SetStart(start);
  fsa.SetAccepting(end);
  EXPECT_TRUE(FsaAccepts(fsa, "A0"));
  EXPECT_TRUE(FsaAccepts(fsa, "Z9"));
  EXPECT_FALSE(FsaAccepts(fsa, "a0"));
  EXPECT_FALSE(FsaAccepts(fsa, "A"));
}

TEST(Fsa, UnionAcceptsEitherLanguage) {
  Fsa a;
  std::int32_t sa = a.AddState();
  std::int32_t ea = a.AddState();
  a.AddLiteralPath(sa, "cat", ea);
  a.SetStart(sa);
  a.SetAccepting(ea);
  Fsa b;
  std::int32_t sb = b.AddState();
  std::int32_t eb = b.AddState();
  b.AddLiteralPath(sb, "dog", eb);
  b.SetStart(sb);
  b.SetAccepting(eb);
  Fsa u = UnionFsa(a, b);
  EXPECT_TRUE(FsaAccepts(u, "cat"));
  EXPECT_TRUE(FsaAccepts(u, "dog"));
  EXPECT_FALSE(FsaAccepts(u, "cow"));
}

TEST(Fsa, MergeCollapsesDuplicateBranches) {
  // start --a--> s1 --b--> end1(acc), start --a--> s2 --b--> end2(acc):
  // merging should collapse the parallel branches.
  Fsa fsa;
  std::int32_t start = fsa.AddState();
  std::int32_t s1 = fsa.AddState();
  std::int32_t s2 = fsa.AddState();
  std::int32_t e1 = fsa.AddState();
  std::int32_t e2 = fsa.AddState();
  fsa.AddByteEdge(start, 'a', 'a', s1);
  fsa.AddByteEdge(start, 'a', 'a', s2);
  fsa.AddByteEdge(s1, 'b', 'b', e1);
  fsa.AddByteEdge(s2, 'b', 'b', e2);
  fsa.SetStart(start);
  fsa.SetAccepting(e1);
  fsa.SetAccepting(e2);
  std::vector<std::int32_t> roots{start};
  Fsa merged = MergeEquivalentNodes(fsa, &roots);
  merged.SetStart(roots[0]);
  EXPECT_EQ(merged.NumStates(), 3);
  EXPECT_TRUE(FsaAccepts(merged, "ab"));
  EXPECT_FALSE(FsaAccepts(merged, "a"));
}

TEST(Fsa, MergePreservesRootStates) {
  Fsa fsa;
  std::int32_t start = fsa.AddState();
  std::int32_t other_root = fsa.AddState();
  fsa.AddByteEdge(start, 'x', 'x', other_root);  // root reached by an edge
  fsa.SetStart(start);
  fsa.SetAccepting(other_root);
  std::vector<std::int32_t> roots{start, other_root};
  Fsa merged = MergeEquivalentNodes(fsa, &roots);
  EXPECT_EQ(roots.size(), 2u);
  EXPECT_NE(roots[0], -1);
  EXPECT_NE(roots[1], -1);
}

TEST(Fsa, PruneDropsUnreachable) {
  Fsa fsa;
  std::int32_t start = fsa.AddState();
  std::int32_t reachable = fsa.AddState();
  fsa.AddState();  // orphan
  fsa.AddByteEdge(start, 'a', 'a', reachable);
  fsa.SetStart(start);
  fsa.SetAccepting(reachable);
  std::vector<std::int32_t> roots{start};
  Fsa pruned = PruneUnreachable(fsa, &roots);
  EXPECT_EQ(pruned.NumStates(), 2);
}

TEST(Dfa, StateExplosionGuard) {
  // (a|b)...(a|b) with a subset blow-up must respect max_states.
  Fsa nfa;
  std::int32_t start = nfa.AddState();
  nfa.SetStart(start);
  // Classic (a|b)*a(a|b)^n needs 2^n DFA states.
  std::int32_t current = start;
  nfa.AddByteEdge(start, 'a', 'b', start);
  std::int32_t next = nfa.AddState();
  nfa.AddByteEdge(start, 'a', 'a', next);
  current = next;
  for (int i = 0; i < 12; ++i) {
    next = nfa.AddState();
    nfa.AddByteEdge(current, 'a', 'b', next);
    current = next;
  }
  nfa.SetAccepting(current);
  EXPECT_THROW(Determinize(nfa, /*max_states=*/64), CheckError);
  EXPECT_NO_THROW(Determinize(nfa, /*max_states=*/100000));
}

TEST_P(RandomNfaTest, MinimizationPreservesLanguageAndNeverGrows) {
  Fsa nfa = RandomNfa(GetParam(), 7);
  Dfa dfa = Determinize(nfa);
  Dfa minimal = Minimize(dfa);
  EXPECT_LE(minimal.NumStates(), dfa.NumStates());
  // Minimizing again must be a fixpoint (already minimal).
  EXPECT_EQ(Minimize(minimal).NumStates(), minimal.NumStates());
  std::vector<std::string> frontier{""};
  for (int len = 0; len <= 5; ++len) {
    std::vector<std::string> next;
    for (const std::string& s : frontier) {
      EXPECT_EQ(minimal.Accepts(s), dfa.Accepts(s)) << "string '" << s << "'";
      for (char c : {'a', 'b', 'c'}) next.push_back(s + c);
    }
    frontier = std::move(next);
  }
}

TEST(Dfa, MinimizeReachesTextbookStateCount) {
  // (a|b)*abb: the textbook subset-construction example; its minimal DFA has
  // exactly 4 states.
  Fsa nfa;
  std::int32_t s0 = nfa.AddState();
  std::int32_t s1 = nfa.AddState();
  std::int32_t s2 = nfa.AddState();
  std::int32_t s3 = nfa.AddState();
  nfa.SetStart(s0);
  nfa.AddByteEdge(s0, 'a', 'b', s0);
  nfa.AddByteEdge(s0, 'a', 'a', s1);
  nfa.AddByteEdge(s1, 'b', 'b', s2);
  nfa.AddByteEdge(s2, 'b', 'b', s3);
  nfa.SetAccepting(s3);
  Dfa minimal = Minimize(Determinize(nfa));
  EXPECT_EQ(minimal.NumStates(), 4);
  EXPECT_EQ(minimal.Start(), 0);
  EXPECT_TRUE(minimal.Accepts("abb"));
  EXPECT_TRUE(minimal.Accepts("aabb"));
  EXPECT_TRUE(minimal.Accepts("babb"));
  EXPECT_FALSE(minimal.Accepts("ab"));
  EXPECT_FALSE(minimal.Accepts("abba"));
}

TEST(Dfa, MinimizeMergesRedundantUnionBranches) {
  // "ab" | "a" "b" as two disjoint literal paths: 5 live DFA states collapse
  // to the 3-state chain for the single string "ab".
  Fsa nfa;
  std::int32_t start = nfa.AddState();
  nfa.SetStart(start);
  for (int branch = 0; branch < 2; ++branch) {
    std::int32_t mid = nfa.AddState();
    std::int32_t end = nfa.AddState();
    nfa.AddByteEdge(start, 'a', 'a', mid);
    nfa.AddByteEdge(mid, 'b', 'b', end);
    nfa.SetAccepting(end);
  }
  Dfa dfa = Determinize(nfa);
  Dfa minimal = Minimize(dfa);
  EXPECT_EQ(minimal.NumStates(), 3);
  EXPECT_TRUE(minimal.Accepts("ab"));
  EXPECT_FALSE(minimal.Accepts("a"));
  EXPECT_FALSE(minimal.Accepts("abb"));
}

TEST(Dfa, MinimizeEmptyAndUniversalLanguages) {
  // No accepting state at all: the minimal automaton is a single dead
  // non-accepting state.
  Fsa empty;
  std::int32_t s = empty.AddState();
  empty.SetStart(s);
  empty.AddByteEdge(s, 'a', 'z', s);
  Dfa empty_min = Minimize(Determinize(empty));
  EXPECT_EQ(empty_min.NumStates(), 1);
  EXPECT_FALSE(empty_min.Accepts(""));
  EXPECT_FALSE(empty_min.Accepts("a"));
  EXPECT_FALSE(empty_min.CanReachAccept(empty_min.Start()));

  // All strings over the full byte alphabet: one accepting state.
  Fsa universal;
  std::int32_t u = universal.AddState();
  universal.SetStart(u);
  universal.AddByteEdge(u, 0x00, 0xFF, u);
  universal.SetAccepting(u);
  Dfa universal_min = Minimize(Determinize(universal));
  EXPECT_EQ(universal_min.NumStates(), 1);
  EXPECT_TRUE(universal_min.Accepts(""));
  EXPECT_TRUE(universal_min.Accepts(std::string("\x00\xFFxyz", 5)));
}

TEST(NfaRunner, TracksStateSets) {
  Fsa fsa;
  std::int32_t s0 = fsa.AddState();
  std::int32_t s1 = fsa.AddState();
  std::int32_t s2 = fsa.AddState();
  fsa.AddByteEdge(s0, 'a', 'a', s1);
  fsa.AddByteEdge(s0, 'a', 'a', s2);
  fsa.AddByteEdge(s1, 'b', 'b', s1);
  fsa.SetStart(s0);
  fsa.SetAccepting(s2);
  NfaRunner runner(fsa);
  EXPECT_FALSE(runner.InAcceptingState());
  EXPECT_TRUE(runner.Advance('a'));
  EXPECT_EQ(runner.States().size(), 2u);
  EXPECT_TRUE(runner.InAcceptingState());
  EXPECT_TRUE(runner.Advance('b'));
  EXPECT_FALSE(runner.InAcceptingState());
  EXPECT_FALSE(runner.Advance('z'));
  EXPECT_TRUE(runner.Dead());
}

}  // namespace
}  // namespace xgr::fsa
