// Tests for matcher/decoder state branching (§3.3: per-branch grammar state
// for tree-of-thought and speculative decoding).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/rng.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::matcher {
namespace {

std::shared_ptr<const pda::CompiledGrammar> JsonPda() {
  static auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  return pda;
}

TEST(MatcherFork, ForkContinuesFromForkPoint) {
  GrammarMatcher parent(JsonPda());
  ASSERT_TRUE(parent.AcceptString("{\"key\":"));
  GrammarMatcher fork = parent.Fork();
  EXPECT_EQ(fork.NumConsumedBytes(), 0);  // fork-local depth
  EXPECT_TRUE(fork.AcceptString("42}"));
  EXPECT_TRUE(fork.CanTerminate());
}

TEST(MatcherFork, BranchesAreIndependent) {
  GrammarMatcher parent(JsonPda());
  ASSERT_TRUE(parent.AcceptString("[1,"));
  GrammarMatcher left = parent.Fork();
  GrammarMatcher right = parent.Fork();

  ASSERT_TRUE(left.AcceptString("2]"));
  ASSERT_TRUE(right.AcceptString("\"x\"]"));
  EXPECT_TRUE(left.CanTerminate());
  EXPECT_TRUE(right.CanTerminate());

  // The parent is still at "[1," and can take its own continuation.
  EXPECT_EQ(parent.NumConsumedBytes(), 3);
  EXPECT_TRUE(parent.AcceptString("null]"));
  EXPECT_TRUE(parent.CanTerminate());
}

TEST(MatcherFork, ForkSharesThePersistentPool) {
  GrammarMatcher parent(JsonPda());
  ASSERT_TRUE(parent.AcceptString("[[["));
  GrammarMatcher fork = parent.Fork();
  EXPECT_EQ(&parent.Pool(), &fork.Pool());
  // Progress in the fork appends to the shared pool without disturbing the
  // parent's stacks.
  std::size_t before = parent.Pool().Size();
  ASSERT_TRUE(fork.AcceptString("1]]]"));
  EXPECT_GE(parent.Pool().Size(), before);
  EXPECT_TRUE(parent.AcceptString("2]]]"));
  EXPECT_TRUE(parent.CanTerminate());
}

TEST(MatcherFork, ForkOfForkChains) {
  GrammarMatcher root(JsonPda());
  ASSERT_TRUE(root.AcceptString("{\"a\":{\"b\":"));
  GrammarMatcher child = root.Fork();
  ASSERT_TRUE(child.AcceptString("[1"));
  GrammarMatcher grandchild = child.Fork();
  ASSERT_TRUE(grandchild.AcceptString(",2]}}"));
  EXPECT_TRUE(grandchild.CanTerminate());
  // Intermediate generations are intact.
  EXPECT_TRUE(child.AcceptString("]}}"));
  EXPECT_TRUE(child.CanTerminate());
  EXPECT_TRUE(root.AcceptString("7}}"));
  EXPECT_TRUE(root.CanTerminate());
}

TEST(MatcherFork, RollbackInsideForkIsBoundedByForkPoint) {
  GrammarMatcher parent(JsonPda());
  ASSERT_TRUE(parent.AcceptString("[true,"));
  GrammarMatcher fork = parent.Fork();
  ASSERT_TRUE(fork.AcceptString("false"));
  fork.RollbackBytes(5);
  EXPECT_EQ(fork.NumConsumedBytes(), 0);
  // Depth 0 is the fork point; the fork can re-take a different continuation.
  EXPECT_TRUE(fork.AcceptString("null]"));
  EXPECT_TRUE(fork.CanTerminate());
}

// Differential property: a fork must accept exactly the strings a fresh
// matcher accepts after the same prefix.
class ForkEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ForkEquivalence, ForkMatchesFreshMatcherReplay) {
  const std::string prefix = GetParam();
  GrammarMatcher parent(JsonPda());
  ASSERT_TRUE(parent.AcceptString(prefix));
  GrammarMatcher fork = parent.Fork();

  Rng rng(0xF0F0F0F0ull ^ prefix.size());
  const std::string continuations[] = {
      "1]", "null]", "\"s\"]", "{}]", "[]]", "}", "]", ",2]", ":3}", "x"};
  for (const std::string& continuation : continuations) {
    GrammarMatcher fresh(JsonPda());
    ASSERT_TRUE(fresh.AcceptString(prefix));
    EXPECT_EQ(fork.CanAcceptString(continuation),
              fresh.CanAcceptString(continuation))
        << "prefix=" << prefix << " continuation=" << continuation;
  }
}

INSTANTIATE_TEST_SUITE_P(Prefixes, ForkEquivalence,
                         ::testing::Values("[", "[1,", "[[", "{\"k\":",
                                           "[{\"a\":1},", "[\"str", "[12"));

// --- Decoder-level fork -------------------------------------------------------

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({3000, 17}));
  return info;
}

TEST(DecoderFork, ForkProducesSameMasksAsReplay) {
  auto info = TestTokenizer();
  auto cache = cache::AdaptiveTokenMaskCache::Build(JsonPda(), info);
  baselines::XGrammarDecoder decoder(cache);

  tokenizer::TokenTrie trie(*info);
  const std::string prefix = "{\"key\":[1,2,";
  std::vector<std::int32_t> prefix_tokens = tokenizer::GreedyTokenize(trie, prefix);
  for (std::int32_t token : prefix_tokens) {
    ASSERT_TRUE(decoder.AcceptToken(token));
  }
  auto fork = decoder.Fork();

  // A fresh decoder fed the same prefix must emit the identical mask.
  baselines::XGrammarDecoder replay(cache);
  for (std::int32_t token : prefix_tokens) {
    ASSERT_TRUE(replay.AcceptToken(token));
  }
  DynamicBitset fork_mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset replay_mask(static_cast<std::size_t>(info->VocabSize()));
  fork->FillNextTokenBitmask(&fork_mask);
  replay.FillNextTokenBitmask(&replay_mask);
  for (std::int32_t id = 0; id < info->VocabSize(); ++id) {
    ASSERT_EQ(fork_mask.Test(static_cast<std::size_t>(id)),
              replay_mask.Test(static_cast<std::size_t>(id)))
        << "token " << id;
  }
}

TEST(DecoderFork, SpeculativeBranchesVerifyIndependently) {
  auto info = TestTokenizer();
  auto cache = cache::AdaptiveTokenMaskCache::Build(JsonPda(), info);
  baselines::XGrammarDecoder decoder(cache);

  tokenizer::TokenTrie trie(*info);
  for (std::int32_t token : tokenizer::GreedyTokenize(trie, "[10,")) {
    ASSERT_TRUE(decoder.AcceptToken(token));
  }

  // Two speculative continuations, one valid and one grammar-breaking.
  auto good = decoder.Fork();
  auto bad = decoder.Fork();
  bool good_ok = true;
  for (std::int32_t token : tokenizer::GreedyTokenize(trie, "20]")) {
    good_ok = good_ok && good->AcceptToken(token);
  }
  EXPECT_TRUE(good_ok && good->CanTerminate());

  bool bad_ok = true;
  for (std::int32_t token : tokenizer::GreedyTokenize(trie, ",:5")) {
    bad_ok = bad_ok && bad->AcceptToken(token);
  }
  EXPECT_FALSE(bad_ok);

  // The trunk survives both branches and finishes its own way.
  for (std::int32_t token : tokenizer::GreedyTokenize(trie, "30]")) {
    ASSERT_TRUE(decoder.AcceptToken(token));
  }
  EXPECT_TRUE(decoder.CanTerminate());
}

}  // namespace
}  // namespace xgr::matcher
