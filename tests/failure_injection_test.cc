// Failure-injection tests: every user-facing entry point must fail loudly
// and precisely on malformed input — parse errors carry positions and causes,
// API misuse raises CheckError, and no invalid input corrupts state or
// crashes. (Production embeddings catch CheckError at the FFI boundary.)
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "grammar/structural_tag.h"
#include "json/json.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "regex/regex.h"
#include "support/logging.h"
#include "support/utf8.h"

namespace xgr {
namespace {

using grammar::ParseEbnf;
using grammar::ParseEbnfOrThrow;

// --- EBNF parser ------------------------------------------------------------

struct EbnfErrorCase {
  const char* name;
  const char* text;
  const char* message_fragment;
};

class EbnfErrors : public ::testing::TestWithParam<EbnfErrorCase> {};

TEST_P(EbnfErrors, ReportsCauseAndFailsCleanly) {
  auto [name, text, fragment] = GetParam();
  grammar::EbnfParseResult result = ParseEbnf(text);
  ASSERT_FALSE(result.ok) << name;
  EXPECT_NE(result.error.find(fragment), std::string::npos)
      << name << ": got error '" << result.error << "'";
  EXPECT_THROW(ParseEbnfOrThrow(text), CheckError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EbnfErrors,
    ::testing::Values(
        EbnfErrorCase{"unterminated_string", "root ::= \"abc", "unterminated"},
        EbnfErrorCase{"dangling_backslash", "root ::= \"a\\", "backslash"},
        EbnfErrorCase{"bad_hex_escape", R"(root ::= "\xZZ")", "hex"},
        EbnfErrorCase{"truncated_unicode", R"(root ::= "\u00")", "\\u"},
        EbnfErrorCase{"inverted_repeat", "root ::= \"a\"{3,1}", "max < min"},
        EbnfErrorCase{"missing_define", "root \"a\"", "::="},
        EbnfErrorCase{"undefined_rule", "root ::= missing_rule", "undefined"},
        EbnfErrorCase{"no_root", "other ::= \"a\"", "root"},
        EbnfErrorCase{"unbalanced_group", "root ::= (\"a\" | \"b\"", ")"},
        EbnfErrorCase{"stray_token", "root ::= \"a\" )", ""},
        EbnfErrorCase{"unterminated_class", "root ::= [a-z", "character class"}),
    [](const ::testing::TestParamInfo<EbnfErrorCase>& info) {
      return info.param.name;
    });

TEST(EbnfErrors, ErrorsCarryByteOffsets) {
  grammar::EbnfParseResult result = ParseEbnf("root ::= \"ok\"\nbad ::= \"x");
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("offset"), std::string::npos);
}

// --- JSON parser --------------------------------------------------------------

TEST(JsonErrors, MalformedDocumentsRejectedWithPosition) {
  for (const char* text :
       {"{", "[1,]", "{\"k\":}", "\"unterminated", "01", "1.2.3", "tru",
        "{\"a\":1,}", "[1] trailing", "\"bad\\q\"", "nul"}) {
    json::ParseResult result = json::Parse(text);
    EXPECT_FALSE(result.ok()) << text;
    EXPECT_FALSE(result.error.empty()) << text;
  }
}

TEST(JsonErrors, InvalidUtf8InStringsRejected) {
  EXPECT_FALSE(json::Parse("\"\xC3\"").ok());        // truncated 2-byte seq
  EXPECT_FALSE(json::Parse("\"\xFF\xFE\"").ok());    // not UTF-8 at all
  EXPECT_FALSE(json::Parse("\"\xE0\x80\x80\"").ok());  // overlong encoding
}

// --- JSON-Schema converter -----------------------------------------------------

TEST(SchemaErrors, MalformedSchemasThrow) {
  EXPECT_THROW(grammar::JsonSchemaTextToGrammar("not json"), CheckError);
  EXPECT_THROW(grammar::JsonSchemaTextToGrammar("[1,2]"), CheckError);
  EXPECT_THROW(grammar::JsonSchemaTextToGrammar(R"({"type":"quux"})"), CheckError);
  EXPECT_THROW(grammar::JsonSchemaTextToGrammar(R"({"enum":[]})"), CheckError);
  EXPECT_THROW(grammar::JsonSchemaTextToGrammar(R"({"anyOf":[]})"), CheckError);
  EXPECT_THROW(grammar::JsonSchemaTextToGrammar(R"({"allOf":[]})"), CheckError);
  EXPECT_THROW(
      grammar::JsonSchemaTextToGrammar(R"({"$ref":"#/missing/path"})"),
      CheckError);
  EXPECT_THROW(
      grammar::JsonSchemaTextToGrammar(R"({"type":"string","pattern":"(["})"),
      CheckError);
  EXPECT_THROW(grammar::JsonSchemaTextToGrammar(
                   R"({"type":"array","maxItems":1,"minItems":2})"),
               CheckError);
  EXPECT_THROW(grammar::JsonSchemaTextToGrammar(
                   R"({"type":"array","prefixItems":[]})"),
               CheckError);
}

// --- Grammar construction misuse ------------------------------------------------

TEST(GrammarMisuse, EmptyCharClassThrows) {
  grammar::Grammar g;
  // Negating the full range leaves nothing matchable.
  EXPECT_THROW(g.AddCharClass({{0, kMaxCodepoint}}, /*negated=*/true), CheckError);
  EXPECT_THROW(g.AddCharClass({}, /*negated=*/false), CheckError);
}

TEST(GrammarMisuse, ValidateCatchesUnsetBodies) {
  grammar::Grammar g;
  grammar::RuleId rule = g.DeclareRule("root");
  g.SetRootRule(rule);
  EXPECT_THROW(g.Validate(), CheckError);  // body never set
}

TEST(GrammarMisuse, ValidateCatchesMissingRoot) {
  grammar::Grammar g;
  g.AddRule("a", g.AddByteString("x"));
  EXPECT_THROW(g.Validate(), CheckError);  // no root set
}

TEST(GrammarMisuse, BadRepeatBoundsThrow) {
  grammar::Grammar g;
  grammar::ExprId child = g.AddByteString("a");
  EXPECT_THROW(g.AddRepeat(child, -1, 2), CheckError);
  EXPECT_THROW(g.AddRepeat(child, 3, 2), CheckError);
}

// --- Matcher misuse ---------------------------------------------------------------

TEST(MatcherMisuse, RollbackPastHistoryThrows) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  matcher::GrammarMatcher m(pda);
  ASSERT_TRUE(m.AcceptString("[1"));
  // Out-of-range targets miss RollbackToDepth's equal-depth fast path, so
  // the slow-path hard check throws in every build type.
  EXPECT_THROW(m.RollbackToDepth(-1), CheckError);
  EXPECT_THROW(m.RollbackToDepth(3), CheckError);
  EXPECT_THROW(m.RollbackBytes(5), CheckError);
  EXPECT_THROW(m.RollbackTokens(1), CheckError);  // no checkpoints pushed
}

TEST(MatcherMisuse, RejectedByteLeavesStateIntact) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  matcher::GrammarMatcher m(pda);
  ASSERT_TRUE(m.AcceptString("{\"a\":"));
  std::int32_t depth = m.NumConsumedBytes();
  EXPECT_FALSE(m.AcceptByte('}'));  // value required before '}'
  EXPECT_EQ(m.NumConsumedBytes(), depth);
  EXPECT_TRUE(m.AcceptString("1}"));
  EXPECT_TRUE(m.CanTerminate());
}

TEST(MatcherMisuse, InvalidUtf8BytesJustFailToMatch) {
  // Grammars over text reject stray continuation bytes without crashing.
  auto pda = pda::CompiledGrammar::Compile(
      ParseEbnfOrThrow("root ::= [a-zé]+"));
  matcher::GrammarMatcher m(pda);
  EXPECT_FALSE(m.AcceptByte(0xA9));  // continuation byte with no lead
  EXPECT_TRUE(m.AcceptByte(0xC3));   // lead byte of é is a valid prefix
  EXPECT_TRUE(m.AcceptByte(0xA9));
  EXPECT_TRUE(m.CanTerminate());
}

// --- Structural tags -----------------------------------------------------------

TEST(StructuralTagErrors, BadSchemasAndMarkersThrow) {
  using grammar::BuildStructuralTagGrammar;
  using grammar::StructuralTag;
  EXPECT_THROW(BuildStructuralTagGrammar({}, {"<f"}), CheckError);
  EXPECT_THROW(
      BuildStructuralTagGrammar({{"", "", "</f>"}}, {"<f"}), CheckError);
  EXPECT_THROW(
      BuildStructuralTagGrammar({{"<f>", "", ""}}, {"<f"}), CheckError);
  EXPECT_THROW(
      BuildStructuralTagGrammar({{"<f>", "{bad schema", "</f>"}}, {"<f"}),
      CheckError);
}

// --- Pushdown automaton compilation ----------------------------------------------

TEST(CompileErrors, LeftRecursionIsCaughtAtRuntimeBudget) {
  // Left recursion compiles but cannot be executed: the closure would push
  // forever. The matcher's closure budget turns that into CheckError instead
  // of a hang.
  grammar::Grammar g;
  grammar::RuleId rule = g.DeclareRule("root");
  g.SetRuleBody(rule, g.AddChoice({g.AddSequence({g.AddRuleRef(rule),
                                                  g.AddByteString("a")}),
                                   g.AddByteString("a")}));
  g.SetRootRule(rule);
  auto pda = pda::CompiledGrammar::Compile(g);
  EXPECT_THROW(matcher::GrammarMatcher{pda}, CheckError);
}

// --- UTF-8 utilities --------------------------------------------------------------

TEST(Utf8Errors, DecodeReportsInvalidSequences) {
  for (const char* bad : {"\xC3", "\x80", "\xFF", "\xE0\x80\x80",
                          "\xED\xA0\x80" /* surrogate */}) {
    DecodedChar decoded = DecodeUtf8(bad, 0);
    EXPECT_FALSE(decoded.ok) << static_cast<int>(bad[0]);
  }
}

TEST(Utf8Errors, EncodeRejectsOutOfRange) {
  std::string out;
  EXPECT_THROW(AppendUtf8(0x110000, &out), CheckError);
}

// --- Regex engine -------------------------------------------------------------------

TEST(RegexErrors, DeterminizationBudgetThrows) {
  // (a|b)*a(a|b){20} needs ~2^20 DFA states; a small budget must throw
  // rather than exhaust memory.
  fsa::Fsa nfa = regex::CompileRegex("(a|b)*a(a|b){20}");
  EXPECT_THROW(fsa::Determinize(nfa, 1024), CheckError);
}

}  // namespace
}  // namespace xgr
