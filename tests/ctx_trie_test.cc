// Trie-pruned context-dependent checking:
//   * PrefixTrieSlice structural invariants (preorder depth chain, skip
//     pointers, token-range tiling, duplicate and empty tokens);
//   * differential: the trie-DFS checker must accept exactly the same ctx
//     tokens as the flat lexicographic checker it replaced AND as per-token
//     brute-force matcher acceptance, across ambiguous multi-stack grammars,
//     all three StorageKinds, and terminated states;
//   * per-stack ctx memoization: repeat laps produce bit-identical masks and
//     actually hit the memo;
//   * serialize round trip of entries with non-empty ctx sub-tries;
//   * RollbackToDepth equal-depth fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "cache/ctx_trie_dfs.h"
#include "cache/mask_generator.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "serialize/serialize.h"
#include "support/string_utils.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"

namespace xgr::cache {
namespace {

using tokenizer::PrefixTrieSlice;

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer(std::int32_t size,
                                                              std::uint64_t seed) {
  static std::map<std::pair<std::int32_t, std::uint64_t>,
                  std::shared_ptr<const tokenizer::TokenizerInfo>>
      cache;
  auto key = std::make_pair(size, seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_shared<tokenizer::TokenizerInfo>(
                                tokenizer::BuildSyntheticVocab({size, seed})))
             .first;
  }
  return it->second;
}

// Tiny handmade vocabulary for structural tests (ids in declaration order).
tokenizer::TokenizerInfo HandmadeTokenizer(std::vector<std::string> tokens) {
  tokenizer::Vocabulary vocab;
  vocab.tokens = std::move(tokens);
  return tokenizer::TokenizerInfo(std::move(vocab));
}

// --- PrefixTrieSlice structure ------------------------------------------------

TEST(PrefixTrieSlice, EmptyInputBuildsEmptySlice) {
  tokenizer::TokenizerInfo info = HandmadeTokenizer({"a"});
  PrefixTrieSlice trie = PrefixTrieSlice::Build(info, {});
  EXPECT_TRUE(trie.Empty());
  EXPECT_EQ(trie.NumNodes(), 0);
  EXPECT_EQ(trie.NumTokens(), 0);
  EXPECT_EQ(trie.RootTokenEnd(), 0);
  EXPECT_EQ(trie.MemoryBytes(), 0u);
}

TEST(PrefixTrieSlice, StructureOfSmallTrie) {
  // Lexicographic input: "", "a", "ab", "ab" (duplicate), "ac", "b".
  tokenizer::TokenizerInfo info =
      HandmadeTokenizer({"", "a", "ab", "ab", "ac", "b"});
  std::vector<std::int32_t> ids{0, 1, 2, 3, 4, 5};
  PrefixTrieSlice trie = PrefixTrieSlice::Build(info, ids);
  // Nodes in preorder: a(d1), ab(d2), ac(d2), b(d1).
  ASSERT_EQ(trie.NumNodes(), 4);
  EXPECT_EQ(trie.NumTokens(), 6);
  EXPECT_EQ(trie.RootTokenEnd(), 1);  // the empty token
  EXPECT_EQ(trie.EdgeByte(0), 'a');
  EXPECT_EQ(trie.Depth(0), 1);
  EXPECT_EQ(trie.Skip(0), 3);  // subtree of "a" = nodes {0,1,2}
  EXPECT_EQ(trie.TokenBegin(0), 1);
  EXPECT_EQ(trie.TerminalTokenEnd(0), 2);   // token "a"
  EXPECT_EQ(trie.SubtreeTokenEnd(0), 5);    // "a","ab","ab","ac"
  EXPECT_EQ(trie.EdgeByte(1), 'b');
  EXPECT_EQ(trie.Depth(1), 2);
  EXPECT_EQ(trie.TokenBegin(1), 2);
  EXPECT_EQ(trie.TerminalTokenEnd(1), 4);  // both duplicate "ab" ids
  EXPECT_EQ(trie.EdgeByte(3), 'b');
  EXPECT_EQ(trie.Depth(3), 1);
  EXPECT_EQ(trie.Skip(3), 4);
  EXPECT_EQ(trie.SubtreeTokenEnd(3), 6);
}

TEST(PrefixTrieSlice, InvariantsOnSyntheticVocabulary) {
  auto info = TestTokenizer(3000, 17);
  const std::vector<std::int32_t>& sorted = info->SortedTokenIds();
  PrefixTrieSlice trie = PrefixTrieSlice::Build(*info, sorted);
  ASSERT_GT(trie.NumNodes(), 0);
  EXPECT_EQ(trie.NumTokens(), static_cast<std::int32_t>(sorted.size()));
  std::int64_t terminal_total = trie.RootTokenEnd();
  for (std::int32_t i = 0; i < trie.NumNodes(); ++i) {
    // Preorder depth chain: first node is a root child; successors descend at
    // most one level. This is what keeps the DFS rollback targets legal.
    EXPECT_GE(trie.Depth(i), 1);
    EXPECT_LE(trie.Depth(i), i == 0 ? 1 : trie.Depth(i - 1) + 1);
    EXPECT_GT(trie.Skip(i), i);
    EXPECT_LE(trie.Skip(i), trie.NumNodes());
    // Token ranges tile the input: terminals are a prefix of the subtree.
    EXPECT_LE(trie.TokenBegin(i), trie.TerminalTokenEnd(i));
    EXPECT_LE(trie.TerminalTokenEnd(i), trie.SubtreeTokenEnd(i));
    terminal_total += trie.TerminalTokenEnd(i) - trie.TokenBegin(i);
    // Every node's terminal tokens spell exactly the node's path bytes: check
    // the depth matches the token length.
    for (std::int32_t t = trie.TokenBegin(i); t < trie.TerminalTokenEnd(i); ++t) {
      EXPECT_EQ(static_cast<std::int32_t>(
                    info->TokenBytes(sorted[static_cast<std::size_t>(t)]).size()),
                trie.Depth(i));
    }
  }
  // Every token is terminal at exactly one node (or the root).
  EXPECT_EQ(terminal_total, trie.NumTokens());
}

// --- Differential: trie DFS vs flat list vs brute force -----------------------

// The flat lexicographic checker this PR replaced (faithful reimplementation
// on the public matcher API): rollback to the common prefix with the previous
// token, walk the remainder.
std::vector<std::int32_t> FlatCheck(std::shared_ptr<const pda::CompiledGrammar> pda,
                                    const tokenizer::TokenizerInfo& tokenizer,
                                    const matcher::GrammarMatcher& runtime,
                                    std::int32_t stack_id,
                                    const NodeMaskEntry& entry) {
  std::vector<std::int32_t> accepted;
  matcher::GrammarMatcher scratch(std::move(pda), runtime.Pool(), stack_id);
  std::string_view previous;
  for (std::int32_t token_id : entry.context_dependent) {
    const std::string& token = tokenizer.TokenBytes(token_id);
    auto common = static_cast<std::int32_t>(CommonPrefixLength(previous, token));
    scratch.RollbackToDepth(std::min(common, scratch.NumConsumedBytes()));
    bool ok = true;
    for (std::size_t j = static_cast<std::size_t>(scratch.NumConsumedBytes());
         j < token.size(); ++j) {
      if (!scratch.AcceptByte(static_cast<std::uint8_t>(token[j]))) {
        ok = false;
        break;
      }
    }
    if (ok) accepted.push_back(token_id);
    previous = token;
  }
  std::sort(accepted.begin(), accepted.end());
  return accepted;
}

// The new checker's core: DFS over the entry's ctx sub-trie.
std::vector<std::int32_t> TrieCheck(std::shared_ptr<const pda::CompiledGrammar> pda,
                                    const matcher::GrammarMatcher& runtime,
                                    std::int32_t stack_id,
                                    const NodeMaskEntry& entry) {
  std::vector<std::int32_t> accepted;
  matcher::GrammarMatcher scratch(std::move(pda), runtime.Pool(), stack_id);
  const PrefixTrieSlice& trie = entry.ctx_trie;
  for (std::int32_t t = 0; t < trie.RootTokenEnd(); ++t) {
    accepted.push_back(entry.context_dependent[static_cast<std::size_t>(t)]);
  }
  CtxDfsCounters counters;
  CtxTrieDfs(
      trie, &scratch, &counters,
      [&](std::int32_t pos) {
        for (std::int32_t t = trie.TokenBegin(pos); t < trie.TerminalTokenEnd(pos);
             ++t) {
          accepted.push_back(entry.context_dependent[static_cast<std::size_t>(t)]);
        }
      },
      [](std::int32_t) {});
  std::sort(accepted.begin(), accepted.end());
  return accepted;
}

// Ground truth: one fresh walk per token.
std::vector<std::int32_t> BruteCheck(std::shared_ptr<const pda::CompiledGrammar> pda,
                                     const tokenizer::TokenizerInfo& tokenizer,
                                     const matcher::GrammarMatcher& runtime,
                                     std::int32_t stack_id,
                                     const NodeMaskEntry& entry) {
  std::vector<std::int32_t> accepted;
  matcher::GrammarMatcher scratch(std::move(pda), runtime.Pool(), stack_id);
  for (std::int32_t token_id : entry.context_dependent) {
    if (scratch.CanAcceptString(tokenizer.TokenBytes(token_id))) {
      accepted.push_back(token_id);
    }
  }
  std::sort(accepted.begin(), accepted.end());
  return accepted;
}

// Walks `document` byte by byte; at every prefix (including the terminated
// end state) the three checkers must agree on every mask stack whose entry
// has context-dependent tokens. Returns how many (stack, entry) checks ran.
std::int64_t ExpectCheckersAgreeAlong(const grammar::Grammar& g,
                                      const std::string& document,
                                      std::int32_t vocab_size, std::uint64_t seed,
                                      const AdaptiveCacheOptions& cache_options = {},
                                      const pda::CompileOptions& options = {}) {
  auto pda = pda::CompiledGrammar::Compile(g, options);
  auto info = TestTokenizer(vocab_size, seed);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info, cache_options);
  matcher::GrammarMatcher m(pda);
  std::int64_t checks = 0;
  for (std::size_t i = 0;; ++i) {
    for (std::int32_t stack_id : m.MaskStacks()) {
      const NodeMaskEntry& entry = cache->Entry(m.Pool().TopNode(stack_id));
      if (entry.context_dependent.empty()) {
        EXPECT_TRUE(entry.ctx_trie.Empty());
        continue;
      }
      EXPECT_EQ(entry.ctx_trie.NumTokens(),
                static_cast<std::int32_t>(entry.context_dependent.size()));
      std::vector<std::int32_t> flat = FlatCheck(pda, *info, m, stack_id, entry);
      std::vector<std::int32_t> trie = TrieCheck(pda, m, stack_id, entry);
      std::vector<std::int32_t> brute = BruteCheck(pda, *info, m, stack_id, entry);
      EXPECT_EQ(trie, flat) << "prefix '" << document.substr(0, i) << "'";
      EXPECT_EQ(trie, brute) << "prefix '" << document.substr(0, i) << "'";
      ++checks;
    }
    if (i >= document.size()) break;
    EXPECT_TRUE(m.AcceptByte(static_cast<std::uint8_t>(document[i])));
  }
  return checks;
}

grammar::Grammar AmbiguousGrammar() {
  // Both alternatives share the prefix "aa": two parallel stacks stay alive,
  // so checks run against genuinely different full stacks per step.
  return grammar::ParseEbnfOrThrow(R"(
    root ::= item*
    item ::= "aa" "x" | "a" "a" "y"
  )");
}

TEST(CtxTrieDifferential, JsonGrammarAllStorageKinds) {
  // At this vocabulary the JSON grammar exercises accept-heavy, reject-heavy
  // AND bitset entries (asserted by WordLevelMerge.StorageKindCoverage).
  auto docs = datasets::GenerateJsonDocuments(1, 7);
  std::int64_t checks =
      ExpectCheckersAgreeAlong(grammar::BuiltinJsonGrammar(), docs[0], 16000, 17);
  EXPECT_GT(checks, 0) << "no context-dependent entries were exercised";
}

TEST(CtxTrieDifferential, AmbiguousMultiStackGrammar) {
  std::int64_t checks =
      ExpectCheckersAgreeAlong(AmbiguousGrammar(), "aaxaayaax", 1200, 31, {},
                               pda::CompileOptions::AllDisabled());
  // The walk itself must have seen multiple live stacks.
  auto pda = pda::CompiledGrammar::Compile(AmbiguousGrammar(),
                                           pda::CompileOptions::AllDisabled());
  matcher::GrammarMatcher probe(pda);
  ASSERT_TRUE(probe.AcceptString("aa"));
  ASSERT_GE(probe.ClosedStacks().size(), 2u);
  (void)checks;
}

TEST(CtxTrieDifferential, ForcedBitsetStorage) {
  AdaptiveCacheOptions forced;
  forced.adaptive_storage = false;
  auto docs = datasets::GenerateJsonDocuments(1, 44);
  ExpectCheckersAgreeAlong(grammar::BuiltinJsonGrammar(), docs[0], 1500, 23, forced);
  ExpectCheckersAgreeAlong(AmbiguousGrammar(), "aayaax", 1200, 31, forced,
                           pda::CompileOptions::AllDisabled());
}

TEST(CtxTrieDifferential, TerminatedState) {
  // The driver checks the end state too; this pins a grammar that terminates.
  grammar::Grammar g = grammar::ParseEbnfOrThrow(R"(root ::= "ab" | "ab" "c")");
  ExpectCheckersAgreeAlong(g, "abc", 1200, 31);
}

// --- Per-stack ctx memoization ------------------------------------------------

TEST(CtxMemo, RepeatLapsHitMemoAndMatchBitForBit) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(3000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  MaskGenerator generator(cache);
  matcher::GrammarMatcher m(pda);
  std::string doc = datasets::GenerateJsonDocuments(1, 5, 3)[0];
  DynamicBitset lap1(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset lap2(static_cast<std::size_t>(info->VocabSize()));
  std::vector<DynamicBitset> lap1_masks;
  for (char c : doc) {
    generator.FillNextTokenBitmask(&m, &lap1);
    lap1_masks.push_back(lap1);
    ASSERT_TRUE(m.AcceptByte(static_cast<std::uint8_t>(c)));
  }
  ASSERT_GT(generator.Stats().ctx_memo_misses, 0);
  m.ResetToStart();
  std::int64_t hits_before = generator.Stats().ctx_memo_hits;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    generator.FillNextTokenBitmask(&m, &lap2);
    EXPECT_TRUE(lap2 == lap1_masks[i]) << "memoized mask diverged at step " << i;
    ASSERT_TRUE(m.AcceptByte(static_cast<std::uint8_t>(doc[i])));
  }
  EXPECT_GT(generator.Stats().ctx_memo_hits, hits_before);
  // Counter sanity: every resolved token was either walked or pruned or
  // memo-served; bytes were only spent on misses.
  const MaskGenStats& s = generator.Stats();
  EXPECT_GT(s.runtime_tokens_checked, 0);
  EXPECT_LE(s.ctx_tokens_pruned, s.runtime_tokens_checked);
}

// --- Serialization ------------------------------------------------------------

TEST(CtxTrieSerialize, RoundTripsEntriesWithNonEmptySubTries) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinXmlGrammar());
  auto info = TestTokenizer(3000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  bool any_ctx_trie = false;
  for (std::int32_t n = 0; n < pda->NumNodes(); ++n) {
    if (!cache->Entry(n).ctx_trie.Empty()) any_ctx_trie = true;
  }
  ASSERT_TRUE(any_ctx_trie) << "test grammar produced no ctx sub-tries";

  std::string bytes = serialize::SerializeEngineArtifact(*cache);
  auto restored = serialize::DeserializeEngineArtifact(bytes, info);
  ASSERT_EQ(restored->Pda().NumNodes(), pda->NumNodes());
  for (std::int32_t n = 0; n < pda->NumNodes(); ++n) {
    const NodeMaskEntry& a = cache->Entry(n);
    const NodeMaskEntry& b = restored->Entry(n);
    EXPECT_EQ(a.context_dependent, b.context_dependent) << n;
    EXPECT_TRUE(a.ctx_trie == b.ctx_trie) << "ctx trie mismatch at node " << n;
    EXPECT_EQ(a.MemoryBytes(), b.MemoryBytes()) << n;
  }
  EXPECT_EQ(restored->Stats().tokens_pruned, cache->Stats().tokens_pruned);
  EXPECT_EQ(restored->Stats().subtree_cutoffs, cache->Stats().subtree_cutoffs);

  // The restored cache must generate identical masks through the trie path.
  MaskGenerator original_gen(cache);
  MaskGenerator restored_gen(restored);
  matcher::GrammarMatcher m1(pda);
  matcher::GrammarMatcher m2(restored->PdaShared());
  DynamicBitset mask1(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset mask2(static_cast<std::size_t>(info->VocabSize()));
  std::string doc = datasets::GenerateXmlDocuments(1, 555)[0];
  for (char c : doc) {
    original_gen.FillNextTokenBitmask(&m1, &mask1);
    restored_gen.FillNextTokenBitmask(&m2, &mask2);
    ASSERT_TRUE(mask1 == mask2);
    ASSERT_TRUE(m1.AcceptByte(static_cast<std::uint8_t>(c)));
    ASSERT_TRUE(m2.AcceptByte(static_cast<std::uint8_t>(c)));
  }
}

// --- Build stats --------------------------------------------------------------

TEST(CtxTrieBuildStats, SubtreeCutoffsAttributed) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(3000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  const CacheBuildStats& s = cache->Stats();
  // The builder's DFS must have cut off subtrees (a vocabulary walk with no
  // pruning would mean the trie is useless) and every pruned token is one of
  // the classified ones.
  EXPECT_GT(s.subtree_cutoffs, 0);
  EXPECT_GT(s.tokens_pruned, 0);
  EXPECT_LE(s.tokens_pruned, s.tokens_classified);
  EXPECT_LE(s.bytes_checked, s.bytes_total);
}

// --- RollbackToDepth fast path -----------------------------------------------

TEST(RollbackFastPath, EqualDepthRollbackIsANoOp) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  matcher::GrammarMatcher m(pda);
  ASSERT_TRUE(m.AcceptString("{\"a\":"));
  std::int32_t depth = m.NumConsumedBytes();
  std::uint64_t rollback_bytes = m.Stats().rollback_bytes;
  m.RollbackToDepth(depth);
  EXPECT_EQ(m.NumConsumedBytes(), depth);
  // The O(1) early return must not even touch the rollback accounting.
  EXPECT_EQ(m.Stats().rollback_bytes, rollback_bytes);
  EXPECT_TRUE(m.AcceptString("1}"));
  EXPECT_TRUE(m.CanTerminate());
}

}  // namespace
}  // namespace xgr::cache
