// Tests for the persistent execution stack and the grammar matcher: byte
// matching, rollback, branching, jump-forward, termination.
#include <gtest/gtest.h>

#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"

namespace xgr::matcher {
namespace {

using grammar::BuiltinJsonGrammar;
using grammar::BuiltinPythonDslGrammar;
using grammar::BuiltinXmlGrammar;
using pda::CompiledGrammar;

std::shared_ptr<const CompiledGrammar> JsonPda() {
  static auto pda = CompiledGrammar::Compile(BuiltinJsonGrammar());
  return pda;
}

// --- PersistentStackPool ------------------------------------------------------

TEST(PersistentStackPool, InterningIsCanonical) {
  PersistentStackPool pool;
  std::int32_t a = pool.Intern(PersistentStackPool::kNoParent, 7);
  std::int32_t b = pool.Intern(PersistentStackPool::kNoParent, 7);
  EXPECT_EQ(a, b);
  std::int32_t c = pool.Intern(a, 9);
  std::int32_t d = pool.Intern(a, 9);
  EXPECT_EQ(c, d);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.Size(), 2u);
}

TEST(PersistentStackPool, DepthFollowsChain) {
  PersistentStackPool pool;
  std::int32_t a = pool.Intern(PersistentStackPool::kNoParent, 1);
  std::int32_t b = pool.Intern(a, 2);
  std::int32_t c = pool.Intern(b, 3);
  EXPECT_EQ(pool.Depth(a), 1);
  EXPECT_EQ(pool.Depth(c), 3);
  EXPECT_EQ(pool.TopNode(c), 3);
}

TEST(PersistentStackPool, CopyChainAcrossPools) {
  PersistentStackPool source;
  std::int32_t a = source.Intern(PersistentStackPool::kNoParent, 1);
  std::int32_t b = source.Intern(a, 2);
  PersistentStackPool dest;
  std::int32_t copied = dest.CopyChainFrom(source, b);
  EXPECT_EQ(dest.Depth(copied), 2);
  EXPECT_EQ(dest.TopNode(copied), 2);
  EXPECT_EQ(dest.Get(copied).parent, dest.Intern(PersistentStackPool::kNoParent, 1));
}

// --- Matching ------------------------------------------------------------------

class JsonDocumentTest : public ::testing::TestWithParam<int> {};

TEST_P(JsonDocumentTest, GeneratedDocumentsAccepted) {
  auto docs = datasets::GenerateJsonDocuments(1, static_cast<std::uint64_t>(GetParam()));
  GrammarMatcher m(JsonPda());
  EXPECT_TRUE(m.AcceptString(docs[0])) << docs[0];
  EXPECT_TRUE(m.CanTerminate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonDocumentTest, ::testing::Range(0, 20));

class XmlDocumentTest : public ::testing::TestWithParam<int> {};

TEST_P(XmlDocumentTest, GeneratedDocumentsAccepted) {
  static auto pda = CompiledGrammar::Compile(BuiltinXmlGrammar());
  auto docs = datasets::GenerateXmlDocuments(1, static_cast<std::uint64_t>(GetParam()));
  GrammarMatcher m(pda);
  EXPECT_TRUE(m.AcceptString(docs[0])) << docs[0];
  EXPECT_TRUE(m.CanTerminate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlDocumentTest, ::testing::Range(0, 20));

class PythonProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(PythonProgramTest, GeneratedProgramsAccepted) {
  static auto pda = CompiledGrammar::Compile(BuiltinPythonDslGrammar());
  auto programs =
      datasets::GeneratePythonPrograms(1, static_cast<std::uint64_t>(GetParam()));
  GrammarMatcher m(pda);
  EXPECT_TRUE(m.AcceptString(programs[0])) << programs[0];
  EXPECT_TRUE(m.CanTerminate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PythonProgramTest, ::testing::Range(0, 20));

TEST(GrammarMatcher, PartialDocumentIsAliveButNotTerminal) {
  GrammarMatcher m(JsonPda());
  EXPECT_TRUE(m.AcceptString(R"({"key": [1, 2)"));
  EXPECT_FALSE(m.CanTerminate());
  EXPECT_FALSE(m.Dead());
}

TEST(GrammarMatcher, RejectedByteLeavesStateUnchanged) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("{"));
  auto stacks_before = m.CurrentStacks();
  std::int32_t depth_before = m.NumConsumedBytes();
  EXPECT_FALSE(m.AcceptByte(')'));  // illegal after '{'
  EXPECT_EQ(m.CurrentStacks(), stacks_before);
  EXPECT_EQ(m.NumConsumedBytes(), depth_before);
  EXPECT_TRUE(m.AcceptByte('}'));  // still usable
}

TEST(GrammarMatcher, AcceptStringAtomicOnFailure) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("[1"));
  std::int32_t depth = m.NumConsumedBytes();
  EXPECT_FALSE(m.AcceptString(",2,]"));  // fails at ']'
  EXPECT_EQ(m.NumConsumedBytes(), depth);
  EXPECT_TRUE(m.AcceptString(",2]"));
  EXPECT_TRUE(m.CanTerminate());
}

TEST(GrammarMatcher, CanAcceptStringDoesNotMutate) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("[true"));
  EXPECT_TRUE(m.CanAcceptString(",false]"));
  EXPECT_FALSE(m.CanAcceptString("]]"));
  EXPECT_EQ(m.NumConsumedBytes(), 5);
  EXPECT_TRUE(m.AcceptString(",false]"));
}

// Property: matching a string, rolling back k bytes and re-matching the same
// suffix reproduces the exact same stack state (persistent-stack soundness).
class RollbackPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RollbackPropertyTest, RollbackReplayIsIdempotent) {
  auto docs = datasets::GenerateJsonDocuments(1, static_cast<std::uint64_t>(GetParam()) + 500);
  const std::string& doc = docs[0];
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString(doc));
  auto final_stacks = m.CurrentStacks();
  for (int k : {1, 3, 7, static_cast<int>(doc.size())}) {
    if (k > m.NumConsumedBytes()) continue;
    m.RollbackBytes(k);
    std::string suffix = doc.substr(doc.size() - static_cast<std::size_t>(k));
    ASSERT_TRUE(m.AcceptString(suffix));
    EXPECT_EQ(m.CurrentStacks(), final_stacks) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackPropertyTest, ::testing::Range(0, 10));

TEST(GrammarMatcher, TokenCheckpointRollback) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("{\"a\""));
  m.PushTokenCheckpoint();
  ASSERT_TRUE(m.AcceptString(": [1"));
  m.PushTokenCheckpoint();
  ASSERT_TRUE(m.AcceptString(", 2]"));
  m.PushTokenCheckpoint();
  EXPECT_EQ(m.NumTokenCheckpoints(), 3);
  m.RollbackTokens(2);
  EXPECT_EQ(m.NumConsumedBytes(), 4);  // back to after "{\"a\""
  EXPECT_EQ(m.NumTokenCheckpoints(), 1);
  EXPECT_TRUE(m.AcceptString(":2}"));
  EXPECT_TRUE(m.CanTerminate());
}

TEST(GrammarMatcher, RollbackBeyondHistoryThrows) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("[1"));
  EXPECT_THROW(m.RollbackBytes(3), CheckError);
  EXPECT_THROW(m.RollbackTokens(1), CheckError);
}

// --- Jump-forward ---------------------------------------------------------------

TEST(JumpForward, ForcedSpanDetected) {
  auto g = grammar::ParseEbnfOrThrow(
      R"(root ::= "prefix" ("-long-forced-span-" | "-long-forced-spat-") [0-9])");
  auto pda = CompiledGrammar::Compile(g);
  GrammarMatcher m(pda);
  EXPECT_EQ(m.FindJumpForwardString(), "prefix-long-forced-spa");
  // State must be unchanged by the probe.
  EXPECT_EQ(m.NumConsumedBytes(), 0);
  EXPECT_TRUE(m.AcceptString("prefix-long-forced-span-7"));
  EXPECT_TRUE(m.CanTerminate());
}

TEST(JumpForward, StopsAtChoicePoints) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("{\"key\""));
  // After a key the grammar forces optional-ws then ':', but ws makes the
  // very next byte ambiguous only between ws chars and ':': not unique.
  std::string jump = m.FindJumpForwardString();
  // Whatever is returned must be a forced, replayable prefix.
  if (!jump.empty()) {
    EXPECT_TRUE(m.CanAcceptString(jump));
  }
}

TEST(JumpForward, StopsWhenTerminationPossible) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("3"));
  // "3" is a complete document; termination is an alternative, so no jump.
  EXPECT_EQ(m.FindJumpForwardString(), "");
}

TEST(JumpForward, SchemaLiteralsAreForced) {
  grammar::Grammar g = grammar::JsonSchemaTextToGrammar(
      R"({"type":"object","properties":{"temperature_celsius":{"type":"number"}},
          "required":["temperature_celsius"],"additionalProperties":false})");
  auto pda = CompiledGrammar::Compile(g);
  GrammarMatcher m(pda);
  EXPECT_EQ(m.FindJumpForwardString(), "{\"temperature_celsius\":");
}

TEST(JumpForward, NeverCutsMultiByteLiteralAtMaxLength) {
  // "clé" is 4 bytes (c l C3 A9): a max_length landing inside 'é' must trim
  // back to the complete-codepoint boundary instead of forcing the lead byte
  // alone into the context (a partial codepoint cannot be retokenized).
  auto g = grammar::ParseEbnfOrThrow(R"(root ::= "clé-suffix")");
  auto pda = CompiledGrammar::Compile(g);
  GrammarMatcher m(pda);
  EXPECT_EQ(m.FindJumpForwardString(3), "cl");   // not "cl\xC3"
  EXPECT_EQ(m.FindJumpForwardString(4), "clé");  // boundary is fine
  EXPECT_EQ(m.FindJumpForwardString(), "clé-suffix");
  EXPECT_EQ(m.NumConsumedBytes(), 0);
}

TEST(JumpForward, NeverStopsMidCodepointAtCharClassContinuation) {
  // All of [à-ö] shares the lead byte 0xC3; only its continuation byte
  // varies. The lead byte is therefore forced — the old walk emitted it and
  // stopped, pushing half a character into the forced span.
  auto g = grammar::ParseEbnfOrThrow(R"(root ::= "a" [à-ö] "z")");
  auto pda = CompiledGrammar::Compile(g);
  GrammarMatcher m(pda);
  EXPECT_EQ(m.FindJumpForwardString(), "a");  // not "a\xC3"
  ASSERT_TRUE(m.AcceptString("aéz"));
  EXPECT_TRUE(m.CanTerminate());
}

// --- Termination / EOS ------------------------------------------------------------

TEST(GrammarMatcher, TerminationOnlyAtCompleteDocuments) {
  struct Case {
    const char* text;
    bool terminal;
  };
  for (const Case& c : {Case{"{}", true}, Case{"{", false}, Case{"[[]]", true},
                        Case{"[[]", false}, Case{"17", true}, Case{"17.", false},
                        Case{"\"s\"", true}, Case{"\"s", false},
                        Case{"null", true}, Case{"nul", false}}) {
    GrammarMatcher m(JsonPda());
    ASSERT_TRUE(m.AcceptString(c.text)) << c.text;
    EXPECT_EQ(m.CanTerminate(), c.terminal) << c.text;
  }
}

TEST(GrammarMatcher, NumberPrefixAmbiguityKeepsBothPaths) {
  // "1" can terminate or continue as "12", "1.5", "1e9": stacks must allow all.
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("1"));
  EXPECT_TRUE(m.CanTerminate());
  EXPECT_TRUE(m.CanAcceptString("2"));
  EXPECT_TRUE(m.CanAcceptString(".5"));
  EXPECT_TRUE(m.CanAcceptString("e+4"));
}

TEST(GrammarMatcher, StatsAccumulate) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("[1,2]"));
  EXPECT_FALSE(m.AcceptByte('x'));
  const MatcherStats& stats = m.Stats();
  EXPECT_EQ(stats.bytes_accepted, 5u);
  EXPECT_EQ(stats.bytes_attempted, 6u);
  EXPECT_GT(stats.closure_stacks, 0u);
}

TEST(GrammarMatcher, DeepNestingSurvives) {
  GrammarMatcher m(JsonPda());
  std::string deep(200, '[');
  ASSERT_TRUE(m.AcceptString(deep));
  EXPECT_FALSE(m.CanTerminate());
  std::string close(200, ']');
  ASSERT_TRUE(m.AcceptString(close));
  EXPECT_TRUE(m.CanTerminate());
}

TEST(GrammarMatcher, SharedPoolScratchMatchesChainCopyScratch) {
  // The two scratch-seeding modes — chain copy into a private pool (legacy)
  // and direct sharing of the runtime pool (hot path) — must accept exactly
  // the same continuations.
  auto pda = JsonPda();
  GrammarMatcher runtime(pda);
  ASSERT_TRUE(runtime.AcceptString("{\"key\":\"va"));
  std::int32_t stack_id = runtime.CurrentStacks()[0];
  GrammarMatcher copied(pda, runtime.Pool(), stack_id);
  GrammarMatcher shared(pda, runtime.PoolShared(), stack_id);
  for (const char* probe : {"lue\"}", "\",\"k2\":1}", "\"]", "x\"}"}) {
    EXPECT_EQ(copied.CanAcceptString(probe), shared.CanAcceptString(probe)) << probe;
  }
  EXPECT_EQ(copied.CanTerminate(), shared.CanTerminate());
}

TEST(GrammarMatcher, ReseedRestartsFromExistingStack) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("{\"a\":[1,"));
  std::int32_t mid_stack = m.CurrentStacks()[0];
  ASSERT_TRUE(m.AcceptString("2]"));
  // Reseed back to the remembered mid-list stack: "2]}" must be acceptable
  // again, exactly as it was from that state the first time.
  m.Reseed(mid_stack);
  EXPECT_EQ(m.NumConsumedBytes(), 0);
  EXPECT_TRUE(m.AcceptString("2]}"));
  EXPECT_TRUE(m.CanTerminate());
}

TEST(GrammarMatcher, ResetToStartEqualsFreshMatcher) {
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("[[1,2],{\"k\":3}"));
  m.ResetToStart();
  EXPECT_EQ(m.NumConsumedBytes(), 0);
  GrammarMatcher fresh(JsonPda());
  EXPECT_EQ(m.CurrentStacks().size(), fresh.CurrentStacks().size());
  EXPECT_EQ(m.ClosedStacks().size(), fresh.ClosedStacks().size());
  EXPECT_EQ(m.CanTerminate(), fresh.CanTerminate());
  ASSERT_TRUE(m.AcceptString("{\"x\":[]}"));
  EXPECT_TRUE(m.CanTerminate());
}

TEST(GrammarMatcher, SnapshotRecyclingPreservesRollbackSemantics) {
  // Hammer the AcceptByte -> RollbackToDepth cycle that the recycled-snapshot
  // pool serves; state must stay exactly reproducible.
  GrammarMatcher m(JsonPda());
  ASSERT_TRUE(m.AcceptString("{\"k\":"));
  std::int32_t base = m.NumConsumedBytes();
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(m.AcceptString("123"));
    m.RollbackToDepth(base);
    ASSERT_EQ(m.NumConsumedBytes(), base);
  }
  ASSERT_TRUE(m.AcceptString("42}"));
  EXPECT_TRUE(m.CanTerminate());
}

TEST(GrammarMatcher, CacheSimulationTracksEscapes) {
  // From inside the string rule, a token crossing the closing quote escapes.
  auto pda = JsonPda();
  // Find a node inside the `string` rule: feed '"' from a fresh matcher and
  // grab the top node.
  GrammarMatcher probe(pda);
  ASSERT_TRUE(probe.AcceptString("\"a"));
  std::int32_t node = probe.Pool().TopNode(probe.CurrentStacks()[0]);

  GrammarMatcher sim = GrammarMatcher::ForCacheSimulation(pda, node);
  ASSERT_TRUE(sim.AcceptString("b\""));  // close the string...
  EXPECT_FALSE(sim.AcceptByte(':'));     // ':' needs the parent rule
  bool escaped = false;
  for (std::int32_t d = 0; d <= sim.NumConsumedBytes(); ++d) {
    escaped = escaped || sim.EscapedAtDepth(d);
  }
  EXPECT_TRUE(escaped);
}

}  // namespace
}  // namespace xgr::matcher
