// Tests for the baseline engines: schema→regex conversion, and the central
// cross-engine property — on regex-expressible tasks all engines must
// produce identical masks and accept decisions; on CFG tasks the PDA engines
// must agree with XGrammar.
#include <gtest/gtest.h>

#include "baselines/char_trie_enforcer.h"
#include "baselines/factory.h"
#include "baselines/lexer_parser.h"
#include "baselines/pda_baseline.h"
#include "baselines/regex_fsm.h"
#include "baselines/schema_to_regex.h"
#include "baselines/xgrammar_decoder.h"
#include "datasets/workloads.h"
#include "fsa/dfa.h"
#include "grammar/grammar.h"
#include "regex/regex.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"

namespace xgr::baselines {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2500, 13}));
  return info;
}

// --- schema_to_regex -----------------------------------------------------------

TEST(SchemaToRegex, ScalarSchemas) {
  EXPECT_TRUE(regex::CompileRegexToDfa(
                  JsonSchemaToRegex(*json::Parse(R"({"type":"integer"})").value))
                  .Accepts("-42"));
  EXPECT_TRUE(regex::CompileRegexToDfa(
                  JsonSchemaToRegex(*json::Parse(R"({"type":"boolean"})").value))
                  .Accepts("false"));
}

class SchemaRegexDatasetTest : public ::testing::TestWithParam<int> {};

TEST_P(SchemaRegexDatasetTest, RegexAcceptsCanonicalAnswers) {
  auto tasks =
      datasets::GenerateSchemaTasks(1, static_cast<std::uint64_t>(GetParam()) + 300);
  std::string pattern = JsonSchemaToRegex(tasks[0].schema);
  fsa::Dfa dfa = regex::CompileRegexToDfa(pattern);
  std::string answer = tasks[0].canonical_answer.Dump();
  EXPECT_TRUE(dfa.Accepts(answer)) << answer << "\n" << pattern;
  EXPECT_FALSE(dfa.Accepts(answer + "}"));
  EXPECT_FALSE(dfa.Accepts(answer.substr(0, answer.size() - 1)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaRegexDatasetTest, ::testing::Range(0, 12));

TEST(SchemaToRegex, RecursionRejected) {
  const char* recursive = R"({
    "$defs":{"n":{"type":"object","properties":{"x":{"$ref":"#/$defs/n"}},
                   "additionalProperties":false}},
    "$ref":"#/$defs/n"})";
  EXPECT_THROW(JsonSchemaToRegex(*json::Parse(recursive).value), CheckError);
}

TEST(SchemaToRegex, EscapesMetacharacters) {
  EXPECT_EQ(EscapeRegexLiteral("a.b*c"), "a\\.b\\*c");
  EXPECT_EQ(EscapeRegexLiteral("{\"k\":[1]}"), "\\{\"k\":\\[1\\]\\}");
}

// --- Cross-engine mask agreement ----------------------------------------------

// Drives all decoders along `text` (greedy tokens) asserting identical masks.
void ExpectMaskAgreement(
    std::vector<std::shared_ptr<ConstrainedDecoder>> decoders,
    const std::string& text) {
  auto info = TestTokenizer();
  tokenizer::TokenTrie trie(*info);
  DynamicBitset reference(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  auto tokens = tokenizer::GreedyTokenize(trie, text);
  for (std::size_t step = 0; step < tokens.size(); ++step) {
    decoders[0]->FillNextTokenBitmask(&reference);
    for (std::size_t e = 1; e < decoders.size(); ++e) {
      decoders[e]->FillNextTokenBitmask(&mask);
      ASSERT_TRUE(mask == reference)
          << "engine " << decoders[e]->Name() << " diverges at step " << step
          << " (prefix '" << text.substr(0, 32) << "...')";
    }
    for (auto& decoder : decoders) {
      ASSERT_TRUE(decoder->AcceptToken(tokens[step])) << decoder->Name();
    }
  }
  for (auto& decoder : decoders) {
    EXPECT_TRUE(decoder->CanTerminate()) << decoder->Name();
  }
}

class SchemaEngineAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SchemaEngineAgreementTest, AllFiveEnginesAgree) {
  auto info = TestTokenizer();
  auto tasks =
      datasets::GenerateSchemaTasks(1, static_cast<std::uint64_t>(GetParam()) + 800);
  std::vector<std::shared_ptr<ConstrainedDecoder>> decoders;
  for (EngineKind kind :
       {EngineKind::kXGrammar, EngineKind::kOutlines, EngineKind::kLlamaCpp,
        EngineKind::kLmFormatEnforcer, EngineKind::kOutlinesCfg}) {
    DecoderFactory factory(kind, info);
    factory.PrepareSchema(tasks[0].schema);
    decoders.push_back(factory.NewDecoder());
  }
  ExpectMaskAgreement(std::move(decoders), tasks[0].canonical_answer.Dump());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaEngineAgreementTest, ::testing::Range(0, 6));

class CfgEngineAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CfgEngineAgreementTest, PdaEnginesAgreeOnJson) {
  auto info = TestTokenizer();
  auto docs =
      datasets::GenerateJsonDocuments(1, static_cast<std::uint64_t>(GetParam()) + 900);
  std::vector<std::shared_ptr<ConstrainedDecoder>> decoders;
  for (EngineKind kind :
       {EngineKind::kXGrammar, EngineKind::kLlamaCpp, EngineKind::kOutlinesCfg}) {
    DecoderFactory factory(kind, info);
    factory.PrepareGrammar(grammar::BuiltinJsonGrammar());
    decoders.push_back(factory.NewDecoder());
  }
  ExpectMaskAgreement(std::move(decoders), docs[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgEngineAgreementTest, ::testing::Range(0, 6));

// --- Individual engine behaviours ------------------------------------------------

TEST(Factory, RegexEnginesRejectCfg) {
  auto info = TestTokenizer();
  DecoderFactory outlines(EngineKind::kOutlines, info);
  EXPECT_THROW(outlines.PrepareGrammar(grammar::BuiltinJsonGrammar()), CheckError);
  DecoderFactory lmfe(EngineKind::kLmFormatEnforcer, info);
  EXPECT_THROW(lmfe.PrepareGrammar(grammar::BuiltinJsonGrammar()), CheckError);
}

TEST(Factory, NewDecoderRequiresPreparation) {
  DecoderFactory factory(EngineKind::kXGrammar, TestTokenizer());
  EXPECT_THROW(factory.NewDecoder(), CheckError);
}

TEST(RegexFsm, SharedIndexAcrossDecoders) {
  auto info = TestTokenizer();
  auto index = std::make_shared<RegexTokenIndex>(R"([a-z]+(,[a-z]+)*)", info);
  RegexFsmDecoder a(index);
  RegexFsmDecoder b(index);
  DynamicBitset mask_a(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset mask_b(static_cast<std::size_t>(info->VocabSize()));
  a.FillNextTokenBitmask(&mask_a);
  b.FillNextTokenBitmask(&mask_b);
  EXPECT_TRUE(mask_a == mask_b);
  std::int32_t indexed_before = index->NumIndexedStates();
  // Advancing one decoder must not corrupt the other.
  tokenizer::TokenTrie trie(*info);
  auto ids = tokenizer::GreedyTokenize(trie, "abc");
  ASSERT_TRUE(a.AcceptToken(ids[0]));
  b.FillNextTokenBitmask(&mask_b);
  EXPECT_TRUE(mask_b == mask_a);
  EXPECT_GE(index->NumIndexedStates(), indexed_before);
}

TEST(RegexFsm, JumpForwardFollowsForcedBytes) {
  auto info = TestTokenizer();
  RegexFsmDecoder decoder(R"(BEGIN-[0-9]-END)", info);
  EXPECT_EQ(decoder.FindJumpForwardString(), "BEGIN-");
}

TEST(XGrammarDecoder, RollbackTokensRestoresState) {
  auto info = TestTokenizer();
  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareGrammar(grammar::BuiltinJsonGrammar());
  auto decoder = factory.NewDecoder();
  tokenizer::TokenTrie trie(*info);
  auto ids = tokenizer::GreedyTokenize(trie, "[1,2]");
  DynamicBitset before(static_cast<std::size_t>(info->VocabSize()));
  ASSERT_TRUE(decoder->AcceptToken(ids[0]));
  decoder->FillNextTokenBitmask(&before);
  for (std::size_t i = 1; i < ids.size(); ++i) ASSERT_TRUE(decoder->AcceptToken(ids[i]));
  ASSERT_TRUE(decoder->RollbackTokens(static_cast<std::int32_t>(ids.size() - 1)));
  DynamicBitset after(static_cast<std::size_t>(info->VocabSize()));
  decoder->FillNextTokenBitmask(&after);
  EXPECT_TRUE(after == before);
}

TEST(Decoders, IllegalTokenRejectedWithoutStateChange) {
  auto info = TestTokenizer();
  tokenizer::TokenTrie trie(*info);
  auto open = tokenizer::GreedyTokenize(trie, "{")[0];
  auto close_bracket = tokenizer::GreedyTokenize(trie, ")")[0];
  for (EngineKind kind : {EngineKind::kXGrammar, EngineKind::kLlamaCpp,
                          EngineKind::kOutlinesCfg}) {
    DecoderFactory factory(kind, info);
    factory.PrepareGrammar(grammar::BuiltinJsonGrammar());
    auto decoder = factory.NewDecoder();
    ASSERT_TRUE(decoder->AcceptToken(open)) << decoder->Name();
    EXPECT_FALSE(decoder->AcceptToken(close_bracket)) << decoder->Name();
    // Still usable afterwards.
    auto brace = tokenizer::GreedyTokenize(trie, "}")[0];
    EXPECT_TRUE(decoder->AcceptToken(brace)) << decoder->Name();
    EXPECT_TRUE(decoder->CanTerminate()) << decoder->Name();
  }
}

TEST(Decoders, EosAcceptedOnlyAtTermination) {
  auto info = TestTokenizer();
  DecoderFactory factory(EngineKind::kXGrammar, info);
  factory.PrepareGrammar(grammar::BuiltinJsonGrammar());
  auto decoder = factory.NewDecoder();
  tokenizer::TokenTrie trie(*info);
  EXPECT_FALSE(decoder->AcceptToken(info->EosId()));  // empty: not terminal
  for (std::int32_t id : tokenizer::GreedyTokenize(trie, "true")) {
    ASSERT_TRUE(decoder->AcceptToken(id));
  }
  EXPECT_TRUE(decoder->AcceptToken(info->EosId()));
}

TEST(Decoders, ResetRestartsGeneration) {
  auto info = TestTokenizer();
  tokenizer::TokenTrie trie(*info);
  for (EngineKind kind : {EngineKind::kXGrammar, EngineKind::kLlamaCpp}) {
    DecoderFactory factory(kind, info);
    factory.PrepareGrammar(grammar::BuiltinJsonGrammar());
    auto decoder = factory.NewDecoder();
    for (std::int32_t id : tokenizer::GreedyTokenize(trie, "[1]")) {
      ASSERT_TRUE(decoder->AcceptToken(id));
    }
    decoder->Reset();
    EXPECT_FALSE(decoder->CanTerminate());
    for (std::int32_t id : tokenizer::GreedyTokenize(trie, "{}")) {
      EXPECT_TRUE(decoder->AcceptToken(id)) << decoder->Name();
    }
    EXPECT_TRUE(decoder->CanTerminate());
  }
}

}  // namespace
}  // namespace xgr::baselines
