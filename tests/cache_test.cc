// Tests for the adaptive token mask cache: token classification, adaptive
// storage selection, Algorithm-1 merging, and the central equivalence
// property — masks from the cache must equal brute-force PDA masks at every
// generation state.
#include <gtest/gtest.h>

#include <map>

#include "cache/mask_generator.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "matcher/grammar_matcher.h"
#include "tokenizer/synthetic_vocab.h"
#include "support/rng.h"
#include "tokenizer/token_trie.h"

namespace xgr::cache {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer(std::int32_t size = 3000,
                                                              std::uint64_t seed = 17) {
  static std::map<std::pair<std::int32_t, std::uint64_t>,
                  std::shared_ptr<const tokenizer::TokenizerInfo>>
      cache;
  auto key = std::make_pair(size, seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_shared<tokenizer::TokenizerInfo>(
                                tokenizer::BuildSyntheticVocab({size, seed})))
             .first;
  }
  return it->second;
}

// The central invariant: for every prefix of `document`, the cached mask must
// equal the brute-force mask.
void ExpectMaskEquivalenceAlong(const grammar::Grammar& g,
                                const std::string& document,
                                std::int32_t vocab_size, std::uint64_t vocab_seed,
                                const pda::CompileOptions& options = {}) {
  auto pda = pda::CompiledGrammar::Compile(g, options);
  auto info = TestTokenizer(vocab_size, vocab_seed);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  MaskGenerator generator(cache);
  matcher::GrammarMatcher m(pda);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset brute(static_cast<std::size_t>(info->VocabSize()));
  for (std::size_t i = 0;; ++i) {
    generator.FillNextTokenBitmask(&m, &mask);
    FillBitmaskBruteForce(&m, *info, &brute);
    ASSERT_TRUE(mask == brute)
        << "prefix '" << document.substr(0, i) << "' cached=" << mask.Count()
        << " brute=" << brute.Count();
    if (i >= document.size()) break;
    ASSERT_TRUE(m.AcceptByte(static_cast<std::uint8_t>(document[i])));
  }
}

class JsonMaskEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(JsonMaskEquivalenceTest, CachedMaskEqualsBruteForce) {
  auto docs =
      datasets::GenerateJsonDocuments(1, static_cast<std::uint64_t>(GetParam()) + 40);
  ExpectMaskEquivalenceAlong(grammar::BuiltinJsonGrammar(), docs[0], 3000, 17);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonMaskEquivalenceTest, ::testing::Range(0, 8));

TEST(MaskEquivalence, XmlGrammar) {
  auto docs = datasets::GenerateXmlDocuments(1, 9, 2);
  ExpectMaskEquivalenceAlong(grammar::BuiltinXmlGrammar(), docs[0], 3000, 17);
}

TEST(MaskEquivalence, PythonDsl) {
  auto programs = datasets::GeneratePythonPrograms(1, 3, 3);
  ExpectMaskEquivalenceAlong(grammar::BuiltinPythonDslGrammar(), programs[0], 2000, 17);
}

TEST(MaskEquivalence, SchemaGrammar) {
  auto tasks = datasets::GenerateSchemaTasks(1, 55);
  grammar::Grammar g = grammar::JsonSchemaToGrammar(tasks[0].schema);
  ExpectMaskEquivalenceAlong(g, tasks[0].canonical_answer.Dump(), 3000, 17);
}

TEST(MaskEquivalence, HoldsWithoutOptimizations) {
  auto docs = datasets::GenerateJsonDocuments(1, 77);
  ExpectMaskEquivalenceAlong(grammar::BuiltinJsonGrammar(), docs[0], 2000, 23,
                             pda::CompileOptions::AllDisabled());
}

TEST(MaskEquivalence, HoldsWithDifferentVocabSeeds) {
  auto docs = datasets::GenerateJsonDocuments(1, 78);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ExpectMaskEquivalenceAlong(grammar::BuiltinJsonGrammar(), docs[0], 1500, seed);
  }
}

// --- Classification ---------------------------------------------------------------

TEST(Classification, BuilderAgreesWithReferenceClassifier) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(1200, 31);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  Rng rng(5);
  for (int trial = 0; trial < 400; ++trial) {
    auto node = static_cast<std::int32_t>(rng.NextBounded(pda->NumNodes()));
    auto token = static_cast<std::int32_t>(rng.NextBounded(info->VocabSize()));
    if (info->IsSpecial(token)) continue;
    TokenClass expected = ClassifyTokenAtNode(pda, node, info->TokenBytes(token));
    const NodeMaskEntry& entry = cache->Entry(node);
    bool in_ctx = std::find(entry.context_dependent.begin(),
                            entry.context_dependent.end(),
                            token) != entry.context_dependent.end();
    bool in_stored = std::binary_search(entry.stored.begin(), entry.stored.end(), token);
    TokenClass actual;
    if (in_ctx) {
      actual = TokenClass::kContextDependent;
    } else {
      switch (entry.kind) {
        case StorageKind::kAcceptHeavy:
          actual = in_stored ? TokenClass::kRejected : TokenClass::kAccepted;
          break;
        case StorageKind::kRejectHeavy:
          actual = in_stored ? TokenClass::kAccepted : TokenClass::kRejected;
          break;
        case StorageKind::kBitset:
          actual = entry.accepted_bits.Test(static_cast<std::size_t>(token))
                       ? TokenClass::kAccepted
                       : TokenClass::kRejected;
          break;
      }
    }
    EXPECT_EQ(static_cast<int>(actual), static_cast<int>(expected))
        << "node=" << node << " token='" << info->TokenBytes(token) << "'";
  }
}

TEST(Classification, InStringNodeShapes) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());

  // Inside a *value* string: plain words stay local (accepted); crossing the
  // closing quote into "," or "}" may be legal in some parents (ctx-dep);
  // crossing into ":" or letters can never be legal after a value (rejected
  // by context expansion: ':' only follows keys).
  matcher::GrammarMatcher value_probe(pda);
  ASSERT_TRUE(value_probe.AcceptString("{\"key\":\"a"));
  std::int32_t value_node = value_probe.Pool().TopNode(value_probe.CurrentStacks()[0]);
  EXPECT_EQ(static_cast<int>(ClassifyTokenAtNode(pda, value_node, "hello")),
            static_cast<int>(TokenClass::kAccepted));
  EXPECT_EQ(static_cast<int>(ClassifyTokenAtNode(pda, value_node, "\",")),
            static_cast<int>(TokenClass::kContextDependent));
  EXPECT_EQ(static_cast<int>(ClassifyTokenAtNode(pda, value_node, "\"}")),
            static_cast<int>(TokenClass::kContextDependent));
  EXPECT_EQ(static_cast<int>(ClassifyTokenAtNode(pda, value_node, "\"zz")),
            static_cast<int>(TokenClass::kRejected));
  EXPECT_EQ(static_cast<int>(ClassifyTokenAtNode(pda, value_node, "\":")),
            static_cast<int>(TokenClass::kRejected));
}

TEST(Classification, ContextExpansionOnlyRemovesCtxDependents) {
  grammar::Grammar g = grammar::BuiltinJsonGrammar();
  pda::CompileOptions with = {};
  pda::CompileOptions without = {};
  without.context_expansion = false;
  auto pda_with = pda::CompiledGrammar::Compile(g, with);
  auto pda_without = pda::CompiledGrammar::Compile(g, without);
  auto info = TestTokenizer(1500, 3);
  auto cache_with = AdaptiveTokenMaskCache::Build(pda_with, info);
  auto cache_without = AdaptiveTokenMaskCache::Build(pda_without, info);
  // Same automaton => same accepted counts; expansion can only convert
  // context-dependent tokens into rejected ones.
  EXPECT_EQ(cache_with->Stats().ci_accepted, cache_without->Stats().ci_accepted);
  EXPECT_LE(cache_with->Stats().context_dependent,
            cache_without->Stats().context_dependent);
  EXPECT_GE(cache_with->Stats().ci_rejected, cache_without->Stats().ci_rejected);
}

// --- Adaptive storage ---------------------------------------------------------------

TEST(AdaptiveStorage, PicksCheapestFormat) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(3000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  std::size_t vocab_bytes = static_cast<std::size_t>(info->VocabSize()) / 8;
  for (std::int32_t n = 0; n < pda->NumNodes(); ++n) {
    const NodeMaskEntry& e = cache->Entry(n);
    std::size_t chosen = e.MemoryBytes();
    // The chosen format must not exceed the bitset strawman + ctx list + ctx
    // sub-trie (the trie is carried by every format, so it does not affect
    // the choice but does count toward the entry's footprint).
    EXPECT_LE(chosen, vocab_bytes + e.context_dependent.size() * 4 +
                          e.ctx_trie.MemoryBytes() + 8)
        << n;
  }
  // The cache overall must be far below the all-bitset layout.
  EXPECT_LT(cache->Stats().memory_bytes, cache->Stats().full_bitset_bytes);
}

TEST(AdaptiveStorage, ForcedBitsetMode) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(1200, 31);
  AdaptiveCacheOptions options;
  options.adaptive_storage = false;
  auto cache = AdaptiveTokenMaskCache::Build(pda, info, options);
  for (std::int32_t n = 0; n < pda->NumNodes(); ++n) {
    EXPECT_EQ(static_cast<int>(cache->Entry(n).kind),
              static_cast<int>(StorageKind::kBitset));
  }
}

TEST(AdaptiveStorage, InStringNodeIsAcceptHeavy) {
  // At small vocabularies the per-node bitset is so cheap that it can win
  // even for wildcard nodes; the accept-heavy format takes over once the
  // vocabulary grows (the paper's regime: 128k).
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(16000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  matcher::GrammarMatcher probe(pda);
  ASSERT_TRUE(probe.AcceptString("{\"key\":\"a"));
  std::int32_t node = probe.Pool().TopNode(probe.CurrentStacks()[0]);
  EXPECT_EQ(static_cast<int>(cache->Entry(node).kind),
            static_cast<int>(StorageKind::kAcceptHeavy));
}

TEST(AdaptiveStorage, StructuralNodeIsRejectHeavy) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(3000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  matcher::GrammarMatcher probe(pda);
  ASSERT_TRUE(probe.AcceptString("{"));  // next must be ws/"/}: reject-heavy
  std::int32_t node = probe.Pool().TopNode(probe.CurrentStacks()[0]);
  EXPECT_EQ(static_cast<int>(cache->Entry(node).kind),
            static_cast<int>(StorageKind::kRejectHeavy));
}

TEST(AdaptiveStorage, CtxDependentListIsLexicographicallySorted) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(3000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  for (std::int32_t n = 0; n < pda->NumNodes(); ++n) {
    const auto& ctx = cache->Entry(n).context_dependent;
    for (std::size_t i = 1; i < ctx.size(); ++i) {
      EXPECT_LE(info->TokenBytes(ctx[i - 1]), info->TokenBytes(ctx[i]));
    }
  }
}

// --- Multi-stack merge (Algorithm 1) ------------------------------------------------

TEST(MaskMerge, AmbiguousGrammarUsesMultipleStacks) {
  // Deliberately ambiguous: both alternatives share the prefix "aa", so two
  // parallel stacks survive after "aa" and the masks must merge.
  grammar::Grammar g = grammar::ParseEbnfOrThrow(R"(
    root ::= item*
    item ::= "aa" "x" | "a" "a" "y"
  )");
  auto pda = pda::CompiledGrammar::Compile(g, pda::CompileOptions::AllDisabled());
  auto info = TestTokenizer(1200, 31);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  MaskGenerator generator(cache);
  matcher::GrammarMatcher m(pda);
  ASSERT_TRUE(m.AcceptString("aa"));
  EXPECT_GE(m.ClosedStacks().size(), 2u);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  generator.FillNextTokenBitmask(&m, &mask);
  DynamicBitset brute(static_cast<std::size_t>(info->VocabSize()));
  FillBitmaskBruteForce(&m, *info, &brute);
  EXPECT_TRUE(mask == brute);
  EXPECT_GT(generator.Stats().merges, 0);
}

// --- EOS handling --------------------------------------------------------------------

TEST(MaskGeneration, EosOnlyWhenTerminable) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(1200, 31);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  MaskGenerator generator(cache);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  matcher::GrammarMatcher m(pda);
  ASSERT_TRUE(m.AcceptString("[1"));
  generator.FillNextTokenBitmask(&m, &mask);
  EXPECT_FALSE(mask.Test(static_cast<std::size_t>(info->EosId())));
  ASSERT_TRUE(m.AcceptString("]"));
  generator.FillNextTokenBitmask(&m, &mask);
  EXPECT_TRUE(mask.Test(static_cast<std::size_t>(info->EosId())));
  // Special non-EOS tokens are never allowed.
  EXPECT_FALSE(mask.Test(static_cast<std::size_t>(info->Vocab().bos_id)));
}

TEST(CacheStats, InternalConsistency) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(1500, 3);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  const CacheBuildStats& s = cache->Stats();
  EXPECT_EQ(s.nodes, pda->NumNodes());
  EXPECT_EQ(s.tokens_classified,
            static_cast<std::int64_t>(pda->NumNodes()) *
                static_cast<std::int64_t>(info->SortedTokenIds().size()));
  EXPECT_EQ(s.ci_accepted + s.ci_rejected + s.context_dependent, s.tokens_classified);
  EXPECT_LE(s.bytes_checked, s.bytes_total);
  std::size_t total_memory = 0;
  for (std::int32_t n = 0; n < pda->NumNodes(); ++n) {
    total_memory += cache->Entry(n).MemoryBytes();
  }
  EXPECT_EQ(s.memory_bytes, total_memory);
  EXPECT_EQ(s.storage_kind_counts[0] + s.storage_kind_counts[1] +
                s.storage_kind_counts[2],
            s.nodes);
}

TEST(CacheBuild, SingleThreadMatchesParallel) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(1200, 31);
  AdaptiveCacheOptions serial;
  serial.num_threads = 1;
  AdaptiveCacheOptions parallel;
  parallel.num_threads = 4;
  auto a = AdaptiveTokenMaskCache::Build(pda, info, serial);
  auto b = AdaptiveTokenMaskCache::Build(pda, info, parallel);
  for (std::int32_t n = 0; n < pda->NumNodes(); ++n) {
    EXPECT_EQ(a->Entry(n).stored, b->Entry(n).stored) << n;
    EXPECT_EQ(a->Entry(n).context_dependent, b->Entry(n).context_dependent) << n;
    EXPECT_EQ(static_cast<int>(a->Entry(n).kind), static_cast<int>(b->Entry(n).kind));
  }
}

}  // namespace
}  // namespace xgr::cache
