// Cross-feature integration scenarios: the new subsystems composed the way a
// downstream serving integration would use them — compiler cache feeding
// continuous batching, structural tags surviving serialization, forks of
// deserialized engines, and cross-grammar rule import.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "cache/grammar_compiler.h"
#include "engine/serving_engine.h"
#include "grammar/earley.h"
#include "grammar/grammar.h"
#include "grammar/regex_to_grammar.h"
#include "grammar/structural_tag.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "serialize/serialize.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2500, 19}));
  return info;
}

// --- ImportRules (the substrate under structural tags) -------------------------

TEST(ImportRules, ImportedGrammarKeepsItsLanguage) {
  grammar::Grammar host;
  grammar::RuleId imported =
      grammar::ImportRules(&host, grammar::BuiltinJsonGrammar(), "json_");
  // Host grammar: a log line "LEVEL <json>".
  grammar::ExprId body = host.AddSequence(
      {host.AddChoice({host.AddByteString("INFO "), host.AddByteString("ERROR ")}),
       host.AddRuleRef(imported)});
  host.SetRootRule(host.AddRule("root", body));
  host.Validate();

  auto pda = pda::CompiledGrammar::Compile(host);
  matcher::GrammarMatcher m(pda);
  EXPECT_TRUE(m.AcceptString("ERROR {\"code\":500}") && m.CanTerminate());
  m.RollbackToDepth(0);
  EXPECT_TRUE(m.AcceptString("INFO [1,2,3]") && m.CanTerminate());
  m.RollbackToDepth(0);
  EXPECT_FALSE(m.AcceptString("WARN {}"));
}

TEST(ImportRules, TwoImportsCoexistUnderDistinctPrefixes) {
  grammar::Grammar host;
  grammar::RuleId number =
      grammar::ImportRules(&host, grammar::RegexToGrammar("-?[0-9]+"), "num_");
  grammar::RuleId word =
      grammar::ImportRules(&host, grammar::RegexToGrammar("[a-z]+"), "word_");
  grammar::ExprId body = host.AddSequence({host.AddRuleRef(word),
                                           host.AddByteString("="),
                                           host.AddRuleRef(number)});
  host.SetRootRule(host.AddRule("root", body));
  auto pda = pda::CompiledGrammar::Compile(host);
  matcher::GrammarMatcher m(pda);
  EXPECT_TRUE(m.AcceptString("answer=-42") && m.CanTerminate());
}

TEST(ImportRules, NameCollisionThrows) {
  grammar::Grammar host;
  grammar::ImportRules(&host, grammar::RegexToGrammar("a"), "p_");
  EXPECT_THROW(grammar::ImportRules(&host, grammar::RegexToGrammar("b"), "p_"),
               CheckError);
}

// --- Compiler cache + continuous batching ---------------------------------------

TEST(Scenario, CompilerCacheFeedsContinuousBatching) {
  auto info = TestTokenizer();
  cache::GrammarCompiler compiler(info);
  engine::MockLlm llm(info, {.derail_probability = 0.0, .seed = 9});

  // Three requests against two distinct schemas: the compiler compiles twice
  // and serves the third request from cache.
  const char* schema_a = R"({"type":"object","properties":{"a":{"type":"integer"}},
                             "required":["a"],"additionalProperties":false})";
  const char* schema_b = R"({"type":"array","items":{"type":"integer"}})";
  std::vector<engine::ContinuousRequest> stream;
  const char* targets[] = {R"({"a":1})", "[1,2]", R"({"a":2})"};
  const char* schemas[] = {schema_a, schema_b, schema_a};
  for (int i = 0; i < 3; ++i) {
    engine::ContinuousRequest r;
    r.request.decoder = std::make_shared<baselines::XGrammarDecoder>(
        compiler.CompileJsonSchema(schemas[i]));
    r.request.target_text = targets[i];
    r.request.seed = static_cast<std::uint64_t>(i) + 1;
    r.arrival_step = i;
    stream.push_back(std::move(r));
  }
  EXPECT_EQ(compiler.Stats().misses, 2);
  EXPECT_EQ(compiler.Stats().hits, 1);

  engine::EngineOptions options;
  options.time_scale = 0.0;
  options.max_new_tokens = 64;
  engine::ServingEngine engine(options, llm);
  auto result = engine.RunContinuous(stream, 2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(result.requests[static_cast<std::size_t>(i)].result.output_text,
              targets[i]);
  }
}

// --- Structural tags through serialization ---------------------------------------

TEST(Scenario, StructuralTagGrammarSurvivesSerializationWithMasks) {
  auto info = TestTokenizer();
  grammar::Grammar tag_grammar = grammar::BuildStructuralTagGrammar(
      {{"<function=f>",
        R"({"type":"object","properties":{"q":{"type":"string"}},
            "required":["q"],"additionalProperties":false})",
        "</function>"}},
      {"<function="});
  auto pda = pda::CompiledGrammar::Compile(tag_grammar);
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);

  std::string blob = serialize::SerializeEngineArtifact(*cache);
  auto loaded = serialize::DeserializeEngineArtifact(blob, info);

  const std::string transcript =
      "ok <function=f>" R"({"q":"weather"})" "</function> done";
  baselines::XGrammarDecoder a(cache);
  baselines::XGrammarDecoder b(loaded);
  for (char c : transcript) {
    DynamicBitset mask_a(static_cast<std::size_t>(info->VocabSize()));
    DynamicBitset mask_b(static_cast<std::size_t>(info->VocabSize()));
    a.FillNextTokenBitmask(&mask_a);
    b.FillNextTokenBitmask(&mask_b);
    ASSERT_TRUE(mask_a == mask_b);
    ASSERT_TRUE(a.Matcher().AcceptByte(static_cast<std::uint8_t>(c)));
    ASSERT_TRUE(b.Matcher().AcceptByte(static_cast<std::uint8_t>(c)));
  }
  EXPECT_TRUE(a.CanTerminate());
  EXPECT_TRUE(b.CanTerminate());
}

TEST(Scenario, ForkOfDeserializedEngineBranches) {
  auto info = TestTokenizer();
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  auto loaded = serialize::DeserializeEngineArtifact(
      serialize::SerializeEngineArtifact(*cache), info);

  baselines::XGrammarDecoder trunk(loaded);
  ASSERT_TRUE(trunk.Matcher().AcceptString("[1,"));
  auto fork = trunk.Fork();
  EXPECT_TRUE(fork->Matcher().AcceptString("2]"));
  EXPECT_TRUE(fork->CanTerminate());
  EXPECT_TRUE(trunk.Matcher().AcceptString("null]"));
  EXPECT_TRUE(trunk.CanTerminate());
}

// --- Earley oracle over the composed grammar sources ------------------------------

TEST(Scenario, EarleyValidatesComposedTagGrammar) {
  grammar::Grammar tag_grammar = grammar::BuildStructuralTagGrammar(
      {{"<d>", "", "</d>"}}, {"<d>"});
  grammar::BnfGrammar bnf = grammar::LowerToBnf(tag_grammar);
  auto pda = pda::CompiledGrammar::Compile(tag_grammar);

  const char* probes[] = {
      "plain text",
      "<d>[1,2]</d>",
      "a <d>{\"k\":null}</d> b",
      "<d>[1,2</d>",       // malformed body
      "a <d> b",           // unterminated tag
      "almost <q> there",  // non-trigger markup
  };
  for (const char* probe : probes) {
    matcher::GrammarMatcher m(pda);
    bool pipeline = m.AcceptString(probe) && m.CanTerminate();
    EXPECT_EQ(grammar::EarleyAccepts(bnf, probe), pipeline) << probe;
  }
}

}  // namespace
}  // namespace xgr
