// The Earley recognizer as an independent oracle: it shares no code with the
// production pipeline (no Thompson construction, no node merging, no
// persistent stacks, no mask cache), so agreement on random grammars and
// random inputs is strong evidence both are right.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "grammar/earley.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/rng.h"

namespace xgr::grammar {
namespace {

bool PipelineAccepts(const Grammar& g, const std::string& input,
                     const pda::CompileOptions& options = {}) {
  auto pda = pda::CompiledGrammar::Compile(g, options);
  matcher::GrammarMatcher m(pda);
  return m.AcceptString(input) && m.CanTerminate();
}

// --- Direct unit tests --------------------------------------------------------

TEST(Earley, RecognizesFixedGrammars) {
  Grammar json = BuiltinJsonGrammar();
  BnfGrammar bnf = LowerToBnf(json);
  EXPECT_TRUE(EarleyAccepts(bnf, R"({"a":[1,2,{"b":null}]})"));
  EXPECT_TRUE(EarleyAccepts(bnf, "[]"));
  EXPECT_FALSE(EarleyAccepts(bnf, "[1,]"));
  EXPECT_FALSE(EarleyAccepts(bnf, "{,}"));
}

TEST(Earley, NullableHeavyGrammar) {
  // S -> A A "a"; A -> eps | "x". Exercises the Aycock-Horspool fix.
  Grammar g = ParseEbnfOrThrow(R"EBNF(
root ::= a a "a"
a ::= "" | "x"
)EBNF");
  BnfGrammar bnf = LowerToBnf(g);
  EXPECT_TRUE(EarleyAccepts(bnf, "a"));
  EXPECT_TRUE(EarleyAccepts(bnf, "xa"));
  EXPECT_TRUE(EarleyAccepts(bnf, "xxa"));
  EXPECT_FALSE(EarleyAccepts(bnf, "xxxa"));
  EXPECT_FALSE(EarleyAccepts(bnf, ""));
}

TEST(Earley, CenterRecursionBeyondRegular) {
  // a^n b^n — the canonical non-regular language.
  Grammar g = ParseEbnfOrThrow("root ::= \"ab\" | \"a\" root \"b\"");
  BnfGrammar bnf = LowerToBnf(g);
  EXPECT_TRUE(EarleyAccepts(bnf, "ab"));
  EXPECT_TRUE(EarleyAccepts(bnf, "aaabbb"));
  EXPECT_FALSE(EarleyAccepts(bnf, "aaabb"));
  EXPECT_FALSE(EarleyAccepts(bnf, "ba"));
}

TEST(Earley, Utf8ClassesMatchByteLevel) {
  Grammar g = ParseEbnfOrThrow("root ::= [α-ω]+");
  BnfGrammar bnf = LowerToBnf(g);
  EXPECT_TRUE(EarleyAccepts(bnf, "αβγ"));
  EXPECT_FALSE(EarleyAccepts(bnf, "abc"));
  EXPECT_FALSE(EarleyAccepts(bnf, "α\xCE"));  // dangling lead byte
}

TEST(Earley, BoundedRepeats) {
  Grammar g = ParseEbnfOrThrow("root ::= \"x\"{2,4}");
  BnfGrammar bnf = LowerToBnf(g);
  EXPECT_FALSE(EarleyAccepts(bnf, "x"));
  EXPECT_TRUE(EarleyAccepts(bnf, "xx"));
  EXPECT_TRUE(EarleyAccepts(bnf, "xxxx"));
  EXPECT_FALSE(EarleyAccepts(bnf, "xxxxx"));
}

// --- Fixed recursive grammars, oracle vs pipeline ------------------------------

class EarleyVsPipelineFixed : public ::testing::TestWithParam<const char*> {};

TEST_P(EarleyVsPipelineFixed, AgreeOnProbes) {
  Grammar g = ParseEbnfOrThrow(GetParam());
  BnfGrammar bnf = LowerToBnf(g);
  Rng rng(2718);
  // Probe strings over the grammars' joint alphabet.
  const char alphabet[] = "ab()[]{}x,";
  for (int iter = 0; iter < 300; ++iter) {
    std::string probe;
    std::size_t len = rng.NextBounded(10);
    for (std::size_t i = 0; i < len; ++i) {
      probe.push_back(alphabet[rng.NextBounded(sizeof(alphabet) - 1)]);
    }
    EXPECT_EQ(EarleyAccepts(bnf, probe), PipelineAccepts(g, probe))
        << "grammar={" << GetParam() << "} probe=" << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grammars, EarleyVsPipelineFixed,
    ::testing::Values(
        "root ::= \"ab\" | \"a\" root \"b\"",             // a^n b^n
        "root ::= \"\" | \"(\" root \")\" root",          // balanced parens
        "root ::= \"x\" | \"[\" (root (\",\" root)*)? \"]\"",  // nested lists
        "root ::= (\"a\" | \"b\")* \"ab\" (\"a\" | \"b\")*",   // ambiguous infix
        "root ::= \"a\"{2,5} \"b\"+ \"x\"?"));             // bounded repeats

// --- Random grammars, oracle vs pipeline ----------------------------------------

// Random acyclic grammar over {a,b,c}: rule i may reference only rules > i,
// so generation terminates; depth and width are bounded. Recursion is
// covered by the fixed grammars above.
Grammar RandomGrammar(Rng* rng) {
  Grammar g;
  const int num_rules = 2 + static_cast<int>(rng->NextBounded(3));
  std::vector<RuleId> rules;
  for (int i = 0; i < num_rules; ++i) {
    rules.push_back(g.DeclareRule("r" + std::to_string(i)));
  }

  // Builds a random expression that may reference rules with index > `from`.
  struct Builder {
    Grammar& g;
    Rng& rng;
    const std::vector<RuleId>& rules;
    ExprId Build(int from, int depth) {  // NOLINT(misc-no-recursion)
      const bool leaf = depth <= 0 || rng.NextBool(0.35);
      if (leaf) {
        switch (rng.NextBounded(3)) {
          case 0: {
            std::string bytes;
            std::size_t len = 1 + rng.NextBounded(3);
            for (std::size_t i = 0; i < len; ++i) {
              bytes.push_back(static_cast<char>('a' + rng.NextBounded(3)));
            }
            return g.AddByteString(std::move(bytes));
          }
          case 1: {
            std::uint32_t lo = 'a' + static_cast<std::uint32_t>(rng.NextBounded(2));
            std::uint32_t hi =
                lo + static_cast<std::uint32_t>(rng.NextBounded('c' - lo + 1));
            return g.AddCharClass({{lo, hi}});
          }
          default:
            if (from + 1 < static_cast<int>(rules.size())) {
              std::size_t pick = static_cast<std::size_t>(from) + 1 +
                                 rng.NextBounded(rules.size() - static_cast<std::size_t>(from) - 1);
              return g.AddRuleRef(rules[pick]);
            }
            return g.AddByteString("c");
        }
      }
      switch (rng.NextBounded(3)) {
        case 0: {
          std::vector<ExprId> children;
          std::size_t n = 2 + rng.NextBounded(2);
          for (std::size_t i = 0; i < n; ++i) children.push_back(Build(from, depth - 1));
          return g.AddSequence(std::move(children));
        }
        case 1: {
          std::vector<ExprId> children;
          std::size_t n = 2 + rng.NextBounded(2);
          for (std::size_t i = 0; i < n; ++i) children.push_back(Build(from, depth - 1));
          return g.AddChoice(std::move(children));
        }
        default: {
          std::int32_t min = static_cast<std::int32_t>(rng.NextBounded(2));
          std::int32_t max = rng.NextBool(0.3)
                                 ? -1
                                 : min + static_cast<std::int32_t>(rng.NextBounded(3));
          return g.AddRepeat(Build(from, depth - 1), min, max);
        }
      }
    }
  };
  Builder builder{g, *rng, rules};
  for (int i = 0; i < num_rules; ++i) {
    g.SetRuleBody(rules[static_cast<std::size_t>(i)], builder.Build(i, 3));
  }
  g.SetRootRule(rules[0]);
  g.Validate();
  return g;
}

// Samples a string from the grammar by random expansion (repeats capped).
void Sample(const Grammar& g, ExprId expr_id, Rng* rng, std::string* out,
            int depth) {  // NOLINT(misc-no-recursion)
  if (depth > 64) return;  // runaway guard; sampled string stays a "maybe"
  const Expr& expr = g.GetExpr(expr_id);
  switch (expr.type) {
    case ExprType::kEmpty:
      return;
    case ExprType::kByteString:
      out->append(expr.bytes);
      return;
    case ExprType::kCharClass: {
      const regex::CodepointRange& range =
          expr.ranges[rng->NextBounded(expr.ranges.size())];
      std::uint32_t cp =
          range.lo + static_cast<std::uint32_t>(
                         rng->NextBounded(static_cast<std::uint64_t>(range.hi) - range.lo + 1));
      AppendUtf8(cp, out);
      return;
    }
    case ExprType::kRuleRef:
      Sample(g, g.GetRule(expr.rule_ref).body, rng, out, depth + 1);
      return;
    case ExprType::kSequence:
      for (ExprId child : expr.children) Sample(g, child, rng, out, depth + 1);
      return;
    case ExprType::kChoice:
      Sample(g, expr.children[rng->NextBounded(expr.children.size())], rng, out,
             depth + 1);
      return;
    case ExprType::kRepeat: {
      std::int32_t cap = expr.max_repeat == -1
                             ? expr.min_repeat + 3
                             : std::min(expr.max_repeat, expr.min_repeat + 3);
      std::int32_t count =
          expr.min_repeat + static_cast<std::int32_t>(rng->NextBounded(
                                static_cast<std::uint64_t>(cap - expr.min_repeat + 1)));
      for (std::int32_t i = 0; i < count; ++i) {
        Sample(g, expr.children[0], rng, out, depth + 1);
      }
      return;
    }
  }
}

class RandomGrammarOracle : public ::testing::TestWithParam<int> {};

TEST_P(RandomGrammarOracle, EarleyAgreesWithPipeline) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 17);
  Grammar g = RandomGrammar(&rng);
  BnfGrammar bnf = LowerToBnf(g);

  int positives = 0;
  for (int iter = 0; iter < 40; ++iter) {
    std::string sample;
    Sample(g, g.GetRule(g.RootRule()).body, &rng, &sample, 0);
    if (sample.size() > 200) continue;

    bool earley = EarleyAccepts(bnf, sample);
    EXPECT_EQ(earley, PipelineAccepts(g, sample))
        << "seed=" << GetParam() << " sampled='" << sample << "'\n"
        << g.ToString();
    EXPECT_EQ(earley,
              PipelineAccepts(g, sample, pda::CompileOptions::AllDisabled()))
        << "(unoptimized pipeline) seed=" << GetParam() << " sampled='"
        << sample << "'";
    positives += earley ? 1 : 0;

    // A mutation, usually negative — both sides must still agree.
    std::string mutated = sample;
    if (!mutated.empty()) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>('a' + rng.NextBounded(4));  // 'd' breaks alphabet
      EXPECT_EQ(EarleyAccepts(bnf, mutated), PipelineAccepts(g, mutated))
          << "seed=" << GetParam() << " mutated='" << mutated << "'";
    }
  }
  // Sampling must exercise the accepting language (repeat caps can push a
  // sample outside the language, but not always).
  EXPECT_GT(positives, 10) << g.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGrammarOracle, ::testing::Range(0, 25));

}  // namespace
}  // namespace xgr::grammar
