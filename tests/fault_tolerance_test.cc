// Tests for the fault-tolerance layer: the deterministic fault-injection
// framework itself (seeded firing, windows, actions), RetryPolicy backoff
// schedules, the GrammarRegistry disk tier under injected transient I/O
// errors / ENOSPC / corruption, CompileService deadlines with cooperative
// mid-build cancellation, the poison-grammar quarantine, overload shedding,
// and destructor/cancel races against in-flight failing builds. Every
// failure path here is driven by seeded fault points and injected clocks —
// no sleep-based races.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/compile_service.h"
#include "runtime/grammar_registry.h"
#include "support/fault_point.h"
#include "support/retry_policy.h"
#include "support/status.h"
#include "support/worker_team.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr::runtime {
namespace {

namespace fs = std::filesystem;
namespace fault = support::fault;

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2000, 23}));
  return info;
}

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / ("xgr_fault_test_" + name)).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

CompileJob EbnfJob(const std::string& text) {
  CompileJob job;
  job.kind = GrammarKind::kEbnf;
  job.source = text;
  return job;
}

// Heavy enough (builtin JSON over the full vocab) to hold a single worker
// busy for many milliseconds while tests shape the queue behind it.
CompileJob BlockerJob() {
  CompileJob job;
  job.kind = GrammarKind::kBuiltinJson;
  return job;
}

// Injectable service clock: a plain function pointer over a global atomic.
std::atomic<std::uint64_t> g_fake_now_ms{0};
std::uint64_t FakeNowMs() { return g_fake_now_ms.load(); }

void NoSleep(double) {}

// --- fault points ------------------------------------------------------------

TEST(FaultPoint, DisarmedHitIsFalseAndUncounted) {
  fault::DisarmAll();
  EXPECT_FALSE(XGR_FAULT_HIT("nobody.armed.this"));
  fault::SiteStats stats = fault::Stats("nobody.armed.this");
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.fires, 0);
}

TEST(FaultPoint, FailActionFiresAndDisarmStops) {
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kFail;
  fault::Arm("test.fail", rule);
  EXPECT_TRUE(XGR_FAULT_HIT("test.fail"));
  EXPECT_TRUE(XGR_FAULT_HIT("test.fail"));
  fault::SiteStats stats = fault::Stats("test.fail");
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.fires, 2);
  fault::Disarm("test.fail");
  EXPECT_FALSE(XGR_FAULT_HIT("test.fail"));
}

TEST(FaultPoint, SkipFirstAndMaxFiresBoundTheWindow) {
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kFail;
  rule.skip_first = 2;
  rule.max_fires = 1;
  fault::ScopedFault armed("test.window", rule);
  EXPECT_FALSE(XGR_FAULT_HIT("test.window"));  // skipped
  EXPECT_FALSE(XGR_FAULT_HIT("test.window"));  // skipped
  EXPECT_TRUE(XGR_FAULT_HIT("test.window"));   // the one fire
  EXPECT_FALSE(XGR_FAULT_HIT("test.window"));  // max_fires exhausted
  fault::SiteStats stats = fault::Stats("test.window");
  EXPECT_EQ(stats.hits, 4);
  EXPECT_EQ(stats.fires, 1);
}

TEST(FaultPoint, ProbabilisticFiringIsAPureFunctionOfTheSeed) {
  constexpr int kHits = 200;
  auto run = [&] {
    fault::FaultRule rule;
    rule.action = fault::FaultAction::kFail;
    rule.probability = 0.3;
    rule.seed = 1234;
    fault::ScopedFault armed("test.coin", rule);
    std::vector<bool> fired;
    for (int i = 0; i < kHits; ++i) fired.push_back(XGR_FAULT_HIT("test.coin"));
    return fired;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);  // re-arming the same seed replays exactly
  int fires = 0;
  for (bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, kHits);  // a coin, not a constant
}

TEST(FaultPoint, ThrowActionCarriesCodeAndTagsTheSite) {
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kThrow;
  rule.code = StatusCode::kCorruptArtifact;
  rule.message = "disk went sideways";
  fault::ScopedFault armed("test.throw", rule);
  try {
    XGR_FAULT_HIT("test.throw");
    FAIL() << "expected the armed site to throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCorruptArtifact);
    EXPECT_NE(std::string(e.what()).find("disk went sideways"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[fault:test.throw]"),
              std::string::npos);
  }
}

TEST(FaultPoint, CallbackActionRunsAndPassesThrough) {
  int calls = 0;
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kCallback;
  rule.callback = [&] { ++calls; };
  fault::ScopedFault armed("test.callback", rule);
  EXPECT_FALSE(XGR_FAULT_HIT("test.callback"));
  EXPECT_EQ(calls, 1);
}

TEST(FaultPoint, ScopedFaultDisarmsOnScopeExit) {
  {
    fault::FaultRule rule;
    rule.action = fault::FaultAction::kFail;
    fault::ScopedFault armed("test.scoped", rule);
    EXPECT_TRUE(XGR_FAULT_HIT("test.scoped"));
  }
  EXPECT_FALSE(XGR_FAULT_HIT("test.scoped"));
}

// --- retry policy ------------------------------------------------------------

TEST(RetryPolicy, FirstTrySuccessNeverSleeps) {
  support::RetryPolicy policy;
  policy.sleep_fn = NoSleep;
  support::RetryStats stats;
  EXPECT_TRUE(support::RetryTransient(policy, [] { return true; }, &stats));
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.slept_ms, 0.0);
}

TEST(RetryPolicy, TransientFailureRetriesWithGrowingJitteredBackoff) {
  support::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter = 0.25;
  policy.sleep_fn = NoSleep;
  int failures_left = 2;
  support::RetryStats stats;
  EXPECT_TRUE(support::RetryTransient(
      policy, [&] { return --failures_left < 0; }, &stats));
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  // Two delays drawn from [1.5, 2.5] and [3, 5] ms respectively.
  EXPECT_GE(stats.slept_ms, 1.5 + 3.0);
  EXPECT_LE(stats.slept_ms, 2.5 + 5.0);

  // Determinism: the same policy (same seed) produces the same schedule.
  failures_left = 2;
  support::RetryStats replay;
  support::RetryTransient(policy, [&] { return --failures_left < 0; }, &replay);
  EXPECT_EQ(replay.slept_ms, stats.slept_ms);
}

TEST(RetryPolicy, ExhaustionReturnsFalseAfterMaxAttempts) {
  support::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep_fn = NoSleep;
  support::RetryStats stats;
  EXPECT_FALSE(support::RetryTransient(policy, [] { return false; }, &stats));
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
}

// --- worker team fault site --------------------------------------------------

TEST(WorkerTeamFault, InjectedShardFailurePropagatesToDispatch) {
  support::WorkerTeam team(2);
  auto noop = +[](void*, std::size_t) {};
  team.Dispatch(noop, nullptr, 4);  // healthy dispatch first
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kThrow;
  rule.code = StatusCode::kInternal;
  rule.message = "shard blew up";
  rule.max_fires = 1;
  fault::ScopedFault armed("worker_team.shard", rule);
  try {
    team.Dispatch(noop, nullptr, 4);
    FAIL() << "expected the injected shard failure to propagate";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInternal);
  }
  // The team survives the failed generation and keeps dispatching.
  fault::DisarmAll();
  team.Dispatch(noop, nullptr, 4);
}

// --- registry disk tier under injection --------------------------------------

// One artifact, built once, shared across the disk-tier tests.
struct DiskFixture {
  std::string key;
  Artifact artifact;
  DiskFixture() {
    CompileService service(TestTokenizer());
    CompileJob job = EbnfJob("root ::= \"disk\" [a-z]+");
    key = CompileJobKey(job);
    artifact = service.Compile(job);
  }
};

GrammarRegistryOptions DiskOptions(const std::string& dir) {
  GrammarRegistryOptions options;
  options.disk_dir = dir;
  options.disk_retry.sleep_fn = NoSleep;
  return options;
}

TEST(RegistryFault, TransientReadErrorIsRetriedAndRecovers) {
  TempDir dir("read_retry");
  DiskFixture fx;
  { GrammarRegistry(TestTokenizer(), DiskOptions(dir.path))
        .Insert(fx.key, fx.artifact); }

  GrammarRegistry reader(TestTokenizer(), DiskOptions(dir.path));
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kFail;
  rule.max_fires = 1;  // first attempt fails, the retry succeeds
  fault::ScopedFault armed("registry.disk.read", rule);
  Artifact loaded = reader.Lookup(fx.key);
  ASSERT_NE(loaded, nullptr);
  GrammarRegistryStats stats = reader.Stats();
  EXPECT_EQ(stats.disk_hits, 1);
  EXPECT_GE(stats.disk_retries, 1);
  EXPECT_EQ(stats.disk_retry_exhausted, 0);
}

TEST(RegistryFault, ReadRetryExhaustionIsAMissAndTheFileSurvives) {
  TempDir dir("read_exhaust");
  DiskFixture fx;
  { GrammarRegistry(TestTokenizer(), DiskOptions(dir.path))
        .Insert(fx.key, fx.artifact); }

  GrammarRegistry reader(TestTokenizer(), DiskOptions(dir.path));
  {
    fault::FaultRule rule;
    rule.action = fault::FaultAction::kFail;  // unlimited: every attempt fails
    fault::ScopedFault armed("registry.disk.read", rule);
    EXPECT_EQ(reader.Lookup(fx.key), nullptr);
  }
  GrammarRegistryStats stats = reader.Stats();
  EXPECT_EQ(stats.disk_retry_exhausted, 1);
  EXPECT_EQ(stats.disk_rejects, 0);  // transient, not corruption: no delete
  EXPECT_TRUE(fs::exists(reader.DiskPath(fx.key)));
  // Once the fault clears, the same registry recovers the artifact.
  EXPECT_NE(reader.Lookup(fx.key), nullptr);
}

TEST(RegistryFault, EnospcWriteExhaustionLeavesArtifactMemoryOnly) {
  TempDir dir("write_enospc");
  DiskFixture fx;
  GrammarRegistry registry(TestTokenizer(), DiskOptions(dir.path));
  {
    fault::FaultRule rule;
    rule.action = fault::FaultAction::kFail;
    fault::ScopedFault armed("registry.disk.write_enospc", rule);
    registry.Insert(fx.key, fx.artifact);
  }
  EXPECT_EQ(registry.Stats().disk_writes, 0);
  EXPECT_EQ(registry.Stats().disk_retry_exhausted, 1);
  EXPECT_FALSE(fs::exists(registry.DiskPath(fx.key)));
  // Memory tier is unaffected: the artifact serves from residency.
  EXPECT_NE(registry.Lookup(fx.key), nullptr);
}

TEST(RegistryFault, ShortWriteIsCaughtCleanedUpAndRetriedToSuccess) {
  TempDir dir("write_short");
  DiskFixture fx;
  GrammarRegistry writer(TestTokenizer(), DiskOptions(dir.path));
  {
    fault::FaultRule rule;
    rule.action = fault::FaultAction::kFail;
    rule.max_fires = 1;  // first attempt truncates; the retry writes fully
    fault::ScopedFault armed("registry.disk.write_short", rule);
    writer.Insert(fx.key, fx.artifact);
  }
  EXPECT_EQ(writer.Stats().disk_writes, 1);
  EXPECT_GE(writer.Stats().disk_retries, 1);
  ASSERT_TRUE(fs::exists(writer.DiskPath(fx.key)));
  // No stray temp files: the failed attempt cleaned up after itself.
  int files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1);
  // The published file passes full validation in a fresh registry.
  GrammarRegistry reader(TestTokenizer(), DiskOptions(dir.path));
  EXPECT_NE(reader.Lookup(fx.key), nullptr);
  EXPECT_EQ(reader.Stats().disk_hits, 1);
}

TEST(RegistryFault, InjectedReadCorruptionIsTerminalDeleteAndRecompile) {
  TempDir dir("read_corrupt");
  CompileJob job = EbnfJob("root ::= \"corrupt\" [a-z]+");
  CompileServiceOptions options;
  options.registry = DiskOptions(dir.path);
  {
    CompileService service(TestTokenizer(), options);
    ASSERT_NE(service.Compile(job), nullptr);
    ASSERT_TRUE(fs::exists(service.Registry().DiskPath(CompileJobKey(job))));
  }
  // Fresh "process": the warm-start read observes corrupted bytes exactly
  // once. That is terminal (no retry): the file is deleted and the service
  // recompiles.
  CompileService service(TestTokenizer(), options);
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kFail;
  rule.max_fires = 1;
  fault::ScopedFault armed("registry.disk.read_corrupt", rule);
  ASSERT_NE(service.Compile(job), nullptr);
  EXPECT_EQ(service.Stats().compiled, 1);  // full recompile, not a disk load
  EXPECT_EQ(service.Registry().Stats().disk_rejects, 1);
  EXPECT_EQ(service.Registry().Stats().disk_retries, 0);  // never retried
  // The recompile re-persisted a good copy under the same name.
  EXPECT_TRUE(fs::exists(service.Registry().DiskPath(CompileJobKey(job))));
}

TEST(RegistryFault, ServiceCompilesThroughFullDiskAndHealsNextProcess) {
  TempDir dir("service_enospc");
  CompileJob job = EbnfJob("root ::= \"enospc\" [a-z]+");
  CompileServiceOptions options;
  options.registry = DiskOptions(dir.path);
  {
    CompileService service(TestTokenizer(), options);
    fault::FaultRule rule;
    rule.action = fault::FaultAction::kFail;
    fault::ScopedFault armed("registry.disk.write_enospc", rule);
    // The disk tier is an optimization: a full volume degrades to
    // memory-only, never to a failed compile.
    ASSERT_NE(service.Compile(job), nullptr);
    EXPECT_EQ(service.Stats().compiled, 1);
    EXPECT_GE(service.Registry().Stats().disk_retry_exhausted, 1);
    EXPECT_FALSE(fs::exists(service.Registry().DiskPath(CompileJobKey(job))));
  }
  // Next process (volume healed): nothing was persisted, so the key
  // recompiles once and lands on disk this time.
  CompileService service(TestTokenizer(), options);
  ASSERT_NE(service.Compile(job), nullptr);
  EXPECT_EQ(service.Stats().compiled, 1);
  EXPECT_TRUE(fs::exists(service.Registry().DiskPath(CompileJobKey(job))));
}

// --- compile deadlines -------------------------------------------------------

TEST(CompileDeadline, QueueExpiredDeadlineFailsWithoutOccupyingAWorker) {
  g_fake_now_ms.store(0);
  CompileServiceOptions options;
  options.num_threads = 1;
  options.now_ms_fn = FakeNowMs;
  CompileService service(TestTokenizer(), options);

  CompileTicket blocker = service.Submit(BlockerJob());
  while (service.Stats().builds_started == 0) std::this_thread::yield();

  CompileJob job = EbnfJob("root ::= \"late\"");
  job.deadline_ms = 10.0;
  CompileTicket late = service.Submit(std::move(job));
  g_fake_now_ms.store(100);  // the deadline passes while the job queues

  ASSERT_NE(blocker.Get(), nullptr);
  ASSERT_TRUE(late.WaitFor(60.0));
  EXPECT_EQ(late.State(), CompileState::kFailed);
  EXPECT_EQ(late.Code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(late.Error().find("while queued"), std::string::npos);
  CompileServiceStats stats = service.Stats();
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.builds_started, 1);  // only the blocker ever built
  EXPECT_EQ(stats.inflight, 0);
}

TEST(CompileDeadline, MidBuildExpiryAbortsCooperativelyBetweenPasses) {
  g_fake_now_ms.store(0);
  CompileServiceOptions options;
  options.num_threads = 1;
  options.now_ms_fn = FakeNowMs;
  CompileService service(TestTokenizer(), options);

  // The build starts in time; the injected callback advances the clock past
  // the deadline between the grammar pass and the PDA pass, and the
  // cooperative check right after it aborts the build.
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kCallback;
  rule.callback = [] { g_fake_now_ms.store(100); };
  rule.max_fires = 1;
  fault::ScopedFault armed("compile.after_grammar", rule);

  CompileJob job = EbnfJob("root ::= \"slow\" [a-z]+");
  job.deadline_ms = 50.0;
  CompileTicket ticket = service.Submit(std::move(job));
  ASSERT_TRUE(ticket.WaitFor(60.0));
  EXPECT_EQ(ticket.State(), CompileState::kFailed);
  EXPECT_EQ(ticket.Code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(ticket.Error().find("mid-build"), std::string::npos);
  CompileServiceStats stats = service.Stats();
  EXPECT_EQ(stats.builds_started, 1);
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.inflight, 0);
}

TEST(CompileDeadline, DeadlineFailuresNeverQuarantineTheKey) {
  g_fake_now_ms.store(0);
  CompileServiceOptions options;
  options.num_threads = 1;
  options.now_ms_fn = FakeNowMs;
  CompileService service(TestTokenizer(), options);
  {
    fault::FaultRule rule;
    rule.action = fault::FaultAction::kCallback;
    rule.callback = [] { g_fake_now_ms.fetch_add(100); };
    rule.max_fires = 1;
    fault::ScopedFault armed("compile.after_grammar", rule);
    CompileJob job = EbnfJob("root ::= \"timing\"");
    job.deadline_ms = 50.0;
    CompileTicket ticket = service.Submit(std::move(job));
    ASSERT_TRUE(ticket.WaitFor(60.0));
    ASSERT_EQ(ticket.Code(), StatusCode::kDeadlineExceeded);
  }
  // A deadline expiry says nothing about the grammar: the immediate
  // resubmit (no deadline) builds and succeeds — no quarantine.
  Artifact ok = service.Compile(EbnfJob("root ::= \"timing\""));
  EXPECT_NE(ok, nullptr);
  EXPECT_EQ(service.Stats().quarantine_rejects, 0);
}

// --- cooperative cancellation mid-build --------------------------------------

TEST(CompileCancel, ReleasingEveryTicketAbortsARunningBuild) {
  CompileServiceOptions options;
  options.num_threads = 1;
  CompileService service(TestTokenizer(), options);

  std::mutex m;
  std::condition_variable cv;
  bool reached = false;
  bool released = false;
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kCallback;
  rule.max_fires = 1;
  rule.callback = [&] {
    std::unique_lock<std::mutex> lock(m);
    reached = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  };
  fault::ScopedFault armed("compile.after_grammar", rule);

  CompileTicket ticket = service.Submit(EbnfJob("root ::= \"doomed\" [a-z]+"));
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return reached; });
  }
  // The build is parked mid-flight; dropping the only interest must abort it
  // at the next cooperative check instead of finishing work nobody wants.
  ticket.Cancel();
  {
    std::lock_guard<std::mutex> lock(m);
    released = true;
  }
  cv.notify_all();

  ASSERT_TRUE(ticket.WaitFor(60.0));
  EXPECT_EQ(ticket.Code(), StatusCode::kCancelled);
  EXPECT_NE(ticket.Error().find("abandoned mid-flight"), std::string::npos);
  CompileServiceStats stats = service.Stats();
  EXPECT_EQ(stats.builds_aborted, 1);
  EXPECT_EQ(stats.compiled, 0);
  EXPECT_EQ(stats.inflight, 0);
}

TEST(CompileCancel, DestructorRacesInFlightFailingBuildsWithoutWedging) {
  // Eight distinct keys, every build failing mid-pipeline, service torn down
  // while builds are in flight: every ticket must resolve (no hangs, no
  // leaks) with a classified code. TSan-checked in CI.
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kThrow;
  rule.code = StatusCode::kInternal;
  rule.message = "injected mid-build failure";
  fault::ScopedFault armed("compile.after_grammar", rule);

  std::vector<CompileTicket> tickets;
  {
    CompileServiceOptions options;
    options.num_threads = 2;
    CompileService service(TestTokenizer(), options);
    for (int i = 0; i < 8; ++i) {
      tickets.push_back(service.Submit(
          EbnfJob("root ::= \"races" + std::to_string(i) + "\" [a-z]+")));
    }
    while (service.Stats().builds_started == 0) std::this_thread::yield();
    // Destructor: running (failing) builds finalize, queued builds cancel.
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_NE(tickets[i].State(), CompileState::kPending) << i;
    const StatusCode code = tickets[i].Code();
    EXPECT_TRUE(code == StatusCode::kInternal ||
                code == StatusCode::kCancelled)
        << i << ": " << StatusCodeName(code);
  }
}

// --- poison-grammar quarantine -----------------------------------------------

TEST(Quarantine, InvalidGrammarIsQuarantinedOnFirstFailure) {
  CompileService service(TestTokenizer());
  CompileTicket first = service.Submit(EbnfJob("root ::= \"unterminated"));
  ASSERT_TRUE(first.WaitFor(60.0));
  ASSERT_EQ(first.Code(), StatusCode::kInvalidGrammar);
  const std::string original_error = first.Error();

  // The identical source is rejected at the door: no queueing, no build, the
  // ticket is already resolved when Submit() returns, and the cached error
  // plus original code class are served back.
  CompileTicket second = service.Submit(EbnfJob("root ::= \"unterminated"));
  EXPECT_TRUE(second.Ready());
  EXPECT_EQ(second.State(), CompileState::kFailed);
  EXPECT_EQ(second.Code(), StatusCode::kPoisoned);
  EXPECT_NE(second.Error().find("quarantined after 1 failed build(s)"),
            std::string::npos);
  EXPECT_NE(second.Error().find("invalid_grammar"), std::string::npos);
  EXPECT_NE(second.Error().find(original_error), std::string::npos);
  CompileServiceStats stats = service.Stats();
  EXPECT_EQ(stats.builds_started, 1);  // O(1) rejection: one build ever
  EXPECT_EQ(stats.quarantine_rejects, 1);
  EXPECT_EQ(stats.inflight, 0);
}

TEST(Quarantine, TransientFailuresQuarantineAtThresholdAndTtlGrantsAProbe) {
  g_fake_now_ms.store(0);
  CompileServiceOptions options;
  options.num_threads = 1;
  options.now_ms_fn = FakeNowMs;
  options.quarantine.max_attempts = 2;
  options.quarantine.ttl_ms = 1000.0;
  CompileService service(TestTokenizer(), options);

  CompileJob job = EbnfJob("root ::= \"flaky\" [a-z]+");
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kThrow;
  rule.code = StatusCode::kInternal;
  rule.message = "transient blip";
  fault::Arm("compile.before_build", rule);

  // Strike one: a transient failure does not quarantine below the threshold.
  CompileTicket s1 = service.Submit(job);
  ASSERT_TRUE(s1.WaitFor(60.0));
  EXPECT_EQ(s1.Code(), StatusCode::kInternal);
  // Strike two hits max_attempts: the key is now poisoned...
  CompileTicket s2 = service.Submit(job);
  ASSERT_TRUE(s2.WaitFor(60.0));
  EXPECT_EQ(s2.Code(), StatusCode::kInternal);
  EXPECT_EQ(service.Stats().builds_started, 2);
  // ...so the third submit is rejected O(1) without building.
  CompileTicket s3 = service.Submit(job);
  EXPECT_EQ(s3.Code(), StatusCode::kPoisoned);
  EXPECT_EQ(service.Stats().builds_started, 2);
  EXPECT_EQ(service.Stats().quarantine_rejects, 1);

  // TTL expiry earns exactly one probe; the probe failing (fault still
  // armed) re-quarantines immediately — a single strike, not a fresh count.
  g_fake_now_ms.store(2000);
  CompileTicket probe = service.Submit(job);
  ASSERT_TRUE(probe.WaitFor(60.0));
  EXPECT_EQ(probe.Code(), StatusCode::kInternal);
  EXPECT_EQ(service.Stats().builds_started, 3);
  CompileTicket rejected = service.Submit(job);
  EXPECT_EQ(rejected.Code(), StatusCode::kPoisoned);
  EXPECT_EQ(service.Stats().builds_started, 3);

  // The fault heals; the next TTL probe succeeds and wipes the key's
  // failure history: the artifact is real and a resubmit is a registry hit.
  fault::DisarmAll();
  g_fake_now_ms.store(4000);
  CompileTicket healed = service.Submit(job);
  ASSERT_NE(healed.Get(), nullptr);
  CompileTicket hit = service.Submit(job);
  EXPECT_EQ(hit.State(), CompileState::kReady);
  EXPECT_EQ(service.Stats().registry_hits, 1);
}

// --- overload backpressure ---------------------------------------------------

TEST(Overload, FullQueueRejectsEqualPriorityArrivalWithOverloaded) {
  CompileServiceOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 1;
  CompileService service(TestTokenizer(), options);

  CompileTicket blocker = service.Submit(BlockerJob());
  while (service.Stats().builds_started == 0) std::this_thread::yield();

  CompileTicket queued = service.Submit(EbnfJob("root ::= \"q\" [a-z]+"));
  // Same priority does not outrank the queued build: the arrival loses.
  CompileTicket rejected = service.Submit(EbnfJob("root ::= \"r\" [a-z]+"));
  EXPECT_TRUE(rejected.Ready());
  EXPECT_EQ(rejected.State(), CompileState::kFailed);
  EXPECT_EQ(rejected.Code(), StatusCode::kOverloaded);
  EXPECT_NE(rejected.Error().find("queue full"), std::string::npos);
  EXPECT_EQ(service.Stats().overload_rejects, 1);

  // The queued build was untouched by the rejection and completes.
  ASSERT_NE(blocker.Get(), nullptr);
  EXPECT_NE(queued.Get(), nullptr);
  EXPECT_EQ(service.Stats().inflight, 0);
}

TEST(Overload, UrgentArrivalShedsTheWorstQueuedBuild) {
  CompileServiceOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 1;
  CompileService service(TestTokenizer(), options);

  CompileTicket blocker = service.Submit(BlockerJob());
  while (service.Stats().builds_started == 0) std::this_thread::yield();

  std::atomic<int> shed_callbacks{0};
  std::atomic<bool> shed_saw_null{false};
  CompileTicket prefetch = service.Submit(
      EbnfJob("root ::= \"spec\" [a-z]+"), CompilePriority::kPrefetch,
      [&](const Artifact& artifact) {
        shed_saw_null.store(artifact == nullptr);
        ++shed_callbacks;
      });
  // An interactive arrival outranks the queued prefetch: the prefetch is
  // evicted (kOverloaded) and the interactive job takes its queue slot.
  CompileTicket urgent = service.Submit(EbnfJob("root ::= \"now\" [a-z]+"),
                                        CompilePriority::kInteractive);
  EXPECT_EQ(prefetch.State(), CompileState::kFailed);
  EXPECT_EQ(prefetch.Code(), StatusCode::kOverloaded);
  EXPECT_NE(prefetch.Error().find("shed under overload"), std::string::npos);
  EXPECT_EQ(shed_callbacks.load(), 1);
  EXPECT_TRUE(shed_saw_null.load());
  CompileServiceStats mid = service.Stats();
  EXPECT_EQ(mid.shed, 1);
  EXPECT_EQ(mid.overload_rejects, 0);

  ASSERT_NE(blocker.Get(), nullptr);
  EXPECT_NE(urgent.Get(), nullptr);  // the urgent job really ran
  EXPECT_EQ(service.Stats().inflight, 0);
}

// Faults must never leak into later test binaries' expectations.
class GlobalFaultTeardown : public ::testing::Environment {
 public:
  void TearDown() override { fault::DisarmAll(); }
};
const auto* const g_teardown =
    ::testing::AddGlobalTestEnvironment(new GlobalFaultTeardown());

}  // namespace
}  // namespace xgr::runtime
