// Sampler unit tests: the sparse-path tie-break contract (a boosted token
// must STRICTLY beat the implicit 0-logit floor of the unboosted allowed
// tokens — the pre-fix code let a negative-logit boost shadow them), and
// the dense-path DenseSampler wiring over the fused SIMD kernel.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "engine/mock_llm.h"
#include "engine/sampler.h"
#include "support/dynamic_bitset.h"
#include "support/rng.h"
#include "tokenizer/synthetic_vocab.h"

namespace xgr::engine {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({1200, 7}));
  return info;
}

TEST(SparseSampler, PositiveBoostBeatsTheFloor) {
  SparseLogits logits;
  logits.boosted = {{7, 2.0f}};
  DynamicBitset mask(64);
  for (std::size_t i = 0; i < 32; ++i) mask.Set(i);
  Rng rng(3);
  EXPECT_EQ(SampleMasked(logits, mask, &rng), 7);
  EXPECT_EQ(SampleUnmasked(logits, 64, &rng), 7);
}

TEST(SparseSampler, HighestBoostWinsLowestIndexOnTie) {
  SparseLogits logits;
  logits.boosted = {{3, 5.0f}, {9, 8.0f}, {12, 8.0f}, {20, 1.0f}};
  DynamicBitset mask(64);
  mask.SetAll();
  Rng rng(3);
  // Strict > keeps the first list entry among equal boosts.
  EXPECT_EQ(SampleMasked(logits, mask, &rng), 9);
  EXPECT_EQ(SampleUnmasked(logits, 64, &rng), 9);
}

// Regression (fails pre-fix): a boosted token with a NEGATIVE logit must not
// win over unboosted allowed tokens, which all sit at the implicit 0 logit.
// The pre-fix `best == -1` clause accepted the first candidate regardless of
// its logit, so token 5 below was returned on every seed.
TEST(SparseSampler, NegativeBoostDoesNotShadowTheZeroLogitCrowd) {
  SparseLogits logits;
  logits.boosted = {{5, -3.0f}};
  DynamicBitset mask(64);
  mask.Set(5);
  for (std::size_t i = 10; i < 30; ++i) mask.Set(i);

  std::set<std::int32_t> picks;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    std::int32_t token = SampleMasked(logits, mask, &rng);
    EXPECT_TRUE(mask.Test(static_cast<std::size_t>(token)));
    picks.insert(token);
  }
  // Post-fix the sampler falls back to the pseudo-random 0-logit pool; the
  // negative-boost token must not dominate it (pre-fix: picks == {5}).
  EXPECT_GT(picks.size(), 1u);
  EXPECT_FALSE(picks.count(5) == 1 && picks.size() == 1);
}

TEST(SparseSampler, NegativeBoostUnmaskedFallsBackToRandom) {
  SparseLogits logits;
  logits.boosted = {{5, -0.001f}};
  std::set<std::int32_t> picks;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    picks.insert(SampleUnmasked(logits, 1000, &rng));
  }
  EXPECT_GT(picks.size(), 1u);  // pre-fix: always token 5
}

TEST(SparseSampler, ZeroLogitBoostDoesNotBeatTheFloor) {
  // Exactly 0 ties with the floor; strict > sends it to the fallback pool.
  SparseLogits logits;
  logits.boosted = {{5, 0.0f}};
  DynamicBitset mask(256);
  mask.SetAll();
  std::set<std::int32_t> picks;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    picks.insert(SampleMasked(logits, mask, &rng));
  }
  EXPECT_GT(picks.size(), 1u);
}

TEST(DenseSampler, GreedyPicksTheBoostedTokenUnderMask) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto vocab = static_cast<std::size_t>(info->VocabSize());

  std::vector<float> row(vocab, 0.0f);
  SparseLogits scratch;
  MockLlm::RequestScript script = llm.MakeScript("\"ab\"", 9);
  llm.ComputeLogitsDense(&script, &scratch, row.data());
  ASSERT_FALSE(scratch.boosted.empty());
  std::int32_t boosted = scratch.boosted.front().first;

  DenseSampler sampler;
  sampler.Prepare(vocab);
  Rng rng(17);
  // Unmasked greedy: the +16 boost dominates the sub-1.0 noise floor.
  EXPECT_EQ(sampler.Sample(row.data(), vocab, nullptr, 0.0f, &rng), boosted);

  // Mask away the boosted token: greedy must fall to the best *allowed*
  // noise token, never an excluded one.
  DynamicBitset mask(vocab);
  mask.SetAll();
  mask.Reset(static_cast<std::size_t>(boosted));
  std::int32_t token = sampler.Sample(row.data(), vocab, &mask, 0.0f, &rng);
  ASSERT_GE(token, 0);
  EXPECT_NE(token, boosted);
  EXPECT_TRUE(mask.Test(static_cast<std::size_t>(token)));

  // Temperature path stays within the mask too.
  std::int32_t sampled = sampler.Sample(row.data(), vocab, &mask, 0.8f, &rng);
  ASSERT_GE(sampled, 0);
  EXPECT_TRUE(mask.Test(static_cast<std::size_t>(sampled)));
}

TEST(DenseSampler, DenseGreedyAgreesWithSparseArgmaxWhenBoostDominates) {
  auto info = TestTokenizer();
  MockLlm llm(info, {.derail_probability = 0.0, .seed = 5});
  auto vocab = static_cast<std::size_t>(info->VocabSize());

  MockLlm::RequestScript sparse_script = llm.MakeScript("\"xy\"", 21);
  MockLlm::RequestScript dense_script = llm.MakeScript("\"xy\"", 21);
  SparseLogits sparse;
  llm.ComputeLogitsSparse(&sparse_script, &sparse);
  std::vector<float> row(vocab);
  SparseLogits scratch;
  llm.ComputeLogitsDense(&dense_script, &scratch, row.data());

  DynamicBitset all(vocab);
  all.SetAll();
  Rng rng_a(7);
  Rng rng_b(7);
  DenseSampler sampler;
  sampler.Prepare(vocab);
  EXPECT_EQ(sampler.Sample(row.data(), vocab, &all, 0.0f, &rng_a),
            SampleMasked(sparse, all, &rng_b));
}

}  // namespace
}  // namespace xgr::engine
