// Unit and property tests for the support substrate: bitset, thread pool,
// RNG, UTF-8 (including the range→byte-sequence compiler), string utils.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "support/dynamic_bitset.h"
#include "support/rng.h"
#include "support/string_utils.h"
#include "support/thread_pool.h"
#include "support/utf8.h"
#include "support/worker_team.h"

namespace xgr {
namespace {

// --- DynamicBitset -----------------------------------------------------------

class BitsetSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetSizeTest, SetResetCountAcrossWordBoundaries) {
  std::size_t size = GetParam();
  DynamicBitset bits(size);
  EXPECT_EQ(bits.Count(), 0u);
  for (std::size_t i = 0; i < size; i += 3) bits.Set(i);
  EXPECT_EQ(bits.Count(), (size + 2) / 3);
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(bits.Test(i), i % 3 == 0) << i;
  }
  for (std::size_t i = 0; i < size; i += 3) bits.Reset(i);
  EXPECT_EQ(bits.Count(), 0u);
}

TEST_P(BitsetSizeTest, SetAllRespectsSizePadding) {
  std::size_t size = GetParam();
  DynamicBitset bits(size);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), size);
  bits.FlipAll();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST_P(BitsetSizeTest, FindNextVisitsExactlySetBits) {
  std::size_t size = GetParam();
  DynamicBitset bits(size);
  Rng rng(size);
  std::set<std::size_t> expected;
  for (int i = 0; i < 40; ++i) {
    std::size_t index = rng.NextBounded(size);
    expected.insert(index);
    bits.Set(index);
  }
  std::set<std::size_t> found;
  for (std::int64_t i = bits.FindNext(0); i >= 0;
       i = bits.FindNext(static_cast<std::size_t>(i) + 1)) {
    found.insert(static_cast<std::size_t>(i));
  }
  EXPECT_EQ(found, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetSizeTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000, 4097));

TEST(DynamicBitset, ConstructAllOnes) {
  DynamicBitset bits(130, true);
  EXPECT_EQ(bits.Count(), 130u);
  EXPECT_TRUE(bits.Test(129));
}

TEST(DynamicBitset, BooleanAlgebra) {
  DynamicBitset a(200);
  DynamicBitset b(200);
  for (std::size_t i = 0; i < 200; i += 2) a.Set(i);
  for (std::size_t i = 0; i < 200; i += 3) b.Set(i);
  DynamicBitset intersection = a;
  intersection &= b;
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(intersection.Test(i), i % 6 == 0) << i;
  }
  DynamicBitset both = a;
  both |= b;
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(both.Test(i), i % 2 == 0 || i % 3 == 0) << i;
  }
}

// --- Batch helpers (decode hot path; see cache/mask_generator.cc) -----------

TEST(DynamicBitsetBatch, SetAndResetBatchAcceptUnsortedDuplicates) {
  DynamicBitset bits(200);
  // Unsorted, with duplicates — the helpers must not rely on either.
  std::vector<std::int32_t> ids{150, 3, 64, 3, 199, 0, 64};
  bits.SetBatch(ids);
  EXPECT_EQ(bits.Count(), 5u);
  for (std::int32_t id : ids) EXPECT_TRUE(bits.Test(static_cast<std::size_t>(id)));
  bits.ResetBatch(ids.data(), 3);  // resets {150, 3, 64}
  EXPECT_EQ(bits.Count(), 2u);
  EXPECT_TRUE(bits.Test(199));
  EXPECT_TRUE(bits.Test(0));
  bits.ResetBatch(ids);
  EXPECT_EQ(bits.Count(), 0u);
}

class BitsetBatchPaddingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetBatchPaddingTest, BatchOpsKeepPaddingClear) {
  // Sizes straddling word boundaries: batch writes into the last (partial)
  // word followed by word-level combines must never leak into padding bits,
  // or Count()/equality break.
  std::size_t size = GetParam();
  DynamicBitset a(size);
  DynamicBitset b(size);
  std::vector<std::int32_t> last{static_cast<std::int32_t>(size - 1)};
  a.SetBatch(last);
  b.SetAll();
  a.OrWith(b);
  EXPECT_EQ(a.Count(), size);
  a.FlipAll();  // all zero; padding must stay zero after the flip
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_TRUE(a == DynamicBitset(size));
  a.CopyFrom(b);
  EXPECT_EQ(a.Count(), size);
  EXPECT_TRUE(a == b);
  a.AndWith(DynamicBitset(size));
  EXPECT_EQ(a.Count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetBatchPaddingTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 4097));

TEST(DynamicBitsetBatch, CopyFromMatchesAssignmentWithoutRealloc) {
  DynamicBitset src(300);
  for (std::size_t i = 0; i < 300; i += 7) src.Set(i);
  DynamicBitset dst(300, true);
  const DynamicBitset::Word* words_before = dst.Data();
  dst.CopyFrom(src);
  EXPECT_TRUE(dst == src);
  EXPECT_EQ(dst.Data(), words_before);  // word storage untouched
}

TEST(DynamicBitsetBatch, OrAndWithMatchOperators) {
  Rng rng(99);
  DynamicBitset a(257);
  DynamicBitset b(257);
  for (int i = 0; i < 120; ++i) a.Set(rng.NextBounded(257));
  for (int i = 0; i < 120; ++i) b.Set(rng.NextBounded(257));
  DynamicBitset or_named = a;
  or_named.OrWith(b);
  DynamicBitset or_op = a;
  or_op |= b;
  EXPECT_TRUE(or_named == or_op);
  DynamicBitset and_named = a;
  and_named.AndWith(b);
  DynamicBitset and_op = a;
  and_op &= b;
  EXPECT_TRUE(and_named == and_op);
}

TEST(DynamicBitset, EqualityAndIndexList) {
  DynamicBitset a(70);
  a.Set(0);
  a.Set(69);
  DynamicBitset b(70);
  EXPECT_FALSE(a == b);
  b.Set(0);
  b.Set(69);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.ToIndexList(), (std::vector<std::int32_t>{0, 69}));
}

// --- ThreadPool ---------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  try {
    future.get();
    FAIL() << "expected the task's exception through the future";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom");  // the exact exception, not a wrapper
  }
}

TEST(ThreadPool, ThrowingTaskDoesNotKillTheWorker) {
  // A single-thread pool makes the ordering deterministic: the worker that
  // ran (and survived) the throwing task must run the next one.
  ThreadPool pool(1);
  auto bad = pool.Submit([] { throw std::runtime_error("first"); });
  std::atomic<bool> ran{false};
  auto good = pool.Submit([&] { ran = true; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  good.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  // Shutdown with a deep queue: every already-submitted task still runs and
  // every future resolves — nothing is dropped and nothing deadlocks.
  constexpr int kTasks = 64;
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++executed;
      }));
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(executed.load(), kTasks);
  for (std::future<void>& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    future.get();  // must not throw
  }
}

TEST(ThreadPool, DestructorDrainsThrowingTasksCleanly) {
  // Mixed success/failure under shutdown: futures of drained tasks surface
  // their exceptions; the pool still joins without deadlock.
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([i] {
        if (i % 2 == 0) throw std::runtime_error("even task");
      }));
    }
  }
  for (int i = 0; i < 32; ++i) {
    if (i % 2 == 0) {
      EXPECT_THROW(futures[static_cast<std::size_t>(i)].get(),
                   std::runtime_error);
    } else {
      futures[static_cast<std::size_t>(i)].get();
    }
  }
}

TEST(ThreadPool, ParallelForPropagatesWorkerExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(257,
                                [](std::size_t i) {
                                  if (i == 100) throw std::runtime_error("shard");
                                }),
               std::runtime_error);
  // The pool remains usable afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

// --- Rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    std::int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- UTF-8 ------------------------------------------------------------------------

TEST(Utf8, EncodeDecodeRoundTripAllRanges) {
  for (std::uint32_t cp : {0x0u, 0x41u, 0x7Fu, 0x80u, 0x7FFu, 0x800u, 0xFFFFu,
                           0x10000u, 0x10FFFFu, 0xE9u, 0x4E2Du, 0x1F600u}) {
    std::string s;
    AppendUtf8(cp, &s);
    EXPECT_EQ(s.size(), static_cast<std::size_t>(Utf8EncodedLength(cp)));
    DecodedChar decoded = DecodeUtf8(s, 0);
    ASSERT_TRUE(decoded.ok) << cp;
    EXPECT_EQ(decoded.codepoint, cp);
    EXPECT_EQ(decoded.length, Utf8EncodedLength(cp));
  }
}

TEST(Utf8, DecodeRejectsInvalidSequences) {
  // Bare continuation byte, truncated sequence, overlong encoding.
  EXPECT_FALSE(DecodeUtf8("\x80", 0).ok);
  EXPECT_FALSE(DecodeUtf8("\xC3", 0).ok);
  EXPECT_FALSE(DecodeUtf8("\xC0\xAF", 0).ok);  // overlong '/'
  EXPECT_FALSE(DecodeUtf8("\xED\xA0\x80", 0).ok);  // surrogate D800
  EXPECT_FALSE(DecodeUtf8("\xF5\x80\x80\x80", 0).ok);  // > U+10FFFF
}

TEST(Utf8, CompleteUtf8PrefixTrimsOnlyTruncatedTails) {
  EXPECT_EQ(CompleteUtf8PrefixLength(""), 0u);
  EXPECT_EQ(CompleteUtf8PrefixLength("abc"), 3u);
  EXPECT_EQ(CompleteUtf8PrefixLength("clé"), 4u);          // complete 2-byte
  EXPECT_EQ(CompleteUtf8PrefixLength("cl\xC3"), 2u);       // truncated 2-byte
  EXPECT_EQ(CompleteUtf8PrefixLength("a\xE4\xB8"), 1u);    // truncated 3-byte
  EXPECT_EQ(CompleteUtf8PrefixLength("\xE4\xB8\x96"), 3u); // complete 3-byte
  EXPECT_EQ(CompleteUtf8PrefixLength("a\xF0\x9F\x98"), 1u);  // truncated 4-byte
  EXPECT_EQ(CompleteUtf8PrefixLength("\xF0\x9F\x98\x80"), 4u);
  EXPECT_EQ(CompleteUtf8PrefixLength("\xC3"), 0u);  // lone lead byte
  // Byte content that is invalid-but-not-truncated is preserved: the engine
  // is byte-level and such bytes may be legitimate grammar content.
  EXPECT_EQ(CompleteUtf8PrefixLength("\x80"), 1u);    // stray continuation
  EXPECT_EQ(CompleteUtf8PrefixLength("a\xFF"), 2u);   // invalid lead
  EXPECT_EQ(CompleteUtf8PrefixLength("x\x80\x80\x80\x80"), 5u);
}

// Checks a byte string against a set of byte-range sequences.
bool MatchesAnySeq(const std::vector<ByteRangeSeq>& seqs, const std::string& s) {
  for (const ByteRangeSeq& seq : seqs) {
    if (seq.size() != s.size()) continue;
    bool ok = true;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      auto b = static_cast<std::uint8_t>(s[i]);
      if (b < seq[i].lo || b > seq[i].hi) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

struct RangeCase {
  std::uint32_t lo;
  std::uint32_t hi;
};

class Utf8RangeTest : public ::testing::TestWithParam<RangeCase> {};

TEST_P(Utf8RangeTest, CompiledSequencesMatchExactlyTheRange) {
  auto [lo, hi] = GetParam();
  auto seqs = CompileCodepointRange(lo, hi);
  Rng rng(lo * 31 + hi);
  // Codepoints inside the range must match; sampled outside must not.
  for (int i = 0; i < 200; ++i) {
    std::uint32_t cp = lo + static_cast<std::uint32_t>(rng.NextBounded(hi - lo + 1));
    if (cp >= 0xD800 && cp <= 0xDFFF) continue;
    std::string s;
    AppendUtf8(cp, &s);
    EXPECT_TRUE(MatchesAnySeq(seqs, s)) << "cp=" << cp;
  }
  for (int i = 0; i < 200; ++i) {
    std::uint32_t cp = static_cast<std::uint32_t>(rng.NextBounded(kMaxCodepoint + 1));
    if (cp >= lo && cp <= hi) continue;
    if (cp >= 0xD800 && cp <= 0xDFFF) continue;
    std::string s;
    AppendUtf8(cp, &s);
    EXPECT_FALSE(MatchesAnySeq(seqs, s)) << "cp=" << cp;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, Utf8RangeTest,
    ::testing::Values(RangeCase{'a', 'z'}, RangeCase{0, 0x7F},
                      RangeCase{0x80, 0x7FF}, RangeCase{0x20, 0x10FFFF},
                      RangeCase{0x7F, 0x80}, RangeCase{0xFFFF, 0x10000},
                      RangeCase{0xD000, 0xE000},  // straddles surrogates
                      RangeCase{0x4E00, 0x9FFF}, RangeCase{0x10FFFF, 0x10FFFF}));

TEST(Utf8Range, SurrogatesExcluded) {
  auto seqs = CompileCodepointRange(0xD000, 0xE000);
  // The encoding of a surrogate (if forced) must not match.
  std::uint8_t buf[4] = {0xED, 0xA0, 0x80, 0};  // D800 encoded CESU-style
  std::string s(reinterpret_cast<char*>(buf), 3);
  EXPECT_FALSE(MatchesAnySeq(seqs, s));
}

// --- String utils -----------------------------------------------------------------

TEST(StringUtils, EscapeBytes) {
  EXPECT_EQ(EscapeBytes("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeBytes(std::string_view("\x01\xFF", 2)), "\\x01\\xFF");
  EXPECT_EQ(EscapeBytes("quote\""), "quote\\\"");
}

TEST(StringUtils, CommonPrefixLength) {
  EXPECT_EQ(CommonPrefixLength("", ""), 0u);
  EXPECT_EQ(CommonPrefixLength("abc", "abd"), 2u);
  EXPECT_EQ(CommonPrefixLength("abc", "abc"), 3u);
  EXPECT_EQ(CommonPrefixLength("abc", "abcdef"), 3u);
  EXPECT_EQ(CommonPrefixLength("xyz", "abc"), 0u);
}

TEST(StringUtils, SplitString) {
  EXPECT_EQ(SplitString("a/b/c", '/'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("/a/", '/'), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(SplitString("", '/'), (std::vector<std::string>{""}));
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

// --- WorkerTeam --------------------------------------------------------------

struct ShardRecorder {
  std::vector<std::atomic<int>> hits;
  explicit ShardRecorder(std::size_t n) : hits(n) {}
  static void Run(void* ctx, std::size_t shard) {
    static_cast<ShardRecorder*>(ctx)->hits[shard].fetch_add(1);
  }
};

TEST(WorkerTeam, RunsEveryShardExactlyOnce) {
  support::WorkerTeam team(4);
  EXPECT_EQ(team.thread_count(), 4u);
  for (std::size_t shards : {1u, 3u, 4u, 17u, 64u}) {
    ShardRecorder recorder(shards);
    team.Dispatch(&ShardRecorder::Run, &recorder, shards);
    for (auto& h : recorder.hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerTeam, SingleThreadRunsInlineOnTheCaller) {
  support::WorkerTeam team(1);  // no worker threads spawned
  struct Ctx {
    std::thread::id caller;
    std::atomic<int> mismatches{0};
  } ctx{std::this_thread::get_id(), {}};
  team.Dispatch(
      [](void* raw, std::size_t) {
        auto* c = static_cast<Ctx*>(raw);
        if (std::this_thread::get_id() != c->caller) c->mismatches.fetch_add(1);
      },
      &ctx, 8);
  EXPECT_EQ(ctx.mismatches.load(), 0);
}

TEST(WorkerTeam, ReusableAcrossManyDispatches) {
  support::WorkerTeam team(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    team.Dispatch(
        [](void* raw, std::size_t shard) {
          static_cast<std::atomic<long>*>(raw)->fetch_add(
              static_cast<long>(shard));
        },
        &total, 10);
  }
  EXPECT_EQ(total.load(), 200L * 45L);
}

TEST(WorkerTeam, PropagatesTheFirstShardException) {
  support::WorkerTeam team(4);
  EXPECT_THROW(team.Dispatch(
                   [](void*, std::size_t shard) {
                     if (shard == 2) throw std::runtime_error("shard boom");
                   },
                   nullptr, 6),
               std::runtime_error);
  // The team survives an exception and keeps working.
  ShardRecorder recorder(5);
  team.Dispatch(&ShardRecorder::Run, &recorder, 5);
  for (auto& h : recorder.hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace xgr
