// Differential + property tests for the fused bitmask-apply/softmax/sample
// kernels (support/simd_kernels.h): every implementation the CPU can run
// (scalar always; AVX2 whenever the host supports it; NEON on aarch64 —
// regardless of the runtime dispatch pick) is driven against the scalar
// reference and a naive
// double-precision oracle, across tail-heavy vocab sizes, all-masked rows,
// single-allowed rows, ±inf/NaN logits, and denormal temperatures.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "support/dynamic_bitset.h"
#include "support/rng.h"
#include "support/simd_kernels.h"

namespace xgr::support::simd {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

struct OracleResult {
  std::int32_t argmax = -1;
  std::int32_t allowed = 0;
  std::vector<double> probs;  // empty when no softmax applies
};

// Naive double-precision reference: skip masked tokens, NaN never wins the
// comparable max (all-NaN rows fall back to the lowest allowed index),
// strict > keeps the lowest tied index.
OracleResult NaiveOracle(const std::vector<float>& logits,
                         const DynamicBitset* mask, float temperature) {
  OracleResult oracle;
  std::int32_t first_allowed = -1;
  double max_logit = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (mask != nullptr && !mask->Test(i)) continue;
    ++oracle.allowed;
    if (first_allowed < 0) first_allowed = static_cast<std::int32_t>(i);
    double v = logits[i];
    if (oracle.argmax < 0) {
      if (!std::isnan(v)) {
        oracle.argmax = static_cast<std::int32_t>(i);
        max_logit = v;
      }
    } else if (v > max_logit) {
      oracle.argmax = static_cast<std::int32_t>(i);
      max_logit = v;
    }
  }
  if (oracle.argmax < 0 && first_allowed >= 0) oracle.argmax = first_allowed;
  if (oracle.argmax < 0 || !(temperature > 0.0f) ||
      !std::isfinite(max_logit) || std::isnan(logits[oracle.argmax])) {
    return oracle;
  }
  oracle.probs.assign(logits.size(), 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (mask != nullptr && !mask->Test(i)) continue;
    double v = logits[i];
    if (std::isnan(v)) continue;
    double x = (v - max_logit) / static_cast<double>(temperature);
    double e = std::exp(x);
    oracle.probs[i] = e;
    sum += e;
  }
  if (sum > 0.0) {
    for (double& p : oracle.probs) p /= sum;
  }
  return oracle;
}

void CheckAgainstOracleAndPeers(const std::vector<float>& logits,
                                const DynamicBitset* mask, float temperature,
                                double uniform) {
  const std::size_t n = logits.size();
  const std::uint64_t* words = mask != nullptr ? mask->Data() : nullptr;
  OracleResult oracle = NaiveOracle(logits, mask, temperature);
  std::vector<Impl> impls = AvailableImpls();
  ASSERT_FALSE(impls.empty());
  ASSERT_EQ(impls.front(), Impl::kScalar);

  std::vector<float> first_scratch;
  FusedSampleStats first_stats;
  std::int32_t first_pick = 0;
  for (std::size_t which = 0; which < impls.size(); ++which) {
    Impl impl = impls[which];
    SCOPED_TRACE(ImplName(impl));

    FusedSampleStats am = FusedMaskArgmax(impl, logits.data(), n, words);
    EXPECT_EQ(am.argmax, oracle.argmax);
    EXPECT_EQ(am.allowed, oracle.allowed);
    if (oracle.argmax >= 0 && !std::isnan(logits[oracle.argmax])) {
      EXPECT_EQ(am.max_logit, logits[oracle.argmax]);
    }

    std::vector<float> scratch(n, -1.0f);
    FusedSampleStats stats;
    std::int32_t pick =
        FusedMaskSoftmaxSample(impl, logits.data(), n, words, temperature,
                               uniform, scratch.data(), &stats);
    EXPECT_EQ(stats.argmax, oracle.argmax);
    if (oracle.argmax < 0) {
      EXPECT_EQ(pick, -1);
    } else {
      ASSERT_GE(pick, 0);
      if (mask != nullptr) EXPECT_TRUE(mask->Test(pick));
      if (oracle.probs.empty()) {
        // Greedy (temperature <= 0, or a non-finite/NaN max).
        EXPECT_EQ(pick, oracle.argmax);
      } else if (stats.sum_exp > 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          double p = scratch[i] / stats.sum_exp;
          EXPECT_NEAR(p, oracle.probs[i], 1e-6 + 1e-5 * oracle.probs[i])
              << "probability mismatch at token " << i;
        }
      }
    }

    if (which == 0) {
      first_scratch = scratch;
      first_stats = stats;
      first_pick = pick;
    } else {
      // Cross-implementation bit-compatibility: the sampled token and every
      // per-element exp value must match the scalar reference exactly (the
      // two paths evaluate the same fma chain; normalization and the CDF
      // walk are shared code).
      EXPECT_EQ(pick, first_pick);
      EXPECT_EQ(stats.sum_exp, first_stats.sum_exp);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::memcmp(&scratch[i], &first_scratch[i], sizeof(float)),
                  0)
            << "exp value differs bitwise at token " << i;
      }
    }
  }
}

DynamicBitset RandomMask(std::size_t n, double density, Rng* rng) {
  DynamicBitset mask(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng->NextDouble() < density) mask.Set(i);
  }
  return mask;
}

TEST(SimdKernels, ScalarAlwaysAvailableAndSimdListedWhenSupported) {
  std::vector<Impl> impls = AvailableImpls();
  ASSERT_FALSE(impls.empty());
  EXPECT_EQ(impls.front(), Impl::kScalar);
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    ASSERT_EQ(impls.size(), 2u)
        << "AVX2-capable host must exercise both dispatch targets";
    EXPECT_EQ(impls[1], Impl::kAvx2);
    EXPECT_EQ(BestImpl(), Impl::kAvx2);
  }
#endif
#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
  // Advanced SIMD is mandatory on aarch64: the NEON path must always be
  // listed (and picked) so the differential loops above exercise it.
  ASSERT_EQ(impls.size(), 2u)
      << "aarch64 host must exercise both dispatch targets";
  EXPECT_EQ(impls[1], Impl::kNeon);
  EXPECT_EQ(BestImpl(), Impl::kNeon);
#endif
  EXPECT_STREQ(ImplName(Impl::kScalar), "scalar");
  EXPECT_STREQ(ImplName(Impl::kAvx2), "avx2");
  EXPECT_STREQ(ImplName(Impl::kNeon), "neon");
}

TEST(SimdKernels, ExpKernelMatchesDoubleExp) {
  // ~2 ulp accuracy across the whole negative domain, exact at the edges.
  EXPECT_EQ(ExpNegF(0.0f), 1.0f);
  EXPECT_EQ(ExpNegF(-kInf), 0.0f);
  EXPECT_EQ(ExpNegF(-200.0f), 0.0f);
  EXPECT_TRUE(std::isnan(ExpNegF(kNan)));
  for (float x = -86.5f; x <= 0.0f; x += 0.0173f) {
    double want = std::exp(static_cast<double>(x));
    double got = ExpNegF(x);
    EXPECT_NEAR(got, want, want * 4e-7) << "x=" << x;
  }
}

TEST(SimdKernels, RandomRowsAcrossTailSizesAndDensities) {
  Rng rng(2026);
  for (std::size_t n :
       {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{100}, std::size_t{257}, std::size_t{1000},
        std::size_t{4093}}) {
    SCOPED_TRACE(n);
    for (double density : {1.0, 0.5, 0.05}) {
      std::vector<float> logits(n);
      for (float& v : logits) {
        v = static_cast<float>(rng.NextDouble() * 30.0 - 15.0);
      }
      DynamicBitset mask = RandomMask(n, density, &rng);
      if (mask.Count() == 0) mask.Set(n / 2);
      for (float temperature : {0.0f, 0.7f, 1.0f}) {
        CheckAgainstOracleAndPeers(logits, &mask, temperature,
                                   rng.NextDouble());
      }
      // Unconstrained row (nullptr mask) too.
      CheckAgainstOracleAndPeers(logits, nullptr, 1.0f, rng.NextDouble());
    }
  }
}

TEST(SimdKernels, AllMaskedRowYieldsMinusOne) {
  std::vector<float> logits(100, 1.0f);
  DynamicBitset mask(100);  // all clear
  for (Impl impl : AvailableImpls()) {
    SCOPED_TRACE(ImplName(impl));
    FusedSampleStats st =
        FusedMaskArgmax(impl, logits.data(), logits.size(), mask.Data());
    EXPECT_EQ(st.argmax, -1);
    EXPECT_EQ(st.allowed, 0);
    std::vector<float> scratch(logits.size());
    EXPECT_EQ(FusedMaskSoftmaxSample(impl, logits.data(), logits.size(),
                                     mask.Data(), 1.0f, 0.5, scratch.data(),
                                     nullptr),
              -1);
  }
}

TEST(SimdKernels, SingleAllowedTokenAlwaysWins) {
  Rng rng(7);
  for (std::size_t n : {std::size_t{1}, std::size_t{70}, std::size_t{129}}) {
    std::vector<float> logits(n);
    for (float& v : logits) {
      v = static_cast<float>(rng.NextDouble() * 100.0);
    }
    for (std::size_t only : {std::size_t{0}, n / 2, n - 1}) {
      DynamicBitset mask(n);
      mask.Set(only);
      logits[only] = -50.0f;  // lowest logit in the row: mask still forces it
      CheckAgainstOracleAndPeers(logits, &mask, 0.0f, 0.0);
      CheckAgainstOracleAndPeers(logits, &mask, 1.0f, 0.999);
      for (Impl impl : AvailableImpls()) {
        std::vector<float> scratch(n);
        EXPECT_EQ(FusedMaskSoftmaxSample(impl, logits.data(), n, mask.Data(),
                                         1.0f, 0.73, scratch.data(), nullptr),
                  static_cast<std::int32_t>(only));
      }
    }
  }
}

TEST(SimdKernels, InfAndNanLogits) {
  Rng rng(11);
  std::vector<float> logits(77);
  for (float& v : logits) {
    v = static_cast<float>(rng.NextDouble() * 4.0);
  }
  logits[5] = kNan;
  logits[13] = -kInf;
  logits[21] = kNan;
  DynamicBitset all(77);
  all.SetAll();

  // NaN tokens never win; +inf wins and collapses sampling onto itself.
  CheckAgainstOracleAndPeers(logits, &all, 1.0f, 0.42);
  logits[40] = kInf;
  CheckAgainstOracleAndPeers(logits, &all, 1.0f, 0.42);
  for (Impl impl : AvailableImpls()) {
    SCOPED_TRACE(ImplName(impl));
    std::vector<float> scratch(logits.size());
    EXPECT_EQ(FusedMaskSoftmaxSample(impl, logits.data(), logits.size(),
                                     all.Data(), 1.0f, 0.99, scratch.data(),
                                     nullptr),
              40);
  }

  // A row whose allowed logits are ALL NaN: lowest allowed index, greedily.
  std::vector<float> nan_row(40, kNan);
  DynamicBitset some(40);
  some.Set(7);
  some.Set(20);
  for (Impl impl : AvailableImpls()) {
    SCOPED_TRACE(ImplName(impl));
    FusedSampleStats st =
        FusedMaskArgmax(impl, nan_row.data(), nan_row.size(), some.Data());
    EXPECT_EQ(st.argmax, 7);
    std::vector<float> scratch(nan_row.size());
    EXPECT_EQ(FusedMaskSoftmaxSample(impl, nan_row.data(), nan_row.size(),
                                     some.Data(), 1.0f, 0.5, scratch.data(),
                                     nullptr),
              7);
  }

  // All allowed logits -inf: degenerate distribution, greedy lowest index.
  std::vector<float> neg_row(33, -kInf);
  DynamicBitset pair_mask(33);
  pair_mask.Set(4);
  pair_mask.Set(19);
  for (Impl impl : AvailableImpls()) {
    SCOPED_TRACE(ImplName(impl));
    std::vector<float> scratch(neg_row.size());
    EXPECT_EQ(FusedMaskSoftmaxSample(impl, neg_row.data(), neg_row.size(),
                                     pair_mask.Data(), 1.0f, 0.5,
                                     scratch.data(), nullptr),
              4);
  }
}

TEST(SimdKernels, TieBreaksToLowestIndexAcrossImpls) {
  std::vector<float> logits(96, 0.25f);
  logits[17] = 3.0f;
  logits[18] = 3.0f;
  logits[90] = 3.0f;
  DynamicBitset all(96);
  all.SetAll();
  for (Impl impl : AvailableImpls()) {
    SCOPED_TRACE(ImplName(impl));
    EXPECT_EQ(FusedMaskArgmax(impl, logits.data(), logits.size(), all.Data())
                  .argmax,
              17);
  }
  // Mask away the first two winners: the cross-word one must be found.
  all.Reset(17);
  all.Reset(18);
  for (Impl impl : AvailableImpls()) {
    SCOPED_TRACE(ImplName(impl));
    EXPECT_EQ(FusedMaskArgmax(impl, logits.data(), logits.size(), all.Data())
                  .argmax,
              90);
  }
}

TEST(SimdKernels, DenormalAndExtremeTemperatures) {
  Rng rng(13);
  std::vector<float> logits(130);
  for (float& v : logits) {
    v = static_cast<float>(rng.NextDouble() * 10.0);
  }
  logits[77] = 50.0f;
  DynamicBitset all(130);
  all.SetAll();
  const float denormal = std::numeric_limits<float>::denorm_min();
  for (Impl impl : AvailableImpls()) {
    SCOPED_TRACE(ImplName(impl));
    std::vector<float> scratch(logits.size());
    // Denormal temperature: (v - max)/T overflows to -inf for every
    // non-max token, so sampling degenerates to the argmax.
    EXPECT_EQ(FusedMaskSoftmaxSample(impl, logits.data(), logits.size(),
                                     all.Data(), denormal, 0.9999,
                                     scratch.data(), nullptr),
              77);
    // Huge temperature: near-uniform, still a valid allowed pick.
    std::int32_t pick =
        FusedMaskSoftmaxSample(impl, logits.data(), logits.size(), all.Data(),
                               1e30f, 0.37, scratch.data(), nullptr);
    ASSERT_GE(pick, 0);
    ASSERT_LT(pick, static_cast<std::int32_t>(logits.size()));
    // NaN temperature falls back to greedy.
    EXPECT_EQ(FusedMaskSoftmaxSample(impl, logits.data(), logits.size(),
                                     all.Data(), kNan, 0.5, scratch.data(),
                                     nullptr),
              77);
  }
}

}  // namespace
}  // namespace xgr::support::simd
