// Tests for the builtin SQL grammar: statement coverage, expression forms,
// rejection of malformed statements, and mask-generation integration.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cache/adaptive_cache.h"
#include "cache/mask_generator.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::grammar {
namespace {

std::shared_ptr<const pda::CompiledGrammar> SqlPda() {
  static auto pda = pda::CompiledGrammar::Compile(BuiltinSqlGrammar());
  return pda;
}

bool MatchesSql(const std::string& statement) {
  matcher::GrammarMatcher m(SqlPda());
  return m.AcceptString(statement) && m.CanTerminate();
}

struct SqlCase {
  const char* statement;
  bool valid;
};

class SqlGrammarTest : public ::testing::TestWithParam<SqlCase> {};

TEST_P(SqlGrammarTest, MatchesExpectation) {
  auto [statement, valid] = GetParam();
  EXPECT_EQ(MatchesSql(statement), valid) << statement;
}

INSTANTIATE_TEST_SUITE_P(
    Select, SqlGrammarTest,
    ::testing::Values(
        SqlCase{"SELECT *", true},
        SqlCase{"SELECT * FROM users", true},
        SqlCase{"SELECT * FROM users;", true},
        SqlCase{"SELECT id, name FROM users", true},
        SqlCase{"SELECT DISTINCT city FROM users", true},
        SqlCase{"SELECT id AS user_id FROM users", true},
        SqlCase{"SELECT u.id FROM users AS u", true},
        SqlCase{"SELECT * FROM a JOIN b ON a.id = b.id", true},
        SqlCase{"SELECT * FROM a LEFT JOIN b ON a.id = b.a_id WHERE b.x IS NULL",
                true},
        SqlCase{"SELECT COUNT(*) FROM events", true},
        SqlCase{"SELECT COUNT(DISTINCT user_id) FROM events", true},
        SqlCase{"SELECT city, COUNT(*) FROM users GROUP BY city HAVING COUNT(*) > 10",
                true},
        SqlCase{"SELECT * FROM t ORDER BY created_at DESC LIMIT 10 OFFSET 20",
                true},
        SqlCase{"SELECT name FROM users WHERE age >= 21 AND city = 'Oslo'",
                true},
        SqlCase{"SELECT * FROM t WHERE name LIKE 'A%'", true},
        SqlCase{"SELECT * FROM t WHERE id IN (1, 2, 3)", true},
        SqlCase{"SELECT * FROM t WHERE price BETWEEN 10 AND 20", true},
        SqlCase{"SELECT * FROM t WHERE NOT deleted = TRUE", true},
        SqlCase{"SELECT (a + b) * 2 FROM t", true},
        SqlCase{"SELECT COALESCE(nick, name) FROM users", true},
        SqlCase{"SELECT * FROM t WHERE x = ?", true},
        // Malformed variants.
        SqlCase{"SELECT", false},
        SqlCase{"SELECT FROM users", false},
        SqlCase{"SELECT * FORM users", false},
        SqlCase{"SELECT * FROM users WHERE", false},
        SqlCase{"SELECT * FROM users GROUP BY", false},
        SqlCase{"SELECT * FROM a JOIN b", false},   // JOIN requires ON
        SqlCase{"select * from users", false},      // canonical form: uppercase
        SqlCase{"SELECT  *  FROM users", false}));  // canonical single spaces

INSTANTIATE_TEST_SUITE_P(
    Mutations, SqlGrammarTest,
    ::testing::Values(
        SqlCase{"INSERT INTO users (id, name) VALUES (1, 'Ada')", true},
        SqlCase{"INSERT INTO users (id) VALUES (1), (2), (3)", true},
        SqlCase{"INSERT INTO t (x) VALUES (NULL)", true},
        SqlCase{"UPDATE users SET name = 'Bob' WHERE id = 7", true},
        SqlCase{"UPDATE users SET a = 1, b = b + 1", true},
        SqlCase{"DELETE FROM users WHERE id = 9", true},
        SqlCase{"DELETE FROM users", true},
        SqlCase{"INSERT INTO users VALUES (1)", false},  // column list required
        SqlCase{"UPDATE users WHERE id = 7", false},     // SET required
        SqlCase{"DELETE users WHERE id = 9", false},
        SqlCase{"INSERT INTO users (id) VALUES ()", false}));

INSTANTIATE_TEST_SUITE_P(
    Literals, SqlGrammarTest,
    ::testing::Values(
        SqlCase{"SELECT 'it''s quoted' FROM t", true},  // '' escape
        SqlCase{"SELECT 3.14 FROM t", true},
        SqlCase{"SELECT -5 FROM t", true},
        SqlCase{"SELECT 'unterminated FROM t", false},
        SqlCase{"SELECT 3. FROM t", false}));

TEST(SqlGrammar, JumpForwardCompletesKeywords) {
  // After "DELETE FROM users" + " WHERE ", there is no forced continuation;
  // but right after "DELETE " the grammar forces "FROM ".
  matcher::GrammarMatcher m(SqlPda());
  ASSERT_TRUE(m.AcceptString("DELETE "));
  EXPECT_EQ(m.FindJumpForwardString(), "FROM ");
}

TEST(SqlGrammar, MaskGenerationWalksAStatement) {
  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({3000, 17}));
  auto cache = cache::AdaptiveTokenMaskCache::Build(SqlPda(), info);
  cache::MaskGenerator generator(cache);
  matcher::GrammarMatcher m(SqlPda());

  const std::string statement =
      "SELECT name FROM users WHERE age >= 21 ORDER BY name ASC LIMIT 5";
  tokenizer::TokenTrie trie(*info);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (std::int32_t token : tokenizer::GreedyTokenize(trie, statement)) {
    generator.FillNextTokenBitmask(&m, &mask);
    ASSERT_TRUE(mask.Test(static_cast<std::size_t>(token)))
        << "token '" << info->TokenBytes(token) << "' masked out";
    ASSERT_TRUE(m.AcceptString(info->TokenBytes(token)));
  }
  EXPECT_TRUE(m.CanTerminate());
}

}  // namespace
}  // namespace xgr::grammar
