// Grammar optimizer pass-pipeline tests (grammar/grammar_optimizer.h):
//   (a) per-pass unit tests — each pass produces the expected structural
//       rewrite and preserves the byte-level language (Earley oracle);
//   (b) inlining-cap regressions — the real-reference-count growth projection
//       both inlines what the old `ExprSize(fragment) * 8` heuristic wrongly
//       blocked and blocks the many-reference blowup it wrongly permitted;
//   (c) ~100k-deep expression trees flow through every grammar-layer
//       transform (all walks are explicit-stack iterative, never C++
//       recursion over untrusted nesting depth);
//   (d) the differential suite — for every fig09 task grammar and a set of
//       adversarial grammars, the fully-optimized compile accepts exactly the
//       same byte strings and yields bit-identical per-token masks as the
//       unoptimized compile, along random token- and byte-level walks;
//   (e) pass stats are recorded per pass, threaded into CacheBuildStats, and
//       excluded from serialized artifacts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "grammar/earley.h"
#include "grammar/expr_rewrite.h"
#include "grammar/grammar.h"
#include "grammar/grammar_optimizer.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "serialize/serialize.h"
#include "support/dynamic_bitset.h"
#include "support/logging.h"
#include "support/rng.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr {
namespace {

using grammar::ExprId;
using grammar::ExprType;
using grammar::Grammar;
using grammar::OptimizerOptions;
using grammar::PassStats;
using grammar::RuleId;

// Compile options whose only difference from the default is that every
// grammar-optimizer pass beyond normalization is off (node merging and
// context expansion stay on, so the optimizer is the single variable).
pda::CompileOptions UnoptimizedCompile() {
  pda::CompileOptions o;
  o.rule_inlining = false;
  o.optimizer = OptimizerOptions::AllDisabled();
  return o;
}

// --- (a) per-pass unit tests -------------------------------------------------

TEST(OptimizerPasses, EpsilonRuleSubstitutedAndRemoved) {
  Grammar g;
  RuleId e = g.AddRule("e", g.AddEmpty());
  ExprId body = g.AddSequence(
      {g.AddByteString("a"), g.AddRuleRef(e), g.AddByteString("b")});
  g.SetRootRule(g.AddRule("root", body));

  OptimizerOptions opts = OptimizerOptions::AllDisabled();
  opts.epsilon_elimination = true;
  opts.dead_rule_elimination = true;
  EXPECT_TRUE(OptimizeGrammar(&g, opts));

  EXPECT_EQ(g.FindRule("e"), grammar::kInvalidRule);
  EXPECT_EQ(g.NumRules(), 1);
  EXPECT_TRUE(EarleyAccepts(g, "ab"));
  EXPECT_FALSE(EarleyAccepts(g, "a"));
  EXPECT_FALSE(EarleyAccepts(g, "b"));
}

TEST(OptimizerPasses, UnitRuleChainCollapsed) {
  Grammar g;
  RuleId c = g.AddRule("c", g.AddByteString("x"));
  RuleId b = g.AddRule("b", g.AddRuleRef(c));
  RuleId a = g.AddRule("a", g.AddRuleRef(b));
  g.SetRootRule(
      g.AddRule("root", g.AddSequence({g.AddRuleRef(a), g.AddRuleRef(a)})));

  OptimizerOptions opts = OptimizerOptions::AllDisabled();
  opts.unit_rule_collapse = true;
  opts.dead_rule_elimination = true;
  EXPECT_TRUE(OptimizeGrammar(&g, opts));

  // References to `a` were redirected through the alias chain to `c`; the
  // orphaned aliases are then unreachable.
  EXPECT_EQ(g.FindRule("a"), grammar::kInvalidRule);
  EXPECT_EQ(g.FindRule("b"), grammar::kInvalidRule);
  EXPECT_NE(g.FindRule("c"), grammar::kInvalidRule);
  EXPECT_EQ(g.NumRules(), 2);
  EXPECT_TRUE(EarleyAccepts(g, "xx"));
  EXPECT_FALSE(EarleyAccepts(g, "x"));
}

TEST(OptimizerPasses, AdjacentByteStringsMerged) {
  Grammar g = grammar::ParseEbnfOrThrow(R"(root ::= "ab" "c" [0-9] "d" "e")");
  OptimizerOptions opts = OptimizerOptions::AllDisabled();
  opts.atom_merging = true;
  EXPECT_TRUE(OptimizeGrammar(&g, opts));

  const grammar::Expr& body = g.GetExpr(g.GetRule(g.RootRule()).body);
  ASSERT_EQ(body.type, ExprType::kSequence);
  ASSERT_EQ(body.children.size(), 3u);
  EXPECT_EQ(g.GetExpr(body.children[0]).type, ExprType::kByteString);
  EXPECT_EQ(g.GetExpr(body.children[0]).bytes, "abc");
  EXPECT_EQ(g.GetExpr(body.children[1]).type, ExprType::kCharClass);
  EXPECT_EQ(g.GetExpr(body.children[2]).bytes, "de");
  EXPECT_TRUE(EarleyAccepts(g, "abc5de"));
  EXPECT_FALSE(EarleyAccepts(g, "abcde"));
}

TEST(OptimizerPasses, CharClassAlternatesMerged) {
  // "d" and the two-byte "\xCE\xB2" (U+03B2, β) are single-codepoint
  // alternates; both fold into one normalized character class.
  Grammar g;
  ExprId body = g.AddChoice({g.AddCharClass({{'a', 'c'}}),
                             g.AddByteString("d"),
                             g.AddCharClass({{'x', 'z'}}),
                             g.AddByteString("\xCE\xB2")});
  g.SetRootRule(g.AddRule("root", body));

  OptimizerOptions opts = OptimizerOptions::AllDisabled();
  opts.atom_merging = true;
  EXPECT_TRUE(OptimizeGrammar(&g, opts));

  EXPECT_EQ(g.GetExpr(g.GetRule(g.RootRule()).body).type,
            ExprType::kCharClass);
  for (const char* accepted : {"a", "c", "d", "x", "z", "\xCE\xB2"}) {
    EXPECT_TRUE(EarleyAccepts(g, accepted)) << accepted;
  }
  for (const char* rejected : {"e", "w", "", "ad"}) {
    EXPECT_FALSE(EarleyAccepts(g, rejected)) << rejected;
  }
}

TEST(OptimizerPasses, DeadRulesRemovedAndArenaCompacted) {
  Grammar g;
  RuleId junk = g.DeclareRule("junk");
  g.SetRuleBody(junk, g.AddChoice({g.AddSequence({g.AddCharClass({{'b', 'z'}}),
                                                  g.AddRuleRef(junk)}),
                                   g.AddByteString("b")}));
  g.SetRootRule(g.AddRule("root", g.AddByteString("a")));
  // Stranded exprs (never referenced by any rule) must also be compacted.
  g.AddByteString("stranded");
  g.AddCharClass({{'0', '9'}});

  const std::int32_t exprs_before = g.NumExprs();
  const std::size_t arena_before = g.ArenaBytes();
  OptimizerOptions opts = OptimizerOptions::AllDisabled();
  opts.dead_rule_elimination = true;
  EXPECT_TRUE(OptimizeGrammar(&g, opts));

  EXPECT_EQ(g.NumRules(), 1);
  EXPECT_EQ(g.FindRule("junk"), grammar::kInvalidRule);
  EXPECT_LT(g.NumExprs(), exprs_before);
  EXPECT_LT(g.ArenaBytes(), arena_before);
  EXPECT_TRUE(EarleyAccepts(g, "a"));
}

TEST(OptimizerPasses, FsaMinimizeShrinksRedundantRegexBody) {
  // Both alternates denote a+; the minimal DFA has 2 states and re-emits as
  // fewer atoms than the redundant two-alternate source body.
  Grammar g = grammar::ParseEbnfOrThrow(R"(root ::= "a" "a"* | "a"* "a")");
  const std::int32_t atoms_before = g.ExprSize(g.GetRule(g.RootRule()).body);

  OptimizerOptions opts = OptimizerOptions::AllDisabled();
  opts.fsa_minimization = true;
  opts.dead_rule_elimination = true;
  EXPECT_TRUE(OptimizeGrammar(&g, opts));

  EXPECT_LT(g.ExprSize(g.GetRule(g.RootRule()).body), atoms_before);
  EXPECT_FALSE(EarleyAccepts(g, ""));
  EXPECT_TRUE(EarleyAccepts(g, "a"));
  EXPECT_TRUE(EarleyAccepts(g, "aa"));
  EXPECT_TRUE(EarleyAccepts(g, "aaaa"));
  EXPECT_FALSE(EarleyAccepts(g, "ab"));
}

TEST(OptimizerPasses, FsaMinimizeSkipsRecursiveAndOversizedRules) {
  // Recursive body: not recursion-free, must keep its body verbatim.
  Grammar recursive =
      grammar::ParseEbnfOrThrow(R"EBNF(root ::= "(" root ")" | "x")EBNF");
  std::string before = recursive.ToString();
  OptimizerOptions opts = OptimizerOptions::AllDisabled();
  opts.fsa_minimization = true;
  OptimizeGrammar(&recursive, opts);
  EXPECT_EQ(recursive.ToString(), before);

  // Source-size guard: a body over fsa_max_source_atoms is never lowered.
  Grammar oversized = grammar::ParseEbnfOrThrow(R"(root ::= "a" "a"* | "a"* "a")");
  before = oversized.ToString();
  opts.fsa_max_source_atoms = 2;
  OptimizeGrammar(&oversized, opts);
  EXPECT_EQ(oversized.ToString(), before);
}

// --- (b) inlining-cap regressions -------------------------------------------

Grammar FragmentGrammar(int fragment_atoms, int references) {
  Grammar g;
  std::vector<ExprId> atoms;
  for (int i = 0; i < fragment_atoms; ++i) {
    atoms.push_back(g.AddByteString(std::string(1, static_cast<char>('a' + i))));
  }
  RuleId frag = g.AddRule("frag", g.AddSequence(std::move(atoms)));
  std::vector<ExprId> refs;
  for (int i = 0; i < references; ++i) refs.push_back(g.AddRuleRef(frag));
  refs.push_back(g.AddByteString("!"));
  g.SetRootRule(g.AddRule("root", g.AddSequence(std::move(refs))));
  return g;
}

TEST(InliningCap, SingleReferenceOfLargeFragmentInlines) {
  // The 20-literal fragment body measures 21 atoms (ExprSize counts the
  // sequence node too) and is referenced ONCE from a 3-atom body: real
  // growth is 3 + 1*(21-1) = 23 atoms, comfortably under the 60-atom cap.
  // The old `ExprSize(fragment) * 8` heuristic projected 3 + 168 > 60 and
  // wrongly blocked this inline.
  Grammar g = FragmentGrammar(/*fragment_atoms=*/20, /*references=*/1);
  grammar::InlineOptions opts;
  opts.max_inlinee_atoms = 24;
  opts.max_result_atoms = 60;
  EXPECT_EQ(InlineFragmentRules(&g, opts), 1);
  EXPECT_EQ(g.FindRule("frag"), grammar::kInvalidRule);
  EXPECT_EQ(g.NumRules(), 1);
  EXPECT_TRUE(EarleyAccepts(g, "abcdefghijklmnopqrst!"));
}

TEST(InliningCap, ManyReferencesOfSmallFragmentBlocked) {
  // The 10-literal fragment measures 11 atoms and is referenced 16 times
  // from an 18-atom body: real growth is 18 + 16*(11-1) = 178 atoms, over
  // the 120-atom cap, so the inline must be refused. The old heuristic
  // projected 18 + 11*8 = 106 <= 120 and wrongly permitted a 178-atom
  // blowup.
  Grammar g = FragmentGrammar(/*fragment_atoms=*/10, /*references=*/16);
  const std::int32_t body_atoms = g.ExprSize(g.GetRule(g.RootRule()).body);
  ASSERT_EQ(body_atoms, 18);
  grammar::InlineOptions opts;
  opts.max_inlinee_atoms = 24;
  opts.max_result_atoms = 120;
  EXPECT_EQ(InlineFragmentRules(&g, opts), 0);
  EXPECT_NE(g.FindRule("frag"), grammar::kInvalidRule);
  EXPECT_EQ(g.ExprSize(g.GetRule(g.RootRule()).body), body_atoms);
}

// --- (c) ~100k-deep expression trees ----------------------------------------

TEST(DeepNesting, HundredThousandDeepBodiesTransformIteratively) {
  // Alternating sequence/choice nesting so normalization cannot flatten the
  // spine away: every grammar-layer walk must traverse the full depth
  // without touching the C++ call stack. (The PDA compiler is deliberately
  // NOT invoked here; this exercises the grammar-layer transforms only.)
  constexpr int kDepth = 100000;
  Grammar g;
  RuleId leaf = g.AddRule("leaf", g.AddByteString("x"));
  ExprId node = g.AddRuleRef(leaf);
  for (int i = 0; i < kDepth; ++i) {
    ExprId lit = g.AddByteString("a");
    node = (i % 2 == 0) ? g.AddSequence({node, lit})
                        : g.AddChoice({node, lit});
  }
  g.SetRootRule(g.AddRule("root", node));
  g.Validate();

  EXPECT_GE(g.ExprSize(node), kDepth);
  auto counts = grammar::detail::CountRuleRefs(g, node);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at(leaf), 1);

  ExprId copy = g.CopyExpr(node);
  EXPECT_NE(copy, node);
  EXPECT_EQ(g.ExprSize(copy), g.ExprSize(node));

  ExprId substituted = grammar::detail::SubstituteRule(
      &g, node, leaf, g.GetRule(leaf).body);
  EXPECT_NE(substituted, node);
  ASSERT_TRUE(grammar::detail::CountRuleRefs(g, substituted).empty());

  // The full standard pipeline (fsa-minimize skips the oversized/recursive
  // bodies via its guards) and the cross-grammar copier both walk the spine.
  std::vector<PassStats> stats;
  OptimizeGrammar(&g, OptimizerOptions{}, &stats);
  EXPECT_EQ(stats.size(), 7u);
  Grammar fresh;
  fresh.SetRootRule(fresh.AddRule("root", fresh.AddByteString("y")));
  RuleId imported = ImportRules(&fresh, g, "deep_");
  EXPECT_NE(imported, grammar::kInvalidRule);
  fresh.Validate();
}

// --- (e) pass stats ----------------------------------------------------------

TEST(PassPipelineStats, RowsRecordedPerPassInOrder) {
  Grammar g = grammar::BuiltinJsonGrammar();
  std::vector<PassStats> stats;
  OptimizeGrammar(&g, OptimizerOptions{}, &stats);

  const std::vector<std::string> expected = {
      "normalize", "eps-elim",     "unit-collapse", "inline",
      "atom-merge", "fsa-minimize", "dead-compact"};
  ASSERT_EQ(stats.size(), expected.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].name, expected[i]);
    EXPECT_GE(stats[i].wall_us, 0);
    EXPECT_GT(stats[i].rules_before, 0);
    EXPECT_GT(stats[i].exprs_before, 0);
    if (i > 0) {
      // Each pass starts from the previous pass's output.
      EXPECT_EQ(stats[i].rules_before, stats[i - 1].rules_after);
      EXPECT_EQ(stats[i].exprs_before, stats[i - 1].exprs_after);
      EXPECT_EQ(stats[i].arena_bytes_before, stats[i - 1].arena_bytes_after);
    }
    if (!stats[i].changed) {
      EXPECT_EQ(stats[i].rules_before, stats[i].rules_after);
      EXPECT_EQ(stats[i].exprs_before, stats[i].exprs_after);
    }
  }
  // Disabled passes contribute no rows.
  Grammar g2 = grammar::BuiltinJsonGrammar();
  stats.clear();
  OptimizeGrammar(&g2, OptimizerOptions::AllDisabled(), &stats);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "normalize");
}

TEST(PassPipelineStats, ThreadedIntoCacheBuildButNotSerialized) {
  auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({1000, 11}));
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  EXPECT_FALSE(pda->PassStats().empty());
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  EXPECT_FALSE(cache->Stats().optimizer_passes.empty());
  EXPECT_EQ(cache->Stats().optimizer_passes.size(), pda->PassStats().size());

  // Stats are measurements, not content: artifacts round-trip without them
  // and stay bit-identical across independent compiles.
  std::string bytes = serialize::SerializeEngineArtifact(*cache);
  auto loaded = serialize::DeserializeEngineArtifact(bytes, info);
  EXPECT_TRUE(loaded->Stats().optimizer_passes.empty());
  auto pda2 = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto cache2 = cache::AdaptiveTokenMaskCache::Build(pda2, info);
  EXPECT_EQ(serialize::SerializeEngineArtifact(*cache2), bytes);
}

// --- (d) differential suite: optimized vs unoptimized ------------------------

// fig09 task grammars + adversarial shapes targeting individual passes.
const char* const kDifferentialGrammars[] = {
    "json", "xml", "python", "sql",
    "expr", "eps-units", "regex-redundant", "utf8-choice", "ambiguous",
};

Grammar DifferentialGrammar(const std::string& name) {
  if (name == "json") return grammar::BuiltinJsonGrammar();
  if (name == "xml") return grammar::BuiltinXmlGrammar();
  if (name == "python") return grammar::BuiltinPythonDslGrammar();
  if (name == "sql") return grammar::BuiltinSqlGrammar();
  if (name == "expr") {
    return grammar::ParseEbnfOrThrow(R"EBNF(
root ::= term (("+" | "-") term)*
term ::= factor (("*" | "/") factor)*
factor ::= [0-9]+ | "(" root ")"
)EBNF");
  }
  if (name == "eps-units") {
    // Epsilon rules + a unit-rule alias chain + an inlinable fragment.
    Grammar g;
    RuleId e = g.AddRule("e", g.AddEmpty());
    RuleId digits = g.AddRule("digits", g.AddPlus(g.AddCharClass({{'0', '9'}})));
    RuleId v = g.AddRule("v", g.AddRuleRef(digits));
    RuleId u = g.AddRule("u", g.AddRuleRef(v));
    ExprId item = g.AddChoice({g.AddRuleRef(u), g.AddByteString("_")});
    g.SetRootRule(g.AddRule(
        "root", g.AddSequence({g.AddByteString("n"), g.AddRuleRef(e),
                               g.AddRuleRef(u), g.AddStar(item),
                               g.AddRuleRef(e)})));
    return g;
  }
  if (name == "regex-redundant") {
    // Heavily redundant recursion-free alternates: fsa-minimize fodder.
    return grammar::ParseEbnfOrThrow(
        R"(root ::= ("ab" | "a" "b" | "abab" | "ab" "ab")* "#")");
  }
  if (name == "utf8-choice") {
    // Multi-byte single-codepoint alternates exercise the UTF-8 merge path
    // and high-byte mask structure.
    Grammar g;
    ExprId alt = g.AddChoice({g.AddByteString("\xCE\xB1"),
                              g.AddByteString("\xCE\xB2"),
                              g.AddCharClass({{'a', 'z'}})});
    g.SetRootRule(g.AddRule("root", g.AddPlus(alt)));
    return g;
  }
  if (name == "ambiguous") {
    // (a|aa)* is ambiguous AND language-equal to a*: fsa-minimize legally
    // replaces the whole body, so masks must stay identical while the
    // derivation structure changes completely.
    return grammar::ParseEbnfOrThrow(R"(root ::= ("a" | "a" "a")* "!")");
  }
  XGR_CHECK(false) << name;
  XGR_UNREACHABLE();
}

class OptimizedVsUnoptimized : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizedVsUnoptimized, PerTokenMasksBitIdentical) {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({1200, 11}));
  auto pda_opt =
      pda::CompiledGrammar::Compile(DifferentialGrammar(GetParam()));
  auto pda_unopt = pda::CompiledGrammar::Compile(DifferentialGrammar(GetParam()),
                                                 UnoptimizedCompile());
  auto cache_opt = cache::AdaptiveTokenMaskCache::Build(pda_opt, info);
  auto cache_unopt = cache::AdaptiveTokenMaskCache::Build(pda_unopt, info);

  baselines::XGrammarDecoder opt(cache_opt);
  baselines::XGrammarDecoder unopt(cache_unopt);
  Rng rng(0x0971ull ^ std::string(GetParam()).size());
  DynamicBitset opt_mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset unopt_mask(static_cast<std::size_t>(info->VocabSize()));

  for (int step = 0; step < 30; ++step) {
    opt.FillNextTokenBitmask(&opt_mask);
    unopt.FillNextTokenBitmask(&unopt_mask);
    std::vector<std::int32_t> allowed;
    for (std::int32_t id = 0; id < info->VocabSize(); ++id) {
      ASSERT_EQ(opt_mask.Test(static_cast<std::size_t>(id)),
                unopt_mask.Test(static_cast<std::size_t>(id)))
          << "grammar=" << GetParam() << " step=" << step << " token=" << id
          << " bytes='" << info->TokenBytes(id) << "'";
      if (opt_mask.Test(static_cast<std::size_t>(id)) && id != info->EosId()) {
        allowed.push_back(id);
      }
    }
    ASSERT_EQ(opt.CanTerminate(), unopt.CanTerminate()) << "step=" << step;
    if (allowed.empty()) break;
    std::int32_t pick =
        allowed[rng.NextBounded(static_cast<std::uint64_t>(allowed.size()))];
    ASSERT_TRUE(opt.AcceptToken(pick));
    ASSERT_TRUE(unopt.AcceptToken(pick));
  }
}

TEST_P(OptimizedVsUnoptimized, ByteLanguageIdentical) {
  auto pda_opt =
      pda::CompiledGrammar::Compile(DifferentialGrammar(GetParam()));
  auto pda_unopt = pda::CompiledGrammar::Compile(DifferentialGrammar(GetParam()),
                                                 UnoptimizedCompile());
  matcher::GrammarMatcher opt(pda_opt);
  matcher::GrammarMatcher unopt(pda_unopt);

  Rng rng(0xB17E5ull ^ std::string(GetParam()).size());
  for (int step = 0; step < 25; ++step) {
    // Every single-byte continuation must be accepted by both or neither.
    std::vector<std::uint8_t> viable;
    for (int b = 0; b < 256; ++b) {
      std::string probe(1, static_cast<char>(b));
      bool opt_ok = opt.CanAcceptString(probe);
      ASSERT_EQ(opt_ok, unopt.CanAcceptString(probe))
          << "grammar=" << GetParam() << " step=" << step << " byte=" << b;
      if (opt_ok) viable.push_back(static_cast<std::uint8_t>(b));
    }
    ASSERT_EQ(opt.CanTerminate(), unopt.CanTerminate()) << "step=" << step;
    if (viable.empty()) break;
    std::uint8_t next =
        viable[rng.NextBounded(static_cast<std::uint64_t>(viable.size()))];
    ASSERT_TRUE(opt.AcceptByte(next));
    ASSERT_TRUE(unopt.AcceptByte(next));
  }
}

INSTANTIATE_TEST_SUITE_P(Grammars, OptimizedVsUnoptimized,
                         ::testing::ValuesIn(kDifferentialGrammars));

}  // namespace
}  // namespace xgr
