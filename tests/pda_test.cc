// Tests for PDA compilation: optimization-pass effects, node/rule ownership,
// context expansion automata (both the paper's Algorithm 2 and the spliced
// global variant), and equivalence between optimized and unoptimized
// automata.
#include <gtest/gtest.h>

#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"

namespace xgr::pda {
namespace {

using grammar::BuiltinJsonGrammar;

TEST(Compile, OptionsReduceAutomatonSize) {
  grammar::Grammar g = BuiltinJsonGrammar();
  auto raw = CompiledGrammar::Compile(g, CompileOptions::AllDisabled());
  CompileOptions merged_only = CompileOptions::AllDisabled();
  merged_only.node_merging = true;
  auto merged = CompiledGrammar::Compile(g, merged_only);
  auto full = CompiledGrammar::Compile(g);
  EXPECT_LE(merged->NumNodes(), raw->NumNodes());
  // Inlining eliminates fragment rules entirely.
  EXPECT_LT(full->NumRules(), raw->NumRules());
}

TEST(Compile, NodeRuleAssignmentCoversEverything) {
  auto pda = CompiledGrammar::Compile(BuiltinJsonGrammar());
  for (std::int32_t n = 0; n < pda->NumNodes(); ++n) {
    grammar::RuleId rule = pda->NodeRule(n);
    ASSERT_GE(rule, 0);
    ASSERT_LT(rule, pda->NumRules());
  }
  // Every rule's start node belongs to that rule.
  for (grammar::RuleId r = 0; r < pda->NumRules(); ++r) {
    EXPECT_EQ(pda->NodeRule(pda->RuleStartNode(r)), r);
  }
}

// Property: all four optimization configurations accept exactly the same
// strings.
class OptimizationEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizationEquivalenceTest, ConfigurationsAgreeOnDocumentsAndMutations) {
  grammar::Grammar g = BuiltinJsonGrammar();
  std::vector<std::shared_ptr<const CompiledGrammar>> variants;
  variants.push_back(CompiledGrammar::Compile(g, CompileOptions::AllDisabled()));
  {
    CompileOptions o = CompileOptions::AllDisabled();
    o.node_merging = true;
    variants.push_back(CompiledGrammar::Compile(g, o));
    o.rule_inlining = true;
    variants.push_back(CompiledGrammar::Compile(g, o));
    o.context_expansion = true;
    variants.push_back(CompiledGrammar::Compile(g, o));
  }
  auto seed = static_cast<std::uint64_t>(GetParam());
  auto docs = datasets::GenerateJsonDocuments(2, seed + 1700);
  std::vector<std::string> probes = docs;
  probes.push_back(docs[0] + "x");
  probes.push_back(docs[0].substr(0, docs[0].size() / 2));
  probes.push_back("{\"broken\":}");
  for (const std::string& probe : probes) {
    int reference = -1;
    for (const auto& pda : variants) {
      matcher::GrammarMatcher m(pda);
      int accepted = m.AcceptString(probe) && m.CanTerminate() ? 1 : 0;
      if (reference == -1) {
        reference = accepted;
      } else {
        EXPECT_EQ(accepted, reference) << probe;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizationEquivalenceTest, ::testing::Range(0, 8));

// --- Paper's Algorithm 2 (single-rule extraction) -------------------------------

TEST(ContextExpansion, PaperAlgorithmExtractsFollowSets) {
  // array ::= "[" item ("," item)* "]": after `item` only "," or "]" follow.
  grammar::Grammar g = grammar::ParseEbnfOrThrow(R"EB(
    root ::= "[" item ("," item)* "]"
    item ::= [a-z]+
  )EB");
  CompileOptions options = CompileOptions::AllDisabled();  // keep `item` a rule
  auto pda = CompiledGrammar::Compile(g, options);
  grammar::RuleId item_rule = pda->SourceGrammar().FindRule("item");
  ASSERT_NE(item_rule, grammar::kInvalidRule);
  std::vector<std::int32_t> starts;
  for (grammar::RuleId r = 0; r < pda->NumRules(); ++r) {
    starts.push_back(pda->RuleStartNode(r));
  }
  fsa::Fsa ctx = ExtractContextFsa(pda->Automaton(), starts, item_rule);
  EXPECT_TRUE(fsa::FsaAccepts(ctx, ","));
  EXPECT_TRUE(fsa::FsaAccepts(ctx, "]"));
  EXPECT_FALSE(fsa::FsaAcceptsPrefix(ctx, "x"));
  // "," reaches a rule-ref frontier (the next item): it is final there, and
  // nothing beyond it is visible.
  EXPECT_FALSE(fsa::FsaAcceptsPrefix(ctx, ",,"));
}

TEST(ContextExpansion, UnreferencedRuleHasEmptyContext) {
  grammar::Grammar g = grammar::ParseEbnfOrThrow(R"(root ::= "a")");
  auto pda = CompiledGrammar::Compile(g, CompileOptions::AllDisabled());
  std::vector<std::int32_t> starts{pda->RuleStartNode(0)};
  fsa::Fsa ctx = ExtractContextFsa(pda->Automaton(), starts, pda->RootRule());
  // Empty language: no string (not even "") is accepted.
  EXPECT_FALSE(fsa::FsaAccepts(ctx, ""));
  EXPECT_FALSE(fsa::FsaAcceptsPrefix(ctx, "a"));
}

// --- Spliced global context automaton ----------------------------------------------

TEST(ContextExpansion, GlobalAutomatonSplicesThroughParents) {
  // After `leaf` completes inside `mid`, and `mid` completes inside root,
  // the suffix language of `leaf` must include root's continuation ")".
  grammar::Grammar g = grammar::ParseEbnfOrThrow(R"EB(
    root ::= "(" mid ")"
    mid ::= "[" leaf "]"
    leaf ::= [a-z]
  )EB");
  auto pda = CompiledGrammar::Compile(g, [] {
    CompileOptions o = CompileOptions::AllDisabled();
    o.context_expansion = true;
    return o;
  }());
  const fsa::Fsa* ctx = pda->ContextAutomaton();
  ASSERT_NE(ctx, nullptr);
  grammar::RuleId leaf = pda->SourceGrammar().FindRule("leaf");
  ASSERT_NE(leaf, grammar::kInvalidRule);
  fsa::NfaRunner runner(*ctx);
  runner.SetStates({pda->ContextStart(leaf)});
  // "]" then ")" both legal after leaf; "x" is not.
  EXPECT_TRUE(runner.Advance(']'));
  EXPECT_TRUE(runner.Advance(')'));
  fsa::NfaRunner runner2(*ctx);
  runner2.SetStates({pda->ContextStart(leaf)});
  EXPECT_FALSE(runner2.Advance('x'));
  // After the full continuation "])" the root is done: nothing can follow.
  fsa::NfaRunner runner3(*ctx);
  runner3.SetStates({pda->ContextStart(leaf)});
  EXPECT_TRUE(runner3.Advance(']'));
  EXPECT_TRUE(runner3.Advance(')'));
  EXPECT_FALSE(runner3.Advance(')'));
}

TEST(ContextExpansion, RootContinuationIsDead) {
  auto pda = CompiledGrammar::Compile(BuiltinJsonGrammar());
  const fsa::Fsa* ctx = pda->ContextAutomaton();
  ASSERT_NE(ctx, nullptr);
  fsa::NfaRunner runner(*ctx);
  runner.SetStates({pda->ContextStart(pda->RootRule())});
  EXPECT_FALSE(runner.InAcceptingState());
  EXPECT_FALSE(runner.Advance('x'));
}

TEST(ContextExpansion, DisabledMeansNoAutomaton) {
  CompileOptions options;
  options.context_expansion = false;
  auto pda = CompiledGrammar::Compile(BuiltinJsonGrammar(), options);
  EXPECT_EQ(pda->ContextAutomaton(), nullptr);
}

TEST(Compile, StatsStringMentionsSizes) {
  auto pda = CompiledGrammar::Compile(BuiltinJsonGrammar());
  std::string stats = pda->StatsString();
  EXPECT_NE(stats.find("rules="), std::string::npos);
  EXPECT_NE(stats.find("nodes="), std::string::npos);
  EXPECT_NE(stats.find("ctx_fsa_states="), std::string::npos);
}

TEST(Compile, LeftRecursionDetectedAtMatchTime) {
  grammar::Grammar g = grammar::ParseEbnfOrThrow(R"(
    root ::= expr
    expr ::= expr "+" [0-9] | [0-9]
  )");
  auto pda = CompiledGrammar::Compile(g);
  // Left recursion pushes unboundedly during the very first closure (at
  // matcher construction); the budget check fires rather than hanging.
  EXPECT_THROW(matcher::GrammarMatcher m(pda), CheckError);
}

}  // namespace
}  // namespace xgr::pda
