// Tests for the zero-allocation decode hot path (MaskWorkspace, word-level
// Algorithm-1 merge, scratch-matcher reuse):
//   * differential: the workspace + word-merge path must produce bit-identical
//     masks vs FillBitmaskBruteForce AND vs a faithful reimplementation of the
//     pre-refactor sorted-list merge, across multi-stack (ambiguous) grammars,
//     all three StorageKinds, and start/terminated states;
//   * allocation: steady-state FillNextTokenBitmask performs zero heap
//     allocations, demonstrated by counting global operator new (alloc_hook.h
//     is included in exactly this translation unit of the binary);
//   * scratch reuse: one scratch-matcher construction per decoder lifetime,
//     reseeds thereafter — surviving decoder Reset().
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>

#include "baselines/xgrammar_decoder.h"
#include "cache/mask_generator.h"
#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "support/alloc_hook.h"
#include "support/string_utils.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"

namespace xgr::cache {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer(std::int32_t size = 3000,
                                                              std::uint64_t seed = 17) {
  static std::map<std::pair<std::int32_t, std::uint64_t>,
                  std::shared_ptr<const tokenizer::TokenizerInfo>>
      cache;
  auto key = std::make_pair(size, seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_shared<tokenizer::TokenizerInfo>(
                                tokenizer::BuildSyntheticVocab({size, seed})))
             .first;
  }
  return it->second;
}

// --- Reference: the pre-refactor sorted-list Algorithm-1 merge ---------------
// Faithful reimplementation of the list-based merge this PR replaced
// (sorted-vector set algebra, per-stack chain-copied scratch matchers,
// ToIndexList materialization). Kept here as the semantic oracle.

std::vector<std::int32_t> IntersectSorted(const std::vector<std::int32_t>& a,
                                          const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<std::int32_t> UnionSorted(const std::vector<std::int32_t>& a,
                                      const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<std::int32_t> DifferenceSorted(const std::vector<std::int32_t>& a,
                                           const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<std::int32_t> ReferenceCheckContextDependent(
    const AdaptiveTokenMaskCache& cache, matcher::GrammarMatcher* matcher,
    std::int32_t stack_id, const NodeMaskEntry& entry) {
  std::vector<std::int32_t> accepted;
  if (entry.context_dependent.empty()) return accepted;
  const tokenizer::TokenizerInfo& tokenizer = cache.Tokenizer();
  // Pre-refactor behavior: a fresh scratch matcher per stack, frame chain
  // copied into a private pool.
  matcher::GrammarMatcher scratch(cache.PdaShared(), matcher->Pool(), stack_id);
  std::string_view previous;
  for (std::int32_t token_id : entry.context_dependent) {
    const std::string& token = tokenizer.TokenBytes(token_id);
    auto common = static_cast<std::int32_t>(CommonPrefixLength(previous, token));
    scratch.RollbackToDepth(std::min(common, scratch.NumConsumedBytes()));
    bool ok = true;
    for (std::size_t j = static_cast<std::size_t>(scratch.NumConsumedBytes());
         j < token.size(); ++j) {
      if (!scratch.AcceptByte(static_cast<std::uint8_t>(token[j]))) {
        ok = false;
        break;
      }
    }
    if (ok) accepted.push_back(token_id);
    previous = token;
  }
  std::sort(accepted.begin(), accepted.end());
  return accepted;
}

void ReferenceFillNextTokenBitmask(const AdaptiveTokenMaskCache& cache,
                                   matcher::GrammarMatcher* matcher,
                                   DynamicBitset* mask) {
  const tokenizer::TokenizerInfo& tokenizer = cache.Tokenizer();
  const std::vector<std::int32_t> stacks = matcher->MaskStacks();
  auto apply_special = [&] {
    for (std::int32_t id : tokenizer.Vocab().special_ids) {
      mask->Reset(static_cast<std::size_t>(id));
    }
    if (matcher->CanTerminate() && tokenizer.EosId() >= 0) {
      mask->Set(static_cast<std::size_t>(tokenizer.EosId()));
    }
  };
  if (stacks.empty()) {
    mask->ResetAll();
    apply_special();
    return;
  }
  std::optional<std::vector<std::int32_t>> partial_rej;  // nullopt = V
  std::vector<std::int32_t> partial_acc;
  bool single = stacks.size() == 1;
  for (std::int32_t stack_id : stacks) {
    std::int32_t top = matcher->Pool().TopNode(stack_id);
    const NodeMaskEntry& entry = cache.Entry(top);
    std::vector<std::int32_t> ctx_accepted =
        ReferenceCheckContextDependent(cache, matcher, stack_id, entry);
    if (single) {
      // Pre-refactor single-stack fast path, written straight into the mask.
      switch (entry.kind) {
        case StorageKind::kAcceptHeavy:
          mask->SetAll();
          for (std::int32_t id : entry.stored) mask->Reset(static_cast<std::size_t>(id));
          for (std::int32_t id : entry.context_dependent) {
            mask->Reset(static_cast<std::size_t>(id));
          }
          for (std::int32_t id : ctx_accepted) mask->Set(static_cast<std::size_t>(id));
          break;
        case StorageKind::kRejectHeavy:
          mask->ResetAll();
          for (std::int32_t id : entry.stored) mask->Set(static_cast<std::size_t>(id));
          for (std::int32_t id : ctx_accepted) mask->Set(static_cast<std::size_t>(id));
          break;
        case StorageKind::kBitset: {
          std::copy(entry.accepted_bits.Data(),
                    entry.accepted_bits.Data() + entry.accepted_bits.WordCount(),
                    mask->MutableData());
          for (std::int32_t id : ctx_accepted) mask->Set(static_cast<std::size_t>(id));
          break;
        }
      }
      apply_special();
      return;
    }
    if (entry.kind == StorageKind::kAcceptHeavy) {
      std::vector<std::int32_t> ctx_sorted = entry.context_dependent.ToVector();
      std::sort(ctx_sorted.begin(), ctx_sorted.end());
      std::vector<std::int32_t> rejected = UnionSorted(
          entry.stored.ToVector(), DifferenceSorted(ctx_sorted, ctx_accepted));
      partial_rej = partial_rej.has_value() ? IntersectSorted(*partial_rej, rejected)
                                            : std::move(rejected);
    } else {
      std::vector<std::int32_t> accepted =
          entry.kind == StorageKind::kBitset ? entry.accepted_bits.ToIndexList()
                                             : entry.stored.ToVector();
      partial_acc = UnionSorted(partial_acc, UnionSorted(accepted, ctx_accepted));
    }
  }
  if (!partial_rej.has_value()) {
    mask->ResetAll();
    for (std::int32_t id : partial_acc) mask->Set(static_cast<std::size_t>(id));
  } else {
    mask->SetAll();
    for (std::int32_t id : DifferenceSorted(*partial_rej, partial_acc)) {
      mask->Reset(static_cast<std::size_t>(id));
    }
  }
  apply_special();
}

// --- Differential driver -----------------------------------------------------

// At every byte prefix of `document` (including the terminated end state),
// the workspace path, the brute-force oracle, and the pre-refactor list merge
// must agree bit-for-bit.
void ExpectThreeWayEquivalenceAlong(const grammar::Grammar& g,
                                    const std::string& document,
                                    std::int32_t vocab_size, std::uint64_t vocab_seed,
                                    const AdaptiveCacheOptions& cache_options = {},
                                    const pda::CompileOptions& options = {}) {
  auto pda = pda::CompiledGrammar::Compile(g, options);
  auto info = TestTokenizer(vocab_size, vocab_seed);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info, cache_options);
  MaskGenerator generator(cache);
  matcher::GrammarMatcher m(pda);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset brute(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset reference(static_cast<std::size_t>(info->VocabSize()));
  for (std::size_t i = 0;; ++i) {
    generator.FillNextTokenBitmask(&m, &mask);
    FillBitmaskBruteForce(&m, *info, &brute);
    ReferenceFillNextTokenBitmask(*cache, &m, &reference);
    ASSERT_TRUE(mask == brute)
        << "brute mismatch at prefix '" << document.substr(0, i)
        << "' cached=" << mask.Count() << " brute=" << brute.Count();
    ASSERT_TRUE(mask == reference)
        << "list-merge mismatch at prefix '" << document.substr(0, i)
        << "' cached=" << mask.Count() << " reference=" << reference.Count();
    if (i >= document.size()) break;
    ASSERT_TRUE(m.AcceptByte(static_cast<std::uint8_t>(document[i])));
  }
}

grammar::Grammar AmbiguousGrammar() {
  // Both alternatives share the prefix "aa": two parallel stacks stay alive
  // and the masks must merge (Algorithm 1 multi-stack path).
  return grammar::ParseEbnfOrThrow(R"(
    root ::= item*
    item ::= "aa" "x" | "a" "a" "y"
  )");
}

TEST(WordLevelMerge, MatchesOraclesOnJsonDocuments) {
  auto docs = datasets::GenerateJsonDocuments(2, 101);
  for (const std::string& doc : docs) {
    ExpectThreeWayEquivalenceAlong(grammar::BuiltinJsonGrammar(), doc, 3000, 17);
  }
}

TEST(WordLevelMerge, MatchesOraclesOnAmbiguousMultiStackGrammar) {
  auto pda = pda::CompiledGrammar::Compile(AmbiguousGrammar(),
                                           pda::CompileOptions::AllDisabled());
  {
    // Confirm the document actually exercises the multi-stack merge.
    matcher::GrammarMatcher probe(pda);
    ASSERT_TRUE(probe.AcceptString("aa"));
    ASSERT_GE(probe.ClosedStacks().size(), 2u);
  }
  ExpectThreeWayEquivalenceAlong(AmbiguousGrammar(), "aaxaayaax", 1200, 31, {},
                                 pda::CompileOptions::AllDisabled());
}

TEST(WordLevelMerge, MatchesOraclesUnderForcedBitsetStorage) {
  // adaptive_storage=false stores every entry as StorageKind::kBitset, so the
  // merge's bitset branch (word-wise OR of entry bitsets) runs at every step.
  AdaptiveCacheOptions forced;
  forced.adaptive_storage = false;
  auto docs = datasets::GenerateJsonDocuments(1, 44);
  ExpectThreeWayEquivalenceAlong(grammar::BuiltinJsonGrammar(), docs[0], 1500, 23,
                                 forced);
  ExpectThreeWayEquivalenceAlong(AmbiguousGrammar(), "aayaax", 1200, 31, forced,
                                 pda::CompileOptions::AllDisabled());
}

TEST(WordLevelMerge, StorageKindCoverage) {
  // The JSON grammar at this vocab exercises all three storage kinds, so the
  // differential runs above covered each branch; assert that holds so the
  // coverage cannot silently rot if storage selection changes.
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(16000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  const CacheBuildStats& s = cache->Stats();
  EXPECT_GT(s.storage_kind_counts[static_cast<int>(StorageKind::kAcceptHeavy)], 0);
  EXPECT_GT(s.storage_kind_counts[static_cast<int>(StorageKind::kRejectHeavy)], 0);
  auto docs = datasets::GenerateJsonDocuments(1, 7);
  ExpectThreeWayEquivalenceAlong(grammar::BuiltinJsonGrammar(), docs[0], 16000, 17);
}

TEST(WordLevelMerge, TerminatedStateEnablesExactlyEos) {
  grammar::Grammar g = grammar::ParseEbnfOrThrow(R"(root ::= "ab")");
  auto pda = pda::CompiledGrammar::Compile(g);
  auto info = TestTokenizer(1200, 31);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  MaskGenerator generator(cache);
  matcher::GrammarMatcher m(pda);
  ASSERT_TRUE(m.AcceptString("ab"));
  ASSERT_TRUE(m.CanTerminate());
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  generator.FillNextTokenBitmask(&m, &mask);
  DynamicBitset brute(static_cast<std::size_t>(info->VocabSize()));
  FillBitmaskBruteForce(&m, *info, &brute);
  EXPECT_TRUE(mask == brute);
  EXPECT_TRUE(mask.Test(static_cast<std::size_t>(info->EosId())));
}

// --- Zero-allocation steady state --------------------------------------------

// Drives `decoder` through `document` once (returns the number of mask calls
// made); with `count_allocs` set, asserts every FillNextTokenBitmask after
// warm-up allocates nothing.
std::int64_t DriveDocument(baselines::XGrammarDecoder* decoder,
                           const tokenizer::TokenTrie& trie,
                           const std::string& document, DynamicBitset* mask,
                           bool count_allocs) {
  std::int64_t steps = 0;
  for (std::int32_t token : tokenizer::GreedyTokenize(trie, document)) {
    std::int64_t before = support::AllocHookCount();
    decoder->FillNextTokenBitmask(mask);
    std::int64_t allocated = support::AllocHookCount() - before;
    ++steps;
    if (count_allocs) {
      EXPECT_EQ(allocated, 0)
          << "FillNextTokenBitmask allocated on steady-state step " << steps;
    }
    if (!decoder->AcceptToken(token)) break;
  }
  return steps;
}

TEST(ZeroAllocation, SteadyStateMaskGenerationJson) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(3000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  tokenizer::TokenTrie trie(*info);
  baselines::XGrammarDecoder decoder(cache);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  std::string doc = datasets::GenerateJsonDocuments(1, 5, 3)[0];
  // Pass 1 (warm-up): buffers grow to steady-state capacity, the scratch
  // matcher is built, every frame the walk needs is interned.
  DriveDocument(&decoder, trie, doc, &mask, /*count_allocs=*/false);
  // Pass 2 over the identical state sequence: zero allocations per step.
  decoder.Reset();
  std::int64_t steps =
      DriveDocument(&decoder, trie, doc, &mask, /*count_allocs=*/true);
  ASSERT_GT(steps, 4);
  // The workspace really ran context-dependent checks (the hard part of the
  // allocation-free claim), not just cache lookups.
  EXPECT_GT(decoder.Generator().Stats().runtime_tokens_checked, 0);
}

TEST(ZeroAllocation, SteadyStateMultiStackMerge) {
  auto pda = pda::CompiledGrammar::Compile(AmbiguousGrammar(),
                                           pda::CompileOptions::AllDisabled());
  auto info = TestTokenizer(1200, 31);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  MaskGenerator generator(cache);
  matcher::GrammarMatcher m(pda);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  std::string doc = "aaxaayaaxaay";
  auto drive = [&](bool count) {
    for (char c : doc) {
      std::int64_t before = support::AllocHookCount();
      generator.FillNextTokenBitmask(&m, &mask);
      std::int64_t allocated = support::AllocHookCount() - before;
      if (count) EXPECT_EQ(allocated, 0) << "allocation in multi-stack merge";
      ASSERT_TRUE(m.AcceptByte(static_cast<std::uint8_t>(c)));
    }
  };
  drive(false);  // warm-up
  m.ResetToStart();
  drive(true);
  EXPECT_GT(generator.Stats().merges, 0);
}

// --- Scratch-matcher reuse ----------------------------------------------------

TEST(ScratchReuse, OneRebuildPerDecoderAcrossResets) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(3000, 17);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  tokenizer::TokenTrie trie(*info);
  baselines::XGrammarDecoder decoder(cache);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  std::string doc = datasets::GenerateJsonDocuments(1, 9, 3)[0];
  DriveDocument(&decoder, trie, doc, &mask, false);
  const MaskGenStats& stats = decoder.Generator().Stats();
  ASSERT_GT(stats.runtime_tokens_checked, 0);
  EXPECT_EQ(stats.scratch_rebuilds, 1);
  EXPECT_GT(stats.scratch_reseeds, 0);
  // Reset() reseeds the same matcher/pool: the scratch matcher survives.
  decoder.Reset();
  DriveDocument(&decoder, trie, doc, &mask, false);
  EXPECT_EQ(stats.scratch_rebuilds, 1);
}

TEST(ScratchReuse, ReseedMatchesFreshMatcher) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto info = TestTokenizer(1500, 3);
  auto cache = AdaptiveTokenMaskCache::Build(pda, info);
  MaskGenerator generator(cache);
  matcher::GrammarMatcher m(pda);
  ASSERT_TRUE(m.AcceptString("{\"key\":[1,2"));
  m.ResetToStart();
  EXPECT_EQ(m.NumConsumedBytes(), 0);
  matcher::GrammarMatcher fresh(pda);
  DynamicBitset reseeded_mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset fresh_mask(static_cast<std::size_t>(info->VocabSize()));
  MaskGenerator fresh_generator(cache);
  generator.FillNextTokenBitmask(&m, &reseeded_mask);
  fresh_generator.FillNextTokenBitmask(&fresh, &fresh_mask);
  EXPECT_TRUE(reseeded_mask == fresh_mask);
  // And after re-consuming the same prefix the states agree again.
  ASSERT_TRUE(m.AcceptString("{\"key\":"));
  ASSERT_TRUE(fresh.AcceptString("{\"key\":"));
  generator.FillNextTokenBitmask(&m, &reseeded_mask);
  fresh_generator.FillNextTokenBitmask(&fresh, &fresh_mask);
  EXPECT_TRUE(reseeded_mask == fresh_mask);
}

// --- MaskStacks ---------------------------------------------------------------

TEST(MaskStacks, BufferFormIsSortedDeduplicatedAndMatchesConvenienceForm) {
  auto pda = pda::CompiledGrammar::Compile(AmbiguousGrammar(),
                                           pda::CompileOptions::AllDisabled());
  matcher::GrammarMatcher m(pda);
  ASSERT_TRUE(m.AcceptString("aax"));  // item boundary: pop results live here
  std::vector<std::int32_t> buffer{-7, -8, -9};  // stale contents must vanish
  m.MaskStacks(&buffer);
  EXPECT_EQ(buffer, m.MaskStacks());
  ASSERT_FALSE(buffer.empty());
  for (std::size_t i = 1; i < buffer.size(); ++i) {
    EXPECT_LT(buffer[i - 1], buffer[i]);  // strictly increasing = sorted+unique
  }
}

}  // namespace
}  // namespace xgr::cache
