// Tests for the C FFI surface: handle lifecycle, every grammar source,
// masking/acceptance/termination, rollback, jump-forward, fork, and error
// reporting (exceptions must never cross the boundary).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ffi/c_api.h"

namespace {

std::string LastError() {
  char buf[512];
  xgr_last_error(buf, sizeof(buf));
  return buf;
}

struct TokenizerHandle {
  xgr_tokenizer* get() const { return ptr.get(); }
  std::shared_ptr<xgr_tokenizer> ptr;
};

TokenizerHandle SyntheticTokenizer() {
  static TokenizerHandle handle{std::shared_ptr<xgr_tokenizer>(
      xgr_tokenizer_create_synthetic(2000, 17), &xgr_tokenizer_destroy)};
  return handle;
}

TEST(CApiTokenizer, SyntheticLifecycle) {
  auto tok = SyntheticTokenizer();
  ASSERT_NE(tok.get(), nullptr);
  EXPECT_EQ(xgr_tokenizer_vocab_size(tok.get()), 2000);
  EXPECT_GE(xgr_tokenizer_eos_id(tok.get()), 0);
}

TEST(CApiTokenizer, FromRawTokens) {
  const char* tokens[] = {"a", "b", "ab", "<eos>"};
  const size_t lens[] = {1, 1, 2, 5};
  xgr_tokenizer* tok = xgr_tokenizer_create(tokens, lens, 4, 3);
  ASSERT_NE(tok, nullptr);
  EXPECT_EQ(xgr_tokenizer_vocab_size(tok), 4);
  EXPECT_EQ(xgr_tokenizer_eos_id(tok), 3);

  xgr_grammar* grammar = xgr_grammar_compile_regex("(ab)+", tok);
  ASSERT_NE(grammar, nullptr);
  xgr_matcher* matcher = xgr_matcher_create(grammar);
  ASSERT_NE(matcher, nullptr);

  // "a" then "b" spells one "ab"; token 2 ("ab") also works directly.
  EXPECT_EQ(xgr_matcher_accept_token(matcher, 0), 1);
  EXPECT_EQ(xgr_matcher_can_terminate(matcher), 0);
  EXPECT_EQ(xgr_matcher_accept_token(matcher, 1), 1);
  EXPECT_EQ(xgr_matcher_can_terminate(matcher), 1);
  EXPECT_EQ(xgr_matcher_accept_token(matcher, 2), 1);
  EXPECT_EQ(xgr_matcher_can_terminate(matcher), 1);
  // 'b' alone is never a legal continuation here.
  EXPECT_EQ(xgr_matcher_accept_token(matcher, 1), 0);

  xgr_matcher_destroy(matcher);
  xgr_grammar_destroy(grammar);
  xgr_tokenizer_destroy(tok);
}

TEST(CApiTokenizer, InvalidArgsReturnNullWithMessage) {
  EXPECT_EQ(xgr_tokenizer_create(nullptr, nullptr, 4, 0), nullptr);
  EXPECT_FALSE(LastError().empty());
  const char* tokens[] = {"a"};
  const size_t lens[] = {1};
  EXPECT_EQ(xgr_tokenizer_create(tokens, lens, 1, 9), nullptr);
  EXPECT_NE(LastError().find("eos_id"), std::string::npos);
}

TEST(CApiGrammar, EveryCompileSourceWorks) {
  auto tok = SyntheticTokenizer();
  xgr_grammar* ebnf =
      xgr_grammar_compile_ebnf("root ::= \"yes\" | \"no\"", "root", tok.get());
  ASSERT_NE(ebnf, nullptr);
  xgr_grammar* schema = xgr_grammar_compile_json_schema(
      R"({"type":"object","properties":{"x":{"type":"integer"}},
          "required":["x"],"additionalProperties":false})",
      tok.get());
  ASSERT_NE(schema, nullptr);
  xgr_grammar* regex = xgr_grammar_compile_regex("[0-9]{4}", tok.get());
  ASSERT_NE(regex, nullptr);
  xgr_grammar* json = xgr_grammar_compile_builtin_json(tok.get());
  ASSERT_NE(json, nullptr);
  for (xgr_grammar* g : {ebnf, schema, regex, json}) xgr_grammar_destroy(g);
}

TEST(CApiGrammar, CompileErrorsSetMessage) {
  auto tok = SyntheticTokenizer();
  EXPECT_EQ(xgr_grammar_compile_ebnf("root ::= \"x", "root", tok.get()), nullptr);
  EXPECT_NE(LastError().find("unterminated"), std::string::npos);
  EXPECT_EQ(xgr_grammar_compile_json_schema("{bad json", tok.get()), nullptr);
  EXPECT_EQ(xgr_grammar_compile_regex("(oops", tok.get()), nullptr);
  EXPECT_EQ(xgr_grammar_compile_builtin_json(nullptr), nullptr);
  EXPECT_NE(LastError().find("null tokenizer"), std::string::npos);
}

// Drives a full masked generation loop over the C surface.
TEST(CApiMatcher, MaskedGenerationLoop) {
  auto tok = SyntheticTokenizer();
  xgr_grammar* grammar = xgr_grammar_compile_builtin_json(tok.get());
  ASSERT_NE(grammar, nullptr);
  xgr_matcher* matcher = xgr_matcher_create(grammar);
  ASSERT_NE(matcher, nullptr);

  size_t words = xgr_matcher_mask_words(matcher);
  ASSERT_EQ(words, (2000 + 63) / 64u);
  std::vector<uint64_t> mask(words);

  // Greedily pick the first allowed non-EOS token for a few steps; every
  // accepted token must have been permitted by the preceding mask.
  int32_t eos = xgr_tokenizer_eos_id(tok.get());
  for (int step = 0; step < 12; ++step) {
    ASSERT_EQ(xgr_matcher_fill_next_token_bitmask(matcher, mask.data(), words),
              XGR_OK);
    int32_t pick = -1;
    for (int32_t id = 0; id < 2000; ++id) {
      if (id != eos && ((mask[static_cast<size_t>(id) / 64] >>
                         (static_cast<size_t>(id) % 64)) &
                        1u) != 0) {
        pick = id;
        break;
      }
    }
    ASSERT_GE(pick, 0);
    ASSERT_EQ(xgr_matcher_accept_token(matcher, pick), 1);
  }

  // Misuse: oversized ids error (-1), undersized buffers error (XGR_ERROR).
  EXPECT_EQ(xgr_matcher_accept_token(matcher, 99999), -1);
  EXPECT_NE(LastError().find("out of range"), std::string::npos);
  EXPECT_EQ(xgr_matcher_fill_next_token_bitmask(matcher, mask.data(), 1),
            XGR_ERROR);
  EXPECT_NE(LastError().find("too small"), std::string::npos);

  xgr_matcher_destroy(matcher);
  xgr_grammar_destroy(grammar);
}

TEST(CApiMatcher, RollbackAndReset) {
  auto tok = SyntheticTokenizer();
  xgr_grammar* grammar = xgr_grammar_compile_regex("[ab]+", tok.get());
  ASSERT_NE(grammar, nullptr);
  xgr_matcher* matcher = xgr_matcher_create(grammar);

  size_t words = xgr_matcher_mask_words(matcher);
  std::vector<uint64_t> mask(words);
  ASSERT_EQ(xgr_matcher_fill_next_token_bitmask(matcher, mask.data(), words),
            XGR_OK);
  // Find the single-byte token "a".
  int32_t a_id = -1;
  for (int32_t id = 0; id < xgr_tokenizer_vocab_size(tok.get()); ++id) {
    if ((mask[static_cast<size_t>(id) / 64] >> (static_cast<size_t>(id) % 64) &
         1u) != 0) {
      a_id = id;
      break;
    }
  }
  ASSERT_GE(a_id, 0);

  ASSERT_EQ(xgr_matcher_accept_token(matcher, a_id), 1);
  ASSERT_EQ(xgr_matcher_accept_token(matcher, a_id), 1);
  EXPECT_EQ(xgr_matcher_can_terminate(matcher), 1);

  EXPECT_EQ(xgr_matcher_rollback_tokens(matcher, 1), 1);
  EXPECT_EQ(xgr_matcher_can_terminate(matcher), 1);
  EXPECT_EQ(xgr_matcher_rollback_tokens(matcher, 5), 0);  // too many

  xgr_matcher_reset(matcher);
  EXPECT_EQ(xgr_matcher_can_terminate(matcher), 0);  // "+" needs >= 1 char

  xgr_matcher_destroy(matcher);
  xgr_grammar_destroy(grammar);
}

TEST(CApiMatcher, JumpForwardString) {
  auto tok = SyntheticTokenizer();
  xgr_grammar* grammar = xgr_grammar_compile_ebnf(
      "root ::= \"SELECT \" [0-9]+", "root", tok.get());
  ASSERT_NE(grammar, nullptr);
  xgr_matcher* matcher = xgr_matcher_create(grammar);

  char buf[64];
  size_t len = xgr_matcher_find_jump_forward_string(matcher, buf, sizeof(buf));
  EXPECT_EQ(std::string(buf), "SELECT ");
  EXPECT_EQ(len, 7u);

  // Truncation still NUL-terminates and reports the full length.
  char tiny[4];
  len = xgr_matcher_find_jump_forward_string(matcher, tiny, sizeof(tiny));
  EXPECT_EQ(std::string(tiny), "SEL");
  EXPECT_EQ(len, 7u);

  xgr_matcher_destroy(matcher);
  xgr_grammar_destroy(grammar);
}

TEST(CApiMatcher, TruncationNeverSplitsUtf8) {
  auto tok = SyntheticTokenizer();
  // Forced span "prix: é" — 8 bytes, 'é' = C3 A9 at offset 6.
  xgr_grammar* grammar = xgr_grammar_compile_ebnf(
      "root ::= \"prix: \xC3\xA9\" [0-9]+", "root", tok.get());
  ASSERT_NE(grammar, nullptr);
  xgr_matcher* matcher = xgr_matcher_create(grammar);
  ASSERT_NE(matcher, nullptr);

  char full[64];
  size_t len = xgr_matcher_find_jump_forward_string(matcher, full, sizeof(full));
  ASSERT_EQ(std::string(full), "prix: \xC3\xA9");
  ASSERT_EQ(len, 8u);

  // A buffer that would cut between C3 and A9 must back off to the last
  // complete codepoint, never hand the caller half a character. The return
  // value is still the FULL byte length, so truncation is detectable.
  char tiny[8];  // room for 7 bytes + NUL: the cut lands mid-'é'
  len = xgr_matcher_find_jump_forward_string(matcher, tiny, sizeof(tiny));
  EXPECT_EQ(std::string(tiny), "prix: ");
  EXPECT_EQ(len, 8u);

  xgr_matcher_destroy(matcher);
  xgr_grammar_destroy(grammar);
}

TEST(CApiCompileService, AsyncSubmitPollAwaitLifecycle) {
  auto tok = SyntheticTokenizer();
  xgr_compile_service* service =
      xgr_compile_service_create(tok.get(), 2, /*memory_budget_bytes=*/0,
                                 /*disk_cache_dir=*/nullptr);
  ASSERT_NE(service, nullptr);

  xgr_compile_ticket* ticket = xgr_compile_service_submit_json_schema(
      service,
      R"({"type":"object","properties":{"n":{"type":"integer"}},
          "required":["n"],"additionalProperties":false})");
  ASSERT_NE(ticket, nullptr);

  // Poll until ready (0 = pending, 1 = ready); the build runs off-thread.
  int32_t status = xgr_compile_ticket_poll(ticket);
  while (status == 0) status = xgr_compile_ticket_poll(ticket);
  ASSERT_EQ(status, 1);

  xgr_grammar* grammar = xgr_compile_ticket_await(ticket);
  ASSERT_NE(grammar, nullptr);
  xgr_matcher* matcher = xgr_matcher_create(grammar);
  ASSERT_NE(matcher, nullptr);
  // The async-compiled grammar constrains exactly like a sync one: '{' must
  // be legal at the start, so some mask bit is set.
  std::vector<uint64_t> mask(xgr_matcher_mask_words(matcher));
  ASSERT_EQ(xgr_matcher_fill_next_token_bitmask(matcher, mask.data(),
                                                mask.size()),
            XGR_OK);
  uint64_t any = 0;
  for (uint64_t word : mask) any |= word;
  EXPECT_NE(any, 0u);

  // Await twice: each success hands out an independent grammar handle.
  xgr_grammar* again = xgr_compile_ticket_await(ticket);
  ASSERT_NE(again, nullptr);
  xgr_grammar_destroy(again);

  xgr_matcher_destroy(matcher);
  xgr_grammar_destroy(grammar);
  xgr_compile_ticket_destroy(ticket);
  xgr_compile_service_destroy(service);
}

TEST(CApiCompileService, FailedBuildReportsThroughPollAndAwait) {
  auto tok = SyntheticTokenizer();
  xgr_compile_service* service =
      xgr_compile_service_create(tok.get(), 1, 0, nullptr);
  ASSERT_NE(service, nullptr);
  xgr_compile_ticket* ticket =
      xgr_compile_service_submit_ebnf(service, "root ::= \"unterminated", nullptr);
  ASSERT_NE(ticket, nullptr);
  int32_t status = xgr_compile_ticket_poll(ticket);
  while (status == 0) status = xgr_compile_ticket_poll(ticket);
  EXPECT_EQ(status, -1);
  EXPECT_NE(LastError().find("failed"), std::string::npos);
  EXPECT_EQ(xgr_compile_ticket_await(ticket), nullptr);
  EXPECT_FALSE(LastError().empty());
  xgr_compile_ticket_destroy(ticket);
  xgr_compile_service_destroy(service);
}

TEST(CApiCompileService, LastStatusReportsRefinedCodes) {
  auto tok = SyntheticTokenizer();
  xgr_compile_service* service =
      xgr_compile_service_create(tok.get(), 1, 0, nullptr);
  ASSERT_NE(service, nullptr);

  // Deterministic parse failure: the first failed poll reports the refined
  // invalid-grammar code alongside the message.
  xgr_compile_ticket* bad =
      xgr_compile_service_submit_ebnf(service, "root ::= \"broken", nullptr);
  ASSERT_NE(bad, nullptr);
  int32_t status = xgr_compile_ticket_poll(bad);
  while (status == 0) status = xgr_compile_ticket_poll(bad);
  EXPECT_EQ(status, -1);
  EXPECT_EQ(xgr_last_status(), XGR_ERROR_INVALID_GRAMMAR);
  // await on the same failed ticket recovers the code through the exception
  // path (Guarded + StatusError) as well.
  EXPECT_EQ(xgr_compile_ticket_await(bad), nullptr);
  EXPECT_EQ(xgr_last_status(), XGR_ERROR_INVALID_GRAMMAR);
  xgr_compile_ticket_destroy(bad);

  // The identical source is quarantined after its first deterministic
  // failure: the resubmit is rejected O(1) with the poisoned code.
  xgr_compile_ticket* again =
      xgr_compile_service_submit_ebnf(service, "root ::= \"broken", nullptr);
  ASSERT_NE(again, nullptr);
  status = xgr_compile_ticket_poll(again);
  while (status == 0) status = xgr_compile_ticket_poll(again);
  EXPECT_EQ(status, -1);
  EXPECT_EQ(xgr_last_status(), XGR_ERROR_POISONED);
  EXPECT_NE(LastError().find("quarantined"), std::string::npos);
  xgr_compile_ticket_destroy(again);

  // Cancellation maps to its own refined code.
  xgr_compile_ticket* cancelled =
      xgr_compile_service_submit_regex(service, "[0-9a-f]{12}");
  ASSERT_NE(cancelled, nullptr);
  xgr_compile_ticket_cancel(cancelled);
  status = xgr_compile_ticket_poll(cancelled);
  while (status == 0) status = xgr_compile_ticket_poll(cancelled);
  if (status == -1) {
    // The cancel won the race against the build.
    EXPECT_EQ(xgr_last_status(), XGR_ERROR_CANCELLED);
  }
  xgr_compile_ticket_destroy(cancelled);

  // Unclassified argument errors stay plain XGR_ERROR.
  EXPECT_EQ(xgr_compile_service_submit_ebnf(service, nullptr, nullptr),
            nullptr);
  EXPECT_EQ(xgr_last_status(), XGR_ERROR);

  xgr_compile_service_destroy(service);
}

TEST(CApiCompileService, CancelAndInvalidArguments) {
  auto tok = SyntheticTokenizer();
  xgr_compile_service* service =
      xgr_compile_service_create(tok.get(), 1, 0, nullptr);
  ASSERT_NE(service, nullptr);

  // NULL / invalid arguments never crash and set an error message.
  EXPECT_EQ(xgr_compile_service_create(nullptr, 1, 0, nullptr), nullptr);
  EXPECT_EQ(xgr_compile_service_submit_json_schema(service, nullptr), nullptr);
  EXPECT_EQ(xgr_compile_service_submit_regex(nullptr, "[0-9]+"), nullptr);
  EXPECT_EQ(xgr_compile_ticket_poll(nullptr), -1);

  xgr_compile_ticket* ticket =
      xgr_compile_service_submit_regex(service, "[a-f0-9]{8}");
  ASSERT_NE(ticket, nullptr);
  xgr_compile_ticket_cancel(ticket);
  // Whatever the race outcome (cancelled before running, or the build won),
  // poll must resolve to a definite -1 or 1 — never hang at 0 forever.
  int32_t status = xgr_compile_ticket_poll(ticket);
  while (status == 0) status = xgr_compile_ticket_poll(ticket);
  EXPECT_TRUE(status == 1 || status == -1);
  xgr_compile_ticket_destroy(ticket);
  xgr_compile_service_destroy(service);
}

TEST(CApiMatcher, ForkBranchesIndependently) {
  auto tok = SyntheticTokenizer();
  xgr_grammar* grammar = xgr_grammar_compile_builtin_json(tok.get());
  xgr_matcher* trunk = xgr_matcher_create(grammar);

  size_t words = xgr_matcher_mask_words(trunk);
  std::vector<uint64_t> mask(words);
  EXPECT_EQ(xgr_matcher_fill_next_token_bitmask(trunk, mask.data(), words),
            XGR_OK);

  xgr_matcher* fork = xgr_matcher_fork(trunk);
  ASSERT_NE(fork, nullptr);

  // The fork emits identical masks until the branches diverge.
  std::vector<uint64_t> fork_mask(words);
  EXPECT_EQ(xgr_matcher_fill_next_token_bitmask(fork, fork_mask.data(), words),
            XGR_OK);
  EXPECT_EQ(mask, fork_mask);

  xgr_matcher_destroy(fork);
  xgr_matcher_destroy(trunk);
  xgr_grammar_destroy(grammar);
}

TEST(CApiTagDispatch, CompositeMatcherLifecycle) {
  auto tok = SyntheticTokenizer();
  xgr_compile_service* service =
      xgr_compile_service_create(tok.get(), 2, 0, nullptr);
  ASSERT_NE(service, nullptr);

  const char* begins[] = {"<fn=a>", "<fn=b>"};
  const char* schemas[] = {R"({"type":"integer"})", nullptr};
  const char* ends[] = {"</fn>", "</fn>"};
  const char* triggers[] = {"<fn="};
  xgr_matcher* matcher = xgr_tag_dispatch_matcher_create(
      service, begins, schemas, ends, 2, triggers, 1,
      /*allow_free_text=*/1, /*max_invocations=*/-1, /*require_invocation=*/0);
  ASSERT_NE(matcher, nullptr) << LastError();

  // The matcher retains everything it needs: destroying the service first is
  // documented as safe — all use below happens after this.
  xgr_compile_service_destroy(service);

  // Mask surface works; free text allows EOS immediately.
  size_t words = xgr_matcher_mask_words(matcher);
  ASSERT_GT(words, 0u);
  std::vector<uint64_t> mask(words);
  EXPECT_EQ(xgr_matcher_fill_next_token_bitmask(matcher, mask.data(), words),
            XGR_OK);
  EXPECT_EQ(xgr_matcher_can_terminate(matcher), 1);

  // The composite matcher does not fork; the error path must be clean.
  EXPECT_EQ(xgr_matcher_fork(matcher), nullptr);
  EXPECT_NE(LastError().find("fork"), std::string::npos);

  xgr_matcher_reset(matcher);
  xgr_matcher_destroy(matcher);

  // Invalid config: no trigger prefixes the begin marker.
  xgr_compile_service* service2 =
      xgr_compile_service_create(tok.get(), 1, 0, nullptr);
  const char* bad_begin[] = {"[tool]"};
  const char* bad_end[] = {"[/tool]"};
  EXPECT_EQ(xgr_tag_dispatch_matcher_create(service2, bad_begin, nullptr,
                                            bad_end, 1, triggers, 1, 1, -1, 0),
            nullptr);
  EXPECT_FALSE(LastError().empty());
  xgr_compile_service_destroy(service2);
}

TEST(CApiArtifact, SaveLoadRoundTripWithIdenticalMasks) {
  auto tok = SyntheticTokenizer();
  xgr_grammar* compiled = xgr_grammar_compile_json_schema(
      R"({"type":"object","properties":{"v":{"type":"integer"}},
          "required":["v"],"additionalProperties":false})",
      tok.get());
  ASSERT_NE(compiled, nullptr);

  const std::string path =
      ::testing::TempDir() + "xgr_c_api_artifact_test.xgr3";
  ASSERT_EQ(xgr_artifact_save(compiled, path.c_str(), "abi-key"), XGR_OK);

  xgr_grammar* mapped = xgr_artifact_load(path.c_str(), tok.get(), "abi-key");
  ASSERT_NE(mapped, nullptr);

  // The mmap-loaded grammar masks bit-identically to the fresh compile.
  xgr_matcher* a = xgr_matcher_create(compiled);
  xgr_matcher* b = xgr_matcher_create(mapped);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  size_t words = xgr_matcher_mask_words(a);
  std::vector<uint64_t> mask_a(words);
  std::vector<uint64_t> mask_b(words);
  ASSERT_EQ(xgr_matcher_fill_next_token_bitmask(a, mask_a.data(), words),
            XGR_OK);
  ASSERT_EQ(xgr_matcher_fill_next_token_bitmask(b, mask_b.data(), words),
            XGR_OK);
  EXPECT_EQ(mask_a, mask_b);

  // Wrong expected key: rejected as corrupt (collision defense).
  EXPECT_EQ(xgr_artifact_load(path.c_str(), tok.get(), "other-key"), nullptr);
  EXPECT_EQ(xgr_last_status(), XGR_ERROR_CORRUPT_ARTIFACT);
  // Wrong vocabulary: the pin rejects a tokenizer the artifact was not
  // built against.
  xgr_tokenizer* other = xgr_tokenizer_create_synthetic(2000, 99);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(xgr_artifact_load(path.c_str(), other, nullptr), nullptr);
  EXPECT_EQ(xgr_last_status(), XGR_ERROR_CORRUPT_ARTIFACT);
  // Missing file: clean failure, no crash.
  EXPECT_EQ(xgr_artifact_load((path + ".missing").c_str(), tok.get(), nullptr),
            nullptr);
  EXPECT_EQ(xgr_last_status(), XGR_ERROR_CORRUPT_ARTIFACT);

  xgr_matcher_destroy(a);
  xgr_matcher_destroy(b);
  xgr_grammar_destroy(mapped);
  xgr_grammar_destroy(compiled);
  std::remove(path.c_str());
}

TEST(CApiCompileService, TenantQuotaRejectsAndReportsStats) {
  auto tok = SyntheticTokenizer();
  xgr_compile_service* service =
      xgr_compile_service_create(tok.get(), 2, 0, nullptr);
  ASSERT_NE(service, nullptr);

  // A 1-byte resident budget: the tenant's first artifact exhausts it, so
  // the second submission is rejected deterministically at the front door.
  ASSERT_EQ(xgr_compile_service_set_tenant_quota(service, "acme",
                                                 /*max_concurrent_compiles=*/0,
                                                 /*max_queued=*/0,
                                                 /*max_resident_bytes=*/1),
            XGR_OK);

  xgr_compile_ticket* first = xgr_compile_service_submit_json_schema_as(
      service, "acme",
      R"({"type":"object","properties":{"a":{"type":"integer"}},
          "required":["a"],"additionalProperties":false})");
  ASSERT_NE(first, nullptr);
  int32_t status = xgr_compile_ticket_poll(first);
  while (status == 0) status = xgr_compile_ticket_poll(first);
  ASSERT_EQ(status, 1);

  xgr_compile_ticket* second = xgr_compile_service_submit_json_schema_as(
      service, "acme",
      R"({"type":"object","properties":{"b":{"type":"string"}},
          "required":["b"],"additionalProperties":false})");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(xgr_compile_ticket_poll(second), -1);
  EXPECT_EQ(xgr_last_status(), XGR_ERROR_QUOTA_EXCEEDED);
  EXPECT_EQ(xgr_compile_ticket_await(second), nullptr);

  xgr_tenant_stats stats;
  ASSERT_EQ(xgr_compile_service_tenant_stats(service, "acme", &stats), XGR_OK);
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.compiled, 1);
  EXPECT_EQ(stats.quota_rejects, 1);
  EXPECT_GT(stats.bytes_resident, 0u);
  EXPECT_GT(stats.compile_wait_ms, 0.0);
  EXPECT_EQ(stats.inflight, 0);

  // Unknown tenants report all-zero stats, not an error.
  ASSERT_EQ(xgr_compile_service_tenant_stats(service, "nobody", &stats),
            XGR_OK);
  EXPECT_EQ(stats.submitted, 0);
  EXPECT_EQ(stats.quota_rejects, 0);

  // The default tenant is never quota-checked: the same source that was
  // rejected for "acme" compiles fine anonymously.
  xgr_compile_ticket* anon = xgr_compile_service_submit_json_schema(
      service,
      R"({"type":"object","properties":{"b":{"type":"string"}},
          "required":["b"],"additionalProperties":false})");
  ASSERT_NE(anon, nullptr);
  status = xgr_compile_ticket_poll(anon);
  while (status == 0) status = xgr_compile_ticket_poll(anon);
  EXPECT_EQ(status, 1);

  xgr_compile_ticket_destroy(first);
  xgr_compile_ticket_destroy(second);
  xgr_compile_ticket_destroy(anon);
  xgr_compile_service_destroy(service);
}

}  // namespace
