// Tests for binary artifact serialization: round trips for every grammar
// source, behavioural equality of deserialized engines, vocabulary pinning,
// and corruption rejection (truncation, bit flips, kind confusion).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "grammar/structural_tag.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "serialize/serialize.h"
#include "support/logging.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::serialize {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer(std::uint64_t seed = 17) {
  static std::map<std::uint64_t, std::shared_ptr<const tokenizer::TokenizerInfo>> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    it = cache
             .emplace(seed, std::make_shared<tokenizer::TokenizerInfo>(
                                tokenizer::BuildSyntheticVocab({2000, seed})))
             .first;
  }
  return it->second;
}

grammar::Grammar GrammarByName(const std::string& name) {
  if (name == "json") return grammar::BuiltinJsonGrammar();
  if (name == "xml") return grammar::BuiltinXmlGrammar();
  if (name == "python") return grammar::BuiltinPythonDslGrammar();
  if (name == "sql") return grammar::BuiltinSqlGrammar();
  if (name == "schema") {
    return grammar::JsonSchemaTextToGrammar(
        R"({"type":"object","properties":{"id":{"type":"integer"},
            "tags":{"type":"array","items":{"type":"string"}}},
            "required":["id"],"additionalProperties":false})");
  }
  if (name == "tags") {
    return grammar::BuildStructuralTagGrammar(
        {{"<f>", R"({"type":"object","properties":{},"additionalProperties":false})",
          "</f>"}},
        {"<f>"});
  }
  XGR_CHECK(false) << name;
  XGR_UNREACHABLE();
}

class GrammarRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(GrammarRoundTrip, GrammarSurvivesByteLevel) {
  grammar::Grammar original = GrammarByName(GetParam());
  std::string bytes = SerializeGrammar(original);
  grammar::Grammar restored = DeserializeGrammar(bytes);
  // ToString is a complete rendering of rules + expressions.
  EXPECT_EQ(restored.ToString(), original.ToString());
  // Double round trip is byte-identical (canonical encoding).
  EXPECT_EQ(SerializeGrammar(restored), bytes);
}

TEST_P(GrammarRoundTrip, CompiledGrammarBehavesIdentically) {
  grammar::Grammar g = GrammarByName(GetParam());
  auto compiled = pda::CompiledGrammar::Compile(g);
  std::string bytes = SerializeCompiledGrammar(*compiled);
  auto restored = DeserializeCompiledGrammar(bytes);

  ASSERT_EQ(restored->NumNodes(), compiled->NumNodes());
  ASSERT_EQ(restored->NumRules(), compiled->NumRules());
  EXPECT_EQ(restored->StatsString(), compiled->StatsString());

  // Identical acceptance on probe strings through fresh matchers.
  const char* probes[] = {
      R"({"id":7,"tags":["a"]})", "[1,2]", "SELECT * FROM t", "x = 1\n",
      "<a>text</a>", "<f>{}</f>", "if x: pass\n", "not structured at all"};
  for (const char* probe : probes) {
    matcher::GrammarMatcher original_matcher(compiled);
    matcher::GrammarMatcher restored_matcher(restored);
    bool original_ok =
        original_matcher.AcceptString(probe) && original_matcher.CanTerminate();
    bool restored_ok =
        restored_matcher.AcceptString(probe) && restored_matcher.CanTerminate();
    EXPECT_EQ(original_ok, restored_ok) << GetParam() << " probe=" << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Grammars, GrammarRoundTrip,
                         ::testing::Values("json", "xml", "python", "sql",
                                           "schema", "tags"));

TEST(EngineArtifact, CacheRoundTripsWithIdenticalMasks) {
  auto info = TestTokenizer();
  auto compiled = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto cache = cache::AdaptiveTokenMaskCache::Build(compiled, info);

  std::string bytes = SerializeEngineArtifact(*cache);
  auto restored = DeserializeEngineArtifact(bytes, info);

  EXPECT_EQ(restored->Stats().context_dependent, cache->Stats().context_dependent);
  EXPECT_EQ(restored->MemoryBytes(), cache->MemoryBytes());

  // Walk a document with both decoders; masks must be identical bit-for-bit.
  baselines::XGrammarDecoder original(cache);
  baselines::XGrammarDecoder loaded(restored);
  DynamicBitset mask_a(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset mask_b(static_cast<std::size_t>(info->VocabSize()));
  const std::string doc = R"({"k":[1,"two",null],"m":{"x":3.5}})";
  for (char c : doc) {
    original.FillNextTokenBitmask(&mask_a);
    loaded.FillNextTokenBitmask(&mask_b);
    ASSERT_TRUE(mask_a == mask_b) << "diverged before byte '" << c << "'";
    ASSERT_TRUE(original.Matcher().AcceptByte(static_cast<std::uint8_t>(c)));
    ASSERT_TRUE(loaded.Matcher().AcceptByte(static_cast<std::uint8_t>(c)));
  }
}

TEST(EngineArtifact, VocabularyPinRejectsWrongTokenizer) {
  auto compiled = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto cache = cache::AdaptiveTokenMaskCache::Build(compiled, TestTokenizer(17));
  std::string bytes = SerializeEngineArtifact(*cache);
  EXPECT_THROW(DeserializeEngineArtifact(bytes, TestTokenizer(18)), CheckError);
  std::string message;
  try {
    DeserializeEngineArtifact(bytes, TestTokenizer(18));
  } catch (const CheckError& error) {
    message = error.what();
  }
  EXPECT_NE(message.find("different vocabulary"), std::string::npos);
}

TEST(Corruption, TruncationBitFlipsAndKindConfusionAllThrow) {
  grammar::Grammar g = grammar::BuiltinJsonGrammar();
  std::string bytes = SerializeGrammar(g);

  // Truncations at every prefix boundary of interest.
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                           std::size_t{16}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(DeserializeGrammar(bytes.substr(0, keep)), CheckError)
        << "kept " << keep;
  }

  // A bit flip anywhere in the payload breaks the checksum.
  for (std::size_t pos : {std::size_t{20}, bytes.size() / 2, bytes.size() - 2}) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    EXPECT_THROW(DeserializeGrammar(flipped), CheckError) << "pos " << pos;
  }

  // Wrong magic.
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'Y';
  EXPECT_THROW(DeserializeGrammar(wrong_magic), CheckError);

  // Kind confusion: a grammar artifact is not a compiled-grammar artifact.
  EXPECT_THROW(DeserializeCompiledGrammar(bytes), CheckError);

  // Trailing garbage after a valid payload.
  EXPECT_THROW(DeserializeGrammar(bytes + "extra"), CheckError);
}

TEST(Corruption, VersionMismatchThrows) {
  std::string bytes = SerializeGrammar(grammar::BuiltinJsonGrammar());
  bytes[4] = 99;  // version field (little-endian low byte)
  EXPECT_THROW(DeserializeGrammar(bytes), CheckError);
}

}  // namespace
}  // namespace xgr::serialize
