// Cross-engine and cross-path differential properties:
//   (a) the XGrammar decoder and the llama.cpp-style full-scan baseline must
//       produce identical masks at every step of random grammar-guided walks;
//   (b) a matcher that randomly accepts and rolls back must end in the same
//       state as a fresh matcher fed the net byte sequence;
//   (c) printing a grammar and re-parsing it reaches a fixpoint;
//   (d) the cache classification agrees with the single-token reference
//       classifier on sampled (node, token) pairs.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/pda_baseline.h"
#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "cache/mask_generator.h"
#include "grammar/grammar.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/rng.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr {
namespace {

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({2000, 23}));
  return info;
}

grammar::Grammar GrammarByName(const std::string& name) {
  if (name == "json") return grammar::BuiltinJsonGrammar();
  if (name == "xml") return grammar::BuiltinXmlGrammar();
  if (name == "sql") return grammar::BuiltinSqlGrammar();
  if (name == "expr") {
    return grammar::ParseEbnfOrThrow(R"EBNF(
root ::= term (("+" | "-") term)*
term ::= factor (("*" | "/") factor)*
factor ::= [0-9]+ | "(" root ")"
)EBNF");
  }
  XGR_CHECK(false) << name;
  XGR_UNREACHABLE();
}

// --- (a) engine-vs-engine mask equivalence on random walks ------------------

class EngineMaskEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineMaskEquivalence, XGrammarMatchesFullScanBaseline) {
  auto info = TestTokenizer();
  auto pda = pda::CompiledGrammar::Compile(GrammarByName(GetParam()));
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);

  baselines::XGrammarDecoder xgrammar(cache);
  baselines::PdaBaselineDecoder baseline(pda, info);

  Rng rng(0xD1FFull ^ std::string(GetParam()).size());
  DynamicBitset xg_mask(static_cast<std::size_t>(info->VocabSize()));
  DynamicBitset base_mask(static_cast<std::size_t>(info->VocabSize()));

  for (int step = 0; step < 40; ++step) {
    xgrammar.FillNextTokenBitmask(&xg_mask);
    baseline.FillNextTokenBitmask(&base_mask);
    std::vector<std::int32_t> allowed;
    for (std::int32_t id = 0; id < info->VocabSize(); ++id) {
      ASSERT_EQ(xg_mask.Test(static_cast<std::size_t>(id)),
                base_mask.Test(static_cast<std::size_t>(id)))
          << "grammar=" << GetParam() << " step=" << step << " token=" << id
          << " bytes='" << info->TokenBytes(id) << "'";
      if (xg_mask.Test(static_cast<std::size_t>(id)) && id != info->EosId()) {
        allowed.push_back(id);
      }
    }
    if (allowed.empty()) break;  // only EOS remains
    std::int32_t pick =
        allowed[rng.NextBounded(static_cast<std::uint64_t>(allowed.size()))];
    ASSERT_TRUE(xgrammar.AcceptToken(pick));
    ASSERT_TRUE(baseline.AcceptToken(pick));
    ASSERT_EQ(xgrammar.CanTerminate(), baseline.CanTerminate());
  }
}

INSTANTIATE_TEST_SUITE_P(Grammars, EngineMaskEquivalence,
                         ::testing::Values("json", "xml", "sql", "expr"));

// --- (b) rollback equivalence -----------------------------------------------

class RollbackEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RollbackEquivalence, RandomRollbackTraceEqualsReplay) {
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);

  matcher::GrammarMatcher traced(pda);
  std::string net_bytes;  // bytes surviving all rollbacks

  for (int op = 0; op < 120; ++op) {
    if (rng.NextBool(0.3) && traced.NumConsumedBytes() > 0) {
      // Roll back a random number of bytes.
      std::int32_t count = static_cast<std::int32_t>(rng.NextBounded(
                               static_cast<std::uint64_t>(traced.NumConsumedBytes()))) +
                           1;
      traced.RollbackBytes(count);
      net_bytes.resize(net_bytes.size() - static_cast<std::size_t>(count));
      continue;
    }
    // Try a random printable byte; both accept or both reject.
    std::uint8_t byte = static_cast<std::uint8_t>(0x20 + rng.NextBounded(0x5F));
    if (traced.AcceptByte(byte)) net_bytes.push_back(static_cast<char>(byte));
  }

  matcher::GrammarMatcher replay(pda);
  ASSERT_TRUE(replay.AcceptString(net_bytes)) << net_bytes;
  EXPECT_EQ(traced.NumConsumedBytes(),
            static_cast<std::int32_t>(net_bytes.size()));
  EXPECT_EQ(traced.CanTerminate(), replay.CanTerminate());
  EXPECT_EQ(traced.CurrentStacks().size(), replay.CurrentStacks().size());
  // The two matchers own different pools, so stack ids differ; compare the
  // observable language instead: identical accept/reject on probe bytes.
  for (int b = 0x20; b < 0x7F; ++b) {
    EXPECT_EQ(traced.CanAcceptString(std::string(1, static_cast<char>(b))),
              replay.CanAcceptString(std::string(1, static_cast<char>(b))))
        << "after '" << net_bytes << "' byte " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackEquivalence, ::testing::Range(0, 12));

// --- (c) EBNF print → parse fixpoint -----------------------------------------

class EbnfFixpoint : public ::testing::TestWithParam<const char*> {};

TEST_P(EbnfFixpoint, PrintParsePrintIsStable) {
  grammar::Grammar original = GrammarByName(GetParam());
  std::string printed = original.ToString();
  grammar::Grammar reparsed =
      grammar::ParseEbnfOrThrow(printed, original.GetRule(original.RootRule()).name);
  EXPECT_EQ(reparsed.ToString(), printed) << "grammar=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Grammars, EbnfFixpoint,
                         ::testing::Values("json", "xml", "sql", "expr"));

// --- (d) cache classification vs reference classifier ------------------------

TEST(CacheClassification, AgreesWithReferenceClassifier) {
  auto info = TestTokenizer();
  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);

  Rng rng(99);
  for (int sample = 0; sample < 400; ++sample) {
    std::int32_t node =
        static_cast<std::int32_t>(rng.NextBounded(static_cast<std::uint64_t>(pda->NumNodes())));
    std::int32_t token =
        static_cast<std::int32_t>(rng.NextBounded(static_cast<std::uint64_t>(info->VocabSize())));
    if (info->IsSpecial(token)) continue;

    cache::TokenClass reference =
        cache::ClassifyTokenAtNode(pda, node, info->TokenBytes(token));
    const cache::NodeMaskEntry& entry = cache->Entry(node);

    bool in_ctx_dep = std::binary_search(entry.context_dependent.begin(),
                                         entry.context_dependent.end(), token);
    bool in_stored = std::binary_search(entry.stored.begin(), entry.stored.end(), token);
    bool cache_accepted = false;
    bool cache_ctx_dep = in_ctx_dep;
    switch (entry.kind) {
      case cache::StorageKind::kAcceptHeavy:
        cache_accepted = !in_stored && !in_ctx_dep;
        break;
      case cache::StorageKind::kRejectHeavy:
        cache_accepted = in_stored;
        break;
      case cache::StorageKind::kBitset:
        cache_accepted = entry.accepted_bits.Test(static_cast<std::size_t>(token));
        break;
    }
    switch (reference) {
      case cache::TokenClass::kAccepted:
        EXPECT_TRUE(cache_accepted && !cache_ctx_dep)
            << "node=" << node << " token=" << token;
        break;
      case cache::TokenClass::kRejected:
        EXPECT_TRUE(!cache_accepted && !cache_ctx_dep)
            << "node=" << node << " token=" << token;
        break;
      case cache::TokenClass::kContextDependent:
        EXPECT_TRUE(cache_ctx_dep) << "node=" << node << " token=" << token;
        break;
    }
  }
}

}  // namespace
}  // namespace xgr
