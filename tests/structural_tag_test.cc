// Tests for structural tags: trigger-avoiding free text, tag dispatch,
// schema-constrained bodies, invocation bounds, and mask-generation
// integration through the full XGrammar pipeline.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/xgrammar_decoder.h"
#include "cache/adaptive_cache.h"
#include "grammar/structural_tag.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/logging.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::grammar {
namespace {

bool Matches(const Grammar& g, const std::string& input) {
  auto pda = pda::CompiledGrammar::Compile(g);
  matcher::GrammarMatcher m(pda);
  return m.AcceptString(input) && m.CanTerminate();
}

// --- Trigger-free text ------------------------------------------------------

TEST(TriggerFreeText, AcceptsTextWithoutTrigger) {
  Grammar g = BuildTriggerFreeTextGrammar({"<fn"});
  EXPECT_TRUE(Matches(g, ""));
  EXPECT_TRUE(Matches(g, "hello world"));
  EXPECT_TRUE(Matches(g, "a < b and c > d"));   // bare '<' is fine
  EXPECT_TRUE(Matches(g, "<f is a prefix only"));
  EXPECT_TRUE(Matches(g, "ends with a partial <f"));
}

TEST(TriggerFreeText, RejectsTextContainingTrigger) {
  Grammar g = BuildTriggerFreeTextGrammar({"<fn"});
  EXPECT_FALSE(Matches(g, "<fn"));
  EXPECT_FALSE(Matches(g, "call <fn now"));
  EXPECT_FALSE(Matches(g, "x<fn"));
  EXPECT_FALSE(Matches(g, "<f<fn"));  // divergence then a real trigger
}

TEST(TriggerFreeText, MultipleTriggers) {
  Grammar g = BuildTriggerFreeTextGrammar({"<a>", "[[call"});
  EXPECT_TRUE(Matches(g, "plain [[ca text <a ok"));
  EXPECT_FALSE(Matches(g, "has <a> tag"));
  EXPECT_FALSE(Matches(g, "has [[call marker"));
}

TEST(TriggerFreeText, OverlappingTriggerPrefixes) {
  // Self-overlapping trigger: "aa" inside "aaa" etc. The Aho-Corasick failure
  // links must catch a trigger that starts inside a diverged prefix.
  Grammar g = BuildTriggerFreeTextGrammar({"aab"});
  EXPECT_TRUE(Matches(g, "aa"));
  EXPECT_TRUE(Matches(g, "aaa"));        // never completes "aab"
  EXPECT_FALSE(Matches(g, "aaab"));      // trigger starting at offset 1
  EXPECT_FALSE(Matches(g, "xxaabxx"));
}

TEST(TriggerFreeText, UnicodeFreeTextPassesThrough) {
  Grammar g = BuildTriggerFreeTextGrammar({"<fn"});
  EXPECT_TRUE(Matches(g, "héllo wörld 世界"));
}

TEST(TriggerFreeText, RejectsBadTriggers) {
  EXPECT_THROW(BuildTriggerFreeTextGrammar({}), xgr::CheckError);
  EXPECT_THROW(BuildTriggerFreeTextGrammar({""}), xgr::CheckError);
  EXPECT_THROW(BuildTriggerFreeTextGrammar({"caf\xC3\xA9"}), xgr::CheckError);
}

// --- Structural tag grammars -------------------------------------------------

constexpr const char* kWeatherSchema = R"({
  "type": "object",
  "properties": {
    "city": {"type": "string"},
    "unit": {"enum": ["celsius", "fahrenheit"]}
  },
  "required": ["city", "unit"],
  "additionalProperties": false
})";

std::vector<StructuralTag> WeatherTags() {
  return {{"<function=get_weather>", kWeatherSchema, "</function>"}};
}

TEST(StructuralTag, PlainProseIsAccepted) {
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function="});
  EXPECT_TRUE(Matches(g, "I will look that up for you."));
  EXPECT_TRUE(Matches(g, ""));
}

TEST(StructuralTag, WellFormedCallIsAccepted) {
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function="});
  EXPECT_TRUE(Matches(
      g,
      "Let me check. <function=get_weather>"
      R"({"city":"Paris","unit":"celsius"})"
      "</function> One moment."));
}

TEST(StructuralTag, TriggerMustStartACall) {
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function="});
  // Once "<function=" appears it must complete a tag invocation.
  EXPECT_FALSE(Matches(g, "mentioning <function= casually"));
  EXPECT_FALSE(Matches(g, "<function=get_weather>{}</function>"));  // schema violated
  EXPECT_FALSE(Matches(
      g, "<function=get_weather>"
         R"({"city":"Paris","unit":"kelvin"})"
         "</function>"));  // enum violated
}

TEST(StructuralTag, MultipleTagsDispatchOnBeginMarker) {
  std::vector<StructuralTag> tags = {
      {"<function=get_weather>", kWeatherSchema, "</function>"},
      {"<function=get_time>",
       R"({"type":"object","properties":{"tz":{"type":"string"}},)"
       R"("required":["tz"],"additionalProperties":false})",
       "</function>"},
  };
  Grammar g = BuildStructuralTagGrammar(tags, {"<function="});
  EXPECT_TRUE(Matches(g, "<function=get_time>"
                         R"({"tz":"UTC"})"
                         "</function>"));
  // get_time's schema must not leak into get_weather.
  EXPECT_FALSE(Matches(g, "<function=get_weather>"
                          R"({"tz":"UTC"})"
                          "</function>"));
}

TEST(StructuralTag, MultipleInvocationsWithProseBetween) {
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function="});
  const std::string call =
      "<function=get_weather>"
      R"({"city":"Oslo","unit":"celsius"})"
      "</function>";
  EXPECT_TRUE(Matches(g, "First: " + call + " and second: " + call + "."));
}

TEST(StructuralTag, UnconstrainedJsonBodyWhenSchemaEmpty) {
  std::vector<StructuralTag> tags = {{"<data>", "", "</data>"}};
  Grammar g = BuildStructuralTagGrammar(tags, {"<data>"});
  EXPECT_TRUE(Matches(g, "<data>[1,2,{\"k\":null}]</data>"));
  EXPECT_FALSE(Matches(g, "<data>not json</data>"));
}

TEST(StructuralTag, RequireInvocationRejectsPureProse) {
  StructuralTagOptions options;
  options.require_invocation = true;
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function="}, options);
  EXPECT_FALSE(Matches(g, "no call here"));
  EXPECT_TRUE(Matches(g, "<function=get_weather>"
                         R"({"city":"Rio","unit":"celsius"})"
                         "</function>"));
}

TEST(StructuralTag, MaxInvocationsBoundsCalls) {
  StructuralTagOptions options;
  options.max_invocations = 1;
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function="}, options);
  const std::string call =
      "<function=get_weather>"
      R"({"city":"Oslo","unit":"celsius"})"
      "</function>";
  EXPECT_TRUE(Matches(g, call));
  EXPECT_FALSE(Matches(g, call + call));
}

TEST(StructuralTag, NoFreeTextModeForcesBareCalls) {
  StructuralTagOptions options;
  options.allow_free_text = false;
  options.require_invocation = true;
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function="}, options);
  const std::string call =
      "<function=get_weather>"
      R"({"city":"Oslo","unit":"celsius"})"
      "</function>";
  EXPECT_TRUE(Matches(g, call));
  EXPECT_TRUE(Matches(g, call + call));
  EXPECT_FALSE(Matches(g, "prose " + call));
  EXPECT_FALSE(Matches(g, call + " prose"));
}

TEST(StructuralTag, BeginMarkerMustExtendSomeTrigger) {
  // No trigger prefixes the begin marker.
  EXPECT_THROW(
      BuildStructuralTagGrammar({{"[tool]", "", "[/tool]"}}, {"<function="}),
      xgr::CheckError);
}

TEST(StructuralTag, NestedTriggersAreLegalAndDispatchOnLongestMatch) {
  // One trigger prefixing another used to be rejected by an over-strict
  // `prefixing == 1` check; the validator now counts only the longest
  // matching trigger. Both tags stay reachable.
  std::vector<StructuralTag> tags = {
      {"<tool_call>", R"({"type":"integer"})", "</tool_call>"},
      {"<toolbox>", R"({"type":"integer"})", "</toolbox>"},
  };
  Grammar g = BuildStructuralTagGrammar(tags, {"<tool", "<tool_call"});
  EXPECT_TRUE(Matches(g, "go <tool_call>7</tool_call> done"));
  EXPECT_TRUE(Matches(g, "go <toolbox>7</toolbox> done"));
  EXPECT_TRUE(Matches(g, "<tool_call>1</tool_call><toolbox>2</toolbox>"));
  // Triggers still end free text: a bare occurrence must start a tag.
  EXPECT_FALSE(Matches(g, "mentioning <tool casually"));
  EXPECT_FALSE(Matches(g, "mentioning <tool_call casually"));
}

TEST(StructuralTag, MultipleTriggersPrefixingSameBeginMarker) {
  // Several triggers prefixing one begin marker is a valid nested config.
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function=", "<fun"});
  EXPECT_TRUE(Matches(g, "<function=get_weather>"
                         R"({"city":"Oslo","unit":"celsius"})"
                         "</function>"));
  EXPECT_FALSE(Matches(g, "a bare <fun mention"));
}

TEST(StructuralTag, LongestTriggerPrefixSelection) {
  std::vector<std::string> triggers = {"<tool", "<tool_call", "[["};
  EXPECT_EQ(LongestTriggerPrefix("<tool_call>", triggers), 1);
  EXPECT_EQ(LongestTriggerPrefix("<toolbox>", triggers), 0);
  EXPECT_EQ(LongestTriggerPrefix("[[x]]", triggers), 2);
  EXPECT_EQ(LongestTriggerPrefix("<other>", triggers), -1);
}

TEST(StructuralTag, TagSegmentSourceRoundTrip) {
  StructuralTag tag{"<function=f>", R"({"type":"integer"})", "</function>"};
  std::string encoded = EncodeTagSegmentSource(tag);
  StructuralTag decoded = DecodeTagSegmentSource(encoded);
  EXPECT_EQ(decoded.begin, tag.begin);
  EXPECT_EQ(decoded.schema_text, tag.schema_text);
  EXPECT_EQ(decoded.end, tag.end);
  // Markers containing the delimiter characters stay unambiguous.
  StructuralTag tricky{"a:1:b", "", ":9:"};
  StructuralTag tricky_decoded =
      DecodeTagSegmentSource(EncodeTagSegmentSource(tricky));
  EXPECT_EQ(tricky_decoded.begin, tricky.begin);
  EXPECT_EQ(tricky_decoded.end, tricky.end);
  EXPECT_THROW(DecodeTagSegmentSource("garbage"), xgr::CheckError);
  EXPECT_THROW(DecodeTagSegmentSource("5:ab"), xgr::CheckError);
}

TEST(StructuralTag, TagSegmentGrammarMatchesOneFullTag) {
  StructuralTag tag{"<data>", "", "</data>"};
  Grammar g = BuildTagSegmentGrammar(tag);
  EXPECT_TRUE(Matches(g, "<data>[1,2]</data>"));
  EXPECT_FALSE(Matches(g, "<data>[1,2]</data> trailing"));
  EXPECT_FALSE(Matches(g, "[1,2]</data>"));
}

// --- Pipeline integration ----------------------------------------------------

std::shared_ptr<const tokenizer::TokenizerInfo> TestTokenizer() {
  static auto info = std::make_shared<tokenizer::TokenizerInfo>(
      tokenizer::BuildSyntheticVocab({3000, 17}));
  return info;
}

// First non-special token whose bytes equal `text`, or -1.
std::int32_t FindToken(const tokenizer::TokenizerInfo& info,
                       const std::string& text) {
  for (std::int32_t id = 0; id < info.VocabSize(); ++id) {
    if (!info.IsSpecial(id) && info.TokenBytes(id) == text) return id;
  }
  return -1;
}

TEST(StructuralTag, MaskGenerationDrivesACompleteCall) {
  // Drive the XGrammar decoder token by token along a valid transcript and
  // check every emitted token is allowed by the mask it was sampled under.
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function="});
  auto pda = pda::CompiledGrammar::Compile(g);
  auto info = TestTokenizer();
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  baselines::XGrammarDecoder decoder(cache);

  const std::string transcript =
      "Checking. <function=get_weather>"
      R"({"city":"Lima","unit":"celsius"})"
      "</function> Done.";
  tokenizer::TokenTrie trie(*info);
  std::vector<std::int32_t> tokens = tokenizer::GreedyTokenize(trie, transcript);
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  for (std::int32_t token : tokens) {
    decoder.FillNextTokenBitmask(&mask);
    ASSERT_TRUE(mask.Test(static_cast<std::size_t>(token)))
        << "token '" << info->TokenBytes(token) << "' masked out";
    ASSERT_TRUE(decoder.AcceptToken(token));
  }
  EXPECT_TRUE(decoder.CanTerminate());
}

TEST(StructuralTag, MaskForbidsSchemaViolationInsideBody) {
  Grammar g = BuildStructuralTagGrammar(WeatherTags(), {"<function="});
  auto pda = pda::CompiledGrammar::Compile(g);
  auto info = TestTokenizer();
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, info);
  baselines::XGrammarDecoder decoder(cache);

  // Enter the body and open the object; the next key must start with "city"
  // or "unit" — a token starting the forbidden key "tz" must be masked.
  const std::string prefix = "<function=get_weather>{\"";
  tokenizer::TokenTrie trie(*info);
  for (std::int32_t token : tokenizer::GreedyTokenize(trie, prefix)) {
    ASSERT_TRUE(decoder.AcceptToken(token));
  }
  DynamicBitset mask(static_cast<std::size_t>(info->VocabSize()));
  decoder.FillNextTokenBitmask(&mask);
  std::int32_t tz = FindToken(*info, "tz");
  if (tz >= 0) {
    EXPECT_FALSE(mask.Test(static_cast<std::size_t>(tz)));
  }
  std::int32_t city = FindToken(*info, "city");
  if (city >= 0) {
    EXPECT_TRUE(mask.Test(static_cast<std::size_t>(city)));
  }
}

}  // namespace
}  // namespace xgr::grammar
