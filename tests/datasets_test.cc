// Tests for the synthetic workload generators: determinism, validity against
// the corresponding grammars/parsers, and schema/answer consistency.
#include <gtest/gtest.h>

#include "datasets/workloads.h"
#include "grammar/grammar.h"
#include "grammar/json_schema.h"
#include "json/json.h"
#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"

namespace xgr::datasets {
namespace {

TEST(Datasets, Deterministic) {
  EXPECT_EQ(GenerateJsonDocuments(3, 42), GenerateJsonDocuments(3, 42));
  EXPECT_NE(GenerateJsonDocuments(3, 42), GenerateJsonDocuments(3, 43));
  EXPECT_EQ(GenerateXmlDocuments(3, 7), GenerateXmlDocuments(3, 7));
  EXPECT_EQ(GeneratePythonPrograms(3, 7), GeneratePythonPrograms(3, 7));
  auto a = GenerateSchemaTasks(2, 11);
  auto b = GenerateSchemaTasks(2, 11);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].schema.Dump(), b[i].schema.Dump());
    EXPECT_EQ(a[i].canonical_answer.Dump(), b[i].canonical_answer.Dump());
  }
}

TEST(Datasets, JsonDocumentsParse) {
  for (const std::string& doc : GenerateJsonDocuments(25, 100)) {
    EXPECT_TRUE(json::IsValid(doc)) << doc;
  }
}

TEST(Datasets, SchemaTasksHaveParsablePrompts) {
  for (const auto& task : GenerateSchemaTasks(10, 200)) {
    EXPECT_FALSE(task.prompt.empty());
    EXPECT_NE(task.prompt.find("Schema:"), std::string::npos);
    EXPECT_TRUE(task.schema.IsObject());
    EXPECT_TRUE(json::IsValid(task.canonical_answer.Dump()));
  }
}

TEST(Datasets, SchemaAnswersConformToSchemas) {
  for (const auto& task : GenerateSchemaTasks(15, 300)) {
    grammar::Grammar g = grammar::JsonSchemaToGrammar(task.schema);
    auto pda = pda::CompiledGrammar::Compile(g);
    matcher::GrammarMatcher m(pda);
    EXPECT_TRUE(m.AcceptString(task.canonical_answer.Dump()) && m.CanTerminate())
        << task.canonical_answer.Dump() << "\n" << task.schema.Dump();
  }
}

TEST(Datasets, XmlDocumentsMatchGrammar) {
  static auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinXmlGrammar());
  for (const std::string& doc : GenerateXmlDocuments(25, 400)) {
    matcher::GrammarMatcher m(pda);
    EXPECT_TRUE(m.AcceptString(doc) && m.CanTerminate()) << doc;
  }
}

TEST(Datasets, PythonProgramsMatchGrammar) {
  static auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinPythonDslGrammar());
  for (const std::string& program : GeneratePythonPrograms(25, 500)) {
    matcher::GrammarMatcher m(pda);
    EXPECT_TRUE(m.AcceptString(program) && m.CanTerminate()) << program;
  }
}

TEST(Datasets, DepthParameterBoundsNesting) {
  // Depth-0 objects contain no nested objects.
  json::Value shallow = GenerateJsonValue(1, 0);
  ASSERT_TRUE(shallow.IsObject());
  for (const auto& [key, value] : shallow.AsObject()) {
    EXPECT_FALSE(value.IsObject()) << key;
  }
}

}  // namespace
}  // namespace xgr::datasets
