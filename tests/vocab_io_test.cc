// Tests for vocabulary persistence: exact byte round trips (including
// non-UTF-8 byte-fallback tokens via the GPT-2 byte↔unicode bijection),
// file I/O, malformed-input rejection, and end-to-end equivalence of an
// engine built on a reloaded vocabulary.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "cache/adaptive_cache.h"
#include "grammar/grammar.h"
#include "pda/compiled_grammar.h"
#include "serialize/serialize.h"
#include "support/logging.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/tokenizer_info.h"
#include "tokenizer/vocab_io.h"

namespace xgr::tokenizer {
namespace {

TEST(VocabIo, RoundTripsPlainTokens) {
  Vocabulary vocab;
  vocab.tokens = {"hello", " world", "<eos>"};
  vocab.special_ids = {2};
  vocab.eos_id = 2;
  Vocabulary restored = VocabularyFromJson(VocabularyToJson(vocab));
  EXPECT_EQ(restored.tokens, vocab.tokens);
  EXPECT_EQ(restored.special_ids, vocab.special_ids);
  EXPECT_EQ(restored.eos_id, 2);
  EXPECT_EQ(restored.bos_id, -1);
}

TEST(VocabIo, RoundTripsArbitraryBytes) {
  // Byte-fallback tokens, sub-UTF-8 pieces, control bytes, quotes and
  // backslashes — every byte value must survive exactly.
  Vocabulary vocab;
  vocab.tokens.push_back(std::string("\x00", 1));       // NUL
  vocab.tokens.push_back("\xC3");                       // dangling UTF-8 lead
  vocab.tokens.push_back("\xA9\xFF\x80");               // raw high bytes
  vocab.tokens.push_back("caf\xC3\xA9");                // valid UTF-8
  vocab.tokens.push_back("a\"b\\c\n\t ");               // JSON metachars
  std::string all_bytes;
  for (int b = 0; b < 256; ++b) all_bytes.push_back(static_cast<char>(b));
  vocab.tokens.push_back(all_bytes);
  vocab.eos_id = 0;
  vocab.special_ids = {0};

  std::string json_text = VocabularyToJson(vocab);
  Vocabulary restored = VocabularyFromJson(json_text);
  ASSERT_EQ(restored.tokens.size(), vocab.tokens.size());
  for (std::size_t i = 0; i < vocab.tokens.size(); ++i) {
    EXPECT_EQ(restored.tokens[i], vocab.tokens[i]) << "token " << i;
  }
}

TEST(VocabIo, SyntheticVocabularySurvivesExactly) {
  Vocabulary vocab = BuildSyntheticVocab({3000, 17});
  Vocabulary restored = VocabularyFromJson(VocabularyToJson(vocab));
  EXPECT_EQ(restored.tokens, vocab.tokens);
  EXPECT_EQ(restored.special_ids, vocab.special_ids);
  EXPECT_EQ(restored.eos_id, vocab.eos_id);
  EXPECT_EQ(restored.bos_id, vocab.bos_id);
}

TEST(VocabIo, FileRoundTrip) {
  Vocabulary vocab = BuildSyntheticVocab({1000, 3});
  const std::string path = "/tmp/xgr_vocab_io_test.json";
  SaveVocabulary(vocab, path);
  Vocabulary restored = LoadVocabulary(path);
  EXPECT_EQ(restored.tokens, vocab.tokens);
  std::remove(path.c_str());
}

TEST(VocabIo, MalformedInputsThrow) {
  EXPECT_THROW(VocabularyFromJson("not json"), CheckError);
  EXPECT_THROW(VocabularyFromJson("[]"), CheckError);
  EXPECT_THROW(VocabularyFromJson(R"({"no_tokens":1})"), CheckError);
  EXPECT_THROW(VocabularyFromJson(R"({"tokens":[]})"), CheckError);
  EXPECT_THROW(VocabularyFromJson(R"({"tokens":["a"],"eos_id":5})"), CheckError);
  EXPECT_THROW(VocabularyFromJson(R"({"tokens":["a"],"special_ids":[-1]})"),
               CheckError);
  EXPECT_THROW(VocabularyFromJson(R"({"tokens":[42]})"), CheckError);
  EXPECT_THROW(LoadVocabulary("/nonexistent/path.json"), CheckError);
}

TEST(VocabIo, ReloadedVocabularyPinsTheSameEngineArtifacts) {
  // The serialization module pins engine artifacts to a vocabulary hash; a
  // vocabulary that survived a JSON round trip must produce the same hash
  // and accept the same artifact.
  auto original = std::make_shared<TokenizerInfo>(BuildSyntheticVocab({2000, 17}));
  auto reloaded = std::make_shared<TokenizerInfo>(
      VocabularyFromJson(VocabularyToJson(original->Vocab())));
  EXPECT_EQ(serialize::VocabularyHash(*original),
            serialize::VocabularyHash(*reloaded));

  auto pda = pda::CompiledGrammar::Compile(grammar::BuiltinJsonGrammar());
  auto cache = cache::AdaptiveTokenMaskCache::Build(pda, original);
  std::string blob = serialize::SerializeEngineArtifact(*cache);
  EXPECT_NO_THROW(serialize::DeserializeEngineArtifact(blob, reloaded));
}

}  // namespace
}  // namespace xgr::tokenizer
