// Tests for the tokenizer substrate: BPE training/encoding, the synthetic
// vocabulary builder, TokenizerInfo preprocessing and the token trie.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "support/rng.h"
#include "support/string_utils.h"
#include "tokenizer/bpe.h"
#include "tokenizer/synthetic_vocab.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::tokenizer {
namespace {

std::string SampleCorpus() {
  std::string corpus;
  for (int i = 0; i < 60; ++i) {
    corpus +=
        "the quick brown fox jumps over the lazy dog and the cat sat on "
        "the mat while json objects like {\"key\": \"value\"} appear often ";
  }
  return corpus;
}

TEST(Bpe, TrainingGrowsVocabulary) {
  BpeModel model = BpeModel::Train(SampleCorpus(), 400);
  EXPECT_GT(model.VocabSize(), 256);
  EXPECT_LE(model.VocabSize(), 400);
}

TEST(Bpe, EncodeDecodeRoundTrip) {
  BpeModel model = BpeModel::Train(SampleCorpus(), 400);
  for (const char* text :
       {"the quick brown fox", "json objects", "completely novel zxqj bytes",
        "with\nnewlines\tand tabs", "unicode caf\xC3\xA9"}) {
    std::vector<std::int32_t> ids = model.Encode(text);
    EXPECT_EQ(model.Decode(ids), text);
  }
}

TEST(Bpe, FrequentWordsCompressWell) {
  BpeModel model = BpeModel::Train(SampleCorpus(), 500);
  // "the" appears everywhere: should encode in very few tokens.
  EXPECT_LE(model.Encode(" the").size(), 2u);
  // Rare letter salad decomposes into more pieces than common words.
  EXPECT_GT(model.Encode(" zqxv").size(), model.Encode(" the").size());
}

TEST(Bpe, TrainingIsDeterministic) {
  BpeModel a = BpeModel::Train(SampleCorpus(), 350);
  BpeModel b = BpeModel::Train(SampleCorpus(), 350);
  ASSERT_EQ(a.VocabSize(), b.VocabSize());
  for (std::int32_t i = 0; i < a.VocabSize(); ++i) {
    EXPECT_EQ(a.TokenBytes(i), b.TokenBytes(i));
  }
}

TEST(Bpe, ToVocabularyAppendsSpecials) {
  BpeModel model = BpeModel::Train(SampleCorpus(), 300);
  Vocabulary vocab = model.ToVocabulary();
  EXPECT_EQ(vocab.Size(), model.VocabSize() + 2);
  EXPECT_EQ(vocab.eos_id, vocab.Size() - 1);
  EXPECT_EQ(vocab.special_ids.size(), 2u);
}

// --- Synthetic vocabulary ----------------------------------------------------

class SyntheticVocabTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(SyntheticVocabTest, ExactSizeUniqueEntriesByteCoverage) {
  Vocabulary vocab = BuildSyntheticVocab({GetParam(), 7});
  EXPECT_EQ(vocab.Size(), GetParam());
  std::unordered_set<std::string> seen;
  for (const std::string& token : vocab.tokens) {
    EXPECT_TRUE(seen.insert(token).second) << "duplicate " << EscapeBytes(token);
  }
  // Byte fallback: every single byte present.
  for (int b = 0; b < 256; ++b) {
    EXPECT_TRUE(seen.count(std::string(1, static_cast<char>(b))) > 0) << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyntheticVocabTest,
                         ::testing::Values(2000, 8000, 32000));

TEST(SyntheticVocab, DeterministicForSeed) {
  Vocabulary a = BuildSyntheticVocab({4000, 9});
  Vocabulary b = BuildSyntheticVocab({4000, 9});
  EXPECT_EQ(a.tokens, b.tokens);
  Vocabulary c = BuildSyntheticVocab({4000, 10});
  EXPECT_NE(a.tokens, c.tokens);
}

TEST(SyntheticVocab, LlamaLikeStatistics) {
  Vocabulary vocab = BuildSyntheticVocab({32000, 2024});
  double total_bytes = 0;
  int with_space = 0;
  int multibyte_utf8 = 0;
  for (const std::string& token : vocab.tokens) {
    total_bytes += static_cast<double>(token.size());
    if (!token.empty() && token[0] == ' ') ++with_space;
    if (!token.empty() && static_cast<unsigned char>(token[0]) >= 0xC0) ++multibyte_utf8;
  }
  double mean_length = total_bytes / vocab.Size();
  EXPECT_GT(mean_length, 3.0);   // Llama-3-like regime (theirs: ~4.3)
  EXPECT_LT(mean_length, 8.0);
  EXPECT_GT(with_space, vocab.Size() / 4);  // leading-space variants dominate
  EXPECT_GT(multibyte_utf8, 50);
}

// --- TokenizerInfo -------------------------------------------------------------

TEST(TokenizerInfo, SortedOrderAndPrefixTable) {
  auto info = TokenizerInfo(BuildSyntheticVocab({3000, 5}));
  const auto& sorted = info.SortedTokenIds();
  const auto& prefixes = info.SortedCommonPrefixLengths();
  ASSERT_EQ(sorted.size(), prefixes.size());
  EXPECT_EQ(sorted.size(), static_cast<std::size_t>(info.VocabSize()) - 2);  // specials excluded
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const std::string& prev = info.TokenBytes(sorted[i - 1]);
    const std::string& cur = info.TokenBytes(sorted[i]);
    EXPECT_LE(prev, cur);
    EXPECT_EQ(static_cast<std::size_t>(prefixes[i]), CommonPrefixLength(prev, cur));
  }
}

TEST(TokenizerInfo, PrefixSkipSavesBytes) {
  auto info = TokenizerInfo(BuildSyntheticVocab({32000, 5}));
  // The §3.3 statistic: sorted traversal re-checks well under half the bytes.
  EXPECT_LT(static_cast<double>(info.BytesAfterPrefixSkip()),
            0.5 * static_cast<double>(info.TotalTokenBytes()));
}

TEST(TokenizerInfo, SpecialsExcludedFromSortedList) {
  auto info = TokenizerInfo(BuildSyntheticVocab({2000, 5}));
  for (std::int32_t id : info.SortedTokenIds()) {
    EXPECT_FALSE(info.IsSpecial(id));
  }
  EXPECT_TRUE(info.IsSpecial(info.EosId()));
}

// --- TokenTrie -------------------------------------------------------------------

TEST(TokenTrie, LongestMatchAgreesWithBruteForce) {
  auto info = TokenizerInfo(BuildSyntheticVocab({3000, 5}));
  TokenTrie trie(info);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    // Random text stitched from tokens + noise.
    std::string text;
    for (int i = 0; i < 4; ++i) {
      text += info.TokenBytes(static_cast<std::int32_t>(rng.NextBounded(info.VocabSize() - 2)));
    }
    std::size_t pos = rng.NextBounded(text.size());
    std::size_t trie_len = 0;
    trie.LongestMatch(text, pos, &trie_len);
    // Brute force: longest token that prefixes text[pos:].
    std::size_t best = 0;
    for (std::int32_t id : info.SortedTokenIds()) {
      const std::string& token = info.TokenBytes(id);
      if (token.size() > best && text.compare(pos, token.size(), token) == 0) {
        best = token.size();
      }
    }
    EXPECT_EQ(trie_len, best) << "text=" << EscapeBytes(text) << " pos=" << pos;
  }
}

TEST(TokenTrie, GreedyTokenizeRoundTrips) {
  auto info = TokenizerInfo(BuildSyntheticVocab({3000, 5}));
  TokenTrie trie(info);
  for (const char* text :
       {"hello world", "{\"json\": [1, 2, 3]}", "\xF0\x9F\x98\x80 emoji",
        "arbitrary \x7F bytes \xFE\xFF"}) {
    std::vector<std::int32_t> ids = GreedyTokenize(trie, text);
    std::string decoded;
    for (std::int32_t id : ids) decoded += info.TokenBytes(id);
    EXPECT_EQ(decoded, text);
  }
}

TEST(TokenTrie, GreedyPrefersLongestToken) {
  Vocabulary vocab;
  vocab.tokens = {"a", "b", "ab", "abc", "c"};
  auto info = TokenizerInfo(vocab);
  TokenTrie trie(info);
  std::vector<std::int32_t> ids = GreedyTokenize(trie, "abc");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(info.TokenBytes(ids[0]), "abc");
  ids = GreedyTokenize(trie, "abab");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(info.TokenBytes(ids[0]), "ab");
}

}  // namespace
}  // namespace xgr::tokenizer
