// Tag-dispatch composition: agentic structural tags without a monolithic
// grammar.
//
// BuildStructuralTagGrammar (src/grammar/structural_tag.h) compiles every
// tool schema into ONE grammar, so compile time and artifact size scale with
// the full toolset even though a request typically invokes one tool, and the
// per-prose-byte cost runs through the PDA (right-recursive free rules grow
// the matching stack with the text). This layer decomposes the protocol at
// runtime instead:
//
//   * free text runs on the trigger Aho-Corasick automaton directly — a DFA
//     step per byte, no PDA stack growth and no allocations;
//   * when a trigger completes, the matcher dispatches into that tag's
//     SEPARATELY COMPILED segment grammar (`begin body end`, one artifact per
//     tag) — content-addressed in the GrammarRegistry and prefetched through
//     the CompileService at kPrefetch priority, so a tool schema is compiled
//     once per registry lifetime no matter how many configs mention it and
//     adding a tool never recompiles the world;
//   * at the end marker the matcher returns to free text.
//
// The composite accepts exactly the same byte strings and produces
// bit-identical per-token masks as the monolithic grammar (the differential
// suite in tests/tag_dispatch_test.cc enforces this). Exactness requires care
// at three boundaries, all handled here:
//
//   1. Trigger-completion alignment. When a trigger completes, a begin marker
//      may have started at ANY earlier offset whose suffix is a prefix of
//      some begin — including prefixes of *other* triggers (overlapping
//      trigger sets like {"ab","bc"} over the text "abc..."). The dispatch
//      candidates are exactly the failure-chain states of the dead automaton
//      state, so every alignment spawns its own tag thread.
//   2. UTF-8. The monolithic free-text rules match codepoints, so free text
//      accepts exactly valid UTF-8 (sub-UTF8 tokens are viable mid-sequence
//      but free text can neither end nor dispatch there). The free segment
//      therefore runs the product of the trigger DFA and the standard UTF-8
//      byte DFA; since triggers are ASCII, the product adds only 7 states.
//   3. Segment spill. A single token may close the active tag mid-token and
//      continue as free text (or even open the next tag). Any string that
//      completes a tag ends with the tag's end marker, so the spill
//      candidates per tag are precomputable: tokens whose prefix is a proper
//      suffix of the end marker (checked with one shared probe per cut
//      length) or which contain the whole end marker (checked individually).
//
// Per-token mask cost in free text is one bitset copy plus a short boundary
// list — independent of toolset size; in-tag cost is one MaskGenerator pass
// over the ACTIVE tag's cache (its MaskWorkspace reused across steps) plus
// the spill probes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/mask_generator.h"
#include "grammar/structural_tag.h"
#include "matcher/grammar_matcher.h"
#include "runtime/compile_service.h"
#include "support/dynamic_bitset.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::compose {

struct TagDispatchConfig {
  std::vector<grammar::StructuralTag> tags;
  std::vector<std::string> triggers;
  // Same semantics as grammar::StructuralTagOptions (the monolithic
  // differential counterpart is built with exactly these values).
  bool allow_free_text = true;
  std::int32_t max_invocations = -1;  // -1 = unbounded
  bool require_invocation = false;
};

// Counters the decoder and the serving engine report. Plan-level fields are
// stamped once at plan build and constant afterwards; run-level fields grow
// monotonically with decoding (the engine aggregates per-run deltas).
struct TagDispatchStats {
  // Plan-level (constant after TagDispatchPlan::Build).
  std::int64_t tags = 0;
  std::int64_t prefetch_submits = 0;   // one kPrefetch job per tag
  std::int64_t prefetch_hits = 0;      // artifact resident at submit time
  std::int64_t prefetch_waits = 0;     // plan build had to wait for a build
  // Run-level.
  std::int64_t dispatches = 0;         // trigger completions entering tags
  std::int64_t segment_switches = 0;   // free->tag and tag->free transitions
  std::int64_t free_tokens = 0;        // tokens accepted with no tag thread
  std::int64_t tag_tokens = 0;         // tokens accepted with >=1 tag thread
  std::int64_t spill_probes = 0;       // end-boundary completion probes
  std::int64_t threads_peak = 0;       // max simultaneous parse threads
};

// --- UTF-8 byte DFA (exported for tests) ------------------------------------
// States of the standard UTF-8 acceptor: kU8Boundary between characters, the
// others mid-sequence. kU8Reject is a trap.
enum : std::uint8_t {
  kU8Boundary = 0,
  kU8Tail1,  // 1 continuation byte left (80-BF)
  kU8Tail2,  // 2 left
  kU8Tail3,  // 3 left
  kU8LeadE0, // after E0: next must be A0-BF
  kU8LeadED, // after ED: next must be 80-9F (no surrogates)
  kU8LeadF0, // after F0: next must be 90-BF
  kU8LeadF4, // after F4: next must be 80-8F (<= U+10FFFF)
  kU8NumStates,
  kU8Reject = 0xFF,
};
std::uint8_t Utf8Next(std::uint8_t state, std::uint8_t byte);

// --- Plan --------------------------------------------------------------------
//
// The immutable per-config artifact the composite decoder runs on: the
// trigger automaton, per-tag segment artifacts (registry-shared), the
// per-state free-text token tables and the per-tag spill tables. Build cost
// is O(states x vocab) DFA walks plus a full simulation of the few
// trigger-adjacent tokens — independent of how many OTHER configs exist, and
// every per-tag compile is a registry hit after its first use anywhere.
// Thread-safe after Build (all state is const).
class TagDispatchPlan {
 public:
  // Compiles (or fetches) every tag segment through `service` and builds the
  // dispatch tables. Throws xgr::CheckError on invalid configs (no triggers,
  // a begin marker no trigger prefixes, schema errors).
  static std::shared_ptr<const TagDispatchPlan> Build(
      const TagDispatchConfig& config, runtime::CompileService* service);

  const TagDispatchConfig& Config() const { return config_; }
  const grammar::TriggerAutomaton& Automaton() const { return automaton_; }
  const tokenizer::TokenizerInfo& Tokenizer() const { return *tokenizer_; }
  const std::shared_ptr<const tokenizer::TokenizerInfo>& TokenizerShared() const {
    return tokenizer_;
  }
  std::int32_t NumTags() const {
    return static_cast<std::int32_t>(config_.tags.size());
  }
  const runtime::Artifact& TagArtifact(std::int32_t tag) const {
    return artifacts_[static_cast<std::size_t>(tag)];
  }
  // Plan-level stats (prefetch accounting); run-level fields are zero.
  const TagDispatchStats& BuildStats() const { return build_stats_; }
  double PreprocessSeconds() const { return preprocess_seconds_; }

  // --- Dispatch tables (used by TagDispatchMatcher and tests) ---------------

  // A begin marker may have started `prefix_len` bytes before the byte that
  // completed a trigger; the tag's matcher is seeded with begin[0..prefix_len).
  struct DispatchCandidate {
    std::int32_t tag = 0;
    std::int32_t prefix_len = 0;
  };
  // Candidates for a *dead* automaton state (empty for live states).
  const std::vector<DispatchCandidate>& Candidates(std::int32_t state) const {
    return dispatch_candidates_[static_cast<std::size_t>(state)];
  }

  // A token acceptable from a free state only by entering tags: allowed at
  // runtime iff `min_uses` more invocations fit the remaining budget.
  struct BoundaryToken {
    std::int32_t token_id = 0;
    std::int32_t min_uses = 0;  // minimal tag entries over accepting parses
  };
  struct FreeStateTable {
    DynamicBitset stay;  // tokens that remain entirely in free text
    std::vector<BoundaryToken> boundary;
  };
  // Table for a live automaton state at a UTF-8 character boundary.
  const FreeStateTable& FreeTable(std::int32_t ac_state) const {
    return free_tables_[static_cast<std::size_t>(ac_state)];
  }
  // Table for mid-UTF-8 states (automaton state pinned to 0).
  const FreeStateTable& FreeTableMidUtf8(std::uint8_t utf8_state) const {
    return utf8_tables_[static_cast<std::size_t>(utf8_state) - 1];
  }

  // A token that may close the active tag after `cut` bytes and continue as
  // free text / further tags. For cut < |end|, the consumed prefix is always
  // end[|end|-cut ..), so one probe per cut covers every candidate sharing it.
  struct SpillCandidate {
    std::int32_t token_id = 0;
    std::int32_t v_min_uses = 0;  // tag entries needed by the remainder
  };
  struct TagSpillTable {
    // by_cut[cut-1] lists candidates with that cut (cut in 1..|end|-1).
    std::vector<std::vector<SpillCandidate>> by_cut;
    // Candidates whose cut >= |end| (the token contains the whole end
    // marker); probed individually with their own prefix bytes.
    struct LongCandidate {
      std::int32_t token_id = 0;
      std::int32_t cut = 0;
      std::int32_t v_min_uses = 0;
    };
    std::vector<LongCandidate> long_cuts;
  };
  // Spill tables are shared between tags with identical end markers (the
  // table is a pure function of the end marker and the config continuation).
  const TagSpillTable& SpillTable(std::int32_t tag) const {
    return spill_tables_[static_cast<std::size_t>(
        spill_table_of_tag_[static_cast<std::size_t>(tag)])];
  }

  std::int32_t MinInvocations() const { return config_.require_invocation ? 1 : 0; }
  // Remaining-entry budget semantics: entries committed so far must stay
  // <= max (unbounded when max < 0).
  std::int32_t MaxInvocations() const { return config_.max_invocations; }

 private:
  TagDispatchPlan() = default;

  TagDispatchConfig config_;
  grammar::TriggerAutomaton automaton_;
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  std::vector<runtime::Artifact> artifacts_;
  std::vector<std::vector<DispatchCandidate>> dispatch_candidates_;
  std::vector<FreeStateTable> free_tables_;       // by automaton state
  std::vector<FreeStateTable> utf8_tables_;       // by utf8 state - 1
  std::vector<TagSpillTable> spill_tables_;       // one per distinct end marker
  std::vector<std::int32_t> spill_table_of_tag_;
  TagDispatchStats build_stats_;
  double preprocess_seconds_ = 0.0;
};

// --- Matcher -----------------------------------------------------------------
//
// The segment state machine: a small set of parse threads, each either
//   * kFree  — in free text at (automaton state, UTF-8 state); a plain DFA
//     position, no matcher, no allocations;
//   * kTag   — inside tag `tag` with its own GrammarMatcher on the tag's
//     segment grammar;
//   * kGap   — between tags when free text is disabled (carries only EOS
//     eligibility; fresh kTag threads are spawned alongside it).
// Several threads coexist exactly where the monolithic grammar is ambiguous
// (overlapping triggers, a tag that may close or continue). One instance per
// generation request; not thread-safe. Per-tag MaskGenerators (and their
// MaskWorkspaces) are pooled across invocations of the same tag.
class TagDispatchMatcher {
 public:
  explicit TagDispatchMatcher(std::shared_ptr<const TagDispatchPlan> plan);

  // All-or-nothing: on failure the state is unchanged.
  bool AcceptBytes(std::string_view bytes);
  // Fills the allowed-token mask for the current state (bit-identical to the
  // monolithic path). Allocation-free in steady state while no tag thread is
  // live (the free-text segment).
  void FillNextTokenBitmask(DynamicBitset* mask);
  bool CanTerminate() const;
  void Reset();

  // Forced continuation when a single in-tag thread is active ("" otherwise;
  // free text is never forced). Trimmed to a codepoint boundary by the
  // underlying matcher.
  std::string FindJumpForwardString(std::int32_t max_length = 256);

  // --- Transactional k-token draft verification ----------------------------
  struct TokenDraftResult {
    std::int32_t accepted = 0;  // draft tokens accepted (prefix length)
    bool exhausted = false;     // accepted == count: no divergence found
    bool terminated = false;    // walk hit EOS where EOS is legal
  };
  // Walks a k-token draft with exactly AcceptBytes' per-token fork semantics
  // — drafts may cross free-text/segment boundaries; threads spawn and die
  // per byte as in single-token dispatch — while snapshotting the thread set
  // at every accepted token boundary so any prefix can be kept. On return
  // the matcher has advanced to the accepted prefix with the transaction
  // OPEN: close it with CommitDraft(keep). An EOS draft token ends the walk
  // without counting or consuming state.
  void VerifyTokenDraft(const std::int32_t* draft, std::int32_t count,
                        TokenDraftResult* result);
  // Keeps the first `keep` (0 <= keep <= accepted) tokens of the open draft,
  // restoring the thread set snapshotted at that boundary: surviving tag
  // threads roll their (shared) matchers back to the recorded depths, and
  // threads born later vanish with the discarded snapshots. O(snapshot size),
  // allocation-free once snapshot slots are warm.
  void CommitDraft(std::int32_t keep);

  const TagDispatchPlan& Plan() const { return *plan_; }
  const TagDispatchStats& Stats() const { return stats_; }
  // Sum of the per-tag generators' mask stats (ctx-check attribution etc.).
  const cache::MaskGenStats& AggregatedMaskStats() const;
  std::size_t NumThreads() const { return threads_.size(); }

 private:
  struct Thread {
    enum class Kind : std::uint8_t { kFree, kGap, kTag };
    Kind kind = Kind::kFree;
    std::int32_t ac_state = 0;           // kFree
    std::uint8_t utf8_state = kU8Boundary;  // kFree
    // Tag entries committed, including a kTag thread's in-progress one.
    std::int32_t invocations = 0;
    std::int32_t tag = -1;               // kTag
    std::shared_ptr<matcher::GrammarMatcher> matcher;  // kTag
    std::int32_t entry_depth = 0;  // matcher depth at token start (rollback)
  };

  // Steps every thread over one byte (threads_ -> scratch_threads_, swapped
  // in). Returns false when every thread died.
  bool StepByte(std::uint8_t byte);
  void SpawnDispatch(std::int32_t dead_state, std::int32_t invocations);
  // After a tag thread's matcher reaches a terminable state: spawn the
  // between-tags continuation (free/gap thread + fresh tags when free text
  // is disabled) into scratch_threads_.
  void SpawnGapAfterTag(std::int32_t invocations);
  void PushFree(std::int32_t ac_state, std::uint8_t utf8_state,
                std::int32_t invocations);
  void PushGap(std::int32_t invocations);
  void SpawnFreshTags(std::int32_t invocations);
  cache::MaskGenerator& GeneratorFor(std::int32_t tag);
  // Does `m` accept `bytes` and reach a terminable state? State restored.
  bool CanCompleteWith(matcher::GrammarMatcher* m, std::string_view bytes);

  // Thread set frozen at one draft-token boundary. Matcher handles are
  // SHARED with the live threads; `depths` records each tag thread's byte
  // depth at the boundary so restore can RollbackToDepth (the persistent
  // stack pool is append-only, so earlier depths stay valid while the walk
  // advances).
  struct DraftSnapshot {
    std::vector<Thread> threads;
    std::vector<std::int32_t> depths;
  };
  void SaveDraftSnapshot(std::size_t slot);

  std::shared_ptr<const TagDispatchPlan> plan_;
  std::vector<Thread> threads_;
  std::vector<Thread> scratch_threads_;  // StepByte output buffer
  std::vector<Thread> backup_threads_;   // token-level rollback
  std::vector<DraftSnapshot> draft_snapshots_;  // [0] = pre-draft state
  std::int32_t draft_accepted_ = -1;  // open transaction, -1 = none
  std::vector<std::unique_ptr<cache::MaskGenerator>> generators_;  // per tag
  DynamicBitset tag_mask_scratch_;
  bool token_saw_tag_ = false;  // any kTag thread live during this token
  TagDispatchStats stats_;
  mutable cache::MaskGenStats mask_stats_agg_;
};

}  // namespace xgr::compose
