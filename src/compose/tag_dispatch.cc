#include "compose/tag_dispatch.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/logging.h"
#include "support/timer.h"

namespace xgr::compose {

namespace {

// Parse-thread budget. Real configs keep a handful of threads (one free
// thread, occasionally one or two tag threads across an ambiguous close) —
// EXCEPT at a dispatch, which legitimately fans out one thread per tag
// sharing the completed trigger, so the cap must scale with the toolset.
// Blowing it means a pathologically ambiguous trigger/marker set.
std::size_t ThreadBudget(std::size_t num_tags) {
  return 64 + 4 * num_tags;
}
std::size_t SimThreadBudget(std::size_t num_tags) {
  return 256 + 4 * num_tags;
}

constexpr std::int32_t kUnbounded = std::numeric_limits<std::int32_t>::max();

std::int32_t RemainingBudget(std::int32_t max_invocations, std::int32_t used) {
  return max_invocations < 0 ? kUnbounded : max_invocations - used;
}

}  // namespace

std::uint8_t Utf8Next(std::uint8_t state, std::uint8_t byte) {
  switch (state) {
    case kU8Boundary:
      if (byte < 0x80) return kU8Boundary;
      if (byte >= 0xC2 && byte <= 0xDF) return kU8Tail1;
      if (byte == 0xE0) return kU8LeadE0;
      if (byte >= 0xE1 && byte <= 0xEC) return kU8Tail2;
      if (byte == 0xED) return kU8LeadED;
      if (byte >= 0xEE && byte <= 0xEF) return kU8Tail2;
      if (byte == 0xF0) return kU8LeadF0;
      if (byte >= 0xF1 && byte <= 0xF3) return kU8Tail3;
      if (byte == 0xF4) return kU8LeadF4;
      return kU8Reject;  // stray continuation, C0/C1 overlong, F5..FF
    case kU8Tail1:
      return byte >= 0x80 && byte <= 0xBF ? kU8Boundary : kU8Reject;
    case kU8Tail2:
      return byte >= 0x80 && byte <= 0xBF ? kU8Tail1 : kU8Reject;
    case kU8Tail3:
      return byte >= 0x80 && byte <= 0xBF ? kU8Tail2 : kU8Reject;
    case kU8LeadE0:
      return byte >= 0xA0 && byte <= 0xBF ? kU8Tail1 : kU8Reject;
    case kU8LeadED:
      return byte >= 0x80 && byte <= 0x9F ? kU8Tail1 : kU8Reject;
    case kU8LeadF0:
      return byte >= 0x90 && byte <= 0xBF ? kU8Tail2 : kU8Reject;
    case kU8LeadF4:
      return byte >= 0x80 && byte <= 0x8F ? kU8Tail2 : kU8Reject;
    default:
      return kU8Reject;
  }
}

namespace {

// --- Build-time simulator ----------------------------------------------------
//
// The exact composite transition relation, used to annotate the precomputed
// tables: boundary tokens (free-state tokens that enter tags) and spill
// remainders (bytes after a tag closes mid-token). Tracks the minimal number
// of tag entries over accepting parses; budget filtering happens at runtime
// against that number. Allocation discipline does not matter here — this
// runs once per plan, never on the decode path.
//
// LOCKSTEP CONTRACT: Run() below and TagDispatchMatcher::StepByte implement
// the SAME transition relation and must change together (the deliberate
// differences are exactly two: the simulator never budget-gates spawns — it
// records min_uses for runtime filtering instead — and it has its own thread
// cap). Divergence silently breaks the bit-identical-mask guarantee; the
// differential suite in tests/tag_dispatch_test.cc is the tripwire.
class Simulator {
 public:
  explicit Simulator(const TagDispatchPlan& plan) : plan_(plan) {}

  struct Outcome {
    bool viable = false;
    std::int32_t min_uses = 0;
  };

  Outcome FromFreeState(std::int32_t ac_state, std::uint8_t utf8_state,
                        std::string_view bytes) {
    threads_.clear();
    threads_.push_back(SimThread::Free(ac_state, utf8_state, 0));
    return Run(bytes);
  }

  // The continuation point right after a tag's end marker.
  Outcome FromAfterTag(std::string_view bytes) {
    threads_.clear();
    SeedGap(0, &threads_);
    return Run(bytes);
  }

 private:
  struct SimThread {
    enum class Kind : std::uint8_t { kFree, kGap, kTag };
    Kind kind = Kind::kFree;
    std::int32_t ac_state = 0;
    std::uint8_t utf8_state = kU8Boundary;
    std::int32_t uses = 0;  // tag entries, including an in-progress one
    std::int32_t tag = -1;
    std::shared_ptr<matcher::GrammarMatcher> matcher;

    static SimThread Free(std::int32_t ac, std::uint8_t u8, std::int32_t uses) {
      SimThread t;
      t.kind = Kind::kFree;
      t.ac_state = ac;
      t.utf8_state = u8;
      t.uses = uses;
      return t;
    }
  };

  void PushFree(std::int32_t ac, std::uint8_t u8, std::int32_t uses,
                std::vector<SimThread>* out) {
    for (const SimThread& t : *out) {
      if (t.kind == SimThread::Kind::kFree && t.ac_state == ac &&
          t.utf8_state == u8 && t.uses == uses) {
        return;
      }
    }
    out->push_back(SimThread::Free(ac, u8, uses));
  }

  void SpawnTag(std::int32_t tag, std::string_view begin_prefix,
                std::int32_t uses, std::vector<SimThread>* out) {
    SimThread t;
    t.kind = SimThread::Kind::kTag;
    t.tag = tag;
    t.uses = uses;
    t.matcher = std::make_shared<matcher::GrammarMatcher>(
        plan_.TagArtifact(tag)->PdaShared());
    bool ok = t.matcher->AcceptString(begin_prefix);
    XGR_CHECK(ok) << "begin-marker prefix rejected by its own segment grammar";
    out->push_back(std::move(t));
  }

  // The between-tags continuation: free text (allow_free_text) or a gap
  // marker plus a fresh thread per tag.
  void SeedGap(std::int32_t uses, std::vector<SimThread>* out) {
    if (plan_.Config().allow_free_text) {
      PushFree(0, kU8Boundary, uses, out);
      return;
    }
    for (const SimThread& t : *out) {
      if (t.kind == SimThread::Kind::kGap && t.uses == uses) return;
    }
    SimThread gap;
    gap.kind = SimThread::Kind::kGap;
    gap.uses = uses;
    out->push_back(std::move(gap));
    for (std::int32_t tag = 0; tag < plan_.NumTags(); ++tag) {
      SpawnTag(tag, std::string_view(), uses + 1, out);
    }
  }

  Outcome Run(std::string_view bytes) {
    for (char c : bytes) {
      auto byte = static_cast<std::uint8_t>(c);
      next_.clear();
      for (SimThread& t : threads_) {
        switch (t.kind) {
          case SimThread::Kind::kFree: {
            if (t.utf8_state != kU8Boundary || byte >= 0x80) {
              std::uint8_t u8 = Utf8Next(t.utf8_state, byte);
              if (u8 != kU8Reject) PushFree(0, u8, t.uses, &next_);
              break;
            }
            std::int32_t target = plan_.Automaton().Step(t.ac_state, byte);
            if (!plan_.Automaton().dead[static_cast<std::size_t>(target)]) {
              PushFree(target, kU8Boundary, t.uses, &next_);
              break;
            }
            for (const TagDispatchPlan::DispatchCandidate& cand :
                 plan_.Candidates(target)) {
              SpawnTag(cand.tag,
                       std::string_view(
                           plan_.Config().tags[static_cast<std::size_t>(cand.tag)]
                               .begin)
                           .substr(0, static_cast<std::size_t>(cand.prefix_len)),
                       t.uses + 1, &next_);
            }
            break;
          }
          case SimThread::Kind::kGap:
            break;  // a gap consumes no bytes
          case SimThread::Kind::kTag: {
            if (!t.matcher->AcceptByte(byte)) break;
            bool terminable = t.matcher->CanTerminate();
            std::int32_t uses = t.uses;
            next_.push_back(std::move(t));
            if (terminable) SeedGap(uses, &next_);
            break;
          }
        }
      }
      threads_.swap(next_);
      XGR_CHECK(threads_.size() <=
                SimThreadBudget(static_cast<std::size_t>(plan_.NumTags())))
          << "tag-dispatch simulation exceeded its thread budget; the "
          << "trigger/marker set is pathologically ambiguous";
      if (threads_.empty()) return Outcome{};
    }
    Outcome outcome;
    outcome.viable = true;
    outcome.min_uses = kUnbounded;
    for (const SimThread& t : threads_) {
      outcome.min_uses = std::min(outcome.min_uses, t.uses);
    }
    return outcome;
  }

  const TagDispatchPlan& plan_;
  std::vector<SimThread> threads_;
  std::vector<SimThread> next_;
};

// Pure free-text walk of one token from a combined (automaton, UTF-8) state:
// kStays (never leaves free text), kDies (invalid UTF-8), or kDispatches
// (completes a trigger somewhere).
enum class FreeWalk : std::uint8_t { kStays, kDies, kDispatches };

FreeWalk WalkFree(const grammar::TriggerAutomaton& ac, std::int32_t ac_state,
                  std::uint8_t utf8_state, std::string_view bytes) {
  for (char c : bytes) {
    auto byte = static_cast<std::uint8_t>(c);
    if (utf8_state != kU8Boundary || byte >= 0x80) {
      utf8_state = Utf8Next(utf8_state, byte);
      if (utf8_state == kU8Reject) return FreeWalk::kDies;
      ac_state = 0;
      continue;
    }
    ac_state = ac.Step(ac_state, byte);
    if (ac.dead[static_cast<std::size_t>(ac_state)]) return FreeWalk::kDispatches;
  }
  return FreeWalk::kStays;
}

}  // namespace

// --- Plan build --------------------------------------------------------------

std::shared_ptr<const TagDispatchPlan> TagDispatchPlan::Build(
    const TagDispatchConfig& config, runtime::CompileService* service) {
  XGR_CHECK(service != nullptr) << "tag dispatch needs a CompileService";
  XGR_CHECK(!config.tags.empty()) << "no structural tags given";
  Timer timer;
  auto plan = std::shared_ptr<TagDispatchPlan>(new TagDispatchPlan());
  plan->config_ = config;
  plan->automaton_ = grammar::BuildTriggerAutomaton(config.triggers);
  for (const grammar::StructuralTag& tag : config.tags) {
    XGR_CHECK(!tag.begin.empty()) << "empty begin marker";
    XGR_CHECK(!tag.end.empty()) << "empty end marker";
    XGR_CHECK(grammar::LongestTriggerPrefix(tag.begin, config.triggers) >= 0)
        << "begin marker '" << tag.begin << "' must extend a trigger";
  }

  // Per-tag segment artifacts: submitted as prefetch (they yield to any
  // interactive compile elsewhere in the process), then collected. A tag
  // already compiled by any earlier config — or an earlier session via the
  // registry's disk tier — resolves without a build.
  std::vector<runtime::CompileTicket> tickets;
  tickets.reserve(config.tags.size());
  for (const grammar::StructuralTag& tag : config.tags) {
    runtime::CompileJob job;
    job.kind = runtime::GrammarKind::kTagSegment;
    job.source = grammar::EncodeTagSegmentSource(tag);
    // A prefetch hit is "artifact resident at submit time" (a registry hit),
    // NOT "ticket ready when we looked": a fast worker can finish a fresh
    // compile between Submit and a Ready() probe, which would miscount a
    // cold build as a hit.
    const std::int64_t registry_hits_before = service->Stats().registry_hits;
    tickets.push_back(
        service->Submit(std::move(job), runtime::CompilePriority::kPrefetch));
    ++plan->build_stats_.prefetch_submits;
    plan->build_stats_.prefetch_hits +=
        service->Stats().registry_hits - registry_hits_before;
  }
  plan->artifacts_.reserve(tickets.size());
  for (runtime::CompileTicket& ticket : tickets) {
    if (!ticket.Ready()) ++plan->build_stats_.prefetch_waits;
    plan->artifacts_.push_back(ticket.Get());
  }
  plan->build_stats_.tags = static_cast<std::int64_t>(config.tags.size());
  plan->tokenizer_ = plan->artifacts_.front()->TokenizerShared();
  const tokenizer::TokenizerInfo& tok = *plan->tokenizer_;

  // Dispatch candidates: for each dead state, every suffix of its prefix
  // string that is itself a trie prefix (the failure chain) marks a position
  // where a begin marker may have started — spawn every tag whose begin
  // extends that suffix. This is what keeps overlapping trigger sets exact:
  // over {"ab","bc"} the text "abc" dies at "ab" but the chain contains "b",
  // so a tag with begin "bc..." is still entered at the right alignment.
  const grammar::TriggerAutomaton& ac = plan->automaton_;
  std::vector<std::string> state_str(static_cast<std::size_t>(ac.num_states));
  for (const std::string& trigger : config.triggers) {
    std::int32_t s = 0;
    std::string prefix;
    for (char c : trigger) {
      s = ac.Step(s, static_cast<std::uint8_t>(c));
      prefix += c;
      state_str[static_cast<std::size_t>(s)] = prefix;
    }
  }
  plan->dispatch_candidates_.assign(static_cast<std::size_t>(ac.num_states), {});
  for (std::int32_t s = 0; s < ac.num_states; ++s) {
    if (!ac.dead[static_cast<std::size_t>(s)]) continue;
    std::vector<DispatchCandidate>& out =
        plan->dispatch_candidates_[static_cast<std::size_t>(s)];
    for (std::int32_t c = s; c != 0; c = ac.fail[static_cast<std::size_t>(c)]) {
      const std::string& u = state_str[static_cast<std::size_t>(c)];
      for (std::size_t tag = 0; tag < config.tags.size(); ++tag) {
        const std::string& begin = config.tags[tag].begin;
        if (begin.size() >= u.size() && begin.compare(0, u.size(), u) == 0) {
          out.push_back({static_cast<std::int32_t>(tag),
                         static_cast<std::int32_t>(u.size())});
        }
      }
    }
  }

  Simulator sim(*plan);

  // Spill tables, shared across tags with the same end marker: every string
  // completing a tag ends with its end marker, so candidate tokens and cut
  // positions are a pure function of (end marker, config continuation).
  plan->spill_table_of_tag_.assign(config.tags.size(), 0);
  std::vector<std::string> distinct_ends;
  for (std::size_t tag = 0; tag < config.tags.size(); ++tag) {
    const std::string& end = config.tags[tag].end;
    auto it = std::find(distinct_ends.begin(), distinct_ends.end(), end);
    if (it == distinct_ends.end()) {
      distinct_ends.push_back(end);
      it = std::prev(distinct_ends.end());
    }
    plan->spill_table_of_tag_[tag] =
        static_cast<std::int32_t>(it - distinct_ends.begin());
  }
  plan->spill_tables_.resize(distinct_ends.size());
  for (std::size_t e = 0; e < distinct_ends.size(); ++e) {
    const std::string& end = distinct_ends[e];
    TagSpillTable& table = plan->spill_tables_[e];
    table.by_cut.resize(end.size() > 1 ? end.size() - 1 : 0);
    for (std::int32_t id = 0; id < tok.VocabSize(); ++id) {
      if (tok.IsSpecial(id)) continue;
      const std::string& bytes = tok.TokenBytes(id);
      for (std::size_t cut = 1; cut <= bytes.size(); ++cut) {
        bool matches;
        if (cut < end.size()) {
          matches = bytes.compare(0, cut, end, end.size() - cut, cut) == 0;
        } else {
          matches = bytes.compare(cut - end.size(), end.size(), end) == 0;
        }
        if (!matches) continue;
        std::string_view rest = std::string_view(bytes).substr(cut);
        Simulator::Outcome outcome =
            rest.empty() ? Simulator::Outcome{true, 0} : sim.FromAfterTag(rest);
        if (!outcome.viable) continue;
        if (cut < end.size()) {
          table.by_cut[cut - 1].push_back(
              {id, outcome.min_uses});
        } else {
          table.long_cuts.push_back(
              {id, static_cast<std::int32_t>(cut), outcome.min_uses});
        }
      }
    }
  }

  // Free-text token tables: one per live automaton state (at a UTF-8
  // boundary) plus one per mid-sequence UTF-8 state. Tokens whose walk never
  // leaves free text land in the stay bitset; tokens that complete a trigger
  // are fully simulated and, when viable, listed with the minimal number of
  // tag entries any accepting parse needs.
  if (config.allow_free_text) {
    auto build_table = [&](std::int32_t ac_state, std::uint8_t utf8_state,
                           FreeStateTable* table) {
      table->stay = DynamicBitset(static_cast<std::size_t>(tok.VocabSize()));
      for (std::int32_t id = 0; id < tok.VocabSize(); ++id) {
        if (tok.IsSpecial(id)) continue;
        const std::string& bytes = tok.TokenBytes(id);
        switch (WalkFree(ac, ac_state, utf8_state, bytes)) {
          case FreeWalk::kStays:
            table->stay.Set(static_cast<std::size_t>(id));
            break;
          case FreeWalk::kDies:
            break;
          case FreeWalk::kDispatches: {
            Simulator::Outcome outcome =
                sim.FromFreeState(ac_state, utf8_state, bytes);
            if (outcome.viable) table->boundary.push_back({id, outcome.min_uses});
            break;
          }
        }
      }
    };
    plan->free_tables_.resize(static_cast<std::size_t>(ac.num_states));
    for (std::int32_t s = 0; s < ac.num_states; ++s) {
      if (ac.dead[static_cast<std::size_t>(s)]) continue;  // never a rest state
      build_table(s, kU8Boundary, &plan->free_tables_[static_cast<std::size_t>(s)]);
    }
    plan->utf8_tables_.resize(kU8NumStates - 1);
    for (std::uint8_t u8 = 1; u8 < kU8NumStates; ++u8) {
      build_table(0, u8, &plan->utf8_tables_[static_cast<std::size_t>(u8) - 1]);
    }
  }

  plan->preprocess_seconds_ = timer.ElapsedMicros() / 1e6;
  return plan;
}

// --- Matcher -----------------------------------------------------------------

TagDispatchMatcher::TagDispatchMatcher(
    std::shared_ptr<const TagDispatchPlan> plan)
    : plan_(std::move(plan)) {
  generators_.resize(static_cast<std::size_t>(plan_->NumTags()));
  Reset();
}

void TagDispatchMatcher::Reset() {
  scratch_threads_.clear();
  if (plan_->Config().allow_free_text) {
    PushFree(0, kU8Boundary, 0);
  } else {
    PushGap(0);
    SpawnFreshTags(0);
  }
  threads_.swap(scratch_threads_);
  scratch_threads_.clear();
  backup_threads_.clear();
  for (auto& generator : generators_) {
    if (generator != nullptr) generator->ReleaseScratch();
  }
}

cache::MaskGenerator& TagDispatchMatcher::GeneratorFor(std::int32_t tag) {
  auto& generator = generators_[static_cast<std::size_t>(tag)];
  if (generator == nullptr) {
    generator = std::make_unique<cache::MaskGenerator>(plan_->TagArtifact(tag));
  }
  return *generator;
}

void TagDispatchMatcher::PushFree(std::int32_t ac_state,
                                  std::uint8_t utf8_state,
                                  std::int32_t invocations) {
  for (const Thread& t : scratch_threads_) {
    if (t.kind == Thread::Kind::kFree && t.ac_state == ac_state &&
        t.utf8_state == utf8_state && t.invocations == invocations) {
      return;
    }
  }
  Thread t;
  t.kind = Thread::Kind::kFree;
  t.ac_state = ac_state;
  t.utf8_state = utf8_state;
  t.invocations = invocations;
  scratch_threads_.push_back(std::move(t));
}

void TagDispatchMatcher::PushGap(std::int32_t invocations) {
  for (const Thread& t : scratch_threads_) {
    if (t.kind == Thread::Kind::kGap && t.invocations == invocations) return;
  }
  Thread t;
  t.kind = Thread::Kind::kGap;
  t.invocations = invocations;
  scratch_threads_.push_back(std::move(t));
}

void TagDispatchMatcher::SpawnFreshTags(std::int32_t invocations) {
  if (RemainingBudget(plan_->MaxInvocations(), invocations) <= 0) return;
  for (std::int32_t tag = 0; tag < plan_->NumTags(); ++tag) {
    bool duplicate = false;
    for (const Thread& t : scratch_threads_) {
      if (t.kind == Thread::Kind::kTag && t.tag == tag &&
          t.invocations == invocations + 1 &&
          t.matcher->NumConsumedBytes() == 0) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    Thread t;
    t.kind = Thread::Kind::kTag;
    t.tag = tag;
    t.invocations = invocations + 1;
    t.matcher = std::make_shared<matcher::GrammarMatcher>(
        plan_->TagArtifact(tag)->PdaShared());
    t.entry_depth = -1;  // born this token: dropped on token rollback
    scratch_threads_.push_back(std::move(t));
  }
}

void TagDispatchMatcher::SpawnDispatch(std::int32_t dead_state,
                                       std::int32_t invocations) {
  if (RemainingBudget(plan_->MaxInvocations(), invocations) <= 0) return;
  const std::vector<TagDispatchPlan::DispatchCandidate>& candidates =
      plan_->Candidates(dead_state);
  if (candidates.empty()) return;
  ++stats_.dispatches;
  ++stats_.segment_switches;
  token_saw_tag_ = true;
  for (const TagDispatchPlan::DispatchCandidate& cand : candidates) {
    Thread t;
    t.kind = Thread::Kind::kTag;
    t.tag = cand.tag;
    t.invocations = invocations + 1;
    t.matcher = std::make_shared<matcher::GrammarMatcher>(
        plan_->TagArtifact(cand.tag)->PdaShared());
    bool ok = t.matcher->AcceptString(
        std::string_view(
            plan_->Config().tags[static_cast<std::size_t>(cand.tag)].begin)
            .substr(0, static_cast<std::size_t>(cand.prefix_len)));
    XGR_DCHECK(ok) << "begin-marker prefix rejected by its segment grammar";
    if (!ok) continue;
    t.entry_depth = -1;
    scratch_threads_.push_back(std::move(t));
  }
}

void TagDispatchMatcher::SpawnGapAfterTag(std::int32_t invocations) {
  ++stats_.segment_switches;
  if (plan_->Config().allow_free_text) {
    PushFree(0, kU8Boundary, invocations);
    return;
  }
  PushGap(invocations);
  SpawnFreshTags(invocations);
}

// LOCKSTEP CONTRACT: this is the same transition relation as Simulator::Run
// (see that class's comment); behavioral changes must land in both.
bool TagDispatchMatcher::StepByte(std::uint8_t byte) {
  scratch_threads_.clear();
  for (Thread& t : threads_) {
    switch (t.kind) {
      case Thread::Kind::kFree: {
        if (t.utf8_state != kU8Boundary || byte >= 0x80) {
          std::uint8_t u8 = Utf8Next(t.utf8_state, byte);
          if (u8 != kU8Reject) PushFree(0, u8, t.invocations);
          break;
        }
        std::int32_t target = plan_->Automaton().Step(t.ac_state, byte);
        if (!plan_->Automaton().dead[static_cast<std::size_t>(target)]) {
          PushFree(target, kU8Boundary, t.invocations);
        } else {
          SpawnDispatch(target, t.invocations);
        }
        break;
      }
      case Thread::Kind::kGap:
        break;  // a gap consumes no bytes; its fresh tag threads carry on
      case Thread::Kind::kTag: {
        if (!t.matcher->AcceptByte(byte)) break;  // thread dies
        bool terminable = t.matcher->CanTerminate();
        std::int32_t invocations = t.invocations;
        scratch_threads_.push_back(std::move(t));
        if (terminable) SpawnGapAfterTag(invocations);
        break;
      }
    }
  }
  threads_.swap(scratch_threads_);
  XGR_CHECK(threads_.size() <=
            ThreadBudget(static_cast<std::size_t>(plan_->NumTags())))
      << "tag-dispatch matcher exceeded its thread budget";
  return !threads_.empty();
}

bool TagDispatchMatcher::AcceptBytes(std::string_view bytes) {
  token_saw_tag_ = false;
  for (Thread& t : threads_) {
    if (t.kind == Thread::Kind::kTag) {
      t.entry_depth = t.matcher->NumConsumedBytes();
      token_saw_tag_ = true;
    }
  }
  backup_threads_ = threads_;
  // Restores the entry state: threads born during this token vanish with the
  // scratch copies; survivors roll their matchers back to the entry depth.
  auto restore = [this] {
    threads_.swap(backup_threads_);
    backup_threads_.clear();
    for (Thread& t : threads_) {
      if (t.kind == Thread::Kind::kTag) t.matcher->RollbackToDepth(t.entry_depth);
    }
  };
  for (char c : bytes) {
    bool alive;
    try {
      alive = StepByte(static_cast<std::uint8_t>(c));
    } catch (...) {
      // All-or-nothing also under errors (e.g. the thread-budget check):
      // a caller that catches and keeps the handle must see the pre-token
      // state, not a half-stepped one.
      restore();
      throw;
    }
    if (!alive) {
      restore();
      return false;
    }
  }
  backup_threads_.clear();
  stats_.threads_peak = std::max(
      stats_.threads_peak, static_cast<std::int64_t>(threads_.size()));
  if (token_saw_tag_) {
    ++stats_.tag_tokens;
  } else {
    ++stats_.free_tokens;
  }
  return true;
}

bool TagDispatchMatcher::CanTerminate() const {
  std::int32_t min = plan_->MinInvocations();
  for (const Thread& t : threads_) {
    if (t.kind == Thread::Kind::kFree && t.utf8_state == kU8Boundary &&
        t.invocations >= min) {
      return true;
    }
    if (t.kind == Thread::Kind::kGap && t.invocations >= min) return true;
  }
  return false;
}

bool TagDispatchMatcher::CanCompleteWith(matcher::GrammarMatcher* m,
                                         std::string_view bytes) {
  ++stats_.spill_probes;
  if (!m->AcceptString(bytes)) return false;
  bool terminable = m->CanTerminate();
  m->RollbackBytes(static_cast<std::int32_t>(bytes.size()));
  return terminable;
}

void TagDispatchMatcher::FillNextTokenBitmask(DynamicBitset* mask) {
  const tokenizer::TokenizerInfo& tok = plan_->Tokenizer();
  XGR_CHECK(mask->Size() == static_cast<std::size_t>(tok.VocabSize()))
      << "mask size must equal vocabulary size";
  mask->ResetAll();
  bool eos_ok = false;
  const std::int32_t max = plan_->MaxInvocations();
  const std::int32_t min = plan_->MinInvocations();
  for (Thread& t : threads_) {
    switch (t.kind) {
      case Thread::Kind::kFree: {
        const TagDispatchPlan::FreeStateTable& table =
            t.utf8_state == kU8Boundary ? plan_->FreeTable(t.ac_state)
                                        : plan_->FreeTableMidUtf8(t.utf8_state);
        mask->OrWith(table.stay);
        std::int32_t budget = RemainingBudget(max, t.invocations);
        for (const TagDispatchPlan::BoundaryToken& b : table.boundary) {
          if (b.min_uses <= budget) mask->Set(static_cast<std::size_t>(b.token_id));
        }
        if (t.utf8_state == kU8Boundary && t.invocations >= min) eos_ok = true;
        break;
      }
      case Thread::Kind::kGap:
        if (t.invocations >= min) eos_ok = true;
        break;
      case Thread::Kind::kTag: {
        if (tag_mask_scratch_.Size() != mask->Size()) {
          tag_mask_scratch_ = DynamicBitset(mask->Size());
        }
        GeneratorFor(t.tag).FillNextTokenBitmask(t.matcher.get(),
                                                 &tag_mask_scratch_);
        mask->OrWith(tag_mask_scratch_);
        // Segment spill: tokens that close this tag mid-token and continue
        // outside it. Any completion's consumed prefix ends with the end
        // marker, so one probe per cut length covers every short candidate.
        const TagDispatchPlan::TagSpillTable& spill = plan_->SpillTable(t.tag);
        const std::string& end =
            plan_->Config().tags[static_cast<std::size_t>(t.tag)].end;
        std::int32_t budget = RemainingBudget(max, t.invocations);
        for (std::size_t cut = 1; cut <= spill.by_cut.size(); ++cut) {
          const auto& candidates = spill.by_cut[cut - 1];
          if (candidates.empty()) continue;
          if (!CanCompleteWith(t.matcher.get(),
                               std::string_view(end).substr(end.size() - cut))) {
            continue;
          }
          for (const TagDispatchPlan::SpillCandidate& cand : candidates) {
            if (cand.v_min_uses <= budget) {
              mask->Set(static_cast<std::size_t>(cand.token_id));
            }
          }
        }
        for (const TagDispatchPlan::TagSpillTable::LongCandidate& cand :
             spill.long_cuts) {
          if (cand.v_min_uses > budget) continue;
          if (mask->Test(static_cast<std::size_t>(cand.token_id))) continue;
          const std::string& bytes = tok.TokenBytes(cand.token_id);
          if (CanCompleteWith(t.matcher.get(),
                              std::string_view(bytes).substr(
                                  0, static_cast<std::size_t>(cand.cut)))) {
            mask->Set(static_cast<std::size_t>(cand.token_id));
          }
        }
        break;
      }
    }
  }
  for (std::int32_t id : tok.Vocab().special_ids) {
    mask->Reset(static_cast<std::size_t>(id));
  }
  if (eos_ok && tok.EosId() >= 0) {
    mask->Set(static_cast<std::size_t>(tok.EosId()));
  }
}

std::string TagDispatchMatcher::FindJumpForwardString(std::int32_t max_length) {
  // Forced continuations exist only when a single in-tag thread is live (free
  // text admits any byte; several threads mean the parse itself is
  // ambiguous). The underlying matcher stops at terminable states — where
  // free text could resume — and trims to a UTF-8 boundary.
  if (threads_.size() != 1 || threads_[0].kind != Thread::Kind::kTag) return "";
  if (threads_[0].matcher->CanTerminate()) return "";
  return threads_[0].matcher->FindJumpForwardString(max_length);
}

void TagDispatchMatcher::SaveDraftSnapshot(std::size_t slot) {
  if (draft_snapshots_.size() <= slot) draft_snapshots_.resize(slot + 1);
  DraftSnapshot& snap = draft_snapshots_[slot];
  // Vector copy-assigns reuse capacity once the slots are warm; Thread copies
  // are shared_ptr bumps plus trivial fields, so no allocation in steady
  // state.
  snap.threads = threads_;
  snap.depths.clear();
  for (const Thread& t : threads_) {
    snap.depths.push_back(t.kind == Thread::Kind::kTag
                              ? t.matcher->NumConsumedBytes()
                              : 0);
  }
}

void TagDispatchMatcher::VerifyTokenDraft(const std::int32_t* draft,
                                          std::int32_t count,
                                          TokenDraftResult* result) {
  XGR_CHECK(result != nullptr);
  XGR_CHECK(count >= 0 && (count == 0 || draft != nullptr))
      << "bad draft span: count=" << count;
  XGR_CHECK(draft_accepted_ < 0)
      << "VerifyTokenDraft while a draft transaction is open";
  const tokenizer::TokenizerInfo& tok = plan_->Tokenizer();
  result->accepted = 0;
  result->exhausted = false;
  result->terminated = false;
  SaveDraftSnapshot(0);
  for (std::int32_t i = 0; i < count; ++i) {
    const std::int32_t token = draft[i];
    if (token == tok.EosId()) {
      result->terminated = CanTerminate();
      break;
    }
    if (token < 0 || token >= tok.VocabSize() || tok.IsSpecial(token)) break;
    // AcceptBytes is all-or-nothing per token (threads fork/die per byte as
    // in single-token dispatch), so a reject leaves us at the accepted
    // prefix with snapshot bookkeeping consistent.
    if (!AcceptBytes(tok.TokenBytes(token))) break;
    ++result->accepted;
    SaveDraftSnapshot(static_cast<std::size_t>(result->accepted));
  }
  result->exhausted = result->accepted == count;
  draft_accepted_ = result->accepted;
}

void TagDispatchMatcher::CommitDraft(std::int32_t keep) {
  XGR_CHECK(draft_accepted_ >= 0) << "CommitDraft without VerifyTokenDraft";
  XGR_CHECK(keep >= 0 && keep <= draft_accepted_)
      << "CommitDraft keep out of range: " << keep << " of " << draft_accepted_;
  if (keep != draft_accepted_) {
    DraftSnapshot& snap = draft_snapshots_[static_cast<std::size_t>(keep)];
    // Swap (not copy) is safe: the transaction closes here, so this slot is
    // dead until the next VerifyTokenDraft rewrites it.
    threads_.swap(snap.threads);
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      if (threads_[i].kind == Thread::Kind::kTag) {
        // A matcher that advanced past the boundary (or died mid-token later
        // in the walk) rolls back to its recorded depth; threads born after
        // the boundary simply are not in this snapshot.
        threads_[i].matcher->RollbackToDepth(snap.depths[i]);
      }
    }
  }
  draft_accepted_ = -1;
}

const cache::MaskGenStats& TagDispatchMatcher::AggregatedMaskStats() const {
  mask_stats_agg_ = cache::MaskGenStats{};
  for (const auto& generator : generators_) {
    if (generator == nullptr) continue;
    const cache::MaskGenStats& s = generator->Stats();
    mask_stats_agg_.masks_generated += s.masks_generated;
    mask_stats_agg_.runtime_tokens_checked += s.runtime_tokens_checked;
    mask_stats_agg_.ctx_bytes_checked += s.ctx_bytes_checked;
    mask_stats_agg_.ctx_tokens_pruned += s.ctx_tokens_pruned;
    mask_stats_agg_.ctx_subtree_cutoffs += s.ctx_subtree_cutoffs;
    mask_stats_agg_.ctx_memo_hits += s.ctx_memo_hits;
    mask_stats_agg_.ctx_memo_misses += s.ctx_memo_misses;
    mask_stats_agg_.stacks_processed += s.stacks_processed;
    mask_stats_agg_.merges += s.merges;
    mask_stats_agg_.scratch_rebuilds += s.scratch_rebuilds;
    mask_stats_agg_.scratch_reseeds += s.scratch_reseeds;
  }
  return mask_stats_agg_;
}

}  // namespace xgr::compose
