// Adaptive token mask cache (§3.1 of the paper).
//
// For every PDA node (= possible stack top) the builder classifies every
// vocabulary token by simulating it from a single-frame stack whose parent is
// unknown:
//   * context-independent accepted — some expansion path consumes the whole
//     token without ever popping below the starting frame;
//   * context-independent rejected — every path dies locally, and every path
//     that popped below the start is refuted by the rule's expanded-suffix
//     automaton (§3.2 context expansion);
//   * context-dependent — some path popped below the start with bytes left
//     over that the expanded suffix cannot refute; resolved at runtime with
//     the full stack.
// Entries use the adaptive storage format (accept-heavy / reject-heavy /
// bitset, Figure 5) chosen by exact byte cost. The builder walks the
// vocabulary as a preorder byte trie (one vocabulary-wide PrefixTrieSlice)
// with subtree cut-off: a byte that fails with no viable escape rejects every
// token sharing that prefix in one step (§3.3, the trie-pruned form of
// shared-prefix state reuse). Each entry's context-dependent list is likewise
// compiled into a per-entry sub-trie that the runtime checker DFS-walks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "matcher/grammar_matcher.h"
#include "pda/compiled_grammar.h"
#include "support/dynamic_bitset.h"
#include "tokenizer/token_trie.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::serialize_detail {
struct CacheAccess;  // binary (de)serialization, src/serialize
}  // namespace xgr::serialize_detail

namespace xgr::artifact_detail {
struct ArtifactAccess;  // flat mmap artifact IO, src/artifact
}  // namespace xgr::artifact_detail

namespace xgr::cache {

enum class StorageKind : std::uint8_t {
  kAcceptHeavy,  // stores rejected CI tokens (wildcard-ish nodes)
  kRejectHeavy,  // stores accepted CI tokens (few legal continuations)
  kBitset,       // balanced: bitset of accepted CI tokens
};

const char* StorageKindName(StorageKind kind);

struct NodeMaskEntry {
  StorageKind kind = StorageKind::kRejectHeavy;
  // kAcceptHeavy: rejected CI token ids; kRejectHeavy: accepted CI token ids.
  // Sorted by id. Unused for kBitset. Held as owning-or-viewing ArrayRef so
  // mmap-loaded artifacts alias file pages directly (src/artifact).
  support::ArrayRef<std::int32_t> stored;
  // kBitset only: bit = 1 for accepted CI tokens.
  FrozenBitset accepted_bits;
  // Context-dependent token ids in lexicographic byte order (the order
  // ctx_trie below indexes them, maximizing prefix sharing). The merge path
  // consumes this list only through order-invariant word-level bitset batches
  // (DynamicBitset::SetBatch/ResetBatch), so no id-sorted copy is stored and
  // no per-step copy+sort happens; MemoryBytes() stays one list per entry.
  support::ArrayRef<std::int32_t> context_dependent;
  // Preorder-flattened sub-trie over `context_dependent` (token indices in
  // the trie refer to positions in that list). The runtime checker DFS-walks
  // this slice with subtree cut-off instead of re-walking shared prefixes
  // token by token; empty iff `context_dependent` is.
  tokenizer::PrefixTrieSlice ctx_trie;

  std::size_t MemoryBytes() const {
    return stored.size() * sizeof(std::int32_t) +
           context_dependent.size() * sizeof(std::int32_t) +
           ctx_trie.MemoryBytes() + accepted_bits.MemoryBytes();
  }
};

struct CacheBuildStats {
  std::int64_t nodes = 0;
  std::int64_t tokens_classified = 0;
  std::int64_t ci_accepted = 0;
  std::int64_t ci_rejected = 0;
  std::int64_t context_dependent = 0;
  // Max over nodes of |context_dependent| — the per-step runtime burden the
  // paper quotes (1134 -> 120 for Llama-3.1 + JSON).
  std::int64_t max_ctx_dependent_per_node = 0;
  // Trie-DFS effectiveness (§3.3): bytes actually attempted (one per visited
  // trie edge) vs sum of token lengths over all (node, token) pairs.
  std::int64_t bytes_checked = 0;
  std::int64_t bytes_total = 0;
  // Subtree cut-off attribution: tokens rejected by a shared failing byte
  // without an individual walk, and the number of cut-off events.
  std::int64_t tokens_pruned = 0;
  std::int64_t subtree_cutoffs = 0;
  // Memory: adaptive vs all-bitset strawman (the paper's 160 MB -> 0.46 MB).
  std::size_t memory_bytes = 0;
  std::size_t full_bitset_bytes = 0;
  double build_seconds = 0.0;
  std::int64_t storage_kind_counts[3] = {0, 0, 0};
  // Per-pass grammar-optimizer stats copied from the CompiledGrammar this
  // cache was built over. Like build_seconds, these are measurements, not
  // content: they are NOT serialized (deserialized artifacts report an empty
  // vector), keeping artifacts bit-identical across runs.
  std::vector<grammar::PassStats> optimizer_passes;
};

struct AdaptiveCacheOptions {
  // false => every entry stored as a bitset (memory ablation).
  bool adaptive_storage = true;
  // Threads for the per-node parallel build; 0 = global pool.
  int num_threads = 0;
};

class AdaptiveTokenMaskCache {
 public:
  static std::shared_ptr<const AdaptiveTokenMaskCache> Build(
      std::shared_ptr<const pda::CompiledGrammar> pda,
      std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
      const AdaptiveCacheOptions& options = {});

  const NodeMaskEntry& Entry(std::int32_t node) const {
    return entries_[static_cast<std::size_t>(node)];
  }
  const CacheBuildStats& Stats() const { return stats_; }
  std::size_t MemoryBytes() const { return stats_.memory_bytes; }
  const pda::CompiledGrammar& Pda() const { return *pda_; }
  std::shared_ptr<const pda::CompiledGrammar> PdaShared() const { return pda_; }
  const tokenizer::TokenizerInfo& Tokenizer() const { return *tokenizer_; }
  std::shared_ptr<const tokenizer::TokenizerInfo> TokenizerShared() const {
    return tokenizer_;
  }

  std::string StatsString() const;

  // True when the entry arrays alias an mmap-ed artifact (src/artifact)
  // instead of heap storage; `backing_` then pins the mapping alive.
  bool IsMapped() const { return backing_ != nullptr; }

 private:
  friend struct xgr::serialize_detail::CacheAccess;
  friend struct xgr::artifact_detail::ArtifactAccess;

  AdaptiveTokenMaskCache() = default;

  std::shared_ptr<const pda::CompiledGrammar> pda_;
  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  std::vector<NodeMaskEntry> entries_;
  CacheBuildStats stats_;
  // Keep-alive for view-backed entries (the mmap-ed file). Null for caches
  // built or deserialized onto the heap.
  std::shared_ptr<const void> backing_;
};

// Classification outcome for one (node, token); exposed for tests.
enum class TokenClass : std::uint8_t { kAccepted, kRejected, kContextDependent };

// Reference classifier: simulates one token from one node (no rollback
// sharing). The cache builder is an optimized equivalent; property tests
// compare the two.
TokenClass ClassifyTokenAtNode(std::shared_ptr<const pda::CompiledGrammar> pda,
                               std::int32_t node, const std::string& token_bytes);

}  // namespace xgr::cache
