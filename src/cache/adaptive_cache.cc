#include "cache/adaptive_cache.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "cache/ctx_trie_dfs.h"
#include "fsa/dfa.h"
#include "support/logging.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace xgr::cache {

const char* StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kAcceptHeavy: return "accept-heavy";
    case StorageKind::kRejectHeavy: return "reject-heavy";
    case StorageKind::kBitset: return "bitset";
  }
  XGR_UNREACHABLE();
}

namespace {

// Can `remaining` still match under the rule's expanded-suffix automaton
// (walked from `ctx_start` in the grammar's global context automaton)?
// Plausible when the bytes are a prefix of the suffix language, or reach an
// accepting state (= a position beyond which a child rule begins and the
// expansion cannot see; the rest is checked by parents at runtime).
// nullptr = context expansion disabled = everything plausible.
bool ContextPlausible(const fsa::Fsa* ctx_fsa, std::int32_t ctx_start,
                      std::string_view remaining) {
  if (ctx_fsa == nullptr) return true;
  fsa::NfaRunner runner(*ctx_fsa);
  runner.SetStates({ctx_start});
  if (runner.InAcceptingState()) return true;
  for (char c : remaining) {
    if (!runner.Advance(static_cast<std::uint8_t>(c))) return false;
    if (runner.InAcceptingState()) return true;
  }
  return true;
}

// Deterministic form of one rule's expanded-suffix plausibility check.
//
// ContextPlausible above simulates the context NFA per call — a fresh
// NfaRunner (two vector allocations), epsilon closure and a state-set scan
// per byte. The builder calls it for every escaping (token, depth) pair, and
// on optimized grammars (inlined bodies, few rule frames) that NFA walk
// dominated the cache build. Here the per-rule start slice of the global
// context automaton is determinized once up front and the check becomes a
// dense table walk. Accepting states are made terminal before subset
// construction: the predicate returns true at the first accept, so edges out
// of accepting states are unobservable, and dropping them keeps the subset
// graph small. If a rule's slice still exceeds the state cap, the checker
// falls back to the NFA path — the DFA is a pure strength reduction and never
// changes a verdict.
class RuleContextChecker {
 public:
  static constexpr std::int32_t kMaxDfaStates = 1 << 12;

  RuleContextChecker() = default;
  RuleContextChecker(const fsa::Fsa* nfa, std::int32_t start)
      : nfa_(nfa), start_(start) {}

  // `stripped` is the shared accepting-terminal copy of the context
  // automaton; only the start differs between rules.
  void TryDeterminize(fsa::Fsa* stripped) {
    if (nfa_ == nullptr) return;
    stripped->SetStart(start_);
    try {
      dfa_ = fsa::Determinize(*stripped, kMaxDfaStates);
      has_dfa_ = true;
    } catch (const CheckError&) {
      has_dfa_ = false;  // oversized subset graph: keep the NFA path
    }
  }

  bool Plausible(std::string_view remaining) const {
    if (!has_dfa_) return ContextPlausible(nfa_, start_, remaining);
    std::int32_t s = dfa_.Start();
    if (dfa_.IsAccepting(s)) return true;
    for (char c : remaining) {
      s = dfa_.Next(s, static_cast<std::uint8_t>(c));
      if (s == fsa::Dfa::kDead) return false;
      if (dfa_.IsAccepting(s)) return true;
    }
    return true;
  }

 private:
  const fsa::Fsa* nfa_ = nullptr;
  std::int32_t start_ = -1;
  fsa::Dfa dfa_;
  bool has_dfa_ = false;
};

// Classifies the token currently being walked by `matcher` (already advanced
// as far as possible). `consumed_all` tells whether every byte was accepted.
//
// Escapes at depth 0 (a pop before any byte of the token is consumed) are
// deliberately ignored: at runtime, mask generation unions over the *closed*
// stack set, which already contains the popped variant of any stack whose top
// is an accepting node — that stack's own cache entry classifies such tokens.
// Only mid-token pops (depth >= 1) make a token context-dependent here.
TokenClass ClassifyFromWalk(const matcher::GrammarMatcher& matcher,
                            const fsa::Fsa* ctx_fsa, std::int32_t ctx_start,
                            std::string_view token, bool consumed_all) {
  if (consumed_all) return TokenClass::kAccepted;
  // Paths that popped below the starting frame may still be viable in some
  // parent context: the token is context-dependent unless the expanded
  // suffix refutes every such escape.
  for (std::int32_t d = 1; d <= matcher.NumConsumedBytes(); ++d) {
    if (!matcher.EscapedAtDepth(d)) continue;
    if (ContextPlausible(ctx_fsa, ctx_start,
                         token.substr(static_cast<std::size_t>(d)))) {
      return TokenClass::kContextDependent;
    }
  }
  return TokenClass::kRejected;
}

struct NodeBuildResult {
  std::int64_t ci_accepted = 0;
  std::int64_t ci_rejected = 0;
  std::int64_t context_dependent = 0;
  std::int64_t bytes_checked = 0;
  std::int64_t bytes_total = 0;
  std::int64_t tokens_pruned = 0;
  std::int64_t subtree_cutoffs = 0;
};

}  // namespace

TokenClass ClassifyTokenAtNode(std::shared_ptr<const pda::CompiledGrammar> pda,
                               std::int32_t node, const std::string& token_bytes) {
  const fsa::Fsa* ctx_fsa = pda->ContextAutomaton();
  std::int32_t ctx_start =
      ctx_fsa != nullptr ? pda->ContextStart(pda->NodeRule(node)) : -1;
  matcher::GrammarMatcher matcher =
      matcher::GrammarMatcher::ForCacheSimulation(pda, node);
  bool consumed_all = true;
  for (char c : token_bytes) {
    if (!matcher.AcceptByte(static_cast<std::uint8_t>(c))) {
      consumed_all = false;
      break;
    }
  }
  return ClassifyFromWalk(matcher, ctx_fsa, ctx_start, token_bytes, consumed_all);
}

std::shared_ptr<const AdaptiveTokenMaskCache> AdaptiveTokenMaskCache::Build(
    std::shared_ptr<const pda::CompiledGrammar> pda,
    std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
    const AdaptiveCacheOptions& options) {
  Timer timer;
  auto cache = std::shared_ptr<AdaptiveTokenMaskCache>(new AdaptiveTokenMaskCache());
  cache->pda_ = pda;
  cache->tokenizer_ = tokenizer;
  std::int32_t num_nodes = pda->NumNodes();
  std::int32_t vocab_size = tokenizer->VocabSize();
  cache->entries_.resize(static_cast<std::size_t>(num_nodes));
  std::vector<NodeBuildResult> results(static_cast<std::size_t>(num_nodes));

  const std::vector<std::int32_t>& sorted = tokenizer->SortedTokenIds();
  // One vocabulary-wide preorder trie, shared read-only by every node build.
  // The DFS below replaces the old flat lexicographic walk (rollback to the
  // SortedCommonPrefixLengths table): a byte failing at depth d used to be
  // re-attempted by every following token sharing that prefix; the trie
  // attempts each unique (prefix, byte) once and cuts the subtree off.
  const tokenizer::PrefixTrieSlice vocab_trie =
      tokenizer::PrefixTrieSlice::Build(*tokenizer, sorted);

  // Per-rule deterministic context checkers, shared read-only by the node
  // builds below. One stripped (accepting-terminal) copy of the context
  // automaton serves every rule; only the start differs per Determinize call.
  const fsa::Fsa* ctx_fsa = pda->ContextAutomaton();
  std::vector<RuleContextChecker> ctx_checkers(
      static_cast<std::size_t>(pda->NumRules()));
  if (ctx_fsa != nullptr) {
    fsa::Fsa stripped = *ctx_fsa;
    for (std::int32_t s = 0; s < stripped.NumStates(); ++s) {
      if (stripped.IsAccepting(s)) stripped.MutableEdgesFrom(s).clear();
    }
    for (std::int32_t r = 0; r < pda->NumRules(); ++r) {
      RuleContextChecker& checker = ctx_checkers[static_cast<std::size_t>(r)];
      checker = RuleContextChecker(ctx_fsa, pda->ContextStart(r));
      checker.TryDeterminize(&stripped);
    }
  }

  auto build_node = [&](std::size_t node_index) {
    auto node = static_cast<std::int32_t>(node_index);
    const RuleContextChecker& ctx =
        ctx_checkers[static_cast<std::size_t>(pda->NodeRule(node))];
    matcher::GrammarMatcher matcher =
        matcher::GrammarMatcher::ForCacheSimulation(pda, node);
    NodeBuildResult& result = results[node_index];
    std::vector<std::int32_t> accepted;
    std::vector<std::int32_t> rejected;
    std::vector<std::int32_t> ctx_dependent;  // lexicographic encounter order

    // Preorder emission keeps all three lists in lexicographic byte order
    // (terminal tokens of a node precede its subtree, pruned ranges precede
    // the skip target), exactly as the flat walk produced them.
    for (std::int32_t t = 0; t < vocab_trie.RootTokenEnd(); ++t) {
      // Zero-length tokens consume nothing: trivially accepted.
      accepted.push_back(sorted[static_cast<std::size_t>(t)]);
      ++result.ci_accepted;
    }
    CtxDfsCounters counters;
    CtxTrieDfs(
        vocab_trie, &matcher, &counters,
        /*on_accept=*/
        [&](std::int32_t pos) {
          // Every byte of these tokens was consumed: context-independent
          // accepted (ClassifyFromWalk's consumed_all case).
          for (std::int32_t t = vocab_trie.TokenBegin(pos);
               t < vocab_trie.TerminalTokenEnd(pos); ++t) {
            accepted.push_back(sorted[static_cast<std::size_t>(t)]);
            ++result.ci_accepted;
          }
        },
        /*on_prune=*/
        [&](std::int32_t pos) {
          // The whole subtree died on this byte after `consumed` shared
          // bytes; the escape depths are shared too, so when no path popped
          // below the start the entire subtree is rejected in one step.
          // Otherwise each token still needs its own expanded-suffix check
          // (ClassifyFromWalk refutes escapes against the token's suffix,
          // which differs across the subtree).
          std::int32_t consumed = vocab_trie.Depth(pos) - 1;
          bool any_escape = false;
          for (std::int32_t d = 1; d <= consumed; ++d) {
            if (matcher.EscapedAtDepth(d)) {
              any_escape = true;
              break;
            }
          }
          std::int32_t begin = vocab_trie.TokenBegin(pos);
          std::int32_t end = vocab_trie.SubtreeTokenEnd(pos);
          if (!any_escape) {
            for (std::int32_t t = begin; t < end; ++t) {
              rejected.push_back(sorted[static_cast<std::size_t>(t)]);
              ++result.ci_rejected;
            }
            return;
          }
          for (std::int32_t t = begin; t < end; ++t) {
            std::int32_t token_id = sorted[static_cast<std::size_t>(t)];
            const std::string& token = tokenizer->TokenBytes(token_id);
            bool plausible = false;
            for (std::int32_t d = 1; d <= consumed; ++d) {
              if (!matcher.EscapedAtDepth(d)) continue;
              if (ctx.Plausible(std::string_view(token).substr(
                      static_cast<std::size_t>(d)))) {
                plausible = true;
                break;
              }
            }
            if (plausible) {
              ctx_dependent.push_back(token_id);
              ++result.context_dependent;
            } else {
              rejected.push_back(token_id);
              ++result.ci_rejected;
            }
          }
        });
    result.bytes_checked = counters.bytes_checked;
    result.tokens_pruned = counters.tokens_pruned;
    result.subtree_cutoffs = counters.subtree_cutoffs;
    result.bytes_total = static_cast<std::int64_t>(tokenizer->TotalTokenBytes());

    // Adaptive storage selection (Figure 5) by exact byte cost. The ctx
    // sub-trie is common to all three kinds, so it does not enter the
    // comparison (it is still counted in MemoryBytes()).
    NodeMaskEntry& entry = cache->entries_[node_index];
    entry.ctx_trie = tokenizer::PrefixTrieSlice::Build(*tokenizer, ctx_dependent);
    std::size_t cost_accept_heavy =
        (rejected.size() + ctx_dependent.size()) * sizeof(std::int32_t);
    std::size_t cost_reject_heavy =
        (accepted.size() + ctx_dependent.size()) * sizeof(std::int32_t);
    std::size_t cost_bitset = static_cast<std::size_t>(vocab_size) / 8 +
                              ctx_dependent.size() * sizeof(std::int32_t);
    entry.context_dependent =
        support::ArrayRef<std::int32_t>(std::move(ctx_dependent));
    if (!options.adaptive_storage) {
      entry.kind = StorageKind::kBitset;
    } else if (cost_accept_heavy <= cost_reject_heavy &&
               cost_accept_heavy <= cost_bitset) {
      entry.kind = StorageKind::kAcceptHeavy;
    } else if (cost_reject_heavy <= cost_bitset) {
      entry.kind = StorageKind::kRejectHeavy;
    } else {
      entry.kind = StorageKind::kBitset;
    }
    switch (entry.kind) {
      case StorageKind::kAcceptHeavy:
        std::sort(rejected.begin(), rejected.end());
        entry.stored = support::ArrayRef<std::int32_t>(std::move(rejected));
        break;
      case StorageKind::kRejectHeavy:
        std::sort(accepted.begin(), accepted.end());
        entry.stored = support::ArrayRef<std::int32_t>(std::move(accepted));
        break;
      case StorageKind::kBitset: {
        DynamicBitset bits(static_cast<std::size_t>(vocab_size));
        for (std::int32_t id : accepted) bits.Set(static_cast<std::size_t>(id));
        entry.accepted_bits = FrozenBitset(bits);
        break;
      }
    }
  };

  if (options.num_threads == 1) {
    for (std::size_t n = 0; n < static_cast<std::size_t>(num_nodes); ++n) build_node(n);
  } else if (options.num_threads > 1) {
    ThreadPool pool(static_cast<std::size_t>(options.num_threads));
    pool.ParallelFor(static_cast<std::size_t>(num_nodes), build_node);
  } else {
    ThreadPool::Global().ParallelFor(static_cast<std::size_t>(num_nodes), build_node);
  }

  CacheBuildStats& stats = cache->stats_;
  stats.nodes = num_nodes;
  for (std::size_t n = 0; n < static_cast<std::size_t>(num_nodes); ++n) {
    const NodeBuildResult& r = results[n];
    stats.tokens_classified += r.ci_accepted + r.ci_rejected + r.context_dependent;
    stats.ci_accepted += r.ci_accepted;
    stats.ci_rejected += r.ci_rejected;
    stats.context_dependent += r.context_dependent;
    stats.max_ctx_dependent_per_node =
        std::max(stats.max_ctx_dependent_per_node, r.context_dependent);
    stats.bytes_checked += r.bytes_checked;
    stats.bytes_total += r.bytes_total;
    stats.tokens_pruned += r.tokens_pruned;
    stats.subtree_cutoffs += r.subtree_cutoffs;
    stats.memory_bytes += cache->entries_[n].MemoryBytes();
    ++stats.storage_kind_counts[static_cast<int>(cache->entries_[n].kind)];
  }
  stats.full_bitset_bytes = static_cast<std::size_t>(num_nodes) *
                            (static_cast<std::size_t>(vocab_size) / 8);
  stats.build_seconds = timer.ElapsedSeconds();
  stats.optimizer_passes = cache->pda_->PassStats();
  return cache;
}

std::string AdaptiveTokenMaskCache::StatsString() const {
  std::ostringstream out;
  const CacheBuildStats& s = stats_;
  out << "nodes=" << s.nodes << " vocab=" << tokenizer_->VocabSize()
      << " ci_accepted=" << s.ci_accepted << " ci_rejected=" << s.ci_rejected
      << " ctx_dependent=" << s.context_dependent
      << " max_ctx_dep_per_node=" << s.max_ctx_dependent_per_node
      << " bytes_checked_ratio="
      << (s.bytes_total > 0
              ? static_cast<double>(s.bytes_checked) / static_cast<double>(s.bytes_total)
              : 0.0)
      << " tokens_pruned=" << s.tokens_pruned
      << " subtree_cutoffs=" << s.subtree_cutoffs
      << " memory_bytes=" << s.memory_bytes
      << " full_bitset_bytes=" << s.full_bitset_bytes
      << " storage(accept/reject/bitset)=" << s.storage_kind_counts[0] << "/"
      << s.storage_kind_counts[1] << "/" << s.storage_kind_counts[2]
      << " build_seconds=" << s.build_seconds;
  return out.str();
}

}  // namespace xgr::cache
