#include "cache/grammar_compiler.h"

#include <chrono>
#include <utility>

#include "grammar/json_schema.h"
#include "grammar/regex_to_grammar.h"
#include "support/status.h"
#include "support/timer.h"

namespace xgr::cache {

std::string EbnfArtifactKey(const std::string& root_rule,
                            const std::string& ebnf_text) {
  return "ebnf:" + root_rule + ":" + ebnf_text;
}

std::string JsonSchemaArtifactKey(const std::string& schema_text) {
  return "schema:" + schema_text;
}

std::string RegexArtifactKey(const std::string& pattern) {
  return "regex:" + pattern;
}

std::string BuiltinJsonArtifactKey() { return "builtin:json"; }

std::string TagSegmentArtifactKey(const std::string& encoded_tag) {
  return "tag-segment:" + encoded_tag;
}

std::shared_ptr<const AdaptiveTokenMaskCache> GrammarCompiler::CompileKeyed(
    const std::string& key, const std::function<grammar::Grammar()>& build) {
  std::shared_future<std::shared_ptr<const AdaptiveTokenMaskCache>> future;
  std::promise<std::shared_ptr<const AdaptiveTokenMaskCache>> promise;
  bool is_owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Negative cache first: a key that already failed deterministically is
    // rejected O(1) with its recorded error — re-running the build cannot
    // change the outcome and would burn a full compile per caller.
    auto fit = failed_.find(key);
    if (fit != failed_.end()) {
      ++stats_.negative_hits;
      throw StatusError(StatusCode::kPoisoned,
                        "grammar compilation failed (cached): " + fit->second);
    }
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      // Ready future = true hit; pending future = we are about to block
      // behind the owner's in-flight build (coalesced wait).
      if (it->second.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        ++stats_.hits;
      } else {
        ++stats_.coalesced_waits;
      }
      future = it->second;
    } else {
      ++stats_.misses;
      is_owner = true;
      future = promise.get_future().share();
      memo_.emplace(key, future);
    }
  }
  if (!is_owner) {
    // A failed owner publishes nullptr; surface that as the owner's error
    // class so every waiter sees a consistent failure.
    auto artifact = future.get();
    XGR_CHECK(artifact != nullptr) << "grammar compilation failed: " << key;
    return artifact;
  }
  Timer timer;
  std::shared_ptr<const AdaptiveTokenMaskCache> artifact;
  try {
    auto pda = pda::CompiledGrammar::Compile(build(), options_);
    artifact = AdaptiveTokenMaskCache::Build(pda, tokenizer_, cache_options_);
  } catch (const CheckError& e) {
    // The pipeline rejected the source — deterministic. Negative-cache the
    // error so later callers fail O(1) instead of re-running the build.
    // The pending future is dropped either way so the memo map holds only
    // successes; in-flight waiters still observe nullptr and throw.
    promise.set_value(nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    memo_.erase(key);
    failed_.emplace(key, e.what());
    throw;
  } catch (...) {
    // Non-CheckError failures (bad_alloc and kin) may be transient: let a
    // later call retry and report its own error.
    promise.set_value(nullptr);
    std::lock_guard<std::mutex> lock(mutex_);
    memo_.erase(key);
    throw;
  }
  promise.set_value(artifact);
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.compile_seconds += timer.ElapsedMicros() / 1e6;
  return artifact;
}

std::shared_ptr<const AdaptiveTokenMaskCache> GrammarCompiler::CompileEbnf(
    const std::string& ebnf_text, const std::string& root_rule) {
  return CompileKeyed(EbnfArtifactKey(root_rule, ebnf_text), [&] {
    return grammar::ParseEbnfOrThrow(ebnf_text, root_rule);
  });
}

std::shared_ptr<const AdaptiveTokenMaskCache> GrammarCompiler::CompileJsonSchema(
    const std::string& schema_text) {
  return CompileKeyed(JsonSchemaArtifactKey(schema_text), [&] {
    return grammar::JsonSchemaTextToGrammar(schema_text);
  });
}

std::shared_ptr<const AdaptiveTokenMaskCache> GrammarCompiler::CompileRegex(
    const std::string& pattern) {
  return CompileKeyed(RegexArtifactKey(pattern),
                      [&] { return grammar::RegexToGrammar(pattern); });
}

std::shared_ptr<const AdaptiveTokenMaskCache>
GrammarCompiler::CompileBuiltinJson() {
  return CompileKeyed(BuiltinJsonArtifactKey(),
                      [] { return grammar::BuiltinJsonGrammar(); });
}

GrammarCompilerStats GrammarCompiler::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void GrammarCompiler::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  memo_.clear();
  failed_.clear();
}

}  // namespace xgr::cache
