// Trie-pruned token checking: the DFS-with-cutoff kernel shared by the
// runtime context-dependent checker (mask_generator.cc) and the cache
// builder's per-node classification walk (adaptive_cache.cc).
//
// The kernel walks a PrefixTrieSlice (preorder + skip pointers, see
// tokenizer/token_trie.h) with a GrammarMatcher. Each trie edge is attempted
// exactly once: a byte that fails at depth d prunes the node's entire
// subtree — every token sharing that failing prefix — in one step, where the
// flat lexicographic walk it replaces re-attempted the byte once per
// following token sharing the prefix. The preorder/skip encoding makes the
// DFS stackless (the skip array plays the role of an explicit backtrack
// stack), so the walk allocates nothing and the zero-allocation decode
// contract holds trivially.
//
// Rollback discipline: preorder guarantees the next visited node's parent
// depth never exceeds the matcher's current depth (descend: equal; backtrack:
// smaller), so RollbackToDepth is always legal and hits its O(1) equal-depth
// fast path on every descent.
#pragma once

#include <cstdint>

#include "matcher/grammar_matcher.h"
#include "tokenizer/token_trie.h"

namespace xgr::cache {

// Attribution counters for one DFS (accumulated into MaskGenStats at runtime
// and CacheBuildStats at build time).
struct CtxDfsCounters {
  // AcceptByte attempts == trie nodes visited (each edge tried once).
  std::int64_t bytes_checked = 0;
  // Tokens rejected via subtree cut-off: resolved by a single failing byte
  // shared with other tokens instead of an individual walk each.
  std::int64_t tokens_pruned = 0;
  // Number of cut-off events (failed bytes, each discarding one subtree).
  std::int64_t subtree_cutoffs = 0;
};

// Walks `trie` with `matcher`, which must be positioned at 0 consumed bytes
// (freshly seeded/reseeded). For every node whose full path the matcher
// accepts, calls `on_accept(pos)` — its terminal tokens
// [trie.TokenBegin(pos), trie.TerminalTokenEnd(pos)) are accepted. For every
// failing edge, updates `counters` and calls `on_prune(pos)` — the subtree
// tokens [trie.TokenBegin(pos), trie.SubtreeTokenEnd(pos)) are all rejected
// by that one byte — then jumps past the subtree. Zero-length tokens
// ([0, trie.RootTokenEnd()), trivially accepted) are the caller's concern.
// The matcher is left at an arbitrary depth; callers needing the seed state
// back must RollbackToDepth(0).
template <typename OnAccept, typename OnPrune>
void CtxTrieDfs(const tokenizer::PrefixTrieSlice& trie,
                matcher::GrammarMatcher* matcher, CtxDfsCounters* counters,
                OnAccept&& on_accept, OnPrune&& on_prune) {
  const std::int32_t num_nodes = trie.NumNodes();
  std::int32_t pos = 0;
  while (pos < num_nodes) {
    matcher->RollbackToDepth(trie.Depth(pos) - 1);
    ++counters->bytes_checked;
    if (matcher->AcceptByte(trie.EdgeByte(pos))) {
      on_accept(pos);
      ++pos;
    } else {
      std::int32_t pruned = trie.SubtreeTokenEnd(pos) - trie.TokenBegin(pos);
      counters->tokens_pruned += pruned;
      ++counters->subtree_cutoffs;
      on_prune(pos);
      pos = trie.Skip(pos);
    }
  }
}

}  // namespace xgr::cache
