// Runtime token-mask generation.
//
// Combines the adaptive token mask cache (context-independent tokens, fetched
// by stack-top node) with on-the-fly PDA execution of the few
// context-dependent tokens, merging per-stack masks with Algorithm 1 when the
// grammar is ambiguous and several parallel stacks are alive.
#pragma once

#include <cstdint>
#include <memory>

#include "cache/adaptive_cache.h"
#include "matcher/grammar_matcher.h"
#include "support/dynamic_bitset.h"

namespace xgr::cache {

struct MaskGenStats {
  std::int64_t masks_generated = 0;
  std::int64_t runtime_tokens_checked = 0;  // context-dependent executions
  std::int64_t stacks_processed = 0;
  std::int64_t merges = 0;  // multi-stack Algorithm-1 invocations
};

class MaskGenerator {
 public:
  explicit MaskGenerator(std::shared_ptr<const AdaptiveTokenMaskCache> cache)
      : cache_(std::move(cache)) {}

  // Fills `mask` (size = vocab; bit = 1 means the token may be sampled) for
  // the matcher's current state. Special tokens are disabled; EOS is enabled
  // exactly when the grammar can terminate.
  void FillNextTokenBitmask(matcher::GrammarMatcher* matcher, DynamicBitset* mask);

  const MaskGenStats& Stats() const { return stats_; }
  const AdaptiveTokenMaskCache& Cache() const { return *cache_; }

 private:
  // Runs the context-dependent tokens of `entry` against the full stack
  // `stack_id`; returns accepted ids sorted by id.
  std::vector<std::int32_t> CheckContextDependent(matcher::GrammarMatcher* matcher,
                                                  std::int32_t stack_id,
                                                  const NodeMaskEntry& entry);

  std::shared_ptr<const AdaptiveTokenMaskCache> cache_;
  MaskGenStats stats_;
};

// Mask generation without any cache: walks the entire vocabulary through the
// PDA from the current state (sorted order + prefix rollback). This is the
// "PDA baseline" configuration of the Table 3 ablation.
void FillBitmaskBruteForce(matcher::GrammarMatcher* matcher,
                           const tokenizer::TokenizerInfo& tokenizer,
                           DynamicBitset* mask);

}  // namespace xgr::cache
