// Runtime token-mask generation.
//
// Combines the adaptive token mask cache (context-independent tokens, fetched
// by stack-top node) with on-the-fly PDA execution of the few
// context-dependent tokens — resolved by a stackless DFS over the entry's
// per-entry ctx sub-trie (see cache/ctx_trie_dfs.h), so a byte failing at
// depth d prunes every ctx token sharing that prefix in one step — merging
// per-stack masks with Algorithm 1 when the grammar is ambiguous and several
// parallel stacks are alive.
//
// Decode hot path contract: after a warm-up step per (matcher, state shape),
// FillNextTokenBitmask performs ZERO heap allocations. Everything the step
// needs lives in the MaskWorkspace below — scratch bitsets for the word-level
// Algorithm-1 merge, reusable id buffers, and one scratch matcher that is
// reseeded (not reconstructed) per context-dependent check and that shares
// the runtime matcher's append-only persistent stack pool. The workspace is
// verified by an operator-new-counting test (tests/mask_workspace_test.cc)
// and surfaced as allocs/token in bench/fig09_mask_gen.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/adaptive_cache.h"
#include "matcher/grammar_matcher.h"
#include "support/dynamic_bitset.h"
#include "support/flat_slice_map.h"

namespace xgr::cache {

struct MaskGenStats {
  std::int64_t masks_generated = 0;
  std::int64_t runtime_tokens_checked = 0;  // context-dependent tokens resolved
  // Trie-DFS attribution for the context-dependent checker: bytes actually
  // attempted (one per visited sub-trie edge), tokens rejected via subtree
  // cut-off (a shared failing byte, no individual walk), and the number of
  // cut-off events. tokens_pruned / runtime_tokens_checked is the fraction
  // of the ctx burden the trie resolves for free.
  std::int64_t ctx_bytes_checked = 0;
  std::int64_t ctx_tokens_pruned = 0;
  std::int64_t ctx_subtree_cutoffs = 0;
  // Per-stack ctx-result memoization: the accepted set is a pure function of
  // the (interned, append-only) stack id, so recurring states skip the DFS
  // entirely. Hits resolve their tokens with zero byte checks.
  std::int64_t ctx_memo_hits = 0;
  std::int64_t ctx_memo_misses = 0;
  std::int64_t stacks_processed = 0;
  std::int64_t merges = 0;  // multi-stack Algorithm-1 invocations
  // Scratch-matcher reuse: a rebuild constructs a matcher (allocates), a
  // reseed recycles the existing one (steady state: reseeds only).
  std::int64_t scratch_rebuilds = 0;
  std::int64_t scratch_reseeds = 0;
};

// Per-generator scratch state for the decode hot path. All buffers are sized
// on first use and reused across steps. MaskGenerator (like GrammarMatcher)
// serves one generation request at a time, so the workspace needs no
// synchronization; concurrent requests each own a generator (see
// engine/serving_engine.cc, which parallelizes across decoders, never within
// one). Caveat: the scratch matcher interns frames into the runtime
// matcher's pool, so decoders whose matchers SHARE a pool (forks, §3.3) must
// also share a thread for mask generation — see GrammarMatcher::Fork.
class MaskWorkspace {
 private:
  friend class MaskGenerator;

  // Word-level Algorithm-1 accumulators: union of accepted contributions,
  // intersection of accept-heavy rejected sets, and a per-entry scratch for
  // building one rejected set before intersecting it in.
  DynamicBitset accepted_bits;
  DynamicBitset rejected_bits;
  DynamicBitset entry_bits;
  // Context-dependent tokens accepted for the current stack (unsorted; the
  // word-level merge is order-invariant).
  std::vector<std::int32_t> ctx_accepted;
  // Output buffer of GrammarMatcher::MaskStacks.
  std::vector<std::int32_t> stacks;
  // Scratch matcher, reused via Reseed across stacks and steps. Shares the
  // runtime matcher's persistent stack pool (append-only, so extending it
  // from here is safe) and is rebuilt only when the runtime matcher's pool
  // changes identity.
  std::unique_ptr<matcher::GrammarMatcher> scratch_matcher;
  // Memoized CheckContextDependent results, keyed by stack id (valid for the
  // pool the scratch matcher shares; cleared whenever that pool is dropped).
  // ctx_memo_arena backs the accepted-id slices.
  support::FlatSliceMap ctx_memo;
  std::vector<std::int32_t> ctx_memo_arena;
};

class MaskGenerator {
 public:
  explicit MaskGenerator(std::shared_ptr<const AdaptiveTokenMaskCache> cache)
      : cache_(std::move(cache)) {}

  // Fills `mask` (size = vocab; bit = 1 means the token may be sampled) for
  // the matcher's current state. Special tokens are disabled; EOS is enabled
  // exactly when the grammar can terminate. Allocation-free in steady state
  // (see the header comment). May intern frames into `matcher`'s stack pool
  // (context-dependent checks run there); the pool is append-only, so the
  // matcher's visible state is unchanged.
  void FillNextTokenBitmask(matcher::GrammarMatcher* matcher, DynamicBitset* mask);

  const MaskGenStats& Stats() const { return stats_; }
  const AdaptiveTokenMaskCache& Cache() const { return *cache_; }

  // Drops the reusable scratch matcher and with it the shared_ptr it holds
  // on a runtime matcher's pool. Decoders call this when they discard their
  // matcher's pool (see XGrammarDecoder::Reset) so an idle generator cannot
  // pin the dropped pool; FillNextTokenBitmask also releases a stale scratch
  // on its next call, so this hook is about promptness, not correctness.
  // The ctx memo is keyed by that pool's stack ids, so it must die with it.
  void ReleaseScratch() {
    workspace_.scratch_matcher.reset();
    workspace_.ctx_memo.Clear();
    workspace_.ctx_memo_arena.clear();
  }

 private:
  // Resolves the context-dependent tokens of `entry` against the full stack
  // `stack_id` by DFS over `entry.ctx_trie` on the reusable scratch matcher;
  // returns the accepted ids (workspace buffer, valid until the next call;
  // lexicographic order, not id order).
  const std::vector<std::int32_t>& CheckContextDependent(
      matcher::GrammarMatcher* matcher, std::int32_t stack_id,
      const NodeMaskEntry& entry);

  // Returns the scratch matcher reseeded at `stack_id`, rebuilding it only
  // when `runtime`'s pool is not the one the scratch currently shares.
  matcher::GrammarMatcher& ScratchMatcher(matcher::GrammarMatcher* runtime,
                                          std::int32_t stack_id);

  std::shared_ptr<const AdaptiveTokenMaskCache> cache_;
  MaskGenStats stats_;
  MaskWorkspace workspace_;
};

// Mask generation without any cache: walks the entire vocabulary through the
// PDA from the current state (sorted order + prefix rollback). This is the
// "PDA baseline" configuration of the Table 3 ablation.
void FillBitmaskBruteForce(matcher::GrammarMatcher* matcher,
                           const tokenizer::TokenizerInfo& tokenizer,
                           DynamicBitset* mask);

}  // namespace xgr::cache
