// GrammarCompiler: the memoizing front door the serving integrations use.
//
// Serving engines receive the same schemas and grammars over and over (every
// request against a popular tool re-sends its schema), while compilation +
// mask-cache construction is the expensive preprocessing step. The reference
// implementation wraps both behind a compiler object with an internal cache
// keyed by the grammar source; this is that component. Thread-safe: requests
// arriving on different engine threads share in-flight compilations instead
// of duplicating them.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/adaptive_cache.h"
#include "grammar/grammar.h"
#include "pda/compiled_grammar.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::cache {

// Canonical content keys for compiled engine artifacts. GrammarCompiler
// memoizes on these, and the grammar runtime (runtime::CompileJobKey, its
// registry, and the disk tier) addresses the same artifact space through
// them — both front doors MUST build keys here so the spaces can never
// silently diverge.
std::string EbnfArtifactKey(const std::string& root_rule,
                            const std::string& ebnf_text);
std::string JsonSchemaArtifactKey(const std::string& schema_text);
std::string RegexArtifactKey(const std::string& pattern);
std::string BuiltinJsonArtifactKey();
// Keyed on grammar::EncodeTagSegmentSource(tag): one tag's `begin body end`
// segment grammar (tag-dispatch composition, src/compose). Intrinsic to the
// tag — the trigger set is deliberately absent — so the artifact is shared
// by every config that mentions the tool.
std::string TagSegmentArtifactKey(const std::string& encoded_tag);

struct GrammarCompilerStats {
  // A hit means the artifact was already built: the caller returned without
  // waiting. A caller that arrives while the owning thread is still mid-build
  // shares the artifact but *blocks for the remaining build time* — that is a
  // coalesced wait, not a hit, and the two are counted separately so serving
  // dashboards don't mistake convoy stalls for cache locality.
  std::int64_t hits = 0;
  std::int64_t coalesced_waits = 0;
  std::int64_t misses = 0;
  // Callers rejected O(1) by the negative cache: the key already failed a
  // deterministic parse/compile and re-building could not change that.
  std::int64_t negative_hits = 0;
  double compile_seconds = 0.0;  // cumulative, misses only
};

class GrammarCompiler {
 public:
  GrammarCompiler(std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer,
                  pda::CompileOptions options = {},
                  AdaptiveCacheOptions cache_options = {})
      : tokenizer_(std::move(tokenizer)),
        options_(options),
        cache_options_(cache_options) {}

  // Each returns the fully preprocessed engine artifact (compiled PDA +
  // adaptive token-mask cache), memoized on the source text. Concurrent
  // calls with the same source block on one compilation.
  std::shared_ptr<const AdaptiveTokenMaskCache> CompileEbnf(
      const std::string& ebnf_text, const std::string& root_rule = "root");
  std::shared_ptr<const AdaptiveTokenMaskCache> CompileJsonSchema(
      const std::string& schema_text);
  std::shared_ptr<const AdaptiveTokenMaskCache> CompileRegex(
      const std::string& pattern);
  std::shared_ptr<const AdaptiveTokenMaskCache> CompileBuiltinJson();

  GrammarCompilerStats Stats() const;

  // Drops every memoized artifact (e.g. on tokenizer swap in tests).
  void Clear();

 private:
  std::shared_ptr<const AdaptiveTokenMaskCache> CompileKeyed(
      const std::string& key, const std::function<grammar::Grammar()>& build);

  std::shared_ptr<const tokenizer::TokenizerInfo> tokenizer_;
  pda::CompileOptions options_;
  AdaptiveCacheOptions cache_options_;

  mutable std::mutex mutex_;
  // One shared future per key: the first thread installs it and compiles
  // outside the lock; concurrent same-key callers wait on the future instead
  // of duplicating the work. Guarded by mutex_ (map only, not compilation).
  std::unordered_map<
      std::string,
      std::shared_future<std::shared_ptr<const AdaptiveTokenMaskCache>>>
      memo_;
  // Negative cache: keys whose build failed *deterministically* (CheckError
  // from the parse/compile pipeline), with the original error text. Aligned
  // with CompileService's quarantine policy: deterministic failures are
  // served from here O(1) instead of re-burning a build per caller.
  // Transient failures (anything not a CheckError) are NOT recorded and
  // retry as before. Cleared by Clear().
  std::unordered_map<std::string, std::string> failed_;
  GrammarCompilerStats stats_;
};

}  // namespace xgr::cache
