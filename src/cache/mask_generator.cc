#include "cache/mask_generator.h"

#include <algorithm>

#include "cache/ctx_trie_dfs.h"
#include "support/logging.h"

namespace xgr::cache {

namespace {

// (Re)shapes a workspace bitset to `size` bits. Only the very first step (or
// a vocab-size change, which cannot happen mid-request) allocates.
void EnsureShape(DynamicBitset* bits, std::size_t size) {
  if (bits->Size() != size) *bits = DynamicBitset(size);
}

void ApplySpecialTokens(const tokenizer::TokenizerInfo& tokenizer, bool can_terminate,
                        DynamicBitset* mask) {
  for (std::int32_t id : tokenizer.Vocab().special_ids) {
    mask->Reset(static_cast<std::size_t>(id));
  }
  if (can_terminate && tokenizer.EosId() >= 0) {
    mask->Set(static_cast<std::size_t>(tokenizer.EosId()));
  }
}

}  // namespace

matcher::GrammarMatcher& MaskGenerator::ScratchMatcher(
    matcher::GrammarMatcher* runtime, std::int32_t stack_id) {
  std::unique_ptr<matcher::GrammarMatcher>& scratch = workspace_.scratch_matcher;
  if (scratch == nullptr || &scratch->Pool() != &runtime->Pool()) {
    // First use, or the runtime matcher swapped pools (e.g. a decoder reset
    // onto a fresh matcher): rebuild, sharing the runtime pool. The scratch
    // holds the pool alive via shared_ptr, so the identity comparison above
    // can never be confused by address reuse.
    scratch = std::make_unique<matcher::GrammarMatcher>(
        cache_->PdaShared(), runtime->PoolShared(), stack_id);
    ++stats_.scratch_rebuilds;
  } else {
    scratch->Reseed(stack_id);
    ++stats_.scratch_reseeds;
  }
  return *scratch;
}

const std::vector<std::int32_t>& MaskGenerator::CheckContextDependent(
    matcher::GrammarMatcher* matcher, std::int32_t stack_id,
    const NodeMaskEntry& entry) {
  std::vector<std::int32_t>& accepted = workspace_.ctx_accepted;
  accepted.clear();
  if (entry.context_dependent.empty()) return accepted;
  stats_.runtime_tokens_checked +=
      static_cast<std::int64_t>(entry.context_dependent.size());
  // Memo: the accepted set is a pure function of the full stack (the pool is
  // append-only and interned, so the id denotes the same frame chain forever,
  // and the entry is determined by the stack's top node). Recurring states —
  // the steady-state norm — resolve their whole ctx list in one lookup.
  support::ArenaSlice* memo = workspace_.ctx_memo.Put(stack_id);
  if (memo->length >= 0) {
    ++stats_.ctx_memo_hits;
    accepted.assign(
        workspace_.ctx_memo_arena.begin() + memo->begin,
        workspace_.ctx_memo_arena.begin() + memo->begin + memo->length);
    return accepted;
  }
  ++stats_.ctx_memo_misses;
  // Scratch matcher seeded with the full runtime stack (shared pool, no chain
  // copy): pops resolve against real parent frames. Reseed leaves it at 0
  // consumed bytes, the depth base the sub-trie DFS expects.
  matcher::GrammarMatcher& scratch = ScratchMatcher(matcher, stack_id);
  // DFS over the entry's ctx sub-trie: each shared prefix is walked once and
  // a failing byte rejects its whole subtree, instead of the flat
  // lexicographic loop re-attempting the byte for every later token sharing
  // the prefix. Stackless (preorder + skip pointers) and allocation-free:
  // `accepted` grows within its steady-state capacity only.
  const tokenizer::PrefixTrieSlice& trie = entry.ctx_trie;
  for (std::int32_t t = 0; t < trie.RootTokenEnd(); ++t) {
    // Zero-length tokens consume nothing: trivially accepted.
    accepted.push_back(entry.context_dependent[static_cast<std::size_t>(t)]);
  }
  CtxDfsCounters counters;
  CtxTrieDfs(
      trie, &scratch, &counters,
      /*on_accept=*/
      [&](std::int32_t pos) {
        for (std::int32_t t = trie.TokenBegin(pos); t < trie.TerminalTokenEnd(pos);
             ++t) {
          accepted.push_back(entry.context_dependent[static_cast<std::size_t>(t)]);
        }
      },
      /*on_prune=*/[](std::int32_t) {});
  stats_.ctx_bytes_checked += counters.bytes_checked;
  stats_.ctx_tokens_pruned += counters.tokens_pruned;
  stats_.ctx_subtree_cutoffs += counters.subtree_cutoffs;
  // Park the result for the next occurrence of this stack. `memo` is still
  // valid: nothing above touched the memo map.
  memo->begin = static_cast<std::int32_t>(workspace_.ctx_memo_arena.size());
  memo->length = static_cast<std::int32_t>(accepted.size());
  workspace_.ctx_memo_arena.insert(workspace_.ctx_memo_arena.end(),
                                   accepted.begin(), accepted.end());
  return accepted;
}

void MaskGenerator::FillNextTokenBitmask(matcher::GrammarMatcher* matcher,
                                         DynamicBitset* mask) {
  const tokenizer::TokenizerInfo& tokenizer = cache_->Tokenizer();
  XGR_CHECK(mask->Size() == static_cast<std::size_t>(tokenizer.VocabSize()))
      << "mask size must equal vocabulary size";
  ++stats_.masks_generated;
  // A scratch matcher tied to a different pool (the runtime matcher was
  // rebuilt, e.g. a decoder dropping an oversized pool) must be released
  // eagerly: CheckContextDependent may not run for a long time (entries with
  // no context-dependent tokens), and holding the scratch would pin the
  // dropped pool alive through its shared_ptr. The ctx memo is keyed by the
  // old pool's stack ids, so it must be dropped with it — BEFORE the next
  // memo lookup, which would otherwise serve results for the wrong stacks.
  if (workspace_.scratch_matcher != nullptr &&
      &workspace_.scratch_matcher->Pool() != &matcher->Pool()) {
    workspace_.scratch_matcher.reset();
    workspace_.ctx_memo.Clear();
    workspace_.ctx_memo_arena.clear();
  }
  // Union over the canonical stacks plus the closure's pop-produced stacks:
  // each cache entry's classification already folds in every rule *push*
  // below its node, so push expansions of the closure need no entries of
  // their own; only stacks reached by *pops* (returning to parent frames,
  // possibly after pushing a nullable rule) contribute the tokens that a
  // pre-pop entry deliberately leaves unclassified (see ClassifyFromWalk on
  // depth-0 escapes). This keeps per-step work proportional to the true
  // ambiguity of the grammar rather than its rule-nesting depth.
  std::vector<std::int32_t>& stacks = workspace_.stacks;
  matcher->MaskStacks(&stacks);
  stats_.stacks_processed += static_cast<std::int64_t>(stacks.size());

  if (stacks.empty()) {
    // Dead or fully-terminated state: nothing but (possibly) EOS.
    mask->ResetAll();
    ApplySpecialTokens(tokenizer, matcher->CanTerminate(), mask);
    return;
  }

  if (stacks.size() == 1) {
    // Fast path: write the cache entry straight into the output mask.
    std::int32_t top = matcher->Pool().TopNode(stacks[0]);
    const NodeMaskEntry& entry = cache_->Entry(top);
    const std::vector<std::int32_t>& ctx_accepted =
        CheckContextDependent(matcher, stacks[0], entry);
    switch (entry.kind) {
      case StorageKind::kAcceptHeavy:
        // Accepted = V \ stored \ (context_dependent \ ctx_accepted).
        mask->SetAll();
        mask->ResetBatch(entry.stored);
        mask->ResetBatch(entry.context_dependent);
        mask->SetBatch(ctx_accepted);
        break;
      case StorageKind::kRejectHeavy:
        mask->ResetAll();
        mask->SetBatch(entry.stored);
        mask->SetBatch(ctx_accepted);
        break;
      case StorageKind::kBitset:
        XGR_CHECK(entry.accepted_bits.Size() == mask->Size());
        mask->CopyFrom(entry.accepted_bits);
        mask->SetBatch(ctx_accepted);
        break;
    }
    ApplySpecialTokens(tokenizer, matcher->CanTerminate(), mask);
    return;
  }

  // Algorithm 1, word-level: instead of sorted-list set algebra (which
  // allocated a temporary per union/intersection and materialized bitset
  // entries into index lists), accumulate directly into two scratch bitsets:
  //   accepted_bits = union of accepted contributions (reject-heavy stored
  //                   lists, bitset entries, runtime-accepted ctx tokens),
  //   rejected_bits = intersection over accept-heavy stacks of their
  //                   rejected sets (stored + ctx tokens that failed).
  // Final mask: accepted | ~rejected when any accept-heavy stack was seen
  // (rejecting requires every wildcard-ish stack to reject), else accepted.
  ++stats_.merges;
  DynamicBitset& accepted_bits = workspace_.accepted_bits;
  DynamicBitset& rejected_bits = workspace_.rejected_bits;
  DynamicBitset& entry_bits = workspace_.entry_bits;
  EnsureShape(&accepted_bits, mask->Size());
  accepted_bits.ResetAll();
  bool has_rejected = false;
  for (std::int32_t stack_id : stacks) {
    std::int32_t top = matcher->Pool().TopNode(stack_id);
    const NodeMaskEntry& entry = cache_->Entry(top);
    const std::vector<std::int32_t>& ctx_accepted =
        CheckContextDependent(matcher, stack_id, entry);
    switch (entry.kind) {
      case StorageKind::kAcceptHeavy: {
        // Rejected set = stored + (context_dependent \ ctx_accepted); built
        // by set/reset batches (ctx_accepted is a subset of
        // context_dependent, and stored is disjoint from it, so order within
        // the three batches does not matter).
        DynamicBitset& target = has_rejected ? entry_bits : rejected_bits;
        EnsureShape(&target, mask->Size());
        target.ResetAll();
        target.SetBatch(entry.stored);
        target.SetBatch(entry.context_dependent);
        target.ResetBatch(ctx_accepted);
        if (has_rejected) {
          rejected_bits.AndWith(entry_bits);
        } else {
          has_rejected = true;
        }
        break;
      }
      case StorageKind::kRejectHeavy:
        accepted_bits.SetBatch(entry.stored);
        accepted_bits.SetBatch(ctx_accepted);
        break;
      case StorageKind::kBitset:
        XGR_CHECK(entry.accepted_bits.Size() == mask->Size());
        accepted_bits.OrWith(entry.accepted_bits);
        accepted_bits.SetBatch(ctx_accepted);
        break;
    }
  }
  if (!has_rejected) {
    // All stacks contributed accepted sets: the mask is their union.
    mask->CopyFrom(accepted_bits);
  } else {
    // Rejected = rejected_bits \ accepted_bits, i.e. mask = ~rejected | accepted.
    mask->CopyFrom(rejected_bits);
    mask->FlipAll();
    mask->OrWith(accepted_bits);
  }
  ApplySpecialTokens(tokenizer, matcher->CanTerminate(), mask);
}

void FillBitmaskBruteForce(matcher::GrammarMatcher* matcher,
                           const tokenizer::TokenizerInfo& tokenizer,
                           DynamicBitset* mask) {
  XGR_CHECK(mask->Size() == static_cast<std::size_t>(tokenizer.VocabSize()));
  mask->ResetAll();
  const std::vector<std::int32_t>& sorted = tokenizer.SortedTokenIds();
  const std::vector<std::int32_t>& prefixes = tokenizer.SortedCommonPrefixLengths();
  std::int32_t entry_depth = matcher->NumConsumedBytes();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const std::string& token = tokenizer.TokenBytes(sorted[i]);
    std::int32_t target =
        entry_depth + std::min(prefixes[i], matcher->NumConsumedBytes() - entry_depth);
    matcher->RollbackToDepth(target);
    bool ok = true;
    for (std::size_t j = static_cast<std::size_t>(matcher->NumConsumedBytes() - entry_depth);
         j < token.size(); ++j) {
      if (!matcher->AcceptByte(static_cast<std::uint8_t>(token[j]))) {
        ok = false;
        break;
      }
    }
    if (ok) mask->Set(static_cast<std::size_t>(sorted[i]));
  }
  matcher->RollbackToDepth(entry_depth);
  for (std::int32_t id : tokenizer.Vocab().special_ids) {
    mask->Reset(static_cast<std::size_t>(id));
  }
  if (matcher->CanTerminate() && tokenizer.EosId() >= 0) {
    mask->Set(static_cast<std::size_t>(tokenizer.EosId()));
  }
}

}  // namespace xgr::cache
