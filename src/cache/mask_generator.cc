#include "cache/mask_generator.h"

#include <algorithm>
#include <optional>

#include "support/logging.h"
#include "support/string_utils.h"

namespace xgr::cache {

namespace {

// Sorted-vector set helpers (Algorithm 1 runs on small token-id lists).
std::vector<std::int32_t> IntersectSorted(const std::vector<std::int32_t>& a,
                                          const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<std::int32_t> UnionSorted(const std::vector<std::int32_t>& a,
                                      const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<std::int32_t> DifferenceSorted(const std::vector<std::int32_t>& a,
                                           const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

void ApplySpecialTokens(const tokenizer::TokenizerInfo& tokenizer, bool can_terminate,
                        DynamicBitset* mask) {
  for (std::int32_t id : tokenizer.Vocab().special_ids) {
    mask->Reset(static_cast<std::size_t>(id));
  }
  if (can_terminate && tokenizer.EosId() >= 0) {
    mask->Set(static_cast<std::size_t>(tokenizer.EosId()));
  }
}

}  // namespace

std::vector<std::int32_t> MaskGenerator::CheckContextDependent(
    matcher::GrammarMatcher* matcher, std::int32_t stack_id,
    const NodeMaskEntry& entry) {
  std::vector<std::int32_t> accepted;
  if (entry.context_dependent.empty()) return accepted;
  const tokenizer::TokenizerInfo& tokenizer = cache_->Tokenizer();
  // Scratch matcher seeded with the full runtime stack: pops now resolve
  // against real parent frames.
  matcher::GrammarMatcher scratch(cache_->PdaShared(), matcher->Pool(), stack_id);
  std::string_view previous;
  for (std::int32_t token_id : entry.context_dependent) {  // lexicographic
    const std::string& token = tokenizer.TokenBytes(token_id);
    auto common = static_cast<std::int32_t>(CommonPrefixLength(previous, token));
    scratch.RollbackToDepth(std::min(common, scratch.NumConsumedBytes()));
    bool ok = true;
    for (std::size_t j = static_cast<std::size_t>(scratch.NumConsumedBytes());
         j < token.size(); ++j) {
      if (!scratch.AcceptByte(static_cast<std::uint8_t>(token[j]))) {
        ok = false;
        break;
      }
    }
    ++stats_.runtime_tokens_checked;
    if (ok) accepted.push_back(token_id);
    previous = token;
  }
  std::sort(accepted.begin(), accepted.end());
  return accepted;
}

void MaskGenerator::FillNextTokenBitmask(matcher::GrammarMatcher* matcher,
                                         DynamicBitset* mask) {
  const tokenizer::TokenizerInfo& tokenizer = cache_->Tokenizer();
  XGR_CHECK(mask->Size() == static_cast<std::size_t>(tokenizer.VocabSize()))
      << "mask size must equal vocabulary size";
  ++stats_.masks_generated;
  // Union over the canonical stacks plus the closure's pop-produced stacks:
  // each cache entry's classification already folds in every rule *push*
  // below its node, so push expansions of the closure need no entries of
  // their own; only stacks reached by *pops* (returning to parent frames,
  // possibly after pushing a nullable rule) contribute the tokens that a
  // pre-pop entry deliberately leaves unclassified (see ClassifyFromWalk on
  // depth-0 escapes). This keeps per-step work proportional to the true
  // ambiguity of the grammar rather than its rule-nesting depth.
  const std::vector<std::int32_t> stacks = matcher->MaskStacks();
  stats_.stacks_processed += static_cast<std::int64_t>(stacks.size());

  if (stacks.empty()) {
    // Dead or fully-terminated state: nothing but (possibly) EOS.
    mask->ResetAll();
    ApplySpecialTokens(tokenizer, matcher->CanTerminate(), mask);
    return;
  }

  if (stacks.size() == 1) {
    // Fast path: write the cache entry straight into the output mask.
    std::int32_t top = matcher->Pool().TopNode(stacks[0]);
    const NodeMaskEntry& entry = cache_->Entry(top);
    std::vector<std::int32_t> ctx_accepted =
        CheckContextDependent(matcher, stacks[0], entry);
    switch (entry.kind) {
      case StorageKind::kAcceptHeavy:
        mask->SetAll();
        for (std::int32_t id : entry.stored) mask->Reset(static_cast<std::size_t>(id));
        for (std::int32_t id : entry.context_dependent) {
          mask->Reset(static_cast<std::size_t>(id));
        }
        for (std::int32_t id : ctx_accepted) mask->Set(static_cast<std::size_t>(id));
        break;
      case StorageKind::kRejectHeavy:
        mask->ResetAll();
        for (std::int32_t id : entry.stored) mask->Set(static_cast<std::size_t>(id));
        for (std::int32_t id : ctx_accepted) mask->Set(static_cast<std::size_t>(id));
        break;
      case StorageKind::kBitset: {
        XGR_CHECK(entry.accepted_bits.Size() == mask->Size());
        std::copy(entry.accepted_bits.Data(),
                  entry.accepted_bits.Data() + entry.accepted_bits.WordCount(),
                  mask->MutableData());
        for (std::int32_t id : ctx_accepted) mask->Set(static_cast<std::size_t>(id));
        break;
      }
    }
    ApplySpecialTokens(tokenizer, matcher->CanTerminate(), mask);
    return;
  }

  // Algorithm 1: merge per-stack masks on small sorted lists.
  ++stats_.merges;
  std::optional<std::vector<std::int32_t>> partial_rej;  // nullopt = V
  std::vector<std::int32_t> partial_acc;
  for (std::int32_t stack_id : stacks) {
    std::int32_t top = matcher->Pool().TopNode(stack_id);
    const NodeMaskEntry& entry = cache_->Entry(top);
    std::vector<std::int32_t> ctx_accepted =
        CheckContextDependent(matcher, stack_id, entry);
    if (entry.kind == StorageKind::kAcceptHeavy) {
      // Rejected list = stored (CI-rejected) + context-dependent that failed.
      std::vector<std::int32_t> ctx_sorted = entry.context_dependent;
      std::sort(ctx_sorted.begin(), ctx_sorted.end());
      std::vector<std::int32_t> rejected =
          UnionSorted(entry.stored, DifferenceSorted(ctx_sorted, ctx_accepted));
      partial_rej = partial_rej.has_value() ? IntersectSorted(*partial_rej, rejected)
                                            : std::move(rejected);
    } else {
      // Reject-heavy and bitset entries contribute accepted lists.
      std::vector<std::int32_t> accepted =
          entry.kind == StorageKind::kBitset ? entry.accepted_bits.ToIndexList()
                                             : entry.stored;
      partial_acc = UnionSorted(partial_acc, UnionSorted(accepted, ctx_accepted));
    }
  }
  if (!partial_rej.has_value()) {
    // All stacks reject-heavy: accepted = PartialAcc.
    mask->ResetAll();
    for (std::int32_t id : partial_acc) mask->Set(static_cast<std::size_t>(id));
  } else {
    // Rejected = PartialRej \ PartialAcc.
    mask->SetAll();
    for (std::int32_t id : DifferenceSorted(*partial_rej, partial_acc)) {
      mask->Reset(static_cast<std::size_t>(id));
    }
  }
  ApplySpecialTokens(tokenizer, matcher->CanTerminate(), mask);
}

void FillBitmaskBruteForce(matcher::GrammarMatcher* matcher,
                           const tokenizer::TokenizerInfo& tokenizer,
                           DynamicBitset* mask) {
  XGR_CHECK(mask->Size() == static_cast<std::size_t>(tokenizer.VocabSize()));
  mask->ResetAll();
  const std::vector<std::int32_t>& sorted = tokenizer.SortedTokenIds();
  const std::vector<std::int32_t>& prefixes = tokenizer.SortedCommonPrefixLengths();
  std::int32_t entry_depth = matcher->NumConsumedBytes();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const std::string& token = tokenizer.TokenBytes(sorted[i]);
    std::int32_t target =
        entry_depth + std::min(prefixes[i], matcher->NumConsumedBytes() - entry_depth);
    matcher->RollbackToDepth(target);
    bool ok = true;
    for (std::size_t j = static_cast<std::size_t>(matcher->NumConsumedBytes() - entry_depth);
         j < token.size(); ++j) {
      if (!matcher->AcceptByte(static_cast<std::uint8_t>(token[j]))) {
        ok = false;
        break;
      }
    }
    if (ok) mask->Set(static_cast<std::size_t>(sorted[i]));
  }
  matcher->RollbackToDepth(entry_depth);
  for (std::int32_t id : tokenizer.Vocab().special_ids) {
    mask->Reset(static_cast<std::size_t>(id));
  }
  if (matcher->CanTerminate() && tokenizer.EosId() >= 0) {
    mask->Set(static_cast<std::size_t>(tokenizer.EosId()));
  }
}

}  // namespace xgr::cache
