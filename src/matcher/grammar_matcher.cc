#include "matcher/grammar_matcher.h"

#include <algorithm>

#include "support/logging.h"
#include "support/utf8.h"
#include "tokenizer/tokenizer_info.h"

namespace xgr::matcher {

namespace {
// Budget on the closure working set; exceeded only by pathological grammars
// (e.g. left recursion, which pushes unboundedly without consuming input).
constexpr std::size_t kMaxClosureStacks = 65536;
}  // namespace

void StackTransitions::BeginEpoch() {
  if (++epoch_ == 0) {
    // Epoch counter wrapped: stale stamps could collide, so clear them once
    // every 2^32 closures and restart at epoch 1.
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0u);
    epoch_ = 1;
  }
}

bool StackTransitions::MarkVisited(std::int32_t id) {
  auto index = static_cast<std::size_t>(id);
  if (index >= visited_epoch_.size()) {
    // Doubling growth keeps resizes amortized while the pool is still
    // interning new frames; once the frame set stabilizes (steady-state
    // decoding) this branch is never taken again.
    visited_epoch_.resize(
        std::max(index + 1, std::max<std::size_t>(64, visited_epoch_.size() * 2)),
        0u);
  }
  if (visited_epoch_[index] == epoch_) return false;
  visited_epoch_[index] = epoch_;
  return true;
}

const StackTransitions::CachedClosure& StackTransitions::EnsureClosure(
    std::int32_t seed) {
  auto index = static_cast<std::size_t>(seed);
  if (index >= closure_cache_.size()) {
    // Doubling growth, like the visited stamps: once the pool's frame set
    // stabilizes this never resizes again.
    closure_cache_.resize(
        std::max(index + 1, std::max<std::size_t>(64, closure_cache_.size() * 2)));
  }
  if (closure_cache_[index].valid) return closure_cache_[index];

  // First encounter: run the worklist expansion for this seed alone.
  const fsa::Fsa& automaton = pda_->Automaton();
  BeginEpoch();
  worklist_.clear();
  worklist_.push_back(seed);
  MarkVisited(seed);
  pop_scratch_.clear();
  bool can_complete = false;
  bool escaped = false;
  for (std::size_t i = 0; i < worklist_.size(); ++i) {
    std::int32_t stack_id = worklist_[i];
    const PersistentStackPool::Frame frame = pool_->Get(stack_id);
    // Rule-reference pushes: q --<R>--> t replaces the top with the return
    // position t, then pushes R's start node.
    for (const fsa::Edge& edge : automaton.EdgesFrom(frame.pda_node)) {
      if (edge.kind != fsa::EdgeKind::kRuleRef) continue;
      std::int32_t return_frame = pool_->Intern(frame.parent, edge.target);
      std::int32_t pushed =
          pool_->Intern(return_frame, pda_->RuleStartNode(edge.rule_ref));
      if (MarkVisited(pushed)) worklist_.push_back(pushed);
    }
    // Pop: reaching an accepting state returns to the parent frame.
    if (automaton.IsAccepting(frame.pda_node)) {
      if (frame.parent == PersistentStackPool::kNoParent) {
        can_complete = true;
      } else if (frame.parent == PersistentStackPool::kUnknownParent) {
        escaped = true;
      } else {
        if (MarkVisited(frame.parent)) worklist_.push_back(frame.parent);
        pop_scratch_.push_back(frame.parent);
      }
    }
    XGR_CHECK(worklist_.size() <= kMaxClosureStacks)
        << "closure budget exceeded; grammar is likely left-recursive";
  }
  std::sort(pop_scratch_.begin(), pop_scratch_.end());
  pop_scratch_.erase(std::unique(pop_scratch_.begin(), pop_scratch_.end()),
                     pop_scratch_.end());

  // Park the result. Interning above cannot have resized closure_cache_ (only
  // this function grows it), so the entry reference below is stable.
  CachedClosure& entry = closure_cache_[index];
  entry.begin = static_cast<std::int32_t>(closure_arena_.size());
  entry.length = static_cast<std::int32_t>(worklist_.size());
  closure_arena_.insert(closure_arena_.end(), worklist_.begin(), worklist_.end());
  entry.pop_begin = static_cast<std::int32_t>(pop_arena_.size());
  entry.pop_length = static_cast<std::int32_t>(pop_scratch_.size());
  pop_arena_.insert(pop_arena_.end(), pop_scratch_.begin(), pop_scratch_.end());
  entry.can_complete = can_complete;
  entry.escaped = escaped;
  entry.valid = true;
  return entry;
}

void StackTransitions::Close(std::vector<std::int32_t>* stacks, ClosureInfo* info) {
  // The closure of a set is the union of its seeds' closures (expansion is
  // per-element: pushes and pops depend only on the stack's own top frame).
  // Phase 1 memoizes any seed not yet cached — EnsureClosure runs its own
  // epoch, so seeds are snapshotted first; phase 2 merges the cached slices.
  if (stacks->size() == 1) {
    // Single seed: the cached slices need no dedup or re-sort at all.
    const CachedClosure& cached = EnsureClosure((*stacks)[0]);
    info->can_complete |= cached.can_complete;
    info->escaped |= cached.escaped;
    stacks->assign(
        closure_arena_.begin() + cached.begin,
        closure_arena_.begin() + cached.begin + cached.length);
    info->pop_results.insert(
        info->pop_results.end(), pop_arena_.begin() + cached.pop_begin,
        pop_arena_.begin() + cached.pop_begin + cached.pop_length);
    return;
  }
  seed_scratch_.assign(stacks->begin(), stacks->end());
  for (std::int32_t seed : seed_scratch_) EnsureClosure(seed);
  BeginEpoch();
  stacks->clear();
  for (std::int32_t seed : seed_scratch_) {
    const CachedClosure& cached = closure_cache_[static_cast<std::size_t>(seed)];
    info->can_complete |= cached.can_complete;
    info->escaped |= cached.escaped;
    for (std::int32_t i = 0; i < cached.length; ++i) {
      std::int32_t id = closure_arena_[static_cast<std::size_t>(cached.begin + i)];
      if (MarkVisited(id)) stacks->push_back(id);
    }
    for (std::int32_t i = 0; i < cached.pop_length; ++i) {
      info->pop_results.push_back(
          pop_arena_[static_cast<std::size_t>(cached.pop_begin + i)]);
    }
  }
  XGR_CHECK(stacks->size() <= kMaxClosureStacks)
      << "closure budget exceeded; grammar is likely left-recursive";
  // Pop results must stay sorted+unique for MaskStacks' linear set_union; the
  // closed set itself has no ordering contract.
  std::sort(info->pop_results.begin(), info->pop_results.end());
  info->pop_results.erase(
      std::unique(info->pop_results.begin(), info->pop_results.end()),
      info->pop_results.end());
}

const support::ArenaSlice& StackTransitions::EnsureSuccessors(
    std::int32_t seed, std::uint8_t byte) {
  std::int64_t key = (static_cast<std::int64_t>(seed) << 8) | byte;
  support::ArenaSlice* slice = successor_map_.Put(key);
  if (slice->length >= 0) return *slice;

  // First attempt of this (seed, byte): scan the seed's closure for matching
  // byte edges. Interning successors cannot touch the map, so `slice` stays
  // valid across the loop.
  const CachedClosure& closure = EnsureClosure(seed);
  const fsa::Fsa& automaton = pda_->Automaton();
  successor_scratch_.clear();
  for (std::int32_t i = 0; i < closure.length; ++i) {
    std::int32_t stack_id =
        closure_arena_[static_cast<std::size_t>(closure.begin + i)];
    const PersistentStackPool::Frame frame = pool_->Get(stack_id);
    for (const fsa::Edge& edge : automaton.EdgesFrom(frame.pda_node)) {
      if (edge.kind == fsa::EdgeKind::kByteRange && edge.min_byte <= byte &&
          byte <= edge.max_byte) {
        successor_scratch_.push_back(pool_->Intern(frame.parent, edge.target));
      }
    }
  }
  std::sort(successor_scratch_.begin(), successor_scratch_.end());
  successor_scratch_.erase(
      std::unique(successor_scratch_.begin(), successor_scratch_.end()),
      successor_scratch_.end());
  slice->begin = static_cast<std::int32_t>(successor_arena_.size());
  slice->length = static_cast<std::int32_t>(successor_scratch_.size());
  successor_arena_.insert(successor_arena_.end(), successor_scratch_.begin(),
                          successor_scratch_.end());
  return *slice;
}

void StackTransitions::AdvanceByte(const std::vector<std::int32_t>& stacks,
                                   std::uint8_t byte,
                                   std::vector<std::int32_t>* out) {
  out->clear();
  if (stacks.size() == 1) {
    // Single canonical stack (the overwhelmingly common case): the memoized
    // slice IS the sorted successor set.
    const support::ArenaSlice& slice = EnsureSuccessors(stacks[0], byte);
    out->insert(out->end(),
                successor_arena_.begin() + slice.begin,
                successor_arena_.begin() + slice.begin + slice.length);
    return;
  }
  for (std::int32_t seed : stacks) {
    const support::ArenaSlice& slice = EnsureSuccessors(seed, byte);
    out->insert(out->end(),
                successor_arena_.begin() + slice.begin,
                successor_arena_.begin() + slice.begin + slice.length);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void StackTransitions::AllowedBytes(const std::vector<std::int32_t>& closed,
                                    std::array<bool, 256>* allowed) const {
  const fsa::Fsa& automaton = pda_->Automaton();
  allowed->fill(false);
  for (std::int32_t stack_id : closed) {
    const PersistentStackPool::Frame frame = pool_->Get(stack_id);
    for (const fsa::Edge& edge : automaton.EdgesFrom(frame.pda_node)) {
      if (edge.kind != fsa::EdgeKind::kByteRange) continue;
      for (int b = edge.min_byte; b <= edge.max_byte; ++b) {
        (*allowed)[static_cast<std::size_t>(b)] = true;
      }
    }
  }
}

GrammarMatcher::GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda)
    : GrammarMatcher(std::move(pda), PersistentStackPool::kNoParent, -1) {}

GrammarMatcher::GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                               std::int32_t bottom_sentinel,
                               std::int32_t start_node)
    : pda_(std::move(pda)),
      pool_(std::make_shared<PersistentStackPool>()),
      transitions_(*pda_, pool_.get()) {
  if (start_node < 0) start_node = pda_->RuleStartNode(pda_->RootRule());
  Snapshot initial;
  initial.stacks.push_back(pool_->Intern(bottom_sentinel, start_node));
  SealSnapshot(&initial);
  history_.push_back(std::move(initial));
}

GrammarMatcher::GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                               const PersistentStackPool& source_pool,
                               std::int32_t stack_id)
    : pda_(std::move(pda)),
      pool_(std::make_shared<PersistentStackPool>()),
      transitions_(*pda_, pool_.get()) {
  Snapshot initial;
  initial.stacks.push_back(pool_->CopyChainFrom(source_pool, stack_id));
  SealSnapshot(&initial);
  history_.push_back(std::move(initial));
}

GrammarMatcher::GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                               std::shared_ptr<PersistentStackPool> pool,
                               std::int32_t stack_id)
    : pda_(std::move(pda)),
      pool_(std::move(pool)),
      transitions_(*pda_, pool_.get()) {
  Snapshot initial;
  initial.stacks.push_back(stack_id);
  SealSnapshot(&initial);
  history_.push_back(std::move(initial));
}

GrammarMatcher GrammarMatcher::ForCacheSimulation(
    std::shared_ptr<const pda::CompiledGrammar> pda, std::int32_t node) {
  return GrammarMatcher(std::move(pda), PersistentStackPool::kUnknownParent, node);
}

GrammarMatcher::GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                               std::shared_ptr<PersistentStackPool> pool,
                               Snapshot snapshot)
    : pda_(std::move(pda)),
      pool_(std::move(pool)),
      transitions_(*pda_, pool_.get()) {
  history_.push_back(std::move(snapshot));
}

GrammarMatcher GrammarMatcher::Fork() const {
  return GrammarMatcher(pda_, pool_, history_.back());
}

void GrammarMatcher::SealSnapshot(Snapshot* snapshot) {
  // Field-wise reset (rather than assigning fresh objects) keeps the vector
  // capacities of recycled snapshots alive across AcceptByte/Rollback cycles.
  snapshot->closed.assign(snapshot->stacks.begin(), snapshot->stacks.end());
  snapshot->info.can_complete = false;
  snapshot->info.escaped = false;
  snapshot->info.pop_results.clear();
  transitions_.Close(&snapshot->closed, &snapshot->info);
  stats_.closure_stacks += snapshot->closed.size();
}

GrammarMatcher::Snapshot GrammarMatcher::AcquireSnapshot() {
  if (recycled_snapshots_.empty()) return Snapshot{};
  Snapshot snapshot = std::move(recycled_snapshots_.back());
  recycled_snapshots_.pop_back();
  snapshot.stacks.clear();
  return snapshot;
}

bool GrammarMatcher::AcceptByte(std::uint8_t byte) {
  ++stats_.bytes_attempted;
  Snapshot next = AcquireSnapshot();
  transitions_.AdvanceByte(history_.back().stacks, byte, &next.stacks);
  if (next.stacks.empty()) {
    RecycleSnapshot(std::move(next));
    return false;
  }
  SealSnapshot(&next);
  history_.push_back(std::move(next));
  ++stats_.bytes_accepted;
  return true;
}

bool GrammarMatcher::AcceptString(std::string_view bytes) {
  std::int32_t entry_depth = NumConsumedBytes();
  for (char c : bytes) {
    if (!AcceptByte(static_cast<std::uint8_t>(c))) {
      RollbackToDepth(entry_depth);
      return false;
    }
  }
  return true;
}

bool GrammarMatcher::CanAcceptString(std::string_view bytes) {
  std::int32_t entry_depth = NumConsumedBytes();
  bool accepted = AcceptString(bytes);
  RollbackToDepth(entry_depth);
  return accepted;
}

void GrammarMatcher::RollbackToDepth(std::int32_t depth) {
  std::int32_t consumed = NumConsumedBytes();
  // Debug-only check on the hot path: the ctx-trie DFS calls this before
  // every edge and by construction never targets beyond the consumed depth
  // (preorder: a node's parent depth never exceeds the previous depth + 1).
  XGR_DCHECK(depth >= 0 && depth <= consumed)
      << "rollback depth out of range: " << depth;
  // O(1) fast path: descending a trie chain (or any caller already at the
  // target) skips the snapshot loop entirely.
  if (depth == consumed) return;
  // Off the fast path the hard check is free — keep release builds throwing
  // on misuse instead of popping the initial snapshot (UB) or underflowing
  // the rollback accounting.
  XGR_CHECK(depth >= 0 && depth < consumed)
      << "rollback depth out of range: " << depth;
  stats_.rollback_bytes += static_cast<std::uint64_t>(consumed - depth);
  std::size_t target = static_cast<std::size_t>(depth) + 1;
  while (history_.size() > target) {
    RecycleSnapshot(std::move(history_.back()));
    history_.pop_back();
  }
}

void GrammarMatcher::Reseed(std::int32_t stack_id) {
  XGR_DCHECK(stack_id >= 0 &&
             static_cast<std::size_t>(stack_id) < pool_->Size());
  while (history_.size() > 1) {
    RecycleSnapshot(std::move(history_.back()));
    history_.pop_back();
  }
  token_checkpoints_.clear();
  Snapshot& initial = history_.front();
  initial.stacks.clear();
  initial.stacks.push_back(stack_id);
  SealSnapshot(&initial);
}

void GrammarMatcher::ResetToStart() {
  Reseed(pool_->Intern(PersistentStackPool::kNoParent,
                       pda_->RuleStartNode(pda_->RootRule())));
}

void GrammarMatcher::RollbackTokens(std::int32_t count) {
  XGR_CHECK(count >= 0 && count <= NumTokenCheckpoints())
      << "token rollback out of range: " << count;
  if (count == 0) return;
  std::size_t keep = token_checkpoints_.size() - static_cast<std::size_t>(count);
  // checkpoints[i] records the byte depth *after* token i; rolling back to
  // "after the last kept token" means checkpoints[keep-1], or the initial
  // state when nothing is kept.
  std::int32_t depth = keep == 0 ? 0 : token_checkpoints_[keep - 1];
  token_checkpoints_.resize(keep);
  RollbackToDepth(depth);
}

void GrammarMatcher::VerifyTokenDraft(const tokenizer::TokenizerInfo& tokenizer,
                                      const std::int32_t* draft,
                                      std::int32_t count,
                                      TokenDraftResult* result) {
  XGR_CHECK(result != nullptr);
  XGR_CHECK(count >= 0 && (count == 0 || draft != nullptr))
      << "bad draft span: count=" << count;
  result->accepted = 0;
  result->accepted_bytes = 0;
  result->exhausted = false;
  result->terminated = false;
  const std::int32_t entry_depth = NumConsumedBytes();
  const std::int32_t vocab = tokenizer.VocabSize();
  for (std::int32_t i = 0; i < count; ++i) {
    const std::int32_t token = draft[i];
    if (token == tokenizer.EosId()) {
      // EOS stops the walk without counting or consuming state; it is only
      // "accepted" in the sequential sense when termination is legal here.
      result->terminated = CanTerminate();
      break;
    }
    if (token < 0 || token >= vocab || tokenizer.IsSpecial(token)) break;
    // All-or-nothing per token: a mid-token reject restores the pre-token
    // state internally, so the matcher is left exactly at the accepted
    // prefix — the state whose mask is the divergence mask.
    if (!AcceptString(tokenizer.TokenBytes(token))) break;
    PushTokenCheckpoint();
    ++result->accepted;
  }
  result->accepted_bytes = NumConsumedBytes() - entry_depth;
  result->exhausted = result->accepted == count;
}

std::string GrammarMatcher::FindJumpForwardString(std::int32_t max_length) {
  std::int32_t entry_depth = NumConsumedBytes();
  std::string result;
  std::array<bool, 256> allowed{};
  while (static_cast<std::int32_t>(result.size()) < max_length) {
    // Termination as an alternative makes the continuation non-unique.
    if (CanTerminate()) break;
    transitions_.AllowedBytes(history_.back().closed, &allowed);
    int unique_byte = -1;
    int count = 0;
    for (int b = 0; b < 256 && count <= 1; ++b) {
      if (allowed[static_cast<std::size_t>(b)]) {
        ++count;
        unique_byte = b;
      }
    }
    if (count != 1) break;
    if (!AcceptByte(static_cast<std::uint8_t>(unique_byte))) break;
    result.push_back(static_cast<char>(unique_byte));
  }
  RollbackToDepth(entry_depth);
  // The walk can stop mid-UTF-8 sequence — at max_length, or because only the
  // lead byte of a character class is forced (e.g. a codepoint range within
  // one lead byte) while its continuation bytes are not. A forced string is
  // appended to the generation context verbatim, so a partial codepoint there
  // would be retokenized as half a character; trim back to the last complete
  // codepoint instead (the dropped bytes are still enforced by the grammar).
  result.resize(CompleteUtf8PrefixLength(result));
  return result;
}

}  // namespace xgr::matcher
