// Persistent execution stack (§3.3 of the paper).
//
// All matching stacks — the parallel stacks of the current step and every
// stack from previous steps — are organized into a single tree. A stack is
// identified by the id of its top frame; the chain of parent pointers is the
// stack content. Frames are interned by (parent, pda_node), which gives
// three properties the matcher relies on:
//   * structural sharing: stacks from adjacent steps share their deep frames,
//   * O(1) state branching: splitting a stack allocates at most one frame,
//   * equal stacks <=> equal ids, making stack-set deduplication trivial.
// Frames are never freed while the pool lives; rollback is just restoring an
// earlier vector of stack ids (the paper's sliding-window history).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/logging.h"

namespace xgr::matcher {

class PersistentStackPool {
 public:
  // Bottom-of-stack sentinels.
  static constexpr std::int32_t kNoParent = -1;       // real generation stack
  static constexpr std::int32_t kUnknownParent = -2;  // cache-build simulation

  struct Frame {
    std::int32_t parent;    // frame id, or a sentinel
    std::int32_t pda_node;  // current position (top) / return position (inner)
  };

  // Returns the unique frame id for (parent, pda_node).
  std::int32_t Intern(std::int32_t parent, std::int32_t pda_node) {
    std::uint64_t key = MakeKey(parent, pda_node);
    auto [it, inserted] = index_.try_emplace(key, static_cast<std::int32_t>(frames_.size()));
    if (inserted) frames_.push_back(Frame{parent, pda_node});
    return it->second;
  }

  const Frame& Get(std::int32_t id) const {
    XGR_DCHECK(id >= 0 && id < static_cast<std::int32_t>(frames_.size()));
    return frames_[static_cast<std::size_t>(id)];
  }

  std::int32_t TopNode(std::int32_t id) const { return Get(id).pda_node; }

  // Depth of the stack (number of frames to the bottom sentinel).
  std::int32_t Depth(std::int32_t id) const {
    std::int32_t depth = 0;
    while (id >= 0) {
      ++depth;
      id = Get(id).parent;
    }
    return depth;
  }

  // Copies the frame chain of `id` (which lives in `source`) into this pool,
  // preserving the bottom sentinel. Used to seed a scratch matcher from a
  // runtime stack when checking context-dependent tokens.
  std::int32_t CopyChainFrom(const PersistentStackPool& source, std::int32_t id) {
    if (id < 0) return id;  // sentinel
    const Frame& frame = source.Get(id);
    std::int32_t parent = CopyChainFrom(source, frame.parent);
    return Intern(parent, frame.pda_node);
  }

  std::size_t Size() const { return frames_.size(); }
  std::size_t MemoryBytes() const {
    return frames_.size() * sizeof(Frame) +
           index_.size() * (sizeof(std::uint64_t) + sizeof(std::int32_t) + 2 * sizeof(void*));
  }

  void Clear() {
    frames_.clear();
    index_.clear();
  }

 private:
  static std::uint64_t MakeKey(std::int32_t parent, std::int32_t node) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(parent)) << 32) |
           static_cast<std::uint32_t>(node);
  }

  std::vector<Frame> frames_;
  std::unordered_map<std::uint64_t, std::int32_t> index_;
};

}  // namespace xgr::matcher
