// Byte-level grammar matcher: executes the compiled PDA over multiple
// parallel persistent stacks (§3.3), with per-byte history for rollback and
// the jump-forward probe used by jump-forward decoding (Appendix B).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "matcher/persistent_stack.h"
#include "pda/compiled_grammar.h"

namespace xgr::matcher {

// Closure + byte-step primitives over the compiled automaton. Stateless with
// respect to matching; owns nothing.
class StackTransitions {
 public:
  StackTransitions(const pda::CompiledGrammar& pda, PersistentStackPool* pool)
      : pda_(&pda), pool_(pool) {}

  struct ClosureInfo {
    bool can_complete = false;  // a kNoParent bottom frame popped (EOS legal)
    bool escaped = false;       // a kUnknownParent bottom frame popped
    // Stacks produced by pop transitions (returning to a parent frame),
    // including pops enabled by pushing nullable rules first. Together with
    // the canonical stacks these are exactly the states whose cache entries
    // mask generation must union (push expansions are already folded into
    // each entry's classification).
    std::vector<std::int32_t> pop_results;
  };

  // Expands `stacks` in place to its push/pop closure (deduplicated, sorted).
  // All intermediate stacks are kept: each may own byte edges.
  void Close(std::vector<std::int32_t>* stacks, ClosureInfo* info) const;

  // One byte step over a closed stack set; output is the deduplicated
  // canonical (pre-closure) successor set.
  void AdvanceByte(const std::vector<std::int32_t>& closed, std::uint8_t byte,
                   std::vector<std::int32_t>* out) const;

  // Marks every byte accepted from `closed` in `allowed` (jump-forward).
  void AllowedBytes(const std::vector<std::int32_t>& closed,
                    std::array<bool, 256>* allowed) const;

 private:
  const pda::CompiledGrammar* pda_;
  PersistentStackPool* pool_;
};

struct MatcherStats {
  std::uint64_t bytes_accepted = 0;   // successful AcceptByte calls
  std::uint64_t bytes_attempted = 0;  // including failed ones
  std::uint64_t closure_stacks = 0;   // cumulative closed-set sizes
  std::uint64_t rollback_bytes = 0;
};

// The matcher. One instance per concurrent generation request (not
// thread-safe; the compiled grammar it references is shared and immutable).
class GrammarMatcher {
 public:
  explicit GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda);

  // Seeds a scratch matcher from an existing runtime stack (frame chain is
  // copied into the private pool). Used for context-dependent token checks.
  GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                 const PersistentStackPool& source_pool, std::int32_t stack_id);

  // Seeds the cache-build simulation: a single-frame stack [node] whose
  // parent is unknown (§3.1 token classification).
  static GrammarMatcher ForCacheSimulation(
      std::shared_ptr<const pda::CompiledGrammar> pda, std::int32_t node);

  // O(#parallel stacks) state branch (§3.3: tree-of-thought / speculative
  // decoding keep one matching state per output branch). The fork shares
  // this matcher's persistent stack pool — frames are append-only, so the
  // parent's state is immune to the fork's progress — and starts its own
  // history at the current position: byte depth 0 in the fork is the fork
  // point, which bounds its rollback. Forks must be used from the same
  // thread as the parent (the shared pool is not synchronized).
  GrammarMatcher Fork() const;

  // --- Byte-level matching --------------------------------------------------

  // Consumes one byte. Returns false and leaves the state unchanged when no
  // stack can consume it.
  bool AcceptByte(std::uint8_t byte);
  // All-or-nothing: on failure the state is rolled back to entry state.
  bool AcceptString(std::string_view bytes);
  // True iff `bytes` could be accepted (state is never changed).
  bool CanAcceptString(std::string_view bytes);

  // Number of bytes consumed since construction.
  std::int32_t NumConsumedBytes() const { return static_cast<std::int32_t>(history_.size()) - 1; }
  // Restores the state to `depth` consumed bytes (depth <= NumConsumedBytes).
  void RollbackToDepth(std::int32_t depth);
  void RollbackBytes(std::int32_t count) { RollbackToDepth(NumConsumedBytes() - count); }

  // --- State inspection -----------------------------------------------------

  // Canonical (pre-closure) stack set at the current position.
  const std::vector<std::int32_t>& CurrentStacks() const {
    return history_.back().stacks;
  }
  // Closed stack set (computed eagerly after every byte).
  const std::vector<std::int32_t>& ClosedStacks() const {
    return history_.back().closed;
  }
  // Canonical stacks plus pop-produced stacks: the minimal set whose cache
  // entries jointly cover every token (see ClosureInfo::pop_results).
  std::vector<std::int32_t> MaskStacks() const {
    std::vector<std::int32_t> stacks = history_.back().stacks;
    for (std::int32_t pop : history_.back().info.pop_results) {
      if (std::find(stacks.begin(), stacks.end(), pop) == stacks.end()) {
        stacks.push_back(pop);
      }
    }
    return stacks;
  }
  // True when the whole grammar can terminate here (EOS would be legal).
  bool CanTerminate() const { return history_.back().info.can_complete; }
  // Whether an unknown-parent pop happened while closing depth `depth`
  // (cache-build simulations only).
  bool EscapedAtDepth(std::int32_t depth) const {
    return history_[static_cast<std::size_t>(depth)].info.escaped;
  }
  bool Dead() const { return history_.back().closed.empty(); }

  PersistentStackPool& Pool() { return *pool_; }
  const pda::CompiledGrammar& Pda() const { return *pda_; }
  const MatcherStats& Stats() const { return stats_; }

  // --- Token-boundary checkpoints (rollback in token units) ----------------
  void PushTokenCheckpoint() { token_checkpoints_.push_back(NumConsumedBytes()); }
  std::int32_t NumTokenCheckpoints() const {
    return static_cast<std::int32_t>(token_checkpoints_.size());
  }
  // Rolls back the last `count` tokens (paper §3.3: constant-time pointer
  // restore per step).
  void RollbackTokens(std::int32_t count);

  // --- Jump-forward (Appendix B) --------------------------------------------
  // Longest unique forced continuation from the current state: while exactly
  // one byte is accepted (and termination is not an alternative), that byte
  // is appended. State is left where it was on entry.
  std::string FindJumpForwardString(std::int32_t max_length = 256);

 private:
  struct Snapshot {
    std::vector<std::int32_t> stacks;  // canonical
    std::vector<std::int32_t> closed;  // after push/pop closure
    StackTransitions::ClosureInfo info;
  };

  GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                 std::int32_t bottom_sentinel, std::int32_t start_node);
  // Fork constructor: shared pool, history seeded with one snapshot.
  GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                 std::shared_ptr<PersistentStackPool> pool, Snapshot snapshot);

  void SealSnapshot(Snapshot* snapshot);

  std::shared_ptr<const pda::CompiledGrammar> pda_;
  std::shared_ptr<PersistentStackPool> pool_;
  StackTransitions transitions_;
  std::vector<Snapshot> history_;  // [0] = initial state, [i] = after i bytes
  std::vector<std::int32_t> token_checkpoints_;
  MatcherStats stats_;
};

}  // namespace xgr::matcher
