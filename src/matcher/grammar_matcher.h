// Byte-level grammar matcher: executes the compiled PDA over multiple
// parallel persistent stacks (§3.3), with per-byte history for rollback and
// the jump-forward probe used by jump-forward decoding (Appendix B).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "matcher/persistent_stack.h"
#include "pda/compiled_grammar.h"
#include "support/flat_slice_map.h"

namespace xgr::tokenizer {
class TokenizerInfo;
}  // namespace xgr::tokenizer

namespace xgr::matcher {

// Closure + byte-step primitives over the compiled automaton. Stateless with
// respect to matching; owns nothing.
class StackTransitions {
 public:
  StackTransitions(const pda::CompiledGrammar& pda, PersistentStackPool* pool)
      : pda_(&pda), pool_(pool) {}

  struct ClosureInfo {
    bool can_complete = false;  // a kNoParent bottom frame popped (EOS legal)
    bool escaped = false;       // a kUnknownParent bottom frame popped
    // Stacks produced by pop transitions (returning to a parent frame),
    // including pops enabled by pushing nullable rules first. Together with
    // the canonical stacks these are exactly the states whose cache entries
    // mask generation must union (push expansions are already folded into
    // each entry's classification).
    std::vector<std::int32_t> pop_results;
  };

  // Expands `stacks` in place to its push/pop closure (deduplicated; order
  // unspecified). All intermediate stacks are kept: each may own byte edges.
  // The closure of a single stack id is a pure function of that id (the pool
  // is append-only and frames are interned), so per-seed closures are
  // memoized: the first encounter of a stack runs the worklist expansion and
  // parks the result in a flat arena; every later Close over that stack —
  // including every byte of every later mask-generation scratch walk — just
  // merges cached lists through the epoch-stamped visited array. Steady-state
  // closure therefore performs no push/pop expansion and no heap allocations.
  void Close(std::vector<std::int32_t>* stacks, ClosureInfo* info);

  // One byte step over a CANONICAL (pre-closure) stack set; output is the
  // sorted, deduplicated canonical successor set. Successors of a set are the
  // union of each seed's successors over its own closure, so the step is
  // memoized per (seed, byte): the first attempt scans the seed's cached
  // closure for matching byte edges and parks the sorted result in an arena;
  // every later attempt — e.g. every revisit of a ctx sub-trie edge from the
  // same state — is a single flat-hash lookup. Single-seed steps (the common
  // case) copy the slice without any merge.
  void AdvanceByte(const std::vector<std::int32_t>& stacks, std::uint8_t byte,
                   std::vector<std::int32_t>* out);

  // Marks every byte accepted from `closed` in `allowed` (jump-forward).
  void AllowedBytes(const std::vector<std::int32_t>& closed,
                    std::array<bool, 256>* allowed) const;

 private:
  // Memoized closure of one seed stack: a slice of closure_arena_ (the closed
  // set, seed included) plus a sorted-unique slice of pop_arena_ and the two
  // completion flags. Immutable once valid (see Close's doc comment).
  struct CachedClosure {
    std::int32_t begin = 0;
    std::int32_t length = 0;
    std::int32_t pop_begin = 0;
    std::int32_t pop_length = 0;
    bool can_complete = false;
    bool escaped = false;
    bool valid = false;
  };

  // Computes (or returns) the memoized closure of `seed`.
  const CachedClosure& EnsureClosure(std::int32_t seed);

  // Computes (or returns) the memoized successor slice of (seed, byte),
  // keyed as (seed << 8 | byte) in successor_map_.
  const support::ArenaSlice& EnsureSuccessors(std::int32_t seed, std::uint8_t byte);

  // Marks `id` visited in the current epoch; returns true on first visit.
  // Grows the stamp array only when the pool has interned new frames —
  // steady-state decoding never resizes it.
  bool MarkVisited(std::int32_t id);
  void BeginEpoch();

  const pda::CompiledGrammar* pda_;
  PersistentStackPool* pool_;
  std::vector<std::uint32_t> visited_epoch_;  // frame id -> last-visit epoch
  std::uint32_t epoch_ = 0;
  std::vector<CachedClosure> closure_cache_;  // frame id -> memoized closure
  std::vector<std::int32_t> closure_arena_;   // backing store for closed sets
  std::vector<std::int32_t> pop_arena_;       // backing store for pop results
  std::vector<std::int32_t> seed_scratch_;    // Close's seed snapshot
  std::vector<std::int32_t> worklist_;        // EnsureClosure expansion
  std::vector<std::int32_t> pop_scratch_;     // EnsureClosure pop collection
  support::FlatSliceMap successor_map_;       // (seed, byte) -> successor slice
  std::vector<std::int32_t> successor_arena_; // backing store for successors
  std::vector<std::int32_t> successor_scratch_;  // EnsureSuccessors collection
};

struct MatcherStats {
  std::uint64_t bytes_accepted = 0;   // successful AcceptByte calls
  std::uint64_t bytes_attempted = 0;  // including failed ones
  std::uint64_t closure_stacks = 0;   // cumulative closed-set sizes
  std::uint64_t rollback_bytes = 0;
};

// The matcher. One instance per concurrent generation request (not
// thread-safe; the compiled grammar it references is shared and immutable).
class GrammarMatcher {
 public:
  explicit GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda);

  // Seeds a scratch matcher from an existing runtime stack by copying the
  // frame chain into a private pool. Superseded on the decode hot path by the
  // shared-pool constructor below; kept for cross-pool seeding (and as the
  // reference implementation in differential tests).
  GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                 const PersistentStackPool& source_pool, std::int32_t stack_id);

  // Seeds a scratch matcher that SHARES `pool` and starts from the existing
  // stack `stack_id` of that pool — no chain copy. Safe because the pool is
  // append-only: frames are interned and never freed, so a scratch matcher
  // interning new frames cannot invalidate the owner's stacks. Same-thread
  // use only (the pool's intern table is not synchronized).
  GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                 std::shared_ptr<PersistentStackPool> pool, std::int32_t stack_id);

  // Seeds the cache-build simulation: a single-frame stack [node] whose
  // parent is unknown (§3.1 token classification).
  static GrammarMatcher ForCacheSimulation(
      std::shared_ptr<const pda::CompiledGrammar> pda, std::int32_t node);

  // O(#parallel stacks) state branch (§3.3: tree-of-thought / speculative
  // decoding keep one matching state per output branch). The fork shares
  // this matcher's persistent stack pool — frames are append-only, so the
  // parent's state is immune to the fork's progress — and starts its own
  // history at the current position: byte depth 0 in the fork is the fork
  // point, which bounds its rollback. Forks must be used from the same
  // thread as the parent (the shared pool is not synchronized). "Use"
  // includes mask generation: MaskGenerator's scratch matcher interns frames
  // into this pool, so computing masks for pool-sharing matchers on
  // different threads concurrently is a data race.
  GrammarMatcher Fork() const;

  // --- Byte-level matching --------------------------------------------------

  // Consumes one byte. Returns false and leaves the state unchanged when no
  // stack can consume it.
  bool AcceptByte(std::uint8_t byte);
  // All-or-nothing: on failure the state is rolled back to entry state.
  bool AcceptString(std::string_view bytes);
  // True iff `bytes` could be accepted (state is never changed).
  bool CanAcceptString(std::string_view bytes);

  // Restarts this matcher from the single existing stack `stack_id` of its
  // own pool, dropping all history and token checkpoints. Snapshot buffers
  // are recycled, so reseeding (and the byte walking that follows) is
  // allocation-free in steady state. This is how the mask generator reuses
  // one scratch matcher across context-dependent checks instead of
  // constructing a fresh matcher per stack per step.
  void Reseed(std::int32_t stack_id);
  // Reseed back to the grammar's start state (fresh generation) while keeping
  // the pool's interned frames and this matcher's recycled buffers.
  void ResetToStart();

  // Number of bytes consumed since construction.
  std::int32_t NumConsumedBytes() const { return static_cast<std::int32_t>(history_.size()) - 1; }
  // Restores the state to `depth` consumed bytes (depth <= NumConsumedBytes).
  void RollbackToDepth(std::int32_t depth);
  void RollbackBytes(std::int32_t count) { RollbackToDepth(NumConsumedBytes() - count); }

  // --- State inspection -----------------------------------------------------

  // Canonical (pre-closure) stack set at the current position.
  const std::vector<std::int32_t>& CurrentStacks() const {
    return history_.back().stacks;
  }
  // Closed stack set (computed eagerly after every byte).
  const std::vector<std::int32_t>& ClosedStacks() const {
    return history_.back().closed;
  }
  // Canonical stacks plus pop-produced stacks: the minimal set whose cache
  // entries jointly cover every token (see ClosureInfo::pop_results). Both
  // inputs are sorted and deduplicated, so the union is a single linear
  // merge into the caller's buffer (only its first-use growth allocates).
  void MaskStacks(std::vector<std::int32_t>* out) const {
    const Snapshot& current = history_.back();
    out->clear();
    std::set_union(current.stacks.begin(), current.stacks.end(),
                   current.info.pop_results.begin(), current.info.pop_results.end(),
                   std::back_inserter(*out));
  }
  // Convenience form for tests and diagnostics (allocates the result).
  std::vector<std::int32_t> MaskStacks() const {
    std::vector<std::int32_t> stacks;
    MaskStacks(&stacks);
    return stacks;
  }
  // True when the whole grammar can terminate here (EOS would be legal).
  bool CanTerminate() const { return history_.back().info.can_complete; }
  // Whether an unknown-parent pop happened while closing depth `depth`
  // (cache-build simulations only).
  bool EscapedAtDepth(std::int32_t depth) const {
    return history_[static_cast<std::size_t>(depth)].info.escaped;
  }
  bool Dead() const { return history_.back().closed.empty(); }

  PersistentStackPool& Pool() { return *pool_; }
  const PersistentStackPool& Pool() const { return *pool_; }
  // Shared handle to the pool, for scratch matchers that extend this
  // matcher's append-only frame tree (see the shared-pool constructor).
  const std::shared_ptr<PersistentStackPool>& PoolShared() const { return pool_; }
  const pda::CompiledGrammar& Pda() const { return *pda_; }
  const MatcherStats& Stats() const { return stats_; }

  // --- Token-boundary checkpoints (rollback in token units) ----------------
  void PushTokenCheckpoint() { token_checkpoints_.push_back(NumConsumedBytes()); }
  std::int32_t NumTokenCheckpoints() const {
    return static_cast<std::int32_t>(token_checkpoints_.size());
  }
  // Rolls back the last `count` tokens (paper §3.3: constant-time pointer
  // restore per step).
  void RollbackTokens(std::int32_t count);

  // --- Jump-forward (Appendix B) --------------------------------------------
  // Longest unique forced continuation from the current state: while exactly
  // one byte is accepted (and termination is not an alternative), that byte
  // is appended. State is left where it was on entry.
  std::string FindJumpForwardString(std::int32_t max_length = 256);

  // --- Transactional k-token draft verification (§3.3 tree decoding) -------
  struct TokenDraftResult {
    std::int32_t accepted = 0;        // draft tokens accepted (prefix length)
    std::int32_t accepted_bytes = 0;  // bytes the accepted prefix consumed
    bool exhausted = false;           // accepted == count: no divergence found
    bool terminated = false;          // walk hit EOS where EOS is legal
  };
  // Walks a k-token draft in ONE call with the exact per-token semantics of
  // sequential decoding (EOS legal iff CanTerminate(); special tokens always
  // reject; ordinary tokens byte-accept all-or-nothing), leaving the matcher
  // ADVANCED to the accepted prefix with one token checkpoint pushed per
  // accepted token. The transaction stays open: keep the prefix by doing
  // nothing, or discard the tail with RollbackTokens(accepted - keep) — the
  // O(1) equal-depth rollback fast path, no fork and no mask fills. An EOS
  // draft token stops the walk without being counted or consuming state,
  // mirroring AcceptToken's EOS handling.
  void VerifyTokenDraft(const tokenizer::TokenizerInfo& tokenizer,
                        const std::int32_t* draft, std::int32_t count,
                        TokenDraftResult* result);

 private:
  struct Snapshot {
    std::vector<std::int32_t> stacks;  // canonical
    std::vector<std::int32_t> closed;  // after push/pop closure
    StackTransitions::ClosureInfo info;
  };

  GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                 std::int32_t bottom_sentinel, std::int32_t start_node);
  // Fork constructor: shared pool, history seeded with one snapshot.
  GrammarMatcher(std::shared_ptr<const pda::CompiledGrammar> pda,
                 std::shared_ptr<PersistentStackPool> pool, Snapshot snapshot);

  void SealSnapshot(Snapshot* snapshot);

  // Snapshot recycling: RollbackToDepth parks trimmed snapshots here instead
  // of destroying them, and AcceptByte reuses them (with their vector
  // capacities intact). The per-byte AcceptByte -> RollbackToDepth cycle of
  // context-dependent token checking therefore stops churning the allocator.
  Snapshot AcquireSnapshot();
  void RecycleSnapshot(Snapshot&& snapshot) {
    recycled_snapshots_.push_back(std::move(snapshot));
  }

  std::shared_ptr<const pda::CompiledGrammar> pda_;
  std::shared_ptr<PersistentStackPool> pool_;
  StackTransitions transitions_;
  std::vector<Snapshot> history_;  // [0] = initial state, [i] = after i bytes
  std::vector<Snapshot> recycled_snapshots_;
  std::vector<std::int32_t> token_checkpoints_;
  MatcherStats stats_;
};

}  // namespace xgr::matcher
