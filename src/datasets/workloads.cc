#include "datasets/workloads.h"

#include <algorithm>

#include "support/logging.h"
#include "support/rng.h"

namespace xgr::datasets {

namespace {

const char* const kFieldNames[] = {
    "name",    "age",     "email",   "city",     "country", "status",
    "id",      "score",   "active",  "tags",     "address", "phone",
    "company", "role",    "team",    "priority", "label",   "kind",
    "title",   "summary", "owner",   "price",    "count",   "rating",
    "origin",  "target",  "weight",  "height",   "enabled", "visible"};

const char* const kWords[] = {
    "alpha", "bravo",  "delta",  "echo",   "falcon", "gamma", "harbor",
    "index", "jolt",   "kite",   "lumen",  "mango",  "nexus", "orbit",
    "pixel", "quartz", "raven",  "sierra", "tango",  "umbra", "vertex",
    "willow", "xenon", "yonder", "zephyr", "amber",  "birch", "cedar"};

const char* const kEnumSets[][4] = {
    {"low", "medium", "high", "critical"},
    {"red", "green", "blue", "yellow"},
    {"draft", "review", "published", "archived"},
    {"north", "south", "east", "west"},
};

std::string RandomWord(Rng& rng) {
  return kWords[rng.NextBounded(std::size(kWords))];
}

std::string RandomFieldName(Rng& rng, std::vector<std::string>* used) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string name = kFieldNames[rng.NextBounded(std::size(kFieldNames))];
    if (std::find(used->begin(), used->end(), name) == used->end()) {
      used->push_back(name);
      return name;
    }
  }
  std::string name = "field" + std::to_string(used->size());
  used->push_back(name);
  return name;
}

// Numbers that render cleanly under %.17g (dyadic fractions).
double CleanNumber(Rng& rng) {
  return static_cast<double>(rng.NextInRange(-400, 400)) * 0.25;
}

// --- JSON-Schema tasks -------------------------------------------------------

// Returns a (schema, canonical instance) pair for one field.
struct FieldSpec {
  json::Value schema;
  json::Value instance;
};

FieldSpec MakeField(Rng& rng, int depth);

FieldSpec MakeObjectField(Rng& rng, int depth) {
  json::Object schema_props;
  json::Object instance;
  json::Array required;
  std::vector<std::string> used;
  int num_fields = static_cast<int>(rng.NextInRange(2, depth > 0 ? 5 : 3));
  for (int i = 0; i < num_fields; ++i) {
    std::string field = RandomFieldName(rng, &used);
    FieldSpec spec = MakeField(rng, depth - 1);
    bool is_required = rng.NextBool(0.7);
    if (is_required) required.push_back(json::Value(field));
    // Optional fields are present in the canonical answer half the time.
    if (is_required || rng.NextBool(0.5)) {
      instance.emplace(field, spec.instance);
    }
    schema_props.emplace(field, spec.schema);
  }
  json::Object schema{{"type", json::Value("object")},
                      {"properties", json::Value(std::move(schema_props))},
                      {"additionalProperties", json::Value(false)}};
  if (!required.empty()) schema.emplace("required", json::Value(std::move(required)));
  return {json::Value(std::move(schema)), json::Value(std::move(instance))};
}

FieldSpec MakeField(Rng& rng, int depth) {
  double roll = rng.NextDouble();
  if (roll < 0.3) {  // string
    return {json::Value(json::Object{{"type", json::Value("string")}}),
            json::Value(RandomWord(rng) + " " + RandomWord(rng))};
  }
  if (roll < 0.5) {  // integer
    return {json::Value(json::Object{{"type", json::Value("integer")}}),
            json::Value(rng.NextInRange(-1000, 100000))};
  }
  if (roll < 0.6) {  // number
    return {json::Value(json::Object{{"type", json::Value("number")}}),
            json::Value(CleanNumber(rng))};
  }
  if (roll < 0.7) {  // boolean
    return {json::Value(json::Object{{"type", json::Value("boolean")}}),
            json::Value(rng.NextBool(0.5))};
  }
  if (roll < 0.8) {  // enum
    const auto& options = kEnumSets[rng.NextBounded(std::size(kEnumSets))];
    json::Array values;
    for (const char* option : options) values.push_back(json::Value(option));
    std::string pick = options[rng.NextBounded(4)];
    return {json::Value(json::Object{{"enum", json::Value(std::move(values))}}),
            json::Value(pick)};
  }
  if (roll < 0.92 || depth <= 0) {  // array of scalars
    bool of_strings = rng.NextBool(0.5);
    json::Object item_schema{
        {"type", json::Value(of_strings ? "string" : "integer")}};
    json::Array items;
    int n = static_cast<int>(rng.NextInRange(1, 4));
    for (int i = 0; i < n; ++i) {
      if (of_strings) {
        items.push_back(json::Value(RandomWord(rng)));
      } else {
        items.push_back(json::Value(rng.NextInRange(0, 999)));
      }
    }
    json::Object schema{{"type", json::Value("array")},
                        {"items", json::Value(std::move(item_schema))}};
    return {json::Value(std::move(schema)), json::Value(std::move(items))};
  }
  return MakeObjectField(rng, depth);  // nested object
}

// --- XML ----------------------------------------------------------------------

const char* const kXmlTags[] = {"config", "item",  "user",  "entry", "record",
                                "node",   "field", "value", "meta",  "group"};
const char* const kXmlAttrs[] = {"id", "name", "type", "lang", "version", "ref"};

void GenerateXmlElement(Rng& rng, int depth, std::string* out) {
  const char* tag = kXmlTags[rng.NextBounded(std::size(kXmlTags))];
  *out += "<";
  *out += tag;
  int num_attrs = static_cast<int>(rng.NextInRange(0, 2));
  for (int i = 0; i < num_attrs; ++i) {
    *out += " ";
    *out += kXmlAttrs[rng.NextBounded(std::size(kXmlAttrs))];
    *out += "=\"";
    *out += RandomWord(rng);
    *out += "\"";
  }
  if (depth <= 0 || rng.NextBool(0.2)) {
    *out += "/>";
    return;
  }
  *out += ">";
  int num_children = static_cast<int>(rng.NextInRange(1, 3));
  for (int i = 0; i < num_children; ++i) {
    double roll = rng.NextDouble();
    if (roll < 0.45) {
      *out += RandomWord(rng);  // chardata
      if (rng.NextBool(0.2)) *out += "&amp;";
    } else if (roll < 0.55) {
      *out += "<!-- ";
      *out += RandomWord(rng);
      *out += " -->";
    } else {
      GenerateXmlElement(rng, depth - 1, out);
    }
  }
  *out += "</";
  *out += tag;
  *out += ">";
}

// --- Python DSL -----------------------------------------------------------------

std::string PyExpression(Rng& rng, int depth);

std::string PyAtom(Rng& rng, int depth) {
  double roll = rng.NextDouble();
  if (roll < 0.35) return RandomWord(rng);
  if (roll < 0.55) return std::to_string(rng.NextInRange(0, 9999));
  if (roll < 0.65) {
    return std::to_string(rng.NextInRange(0, 99)) + "." +
           std::to_string(rng.NextInRange(0, 99));
  }
  if (roll < 0.75) return "\"" + RandomWord(rng) + "\"";
  if (roll < 0.82) return rng.NextBool(0.5) ? "True" : "False";
  if (roll < 0.9 && depth > 0) {
    return "[" + PyExpression(rng, depth - 1) + ", " + PyExpression(rng, depth - 1) + "]";
  }
  if (depth > 0) return "(" + PyExpression(rng, depth - 1) + ")";
  return RandomWord(rng);
}

std::string PyExpression(Rng& rng, int depth) {
  std::string expr = PyAtom(rng, depth);
  if (depth > 0 && rng.NextBool(0.4)) {
    const char* ops[] = {" + ", " - ", " * ", " == ", " < ", " > "};
    expr += ops[rng.NextBounded(std::size(ops))];
    expr += PyAtom(rng, depth - 1);
  }
  if (rng.NextBool(0.2)) {
    expr += "(" + PyAtom(rng, 0) + ")";  // call trailer
  }
  return expr;
}

std::string PySimpleStatement(Rng& rng) {
  double roll = rng.NextDouble();
  if (roll < 0.5) {
    return RandomWord(rng) + " = " + PyExpression(rng, 2);
  }
  if (roll < 0.65) return "return " + PyExpression(rng, 1);
  if (roll < 0.75) return "pass";
  return PyExpression(rng, 2);
}

void PyStatement(Rng& rng, int depth, std::string* out) {
  double roll = rng.NextDouble();
  if (depth > 0 && roll < 0.2) {
    *out += "if " + PyExpression(rng, 1) + ": " + PySimpleStatement(rng) + "\n";
    if (rng.NextBool(0.5)) {
      *out += "else: " + PySimpleStatement(rng) + "\n";
    }
  } else if (depth > 0 && roll < 0.3) {
    *out += "while " + PyExpression(rng, 1) + ": " + PySimpleStatement(rng) + "\n";
  } else if (depth > 0 && roll < 0.4) {
    *out += "for " + RandomWord(rng) + " in " + PyAtom(rng, 1) + ": " +
            PySimpleStatement(rng) + "\n";
  } else {
    *out += PySimpleStatement(rng) + "\n";
  }
}

}  // namespace

std::vector<SchemaTask> GenerateSchemaTasks(int count, std::uint64_t seed) {
  std::vector<SchemaTask> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng rng(seed + static_cast<std::uint64_t>(i) * 0x9E3779B9u);
    SchemaTask task;
    task.name = "schema_task_" + std::to_string(i);
    FieldSpec spec = MakeObjectField(rng, 2);
    task.schema = spec.schema;
    task.canonical_answer = spec.instance;
    task.prompt =
        "You are a function-calling assistant. Produce a JSON object that "
        "matches the following schema exactly, with no prose around it.\n"
        "Schema: " + task.schema.Dump() + "\nAnswer:";
    tasks.push_back(std::move(task));
  }
  return tasks;
}

json::Value GenerateJsonValue(std::uint64_t seed, int max_depth) {
  Rng rng(seed);
  FieldSpec spec = MakeObjectField(rng, max_depth);
  return spec.instance;
}

std::vector<std::string> GenerateJsonDocuments(int count, std::uint64_t seed,
                                               int max_depth) {
  std::vector<std::string> docs;
  docs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    docs.push_back(
        GenerateJsonValue(seed + static_cast<std::uint64_t>(i) * 77u, max_depth)
            .Dump());
  }
  return docs;
}

std::vector<std::string> GenerateXmlDocuments(int count, std::uint64_t seed,
                                              int max_depth) {
  std::vector<std::string> docs;
  docs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng rng(seed + static_cast<std::uint64_t>(i) * 131u);
    std::string doc;
    GenerateXmlElement(rng, max_depth, &doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<std::string> GeneratePythonPrograms(int count, std::uint64_t seed,
                                                int max_statements) {
  std::vector<std::string> programs;
  programs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng rng(seed + static_cast<std::uint64_t>(i) * 53u);
    std::string program;
    int statements = static_cast<int>(rng.NextInRange(2, max_statements));
    for (int s = 0; s < statements; ++s) PyStatement(rng, 1, &program);
    programs.push_back(std::move(program));
  }
  return programs;
}

}  // namespace xgr::datasets
