// Synthetic workload generators (DESIGN.md §1 substitutions).
//
// The paper evaluates on the NousResearch json-mode-eval dataset (JSON-Schema
// function-calling tasks) plus synthetic XML and Python-DSL corpora. Offline,
// we generate matched workloads deterministically:
//   * SchemaTask — a schema in the json-mode-eval style (nested objects,
//     enums, arrays, optional properties), a natural-language prompt, and a
//     canonical conforming answer used as the mock LLM's target;
//   * unconstrained JSON documents, XML documents and Python-DSL programs
//     that conform to the corresponding builtin grammars.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.h"

namespace xgr::datasets {

struct SchemaTask {
  std::string name;
  json::Value schema;
  std::string prompt;
  // A schema-conforming instance, rendered compactly; used as the scripted
  // model's intended completion and as ground truth in accuracy experiments.
  json::Value canonical_answer;
};

std::vector<SchemaTask> GenerateSchemaTasks(int count, std::uint64_t seed);

// Random JSON value of bounded depth + its compact rendering; conforms to
// BuiltinJsonGrammar.
json::Value GenerateJsonValue(std::uint64_t seed, int max_depth);
std::vector<std::string> GenerateJsonDocuments(int count, std::uint64_t seed,
                                               int max_depth = 4);

// XML documents conforming to BuiltinXmlGrammar.
std::vector<std::string> GenerateXmlDocuments(int count, std::uint64_t seed,
                                              int max_depth = 3);

// Python-DSL programs conforming to BuiltinPythonDslGrammar.
std::vector<std::string> GeneratePythonPrograms(int count, std::uint64_t seed,
                                                int max_statements = 6);

}  // namespace xgr::datasets
