// Persistent worker team for allocation-free parallel shard execution.
//
// ThreadPool::ParallelFor allocates a packaged_task + future pair per shard
// on every call, which is fine for compile-time work but poisons the
// zero-allocation steady-state contract of the batch decode loop.
// WorkerTeam keeps its threads parked on a condition variable between
// dispatches and passes work as a raw function pointer + context pointer,
// so a Dispatch() performs no heap allocation at all (the only allocation
// ever made after construction is the exception_ptr captured if a shard
// throws).
//
// Protocol: Dispatch() publishes (fn, ctx, shard_count) under the mutex,
// bumps the generation counter, and wakes the workers. Workers and the
// calling thread then claim shard indices from a shared atomic counter and
// run them; Dispatch() returns after every worker has finished the
// generation (pending-worker count reaches zero under the same mutex, so
// all shard writes happen-before Dispatch() returning — this is the
// TSan-visible synchronization edge the batch engine relies on).
//
// Shard claiming is dynamic (work-stealing-ish), so which THREAD runs a
// shard is nondeterministic — callers must make shards independent, which
// is exactly what MaskShardPlanner guarantees for batch mask generation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace xgr::support {

class WorkerTeam {
 public:
  using ShardFn = void (*)(void* ctx, std::size_t shard_index);

  // `threads` is the total parallelism including the calling thread, so
  // WorkerTeam(1) spawns no background threads and runs shards inline.
  explicit WorkerTeam(std::size_t threads);
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  std::size_t thread_count() const { return threads_; }

  // Runs fn(ctx, s) for every s in [0, shard_count); blocks until all
  // shards complete. If any shard throws, the first captured exception is
  // rethrown here (after all shards of the generation finish or drain).
  void Dispatch(ShardFn fn, void* ctx, std::size_t shard_count);

 private:
  void WorkerLoop();
  void RunClaimed(ShardFn fn, void* ctx, std::size_t shard_count) noexcept;

  std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t pending_workers_ = 0;
  ShardFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t shard_count_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;

  std::atomic<std::size_t> next_shard_{0};
};

}  // namespace xgr::support
