// Allocation-counting hook for zero-allocation tests and benches.
//
// Including this header replaces the global `operator new` / `operator
// delete` of the including binary with versions that bump a process-wide
// counter. Because replaceable allocation functions must have exactly one
// definition per program, include it in EXACTLY ONE translation unit of a
// binary (a test file or a bench main) — never from library code.
//
// Usage:
//   std::int64_t before = xgr::support::AllocHookCount();
//   <code under test>
//   std::int64_t allocs = xgr::support::AllocHookCount() - before;
//
// Only the plain (throwing, default-aligned) forms are replaced; the standard
// nothrow forms forward to them, so `new (std::nothrow)` is counted too.
// Over-aligned allocations bypass the hook — irrelevant here, since the hot
// path only allocates through std::vector<int32/uint64> and std::string.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace xgr::support {

inline std::atomic<std::int64_t>& AllocHookCounter() {
  static std::atomic<std::int64_t> counter{0};
  return counter;
}

// Total operator-new calls observed so far in this process.
inline std::int64_t AllocHookCount() {
  return AllocHookCounter().load(std::memory_order_relaxed);
}

}  // namespace xgr::support

void* operator new(std::size_t size) {
  xgr::support::AllocHookCounter().fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
