#include "support/logging.h"

#include <cstdlib>

namespace xgr {

int& LogLevel() {
  static int level = [] {
    const char* env = std::getenv("XGR_LOG_LEVEL");
    return env != nullptr ? std::atoi(env) : 0;
  }();
  return level;
}

}  // namespace xgr
