// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xgr {

// Escapes a byte string for human-readable diagnostics: printable ASCII is
// kept, everything else becomes \xNN / \n / \t / ...
std::string EscapeBytes(std::string_view bytes);

// Length of the longest common prefix of two byte strings.
std::size_t CommonPrefixLength(std::string_view a, std::string_view b);

// Splits on a delimiter character; keeps empty fields.
std::vector<std::string> SplitString(std::string_view text, char delimiter);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Formats `value` with `digits` significant decimal places (benchmark tables).
std::string FormatDouble(double value, int digits);

}  // namespace xgr
