#include "support/simd_kernels.h"

#include <cmath>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define XGR_SIMD_BUILD_AVX2 1
#include <immintrin.h>
#else
#define XGR_SIMD_BUILD_AVX2 0
#endif

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define XGR_SIMD_BUILD_NEON 1
#include <arm_neon.h>
#else
#define XGR_SIMD_BUILD_NEON 0
#endif

namespace xgr::support::simd {
namespace {

// exp(r) polynomial + range-reduction constants (cephes expf). Both the
// scalar and AVX2 paths evaluate exactly this fma chain so per-element
// results are bit-identical; see ExpNegCore below and ExpBlockAvx2.
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC0 = 1.9875691500e-4f;
constexpr float kExpC1 = 1.3981999507e-3f;
constexpr float kExpC2 = 8.3334519073e-3f;
constexpr float kExpC3 = 4.1665795894e-2f;
constexpr float kExpC4 = 1.6666665459e-1f;
constexpr float kExpC5 = 5.0000001201e-1f;
// Below this, exp(x) rounds to 0 in float (we cut slightly early so the
// 2^k scale stays a normal number in both code paths).
constexpr float kExpLo = -87.0f;

// exp(x) for kExpLo <= x <= 0. Every operation is exactly specified by
// IEEE-754 (mul, div, fma, nearest-even round), so the AVX2 lane-wise
// mirror produces bit-identical results.
inline float ExpNegCore(float x) {
  float k = std::nearbyintf(x * kLog2e);
  float r = std::fmaf(-k, kLn2Hi, x);
  r = std::fmaf(-k, kLn2Lo, r);
  float p = kExpC0;
  p = std::fmaf(p, r, kExpC1);
  p = std::fmaf(p, r, kExpC2);
  p = std::fmaf(p, r, kExpC3);
  p = std::fmaf(p, r, kExpC4);
  p = std::fmaf(p, r, kExpC5);
  p = std::fmaf(p, r, 1.0f);  // z*r + 1
  p = std::fmaf(p, r, 1.0f);  // (z*r + 1)*r + 1 = exp(r)
  // Scale by 2^k via exponent-bit construction; k in [-126, 0] here.
  std::uint32_t bits = static_cast<std::uint32_t>(static_cast<int>(k) + 127)
                       << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return p * scale;
}

inline bool BitAllowed(const std::uint64_t* words, std::size_t i) {
  return words == nullptr ||
         (words[i >> 6] >> (i & 63)) & std::uint64_t{1};
}

std::int32_t CountAllowed(const std::uint64_t* words, std::size_t n) {
  if (words == nullptr) return static_cast<std::int32_t>(n);
  std::size_t word_count = (n + 63) / 64;
  std::int32_t total = 0;
  for (std::size_t w = 0; w < word_count; ++w) {
    total += static_cast<std::int32_t>(__builtin_popcountll(words[w]));
  }
  return total;  // padding bits beyond n are guaranteed clear
}

std::int32_t FirstAllowed(const std::uint64_t* words, std::size_t n) {
  if (n == 0) return -1;
  if (words == nullptr) return 0;
  std::size_t word_count = (n + 63) / 64;
  for (std::size_t w = 0; w < word_count; ++w) {
    if (words[w] != 0) {
      return static_cast<std::int32_t>(w * 64 + __builtin_ctzll(words[w]));
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Scalar implementation
// ---------------------------------------------------------------------------

FusedSampleStats ArgmaxScalar(const float* logits, std::size_t n,
                              const std::uint64_t* words) {
  FusedSampleStats st;
  std::int32_t first_allowed = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (!BitAllowed(words, i)) continue;
    ++st.allowed;
    float v = logits[i];
    if (first_allowed < 0) first_allowed = static_cast<std::int32_t>(i);
    if (st.argmax < 0) {
      if (v == v) {  // NaN never becomes the comparable best
        st.argmax = static_cast<std::int32_t>(i);
        st.max_logit = v;
      }
    } else if (v > st.max_logit) {  // strict > keeps the lowest tied index
      st.argmax = static_cast<std::int32_t>(i);
      st.max_logit = v;
    }
  }
  if (st.argmax < 0 && first_allowed >= 0) {
    // Allowed tokens exist but every one is NaN: deterministically pick the
    // lowest allowed index.
    st.argmax = first_allowed;
    st.max_logit = logits[first_allowed];
  }
  return st;
}

void ExpFillScalar(const float* logits, std::size_t n,
                   const std::uint64_t* words, float max_logit,
                   float temperature, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    float e = 0.0f;
    if (BitAllowed(words, i)) {
      float v = logits[i];
      if (v == v) {
        float x = (v - max_logit) / temperature;
        if (!(x < kExpLo)) e = ExpNegCore(x);
      }
    }
    out[i] = e;
  }
}

// ---------------------------------------------------------------------------
// AVX2 implementation (runtime-dispatched; compiled with a target attribute
// so the rest of the binary stays baseline-ISA)
// ---------------------------------------------------------------------------

#if XGR_SIMD_BUILD_AVX2

__attribute__((target("avx2,fma"))) inline __m256 LaneMask8(
    std::uint32_t bits) {
  const __m256i select =
      _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  __m256i b = _mm256_set1_epi32(static_cast<int>(bits));
  __m256i hit = _mm256_cmpeq_epi32(_mm256_and_si256(b, select), select);
  return _mm256_castsi256_ps(hit);
}

__attribute__((target("avx2,fma"))) inline std::uint32_t MaskBits8(
    const std::uint64_t* words, std::size_t base) {
  if (words == nullptr) return 0xFFu;
  return static_cast<std::uint32_t>(words[base >> 6] >> (base & 63)) & 0xFFu;
}

__attribute__((target("avx2,fma"))) inline float HorizontalMax(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

// Lane-wise mirror of ExpNegCore: fnmadd(k, c, x) computes fmaf(-k, c, x)
// with identical rounding, _mm256_round_ps nearest matches nearbyintf.
__attribute__((target("avx2,fma"))) inline __m256 ExpBlockAvx2(__m256 x) {
  __m256 k = _mm256_round_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(kLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(k, _mm256_set1_ps(kLn2Hi), x);
  r = _mm256_fnmadd_ps(k, _mm256_set1_ps(kLn2Lo), r);
  __m256 p = _mm256_set1_ps(kExpC0);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC1));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC2));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC3));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC4));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC5));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0f));
  __m256i ik = _mm256_cvtps_epi32(k);
  __m256i scale_bits =
      _mm256_slli_epi32(_mm256_add_epi32(ik, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(scale_bits));
}

__attribute__((target("avx2,fma"))) FusedSampleStats ArgmaxAvx2(
    const float* logits, std::size_t n, const std::uint64_t* words) {
  FusedSampleStats st;
  st.allowed = CountAllowed(words, n);
  if (st.allowed == 0) return st;

  const std::size_t vec_n = n & ~std::size_t{7};
  const __m256 neg_inf = _mm256_set1_ps(-INFINITY);
  __m256 vmax = neg_inf;
  bool any_candidate = false;
  __m256 vany = _mm256_setzero_ps();
  for (std::size_t base = 0; base < vec_n; base += 8) {
    __m256 v = _mm256_loadu_ps(logits + base);
    __m256 cand = _mm256_and_ps(LaneMask8(MaskBits8(words, base)),
                                _mm256_cmp_ps(v, v, _CMP_EQ_OQ));
    vany = _mm256_or_ps(vany, cand);
    vmax = _mm256_max_ps(vmax, _mm256_blendv_ps(neg_inf, v, cand));
  }
  any_candidate = _mm256_movemask_ps(vany) != 0;
  float m = HorizontalMax(vmax);
  for (std::size_t i = vec_n; i < n; ++i) {
    if (!BitAllowed(words, i)) continue;
    float v = logits[i];
    if (v != v) continue;
    any_candidate = true;
    if (v > m) m = v;
  }
  if (!any_candidate) {
    // Every allowed logit is NaN: lowest allowed index, matching scalar.
    st.argmax = FirstAllowed(words, n);
    st.max_logit = logits[st.argmax];
    return st;
  }
  // Second pass: first candidate lane equal to the max (lowest index wins,
  // exactly as the scalar strict-> scan does).
  const __m256 vm = _mm256_set1_ps(m);
  for (std::size_t base = 0; base < vec_n; base += 8) {
    __m256 v = _mm256_loadu_ps(logits + base);
    __m256 hit = _mm256_and_ps(LaneMask8(MaskBits8(words, base)),
                               _mm256_cmp_ps(v, vm, _CMP_EQ_OQ));
    int bits = _mm256_movemask_ps(hit);
    if (bits != 0) {
      st.argmax = static_cast<std::int32_t>(base) + __builtin_ctz(bits);
      st.max_logit = m;
      return st;
    }
  }
  for (std::size_t i = vec_n; i < n; ++i) {
    if (BitAllowed(words, i) && logits[i] == m) {
      st.argmax = static_cast<std::int32_t>(i);
      st.max_logit = m;
      return st;
    }
  }
  st.max_logit = m;  // unreachable in practice; keep stats consistent
  return st;
}

__attribute__((target("avx2,fma"))) void ExpFillAvx2(
    const float* logits, std::size_t n, const std::uint64_t* words,
    float max_logit, float temperature, float* out) {
  const std::size_t vec_n = n & ~std::size_t{7};
  const __m256 vmax = _mm256_set1_ps(max_logit);
  const __m256 vtemp = _mm256_set1_ps(temperature);
  const __m256 vlo = _mm256_set1_ps(kExpLo);
  for (std::size_t base = 0; base < vec_n; base += 8) {
    __m256 v = _mm256_loadu_ps(logits + base);
    __m256 cand = _mm256_and_ps(LaneMask8(MaskBits8(words, base)),
                                _mm256_cmp_ps(v, v, _CMP_EQ_OQ));
    __m256 x = _mm256_div_ps(_mm256_sub_ps(v, vmax), vtemp);
    // Zero out lanes that are masked, NaN, or below the exp underflow
    // cutoff (GE is false for NaN / -inf x, matching the scalar branch).
    __m256 keep = _mm256_and_ps(cand, _mm256_cmp_ps(x, vlo, _CMP_GE_OQ));
    __m256 e = _mm256_and_ps(ExpBlockAvx2(x), keep);
    _mm256_storeu_ps(out + base, e);
  }
  if (vec_n < n) {
    ExpFillScalar(logits + vec_n, n - vec_n,
                  nullptr,  // handled per-bit below instead
                  max_logit, temperature, out + vec_n);
    // Re-apply the mask bits for the tail (ExpFillScalar above ran
    // unmasked so the shared exp code stays identical).
    if (words != nullptr) {
      for (std::size_t i = vec_n; i < n; ++i) {
        if (!BitAllowed(words, i)) out[i] = 0.0f;
      }
    }
  }
}

bool CpuHasAvx2() {
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
}

#endif  // XGR_SIMD_BUILD_AVX2

// ---------------------------------------------------------------------------
// NEON implementation (aarch64). Advanced SIMD is mandatory on aarch64, so
// there is no runtime probe and no target attribute: the path is available
// whenever it is compiled. Four lanes per step instead of AVX2's eight, but
// every arithmetic op is the single-rounded IEEE-754 mirror of the scalar
// path (vfmaq/vfmsq are fused, vrndnq rounds to nearest-even like
// nearbyintf), so exp values and picks stay bit-identical.
// ---------------------------------------------------------------------------

#if XGR_SIMD_BUILD_NEON

inline uint32x4_t LaneMask4(std::uint32_t bits) {
  const uint32x4_t select = {1u, 2u, 4u, 8u};
  uint32x4_t b = vdupq_n_u32(bits);
  return vceqq_u32(vandq_u32(b, select), select);
}

inline std::uint32_t MaskBits4(const std::uint64_t* words, std::size_t base) {
  if (words == nullptr) return 0xFu;
  return static_cast<std::uint32_t>(words[base >> 6] >> (base & 63)) & 0xFu;
}

// Lowest set lane of an all-ones/all-zeros per-lane compare result, or -1.
inline int LowestHitLane(uint32x4_t hit) {
  const uint32x4_t select = {1u, 2u, 4u, 8u};
  std::uint32_t bits = vaddvq_u32(vandq_u32(hit, select));
  if (bits == 0) return -1;
  return __builtin_ctz(bits);
}

// Lane-wise mirror of ExpNegCore: vfmsq_f32(x, k, c) computes
// fmaf(-k, c, x) with identical rounding; vrndnq_f32 matches nearbyintf.
inline float32x4_t ExpBlockNeon(float32x4_t x) {
  float32x4_t k = vrndnq_f32(vmulq_f32(x, vdupq_n_f32(kLog2e)));
  float32x4_t r = vfmsq_f32(x, k, vdupq_n_f32(kLn2Hi));
  r = vfmsq_f32(r, k, vdupq_n_f32(kLn2Lo));
  float32x4_t p = vdupq_n_f32(kExpC0);
  p = vfmaq_f32(vdupq_n_f32(kExpC1), p, r);
  p = vfmaq_f32(vdupq_n_f32(kExpC2), p, r);
  p = vfmaq_f32(vdupq_n_f32(kExpC3), p, r);
  p = vfmaq_f32(vdupq_n_f32(kExpC4), p, r);
  p = vfmaq_f32(vdupq_n_f32(kExpC5), p, r);
  p = vfmaq_f32(vdupq_n_f32(1.0f), p, r);
  p = vfmaq_f32(vdupq_n_f32(1.0f), p, r);
  int32x4_t ik = vcvtnq_s32_f32(k);
  int32x4_t scale_bits = vshlq_n_s32(vaddq_s32(ik, vdupq_n_s32(127)), 23);
  return vmulq_f32(p, vreinterpretq_f32_s32(scale_bits));
}

FusedSampleStats ArgmaxNeon(const float* logits, std::size_t n,
                            const std::uint64_t* words) {
  FusedSampleStats st;
  st.allowed = CountAllowed(words, n);
  if (st.allowed == 0) return st;

  const std::size_t vec_n = n & ~std::size_t{3};
  const float32x4_t neg_inf = vdupq_n_f32(-INFINITY);
  float32x4_t vmax = neg_inf;
  bool any_candidate = false;
  uint32x4_t vany = vdupq_n_u32(0);
  for (std::size_t base = 0; base < vec_n; base += 4) {
    float32x4_t v = vld1q_f32(logits + base);
    uint32x4_t cand =
        vandq_u32(LaneMask4(MaskBits4(words, base)), vceqq_f32(v, v));
    vany = vorrq_u32(vany, cand);
    vmax = vmaxq_f32(vmax, vbslq_f32(cand, v, neg_inf));
  }
  any_candidate = vmaxvq_u32(vany) != 0;
  float m = vmaxvq_f32(vmax);
  for (std::size_t i = vec_n; i < n; ++i) {
    if (!BitAllowed(words, i)) continue;
    float v = logits[i];
    if (v != v) continue;
    any_candidate = true;
    if (v > m) m = v;
  }
  if (!any_candidate) {
    // Every allowed logit is NaN: lowest allowed index, matching scalar.
    st.argmax = FirstAllowed(words, n);
    st.max_logit = logits[st.argmax];
    return st;
  }
  // Second pass: first candidate lane equal to the max (lowest index wins,
  // exactly as the scalar strict-> scan does).
  const float32x4_t vm = vdupq_n_f32(m);
  for (std::size_t base = 0; base < vec_n; base += 4) {
    float32x4_t v = vld1q_f32(logits + base);
    uint32x4_t hit =
        vandq_u32(LaneMask4(MaskBits4(words, base)), vceqq_f32(v, vm));
    int lane = LowestHitLane(hit);
    if (lane >= 0) {
      st.argmax = static_cast<std::int32_t>(base) + lane;
      st.max_logit = m;
      return st;
    }
  }
  for (std::size_t i = vec_n; i < n; ++i) {
    if (BitAllowed(words, i) && logits[i] == m) {
      st.argmax = static_cast<std::int32_t>(i);
      st.max_logit = m;
      return st;
    }
  }
  st.max_logit = m;  // unreachable in practice; keep stats consistent
  return st;
}

void ExpFillNeon(const float* logits, std::size_t n,
                 const std::uint64_t* words, float max_logit,
                 float temperature, float* out) {
  const std::size_t vec_n = n & ~std::size_t{3};
  const float32x4_t vmax = vdupq_n_f32(max_logit);
  const float32x4_t vtemp = vdupq_n_f32(temperature);
  const float32x4_t vlo = vdupq_n_f32(kExpLo);
  for (std::size_t base = 0; base < vec_n; base += 4) {
    float32x4_t v = vld1q_f32(logits + base);
    uint32x4_t cand =
        vandq_u32(LaneMask4(MaskBits4(words, base)), vceqq_f32(v, v));
    float32x4_t x = vdivq_f32(vsubq_f32(v, vmax), vtemp);
    // Zero out lanes that are masked, NaN, or below the exp underflow
    // cutoff (GE is false for NaN / -inf x, matching the scalar branch).
    uint32x4_t keep = vandq_u32(cand, vcgeq_f32(x, vlo));
    float32x4_t e = vreinterpretq_f32_u32(
        vandq_u32(vreinterpretq_u32_f32(ExpBlockNeon(x)), keep));
    vst1q_f32(out + base, e);
  }
  if (vec_n < n) {
    ExpFillScalar(logits + vec_n, n - vec_n,
                  nullptr,  // handled per-bit below instead
                  max_logit, temperature, out + vec_n);
    // Re-apply the mask bits for the tail (ExpFillScalar above ran
    // unmasked so the shared exp code stays identical).
    if (words != nullptr) {
      for (std::size_t i = vec_n; i < n; ++i) {
        if (!BitAllowed(words, i)) out[i] = 0.0f;
      }
    }
  }
}

#endif  // XGR_SIMD_BUILD_NEON

// Shared (identical across implementations) normalization + inverse-CDF
// walk over the exp scratch row: with bit-identical exp values and an
// index-ordered double accumulation, the sampled token is itself
// bit-identical across implementations.
std::int32_t SampleFromExpRow(const float* exp_row, std::size_t n,
                              double uniform, std::int32_t fallback,
                              double* sum_out) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += exp_row[i];
  if (sum_out != nullptr) *sum_out = sum;
  if (!(sum > 0.0)) return fallback;
  double target = uniform * sum;
  double cum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cum += exp_row[i];
    if (cum > target) return static_cast<std::int32_t>(i);
  }
  return fallback;  // guard against accumulated rounding
}

}  // namespace

const char* ImplName(Impl impl) {
  switch (impl) {
    case Impl::kScalar:
      return "scalar";
    case Impl::kAvx2:
      return "avx2";
    case Impl::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<Impl> AvailableImpls() {
  std::vector<Impl> impls{Impl::kScalar};
#if XGR_SIMD_BUILD_AVX2
  if (CpuHasAvx2()) impls.push_back(Impl::kAvx2);
#endif
#if XGR_SIMD_BUILD_NEON
  impls.push_back(Impl::kNeon);
#endif
  return impls;
}

Impl BestImpl() {
#if XGR_SIMD_BUILD_NEON
  return Impl::kNeon;
#elif XGR_SIMD_BUILD_AVX2
  static const Impl best = CpuHasAvx2() ? Impl::kAvx2 : Impl::kScalar;
  return best;
#else
  return Impl::kScalar;
#endif
}

float ExpNegF(float x) {
  if (x != x) return x;
  if (x < kExpLo) return 0.0f;
  return ExpNegCore(x);
}

FusedSampleStats FusedMaskArgmax(Impl impl, const float* logits, std::size_t n,
                                 const std::uint64_t* mask_words) {
#if XGR_SIMD_BUILD_AVX2
  if (impl == Impl::kAvx2) return ArgmaxAvx2(logits, n, mask_words);
#endif
#if XGR_SIMD_BUILD_NEON
  if (impl == Impl::kNeon) return ArgmaxNeon(logits, n, mask_words);
#endif
  (void)impl;
  return ArgmaxScalar(logits, n, mask_words);
}

std::int32_t FusedMaskSoftmaxSample(Impl impl, const float* logits,
                                    std::size_t n,
                                    const std::uint64_t* mask_words,
                                    float temperature, double uniform,
                                    float* exp_scratch,
                                    FusedSampleStats* stats) {
  FusedSampleStats st = FusedMaskArgmax(impl, logits, n, mask_words);
  if (stats != nullptr) *stats = st;
  if (st.argmax < 0) return -1;
  // Greedy when: temperature is <= 0 / NaN, or the max is not a finite
  // comparable value (+inf collapses the distribution onto the max token;
  // -inf / NaN rows have no meaningful softmax).
  bool greedy = !(temperature > 0.0f) || temperature != temperature ||
                !(st.max_logit == st.max_logit) ||
                std::isinf(st.max_logit);
  if (greedy) return st.argmax;
  bool filled = false;
#if XGR_SIMD_BUILD_AVX2
  if (impl == Impl::kAvx2) {
    ExpFillAvx2(logits, n, mask_words, st.max_logit, temperature,
                exp_scratch);
    filled = true;
  }
#endif
#if XGR_SIMD_BUILD_NEON
  if (impl == Impl::kNeon) {
    ExpFillNeon(logits, n, mask_words, st.max_logit, temperature,
                exp_scratch);
    filled = true;
  }
#endif
  if (!filled) {
    ExpFillScalar(logits, n, mask_words, st.max_logit, temperature,
                  exp_scratch);
  }
  double sum = 0.0;
  std::int32_t pick =
      SampleFromExpRow(exp_scratch, n, uniform, st.argmax, &sum);
  if (stats != nullptr) stats->sum_exp = sum;
  return pick;
}

}  // namespace xgr::support::simd
