// Deterministic xoshiro256** RNG.
//
// All synthetic workloads (vocabulary builder, dataset generators, mock LLM)
// derive from seeded instances of this generator so every benchmark and test
// is reproducible bit-for-bit across runs and machines.
#pragma once

#include <cstdint>

namespace xgr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool(double probability_true) {
    return NextDouble() < probability_true;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace xgr
