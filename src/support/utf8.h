// UTF-8 utilities.
//
// The engine is byte-level (§3 of the paper): grammar character classes are
// specified over Unicode codepoints but compiled into automata whose edges
// are byte ranges, so tokens that split UTF-8 characters ("sub-UTF8 tokens")
// are handled naturally. CompileCodepointRange implements the standard
// UTF-8 range decomposition: a codepoint interval becomes a small set of
// byte-range *sequences* whose concatenated matches are exactly the UTF-8
// encodings of the interval.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xgr {

inline constexpr std::uint32_t kMaxCodepoint = 0x10FFFF;

// One inclusive byte interval.
struct ByteRange {
  std::uint8_t lo = 0;
  std::uint8_t hi = 0;
  friend bool operator==(const ByteRange&, const ByteRange&) = default;
};

// A sequence of byte intervals of length 1..4; matches any byte string
// b_0 b_1 ... with ranges[i].lo <= b_i <= ranges[i].hi.
using ByteRangeSeq = std::vector<ByteRange>;

// Number of bytes in the UTF-8 encoding of `codepoint` (1..4).
int Utf8EncodedLength(std::uint32_t codepoint);

// Encodes `codepoint` into out[0..3]; returns the encoded length.
int EncodeUtf8(std::uint32_t codepoint, std::uint8_t out[4]);

// Appends the UTF-8 encoding of `codepoint` to `out`.
void AppendUtf8(std::uint32_t codepoint, std::string* out);

// Result of decoding one codepoint.
struct DecodedChar {
  std::uint32_t codepoint = 0;
  int length = 0;   // bytes consumed; 0 on error
  bool ok = false;  // false on truncated/invalid sequences
};

// Decodes the UTF-8 character starting at data[pos].
DecodedChar DecodeUtf8(std::string_view data, std::size_t pos);

// Length of the longest prefix of `bytes` that does not end inside a UTF-8
// sequence: when the tail is an incomplete (truncated) multi-byte sequence —
// a lead byte whose continuation bytes run past the end of `bytes` — the
// prefix stops before that lead byte. Byte content that is not valid UTF-8
// in other ways (stray continuation bytes, overlong forms) is NOT trimmed:
// the engine is byte-level and such bytes may be legitimate grammar content;
// only a split *trailing* character is. Used by jump-forward (a forced
// continuation must never push a partial codepoint into the context, where
// retokenization would have to tokenize half a character) and by the C API's
// buffer truncation.
std::size_t CompleteUtf8PrefixLength(std::string_view bytes);

// Decomposes the codepoint interval [lo, hi] (inclusive) into byte-range
// sequences. Surrogates (U+D800..U+DFFF) are excluded automatically. The
// result is deterministic and minimal in the usual sense of the standard
// algorithm (at most ~30 sequences for the full Unicode range).
std::vector<ByteRangeSeq> CompileCodepointRange(std::uint32_t lo, std::uint32_t hi);

}  // namespace xgr
