// Monotonic wall-clock timing helpers used by benchmarks and the engine
// simulator's latency accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace xgr {

class Timer {
 public:
  Timer() { Reset(); }

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Simple running statistics accumulator (mean / min / max) for latency series.
class StatAccumulator {
 public:
  void Add(double value) {
    ++count_;
    sum_ += value;
    if (value < min_ || count_ == 1) min_ = value;
    if (value > max_ || count_ == 1) max_ = value;
  }
  std::uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace xgr
