// Open-addressing map from an int64 key to an arena slice {begin, length}.
//
// Purpose-built for the decode hot path's memoization tables (per-(seed,byte)
// successor sets in the matcher, per-stack context-dependent results in the
// mask generator): lookups are one multiply-shift hash plus a short linear
// probe over POD slots, growth is a plain rehash, and a slice value of
// length == -1 marks "reserved but not yet computed" so Put doubles as
// find-or-insert. Steady state performs lookups only — no allocation.
#pragma once

#include <cstdint>
#include <vector>

namespace xgr::support {

struct ArenaSlice {
  std::int32_t begin = 0;
  std::int32_t length = -1;  // -1 = reserved, not yet computed
};

class FlatSliceMap {
 public:
  // Returns the slice for `key`, inserting a reserved one (length == -1) on
  // first sight. The reference stays valid until the next Put.
  ArenaSlice* Put(std::int64_t key) {
    if (slots_.empty() || size_ * 4 >= slots_.size() * 3) Grow();
    std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash(key) & mask;
    while (slots_[i].key != kEmpty && slots_[i].key != key) i = (i + 1) & mask;
    if (slots_[i].key == kEmpty) {
      slots_[i].key = key;
      slots_[i].slice = ArenaSlice{};
      ++size_;
    }
    return &slots_[i].slice;
  }

  const ArenaSlice* Find(std::int64_t key) const {
    if (slots_.empty()) return nullptr;
    std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash(key) & mask;
    while (slots_[i].key != kEmpty) {
      if (slots_[i].key == key) return &slots_[i].slice;
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  void Clear() {
    slots_.clear();
    size_ = 0;
  }
  std::size_t Size() const { return size_; }
  std::size_t MemoryBytes() const { return slots_.size() * sizeof(Slot); }

 private:
  // Keys are non-negative composites (ids, shifted id|byte packs), so -1 is
  // free to mark empty slots.
  static constexpr std::int64_t kEmpty = -1;

  struct Slot {
    std::int64_t key = kEmpty;
    ArenaSlice slice;
  };

  static std::size_t Hash(std::int64_t key) {
    auto h = static_cast<std::uint64_t>(key);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 256 : old.size() * 2, Slot{});
    std::size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.key == kEmpty) continue;
      std::size_t i = Hash(slot.key) & mask;
      while (slots_[i].key != kEmpty) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace xgr::support
