// A small fixed-size thread pool.
//
// Used for (a) parallel preprocessing of the adaptive token mask cache across
// automaton nodes (§3.1 of the paper) and (b) running grammar mask generation
// concurrently with the simulated GPU forward pass (§3.5).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xgr {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);

  // Drains: every task already queued still runs (its future resolves),
  // then the workers join. No task is silently dropped, so shutdown with
  // queued work cannot leave a future permanently unready.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t NumThreads() const { return workers_.size(); }

  // Enqueues a task; the returned future observes completion and exceptions
  // (a throwing task surfaces through future.get() and never takes down the
  // worker thread).
  template <typename F>
  std::future<void> Submit(F&& task) {
    auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(task));
    std::future<void> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  // Runs fn(i) for i in [0, count) across the pool and blocks until all
  // complete. Work is distributed in contiguous shards. If fn throws, the
  // call waits for every shard to resolve (so fn is never used after this
  // frame unwinds) and then rethrows the first exception.
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

  // A shared process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace xgr
