// Lightweight CHECK/LOG facility used across the library.
//
// We deliberately avoid external logging dependencies: the engine is meant to
// be embeddable in LLM serving frameworks, so failures raise exceptions that
// the host can catch, and logging is stderr-only and opt-in.
#pragma once

#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace xgr {

// Error raised by XGR_CHECK failures. Deriving from std::runtime_error keeps
// host integration simple (catchable at FFI boundaries).
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

// Accumulates a message via operator<< and throws on destruction of the
// temporary full expression (via Raise()).
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* cond) {
    stream_ << file << ":" << line << ": check failed: `" << cond << "` ";
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  [[noreturn]] void Raise() { throw CheckError(stream_.str()); }

 private:
  std::ostringstream stream_;
};

// Helper giving `XGR_CHECK(c) << msg;` statement semantics: the message is
// streamed into CheckFailureStream and Raise() fires at the `&` operator,
// which binds looser than `<<`.
struct CheckRaiser {
  // Bare check: `CheckRaiser{} & CheckFailureStream(...)` (prvalue).
  [[noreturn]] void operator&(CheckFailureStream&& stream) { stream.Raise(); }
  // With message: operator<< returned an lvalue reference.
  [[noreturn]] void operator&(CheckFailureStream& stream) { stream.Raise(); }
};

}  // namespace detail

}  // namespace xgr

// Throws xgr::CheckError with file/line and the streamed message when `cond`
// is false. Usage: XGR_CHECK(a == b) << "detail " << a;
// Precedence: `<<` binds tighter than `&`, so the streamed message is
// accumulated into the temporary stream before CheckRaiser fires Raise().
#define XGR_CHECK(cond)                           \
  (cond) ? (void)0                                \
         : ::xgr::detail::CheckRaiser{} &         \
               ::xgr::detail::CheckFailureStream( \
                   __FILE__, __LINE__, #cond)

// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define XGR_DCHECK(cond) XGR_CHECK(true)
#else
#define XGR_DCHECK(cond) XGR_CHECK(cond)
#endif

// Marks unreachable code paths.
#define XGR_UNREACHABLE() \
  XGR_CHECK(false) << "unreachable code reached"

namespace xgr {

// Global log verbosity: 0 = silent (default), 1 = info, 2 = debug.
int& LogLevel();

namespace detail {
class LogLine {
 public:
  explicit LogLine(bool enabled) : enabled_(enabled) {}
  ~LogLine() {
    if (enabled_) std::cerr << stream_.str() << "\n";
  }
  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace xgr

#define XGR_LOG_INFO ::xgr::detail::LogLine(::xgr::LogLevel() >= 1) << "[xgr] "
#define XGR_LOG_DEBUG ::xgr::detail::LogLine(::xgr::LogLevel() >= 2) << "[xgr] "
