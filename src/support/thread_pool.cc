#include "support/thread_pool.h"

#include <algorithm>

#include "support/logging.h"

namespace xgr {

ThreadPool::ThreadPool(std::size_t num_threads) {
  XGR_CHECK(num_threads > 0) << "thread pool needs at least one thread";
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::size_t shards = std::min(count, NumThreads());
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    std::size_t begin = count * shard / shards;
    std::size_t end = count * (shard + 1) / shards;
    futures.push_back(Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  // Wait for *every* shard before rethrowing: bailing on the first error
  // would return (and destroy `fn` at the caller) while other shards still
  // reference it.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace xgr
