#include "support/worker_team.h"

#include <algorithm>

#include "support/fault_point.h"
#include "support/logging.h"

namespace xgr::support {

WorkerTeam::WorkerTeam(std::size_t threads)
    : threads_(std::max<std::size_t>(1, threads)) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerTeam::~WorkerTeam() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkerTeam::RunClaimed(ShardFn fn, void* ctx,
                            std::size_t shard_count) noexcept {
  for (;;) {
    std::size_t shard = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (shard >= shard_count) break;
    try {
      // Fault site: lets tests inject a slow or throwing shard to prove the
      // team's error propagation and the engine's tolerance of straggler
      // shards. One relaxed atomic load when disarmed.
      XGR_FAULT_HIT("worker_team.shard");
      fn(ctx, shard);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void WorkerTeam::Dispatch(ShardFn fn, void* ctx, std::size_t shard_count) {
  XGR_CHECK(fn != nullptr) << "WorkerTeam::Dispatch needs a shard function";
  if (shard_count == 0) return;
  if (workers_.empty() || shard_count == 1) {
    // Inline fast path: nothing to synchronize with.
    next_shard_.store(shard_count, std::memory_order_relaxed);
    for (std::size_t s = 0; s < shard_count; ++s) {
      XGR_FAULT_HIT("worker_team.shard");
      fn(ctx, s);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = fn;
    ctx_ = ctx;
    shard_count_ = shard_count;
    next_shard_.store(0, std::memory_order_relaxed);
    pending_workers_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  RunClaimed(fn, ctx, shard_count);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void WorkerTeam::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    ShardFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t shard_count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      fn = fn_;
      ctx = ctx_;
      shard_count = shard_count_;
    }
    RunClaimed(fn, ctx, shard_count);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_workers_;
      if (pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace xgr::support
