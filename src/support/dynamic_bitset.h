// A fixed-size dynamic bitset tuned for token masks.
//
// Token masks are bitsets of vocabulary size (up to 128k bits = 16 KB). The
// engine manipulates them with word-level operations: fill, set/reset ranges,
// intersection/union with token-id lists, popcount. This mirrors the bitset
// used by the reference implementation for the "equal cases" storage format
// and for the final mask handed to the sampler.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/array_ref.h"
#include "support/logging.h"

namespace xgr {

class FrozenBitset;

class DynamicBitset {
 public:
  using Word = std::uint64_t;
  static constexpr int kBitsPerWord = 64;

  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size, bool value = false)
      : size_(size),
        words_((size + kBitsPerWord - 1) / kBitsPerWord,
               value ? ~Word{0} : Word{0}) {
    ClearPadding();
  }

  std::size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  bool Test(std::size_t index) const {
    XGR_DCHECK(index < size_);
    return (words_[index / kBitsPerWord] >> (index % kBitsPerWord)) & 1u;
  }
  bool operator[](std::size_t index) const { return Test(index); }

  void Set(std::size_t index) {
    XGR_DCHECK(index < size_);
    words_[index / kBitsPerWord] |= Word{1} << (index % kBitsPerWord);
  }
  void Reset(std::size_t index) {
    XGR_DCHECK(index < size_);
    words_[index / kBitsPerWord] &= ~(Word{1} << (index % kBitsPerWord));
  }
  void SetTo(std::size_t index, bool value) {
    if (value) {
      Set(index);
    } else {
      Reset(index);
    }
  }

  void SetAll() {
    for (Word& w : words_) w = ~Word{0};
    ClearPadding();
  }
  void ResetAll() {
    for (Word& w : words_) w = 0;
  }

  // --- Batch operations (decode hot path) -----------------------------------
  // Word-level primitives used by the Algorithm-1 mask merge
  // (cache/mask_generator.cc). All of them are allocation-free; the id-list
  // forms accept ids in any order (no sortedness or uniqueness required).

  // Sets every bit whose index appears in [ids, ids + count).
  void SetBatch(const std::int32_t* ids, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      Set(static_cast<std::size_t>(ids[i]));
    }
  }
  void SetBatch(const std::vector<std::int32_t>& ids) {
    SetBatch(ids.data(), ids.size());
  }
  void SetBatch(const support::ArrayRef<std::int32_t>& ids) {
    SetBatch(ids.data(), ids.size());
  }
  // Resets every bit whose index appears in [ids, ids + count).
  void ResetBatch(const std::int32_t* ids, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      Reset(static_cast<std::size_t>(ids[i]));
    }
  }
  void ResetBatch(const std::vector<std::int32_t>& ids) {
    ResetBatch(ids.data(), ids.size());
  }
  void ResetBatch(const support::ArrayRef<std::int32_t>& ids) {
    ResetBatch(ids.data(), ids.size());
  }
  // Word-wise OR / AND with `other` (named forms of |= / &= for the merge
  // code, which reads as set algebra: accepted |= ..., rejected &= ...).
  void OrWith(const DynamicBitset& other) { *this |= other; }
  void AndWith(const DynamicBitset& other) { *this &= other; }
  // Frozen (possibly mmap-backed) overloads; defined after FrozenBitset.
  inline void OrWith(const FrozenBitset& other);
  inline void CopyFrom(const FrozenBitset& other);
  // Word copy from an equal-sized bitset; never touches capacity, so it is
  // guaranteed allocation-free (unlike operator=, which may reallocate).
  void CopyFrom(const DynamicBitset& other) {
    XGR_DCHECK(size_ == other.size_);
    std::copy(other.words_.begin(), other.words_.end(), words_.begin());
  }

  // In-place boolean algebra. Sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& other) {
    XGR_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }
  DynamicBitset& operator|=(const DynamicBitset& other) {
    XGR_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }
  DynamicBitset& operator^=(const DynamicBitset& other) {
    XGR_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
    return *this;
  }
  void FlipAll() {
    for (Word& w : words_) w = ~w;
    ClearPadding();
  }

  std::size_t Count() const {
    std::size_t count = 0;
    for (Word w : words_) count += static_cast<std::size_t>(__builtin_popcountll(w));
    return count;
  }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  // Index of the first set bit at or after `from`, or -1 if none.
  std::int64_t FindNext(std::size_t from) const {
    if (from >= size_) return -1;
    std::size_t word_index = from / kBitsPerWord;
    Word word = words_[word_index] & (~Word{0} << (from % kBitsPerWord));
    while (true) {
      if (word != 0) {
        std::size_t bit =
            word_index * kBitsPerWord + static_cast<std::size_t>(__builtin_ctzll(word));
        return bit < size_ ? static_cast<std::int64_t>(bit) : -1;
      }
      if (++word_index >= words_.size()) return -1;
      word = words_[word_index];
    }
  }

  // Collects all set bit indices; mostly used by tests and diagnostics.
  std::vector<std::int32_t> ToIndexList() const {
    std::vector<std::int32_t> result;
    for (std::int64_t i = FindNext(0); i >= 0;
         i = FindNext(static_cast<std::size_t>(i) + 1)) {
      result.push_back(static_cast<std::int32_t>(i));
    }
    return result;
  }

  // Raw word access for bulk copies (e.g. uploading the mask to the sampler).
  const Word* Data() const { return words_.data(); }
  Word* MutableData() { return words_.data(); }
  std::size_t WordCount() const { return words_.size(); }

  // Approximate heap memory footprint in bytes.
  std::size_t MemoryBytes() const { return words_.size() * sizeof(Word); }

 private:
  // Keeps bits beyond size_ at zero so Count()/equality stay exact.
  void ClearPadding() {
    std::size_t tail = size_ % kBitsPerWord;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (Word{1} << tail) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<Word> words_;
};

// Immutable bitset over owning-or-viewing word storage. Cache entries store
// their accepted-CI bits as a FrozenBitset so an mmap-loaded artifact can
// alias the file pages directly (support/array_ref.h); the decode hot path
// only ever reads it word-wise (CopyFrom / OrWith below).
class FrozenBitset {
 public:
  using Word = DynamicBitset::Word;
  static constexpr int kBitsPerWord = DynamicBitset::kBitsPerWord;

  FrozenBitset() = default;
  // Owning: snapshots `bits` (padding already cleared by DynamicBitset).
  explicit FrozenBitset(const DynamicBitset& bits)
      : size_(bits.Size()),
        words_(support::ArrayRef<Word>(
            std::vector<Word>(bits.Data(), bits.Data() + bits.WordCount()))) {}
  // Non-owning view of `word_count` words covering `size` bits. Padding bits
  // beyond `size` must be zero (validated by the artifact loader).
  static FrozenBitset View(const Word* words, std::size_t word_count,
                           std::size_t size) {
    FrozenBitset b;
    b.size_ = size;
    b.words_ = support::ArrayRef<Word>::View(words, word_count);
    return b;
  }

  std::size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }
  bool Test(std::size_t index) const {
    XGR_DCHECK(index < size_);
    return (words_[index / kBitsPerWord] >> (index % kBitsPerWord)) & 1u;
  }

  const Word* Data() const { return words_.data(); }
  std::size_t WordCount() const { return words_.size(); }
  std::size_t MemoryBytes() const { return words_.size() * sizeof(Word); }
  bool IsView() const { return words_.IsView(); }

  std::vector<std::int32_t> ToIndexList() const {
    std::vector<std::int32_t> result;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        auto bit = static_cast<std::size_t>(__builtin_ctzll(word));
        result.push_back(static_cast<std::int32_t>(w * kBitsPerWord + bit));
        word &= word - 1;
      }
    }
    return result;
  }

  friend bool operator==(const FrozenBitset& a, const FrozenBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  std::size_t size_ = 0;
  support::ArrayRef<Word> words_;
};

inline void DynamicBitset::OrWith(const FrozenBitset& other) {
  XGR_DCHECK(size_ == other.Size());
  const Word* src = other.Data();
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= src[i];
}

inline void DynamicBitset::CopyFrom(const FrozenBitset& other) {
  XGR_DCHECK(size_ == other.Size());
  std::copy(other.Data(), other.Data() + other.WordCount(), words_.begin());
}

}  // namespace xgr
