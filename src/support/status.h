// Structured status taxonomy for the serving runtime.
//
// The engine's internal error channel is exceptions (XGR_CHECK ->
// CheckError), which carry a message but no machine-readable class. Serving
// callers need to distinguish "your grammar is broken" (client bug, never
// retry) from "the service is overloaded" (back off and retry) from "your
// deadline expired" (maybe retry with a bigger budget). StatusCode is that
// taxonomy; StatusError is a CheckError subtype carrying one, so every
// existing catch(CheckError&) site keeps working while status-aware layers
// (CompileService tickets, ServingEngine results, the C ABI) can recover the
// code with StatusCodeOf().
#pragma once

#include <cstdint>
#include <exception>
#include <string>

#include "support/logging.h"

namespace xgr {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  // The grammar/schema/regex itself is invalid: deterministic, retrying the
  // identical source can never succeed. Quarantined immediately.
  kInvalidGrammar = 1,
  // A per-job or per-request deadline expired before the work finished.
  kDeadlineExceeded = 2,
  // The compile queue is full and this job lost the shedding decision.
  kOverloaded = 3,
  // A disk-tier artifact failed validation (bad magic / key mismatch /
  // deserialize failure). Terminal for the cached copy; recompile follows.
  kCorruptArtifact = 4,
  // Every interested ticket was dropped (RAII release or explicit Cancel).
  kCancelled = 5,
  // The key is quarantined: it failed too many times recently and is being
  // rejected O(1) with the cached error instead of re-occupying a worker.
  kPoisoned = 6,
  // Anything else: transient internal failure (bad_alloc, injected fault...).
  kInternal = 7,
  // A per-tenant admission quota (concurrent compiles, queue depth, resident
  // bytes) is exhausted. Deterministic for the tenant's current load, not for
  // the job: the same source succeeds once the tenant drains. Never
  // quarantined.
  kQuotaExceeded = 8,
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidGrammar:
      return "invalid_grammar";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kCorruptArtifact:
      return "corrupt_artifact";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kPoisoned:
      return "poisoned";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kQuotaExceeded:
      return "quota_exceeded";
  }
  return "unknown";
}

// A CheckError with a StatusCode attached. Derives from CheckError so the
// whole pre-existing error surface (FFI Guarded(), test EXPECT_THROWs,
// worker catch blocks) handles it unchanged.
class StatusError : public CheckError {
 public:
  StatusError(StatusCode code, const std::string& message)
      : CheckError(message), code_(code) {}

  StatusCode code() const { return code_; }

 private:
  StatusCode code_;
};

// Recovers the status class of an in-flight exception: StatusError yields
// its code; any other exception is an unclassified internal failure.
inline StatusCode StatusCodeOf(const std::exception& error) {
  if (const auto* statused = dynamic_cast<const StatusError*>(&error)) {
    return statused->code();
  }
  return StatusCode::kInternal;
}

}  // namespace xgr
