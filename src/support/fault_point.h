// Deterministic fault-injection framework.
//
// Production code marks named fault sites (`XGR_FAULT_HIT("registry.disk.read")`)
// at the places failures can really happen: compile worker stages, the
// registry disk tier, the mask WorkerTeam. Tests and the fault-storm bench
// arm rules against those sites — throw a StatusError, return an injected
// error, delay, or run a callback — with seeded probabilistic firing plus
// skip_first/max_fires windows, so every failure path is reachable on demand
// and reproducible under a fixed seed.
//
// Cost when nothing is armed (production / Release): Hit() is a single
// relaxed atomic load of a global armed-site counter and a predictable
// not-taken branch. No allocation, no lock, no string hashing — safe to
// place adjacent to the zero-alloc decode hot path. Only once at least one
// rule is armed does the slow path (mutex + site map lookup) run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "support/status.h"

namespace xgr::support::fault {

enum class FaultAction : std::uint8_t {
  kThrow,     // throw StatusError{code, message} from the site
  kFail,      // Hit() returns true: the site takes its own error path
  kDelay,     // sleep delay_ms, then behave as if not fired
  kCallback,  // run `callback`, then behave as if not fired
};

struct FaultRule {
  FaultAction action = FaultAction::kThrow;
  StatusCode code = StatusCode::kInternal;  // kThrow only
  std::string message = "injected fault";   // kThrow only
  // Fraction of eligible hits that fire, decided by a per-site RNG seeded
  // from `seed` — the fire/no-fire sequence is a pure function of the seed
  // and the site's hit order.
  double probability = 1.0;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  std::int64_t skip_first = 0;  // hits to pass through before eligibility
  std::int64_t max_fires = -1;  // stop firing after this many; -1 = unlimited
  double delay_ms = 0.0;        // kDelay only
  std::function<void()> callback;  // kCallback only (runs on the hitting thread)
};

struct SiteStats {
  std::int64_t hits = 0;   // times the armed site was reached
  std::int64_t fires = 0;  // times the rule actually triggered
};

// Installs `rule` at `site`, replacing any existing rule (hit/fire counters
// reset). Sites are free-form strings; arming a site nothing ever hits is
// legal and simply never fires.
void Arm(const std::string& site, FaultRule rule);
void Disarm(const std::string& site);
// Removes every rule. Tests should call this in teardown (or use ScopedFault)
// so faults never leak across test cases.
void DisarmAll();
// Counters for an armed site ({0,0} if not armed).
SiteStats Stats(const std::string& site);

namespace detail {
// Number of currently armed sites. Non-zero is the only condition under
// which Hit() leaves its fast path.
extern std::atomic<int> g_armed_sites;
bool HitSlow(const char* site);
}  // namespace detail

// The per-site check. Returns true iff an armed kFail rule fired, in which
// case the caller takes its (site-specific) injected error path. kThrow
// rules throw from inside; kDelay/kCallback rules run and return false.
inline bool Hit(const char* site) {
  if (detail::g_armed_sites.load(std::memory_order_relaxed) == 0) return false;
  return detail::HitSlow(site);
}

// RAII arming for tests: disarms its site on scope exit.
class ScopedFault {
 public:
  ScopedFault(std::string site, FaultRule rule) : site_(std::move(site)) {
    Arm(site_, std::move(rule));
  }
  ~ScopedFault() { Disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace xgr::support::fault

#define XGR_FAULT_HIT(site) ::xgr::support::fault::Hit(site)
