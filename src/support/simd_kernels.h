// Fused bitmask-apply + softmax + sample kernels over a dense logits row.
//
// The CPU analogue of the reference implementation's
// apply_token_mask_inplace.cu: instead of writing -inf over masked logits and
// handing the row back to a separate softmax/sample pass, one kernel walks
// the row once, treats masked tokens as -inf on the fly (the Figure 2
// operation), and produces either the greedy argmax or a temperature sample.
// Used by engine::DenseSampler on the batch decode hot path.
//
// Dispatch: an AVX2+FMA path is selected at runtime on x86-64 when the CPU
// supports it; on aarch64 the NEON path is selected (Advanced SIMD is
// mandatory on aarch64, so no runtime probe is needed); otherwise the
// portable scalar path runs. All paths the toolchain can build are compiled
// (the AVX2 body carries a `target("avx2,fma")` attribute, so no global
// -mavx2 is needed) and tests drive every available implementation
// explicitly, regardless of the runtime pick.
//
// Determinism contract (verified by tests/simd_kernel_test.cc):
//   * The argmax (greedy) result is IDENTICAL across implementations: ties
//     break to the lowest token index, NaN logits never win, and a row whose
//     allowed logits are all NaN deterministically yields the lowest allowed
//     index.
//   * Per-token exp values are bit-identical across implementations (all
//     evaluate the same fma-based polynomial; std::fma, vfmadd and vfmaq
//     are each single-rounded). Only the order of the sum reduction differs, so
//     normalized probabilities agree to a few ulps and the sampled index can
//     differ only when the uniform draw lands within that sliver of a CDF
//     boundary.
//
// Zero allocations: callers provide the exp scratch row; the kernels
// themselves never touch the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xgr::support::simd {

enum class Impl : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

const char* ImplName(Impl impl);

// Implementations that can run on this CPU, scalar first. Tests iterate this
// to differentially exercise every compiled path.
std::vector<Impl> AvailableImpls();

// The implementation the convenience entry points use (cached runtime pick:
// best available).
Impl BestImpl();

struct FusedSampleStats {
  std::int32_t argmax = -1;  // lowest-index argmax among allowed tokens
  float max_logit = 0.0f;    // its logit (meaningless when argmax < 0)
  double sum_exp = 0.0;      // softmax normalizer (temperature path only)
  std::int32_t allowed = 0;  // number of mask-allowed tokens in [0, n)
};

// Fused bitmask-apply + argmax over logits[0..n).
//
// `mask_words` is a DynamicBitset-style word array (bit i = token i allowed)
// with the padding bits beyond n cleared; nullptr means every token is
// allowed. Masked tokens are treated as -inf without writing to the row.
// Returns {-1, ...} when no token is allowed. When allowed tokens exist but
// none has a comparable logit (all NaN), argmax is the lowest allowed index.
FusedSampleStats FusedMaskArgmax(Impl impl, const float* logits, std::size_t n,
                                 const std::uint64_t* mask_words);

// Fused bitmask-apply + softmax(temperature) + sample.
//
// temperature <= 0 (or non-finite) selects the greedy argmax — the fully
// fused single pass; exp_scratch may be nullptr in that case. Otherwise
// exp_scratch must hold n floats: the kernel writes unnormalized
// exp((logit - max)/temperature) for allowed tokens (0 for masked or NaN
// tokens) and inverse-CDF samples with `uniform` in [0, 1). A row whose max
// allowed logit is +inf degenerates to the greedy argmax (the distribution
// collapses onto the +inf token). Returns the sampled token id, or -1 when
// no token is allowed. `stats` (optional) receives argmax/max/sum/allowed.
std::int32_t FusedMaskSoftmaxSample(Impl impl, const float* logits,
                                    std::size_t n,
                                    const std::uint64_t* mask_words,
                                    float temperature, double uniform,
                                    float* exp_scratch,
                                    FusedSampleStats* stats);

// Convenience forms on BestImpl().
inline FusedSampleStats FusedMaskArgmax(const float* logits, std::size_t n,
                                        const std::uint64_t* mask_words) {
  return FusedMaskArgmax(BestImpl(), logits, n, mask_words);
}
inline std::int32_t FusedMaskSoftmaxSample(const float* logits, std::size_t n,
                                           const std::uint64_t* mask_words,
                                           float temperature, double uniform,
                                           float* exp_scratch,
                                           FusedSampleStats* stats = nullptr) {
  return FusedMaskSoftmaxSample(BestImpl(), logits, n, mask_words, temperature,
                                uniform, exp_scratch, stats);
}

// The shared exp kernel (scalar form), exposed for the differential tests:
// exp(x) for x <= 0 with exp(-inf) = 0, NaN propagated, ~2 ulp accuracy.
// The AVX2 and NEON paths evaluate the identical fma polynomial per lane, so
// results are bit-identical between implementations.
float ExpNegF(float x);

}  // namespace xgr::support::simd
