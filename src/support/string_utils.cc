#include "support/string_utils.h"

#include <algorithm>
#include <cstdio>

namespace xgr {

std::string EscapeBytes(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size());
  for (char c : bytes) {
    auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      default:
        if (byte >= 0x20 && byte < 0x7F) {
          out += c;
        } else {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02X", byte);
          out += buf;
        }
    }
  }
  return out;
}

std::size_t CommonPrefixLength(std::string_view a, std::string_view b) {
  std::size_t limit = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace xgr
