// Owning-or-viewing immutable array.
//
// The zero-copy artifact path (src/artifact) maps flat files and hands out
// non-owning views into the mapping; the compile path builds the same
// structures from freshly allocated vectors. ArrayRef unifies the two: a
// container field declared as ArrayRef<T> either owns a vector (compile
// path) or views external memory whose lifetime is guaranteed by whoever
// created the view (the mmap keep-alive held by AdaptiveTokenMaskCache).
//
// Conversions are deliberately explicit in both directions — the implicit
// forms would make overloads and ternaries ambiguous at call sites that mix
// ArrayRef and std::vector. Construct with ArrayRef(std::move(vec)) or
// ArrayRef<T>::View(ptr, count); materialize with ToVector().
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace xgr::support {

template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  // Owning: takes the vector's buffer. An empty vector degenerates to the
  // default (null view) state.
  explicit ArrayRef(std::vector<T> values) : owned_(std::move(values)) {
    BindToOwned();
  }

  // Non-owning view of [data, data + size). The caller guarantees the
  // pointee outlives every copy of this ArrayRef.
  static ArrayRef View(const T* data, std::size_t size) {
    ArrayRef ref;
    ref.data_ = size == 0 ? nullptr : data;
    ref.size_ = size;
    return ref;
  }

  ArrayRef(const ArrayRef& other) : owned_(other.owned_) { Rebind(other); }
  ArrayRef(ArrayRef&& other) noexcept : owned_(std::move(other.owned_)) {
    Rebind(other);
    other.Clear();
  }
  ArrayRef& operator=(const ArrayRef& other) {
    if (this != &other) {
      owned_ = other.owned_;
      Rebind(other);
    }
    return *this;
  }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      Rebind(other);
      other.Clear();
    }
    return *this;
  }

  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  // True when this instance does not own its storage (mmap-backed view).
  bool IsView() const { return size_ != 0 && owned_.empty(); }

  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

  friend bool operator==(const ArrayRef& a, const ArrayRef& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const ArrayRef& a, const std::vector<T>& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<T>& a, const ArrayRef& b) {
    return b == a;
  }
  friend bool operator!=(const ArrayRef& a, const ArrayRef& b) { return !(a == b); }

 private:
  // Invariant: owned_ is either empty (default/view state) or is the backing
  // buffer with data_ == owned_.data() and size_ == owned_.size().
  void BindToOwned() {
    data_ = owned_.empty() ? nullptr : owned_.data();
    size_ = owned_.size();
  }
  void Rebind(const ArrayRef& source) {
    if (!owned_.empty()) {
      BindToOwned();
    } else {
      data_ = source.data_;
      size_ = source.size_;
    }
  }
  void Clear() {
    owned_.clear();
    data_ = nullptr;
    size_ = 0;
  }

  const T* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<T> owned_;
};

}  // namespace xgr::support
