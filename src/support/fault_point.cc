#include "support/fault_point.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

namespace xgr::support::fault {

namespace detail {
std::atomic<int> g_armed_sites{0};
}  // namespace detail

namespace {

// splitmix64: tiny, seedable, and good enough for fire/no-fire coin flips.
// Each armed site keeps its own state so firing sequences are independent.
std::uint64_t NextRandom(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct SiteState {
  FaultRule rule;
  std::uint64_t rng = 0;
  std::int64_t hits = 0;
  std::int64_t fires = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, SiteState> sites;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

}  // namespace

void Arm(const std::string& site, FaultRule rule) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  SiteState state;
  state.rng = rule.seed;
  state.rule = std::move(rule);
  auto [it, inserted] = registry.sites.insert_or_assign(site, std::move(state));
  (void)it;
  if (inserted) {
    detail::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
}

void Disarm(const std::string& site) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.sites.erase(site) > 0) {
    detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  detail::g_armed_sites.fetch_sub(static_cast<int>(registry.sites.size()),
                                  std::memory_order_relaxed);
  registry.sites.clear();
}

SiteStats Stats(const std::string& site) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return {};
  return {it->second.hits, it->second.fires};
}

namespace detail {

bool HitSlow(const char* site) {
  // Decide under the lock; act (throw/sleep/callback) outside it so a
  // blocking injected action never holds up Arm/Disarm from other threads.
  FaultAction action;
  StatusCode code;
  std::string message;
  double delay_ms = 0.0;
  std::function<void()> callback;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.sites.find(site);
    if (it == registry.sites.end()) return false;
    SiteState& state = it->second;
    ++state.hits;
    if (state.hits <= state.rule.skip_first) return false;
    if (state.rule.max_fires >= 0 && state.fires >= state.rule.max_fires) {
      return false;
    }
    if (state.rule.probability < 1.0) {
      const double coin = static_cast<double>(NextRandom(state.rng) >> 11) *
                          (1.0 / 9007199254740992.0);  // [0, 1)
      if (coin >= state.rule.probability) return false;
    }
    ++state.fires;
    action = state.rule.action;
    code = state.rule.code;
    message = state.rule.message;
    delay_ms = state.rule.delay_ms;
    callback = state.rule.callback;
  }
  switch (action) {
    case FaultAction::kThrow:
      throw StatusError(code, message + " [fault:" + site + "]");
    case FaultAction::kFail:
      return true;
    case FaultAction::kDelay:
      if (delay_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
      }
      return false;
    case FaultAction::kCallback:
      if (callback) callback();
      return false;
  }
  return false;
}

}  // namespace detail

}  // namespace xgr::support::fault
