// Retry with exponential backoff + deterministic jitter.
//
// Used by the GrammarRegistry disk tier: a transient read/write error (NFS
// blip, injected fault) is retried a bounded number of times with growing,
// jittered delays; only after exhaustion does the caller fall back to its
// terminal path (recompile / memory-only artifact). Corruption is NOT
// retried — that distinction belongs to the caller, which classifies the
// failure before asking the policy for another attempt.
//
// Determinism: jitter comes from a splitmix64 stream seeded by the policy,
// and tests inject `sleep_fn` to record delays instead of sleeping, so retry
// schedules are asserted exactly — no wall-clock races.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace xgr::support {

struct RetryPolicy {
  int max_attempts = 3;            // total tries, including the first
  double initial_backoff_ms = 1.0;  // delay before attempt 2
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 50.0;
  // Each delay is scaled by a factor drawn uniformly from
  // [1 - jitter, 1 + jitter], decorrelating retry storms across callers.
  double jitter = 0.25;
  std::uint64_t seed = 0x853c49e6748fea9bull;
  // Test hook: replaces the real sleep. Signature matches a plain function
  // so the policy stays a trivially copyable value type.
  void (*sleep_fn)(double ms) = nullptr;
};

struct RetryStats {
  int attempts = 0;     // attempts actually made
  int retries = 0;      // attempts - 1 when > 0
  double slept_ms = 0;  // total backoff requested (recorded even via sleep_fn)
};

namespace retry_detail {
inline std::uint64_t NextRandom(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace retry_detail

// Runs `attempt` (a callable returning true on success / terminal outcome,
// false on transient failure) up to policy.max_attempts times. Returns the
// last attempt's verdict; false means the transient failure survived every
// retry and the caller should take its exhaustion path.
template <typename AttemptFn>
bool RetryTransient(const RetryPolicy& policy, AttemptFn&& attempt,
                    RetryStats* stats = nullptr) {
  const int max_attempts = std::max(1, policy.max_attempts);
  std::uint64_t rng = policy.seed;
  double backoff_ms = policy.initial_backoff_ms;
  for (int tried = 1;; ++tried) {
    if (stats != nullptr) stats->attempts = tried;
    if (attempt()) return true;
    if (tried >= max_attempts) return false;
    const double unit =
        static_cast<double>(retry_detail::NextRandom(rng) >> 11) *
        (1.0 / 9007199254740992.0);  // [0, 1)
    const double factor = 1.0 + policy.jitter * (2.0 * unit - 1.0);
    const double delay_ms =
        std::min(policy.max_backoff_ms, backoff_ms) * factor;
    if (stats != nullptr) {
      ++stats->retries;
      stats->slept_ms += delay_ms;
    }
    if (policy.sleep_fn != nullptr) {
      policy.sleep_fn(delay_ms);
    } else if (delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
    backoff_ms *= policy.backoff_multiplier;
  }
}

}  // namespace xgr::support
