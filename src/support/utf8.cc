#include "support/utf8.h"

#include <algorithm>

#include "support/logging.h"

namespace xgr {

int Utf8EncodedLength(std::uint32_t codepoint) {
  if (codepoint <= 0x7F) return 1;
  if (codepoint <= 0x7FF) return 2;
  if (codepoint <= 0xFFFF) return 3;
  return 4;
}

int EncodeUtf8(std::uint32_t codepoint, std::uint8_t out[4]) {
  XGR_CHECK(codepoint <= kMaxCodepoint) << "codepoint out of range";
  if (codepoint <= 0x7F) {
    out[0] = static_cast<std::uint8_t>(codepoint);
    return 1;
  }
  if (codepoint <= 0x7FF) {
    out[0] = static_cast<std::uint8_t>(0xC0 | (codepoint >> 6));
    out[1] = static_cast<std::uint8_t>(0x80 | (codepoint & 0x3F));
    return 2;
  }
  if (codepoint <= 0xFFFF) {
    out[0] = static_cast<std::uint8_t>(0xE0 | (codepoint >> 12));
    out[1] = static_cast<std::uint8_t>(0x80 | ((codepoint >> 6) & 0x3F));
    out[2] = static_cast<std::uint8_t>(0x80 | (codepoint & 0x3F));
    return 3;
  }
  out[0] = static_cast<std::uint8_t>(0xF0 | (codepoint >> 18));
  out[1] = static_cast<std::uint8_t>(0x80 | ((codepoint >> 12) & 0x3F));
  out[2] = static_cast<std::uint8_t>(0x80 | ((codepoint >> 6) & 0x3F));
  out[3] = static_cast<std::uint8_t>(0x80 | (codepoint & 0x3F));
  return 4;
}

void AppendUtf8(std::uint32_t codepoint, std::string* out) {
  std::uint8_t buf[4];
  int len = EncodeUtf8(codepoint, buf);
  out->append(reinterpret_cast<const char*>(buf), static_cast<std::size_t>(len));
}

DecodedChar DecodeUtf8(std::string_view data, std::size_t pos) {
  DecodedChar result;
  if (pos >= data.size()) return result;
  auto byte = [&](std::size_t i) {
    return static_cast<std::uint8_t>(data[pos + i]);
  };
  std::uint8_t b0 = byte(0);
  int len;
  std::uint32_t cp;
  if (b0 < 0x80) {
    len = 1;
    cp = b0;
  } else if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1F;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0F;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07;
  } else {
    return result;  // continuation or invalid lead byte
  }
  if (pos + static_cast<std::size_t>(len) > data.size()) return result;
  for (int i = 1; i < len; ++i) {
    std::uint8_t b = byte(static_cast<std::size_t>(i));
    if ((b & 0xC0) != 0x80) return result;
    cp = (cp << 6) | (b & 0x3F);
  }
  // Reject overlong encodings, out-of-range values and surrogates.
  static constexpr std::uint32_t kMinByLen[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMinByLen[len] || cp > kMaxCodepoint) return result;
  if (cp >= 0xD800 && cp <= 0xDFFF) return result;
  result.codepoint = cp;
  result.length = len;
  result.ok = true;
  return result;
}

std::size_t CompleteUtf8PrefixLength(std::string_view bytes) {
  if (bytes.empty()) return 0;
  // Find the start of the last (possibly partial) sequence: scan back over at
  // most 3 continuation bytes to the nearest lead byte.
  std::size_t last = bytes.size() - 1;
  std::size_t back = 0;
  while (back < 3 && last > 0 &&
         (static_cast<std::uint8_t>(bytes[last]) & 0xC0) == 0x80) {
    --last;
    ++back;
  }
  std::uint8_t lead = static_cast<std::uint8_t>(bytes[last]);
  int expected;
  if (lead < 0x80) {
    expected = 1;
  } else if ((lead & 0xE0) == 0xC0) {
    expected = 2;
  } else if ((lead & 0xF0) == 0xE0) {
    expected = 3;
  } else if ((lead & 0xF8) == 0xF0) {
    expected = 4;
  } else {
    // Stray continuation or invalid lead: not a truncated character, keep it.
    return bytes.size();
  }
  std::size_t available = bytes.size() - last;
  if (available < static_cast<std::size_t>(expected)) return last;
  return bytes.size();
}

namespace {

// Recursively splits same-encoded-length intervals given their encodings.
// lo/hi point at `n` remaining bytes each. `prefix` collects byte ranges for
// the already-fixed leading bytes.
void SplitSameLength(const std::uint8_t* lo, const std::uint8_t* hi, int n,
                     ByteRangeSeq* prefix, std::vector<ByteRangeSeq>* out) {
  if (n == 1) {
    prefix->push_back(ByteRange{lo[0], hi[0]});
    out->push_back(*prefix);
    prefix->pop_back();
    return;
  }
  if (lo[0] == hi[0]) {
    prefix->push_back(ByteRange{lo[0], lo[0]});
    SplitSameLength(lo + 1, hi + 1, n - 1, prefix, out);
    prefix->pop_back();
    return;
  }
  std::uint8_t lo_first = lo[0];
  std::uint8_t hi_first = hi[0];
  // If the low remainder is not the minimum (all 0x80), peel off the first
  // byte's low edge with an exact match and recurse.
  bool lo_is_min = true;
  for (int i = 1; i < n; ++i) lo_is_min &= (lo[i] == 0x80);
  if (!lo_is_min) {
    std::uint8_t max_rest[4] = {0xBF, 0xBF, 0xBF, 0xBF};
    prefix->push_back(ByteRange{lo_first, lo_first});
    SplitSameLength(lo + 1, max_rest, n - 1, prefix, out);
    prefix->pop_back();
    ++lo_first;
  }
  bool hi_is_max = true;
  for (int i = 1; i < n; ++i) hi_is_max &= (hi[i] == 0xBF);
  if (!hi_is_max) {
    std::uint8_t min_rest[4] = {0x80, 0x80, 0x80, 0x80};
    prefix->push_back(ByteRange{hi_first, hi_first});
    SplitSameLength(min_rest, hi + 1, n - 1, prefix, out);
    prefix->pop_back();
    if (hi_first == 0) return;  // defensive; cannot happen for valid UTF-8
    --hi_first;
  }
  if (lo_first <= hi_first) {
    ByteRangeSeq seq = *prefix;
    seq.push_back(ByteRange{lo_first, hi_first});
    for (int i = 1; i < n; ++i) seq.push_back(ByteRange{0x80, 0xBF});
    out->push_back(std::move(seq));
  }
}

void CompileRangeRec(std::uint32_t lo, std::uint32_t hi,
                     std::vector<ByteRangeSeq>* out) {
  if (lo > hi) return;
  // Exclude UTF-16 surrogates, which are not valid scalar values.
  if (lo <= 0xDFFF && hi >= 0xD800) {
    if (lo < 0xD800) CompileRangeRec(lo, 0xD7FF, out);
    if (hi > 0xDFFF) CompileRangeRec(0xE000, hi, out);
    return;
  }
  // Split at encoded-length boundaries.
  for (std::uint32_t boundary : {0x7Fu, 0x7FFu, 0xFFFFu}) {
    if (lo <= boundary && boundary < hi) {
      CompileRangeRec(lo, boundary, out);
      CompileRangeRec(boundary + 1, hi, out);
      return;
    }
  }
  std::uint8_t lo_bytes[4];
  std::uint8_t hi_bytes[4];
  int n = EncodeUtf8(lo, lo_bytes);
  int n_hi = EncodeUtf8(hi, hi_bytes);
  XGR_CHECK(n == n_hi) << "length-split invariant violated";
  ByteRangeSeq prefix;
  SplitSameLength(lo_bytes, hi_bytes, n, &prefix, out);
}

}  // namespace

std::vector<ByteRangeSeq> CompileCodepointRange(std::uint32_t lo,
                                                std::uint32_t hi) {
  XGR_CHECK(lo <= hi) << "empty codepoint range";
  XGR_CHECK(hi <= kMaxCodepoint) << "codepoint out of range";
  std::vector<ByteRangeSeq> out;
  CompileRangeRec(lo, hi, &out);
  return out;
}

}  // namespace xgr
