// Deterministic cost-aware sharding of batch mask generation.
//
// The naive even split (ParallelFor over the batch) serializes one
// expensive CFG request behind dozens of cheap JSON requests in the same
// contiguous shard. The planner instead runs LPT (longest-processing-time-
// first) over per-request cost estimates — the engine feeds it an EWMA of
// each request's measured mask-fill microseconds — assigning each request
// to the currently least-loaded shard.
//
// Determinism: ties in cost sort by ascending request index, ties in shard
// load break to the lowest shard id, so the request→shard mapping is a pure
// function of (costs, shard_count). Which thread EXECUTES a shard is still
// dynamic (WorkerTeam claiming), but since each request's mask only depends
// on its own decoder state, thread assignment cannot affect results — the
// property the batch-determinism suite pins down.
//
// All buffers are reused across Plan() calls; after the first step at a
// given batch size, planning allocates nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xgr::engine {

class MaskShardPlanner {
 public:
  // Distributes requests [0, n) into `shard_count` shards by LPT on
  // cost_us[i] (estimated microseconds for request i). shard_count is
  // clamped to [1, n].
  void Plan(const float* cost_us, std::size_t n, std::size_t shard_count);

  std::size_t shard_count() const { return shard_count_; }

  // Requests of shard s, in descending-cost order:
  //   Items()[ShardBegin(s) .. ShardEnd(s))
  const std::int32_t* Items() const { return items_.data(); }
  std::size_t ShardBegin(std::size_t s) const { return offsets_[s]; }
  std::size_t ShardEnd(std::size_t s) const { return offsets_[s + 1]; }

  // Planned load (summed cost estimate) of shard s — exposed for tests.
  double ShardLoad(std::size_t s) const { return shard_load_[s]; }

 private:
  std::size_t shard_count_ = 0;
  std::vector<std::int32_t> order_;      // request indices, cost-desc
  std::vector<std::int32_t> shard_of_;   // request -> shard
  std::vector<std::int32_t> items_;      // requests grouped by shard
  std::vector<std::size_t> offsets_;     // shard -> begin index into items_
  std::vector<std::size_t> fill_;        // scratch cursor per shard
  std::vector<double> shard_load_;
};

}  // namespace xgr::engine
