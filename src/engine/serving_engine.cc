#include "engine/serving_engine.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "baselines/xgrammar_decoder.h"
#include "cache/mask_generator.h"
#include "compose/tag_dispatch.h"
#include "support/logging.h"
#include "support/timer.h"

namespace xgr::engine {

namespace {

struct ActiveRequest {
  const EngineRequest* request = nullptr;
  // The grammar backend actually used: request->decoder for prepared
  // requests, or a decoder built at admission from a finished
  // runtime::CompileTicket artifact (async admission).
  std::shared_ptr<baselines::ConstrainedDecoder> decoder;
  MockLlm::RequestScript script;
  RequestResult result;
  DynamicBitset mask;
  Rng sampler_rng{1};
  bool finished = false;
  // Cost-aware sharding: EWMA of this request's measured mask-fill
  // microseconds (0 until first measured — the planner then spreads
  // requests evenly).
  float mask_cost_ewma_us = 0.0f;
  // Hot-path scratch, sized once at admission so decode steps allocate
  // nothing: the sparse boost list, and (dense path) the logits row plus
  // the sampler's exp scratch.
  SparseLogits logits_scratch;
  std::vector<float> dense_row;
  DenseSampler dense_sampler;
  // Speculative decoding: per-step draft buffer (sized at admission) and the
  // step's draft/agree/commit counts. draft_len < 0 = no draft this step.
  std::vector<std::int32_t> draft;
  std::int32_t draft_len = -1;
  std::int32_t draft_agreed = 0;
  std::int32_t draft_committed = 0;
  bool spec_step = false;  // this step ran the speculative path
  Rng draft_rng{1};
};

// Sizes every per-request buffer the decode loop touches, so the loop
// itself stays allocation-free.
void InitActiveRequest(ActiveRequest* ar, const MockLlm& llm,
                       const EngineOptions& options,
                       const std::string& target_text, std::uint64_t seed,
                       std::size_t vocab_size) {
  ar->script = llm.MakeScript(target_text, seed);
  ar->mask = DynamicBitset(vocab_size);
  ar->sampler_rng = Rng(seed * 7919u + 13u);
  ar->logits_scratch.boosted.reserve(16);  // covers target+distractor+closers
  auto max_new = static_cast<std::size_t>(std::max(options.max_new_tokens, 1));
  ar->result.token_ids.reserve(max_new);
  ar->result.output_text.reserve(max_new * 16);  // ample for long tokens
  if (options.dense_logits) {
    ar->dense_row.resize(vocab_size);
    ar->dense_sampler.Prepare(vocab_size);
  }
  if (options.speculation.enabled) {
    ar->draft.resize(
        static_cast<std::size_t>(std::max(options.speculation.draft_tokens, 1)));
    ar->draft_rng = Rng(seed * 0x9E3779B9u ^ options.speculation.seed);
  }
  ar->draft_len = -1;
  ar->draft_agreed = 0;
  ar->draft_committed = 0;
  ar->spec_step = false;
  if (ar->decoder != nullptr) ar->decoder->Reset();
}

// Gathers the step's mask work for one unfinished grammar-constrained
// request. With speculation on, the draft head proposes here (main thread,
// allocation-free) and the verify/commit fuses into the task the mask phase
// executes.
void GatherMaskTask(ActiveRequest* ar, const MockLlm& llm,
                    const EngineOptions& options,
                    std::vector<MaskTask>* tasks) {
  MaskTask task{ar->decoder.get(), &ar->mask, &ar->mask_cost_ewma_us,
                nullptr, -1, 0, nullptr};
  ar->draft_len = -1;
  ar->draft_committed = 0;
  ar->spec_step = false;
  if (options.speculation.enabled && options.speculation.draft_tokens > 0) {
    ar->spec_step = true;
    ar->draft_len = llm.DraftTokens(
        ar->script, options.speculation.draft_tokens,
        options.speculation.draft_noise, &ar->draft_rng, ar->draft.data(),
        &ar->draft_agreed);
    if (ar->draft_len > 0) {
      task.draft = ar->draft.data();
      task.draft_len = ar->draft_len;
      task.agreed = ar->draft_agreed;
      task.committed = &ar->draft_committed;
    }
  }
  tasks->push_back(task);
}

// Runs one mask-phase unit: plain mask fill, or (speculation) the fused
// verify → commit → fill transaction. The commit keeps the prefix on which
// grammar and target model agree; backends without partial commit verify
// only the model-agreed prefix so the transaction always closes cleanly.
// Either way exactly ONE mask is filled, at the commit point.
void ExecuteMaskTask(MaskTask* task) {
  if (task->draft_len >= 0) {
    baselines::DraftVerifyResult verify;
    const std::int32_t verify_len =
        task->decoder->SupportsPartialCommit()
            ? task->draft_len
            : std::min(task->draft_len, task->agreed);
    task->decoder->VerifyDraft(task->draft, verify_len, &verify, nullptr);
    const std::int32_t keep = std::min(verify.accepted, task->agreed);
    bool ok = task->decoder->CommitDraft(keep);
    XGR_CHECK(ok) << "draft commit failed";
    *task->committed = keep;
  }
  task->decoder->FillNextTokenBitmask(task->mask);
}

// Decoder mask-gen counters accumulate over the decoder's lifetime; the
// engine reports per-run deltas, so it snapshots them at admission and
// subtracts on completion.
MaskGenAggregate SnapshotMaskGen(const baselines::ConstrainedDecoder* decoder) {
  MaskGenAggregate snapshot;
  const cache::MaskGenStats* stats =
      decoder != nullptr ? decoder->MaskStats() : nullptr;
  if (stats != nullptr) {
    snapshot.masks_generated = stats->masks_generated;
    snapshot.scratch_rebuilds = stats->scratch_rebuilds;
    snapshot.scratch_reseeds = stats->scratch_reseeds;
    snapshot.ctx_tokens_checked = stats->runtime_tokens_checked;
    snapshot.ctx_bytes_checked = stats->ctx_bytes_checked;
    snapshot.ctx_tokens_pruned = stats->ctx_tokens_pruned;
    snapshot.ctx_subtree_cutoffs = stats->ctx_subtree_cutoffs;
  }
  return snapshot;
}

void AccumulateMaskGenDelta(const baselines::ConstrainedDecoder* decoder,
                            const MaskGenAggregate& admitted,
                            MaskGenAggregate* out) {
  MaskGenAggregate now = SnapshotMaskGen(decoder);
  out->masks_generated += now.masks_generated - admitted.masks_generated;
  out->scratch_rebuilds += now.scratch_rebuilds - admitted.scratch_rebuilds;
  out->scratch_reseeds += now.scratch_reseeds - admitted.scratch_reseeds;
  out->ctx_tokens_checked += now.ctx_tokens_checked - admitted.ctx_tokens_checked;
  out->ctx_bytes_checked += now.ctx_bytes_checked - admitted.ctx_bytes_checked;
  out->ctx_tokens_pruned += now.ctx_tokens_pruned - admitted.ctx_tokens_pruned;
  out->ctx_subtree_cutoffs += now.ctx_subtree_cutoffs - admitted.ctx_subtree_cutoffs;
}

// Tag-dispatch counters, same snapshot/delta discipline as MaskGenAggregate.
// The plan-level prefetch fields are copied at admission and added ONCE per
// request at completion (they are constants of the decoder's plan, not work
// done this run).
TagDispatchAggregate SnapshotTagDispatch(
    const baselines::ConstrainedDecoder* decoder) {
  TagDispatchAggregate snapshot;
  const compose::TagDispatchStats* stats =
      decoder != nullptr ? decoder->DispatchStats() : nullptr;
  if (stats != nullptr) {
    snapshot.decoders = 1;  // marks "this request runs a dispatch decoder"
    snapshot.dispatches = stats->dispatches;
    snapshot.segment_switches = stats->segment_switches;
    snapshot.free_tokens = stats->free_tokens;
    snapshot.tag_tokens = stats->tag_tokens;
    snapshot.prefetch_submits = stats->prefetch_submits;
    snapshot.prefetch_hits = stats->prefetch_hits;
    snapshot.prefetch_waits = stats->prefetch_waits;
  }
  return snapshot;
}

void AccumulateTagDispatchDelta(const baselines::ConstrainedDecoder* decoder,
                                const TagDispatchAggregate& admitted,
                                TagDispatchAggregate* out) {
  if (admitted.decoders == 0) return;
  TagDispatchAggregate now = SnapshotTagDispatch(decoder);
  out->decoders += 1;
  out->dispatches += now.dispatches - admitted.dispatches;
  out->segment_switches += now.segment_switches - admitted.segment_switches;
  out->free_tokens += now.free_tokens - admitted.free_tokens;
  out->tag_tokens += now.tag_tokens - admitted.tag_tokens;
  out->prefetch_submits += admitted.prefetch_submits;
  out->prefetch_hits += admitted.prefetch_hits;
  out->prefetch_waits += admitted.prefetch_waits;
}

// Advances one request by one decode step: sample under the precomputed
// mask, accept, handle EOS / max-new-tokens, and apply jump-forward with
// boundary retokenization. Sets ar->finished and returns true when the
// request completed on this step. `total_tokens` counts emitted tokens.
bool StepOneRequest(const MockLlm& llm, const EngineOptions& options,
                    ActiveRequest* ar, std::int64_t* total_tokens) {
  const tokenizer::TokenizerInfo& tokenizer = llm.Tokenizer();
  baselines::ConstrainedDecoder* decoder = ar->decoder.get();

  // Speculative path: the mask phase already verified this step's draft and
  // committed the grammar- and model-agreed prefix into the decoder; emit
  // those tokens, then fall through to sample ONE correction token under the
  // commit-point mask (the step's single mask fill).
  if (ar->spec_step) {
    ++ar->result.spec_steps;
    ar->result.drafted_tokens += std::max(ar->draft_len, 0);
    ar->result.draft_committed_tokens += ar->draft_committed;
    for (std::int32_t i = 0; i < ar->draft_committed; ++i) {
      const std::int32_t committed = ar->draft[static_cast<std::size_t>(i)];
      llm.OnTokenSampled(&ar->script, committed);
      ar->result.token_ids.push_back(committed);
      ar->result.output_text += tokenizer.TokenBytes(committed);
      ++*total_tokens;
    }
    if (static_cast<std::int32_t>(ar->result.token_ids.size()) >=
        options.max_new_tokens) {
      ar->finished = true;
      return true;
    }
  }

  std::int32_t token;
  if (options.dense_logits) {
    // Dense path: full logits row through the fused
    // mask-apply/softmax/sample kernel.
    llm.ComputeLogitsDense(&ar->script, &ar->logits_scratch,
                           ar->dense_row.data());
    token = ar->dense_sampler.Sample(
        ar->dense_row.data(), ar->dense_row.size(),
        decoder != nullptr ? &ar->mask : nullptr, options.temperature,
        &ar->sampler_rng);
    XGR_CHECK(token >= 0) << "mask allows no token at all";
  } else {
    llm.ComputeLogitsSparse(&ar->script, &ar->logits_scratch);
    if (decoder != nullptr) {
      token = SampleMasked(ar->logits_scratch, ar->mask, &ar->sampler_rng);
    } else {
      token = SampleUnmasked(ar->logits_scratch, tokenizer.VocabSize(),
                             &ar->sampler_rng);
    }
  }
  llm.OnTokenSampled(&ar->script, token);
  if (token == tokenizer.EosId()) {
    ar->finished = true;
    ar->result.finished_by_eos = true;
    return true;
  }
  if (decoder != nullptr) {
    bool ok = decoder->AcceptToken(token);
    XGR_CHECK(ok) << "masked sampling produced an illegal token";
  }
  ar->result.token_ids.push_back(token);
  ar->result.output_text += tokenizer.TokenBytes(token);
  ++*total_tokens;

  // Jump-forward decoding (Appendix B): append the forced continuation
  // without spending decode steps. Tokenizing the forced text on its own
  // can leave the context non-canonically tokenized — the boundary between
  // the last sampled token and the forced span may merge under greedy
  // tokenization — so the engine re-tokenizes across the boundary: roll the
  // last token back (the §3.3 persistent stack makes this O(1)), greedily
  // re-tokenize its bytes plus the forced text, and re-accept the canonical
  // tokens.
  if (options.jump_forward && decoder != nullptr) {
    std::string jump = decoder->FindJumpForwardString();
    if (jump.size() >= 2) {
      std::string span = jump;
      std::int32_t replaced = 0;
      // Rewinding the mock model's alignment works in byte units, so
      // retokenization is skipped once the script has diverged.
      if (options.jf_retokenize && !ar->result.token_ids.empty() &&
          !ar->script.diverged && decoder->RollbackTokens(1)) {
        const std::string& last_bytes =
            tokenizer.TokenBytes(ar->result.token_ids.back());
        span = last_bytes + jump;
        ar->result.token_ids.pop_back();
        ar->result.output_text.resize(ar->result.output_text.size() -
                                      last_bytes.size());
        ar->script.matched_bytes -= last_bytes.size();
        replaced = 1;
        --*total_tokens;
      }
      std::vector<std::int32_t> span_tokens =
          tokenizer::GreedyTokenize(llm.Trie(), span);
      for (std::int32_t jump_token : span_tokens) {
        bool ok = decoder->AcceptToken(jump_token);
        XGR_CHECK(ok) << "jump-forward token rejected";
        llm.OnTokenSampled(&ar->script, jump_token);
        ar->result.token_ids.push_back(jump_token);
        ar->result.output_text += tokenizer.TokenBytes(jump_token);
        ++*total_tokens;
      }
      ar->result.jump_forward_tokens +=
          static_cast<std::int32_t>(span_tokens.size()) - replaced;
      ar->result.retokenized_tokens += replaced;
    }
  }
  if (static_cast<std::int32_t>(ar->result.token_ids.size()) >=
      options.max_new_tokens) {
    ar->finished = true;
    return true;
  }
  return false;
}

// Shard body for WorkerTeam: run the planned mask fills of one shard,
// timing each request to feed its EWMA cost estimate.
struct MaskPhaseCtx {
  MaskTask* tasks = nullptr;
  const MaskShardPlanner* planner = nullptr;
};

void RunMaskShard(void* opaque, std::size_t shard) {
  auto* ctx = static_cast<MaskPhaseCtx*>(opaque);
  const MaskShardPlanner& plan = *ctx->planner;
  for (std::size_t k = plan.ShardBegin(shard); k < plan.ShardEnd(shard); ++k) {
    MaskTask& task = ctx->tasks[plan.Items()[k]];
    Timer timer;
    ExecuteMaskTask(&task);
    auto us = static_cast<float>(timer.ElapsedMicros());
    float& ewma = *task.cost_ewma_us;
    ewma = ewma <= 0.0f ? us : 0.7f * ewma + 0.3f * us;
  }
}

}  // namespace

// Persistent simulated-GPU thread: the forward-pass wait of every decode
// step runs here, replacing the per-step std::async of the original loop —
// no thread spawn and no shared-state allocation per step, so overlap
// measurements see only the wait itself and the steady-state decode step
// stays allocation-free.
class ServingEngine::SimGpu {
 public:
  SimGpu() : thread_([this] { Loop(); }) {}

  ~SimGpu() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  // Starts a forward pass of `scaled_us` (already time-scaled) microseconds.
  void Launch(double scaled_us) {
    std::lock_guard<std::mutex> lock(mutex_);
    XGR_CHECK(!busy_) << "SimGpu launched twice without Wait";
    wait_us_ = scaled_us;
    busy_ = true;
    cv_.notify_all();
  }

  // Blocks until the launched pass completes; returns its measured wall ms.
  double WaitMs() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !busy_; });
    return last_wall_ms_;
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [this] { return stop_ || busy_; });
      if (stop_) return;
      double us = wait_us_;
      lock.unlock();
      Timer timer;
      if (us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<std::int64_t>(us)));
      }
      double wall_ms = timer.ElapsedMillis();
      lock.lock();
      last_wall_ms_ = wall_ms;
      busy_ = false;
      cv_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  double wait_us_ = 0.0;
  double last_wall_ms_ = 0.0;
  bool busy_ = false;
  bool stop_ = false;
  std::thread thread_;
};

ServingEngine::ServingEngine(const EngineOptions& options, const MockLlm& llm)
    : options_(options),
      llm_(llm),
      gpu_(std::make_unique<SimGpu>()),
      mask_team_(options.mask_threads > 0
                     ? static_cast<std::size_t>(options.mask_threads)
                     : std::max<std::size_t>(
                           2, std::thread::hardware_concurrency())) {}

ServingEngine::~ServingEngine() = default;

void ServingEngine::SimulatedWait(double microseconds) const {
  double scaled = microseconds * options_.time_scale;
  if (scaled <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(scaled)));
}

double ServingEngine::RunMaskTasks(bool parallel) {
  if (mask_tasks_.empty()) return 0.0;
  Timer wall;
  if (!parallel || mask_tasks_.size() == 1 || mask_team_.thread_count() == 1) {
    for (MaskTask& task : mask_tasks_) {
      Timer timer;
      ExecuteMaskTask(&task);
      auto us = static_cast<float>(timer.ElapsedMicros());
      float& ewma = *task.cost_ewma_us;
      ewma = ewma <= 0.0f ? us : 0.7f * ewma + 0.3f * us;
    }
  } else {
    plan_cost_us_.resize(mask_tasks_.size());
    for (std::size_t i = 0; i < mask_tasks_.size(); ++i) {
      plan_cost_us_[i] = *mask_tasks_[i].cost_ewma_us;
    }
    planner_.Plan(plan_cost_us_.data(), mask_tasks_.size(),
                  mask_team_.thread_count());
    MaskPhaseCtx ctx{mask_tasks_.data(), &planner_};
    mask_team_.Dispatch(&RunMaskShard, &ctx, planner_.shard_count());
  }
  return wall.ElapsedMillis();
}

BatchResult ServingEngine::RunBatch(const std::vector<EngineRequest>& requests) {
  XGR_CHECK(!requests.empty()) << "empty batch";
  const tokenizer::TokenizerInfo& tokenizer = llm_.Tokenizer();
  auto vocab_size = static_cast<std::size_t>(tokenizer.VocabSize());

  std::vector<ActiveRequest> active(requests.size());
  std::vector<MaskGenAggregate> admitted_stats(requests.size());
  std::vector<TagDispatchAggregate> admitted_dispatch(requests.size());
  double max_preprocess_s = 0.0;
  std::int64_t prompt_tokens = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    active[i].request = &requests[i];
    active[i].decoder = requests[i].decoder;
    InitActiveRequest(&active[i], llm_, options_, requests[i].target_text,
                      requests[i].seed, vocab_size);
    if (active[i].decoder != nullptr) {
      max_preprocess_s = std::max(max_preprocess_s,
                                  active[i].decoder->PreprocessSeconds());
    }
    admitted_stats[i] = SnapshotMaskGen(active[i].decoder.get());
    admitted_dispatch[i] = SnapshotTagDispatch(active[i].decoder.get());
    prompt_tokens += requests[i].prompt_tokens;
  }
  mask_tasks_.reserve(requests.size());

  BatchResult batch;
  batch.requests.resize(requests.size());

  // --- Prefill / TTFT -------------------------------------------------------
  // Grammar preprocessing (already paid at decoder construction) overlaps
  // with prefill under kOverlap; otherwise it serializes in front of it.
  Timer ttft_timer;
  double prefill_us =
      static_cast<double>(prompt_tokens) * options_.profile.prefill_us_per_token;
  double preprocess_us = max_preprocess_s * 1e6;
  if (options_.schedule == GrammarSchedule::kOverlap) {
    SimulatedWait(std::max(prefill_us, preprocess_us));
  } else if (options_.schedule == GrammarSchedule::kSerial) {
    SimulatedWait(prefill_us + preprocess_us);
  } else {
    SimulatedWait(prefill_us);
  }
  batch.ttft_ms = ttft_timer.ElapsedMillis();

  // --- Decode loop ----------------------------------------------------------
  Timer decode_timer;
  std::int32_t num_finished = 0;
  auto batch_size = static_cast<double>(requests.size());
  double step_us = options_.profile.decode_base_us +
                   options_.profile.decode_per_seq_us * batch_size;

  const bool counting = options_.alloc_count_fn != nullptr;
  if (counting) batch.steady_allocs = 0;
  std::int64_t step_index = 0;

  while (num_finished < static_cast<std::int32_t>(active.size())) {
    std::uint64_t allocs_before = counting ? options_.alloc_count_fn() : 0;
    // Gather the step's mask work (unfinished grammar-constrained requests).
    mask_tasks_.clear();
    if (options_.schedule != GrammarSchedule::kNone) {
      for (ActiveRequest& ar : active) {
        if (ar.finished || ar.decoder == nullptr) continue;
        GatherMaskTask(&ar, llm_, options_, &mask_tasks_);
      }
    }
    // Forward pass on the persistent simulated GPU.
    gpu_->Launch(step_us * options_.time_scale);
    double mask_wall_ms = 0.0;
    if (options_.schedule == GrammarSchedule::kOverlap) {
      // Overlapped with the forward pass (§3.5), cost-aware-sharded.
      mask_wall_ms = RunMaskTasks(/*parallel=*/true);
    }
    double gpu_wall_ms = gpu_->WaitMs();
    if (options_.schedule == GrammarSchedule::kSerial) {
      mask_wall_ms = RunMaskTasks(/*parallel=*/false);  // behind the GPU
    }
    batch.mask_wall_ms += mask_wall_ms;
    batch.gpu_wall_ms += gpu_wall_ms;
    batch.exposed_overhead_ms +=
        options_.schedule == GrammarSchedule::kOverlap
            ? std::max(0.0, mask_wall_ms - gpu_wall_ms)
            : mask_wall_ms;
    if (!options_.dense_logits) {
      // Simulated GPU-side sampling; on the dense path the fused kernel
      // below IS the sampling work, measured for real.
      SimulatedWait(options_.profile.sampling_us);
    }

    ++batch.decode_steps;
    for (ActiveRequest& ar : active) {
      if (ar.finished) continue;
      if (StepOneRequest(llm_, options_, &ar, &batch.total_tokens)) {
        ++num_finished;
      }
    }
    if (counting && step_index >= 2) {
      batch.steady_allocs += static_cast<std::int64_t>(
          options_.alloc_count_fn() - allocs_before);
      ++batch.steady_steps;
    }
    ++step_index;
  }
  batch.decode_wall_ms = decode_timer.ElapsedMillis();
  for (std::size_t i = 0; i < active.size(); ++i) {
    AccumulateMaskGenDelta(active[i].decoder.get(), admitted_stats[i],
                           &batch.mask_gen);
    AccumulateTagDispatchDelta(active[i].decoder.get(), admitted_dispatch[i],
                               &batch.tag_dispatch);
    batch.requests[i] = std::move(active[i].result);
  }
  return batch;
}

ContinuousResult ServingEngine::RunContinuous(
    const std::vector<ContinuousRequest>& requests,
    std::int32_t max_batch_size) {
  XGR_CHECK(!requests.empty()) << "empty request stream";
  XGR_CHECK(max_batch_size > 0) << "batch capacity must be positive";
  const tokenizer::TokenizerInfo& tokenizer = llm_.Tokenizer();
  auto vocab_size = static_cast<std::size_t>(tokenizer.VocabSize());

  // Pending queue in arrival order (stable for equal arrival steps).
  std::vector<std::size_t> pending(requests.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;
  std::stable_sort(pending.begin(), pending.end(),
                   [&](std::size_t a, std::size_t b) {
    return requests[a].arrival_step < requests[b].arrival_step;
  });

  struct Slot {
    ActiveRequest ar;
    std::size_t index = 0;       // into `requests` / result vector
    double admitted_clock = 0.0; // simulated µs
    MaskGenAggregate admitted_stats;
    TagDispatchAggregate admitted_dispatch;
  };
  std::vector<Slot> active;
  active.reserve(static_cast<std::size_t>(max_batch_size));
  mask_tasks_.reserve(static_cast<std::size_t>(max_batch_size));

  ContinuousResult out;
  out.requests.resize(requests.size());
  // Simulated clock at which each request was first held back *because its
  // grammar was still compiling* (never stamped for capacity queueing, so
  // compile_wait_ms measures compile overlap only); -1 = never compile-held.
  std::vector<double> compile_held_clock(requests.size(), -1.0);
  auto compile_wait_ms = [&](std::size_t index, double now_us) {
    return compile_held_clock[index] < 0.0
               ? 0.0
               : (now_us - compile_held_clock[index]) / 1000.0;
  };
  // Simulated clock at which each request became eligible (arrival_step
  // reached) — the epoch its total deadline counts from; -1 = not yet.
  std::vector<double> eligible_clock(requests.size(), -1.0);
  std::size_t finished = 0;
  std::int64_t step = 0;
  double clock_us = 0.0;  // simulated time; waits also burn scaled wall time

  // Tenant admission state. Tenant tracking is off entirely for runs where
  // nothing names a tenant and no policy is configured, so the single-tenant
  // path pays no per-step map work.
  bool track_tenants = !options_.tenant_policies.empty();
  for (const ContinuousRequest& arrival : requests) {
    if (!arrival.tenant.empty()) {
      track_tenants = true;
      break;
    }
  }
  std::map<std::string, std::int64_t> policy_defer_counts;
  std::map<std::string, double> peak_mask_cost_us;
  auto policy_for = [&](const std::string& tenant) -> const TenantPolicy* {
    auto it = options_.tenant_policies.find(tenant);
    return it == options_.tenant_policies.end() ? nullptr : &it->second;
  };
  // True when tenant policy holds this request out of the batch for the
  // current iteration: the tenant hit its slot cap, or it is a batch-class
  // tenant whose active requests already hold more than their allowed share
  // of the batch's measured mask cost (the same per-request EWMA the
  // cost-aware shard planner consumes). The cost-share gate only fires while
  // another tenant has active work and some cost has actually been measured,
  // so a lone tenant never wedges itself out of an idle engine — and a
  // policy-deferred request is by construction never the reason the batch is
  // empty, which the empty-batch compile-wait path below relies on.
  auto policy_defers_request = [&](const std::string& tenant,
                                   const TenantPolicy* policy) {
    if (policy == nullptr) return false;
    std::int32_t slots = 0;
    double tenant_cost = 0.0;
    double total_cost = 0.0;
    std::size_t other_active = 0;
    for (const Slot& slot : active) {
      const auto cost = static_cast<double>(slot.ar.mask_cost_ewma_us);
      total_cost += cost;
      if (requests[slot.index].tenant == tenant) {
        ++slots;
        tenant_cost += cost;
      } else {
        ++other_active;
      }
    }
    if (policy->max_slots > 0 && slots >= policy->max_slots) return true;
    return policy->cls == TenantClass::kBatch &&
           policy->max_mask_cost_share > 0.0 && other_active > 0 &&
           total_cost > 0.0 &&
           tenant_cost / total_cost > policy->max_mask_cost_share;
  };

  while (finished < requests.size()) {
    // Deadline sweep over the eligible prefix of the pending queue: a
    // request whose total deadline (or compile deadline, once compile-held)
    // expired leaves with an explicit kDeadlineExceeded result instead of
    // waiting forever — whether it was waiting on a compile or on batch
    // capacity.
    for (auto it = pending.begin(); it != pending.end();) {
      const std::size_t index = *it;
      const ContinuousRequest& arrival = requests[index];
      if (arrival.arrival_step > step) break;  // sorted: rest arrive later
      if (eligible_clock[index] < 0.0) eligible_clock[index] = clock_us;
      const bool total_expired =
          arrival.deadline_ms > 0.0 &&
          (clock_us - eligible_clock[index]) / 1000.0 >= arrival.deadline_ms;
      const bool compile_expired =
          options_.compile_deadline_ms > 0.0 &&
          compile_held_clock[index] >= 0.0 &&
          compile_wait_ms(index, clock_us) >= options_.compile_deadline_ms;
      if (!total_expired && !compile_expired) {
        ++it;
        continue;
      }
      ContinuousRequestResult& record = out.requests[index];
      record.status = StatusCode::kDeadlineExceeded;
      record.error = compile_expired
                         ? "compile deadline exceeded waiting for grammar"
                         : "request deadline exceeded before admission";
      record.compile_wait_ms = compile_wait_ms(index, clock_us);
      ++finished;
      it = pending.erase(it);
    }
    // Admission: join arrived requests while capacity remains. The joining
    // request's prefill is paid on this iteration (chunked-prefill style),
    // lengthening the step for everyone — the continuous-batching tradeoff.
    // A request whose grammar is still compiling is skipped (kDeferred:
    // it waits out-of-batch, later arrivals may overtake it) or stalls the
    // loop (kBlocking: the synchronous-front-door baseline).
    // Two passes by tenant class — interactive tenants claim freed slots
    // first, batch tenants get what remains — with arrival order preserved
    // within each class. With no tenant policies configured every request is
    // interactive-class and this is the classic single-pass loop.
    double admission_us = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
    const TenantClass pass_class =
        pass == 0 ? TenantClass::kInteractive : TenantClass::kBatch;
    for (auto it = pending.begin();
         it != pending.end() &&
         active.size() < static_cast<std::size_t>(max_batch_size);) {
      const std::size_t index = *it;
      const ContinuousRequest& arrival = requests[index];
      if (arrival.arrival_step > step) break;  // sorted: rest arrive later
      const TenantPolicy* policy = policy_for(arrival.tenant);
      const TenantClass cls =
          policy != nullptr ? policy->cls : TenantClass::kInteractive;
      if (cls != pass_class) {
        ++it;  // other pass's class
        continue;
      }
      if (policy_defers_request(arrival.tenant, policy)) {
        ++policy_defer_counts[arrival.tenant];
        ++it;  // retries next iteration; its deadline still counts down
        continue;
      }
      std::shared_ptr<baselines::ConstrainedDecoder> decoder =
          arrival.request.decoder;
      runtime::CompileTicket* ticket = arrival.pending_grammar.get();
      if (decoder == nullptr && ticket != nullptr && ticket->Valid()) {
        if (ticket->State() == runtime::CompileState::kPending) {
          if (compile_held_clock[index] < 0.0) {
            compile_held_clock[index] = clock_us;
          }
          if (options_.admission == CompileAdmission::kDeferred) {
            ++it;  // wait out-of-batch; everyone else keeps decoding
            continue;
          }
          // kBlocking: the whole loop stalls for the build, and the stall
          // is wall time every co-scheduled request's clock absorbs. The
          // compile deadline still applies — a wedged build must not stall
          // the loop forever.
          Timer stall;
          bool timed_out = false;
          while (!ticket->WaitFor(0.1)) {
            if (options_.compile_deadline_ms > 0.0 &&
                compile_wait_ms(index, clock_us + stall.ElapsedMicros()) >=
                    options_.compile_deadline_ms) {
              timed_out = true;
              break;
            }
          }
          clock_us += stall.ElapsedMicros();
          if (timed_out) {
            ContinuousRequestResult& record = out.requests[index];
            record.status = StatusCode::kDeadlineExceeded;
            record.error = "compile deadline exceeded waiting for grammar";
            record.compile_wait_ms = compile_wait_ms(index, clock_us);
            ++finished;
            it = pending.erase(it);
            continue;
          }
        }
        if (ticket->State() == runtime::CompileState::kReady) {
          decoder = std::make_shared<baselines::XGrammarDecoder>(ticket->Get());
        } else {
          // Failed or cancelled: drop the request instead of wedging the
          // loop on a grammar that will never arrive — and thread the
          // ticket's structured code + error through so the drop is
          // diagnosable by the caller, not just counted.
          ContinuousRequestResult& record = out.requests[index];
          record.grammar_failed = true;
          record.status = ticket->Code();
          record.error = ticket->Error();
          record.compile_wait_ms = compile_wait_ms(index, clock_us);
          ++finished;
          it = pending.erase(it);
          continue;
        }
      }
      Slot slot;
      slot.index = index;
      slot.ar.request = &arrival.request;
      slot.ar.decoder = std::move(decoder);
      InitActiveRequest(&slot.ar, llm_, options_, arrival.request.target_text,
                        arrival.request.seed, vocab_size);
      slot.admitted_stats = SnapshotMaskGen(slot.ar.decoder.get());
      slot.admitted_dispatch = SnapshotTagDispatch(slot.ar.decoder.get());
      admission_us += static_cast<double>(arrival.request.prompt_tokens) *
                      options_.profile.prefill_us_per_token;
      slot.admitted_clock = clock_us;
      out.requests[index].admitted_step = step;
      out.requests[index].compile_wait_ms = compile_wait_ms(index, clock_us);
      active.push_back(std::move(slot));
      it = pending.erase(it);
    }
    }  // tenant-class passes
    if (active.empty()) {
      if (!pending.empty() && requests[pending.front()].arrival_step <= step) {
        // Nothing decodes and the head request only waits on its compile:
        // lend it the iteration as real wait (no decode step happens).
        runtime::CompileTicket* ticket =
            requests[pending.front()].pending_grammar.get();
        XGR_CHECK(ticket != nullptr && ticket->Valid())
            << "unadmittable request without a compile ticket";
        Timer idle;
        ticket->WaitFor(1e-3);
        clock_us += idle.ElapsedMicros();
        // The step still advances: a later-arriving ready request must not
        // be starved behind the head-of-line compile — it becomes eligible
        // and decodes while the compile proceeds.
        ++step;
        continue;
      }
      // Idle iteration: nothing running, waiting for future arrivals.
      ++step;
      continue;
    }

    double step_us = options_.profile.decode_base_us +
                     options_.profile.decode_per_seq_us *
                         static_cast<double>(active.size()) +
                     admission_us;
    // The clock advances by the measured wall time of the iteration: the
    // (scaled) simulated GPU wait plus however much real mask-generation
    // work escapes the overlap — exactly the quantity Figure 10 plots.
    Timer iteration_timer;
    mask_tasks_.clear();
    if (options_.schedule != GrammarSchedule::kNone) {
      for (Slot& slot : active) {
        if (slot.ar.decoder == nullptr) continue;
        GatherMaskTask(&slot.ar, llm_, options_, &mask_tasks_);
      }
    }
    gpu_->Launch(step_us * options_.time_scale);
    double mask_wall_ms = 0.0;
    if (options_.schedule == GrammarSchedule::kOverlap) {
      mask_wall_ms = RunMaskTasks(/*parallel=*/true);
    }
    double gpu_wall_ms = gpu_->WaitMs();
    if (options_.schedule == GrammarSchedule::kSerial) {
      mask_wall_ms = RunMaskTasks(/*parallel=*/false);
    }
    out.mask_wall_ms += mask_wall_ms;
    out.gpu_wall_ms += gpu_wall_ms;
    out.exposed_overhead_ms +=
        options_.schedule == GrammarSchedule::kOverlap
            ? std::max(0.0, mask_wall_ms - gpu_wall_ms)
            : mask_wall_ms;
    if (!options_.dense_logits) {
      SimulatedWait(options_.profile.sampling_us);
    }
    clock_us += iteration_timer.ElapsedMicros();
    ++out.decode_steps;

    if (track_tenants) {
      // Record each tenant's summed measured mask cost this iteration — the
      // exact quantity the cost-share admission gate is judged against.
      std::map<std::string, double> step_cost;
      for (const Slot& slot : active) {
        step_cost[requests[slot.index].tenant] +=
            static_cast<double>(slot.ar.mask_cost_ewma_us);
      }
      for (const auto& [tenant, cost] : step_cost) {
        double& peak = peak_mask_cost_us[tenant];
        peak = std::max(peak, cost);
      }
    }

    for (std::size_t i = 0; i < active.size();) {
      Slot& slot = active[i];
      bool had_tokens = !slot.ar.result.token_ids.empty();
      bool done = StepOneRequest(llm_, options_, &slot.ar, &out.total_tokens);
      ContinuousRequestResult& record = out.requests[slot.index];
      if (!had_tokens && !slot.ar.result.token_ids.empty()) {
        record.first_token_step = step;
        record.ttft_ms = (clock_us - slot.admitted_clock) / 1000.0;
      }
      // Mid-decode total deadline: an expired request leaves the batch now,
      // keeping its partial output, instead of occupying a slot past its
      // useful-by time.
      const double request_deadline_ms = requests[slot.index].deadline_ms;
      if (!done && request_deadline_ms > 0.0 &&
          (clock_us - eligible_clock[slot.index]) / 1000.0 >=
              request_deadline_ms) {
        record.status = StatusCode::kDeadlineExceeded;
        record.error = "request deadline exceeded mid-decode";
        done = true;
      }
      if (done) {
        record.finish_step = step;
        record.completion_ms = (clock_us - slot.admitted_clock) / 1000.0;
        record.result = std::move(slot.ar.result);
        AccumulateMaskGenDelta(slot.ar.decoder.get(),
                               slot.admitted_stats, &out.mask_gen);
        AccumulateTagDispatchDelta(slot.ar.decoder.get(),
                                   slot.admitted_dispatch, &out.tag_dispatch);
        active[i] = std::move(active.back());
        active.pop_back();
        ++finished;
      } else {
        ++i;
      }
    }
    ++step;
  }
  out.makespan_ms = clock_us / 1000.0;

  if (track_tenants) {
    // Fold per-request outcomes plus the run's deferral/peak counters into
    // the per-tenant usage table (std::map keeps it sorted by name).
    std::map<std::string, TenantUsage> usage;
    std::map<std::string, std::int64_t> ttft_samples;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      TenantUsage& u = usage[requests[i].tenant];
      const ContinuousRequestResult& record = out.requests[i];
      ++u.submitted;
      if (record.status == StatusCode::kOk) {
        ++u.completed;
      } else {
        ++u.dropped;
      }
      u.total_tokens +=
          static_cast<std::int64_t>(record.result.token_ids.size());
      u.mean_compile_wait_ms += record.compile_wait_ms;
      if (record.first_token_step >= 0) {
        u.mean_ttft_ms += record.ttft_ms;
        ++ttft_samples[requests[i].tenant];
      }
    }
    for (auto& [tenant, u] : usage) {
      u.mean_compile_wait_ms /= static_cast<double>(u.submitted);
      const std::int64_t samples = ttft_samples[tenant];
      u.mean_ttft_ms = samples > 0
                           ? u.mean_ttft_ms / static_cast<double>(samples)
                           : 0.0;
      auto defers = policy_defer_counts.find(tenant);
      if (defers != policy_defer_counts.end()) u.policy_defers = defers->second;
      auto peak = peak_mask_cost_us.find(tenant);
      if (peak != peak_mask_cost_us.end()) u.peak_mask_cost_us = peak->second;
    }
    out.tenants.assign(usage.begin(), usage.end());
  }
  return out;
}

}  // namespace xgr::engine
