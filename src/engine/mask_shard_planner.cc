#include "engine/mask_shard_planner.h"

#include <algorithm>

namespace xgr::engine {

void MaskShardPlanner::Plan(const float* cost_us, std::size_t n,
                            std::size_t shard_count) {
  shard_count_ = std::max<std::size_t>(1, std::min(shard_count, n));
  if (n == 0) {
    shard_count_ = 1;
    offsets_.assign(2, 0);
    return;
  }

  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order_[i] = static_cast<std::int32_t>(i);
  }
  std::sort(order_.begin(), order_.end(),
            [cost_us](std::int32_t a, std::int32_t b) {
              if (cost_us[a] != cost_us[b]) return cost_us[a] > cost_us[b];
              return a < b;  // stable, deterministic tie-break
            });

  shard_load_.assign(shard_count_, 0.0);
  shard_of_.resize(n);
  offsets_.assign(shard_count_ + 1, 0);
  for (std::int32_t req : order_) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shard_count_; ++s) {
      if (shard_load_[s] < shard_load_[best]) best = s;  // < keeps lowest id
    }
    shard_of_[req] = static_cast<std::int32_t>(best);
    shard_load_[best] += static_cast<double>(cost_us[req]);
    ++offsets_[best + 1];
  }

  for (std::size_t s = 0; s < shard_count_; ++s) {
    offsets_[s + 1] += offsets_[s];
  }
  items_.resize(n);
  fill_.assign(offsets_.begin(), offsets_.end() - 1);
  for (std::int32_t req : order_) {  // keeps descending-cost order per shard
    items_[fill_[shard_of_[req]]++] = req;
  }
}

}  // namespace xgr::engine
