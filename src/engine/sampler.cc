#include "engine/sampler.h"

#include "support/logging.h"

namespace xgr::engine {

std::int32_t SampleMasked(const SparseLogits& logits, const DynamicBitset& mask,
                          Rng* rng) {
  std::int32_t best = -1;
  float best_logit = 0.0f;
  for (const auto& [token, logit] : logits.boosted) {
    if (token < 0 || !mask.Test(static_cast<std::size_t>(token))) continue;
    if (best == -1 || logit > best_logit) {
      best = token;
      best_logit = logit;
    }
  }
  if (best != -1) return best;
  // All boosted tokens are masked: fall back to a pseudo-random allowed token
  // (every unboosted allowed token ties at logit 0).
  std::size_t start = rng->NextBounded(mask.Size());
  std::int64_t pick = mask.FindNext(start);
  if (pick < 0) pick = mask.FindNext(0);
  XGR_CHECK(pick >= 0) << "mask allows no token at all";
  return static_cast<std::int32_t>(pick);
}

std::int32_t SampleUnmasked(const SparseLogits& logits, std::int32_t vocab_size,
                            Rng* rng) {
  std::int32_t best = -1;
  float best_logit = 0.0f;
  for (const auto& [token, logit] : logits.boosted) {
    if (token < 0) continue;
    if (best == -1 || logit > best_logit) {
      best = token;
      best_logit = logit;
    }
  }
  if (best != -1) return best;
  return static_cast<std::int32_t>(rng->NextBounded(static_cast<std::uint64_t>(vocab_size)));
}

}  // namespace xgr::engine
