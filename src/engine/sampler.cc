#include "engine/sampler.h"

#include "support/logging.h"

namespace xgr::engine {

std::int32_t SampleMasked(const SparseLogits& logits, const DynamicBitset& mask,
                          Rng* rng) {
  std::int32_t best = -1;
  // Every unboosted allowed token has logit 0, so a boosted candidate must
  // strictly beat that floor — starting from best == -1 with best_logit 0
  // and requiring `>` is exactly "initialize against the implicit 0-logit
  // floor". (A boosted token at a negative logit falls through to the
  // fallback below, where the 0-logit crowd wins.)
  float best_logit = 0.0f;
  for (const auto& [token, logit] : logits.boosted) {
    if (token < 0 || !mask.Test(static_cast<std::size_t>(token))) continue;
    if (logit > best_logit) {
      best = token;
      best_logit = logit;
    }
  }
  if (best != -1) return best;
  // No boosted token beats the floor: fall back to a pseudo-random allowed
  // token (every unboosted allowed token ties at logit 0).
  std::size_t start = rng->NextBounded(mask.Size());
  std::int64_t pick = mask.FindNext(start);
  if (pick < 0) pick = mask.FindNext(0);
  XGR_CHECK(pick >= 0) << "mask allows no token at all";
  return static_cast<std::int32_t>(pick);
}

std::int32_t SampleUnmasked(const SparseLogits& logits, std::int32_t vocab_size,
                            Rng* rng) {
  std::int32_t best = -1;
  float best_logit = 0.0f;  // implicit floor: unboosted tokens sit at 0
  for (const auto& [token, logit] : logits.boosted) {
    if (token < 0) continue;
    if (logit > best_logit) {
      best = token;
      best_logit = logit;
    }
  }
  if (best != -1) return best;
  return static_cast<std::int32_t>(
      rng->NextBounded(static_cast<std::uint64_t>(vocab_size)));
}

void DenseSampler::Prepare(std::size_t vocab_size) {
  if (exp_scratch_.size() != vocab_size) exp_scratch_.resize(vocab_size);
}

std::int32_t DenseSampler::Sample(const float* logits, std::size_t vocab_size,
                                  const DynamicBitset* mask, float temperature,
                                  Rng* rng) {
  XGR_CHECK(exp_scratch_.size() >= vocab_size)
      << "DenseSampler::Prepare not called for this vocab size";
  const std::uint64_t* words = mask != nullptr ? mask->Data() : nullptr;
  // Draw the uniform only on the temperature path so the greedy path leaves
  // the request's rng stream untouched.
  bool stochastic = temperature > 0.0f;
  double uniform = stochastic ? rng->NextDouble() : 0.0;
  return support::simd::FusedMaskSoftmaxSample(
      logits, vocab_size, words, temperature, uniform, exp_scratch_.data(),
      &stats_);
}

}  // namespace xgr::engine
