// Calibrated latency profiles for the GPU simulator (DESIGN.md §1).
//
// The end-to-end experiments measure how grammar-engine CPU time composes
// with model step time (serial vs overlapped, §3.5). The model step itself
// runs on hardware we do not have, so it is replaced by a wait calibrated
// from the paper's *unconstrained* numbers:
//   Table 2 (H100, Llama-3.1-8B): TPOT 6.2 ms @ batch 1, 9.0 ms @ batch 16
//     => step(batch) = 6.0 ms + 0.187 ms × batch.
//   Figure 12: M3 Max Llama-8B 29.7 ms TPOT / 1365 ms TTFT; iPhone Qwen-0.5B
//     47.3 ms TPOT / 955 ms TTFT.
// DeepSeek-V2-Lite (16B MoE with small active experts and a 102k vocab) is
// modeled slightly faster per token than dense 8B, consistent with Table 1's
// 4.8 ms TPOT under XGrammar.
#pragma once

#include <cstdint>
#include <string>

namespace xgr::engine {

struct ModelProfile {
  std::string name;
  // Decode step latency model: base + per_sequence * batch (microseconds).
  double decode_base_us = 6000.0;
  double decode_per_seq_us = 187.0;
  // Prefill throughput (microseconds per prompt token, whole batch).
  double prefill_us_per_token = 350.0;
  // Sampling / detokenization overhead per step (microseconds).
  double sampling_us = 150.0;

  static ModelProfile Llama31_8B_H100() {
    return ModelProfile{"Llama-3.1-8B (H100)", 6000.0, 187.0, 120.0, 150.0};
  }
  static ModelProfile DeepSeekV2Lite_H100() {
    return ModelProfile{"DeepSeek-V2-Lite 16B MOE (H100)", 4400.0, 160.0, 150.0, 150.0};
  }
  static ModelProfile Llama31_8B_RTX4090() {
    return ModelProfile{"Llama-3.1-8B (RTX 4090)", 6200.0, 210.0, 200.0, 150.0};
  }
  static ModelProfile Llama31_8B_M3Max() {
    // 4-bit quantized, WebLLM in-browser (Figure 12).
    return ModelProfile{"Llama-3.1-8B-q4 (M3 Max / WebLLM)", 29500.0, 0.0, 9800.0, 200.0};
  }
  static ModelProfile Qwen25_05B_iPhone() {
    return ModelProfile{"Qwen-2.5-0.5B-q4 (iPhone 14 Pro Max)", 47000.0, 0.0, 6900.0, 300.0};
  }
};

}  // namespace xgr::engine
